package decode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/zcover/mutate"
)

// Property: the dissector never panics and always names the stream's class
// for every payload the position-sensitive mutator can generate.
func TestDecodeHandlesAllMutatorOutputs(t *testing.T) {
	reg := cmdclass.MustLoad()
	classes := append(reg.ControllerCluster(), cmdclass.HiddenCandidates()...)
	sem := mutate.Semantics{Controller: 1, KnownNodes: []protocol.NodeID{1, 2, 3}}
	prop := func(seed int64, idx uint8, n uint8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		cls := classes[int(idx)%len(classes)]
		stream := mutate.New(sem, seed).Stream(cls)
		for i := 0; i < int(n%80)+1; i++ {
			d := Payload(reg, stream.Next())
			if d.ClassID != cls.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary byte soup never panics the dissector.
func TestDecodeHandlesArbitraryBytes(t *testing.T) {
	reg := cmdclass.MustLoad()
	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, r.Intn(60))
		r.Read(payload)
		_ = Payload(reg, payload).String()
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
