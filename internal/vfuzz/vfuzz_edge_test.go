package vfuzz

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
)

func TestVFuzzZeroConfigGetsDefaults(t *testing.T) {
	// An empty mutation budget must not mean "no fuzzing": the zero Config
	// falls back to the paper's 24h budget and the engine's pacing.
	c := Config{}.withDefaults()
	if c.Duration != 24*time.Hour {
		t.Errorf("default duration = %s, want 24h", c.Duration)
	}
	if c.ResponseWindow != dongle.DefaultResponseWindow {
		t.Errorf("default response window = %s", c.ResponseWindow)
	}
	if c.InterTestGap <= 0 || c.PingRetry <= 0 || c.SamplePeriod <= 0 {
		t.Errorf("pacing defaults missing: %+v", c)
	}
	// Negative values are treated like zero, not honoured.
	n := Config{Duration: -time.Hour, InterTestGap: -1}.withDefaults()
	if n.Duration != 24*time.Hour || n.InterTestGap <= 0 {
		t.Errorf("negative config not defaulted: %+v", n)
	}
}

func TestVFuzzTinyBudgetStillSendsOneFrame(t *testing.T) {
	// A budget smaller than a single test cycle runs exactly one test and
	// stops — the loop checks the budget before each send, never mid-cycle.
	tb, err := testbed.New("D3", 5)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	eng := New(d, tb.Home(), testbed.ControllerID, Config{Duration: time.Nanosecond, Seed: 5})
	tb.Bus.Subscribe(eng.Observe)
	res := eng.Run()
	if res.PacketsSent != 1 {
		t.Fatalf("packets = %d, want exactly 1", res.PacketsSent)
	}
	if res.Elapsed < time.Nanosecond {
		t.Fatalf("elapsed = %s, want >= budget", res.Elapsed)
	}
}

func TestVFuzzTruncationToZeroLengthPayload(t *testing.T) {
	// The truncate mutation can cut a frame down to its bare MAC header —
	// a zero-length application payload. Those frames must still be well
	// formed enough to transmit (never shorter than the header) and the
	// mutator must actually produce them.
	tb, err := testbed.New("D2", 11)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	eng := New(d, tb.Home(), testbed.ControllerID, Config{Seed: 11})

	headerOnly := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		raw := eng.nextFrame()
		if len(raw) < protocol.HeaderSize {
			t.Fatalf("frame %d is %d bytes, below the %d-byte MAC header",
				i, len(raw), protocol.HeaderSize)
		}
		if len(raw) == protocol.HeaderSize {
			headerOnly++
			// Header-only frames must survive transmission: the dongle and
			// the controller's frame parser see them, and neither may choke.
			_ = d.SendRaw(raw)
		}
	}
	if headerOnly == 0 {
		t.Fatalf("no header-only (zero-payload) frame in %d trials", trials)
	}
}

func TestVFuzzRNGStreamIsDeterministicPerSeed(t *testing.T) {
	// The engine's single RNG feeds both payload generation and MAC-field
	// mutation; the interleaved draw order is part of the contract. Two
	// engines with the same seed must emit identical frame streams.
	frames := func(seed int64) [][]byte {
		tb, err := testbed.New("D1", seed)
		if err != nil {
			t.Fatal(err)
		}
		eng := New(dongle.New(tb.Medium, tb.Region), tb.Home(), testbed.ControllerID, Config{Seed: seed})
		out := make([][]byte, 500)
		for i := range out {
			out[i] = append([]byte{}, eng.nextFrame()...)
		}
		return out
	}
	a, b := frames(7), frames(7)
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("frame %d diverged for identical seeds:\n% X\n% X", i, a[i], b[i])
		}
	}
	c := frames(8)
	same := 0
	for i := range a {
		if string(a[i]) == string(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 7 and 8 produced identical streams")
	}
}

func TestVFuzzCampaignsAreDeterministicAcrossWorkers(t *testing.T) {
	// Fleet runs schedule VFuzz campaigns on parallel workers. Each worker
	// owns an engine and testbed, so concurrent scheduling must not leak
	// into results: N concurrent campaigns with one seed all match the
	// serial reference byte for byte.
	campaign := func() []byte {
		tb, err := testbed.New("D4", 3)
		if err != nil {
			t.Fatal(err)
		}
		d := dongle.New(tb.Medium, tb.Region)
		eng := New(d, tb.Home(), testbed.ControllerID, Config{Duration: 30 * time.Minute, Seed: 3})
		tb.Bus.Subscribe(eng.Observe)
		b, err := json.Marshal(eng.Run())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := campaign()

	const workers = 4
	got := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = campaign()
		}(w)
	}
	wg.Wait()
	for w, b := range got {
		if string(b) != string(want) {
			t.Errorf("worker %d diverged from serial run", w)
		}
	}
	var res fuzz.Result
	if err := json.Unmarshal(want, &res); err != nil {
		t.Fatal(err)
	}
	if res.PacketsSent == 0 {
		t.Fatal("reference campaign sent nothing")
	}
}
