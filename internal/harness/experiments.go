package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/controller"
	"zcover/internal/fleet"
	"zcover/internal/report"
	"zcover/internal/zcover/fuzz"
)

// Experiment seeds. Fixed for reproducibility; each device gets a distinct
// seed derived from its testbed index. The ablation's γ seed is chosen so
// the representative run sits at random fuzzing's ceiling (the six bugs
// reachable without structure; over seeds 1–8 γ finds 2–6).
const (
	baseSeed          = 40
	ablationGammaSeed = 4
)

// deviceSeed derives the per-device campaign seed.
func deviceSeed(index string) int64 {
	return baseSeed + int64(index[len(index)-1]-'0')
}

// Fig1 demonstrates the frame layer: it encodes the BASIC_SET frame of the
// paper's Figure 1 discussion and dissects it field by field.
func Fig1() *report.Table {
	tb := &report.Table{
		Title:   "Figure 1: Z-Wave basic frame structure (codec round trip)",
		Headers: []string{"Field", "Bytes", "Value"},
	}
	frame := protocolExample()
	raw := frame.MustEncode()
	tb.AddRow("H-ID", "4", fmt.Sprintf("% X", raw[0:4]))
	tb.AddRow("SRC", "1", fmt.Sprintf("%02X", raw[4]))
	tb.AddRow("P1", "1", fmt.Sprintf("%02X", raw[5]))
	tb.AddRow("P2", "1", fmt.Sprintf("%02X", raw[6]))
	tb.AddRow("LEN", "1", fmt.Sprintf("%02X", raw[7]))
	tb.AddRow("DST", "1", fmt.Sprintf("%02X", raw[8]))
	tb.AddRow("CMDCL", "1", fmt.Sprintf("%02X", raw[9]))
	tb.AddRow("CMD", "1", fmt.Sprintf("%02X", raw[10]))
	tb.AddRow("PARAM1", "1", fmt.Sprintf("%02X", raw[11]))
	tb.AddRow("CS", "1", fmt.Sprintf("%02X", raw[12]))
	return tb
}

// Fig5 regenerates Figure 5: the command distribution of selected command
// classes from the specification database.
func Fig5() (*report.Table, *report.CSV, error) {
	reg, err := cmdclass.Load()
	if err != nil {
		return nil, nil, err
	}
	dist := reg.CommandDistribution(cmdclass.Figure5Classes())
	tb := &report.Table{
		Title:   "Figure 5: commands per selected command class",
		Headers: []string{"Command class", "CMDCL", "#Commands"},
	}
	csv := &report.CSV{Headers: []string{"class", "commands"}}
	for _, d := range dist {
		tb.AddRow(d.Class, d.ID.String(), strconv.Itoa(d.Commands))
		csv.AddRow(d.Class, strconv.Itoa(d.Commands))
	}
	return tb, csv, nil
}

// Table2 regenerates the testbed inventory.
func Table2() *report.Table {
	tb := &report.Table{
		Title:   "Table II: tested device details",
		Headers: []string{"IDX", "Brand name", "Device type", "Model (year)", "Encryption"},
	}
	for _, p := range controller.Profiles() {
		tb.AddRow(p.Index, p.Brand, "Controller", fmt.Sprintf("%s (%d)", p.Model, p.Year), "Yes")
	}
	tb.AddRow("D8", "Schlage", "Door Lock", "BE469ZP (2019)", "Yes")
	tb.AddRow("D9", "GE Jasco", "Smart Switch", "ZW4201 (2016)", "No")
	return tb
}

// Table3Result carries the zero-day discovery campaign outcome.
type Table3Result struct {
	// PerDevice maps testbed index to the unique signatures found there.
	PerDevice map[string][]string
	// Affected maps each Table III bug ID to the devices it was found on.
	Affected map[controller.BugID][]string
	// Unmatched lists signatures with no Table III row (should be empty).
	Unmatched []string
}

// Table3 runs the full ZCover campaign (24 h per controller, as in the
// paper) against every testbed device and reconciles the union of unique
// findings against the Table III catalogue.
func Table3(duration time.Duration) (*report.Table, *Table3Result, error) {
	return Table3Fleet(duration, fleet.Config{})
}

// Table3Fleet is Table3 with the campaigns scheduled across a fleet
// worker pool. Output is identical for any worker count: each campaign is
// seeded per device and runs on its own testbed, and rows are assembled in
// job order.
func Table3Fleet(duration time.Duration, cfg fleet.Config) (*report.Table, *Table3Result, error) {
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	profiles := controller.Profiles()
	var jobs []fleet.Job
	for _, p := range profiles {
		jobs = append(jobs, fleet.Job{
			Name: "table3/" + p.Index, Device: p.Index,
			Strategy: fuzz.StrategyFull, Seed: deviceSeed(p.Index), Budget: duration,
		})
	}
	outs, err := runCampaigns("table3", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	res := &Table3Result{
		PerDevice: make(map[string][]string),
		Affected:  make(map[controller.BugID][]string),
	}
	for i, p := range profiles {
		for _, f := range outs[i].Fuzz().Findings {
			res.PerDevice[p.Index] = append(res.PerDevice[p.Index], f.Signature)
			if bug, ok := BugBySignature(f.Signature); ok {
				res.Affected[bug.ID] = append(res.Affected[bug.ID], p.Index)
			} else {
				res.Unmatched = append(res.Unmatched, f.Signature)
			}
		}
	}

	out := &report.Table{
		Title: "Table III: zero-day vulnerability discovery results",
		Headers: []string{"Bug ID", "Affected", "CMDCL", "CMD", "Description",
			"Duration", "Root cause", "Confirmed", "Rediscovered on"},
		Notes: []string{"Infinite: users cannot control their devices."},
	}
	for _, bug := range PaperBugs() {
		found := res.Affected[bug.ID]
		sort.Strings(found)
		out.AddRow(
			fmt.Sprintf("%02d", bug.ID), bug.Affected,
			fmt.Sprintf("0x%02X", bug.CMDCL), fmt.Sprintf("0x%02X", bug.CMD),
			bug.Description, report.DurationCell(bug.Duration),
			bug.RootCause, bug.Confirmed, condense(found),
		)
	}
	return out, res, nil
}

// condense renders a device list like "D1-D7" when contiguous.
func condense(devices []string) string {
	if len(devices) == 0 {
		return "-"
	}
	contiguous := true
	for i := 1; i < len(devices); i++ {
		prev := devices[i-1][len(devices[i-1])-1]
		cur := devices[i][len(devices[i])-1]
		if cur != prev+1 {
			contiguous = false
			break
		}
	}
	if contiguous && len(devices) > 2 {
		return devices[0] + "-" + devices[len(devices)-1]
	}
	return strings.Join(devices, ",")
}

// Table4Row is one controller's fingerprinting outcome.
type Table4Row struct {
	Index    string
	Home     string
	NodeID   string
	Known    int
	Unknown  int
	Commands int
}

// Table4 runs phases 1 and 2 against every controller and reports the
// known/unknown property counts of Table IV.
func Table4() (*report.Table, []Table4Row, error) {
	return Table4Fleet(fleet.Config{})
}

// Table4Fleet is Table4 scheduled across a fleet worker pool.
func Table4Fleet(cfg fleet.Config) (*report.Table, []Table4Row, error) {
	out := &report.Table{
		Title:   "Table IV: known properties fingerprinting and unknown properties discovery",
		Headers: []string{"ID", "Home ID", "Node ID", "Known CMDCLs", "Unknown CMDCLs"},
	}
	profiles := controller.Profiles()
	var jobs []fleet.Job
	for _, p := range profiles {
		// Fingerprint + discovery only: a one-second fuzzing budget.
		jobs = append(jobs, fleet.Job{
			Name: "table4/" + p.Index, Device: p.Index,
			Strategy: fuzz.StrategyFull, Seed: deviceSeed(p.Index), Budget: time.Second,
		})
	}
	outs, err := runCampaigns("table4", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []Table4Row
	for i, p := range profiles {
		c := outs[i].Campaign
		row := Table4Row{
			Index:    p.Index,
			Home:     c.Fingerprint.Home.String(),
			NodeID:   fmt.Sprintf("0x%02X", byte(c.Fingerprint.Controller)),
			Known:    len(c.Fingerprint.Listed),
			Unknown:  c.Discovery.UnknownCount(),
			Commands: len(c.Discovery.ConfirmedCommands),
		}
		rows = append(rows, row)
		out.AddRow(row.Index, row.Home, row.NodeID,
			fmt.Sprintf("%d CMDCLs", row.Known), fmt.Sprintf("%d CMDCLs", row.Unknown))
	}
	return out, rows, nil
}

// Table5Row is one controller's comparison outcome.
type Table5Row struct {
	Index                       string
	VFuzzClasses, VFuzzCommands int
	VFuzzVulns                  int
	ZCoverClasses, ZCoverCmds   int
	ZCoverVulns                 int
	Overlap                     int
}

// Table5 compares VFuzz and ZCover on controllers D1–D5 with equal
// budgets (24 h in the paper).
func Table5(duration time.Duration) (*report.Table, []Table5Row, error) {
	return Table5Fleet(duration, fleet.Config{})
}

// Table5Fleet is Table5 with the ten campaigns (VFuzz + ZCover per
// device) scheduled across a fleet worker pool.
func Table5Fleet(duration time.Duration, cfg fleet.Config) (*report.Table, []Table5Row, error) {
	outs, err := runCampaigns("table5", table5Jobs(duration), cfg)
	if err != nil {
		return nil, nil, err
	}
	return renderTable5(outs)
}

// table5Jobs builds Table V's job list: one VFuzz and one ZCover
// campaign per controller D1–D5. The list (order included) is what the
// campaign's spec hash fingerprints, so the local checkpoint path and
// the distributed coordinator provably execute the same sweep.
func table5Jobs(duration time.Duration) []fleet.Job {
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	var jobs []fleet.Job
	for _, idx := range table5Devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "table5/" + idx + "/vfuzz", Device: idx,
				Baseline: true, Seed: seed, Budget: duration},
			fleet.Job{Name: "table5/" + idx + "/zcover", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration})
	}
	return jobs
}

// table5Devices are Table V's controllers, in row order.
var table5Devices = []string{"D1", "D2", "D3", "D4", "D5"}

// renderTable5 renders Table V from its campaign outcomes (index-aligned
// with table5Jobs).
func renderTable5(outs []FleetOutcome) (*report.Table, []Table5Row, error) {
	out := &report.Table{
		Title: "Table V: CMDCL coverage and unique vulnerability discovery, VFuzz vs ZCover",
		Headers: []string{"ID", "VFuzz CMDCL", "VFuzz CMD", "VFuzz #Vul",
			"ZCover CMDCL", "ZCover CMD", "ZCover #Vul", "Common"},
		Notes: []string{
			"VFuzz covers the whole 256-value CMDCL range; ZCover prioritises the",
			"45 known+unknown CMDCLs and the 53 validated commands.",
		},
	}
	devices := table5Devices
	var rows []Table5Row
	for i, idx := range devices {
		vres := outs[2*i].Baseline
		zc := outs[2*i+1].Campaign
		overlap := 0
		zSigs := make(map[string]bool, len(zc.Fuzz.Findings))
		for _, f := range zc.Fuzz.Findings {
			zSigs[f.Signature] = true
		}
		for _, f := range vres.Findings {
			if zSigs[f.Signature] {
				overlap++
			}
		}
		row := Table5Row{
			Index:        idx,
			VFuzzClasses: vres.ClassesCovered, VFuzzCommands: vres.CommandsCovered,
			VFuzzVulns:    len(vres.Findings),
			ZCoverClasses: zc.Fuzz.ClassesCovered, ZCoverCmds: zc.Fuzz.CommandsCovered,
			ZCoverVulns: len(zc.Fuzz.Findings),
			Overlap:     overlap,
		}
		rows = append(rows, row)
		out.AddRow(idx,
			strconv.Itoa(row.VFuzzClasses), strconv.Itoa(row.VFuzzCommands), strconv.Itoa(row.VFuzzVulns),
			strconv.Itoa(row.ZCoverClasses), strconv.Itoa(row.ZCoverCmds), strconv.Itoa(row.ZCoverVulns),
			strconv.Itoa(row.Overlap))
	}
	return out, rows, nil
}

// Table6Row is one ablation configuration's outcome.
type Table6Row struct {
	Test     int
	Config   string
	Strategy fuzz.Strategy
	Vulns    int
	Packets  int
}

// Table6 runs the ablation study: one hour on the ZooZ controller under
// the three configurations of §IV-D.
func Table6(duration time.Duration) (*report.Table, []Table6Row, error) {
	return Table6Fleet(duration, fleet.Config{})
}

// Table6Fleet is Table6 with the three ablation campaigns scheduled
// across a fleet worker pool.
func Table6Fleet(duration time.Duration, fcfg fleet.Config) (*report.Table, []Table6Row, error) {
	if duration <= 0 {
		duration = time.Hour
	}
	configs := []struct {
		test     int
		name     string
		strategy fuzz.Strategy
		seed     int64
	}{
		{1, "ZCover full (known + unknown CMDCLs + PSM)", fuzz.StrategyFull, deviceSeed("D1")},
		{2, "ZCover beta (known CMDCLs only + PSM)", fuzz.StrategyKnownOnly, deviceSeed("D1")},
		{3, "ZCover gamma (random CMDCLs + no PSM)", fuzz.StrategyRandom, ablationGammaSeed},
	}
	out := &report.Table{
		Title:   "Table VI: ablation study on ZCover core features (1 h, ZooZ controller)",
		Headers: []string{"Test", "Fuzzing configuration", "#Vul."},
	}
	var jobs []fleet.Job
	for _, cfg := range configs {
		jobs = append(jobs, fleet.Job{
			Name: fmt.Sprintf("table6/%d/%s", cfg.test, cfg.strategy), Device: "D1",
			Strategy: cfg.strategy, Seed: cfg.seed, Budget: duration,
		})
	}
	outs, err := runCampaigns("table6", jobs, fcfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []Table6Row
	for i, cfg := range configs {
		c := outs[i].Campaign
		row := Table6Row{
			Test: cfg.test, Config: cfg.name, Strategy: cfg.strategy,
			Vulns: len(c.Fuzz.Findings), Packets: c.Fuzz.PacketsSent,
		}
		rows = append(rows, row)
		out.AddRow(strconv.Itoa(cfg.test), cfg.name, strconv.Itoa(row.Vulns))
	}
	return out, rows, nil
}

// Fig12Series is one device's detection timeline.
type Fig12Series struct {
	Index string
	// Samples is the packets-over-time curve.
	Samples []fuzz.Sample
	// Discoveries marks each unique finding (time, packet count).
	Discoveries []fuzz.Finding
}

// Fig12 regenerates the detection timelines for the four devices of
// Figure 12 (ZooZ, Nortek, Aeotec, ZWaveMe). The campaign runs for the
// full duration; the figure window trims to the first windowSecs seconds,
// where most discoveries land.
func Fig12(duration time.Duration, window time.Duration) ([]*report.CSV, []Fig12Series, error) {
	return Fig12Fleet(duration, window, fleet.Config{})
}

// Fig12Fleet is Fig12 with the four timeline campaigns scheduled across a
// fleet worker pool.
func Fig12Fleet(duration, window time.Duration, cfg fleet.Config) ([]*report.CSV, []Fig12Series, error) {
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	if window <= 0 {
		window = 800 * time.Second
	}
	devices := []string{"D1", "D3", "D4", "D5"}
	var jobs []fleet.Job
	for _, idx := range devices {
		jobs = append(jobs, fleet.Job{
			Name: "fig12/" + idx, Device: idx,
			Strategy: fuzz.StrategyFull, Seed: deviceSeed(idx), Budget: duration,
		})
	}
	outs, err := runCampaigns("fig12", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	var csvs []*report.CSV
	var series []Fig12Series
	for i, idx := range devices {
		c := outs[i].Campaign
		s := Fig12Series{Index: idx}
		csv := &report.CSV{Headers: []string{"elapsed_s", "packets", "unique", "discovery"}}
		for _, sample := range c.Fuzz.Timeline {
			if sample.Elapsed > window {
				break
			}
			s.Samples = append(s.Samples, sample)
			csv.AddRow(report.Seconds(sample.Elapsed), strconv.Itoa(sample.Packets),
				strconv.Itoa(sample.Unique), "")
		}
		for _, f := range c.Fuzz.Findings {
			s.Discoveries = append(s.Discoveries, f)
			if f.Elapsed <= window {
				csv.AddRow(report.Seconds(f.Elapsed), strconv.Itoa(f.Packets), "", f.Signature)
			}
		}
		csvs = append(csvs, csv)
		series = append(series, s)
	}
	return csvs, series, nil
}
