// Fingerprint walkthrough: the two scanning stages of ZCover's phase 1
// (§III-B) plus the discovery phase (§III-C), step by step, against a
// legacy controller that lists only 15 of its command classes.
package main

import (
	"fmt"
	"log"
	"time"

	"zcover"
	"zcover/internal/cmdclass"
	"zcover/internal/zcover/discover"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

func main() {
	tb, err := zcover.NewTestbed("D5", 5) // ZWaveMe ZMEUUZB1 (2015)
	if err != nil {
		log.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)

	// -- Passive scanning: capture, dissect, analyse (Fig. 4) -------------
	fmt.Println("== Passive scanning ==")
	tb.ScheduleTraffic(8, 10*time.Second)
	nets := scan.Passive(d, 90*time.Second)
	for _, n := range nets {
		fmt.Printf("network %s: nodes %v, controller node %s (%d frames)\n",
			n.Home, n.Nodes, n.Controller, n.Frames)
	}

	// -- Active scanning: interrogation, NIF query, response analysis -----
	fmt.Println("\n== Active scanning ==")
	fp, err := scan.Active(d, nets[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller NIF lists %d command classes:\n", len(fp.Listed))
	reg := cmdclass.MustLoad()
	for _, id := range fp.Listed {
		name := "?"
		if cls, ok := reg.Get(id); ok {
			name = cls.Name
		}
		fmt.Printf("  %s %s\n", id, name)
	}

	// -- Unknown properties discovery --------------------------------------
	fmt.Println("\n== Unknown properties discovery ==")
	res, err := discover.Run(d, reg, fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spec clustering infers %d unlisted controller classes\n", len(res.UnlistedSpec))
	fmt.Printf("validation testing confirms %d proprietary classes outside the spec:\n",
		len(res.HiddenConfirmed))
	for _, cls := range res.HiddenConfirmed {
		fmt.Printf("  %s %s (%d commands)\n", cls.ID, cls.Name, len(cls.Commands))
	}
	fmt.Printf("unknown CMDCLs total: %d (Table IV)\n", res.UnknownCount())
	fmt.Printf("validated commands:   %d (Table V)\n", len(res.ConfirmedCommands))
	fmt.Printf("fuzzing queue:        %d classes, highest priority %s (%s)\n",
		len(res.Prioritized), res.Prioritized[0].ID, res.Prioritized[0].Name)
	fmt.Printf("validation probes:    %d packets, zero anomalies triggered: %v\n",
		res.ProbesSent, len(tb.Bus.Events()) == 0)
}
