// Package telemetry is the process-wide observability layer of the ZCover
// reproduction: a metrics registry (named atomic counters, gauges, and
// fixed-bucket histograms), a bounded packet flight recorder, and a
// span-style tracer.
//
// The paper's evaluation is made of derived metrics — packets per campaign,
// detection latencies, outage durations, coverage counts (Tables V/VI,
// Figs. 8–12) — and Algorithm 1 explicitly logs findings "to file for
// future analysis". This package gives every layer of the pipeline a single
// place to emit those signals in machine-readable form: Prometheus text
// exposition for scrapers, a single JSON document for the bench trajectory,
// JSONL traces for post-mortem replay.
//
// Design constraints, in order:
//
//   - Determinism. Telemetry must never feed back into simulation results:
//     nothing here is consulted by the pipeline, and with telemetry enabled
//     the experiment tables stay byte-identical across worker counts.
//   - Hot-path cost. Counter/gauge/histogram updates are single atomic
//     operations with no locks and no allocation; instrument handles are
//     resolved once (package init or construction time), never per event.
//   - Sim-time awareness. Registries can be pointed at a vtime.SimClock's
//     Now so exported timestamps live on the simulated timeline.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. All methods are lock-free
// and safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can move in both directions (queue depths, live
// totals with rollback). All methods are lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n, which may be negative.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is a fixed-bucket cumulative histogram. Bucket bounds are
// immutable after construction; Observe is a binary search over a handful
// of bounds plus two atomic adds — no locks, no allocation.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket follows
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. Values land in the first bucket whose upper
// bound is >= v (Prometheus "le" semantics); values above every bound land
// in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns a copy of the bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Registry is a named collection of instruments. Get-or-create lookups
// take a lock; the returned handles are lock-free, so callers resolve a
// handle once and hold it. The zero value is not usable; construct with
// NewRegistry or use the process-wide Default.
type Registry struct {
	mu    sync.Mutex
	now   func() time.Time
	ctrs  map[string]*Counter
	ggs   map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry stamped with wall-clock time.
func NewRegistry() *Registry {
	return &Registry{
		now:   time.Now,
		ctrs:  map[string]*Counter{},
		ggs:   map[string]*Gauge{},
		hists: map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Package-level instrumentation
// (radio frames, crypto operations, decode failures) registers here.
func Default() *Registry { return defaultRegistry }

// SetNow points exported timestamps at the given clock — typically a
// vtime.SimClock's Now, so snapshots carry simulated time. Nil restores
// wall clock.
func (r *Registry) SetNow(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	r.now = now
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.ggs[name]
	if !ok {
		g = &Gauge{}
		r.ggs[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use. Later calls return the existing histogram and
// ignore the bounds, so every registration site should agree on them.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset zeroes every registered instrument (handles stay valid). Intended
// for tests that assert on absolute counts.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ctrs {
		c.v.Store(0)
	}
	for _, g := range r.ggs {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
		h.count.Store(0)
		h.sum.Store(0)
	}
}

// snapshot collects a stable, name-sorted view for the exporters.
func (r *Registry) snapshot() (at time.Time, ctrs, ggs []namedValue, hists []namedHist) {
	r.mu.Lock()
	defer r.mu.Unlock()
	at = r.now()
	for name, c := range r.ctrs {
		ctrs = append(ctrs, namedValue{name, c.Load()})
	}
	for name, g := range r.ggs {
		ggs = append(ggs, namedValue{name, g.Load()})
	}
	for name, h := range r.hists {
		hists = append(hists, namedHist{name, h})
	}
	sort.Slice(ctrs, func(i, j int) bool { return ctrs[i].name < ctrs[j].name })
	sort.Slice(ggs, func(i, j int) bool { return ggs[i].name < ggs[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	return at, ctrs, ggs, hists
}

type namedValue struct {
	name string
	v    int64
}

type namedHist struct {
	name string
	h    *Histogram
}

// WritePrometheus renders the registry in Prometheus text exposition
// format, instruments sorted by name so output is stable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	_, ctrs, ggs, hists := r.snapshot()
	for _, c := range ctrs {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.v); err != nil {
			return err
		}
	}
	for _, g := range ggs {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", g.name, g.name, g.v); err != nil {
			return err
		}
	}
	for _, nh := range hists {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", nh.name); err != nil {
			return err
		}
		counts := nh.h.BucketCounts()
		cum := int64(0)
		for i, bound := range nh.h.bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", nh.name, formatBound(bound), cum); err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			nh.name, cum, nh.name, nh.h.Sum(), nh.name, nh.h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// WriteFile dumps the registry to path, picking the format from the
// extension: a single JSON document for ".json", Prometheus text exposition
// otherwise. This is what the -metrics-out command-line flags call on exit.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// jsonHistogram is the JSON-export form of one histogram.
type jsonHistogram struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  int64     `json:"count"`
}

// jsonDocument is the single-document JSON export shape.
type jsonDocument struct {
	At         time.Time                `json:"at"`
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]jsonHistogram `json:"histograms"`
}

// WriteJSON renders the registry as one indented JSON document. The "at"
// timestamp comes from the registry clock (simulated time when SetNow was
// pointed at a SimClock); map keys serialise sorted, so output is stable.
func (r *Registry) WriteJSON(w io.Writer) error {
	at, ctrs, ggs, hists := r.snapshot()
	doc := jsonDocument{
		At:         at,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]jsonHistogram{},
	}
	for _, c := range ctrs {
		doc.Counters[c.name] = c.v
	}
	for _, g := range ggs {
		doc.Gauges[g.name] = g.v
	}
	for _, nh := range hists {
		doc.Histograms[nh.name] = jsonHistogram{
			Bounds: nh.h.Bounds(),
			Counts: nh.h.BucketCounts(),
			Sum:    nh.h.Sum(),
			Count:  nh.h.Count(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
