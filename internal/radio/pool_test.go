package radio

import (
	"bytes"
	"testing"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/telemetry"
	"zcover/internal/vtime"
)

// TestRecorderUnaffectedByPooledDelivery drives the impaired delivery path
// (which serves receivers from pooled scratch copies) with a flight
// recorder attached, then keeps transmitting so the pool reuses those
// buffers. Earlier recorder snapshots must stay byte-identical — the
// recorder copies into ring-owned storage, so pooled-buffer reuse cannot
// reach it.
func TestRecorderUnaffectedByPooledDelivery(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	m.SetImpairments(0, 1.0, 42) // corrupt every frame: all deliveries pooled
	rec := telemetry.NewFlightRecorder(64)
	m.SetFlightRecorder(rec)
	tx := m.Attach("tx", RegionEU)
	rx := m.Attach("rx", RegionEU)
	rx.SetReceiver(func(Capture) {})

	first := []byte{0x10, 0x20, 0x30, 0x40, 0x50}
	if err := tx.Transmit(first); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	snap := rec.Snapshot()
	if len(snap) != 1 || !bytes.Equal(snap[0].Raw, first) {
		t.Fatalf("recorder holds %x, want the transmitted %x", snap[0].Raw, first)
	}

	// Churn the buffer pool: every transmit borrows and returns a pooled
	// corruption copy. The earlier snapshot must not move.
	for i := 0; i < 50; i++ {
		if err := tx.Transmit([]byte{0xEE, byte(i), 0xEE, byte(i)}); err != nil {
			t.Fatal(err)
		}
		clock.RunUntilIdle()
	}
	if !bytes.Equal(snap[0].Raw, first) {
		t.Fatalf("snapshot mutated by pooled-buffer reuse: %x", snap[0].Raw)
	}
}

// TestCorruptDeliveryIsPrivatePerReceiver checks that the pooled corrupt
// copy handed to one receiver is not visible to others and never leaks the
// corruption back into the transmitter's buffer.
func TestCorruptDeliveryIsPrivatePerReceiver(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	m.SetImpairments(0, 1.0, 7)
	tx := m.Attach("tx", RegionEU)
	raw := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]byte(nil), raw...)
	seen := make(map[string][]byte)
	for _, name := range []string{"a", "b"} {
		name := name
		r := m.Attach(name, RegionEU)
		r.SetReceiver(func(c Capture) {
			seen[name] = append([]byte(nil), c.Raw...)
		})
	}
	if err := tx.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	if !bytes.Equal(raw, orig) {
		t.Fatalf("transmit buffer mutated by corruption path: %x", raw)
	}
	for name, got := range seen {
		if bytes.Equal(got, orig) {
			t.Fatalf("receiver %s saw uncorrupted frame under 100%% noise", name)
		}
		if len(got) != len(orig) {
			t.Fatalf("receiver %s frame length changed: %d", name, len(got))
		}
	}
}

// TestPooledEncodeBufferConcurrentTransmit exercises GetBuf/PutBuf reuse
// across concurrent transmitters under -race: many goroutines each append
// into pooled buffers (via the device send path shape) and transmit, while
// a recorder and a corrupting medium churn the same pool.
func TestPooledEncodeBufferConcurrentTransmit(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	m.SetImpairments(0, 0.5, 3)
	rec := telemetry.NewFlightRecorder(16)
	m.SetFlightRecorder(rec)
	rx := m.Attach("rx", RegionEU)
	rx.SetReceiver(func(Capture) {})

	done := make(chan struct{})
	const workers = 6
	for w := 0; w < workers; w++ {
		w := w
		trx := m.Attach("w"+string(rune('a'+w)), RegionEU)
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				buf := protocol.GetBuf()
				*buf = append(*buf, 0xC0, byte(w), byte(i), 0xFE)
				if err := trx.Transmit(*buf); err != nil {
					t.Errorf("transmit: %v", err)
					protocol.PutBuf(buf)
					return
				}
				protocol.PutBuf(buf)
			}
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("timeout waiting for transmitters")
		}
	}
	clock.RunUntilIdle()
	if rec.Recorded() != workers*100 {
		t.Fatalf("recorded %d frames, want %d", rec.Recorded(), workers*100)
	}
}
