package radio

import (
	"testing"

	"zcover/internal/vtime"
)

func BenchmarkTransmitFanout(b *testing.B) {
	m := NewMedium(vtime.NewSimClock())
	tx := m.Attach("tx", RegionUS)
	for i := 0; i < 8; i++ {
		m.Attach("rx", RegionUS).SetReceiver(func(Capture) {})
	}
	raw := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tx.Transmit(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransmitWithRangeModel(b *testing.B) {
	m := NewMedium(vtime.NewSimClock())
	m.SetRange(40)
	tx := m.Attach("tx", RegionUS)
	tx.Place(0, 0)
	for i := 0; i < 8; i++ {
		rx := m.Attach("rx", RegionUS)
		rx.Place(float64(i*10), 0)
		rx.SetReceiver(func(Capture) {})
	}
	raw := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tx.Transmit(raw); err != nil {
			b.Fatal(err)
		}
	}
}
