// Package coverage provides the behavioral-coverage signal that turns the
// spec-driven generational fuzzer into a feedback-driven one (CovFUZZ-style
// coverage guidance, transplanted to an emulated target we fully control).
//
// Over-the-air fuzzers are blind: they see acks and silence. Because every
// testbed controller is emulated in-process, the simulation can expose what
// real firmware hides — which dispatch paths a payload reached, how deeply
// its encapsulations unwrapped, whether it arrived through the S2 session,
// which Serial API handlers the host exercised, and how close the oracle
// came to firing. The Collector folds those observations into a fixed-size
// feature map; the CovFuzz engine admits an input to its corpus exactly
// when the input's map footprint contains something the campaign has not
// seen before.
//
// # Determinism
//
// The map is a plain array indexed by a multiplicative hash of a packed
// feature key. No Go map iteration, no wall clock, no RNG: replaying the
// same frame sequence against the same controller reproduces the same map
// bit for bit, which is what makes corpus checkpoint replay (and the
// workers=1 vs workers=N table identity) sound.
//
// # Hot-path cost
//
// Hooks are nil-guarded at every call site, so a campaign that does not
// attach a Collector pays one pointer compare per dispatched frame and
// allocates nothing (the PERFORMANCE.md contract). With a Collector
// attached, recording is array arithmetic on preallocated storage; the
// only allocations are the one-time NewCollector buffers and the amortised
// growth of the per-input touched list.
package coverage

import (
	"zcover/internal/telemetry"
)

// Process-wide coverage metrics: inputs measured, inputs that contributed
// novel behaviour, and distinct features accumulated across all campaigns.
var (
	mInputs      = telemetry.Default().Counter("coverage_inputs_total")
	mNovelInputs = telemetry.Default().Counter("coverage_novel_inputs_total")
	mFeatures    = telemetry.Default().Counter("coverage_features_total")
)

// mapBits sizes the feature map: 64 Ki buckets comfortably holds the full
// feature space (site × class × cmd × depth × security is ~2^21 packed
// keys, but a campaign touches a few thousand) at negligible collision
// rates, while keeping the Collector's fixed buffers at ~500 KiB.
const mapBits = 16

// MapSize is the number of buckets in the coverage map.
const MapSize = 1 << mapBits

// Hook sites: the top nibble of a packed feature key names the
// instrumentation point that produced it, so the same (class, cmd) pair
// reached through different layers counts as different behaviour.
const (
	siteDispatch uint32 = 1 // application-layer dispatch (controller)
	siteSerial   uint32 = 2 // Serial API handler invocation
	siteOracle   uint32 = 3 // oracle anomaly emission
)

// countClass buckets a per-input hit count AFL-style, so "this payload hit
// the supervision parser 40 times" is a different feature from "once"
// without every count being novel.
func countClass(n uint16) uint8 {
	switch {
	case n == 0:
		return 0
	case n == 1:
		return 1 << 0
	case n == 2:
		return 1 << 1
	case n == 3:
		return 1 << 2
	case n <= 7:
		return 1 << 3
	case n <= 15:
		return 1 << 4
	case n <= 31:
		return 1 << 5
	case n <= 127:
		return 1 << 6
	default:
		return 1 << 7
	}
}

// Collector accumulates behavioral coverage for one campaign. It is NOT
// safe for concurrent use: a campaign's simulation driver is
// single-threaded (the fleet gives every campaign a private testbed), and
// keeping the recorder lock-free is what keeps the attached-but-idle cost
// near zero. One Collector observes one testbed.
type Collector struct {
	// classes is the accumulated map: per bucket, the bitmask of count
	// classes observed across all admitted measurement windows.
	classes [MapSize]uint8
	// cur / stamp implement O(touched) per-input reset: cur[i] is valid
	// only when stamp[i] == epoch, so BeginInput is a counter increment
	// rather than a 64 Ki memset.
	cur   [MapSize]uint16
	stamp [MapSize]uint32
	epoch uint32
	// touched lists the buckets hit since BeginInput, in first-hit order.
	touched []uint32

	features int
	inputs   uint64
	novel    uint64
}

// NewCollector builds an empty coverage map.
func NewCollector() *Collector {
	return &Collector{
		epoch:   1,
		touched: make([]uint32, 0, 256),
	}
}

// record folds one packed feature key into the current input's footprint.
func (c *Collector) record(key uint32) {
	// Multiplicative hashing (Knuth's 2654435761) spreads the packed keys
	// across the map; deterministic, no per-call state.
	idx := (key * 2654435761) >> (32 - mapBits)
	if c.stamp[idx] != c.epoch {
		c.stamp[idx] = c.epoch
		c.cur[idx] = 0
		c.touched = append(c.touched, idx)
	}
	if c.cur[idx] != ^uint16(0) {
		c.cur[idx]++
	}
}

// OnDispatch records an application-layer dispatch: the controller routed
// a payload of the given class and command at the given encapsulation
// depth; secure marks payloads that arrived through the S2 session (the
// "security class reached" axis).
func (c *Collector) OnDispatch(class, cmd byte, depth int, secure bool) {
	if c == nil {
		return
	}
	key := siteDispatch<<28 | uint32(class)<<16 | uint32(cmd)<<8 | uint32(depth&0x3)<<1
	if secure {
		key |= 1
	}
	c.record(key)
}

// OnSerial records a Serial API function invocation on the host interface.
func (c *Collector) OnSerial(funcID byte) {
	if c == nil {
		return
	}
	c.record(siteSerial<<28 | uint32(funcID))
}

// OnOracle records an oracle anomaly emission. Both the exact
// (kind, class, cmd) tuple and the coarse kind-only feature are recorded:
// the coarse feature makes any first sighting of an anomaly kind novel,
// and the exact one keeps distinct trigger vectors distinguishable — the
// "oracle-event proximity" axis that rewards inputs landing near an
// already-known effect through a new vector.
func (c *Collector) OnOracle(kind int, class, cmd byte) {
	if c == nil {
		return
	}
	c.record(siteOracle<<28 | uint32(kind&0xFF)<<16 | uint32(class)<<8 | uint32(cmd))
	c.record(siteOracle<<28 | 0xFF0000 | uint32(kind&0xFF))
}

// BeginInput opens a measurement window: subsequent hook records are
// attributed to the input under test until EndInput.
func (c *Collector) BeginInput() {
	c.epoch++
	c.touched = c.touched[:0]
}

// EndInput closes the measurement window and folds the input's footprint
// into the accumulated map. It returns the number of new features the
// input contributed — new buckets and new hit-count classes of known
// buckets both count; zero means the input exhibited nothing unseen. This
// is the corpus admission signal.
func (c *Collector) EndInput() (newFeatures int) {
	c.inputs++
	mInputs.Inc()
	for _, idx := range c.touched {
		cls := countClass(c.cur[idx])
		if c.classes[idx]&cls != 0 {
			continue
		}
		if c.classes[idx] == 0 {
			c.features++
			mFeatures.Inc()
		}
		c.classes[idx] |= cls
		newFeatures++
	}
	if newFeatures > 0 {
		c.novel++
		mNovelInputs.Inc()
	}
	return newFeatures
}

// Features reports how many distinct map buckets have been hit.
func (c *Collector) Features() int { return c.features }

// Density reports the fraction of map buckets hit, in [0, 1].
func (c *Collector) Density() float64 { return float64(c.features) / MapSize }

// Inputs reports how many measurement windows have been closed.
func (c *Collector) Inputs() uint64 { return c.inputs }

// NovelInputs reports how many windows contributed at least one new
// feature.
func (c *Collector) NovelInputs() uint64 { return c.novel }

// Stats is a serialisable summary of a Collector — what campaign results
// and the -coverage-out artifact carry.
type Stats struct {
	// Features is the number of distinct map buckets hit.
	Features int `json:"features"`
	// Density is Features / MapSize.
	Density float64 `json:"density"`
	// Inputs and NovelInputs count measurement windows.
	Inputs      uint64 `json:"inputs"`
	NovelInputs uint64 `json:"novel_inputs"`
}

// Stats snapshots the collector's summary.
func (c *Collector) Stats() Stats {
	return Stats{
		Features:    c.features,
		Density:     c.Density(),
		Inputs:      c.inputs,
		NovelInputs: c.novel,
	}
}
