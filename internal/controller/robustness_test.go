package controller

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
)

// radioRegionUS shortens the storm tests.
const radioRegionUS = radio.RegionUS

// Robustness properties: no input — well-formed, malformed, or raw line
// noise — may panic the controller model, and certain invariants must hold
// under arbitrary packet storms.

// TestControllerNeverPanicsOnRandomPayloads storms the application layer
// with arbitrary payloads.
func TestControllerNeverPanicsOnRandomPayloads(t *testing.T) {
	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, "D4")
		for i := 0; i < 50; i++ {
			payload := make([]byte, rng.Intn(40))
			rng.Read(payload)
			if err := r.attacker.Send(0x01, payload); err != nil {
				// Oversized payloads cannot encode; that is the sender's
				// problem, not the controller's.
				continue
			}
			r.clock.Advance(time.Second)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerNeverPanicsOnRawNoise storms the raw radio path (which
// bypasses the frame codec) with random bytes.
func TestControllerNeverPanicsOnRawNoise(t *testing.T) {
	prop := func(seed int64) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, "D2")
		trx := r.medium.Attach("noise", radioRegionUS)
		d4, _ := ProfileByIndex("D2")
		for i := 0; i < 50; i++ {
			raw := make([]byte, rng.Intn(protocol.MaxFrameSize)+1)
			rng.Read(raw)
			if rng.Intn(2) == 0 && len(raw) >= protocol.HeaderSize {
				// Half the storm carries the right home ID so it passes
				// the hardware filter and reaches the parser models.
				h := d4.Home
				raw[0], raw[1], raw[2], raw[3] = byte(h>>24), byte(h>>16), byte(h>>8), byte(h)
				raw[8] = 0x01
			}
			if err := trx.Transmit(raw); err != nil {
				return false
			}
			r.clock.Advance(100 * time.Millisecond)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerSelfEntryInvariant: whatever the storm does to the node
// table, the controller's own entry must survive (it refuses to
// unregister itself, and overwrites re-seed it).
func TestControllerSelfEntryInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := newRig(t, "D6")
		for i := 0; i < 80; i++ {
			// Storm the node-registration vector specifically.
			payload := append([]byte{0x01, 0x0D}, make([]byte, rng.Intn(10))...)
			rng.Read(payload[2:])
			if err := r.attacker.Send(0x01, payload); err != nil {
				return false
			}
		}
		_, ok := r.ctrl.Table().Get(0x01)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestControllerBusyNeverNegative: hang windows only extend; time heals
// them without intervention.
func TestControllerHangsAlwaysHeal(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x01, 0x04, 0x1D}) // 4-minute hang (the longest)
	if !r.ctrl.Busy() {
		t.Fatal("controller not busy")
	}
	r.clock.Advance(4*time.Minute + time.Second)
	if r.ctrl.Busy() {
		t.Fatal("controller did not heal after the hang window")
	}
	acks := r.acks
	r.inject(t, []byte{0x00})
	if r.acks != acks+1 {
		t.Fatal("healed controller not responding")
	}
}
