// Command zcover runs a complete ZCover campaign — fingerprinting,
// discovery, and position-sensitive fuzzing — against one emulated
// testbed controller and prints the findings.
//
// Usage:
//
//	zcover -target D4 -strategy full -duration 24h -seed 1
//
// Targets are the paper's Table II controllers (D1..D7). Strategies are
// full (default), beta (known command classes only), and gamma (random).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"zcover"
	"zcover/internal/obs"
	"zcover/internal/report"
	"zcover/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "zcover:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Subcommands dispatch before flag parsing; a bare invocation is the
	// classic single-campaign CLI.
	if len(args) > 0 {
		switch args[0] {
		case "coordinate":
			return runCoordinate(args[1:])
		case "work":
			return runWork(args[1:])
		}
	}
	fs := flag.NewFlagSet("zcover", flag.ContinueOnError)
	target := fs.String("target", "D1", "testbed controller to attack (D1..D7)")
	strategy := fs.String("strategy", "full", "fuzzing strategy: full, beta, or gamma")
	duration := fs.Duration("duration", time.Hour, "fuzzing budget in simulated time")
	seed := fs.Int64("seed", 1, "deterministic campaign seed")
	verbose := fs.Bool("v", false, "stream findings live as they are discovered")
	metricsOut := fs.String("metrics-out", "", "write final metrics to this file (.json = JSON document, else Prometheus text)")
	traceOut := fs.String("trace-out", "", "write phase spans to this file as JSON lines")
	flightDepth := fs.Int("flight-recorder", 0, "attach a packet flight recorder of this depth; findings carry frame traces (0 = off)")
	chaosProfile := fs.String("chaos-profile", "", "impair the channel with this fault profile, e.g. burst, noise, jitter, lossy:corrupt=0.1 (empty = clean)")
	chaosSeed := fs.Int64("chaos-seed", 1, "deterministic seed for the fault injector's impairment streams")
	obsAddr := fs.String("obs-addr", "", "serve the observability endpoints (/debug/pprof, /metrics, /healthz, /timeline) on this address, e.g. localhost:6060")
	pprofAddr := fs.String("pprof", "", "deprecated alias for -obs-addr")
	profileDir := fs.String("profile-dir", "", "enable mutex/block contention profiling and write pprof-format snapshots into this directory at campaign end")
	ckptDir := fs.String("checkpoint-dir", "", "journal the campaign outcome into this directory (crash-safe; replay with -resume)")
	resume := fs.Bool("resume", false, "continue an existing journal in -checkpoint-dir or -corpus-dir instead of refusing to overwrite it")
	fuzzMode := fs.String("fuzz-mode", "zcover", "fuzzing engine: zcover (generational Algorithm 1) or coverage (behavioral-coverage-guided)")
	corpusDir := fs.String("corpus-dir", "", "coverage mode: journal every admitted corpus seed into this directory (crash-safe; resumable with -resume)")
	coverageOut := fs.String("coverage-out", "", "coverage mode: write the final coverage-map stats to this file as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *resume && *ckptDir == "" && *corpusDir == "" {
		return fmt.Errorf("-resume needs -checkpoint-dir or -corpus-dir")
	}
	switch *fuzzMode {
	case "zcover":
		if *corpusDir != "" || *coverageOut != "" {
			return fmt.Errorf("-corpus-dir and -coverage-out need -fuzz-mode coverage")
		}
	case "coverage":
		if *ckptDir != "" {
			return fmt.Errorf("coverage mode persists through -corpus-dir, not -checkpoint-dir")
		}
		if *strategy != "full" {
			return fmt.Errorf("coverage mode always runs the full discovery pipeline; drop -strategy")
		}
	default:
		return fmt.Errorf("unknown fuzz mode %q (want zcover or coverage)", *fuzzMode)
	}
	if addr := firstNonEmpty(*obsAddr, *pprofAddr); addr != "" {
		// Binds synchronously: a bad address fails here, before any
		// campaign work, instead of being printed and swallowed mid-run.
		srv, err := obs.NewServer(addr, telemetry.Default(), nil)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Close(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "zcover: obs server:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "zcover: observability on http://%s\n", srv.Addr())
	}
	if *profileDir != "" {
		restore := obs.StartProfiling(obs.ProfileConfig{})
		defer restore()
		defer func() {
			obs.SampleRuntimeMetrics(telemetry.Default())
			if err := obs.SnapshotProfiles(*profileDir); err != nil {
				fmt.Fprintln(os.Stderr, "zcover: profile snapshots:", err)
			}
		}()
	}

	var strat zcover.Strategy
	switch *strategy {
	case "full":
		strat = zcover.StrategyFull
	case "beta":
		strat = zcover.StrategyKnownOnly
	case "gamma":
		strat = zcover.StrategyRandom
	default:
		return fmt.Errorf("unknown strategy %q (want full, beta, or gamma)", *strategy)
	}

	tb, err := zcover.NewTestbed(*target, *seed)
	if err != nil {
		return err
	}
	if *chaosProfile != "" {
		p, err := zcover.ParseChaosProfile(*chaosProfile)
		if err != nil {
			return err
		}
		tb.ApplyChaos(p, *chaosSeed)
	}
	fmt.Printf("ZCover %s — target %s (%s %s), strategy %s, budget %s\n",
		zcover.Version, *target, tb.Controller.Profile().Brand,
		tb.Controller.Profile().Model, *strategy, *duration)
	if tb.Chaos != nil {
		fmt.Printf("Chaos — profile %s, seed %d\n", tb.Chaos.Profile(), *chaosSeed)
	}
	fmt.Println()

	opts := zcover.Options{FlightRecorderDepth: *flightDepth}
	if *verbose {
		opts.OnFinding = func(f zcover.Finding) {
			fmt.Printf("  [%8s] pkt %-6d %s\n", f.Elapsed.Round(time.Second), f.Packets, f.Signature)
		}
	}
	if *traceOut != "" {
		tf, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer tf.Close()
		opts.Tracer = telemetry.NewTracer(tf, nil)
	}
	if *fuzzMode == "coverage" {
		if *corpusDir != "" {
			if err := os.MkdirAll(*corpusDir, 0o755); err != nil {
				return err
			}
		}
		res, err := zcover.RunCoverageWith(tb, *duration, *seed, opts,
			zcover.CovFuzzOptions{CorpusDir: *corpusDir, Resume: *resume, Minimize: true})
		if err != nil {
			return err
		}
		if *metricsOut != "" {
			if err := telemetry.Default().WriteFile(*metricsOut); err != nil {
				return err
			}
		}
		if *coverageOut != "" {
			b, err := json.MarshalIndent(res.Coverage, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*coverageOut, append(b, '\n'), 0o644); err != nil {
				return err
			}
		}
		fmt.Println("Phase 3 — behavioral-coverage-guided fuzzing")
		fmt.Printf("  packets sent  %d\n", res.PacketsSent)
		fmt.Printf("  elapsed       %s (simulated)\n", res.Elapsed.Round(time.Second))
		fmt.Printf("  corpus seeds  %d (%d minimised)\n", res.CorpusSize, res.SeedsMinimized)
		fmt.Printf("  map features  %d (density %.5f over %d novel inputs)\n",
			res.Coverage.Features, res.Coverage.Density, res.Coverage.NovelInputs)
		fmt.Printf("  duplicates    %d\n\n", res.Duplicates)
		printFindings(res.Findings)
		return nil
	}

	var c *zcover.Campaign
	resumed := false
	if *ckptDir != "" {
		if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
			return err
		}
		key := zcover.CampaignKey{
			Target: *target, Strategy: strat, Duration: *duration, Seed: *seed,
			ChaosProfile: *chaosProfile, ChaosSeed: *chaosSeed,
		}
		c, resumed, err = zcover.RunResumable(*ckptDir, *resume, key, tb, opts)
	} else {
		c, err = zcover.RunWith(tb, strat, *duration, *seed, opts)
	}
	if err != nil {
		return err
	}
	if resumed {
		fmt.Println("Campaign replayed from checkpoint journal — nothing executed.")
		fmt.Println()
	}
	if *metricsOut != "" {
		if err := telemetry.Default().WriteFile(*metricsOut); err != nil {
			return err
		}
	}

	fmt.Println("Phase 1 — known properties fingerprinting")
	fmt.Printf("  home ID      %s\n", c.Fingerprint.Home)
	fmt.Printf("  controller   node %s\n", c.Fingerprint.Controller)
	fmt.Printf("  nodes seen   %v\n", c.Fingerprint.Nodes)
	fmt.Printf("  listed       %d command classes\n\n", len(c.Fingerprint.Listed))

	if strat == zcover.StrategyFull {
		fmt.Println("Phase 2 — unknown properties discovery")
		fmt.Printf("  unlisted spec candidates  %d\n", len(c.Discovery.UnlistedSpec))
		fmt.Printf("  proprietary confirmed     %d\n", len(c.Discovery.HiddenConfirmed))
		fmt.Printf("  unknown CMDCLs            %d\n", c.Discovery.UnknownCount())
		fmt.Printf("  validated commands        %d\n", len(c.Discovery.ConfirmedCommands))
		fmt.Printf("  prioritized queue         %d classes\n\n", len(c.Discovery.Prioritized))
	}

	fmt.Println("Phase 3 — position-sensitive fuzzing")
	fmt.Printf("  packets sent  %d\n", c.Fuzz.PacketsSent)
	fmt.Printf("  elapsed       %s (simulated)\n", c.Fuzz.Elapsed.Round(time.Second))
	fmt.Printf("  duplicates    %d\n", c.Fuzz.Duplicates)
	// A replayed campaign never touched the injector, so its live stats
	// would read zero; the journaled findings still carry their grades.
	if tb.Chaos != nil && !resumed {
		s := tb.Chaos.Stats()
		fmt.Printf("  chaos faults  %d of %d deliveries (%d dropped, %d corrupted, %d duplicated, %d delayed, %d partitioned)\n",
			s.Faults(), s.Deliveries, s.Dropped, s.Corrupted, s.Duplicated, s.Delayed, s.Partitioned)
	}
	fmt.Println()

	printFindings(c.Fuzz.Findings)
	return nil
}

// firstNonEmpty returns the first non-empty string.
func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}

// printFindings renders the unique-vulnerability table shared by both
// fuzzing modes.
func printFindings(findings []zcover.Finding) {
	tbl := &report.Table{
		Title:   fmt.Sprintf("Unique vulnerabilities (%d)", len(findings)),
		Headers: []string{"#", "Elapsed", "Packet", "Signature", "Outage", "Paper bug", "Trigger payload"},
	}
	for i, f := range findings {
		ref := "-"
		if bug, ok := findBug(f.Signature); ok {
			ref = fmt.Sprintf("Bug %02d (%s)", bug.ID, bug.Confirmed)
		}
		outage := "-"
		if f.MeasuredOutage > 0 {
			outage = f.MeasuredOutage.Round(time.Second).String()
		}
		sig := f.Signature
		if f.Event.Confidence == zcover.ConfidenceSuspect {
			sig += " (suspect)"
		}
		tbl.AddRow(fmt.Sprintf("%d", i+1), f.Elapsed.Round(time.Second).String(),
			fmt.Sprintf("%d", f.Packets), sig, outage, ref,
			fmt.Sprintf("% X", f.TriggerPayload))
	}
	fmt.Print(tbl.String())
}

// findBug resolves a signature against the paper catalogue.
func findBug(sig string) (zcover.PaperBug, bool) {
	for _, b := range zcover.PaperBugs() {
		if b.Signature == sig {
			return b, true
		}
	}
	return zcover.PaperBug{}, false
}
