package ids

import (
	"strings"
	"testing"
	"time"

	"zcover/internal/harness"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/scan"
)

// trainedMonitor builds a testbed with a monitor trained on two minutes of
// normal traffic.
func trainedMonitor(t *testing.T, index string) (*testbed.Testbed, *Monitor) {
	t.Helper()
	tb, err := testbed.New(index, 3)
	if err != nil {
		t.Fatal(err)
	}
	mon := New(tb.Medium, tb.Region, tb.Home())
	tb.ScheduleTraffic(12, 10*time.Second)
	mon.Train(2*time.Minute + time.Second)
	return tb, mon
}

func TestTrainingLearnsMembership(t *testing.T) {
	_, mon := trainedMonitor(t, "D6")
	known := mon.KnownSources()
	if len(known) != 2 { // lock and switch report; the controller only acks
		t.Fatalf("known sources = %v", known)
	}
	if len(mon.Alerts()) != 0 {
		t.Fatalf("training raised alerts: %v", mon.Alerts())
	}
}

func TestNormalTrafficRaisesNoAlerts(t *testing.T) {
	tb, mon := trainedMonitor(t, "D6")
	tb.ScheduleTraffic(6, 10*time.Second)
	tb.Clock.Advance(time.Minute + time.Second)
	if alerts := mon.Alerts(); len(alerts) != 0 {
		t.Fatalf("false positives on normal traffic: %v", alerts)
	}
}

func TestDetectsFig2MemoryAttack(t *testing.T) {
	tb, mon := trainedMonitor(t, "D6")
	d := dongle.New(tb.Medium, tb.Region)
	if _, err := d.SendAndObserve(tb.Home(), scan.AttackerNodeID, testbed.ControllerID,
		[]byte{0x01, 0x0D, testbed.LockID}, dongle.DefaultResponseWindow); err != nil {
		t.Fatal(err)
	}
	rules := mon.AlertsByRule()
	if rules[RuleUnknownSource] == 0 {
		t.Error("attacker source not flagged")
	}
	if rules[RuleClearTextProtocol] == 0 {
		t.Error("clear-text protocol class not flagged")
	}
	high := 0
	for _, a := range mon.Alerts() {
		if a.Severity == SeverityHigh {
			high++
		}
	}
	if high < 2 {
		t.Fatalf("high-severity alerts = %d, want >= 2", high)
	}
}

func TestDetectsUnknownCommandFromKnownNode(t *testing.T) {
	tb, mon := trainedMonitor(t, "D1")
	d := dongle.New(tb.Medium, tb.Region)
	// Spoof the switch (a trained source) sending a command outside the
	// trained vocabulary.
	if _, err := d.SendAndObserve(tb.Home(), testbed.SwitchID, testbed.ControllerID,
		[]byte{0x7A, 0x01, 0xAA}, dongle.DefaultResponseWindow); err != nil {
		t.Fatal(err)
	}
	rules := mon.AlertsByRule()
	if rules[RuleUnknownCommand] == 0 {
		t.Fatalf("unknown command not flagged: %v", mon.Alerts())
	}
	if rules[RuleUnknownSource] != 0 {
		t.Fatal("known source flagged as unknown")
	}
}

func TestDetectsFloodRateAnomaly(t *testing.T) {
	tb, mon := trainedMonitor(t, "D1")
	d := dongle.New(tb.Medium, tb.Region)
	for i := 0; i < 60; i++ {
		if err := d.Send(tb.Home(), testbed.SwitchID, testbed.ControllerID,
			[]byte{0x25, 0x03, 0x00}); err != nil {
			t.Fatal(err)
		}
		tb.Clock.Advance(100 * time.Millisecond)
	}
	if mon.AlertsByRule()[RuleRateAnomaly] == 0 {
		t.Fatalf("flood not flagged: %v", mon.AlertsByRule())
	}
}

func TestDetectsMalformedFrames(t *testing.T) {
	tb, mon := trainedMonitor(t, "D4")
	trx := tb.Medium.Attach("raw-attacker", tb.Region)
	raw := make([]byte, 16)
	// A frame with the right home ID but a broken LEN/checksum.
	h := tb.Home()
	raw[0], raw[1], raw[2], raw[3] = byte(h>>24), byte(h>>16), byte(h>>8), byte(h)
	raw[7] = 0x3F
	if err := trx.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if mon.AlertsByRule()[RuleMalformedFrame] == 0 {
		t.Fatalf("malformed frame not flagged: %v", mon.Alerts())
	}
}

func TestIgnoresOtherNetworks(t *testing.T) {
	tb, mon := trainedMonitor(t, "D1")
	d := dongle.New(tb.Medium, tb.Region)
	if err := d.Send(0x12345678, 0x0F, 0x01, []byte{0x01, 0x0D, 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(mon.Alerts()) != 0 {
		t.Fatalf("alerted on a foreign network: %v", mon.Alerts())
	}
	_ = tb
}

func TestFullFuzzingCampaignIsLoudlyVisible(t *testing.T) {
	tb, mon := trainedMonitor(t, "D1")
	if _, err := harness.RunZCover(tb, fuzz.StrategyFull, 10*time.Minute, 1); err != nil {
		t.Fatal(err)
	}
	alerts := mon.Alerts()
	if len(alerts) < 100 {
		t.Fatalf("a fuzzing campaign raised only %d alerts", len(alerts))
	}
	rules := mon.AlertsByRule()
	if rules[RuleUnknownSource] == 0 || rules[RuleClearTextProtocol] == 0 {
		t.Fatalf("campaign rules fired: %v", rules)
	}
}

func TestResetKeepsModel(t *testing.T) {
	tb, mon := trainedMonitor(t, "D1")
	d := dongle.New(tb.Medium, tb.Region)
	if err := d.Send(tb.Home(), scan.AttackerNodeID, testbed.ControllerID, []byte{0x01, 0x0D, 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(mon.Alerts()) == 0 {
		t.Fatal("no alerts before reset")
	}
	mon.Reset()
	if len(mon.Alerts()) != 0 {
		t.Fatal("reset kept alerts")
	}
	if len(mon.KnownSources()) == 0 {
		t.Fatal("reset dropped the trained model")
	}
}

func TestStringers(t *testing.T) {
	a := Alert{Rule: RuleClearTextProtocol, Severity: SeverityHigh, Src: 0x0F, Detail: "x"}
	s := a.String()
	for _, want := range []string{"high", "cleartext-protocol-class", "15"} {
		if !strings.Contains(s, want) {
			t.Errorf("alert string %q missing %q", s, want)
		}
	}
	if !strings.Contains(Rule(42).String(), "42") || !strings.Contains(Severity(42).String(), "42") {
		t.Error("unknown enum stringers should embed the value")
	}
}
