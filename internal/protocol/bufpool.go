package protocol

import "sync"

// Frame-buffer and frame-struct pools for the per-frame hot path. A Table V
// campaign moves hundreds of thousands of frames through encode, the radio
// medium, and decode; recycling the two objects that dominate that loop —
// the 64-byte raw buffer and the parsed Frame — keeps the steady path free
// of garbage. Both pools are safe for concurrent use (parallel fleet
// campaigns share them) and both are strictly optional: every API also
// accepts plain allocated values.

// bufPool recycles raw-frame byte buffers. Entries are pointers to slices so
// Put does not itself allocate a header escape.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, MaxFrameSize)
		return &b
	},
}

// GetBuf returns a pooled buffer: *p is an empty slice with MaxFrameSize
// capacity. Append into *p (AppendEncode, copy) — frames never exceed
// MaxFrameSize, so appends stay within the backing array and *p need not
// be stored back. Release with PutBuf when the bytes are no longer
// referenced by anyone. The pointer form keeps Get/Put allocation-free
// (returning a bare slice would re-box its header on every Put).
func GetBuf() *[]byte {
	p := bufPool.Get().(*[]byte)
	*p = (*p)[:0]
	return p
}

// PutBuf returns a buffer obtained from GetBuf to the pool. The caller
// must guarantee nothing still aliases its backing array: a retained
// Capture, Frame.Payload, or log entry pointing into it becomes invalid
// the moment the buffer is reused.
func PutBuf(p *[]byte) {
	if cap(*p) < MaxFrameSize {
		return
	}
	bufPool.Put(p)
}

// framePool recycles parsed Frame structs for receive paths that decode,
// dispatch, and discard.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a zeroed Frame from the pool. Decode into it with
// DecodeInto and release it with PutFrame once dispatch returns. Handlers
// that want to keep a frame beyond the callback must deep-copy it (the
// Payload alias included).
func GetFrame() *Frame { return framePool.Get().(*Frame) }

// PutFrame zeroes the frame (dropping its Payload alias so pooled frames
// never pin raw buffers) and returns it to the pool.
func PutFrame(f *Frame) {
	*f = Frame{}
	framePool.Put(f)
}
