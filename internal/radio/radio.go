// Package radio simulates the sub-GHz Z-Wave air interface. It substitutes
// for the paper's hardware: the Yardstick One transceiver dongle, the
// 868/908 MHz RF band, and the physical placement of devices 10–70 m from
// the attacker.
//
// The medium is a shared broadcast domain per region (frequency). A
// transmission is delivered to every other attached transceiver tuned to
// the same region after the frame's airtime has elapsed on the simulated
// clock; receivers filter by home ID themselves, exactly as real Z-Wave
// chipsets do, which is what makes passive sniffing possible. Loss and
// noise can be injected for robustness testing; both default to off so
// campaigns are deterministic.
//
// # Concurrency and buffer ownership
//
// Medium and Transceiver are safe for concurrent use; each campaign in a
// fleet runs its own Medium, so cross-goroutine traffic never mixes. Frame
// delivery is synchronous and zero-copy: the Capture handed to a receiver
// callback aliases the transmitter's buffer (or a pooled scratch copy on
// impaired paths) and is valid only for the duration of the callback.
// Receiver callbacks must not mutate Capture.Raw and must copy it before
// retaining it. The interceptor hook is the exception — it receives a
// private copy it may mutate or retain, as documented on InterceptFunc.
package radio

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/telemetry"
	"zcover/internal/vtime"
)

// Process-wide air-interface metrics. Handles resolve once at init; the
// per-frame cost is a handful of lock-free atomic adds.
var (
	mTxFrames  = telemetry.Default().Counter("radio_tx_frames_total")
	mRxFrames  = telemetry.Default().Counter("radio_rx_frames_total")
	mLost      = telemetry.Default().Counter("radio_frames_lost_total")
	mCorrupted = telemetry.Default().Counter("radio_frames_corrupted_total")
	mTooLong   = telemetry.Default().Counter("radio_frames_too_long_total")
	mAirtime   = telemetry.Default().Histogram("radio_airtime_ms", 2, 3, 4, 5, 6, 7, 8)
)

// Region selects the regional RF profile (ITU-T G.9959 regional annexes).
type Region int

// Supported regions. Enum starts at 1.
const (
	// RegionEU is the 868.42 MHz European profile.
	RegionEU Region = iota + 1
	// RegionUS is the 908.42 MHz North-American profile.
	RegionUS
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionEU:
		return "EU 868.42 MHz"
	case RegionUS:
		return "US 908.42 MHz"
	default:
		return "Region(" + strconv.Itoa(int(r)) + ")"
	}
}

// Air-interface timing constants for the R3 (100 kbit/s) data rate.
const (
	// bitsPerByte includes line coding overhead.
	bitsPerByte = 8
	// DataRateBitsPerSec is the R3 PHY rate.
	DataRateBitsPerSec = 100_000
	// PreambleBytes covers preamble and start-of-frame delimiter.
	PreambleBytes = 10
	// TurnaroundTime is the RX/TX switch time added to every transmission.
	TurnaroundTime = 1 * time.Millisecond
)

// Airtime computes how long a raw frame occupies the medium.
func Airtime(frameLen int) time.Duration {
	bits := (frameLen + PreambleBytes) * bitsPerByte
	return TurnaroundTime + time.Duration(bits)*time.Second/DataRateBitsPerSec
}

// Medium errors.
var (
	// ErrFrameTooLong rejects transmissions above the MAC limit.
	ErrFrameTooLong = errors.New("radio: frame exceeds MAC limit")
	// ErrDetached rejects use of a transceiver after Detach.
	ErrDetached = errors.New("radio: transceiver detached")
)

// Capture is one frame observed on the air, with its receive timestamp.
type Capture struct {
	// At is the simulated instant the frame finished arriving.
	At time.Time
	// Raw is the frame bytes as received. The slice is owned by the medium
	// and valid only for the duration of the receiver callback: on the
	// clean path it aliases the transmitter's buffer, and on impaired paths
	// it aliases a pooled scratch copy. Receivers must not mutate it, and
	// must copy it before retaining it past the callback (Sniffer and the
	// attacker dongle both do).
	Raw []byte
}

// Delivery is one frame instance an interceptor wants delivered to a
// receiver: the (possibly rewritten) bytes plus an extra delay beyond the
// frame's airtime. A zero delay delivers inline, exactly like the
// unintercepted path.
type Delivery struct {
	// Delay is added on top of the airtime before the frame arrives.
	Delay time.Duration
	// Raw is the frame as the receiver will see it. It may alias the
	// interceptor's input slice.
	Raw []byte
}

// InterceptFunc sees every frame en route from one transceiver to another
// (after the medium's own loss/noise impairments) and decides what the
// receiver observes: return nil to drop the frame, one Delivery to pass or
// rewrite it, or several to duplicate it. The input slice is a private
// copy; the interceptor may mutate or retain it. Interceptors run outside
// the medium lock and must be safe for concurrent use.
type InterceptFunc func(from, to string, raw []byte) []Delivery

// Medium is the shared simulated air. Construct with NewMedium. Medium is
// safe for concurrent use, though the simulation driver is single-threaded.
type Medium struct {
	clock *vtime.SimClock

	mu        sync.Mutex
	nodes     []*Transceiver
	lossP     float64
	noiseP    float64
	impSeed   int64
	streams   map[string]*rand.Rand
	intercept InterceptFunc
	txLog     int
	rangeLim  float64
	recorder  *telemetry.FlightRecorder
}

// NewMedium creates an empty air over the given simulated clock.
func NewMedium(clock *vtime.SimClock) *Medium {
	if clock == nil {
		panic("radio: NewMedium requires a clock")
	}
	return &Medium{clock: clock, impSeed: 1}
}

// Clock exposes the medium's simulated clock.
func (m *Medium) Clock() *vtime.SimClock { return m.clock }

// SetImpairments configures random frame loss and single-byte noise
// corruption probabilities (both in [0,1]) with a deterministic seed.
// Impairments default to zero. Each receiver draws from its own stream
// seeded from (seed, receiver name), so one transceiver's packet outcomes
// are independent of which other transceivers are attached and of target
// iteration order.
func (m *Medium) SetImpairments(lossP, noiseP float64, seed int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lossP, m.noiseP = lossP, noiseP
	m.impSeed = seed
	m.streams = nil
}

// SetInterceptor installs a frame interceptor pipeline stage (nil removes
// it). The chaos fault injector composes onto the medium through this hook.
func (m *Medium) SetInterceptor(fn InterceptFunc) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.intercept = fn
}

// stream returns the impairment RNG for the named receiver, creating it on
// first use. Callers hold m.mu.
func (m *Medium) stream(name string) *rand.Rand {
	s, ok := m.streams[name]
	if !ok {
		if m.streams == nil {
			m.streams = make(map[string]*rand.Rand)
		}
		s = rand.New(rand.NewSource(m.impSeed ^ int64(fnv64a(name))))
		m.streams[name] = s
	}
	return s
}

// fnv64a is the FNV-1a hash, used to derive per-receiver seeds.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// SetRange enables the geometric propagation model: transmissions reach
// only transceivers within r metres of the sender. Transceivers without an
// assigned position are treated as always in range (back-compatible
// default for sniffers and tests). Zero disables the model.
func (m *Medium) SetRange(r float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rangeLim = r
}

// SetFlightRecorder attaches a packet flight recorder: every transmission
// is recorded with its raw bytes, airtime, security class, and delivery
// verdict. Nil detaches. The recorder is the post-mortem channel findings
// dump alongside their log entries.
func (m *Medium) SetFlightRecorder(rec *telemetry.FlightRecorder) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recorder = rec
}

// TransmitCount reports how many frames have been put on the air in total.
func (m *Medium) TransmitCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.txLog
}

// Attach adds a transceiver tuned to the given region. The name appears in
// diagnostics only.
func (m *Medium) Attach(name string, region Region) *Transceiver {
	t := &Transceiver{medium: m, name: name, region: region}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes = append(m.nodes, t)
	return t
}

// targetPool recycles the per-transmission target list. Delivery is
// synchronous, so the slice is done with by the time transmit returns and
// can go straight back to the pool.
var targetPool = sync.Pool{New: func() any { return new([]*Transceiver) }}

// transmit delivers raw to all other transceivers in region.
//
// Delivery is synchronous and zero-copy on the clean path: receivers get a
// Capture whose Raw aliases the transmitter's buffer (see Capture.Raw for
// the ownership contract). Impaired copies are drawn from the frame buffer
// pool and returned after the callback; only the interceptor path makes a
// plain copy, because InterceptFunc is documented as free to mutate and
// retain its input.
func (m *Medium) transmit(from *Transceiver, raw []byte) error {
	if len(raw) > protocol.MaxFrameSize {
		mTooLong.Inc()
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLong, len(raw))
	}
	m.mu.Lock()
	m.txLog++
	targetsp := targetPool.Get().(*[]*Transceiver)
	targets := (*targetsp)[:0]
	for _, t := range m.nodes {
		if t != from && t.region == from.region && !t.detached.Load() && m.inRange(from, t) {
			targets = append(targets, t)
		}
	}
	lossP, noiseP := m.lossP, m.noiseP
	// Each receiver's loss/noise outcomes come from its own seeded stream,
	// drawn in a fixed per-frame order (loss, noise, then corruption
	// position only when corrupting), so attaching or detaching other
	// transceivers never shifts an existing receiver's draw sequence.
	type impairPlan struct {
		lost     bool
		corrupt  bool
		noiseIdx int
		noiseBit byte
	}
	var plans []impairPlan
	if lossP > 0 || noiseP > 0 {
		plans = make([]impairPlan, len(targets))
		for i, t := range targets {
			s := m.stream(t.name)
			p := &plans[i]
			p.lost = lossP > 0 && s.Float64() < lossP
			noisy := noiseP > 0 && s.Float64() < noiseP
			if noisy && !p.lost && len(raw) > 0 {
				p.corrupt = true
				p.noiseIdx = s.Intn(len(raw))
				p.noiseBit = 1 << s.Intn(8)
			}
		}
	}
	intercept := m.intercept
	recorder := m.recorder
	m.mu.Unlock()

	airtime := Airtime(len(raw))
	mTxFrames.Inc()
	mAirtime.Observe(float64(airtime) / float64(time.Millisecond))

	at := m.clock.Now().Add(airtime)
	lost, corrupted := 0, 0
	for i, t := range targets {
		if plans != nil && plans[i].lost {
			lost++
			continue
		}
		corrupt := plans != nil && plans[i].corrupt
		if corrupt {
			corrupted++
		}
		if intercept == nil {
			frame := raw
			var pooled *[]byte
			if corrupt {
				// Corruption needs a private copy; borrow it from the
				// frame pool and return it once the synchronous delivery
				// is done.
				pooled = protocol.GetBuf()
				*pooled = append(*pooled, raw...)
				(*pooled)[plans[i].noiseIdx] ^= plans[i].noiseBit
				frame = *pooled
			}
			t.deliver(Capture{At: at, Raw: frame})
			if pooled != nil {
				protocol.PutBuf(pooled)
			}
			continue
		}
		// The interceptor may mutate or retain its input, so it gets a
		// plain (unpooled) copy; corruption is applied directly to it.
		icopy := make([]byte, len(raw))
		copy(icopy, raw)
		if corrupt {
			icopy[plans[i].noiseIdx] ^= plans[i].noiseBit
		}
		deliveries := intercept(from.name, t.name, icopy)
		if len(deliveries) == 0 {
			lost++
			continue
		}
		for _, d := range deliveries {
			if !bytes.Equal(d.Raw, icopy) {
				corrupted++
			}
			if d.Delay <= 0 {
				t.deliver(Capture{At: at, Raw: d.Raw})
				continue
			}
			t, d := t, d
			m.clock.Schedule(airtime+d.Delay, func() {
				t.deliver(Capture{At: at.Add(d.Delay), Raw: d.Raw})
			})
		}
	}
	nTargets := len(targets)
	*targetsp = targets[:0]
	targetPool.Put(targetsp)
	mLost.Add(int64(lost))
	mCorrupted.Add(int64(corrupted))
	if recorder != nil {
		// Record copies raw into ring-owned storage, so no pre-copy here.
		recorder.Record(telemetry.FrameRecord{
			At:        at,
			From:      from.name,
			Raw:       raw,
			Airtime:   airtime,
			Security:  securityClassOf(raw),
			Targets:   nTargets,
			Lost:      lost,
			Corrupted: corrupted,
		})
	}
	m.clock.Schedule(airtime, func() {})
	return nil
}

// securityClassOf classifies a raw frame's transport encapsulation by its
// first application-payload byte (S0 = CMDCL 0x98, S2 = CMDCL 0x9F).
func securityClassOf(raw []byte) telemetry.SecurityClass {
	if len(raw) <= protocol.HeaderSize {
		return telemetry.SecurityNone
	}
	switch raw[protocol.HeaderSize] {
	case 0x98:
		return telemetry.SecurityS0
	case 0x9F:
		return telemetry.SecurityS2
	default:
		return telemetry.SecurityNone
	}
}

// inRange applies the propagation model (callers hold m.mu).
func (m *Medium) inRange(a, b *Transceiver) bool {
	if m.rangeLim <= 0 || !a.placed || !b.placed {
		return true
	}
	dx, dy := a.x-b.x, a.y-b.y
	return dx*dx+dy*dy <= m.rangeLim*m.rangeLim
}

// Transceiver is one radio endpoint: a device chipset, the attacker's
// dongle, or a passive sniffer. It is safe for concurrent use: the counters
// and the detach flag are atomics, so Stats, Transmit, Detach, and frame
// delivery may race freely across goroutines (the fleet hammers exactly
// that pattern); x/y/placed are guarded by the medium's lock.
type Transceiver struct {
	medium   *Medium
	name     string
	region   Region
	detached atomic.Bool
	x, y     float64
	placed   bool

	mu      sync.Mutex
	handler func(Capture)
	txCount atomic.Int64
	rxCount atomic.Int64
}

// Name reports the diagnostic name given at Attach.
func (t *Transceiver) Name() string { return t.name }

// Region reports the RF region the transceiver is tuned to.
func (t *Transceiver) Region() Region { return t.region }

// SetReceiver installs the frame-delivery callback. Passing nil silences
// the transceiver (frames still count as received).
func (t *Transceiver) SetReceiver(fn func(Capture)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = fn
}

// Transmit puts a raw frame on the air.
func (t *Transceiver) Transmit(raw []byte) error {
	if t.detached.Load() {
		return ErrDetached
	}
	t.txCount.Add(1)
	return t.medium.transmit(t, raw)
}

// Detach removes the transceiver from the air; it no longer receives and
// can no longer transmit. Safe to call from any goroutine, concurrently
// with in-flight transmissions.
func (t *Transceiver) Detach() { t.detached.Store(true) }

// Place assigns the transceiver a position (metres) for the geometric
// propagation model. Unplaced transceivers are always in range.
func (t *Transceiver) Place(x, y float64) {
	t.medium.mu.Lock()
	defer t.medium.mu.Unlock()
	t.x, t.y, t.placed = x, y, true
}

// Stats reports frames transmitted and received by this transceiver.
func (t *Transceiver) Stats() (tx, rx int) {
	return int(t.txCount.Load()), int(t.rxCount.Load())
}

// deliver hands a capture to the installed handler. A transceiver detached
// after target selection drops the frame instead of delivering late.
func (t *Transceiver) deliver(c Capture) {
	if t.detached.Load() {
		return
	}
	t.rxCount.Add(1)
	mRxFrames.Inc()
	t.mu.Lock()
	fn := t.handler
	t.mu.Unlock()
	if fn != nil {
		fn(c)
	}
}
