package radio

import (
	"errors"
	"sync"
	"testing"

	"zcover/internal/telemetry"
	"zcover/internal/vtime"
)

// TestTransceiverConcurrentHammer drives attach/transmit/stats/detach from
// many goroutines against one shared medium. Run under -race (the tier-1
// suite always is) it pins the Transceiver synchronisation fixed in this
// package: Stats, Detach, and deliver used to touch unsynchronised fields.
func TestTransceiverConcurrentHammer(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)

	// A stable listener that keeps receiving throughout.
	sink := m.Attach("sink", RegionUS)
	var sinkMu sync.Mutex
	received := 0
	sink.SetReceiver(func(Capture) {
		sinkMu.Lock()
		received++
		sinkMu.Unlock()
	})

	frame := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x41, 0x01, 0x0A, 0x02, 0x25}
	const workers = 8
	const rounds = 50

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tr := m.Attach("node", RegionUS)
				tr.SetReceiver(func(Capture) {})
				if err := tr.Transmit(frame); err != nil {
					t.Errorf("worker %d: transmit: %v", w, err)
					return
				}
				tr.Stats()
				sink.Stats()
				tr.Detach()
				if err := tr.Transmit(frame); !errors.Is(err, ErrDetached) {
					t.Errorf("worker %d: transmit after Detach = %v, want ErrDetached", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if tx, _ := sink.Stats(); tx != 0 {
		t.Errorf("sink tx = %d, want 0", tx)
	}
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if _, rx := sink.Stats(); rx != received || rx == 0 {
		t.Errorf("sink rx = %d, handler saw %d", rx, received)
	}
}

// TestDetachedTransceiverDropsLateDelivery pins that a node detached
// concurrently with a transmission never observes the frame.
func TestDetachedTransceiverDropsLateDelivery(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	a := m.Attach("a", RegionUS)
	b := m.Attach("b", RegionUS)
	got := 0
	b.SetReceiver(func(Capture) { got++ })
	b.Detach()
	if err := a.Transmit([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("detached transceiver received %d frames", got)
	}
}

func TestFlightRecorderCapturesTransmissions(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	rec := telemetry.NewFlightRecorder(4)
	m.SetFlightRecorder(rec)

	a := m.Attach("attacker", RegionUS)
	b := m.Attach("victim", RegionUS)
	b.SetReceiver(func(Capture) {})

	// A clear-text frame, then an S0- and an S2-encapsulated payload
	// (security class is read from the first payload byte at HeaderSize=9).
	clear := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x02, 0x41, 0x01, 0x0C, 0x01, 0x25, 0x01, 0xFF}
	s0 := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x02, 0x41, 0x01, 0x0C, 0x01, 0x98, 0x81, 0x00}
	s2 := []byte{0xDE, 0xAD, 0xBE, 0xEF, 0x02, 0x41, 0x01, 0x0C, 0x01, 0x9F, 0x03, 0x00}
	for _, raw := range [][]byte{clear, s0, s2} {
		if err := a.Transmit(raw); err != nil {
			t.Fatal(err)
		}
	}

	snap := rec.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("recorded %d frames, want 3", len(snap))
	}
	wantSec := []telemetry.SecurityClass{telemetry.SecurityNone, telemetry.SecurityS0, telemetry.SecurityS2}
	for i, fr := range snap {
		if fr.Security != wantSec[i] {
			t.Errorf("frame %d security = %q, want %q", i, fr.Security, wantSec[i])
		}
		if fr.From != "attacker" || fr.Targets != 1 || fr.Lost != 0 || fr.Corrupted != 0 {
			t.Errorf("frame %d verdict = %+v", i, fr)
		}
		if fr.Airtime != Airtime(len(clear)) {
			t.Errorf("frame %d airtime = %v, want %v", i, fr.Airtime, Airtime(len(clear)))
		}
		if fr.At.After(clock.Now().Add(Airtime(len(clear)))) {
			t.Errorf("frame %d timestamp %v is off the sim timeline", i, fr.At)
		}
	}

	// Loss injection shows up in the verdict.
	m.SetImpairments(1.0, 0, 42)
	if err := a.Transmit(clear); err != nil {
		t.Fatal(err)
	}
	snap = rec.Snapshot()
	last := snap[len(snap)-1]
	if last.Lost != 1 || last.Targets != 1 {
		t.Errorf("lossy frame verdict = %+v, want Lost=1 of Targets=1", last)
	}
}
