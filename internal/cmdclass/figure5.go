package cmdclass

// Figure5Classes returns the command classes selected for Figure 5 of the
// paper ("we listed 15 CMDCLs for better visualization"; the plotted series
// has 16 bars: 23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0). The
// names are ordered by descending command count as in the figure.
func Figure5Classes() []string {
	return []string{
		"NETWORK_MANAGEMENT_INCLUSION",
		"SCHEDULE_ENTRY_LOCK",
		"NOTIFICATION",
		"FIRMWARE_UPDATE_MD",
		"VERSION",
		"USER_CODE",
		"DOOR_LOCK",
		"CONFIGURATION",
		"ASSOCIATION",
		"WAKE_UP",
		"CENTRAL_SCENE",
		"APPLICATION_STATUS",
		"TRANSPORT_SERVICE",
		"CRC_16_ENCAP",
		"HAIL",
		"PROPRIETARY",
	}
}
