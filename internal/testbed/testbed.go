// Package testbed assembles the paper's smart-home system under test: one
// controller (any of the D1–D7 profiles), the S2 door lock (D8), the legacy
// binary switch (D9), a shared simulated air, and the oracle bus. Every
// experiment, example, and integration test builds its world through this
// package.
package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"zcover/internal/chaos"
	"zcover/internal/cmdclass"
	"zcover/internal/controller"
	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// Node IDs of the testbed network.
const (
	// ControllerID is always node 1 (Table IV).
	ControllerID = 0x01
	// LockID is the S2 door lock (D8).
	LockID = 0x02
	// SwitchID is the legacy binary switch (D9).
	SwitchID = 0x03
)

// Testbed is one assembled smart-home system under test.
type Testbed struct {
	// Clock is the simulated clock everything runs on.
	Clock *vtime.SimClock
	// Medium is the shared air.
	Medium *radio.Medium
	// Bus is the anomaly oracle.
	Bus *oracle.Bus
	// Controller is the device under test.
	Controller *controller.Controller
	// Lock is the S2 door lock slave (D8).
	Lock *device.DoorLock
	// Switch is the legacy binary switch slave (D9).
	Switch *device.BinarySwitch
	// Region is the RF profile in use.
	Region radio.Region
	// Chaos is the fault injector installed by ApplyChaos; nil on a clean
	// testbed.
	Chaos *chaos.Injector
}

// New assembles a testbed around the controller profile with the given
// testbed index ("D1".."D7"). The door lock is S2-paired with the
// controller; the switch joins without encryption; both are registered in
// the controller's node table, as after a normal inclusion. seed drives
// the S2 pairing entropy deterministically.
func New(index string, seed int64) (*Testbed, error) {
	profile, ok := controller.ProfileByIndex(index)
	if !ok {
		return nil, fmt.Errorf("testbed: unknown controller profile %q", index)
	}
	return build(profile, index, seed)
}

// NewPatched assembles the same testbed around a controller whose firmware
// follows the *updated* specification of §V-B: the spec-rooted Table III
// bugs are closed, the implementation and MAC-layer bugs remain.
func NewPatched(index string, seed int64) (*Testbed, error) {
	profile, ok := controller.PatchedProfile(index)
	if !ok {
		return nil, fmt.Errorf("testbed: unknown controller profile %q", index)
	}
	return build(profile, index, seed)
}

// build wires the common testbed around the given profile.
func build(profile controller.Profile, index string, seed int64) (*Testbed, error) {
	tb := &Testbed{
		Clock:  vtime.NewSimClock(),
		Bus:    &oracle.Bus{},
		Region: radio.RegionUS,
	}
	tb.Medium = radio.NewMedium(tb.Clock)
	tb.Controller = controller.New(tb.Medium, tb.Region, profile, tb.Bus)

	tb.Lock = device.NewDoorLock(device.Config{
		Medium: tb.Medium, Region: tb.Region,
		Home: profile.Home, ID: LockID, Name: index + "-lock",
	}, ControllerID)
	tb.Switch = device.NewBinarySwitch(device.Config{
		Medium: tb.Medium, Region: tb.Region,
		Home: profile.Home, ID: SwitchID, Name: index + "-switch",
	}, ControllerID)

	// S2 inclusion of the lock.
	pairing, err := device.PairS2(rand.New(rand.NewSource(seed)), nil)
	if err != nil {
		return nil, fmt.Errorf("testbed: pairing lock: %w", err)
	}
	tb.Lock.InstallSession(pairing.DeviceSession)
	tb.Controller.InstallSession(LockID, pairing.ControllerSession)

	lockID := tb.Lock.Identity()
	tb.Controller.IncludeNode(controller.NodeRecord{
		ID: LockID, Basic: lockID.Basic, Generic: lockID.Generic, Specific: lockID.Specific,
		Capability: lockID.Capability, Security: lockID.Security,
		WakeupInterval: time.Hour,
		Classes:        lockID.Classes,
	})
	switchID := tb.Switch.Identity()
	tb.Controller.IncludeNode(controller.NodeRecord{
		ID: SwitchID, Basic: switchID.Basic, Generic: switchID.Generic, Specific: switchID.Specific,
		Capability: switchID.Capability,
		Classes:    switchID.Classes,
	})
	return tb, nil
}

// Home reports the network home ID.
func (tb *Testbed) Home() protocol.HomeID { return tb.Controller.Profile().Home }

// GenerateTraffic makes the slaves report status n times each, spaced by
// interval — the normal network chatter a passive scanner feeds on.
func (tb *Testbed) GenerateTraffic(n int, interval time.Duration) error {
	for i := 0; i < n; i++ {
		if err := tb.Lock.ReportStatus(); err != nil {
			return fmt.Errorf("testbed: lock traffic: %w", err)
		}
		tb.Clock.Advance(interval / 2)
		if err := tb.Switch.ReportStatus(); err != nil {
			return fmt.Errorf("testbed: switch traffic: %w", err)
		}
		tb.Clock.Advance(interval / 2)
	}
	return nil
}

// AddSensor includes a battery temperature sensor as the given node ID
// (over the controller's table, with a stored wake-up interval) and
// returns it. The default testbed matches the paper's two-slave setup;
// richer homes opt in through this call.
func (tb *Testbed) AddSensor(id protocol.NodeID, wakeup time.Duration) *device.MultilevelSensor {
	sensor := device.NewMultilevelSensor(device.Config{
		Medium: tb.Medium, Region: tb.Region,
		Home: tb.Home(), ID: id, Name: "sensor",
	}, ControllerID)
	sid := sensor.Identity()
	tb.Controller.IncludeNode(controller.NodeRecord{
		ID: id, Basic: sid.Basic, Generic: sid.Generic, Specific: sid.Specific,
		Capability: sid.Capability, WakeupInterval: wakeup,
		Classes: sid.Classes,
	})
	return sensor
}

// ScheduleTraffic queues n rounds of slave status reports on the simulated
// clock, spaced by interval, starting one interval from now. The reports
// fire as the clock advances — e.g. while a passive scanner observes.
func (tb *Testbed) ScheduleTraffic(n int, interval time.Duration) {
	for i := 1; i <= n; i++ {
		tb.Clock.Schedule(time.Duration(i)*interval, func() {
			_ = tb.Lock.ReportStatus()
		})
		tb.Clock.Schedule(time.Duration(i)*interval+interval/2, func() {
			_ = tb.Switch.ReportStatus()
		})
	}
}

// Resilience parameters armed alongside chaos injection. The retry chain
// (4 attempts at 50/100/200 ms) rides out the burst profiles' bad-state
// dwell; the SPAN window covers the S2 messages a whole lost burst can
// take with it.
const (
	retryAttempts    = 4
	retryBackoff     = 50 * time.Millisecond
	retryMaxBackoff  = 400 * time.Millisecond
	s2RecoveryWindow = 8
)

// ApplyChaos installs a fault injector for the given profile and seed on
// the testbed's medium, anchored at the current simulated time, and arms
// the resilience features an impaired channel requires. Profiles that
// cannot inject any fault ("none") are a no-op, keeping the clean path
// byte-identical.
func (tb *Testbed) ApplyChaos(p chaos.Profile, seed int64) {
	if !p.Enabled() {
		return
	}
	inj := chaos.New(p, seed)
	inj.Attach(tb.Medium)
	tb.Chaos = inj
	tb.EnableResilience()
}

// EnableResilience arms ACK-timeout retransmission on every testbed node
// and SPAN desync recovery on both ends of the lock's S2 session. Off by
// default: the clean deterministic campaigns must not change; ApplyChaos
// calls it for impaired ones.
func (tb *Testbed) EnableResilience() {
	rp := &device.RetryPolicy{
		MaxAttempts: retryAttempts,
		Backoff:     retryBackoff,
		MaxBackoff:  retryMaxBackoff,
	}
	tb.Controller.Node().SetRetry(rp)
	tb.Lock.Node().SetRetry(rp)
	tb.Switch.Node().SetRetry(rp)
	if s, ok := tb.Controller.Session(LockID); ok {
		s.SetRecoveryWindow(s2RecoveryWindow)
	}
	if s := tb.Lock.Session(); s != nil {
		s.SetRecoveryWindow(s2RecoveryWindow)
	}
}

// Reset restores the controller to its post-inclusion state and clears the
// oracle log (used between fuzzing trials).
func (tb *Testbed) Reset() {
	tb.Controller.Reset()
	tb.Bus.Reset()
}

// HiddenClassDefinitions returns the proprietary class definitions the
// discovery phase can consult once validation testing confirms a hidden
// class responds (the paper derived these from chipset documentation and
// observed behaviour).
func HiddenClassDefinitions() []*cmdclass.Class { return cmdclass.HiddenCandidates() }
