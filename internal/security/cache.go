package security

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
	"sync"

	"zcover/internal/telemetry"
)

// Keyed AES context cache. Every S0 frame used to pay three aes.NewCipher
// key expansions (OFB encrypt, CBC-MAC, and again on the way back) and
// every S2 message rebuilt its CCM AEAD and CMAC subkeys; at campaign scale
// that is millions of redundant key schedules. The cache builds the AES
// block, the RFC 4493 CMAC subkeys, and the CCM AEAD once per distinct key
// and shares them across every subsequent operation in the process.
//
// Sharing is safe because every cached element is immutable after
// construction: cipher.Block is stateless for AES, the subkeys are fixed
// bytes, and the ccm AEAD holds only the block. The cache itself is guarded
// by an RWMutex, so concurrent campaigns in a fleet share contexts freely
// (security_test.go hammers this under -race).
//
// Callers must not mutate key material they have handed in: the cache is
// keyed by value (a copy of the 16 bytes), so later mutation of the
// caller's slice simply selects a different context — but mutating a slice
// while another goroutine derives from it is the caller's race to avoid.

// Process-wide cache metrics.
var (
	mKeyCtxHit  = telemetry.Default().Counter("security_keyctx_hits_total")
	mKeyCtxMiss = telemetry.Default().Counter("security_keyctx_miss_total")
)

// keyContext holds everything derivable from one AES-128 key.
type keyContext struct {
	block cipher.Block
	// k1, k2 are the RFC 4493 CMAC subkeys.
	k1, k2 [BlockSize]byte
	// aead is the S2 CCM AEAD under this key.
	aead *ccm
}

// maxKeyContexts bounds the cache. A testbed uses a handful of keys (S0
// temp + derived pair, S2 temp + network + CCM); the bound only matters to
// long-lived processes that churn through many testbeds, where the cheap
// full reset below keeps the map from growing without limit.
const maxKeyContexts = 1024

var (
	keyCtxMu    sync.RWMutex
	keyContexts = make(map[[KeySize]byte]*keyContext)
)

// contextFor returns the cached context for a 16-byte key, building and
// memoising it on first use.
func contextFor(key []byte) (*keyContext, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("security: AES key must be %d bytes, got %d", KeySize, len(key))
	}
	var k [KeySize]byte
	copy(k[:], key)

	keyCtxMu.RLock()
	ctx, ok := keyContexts[k]
	keyCtxMu.RUnlock()
	if ok {
		mKeyCtxHit.Inc()
		return ctx, nil
	}
	mKeyCtxMiss.Inc()

	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	ctx = &keyContext{block: block, aead: &ccm{block: block}}
	ctx.k1, ctx.k2 = cmacSubkeys(block.Encrypt)

	keyCtxMu.Lock()
	if existing, ok := keyContexts[k]; ok {
		ctx = existing // another goroutine won the build race; share theirs
	} else {
		if len(keyContexts) >= maxKeyContexts {
			keyContexts = make(map[[KeySize]byte]*keyContext)
		}
		keyContexts[k] = ctx
	}
	keyCtxMu.Unlock()
	return ctx, nil
}

// mustContextFor is contextFor for keys known to be the right length.
func mustContextFor(key []byte) *keyContext {
	ctx, err := contextFor(key)
	if err != nil {
		panic(err)
	}
	return ctx
}

// KeyContextCacheLen reports the number of cached key contexts (test and
// diagnostics hook).
func KeyContextCacheLen() int {
	keyCtxMu.RLock()
	defer keyCtxMu.RUnlock()
	return len(keyContexts)
}

// ResetKeyContextCache drops every cached context. Only tests need it.
func ResetKeyContextCache() {
	keyCtxMu.Lock()
	defer keyCtxMu.Unlock()
	keyContexts = make(map[[KeySize]byte]*keyContext)
}
