// Mesh-range walkthrough: the paper positions the attacker 10–70 m from
// the target (§II-B, Fig. 2). Z-Wave is a mesh, and that geometry matters:
// an attacker beyond direct radio range of the controller can still land
// the memory-tampering packet by source-routing it through the victim's
// own mains-powered repeater — the network forwards the attack for free.
package main

import (
	"fmt"
	"log"

	"zcover"
	"zcover/internal/device"
	"zcover/internal/protocol"
	"zcover/internal/testbed"
)

func main() {
	tb, err := zcover.NewTestbed("D6", 42)
	if err != nil {
		log.Fatal(err)
	}

	// Geometry: hub in the living room, repeater switch by the porch,
	// attacker parked 70 m down the street. Radio range: 40 m.
	tb.Medium.SetRange(40)
	tb.Controller.Node().Place(0, 0)
	tb.Lock.Node().Place(5, 0)
	tb.Switch.Node().Place(35, 0)

	attacker := device.NewNode(device.Config{
		Medium: tb.Medium, Region: tb.Region,
		Home: tb.Home(), ID: 0x0F, Name: "attacker",
	})
	attacker.Place(70, 0)

	kill := []byte{0x01, 0x0D, byte(testbed.LockID)} // erase the lock (bug 03)

	fmt.Println("1. Attacker at 70 m injects the kill packet directly (range 40 m)...")
	if err := attacker.Send(testbed.ControllerID, kill); err != nil {
		log.Fatal(err)
	}
	if _, ok := tb.Controller.Table().Get(testbed.LockID); ok {
		fmt.Println("   -> out of range: the controller never heard it.")
	}

	fmt.Println("\n2. Attacker source-routes the same packet through the porch switch")
	fmt.Println("   (node 3, a mains-powered repeater 35 m from both parties)...")
	if err := attacker.SendRouted(testbed.ControllerID,
		[]protocol.NodeID{testbed.SwitchID}, kill); err != nil {
		log.Fatal(err)
	}
	if _, ok := tb.Controller.Table().Get(testbed.LockID); !ok {
		fmt.Println("   -> delivered: the victim's own mesh repeated the attack,")
		fmt.Println("      and the door lock is gone from the controller's memory.")
	}
	for _, e := range tb.Bus.Events() {
		fmt.Printf("\noracle: %s\n", e)
	}
}
