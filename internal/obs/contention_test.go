package obs_test

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"zcover/internal/obs"
	"zcover/internal/telemetry"
)

// grind produces guaranteed mutex contention so the runtime profile has
// something to record even on a single-P host, where goroutines hammering
// a short critical section almost never overlap. Each round parks a
// contender on a held lock before releasing it: with MutexProfileFraction
// 1 every such contended unlock is sampled.
func grind() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for round := 0; round < 50; round++ {
		mu.Lock()
		started := make(chan struct{})
		wg.Add(1)
		go func() {
			close(started)
			mu.Lock() // blocks: the lock is held across this round
			mu.Unlock()
			wg.Done()
		}()
		<-started
		runtime.Gosched() // let the contender reach Lock and park
		mu.Unlock()       // contended unlock → mutex profile event
		wg.Wait()
	}
}

func TestStartProfilingRestores(t *testing.T) {
	before := runtime.SetMutexProfileFraction(-1) // read without changing
	restore := obs.StartProfiling(obs.ProfileConfig{MutexFraction: 1})
	if got := runtime.SetMutexProfileFraction(-1); got != 1 {
		t.Errorf("mutex fraction while profiling = %d, want 1", got)
	}
	restore()
	if got := runtime.SetMutexProfileFraction(-1); got != before {
		t.Errorf("mutex fraction after restore = %d, want %d", got, before)
	}
}

func TestSnapshotProfilesWritesFiles(t *testing.T) {
	restore := obs.StartProfiling(obs.ProfileConfig{MutexFraction: 1})
	defer restore()
	grind()

	dir := filepath.Join(t.TempDir(), "profiles")
	if err := obs.SnapshotProfiles(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mutex.pb.gz", "block.pb.gz", "goroutine.pb.gz", "heap.pb.gz"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestTopContendedLocks(t *testing.T) {
	restore := obs.StartProfiling(obs.ProfileConfig{MutexFraction: 1})
	defer restore()
	grind()

	locks := obs.TopContendedLocks(0)
	if len(locks) == 0 {
		t.Fatal("no contention sampled: grind() guarantees parked contenders")
	}
	for i := 1; i < len(locks); i++ {
		if locks[i].DelayCycles > locks[i-1].DelayCycles {
			t.Errorf("locks not sorted by delay: %v before %v", locks[i-1], locks[i])
		}
	}
	if n := len(obs.TopContendedLocks(1)); n > 1 {
		t.Errorf("TopContendedLocks(1) returned %d sites", n)
	}
}

func TestSampleRuntimeMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := obs.SampleRuntimeMetrics(reg)
	if s.Gomaxprocs < 1 || s.NumCPU < 1 || s.Goroutines < 1 {
		t.Errorf("implausible sample: %+v", s)
	}
	if got := reg.Gauge(obs.MetricGomaxprocs).Load(); got != int64(s.Gomaxprocs) {
		t.Errorf("gauge %s = %d, want %d", obs.MetricGomaxprocs, got, s.Gomaxprocs)
	}
	if got := reg.Gauge(obs.MetricNumCPU).Load(); got != int64(s.NumCPU) {
		t.Errorf("gauge %s = %d, want %d", obs.MetricNumCPU, got, s.NumCPU)
	}
	// A nil registry must still return a sample without publishing.
	if s := obs.SampleRuntimeMetrics(nil); s.Gomaxprocs < 1 {
		t.Errorf("nil-registry sample: %+v", s)
	}
}
