package zcover_test

import (
	"fmt"
	"time"

	"zcover"
)

// ExampleRun fingerprints the ZooZ controller and fuzzes it for twenty
// simulated minutes — the whole paper pipeline in four lines.
func ExampleRun() {
	tb, err := zcover.NewTestbed("D1", 1)
	if err != nil {
		panic(err)
	}
	campaign, err := zcover.Run(tb, zcover.StrategyFull, 20*time.Minute, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("network %s: %d classes prioritised, %d commands validated\n",
		campaign.Fingerprint.Home, campaign.Fuzz.ClassesCovered, campaign.Fuzz.CommandsCovered)
	first := campaign.Fuzz.Findings[0]
	fmt.Printf("first finding after %s: %s\n", first.Elapsed.Round(time.Second), first.Signature)
	fmt.Printf("unique vulnerabilities in 20 minutes: %d\n", len(campaign.Fuzz.Findings))
	// Output:
	// network E7DE3F3D: 45 classes prioritised, 53 commands validated
	// first finding after 22s: service-hang/0x01/0x04
	// unique vulnerabilities in 20 minutes: 10
}

// ExamplePaperBugs walks the Table III catalogue.
func ExamplePaperBugs() {
	bugs := zcover.PaperBugs()
	fmt.Printf("%d zero-day vulnerabilities\n", len(bugs))
	cves := 0
	for _, b := range bugs {
		if b.Confirmed != "confirmed" {
			cves++
		}
	}
	fmt.Printf("%d with CVE IDs; bug 01 is %s via CMDCL 0x%02X\n",
		cves, bugs[0].Confirmed, bugs[0].CMDCL)
	// Output:
	// 15 zero-day vulnerabilities
	// 12 with CVE IDs; bug 01 is CVE-2024-50929 via CMDCL 0x01
}

// ExampleRunBaseline runs the VFuzz comparison target for one simulated
// hour against the Aeotec controller.
func ExampleRunBaseline() {
	tb, err := zcover.NewTestbed("D4", 2)
	if err != nil {
		panic(err)
	}
	res, err := zcover.RunBaseline(tb, time.Hour, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("VFuzz sweeps %d command classes blindly\n", res.ClassesCovered)
	// Output:
	// VFuzz sweeps 256 command classes blindly
}
