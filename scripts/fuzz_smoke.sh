#!/bin/sh
# fuzz_smoke.sh — run every native fuzz target for a short burst each, on
# top of the committed seed corpora under */testdata/fuzz/. A crasher fails
# the script (and go's fuzzing machinery writes the reproducer to testdata,
# so it becomes a permanent regression test).
#
#   ./scripts/fuzz_smoke.sh          # 10s per target
#   FUZZTIME=1m ./scripts/fuzz_smoke.sh
set -eu

cd "$(dirname "$0")/.."

fuzztime="${FUZZTIME:-10s}"

# target package pairs, one per line: "FuzzName ./package/path"
targets="
FuzzFrameDecode ./internal/protocol
FuzzDecode ./internal/protocol
FuzzParseRoutedPayload ./internal/protocol
FuzzParseMulticastPayload ./internal/protocol
FuzzS0Decrypt ./internal/security
FuzzS2Decrypt ./internal/security
FuzzReadLog ./internal/zcover/fuzz
FuzzDecodeSerial ./internal/serialapi
"

echo "$targets" | while read -r name pkg; do
    [ -n "$name" ] || continue
    echo "== go test -fuzz=$name -fuzztime=$fuzztime $pkg =="
    go test -fuzz="^${name}\$" -fuzztime="$fuzztime" -run '^$' "$pkg"
done

echo "fuzz-smoke: OK"
