// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its experiment at the
// paper's budget (24 h campaigns run in seconds of real time on the
// simulated clock) and reports the headline quantity as a custom metric,
// so `go test -bench=. -benchmem` doubles as the reproduction run.
package zcover_test

import (
	"testing"
	"time"

	"zcover"
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// BenchmarkFig1_FrameCodec measures the frame layer underlying every
// experiment: one encode+decode round trip of the Figure 1 example frame.
func BenchmarkFig1_FrameCodec(b *testing.B) {
	f := protocol.NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01, 0xFF})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raw, err := f.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := protocol.Decode(raw, protocol.ChecksumCS8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5_CommandDistribution regenerates the Figure 5 series from
// the specification database.
func BenchmarkFig5_CommandDistribution(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, csv, err := zcover.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if len(csv.Rows) != 16 {
			b.Fatalf("series = %d bars", len(csv.Rows))
		}
	}
}

// BenchmarkTable2_Inventory renders the testbed inventory.
func BenchmarkTable2_Inventory(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tbl := zcover.Table2(); len(tbl.Rows) != 9 {
			b.Fatal("inventory wrong")
		}
	}
}

// BenchmarkTable3_ZeroDayDiscovery reruns the full 24 h campaign on all
// seven controllers and reports the union of unique vulnerabilities
// (paper: 15).
func BenchmarkTable3_ZeroDayDiscovery(b *testing.B) {
	var union int
	for i := 0; i < b.N; i++ {
		_, res, err := zcover.Table3(24 * time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		union = len(res.Affected)
	}
	b.ReportMetric(float64(union), "unique-vulns")
}

// BenchmarkTable4_Fingerprinting reruns phases 1–2 on all controllers and
// reports the total unknown CMDCLs discovered (paper: 28/30 per device).
func BenchmarkTable4_Fingerprinting(b *testing.B) {
	var unknown int
	for i := 0; i < b.N; i++ {
		_, rows, err := zcover.Table4()
		if err != nil {
			b.Fatal(err)
		}
		unknown = 0
		for _, r := range rows {
			unknown += r.Unknown
		}
	}
	b.ReportMetric(float64(unknown), "unknown-cmdcls-total")
}

// BenchmarkTable5_VFuzzComparison reruns the 24 h VFuzz-vs-ZCover
// comparison on D1–D5 and reports both tools' totals (paper: ZCover 15
// per device vs VFuzz {1,3,0,4,0}, disjoint).
func BenchmarkTable5_VFuzzComparison(b *testing.B) {
	var zTotal, vTotal, overlap int
	for i := 0; i < b.N; i++ {
		_, rows, err := zcover.Table5(24 * time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		zTotal, vTotal, overlap = 0, 0, 0
		for _, r := range rows {
			zTotal += r.ZCoverVulns
			vTotal += r.VFuzzVulns
			overlap += r.Overlap
		}
	}
	b.ReportMetric(float64(zTotal), "zcover-vulns")
	b.ReportMetric(float64(vTotal), "vfuzz-vulns")
	b.ReportMetric(float64(overlap), "common-vulns")
}

// BenchmarkTable6_Ablation reruns the one-hour ablation (paper: 15/8/6).
func BenchmarkTable6_Ablation(b *testing.B) {
	var full, beta, gamma int
	for i := 0; i < b.N; i++ {
		_, rows, err := zcover.Table6(time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		full, beta, gamma = rows[0].Vulns, rows[1].Vulns, rows[2].Vulns
	}
	b.ReportMetric(float64(full), "full-vulns")
	b.ReportMetric(float64(beta), "beta-vulns")
	b.ReportMetric(float64(gamma), "gamma-vulns")
}

// BenchmarkFig12_DetectionTimeline reruns the four Figure 12 campaigns and
// reports the discoveries landing inside the paper's ~800 s plot window.
func BenchmarkFig12_DetectionTimeline(b *testing.B) {
	var early, packets int
	for i := 0; i < b.N; i++ {
		_, series, err := zcover.Fig12(24*time.Hour, 800*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		early, packets = 0, 0
		for _, s := range series {
			for _, f := range s.Discoveries {
				if f.Elapsed <= 800*time.Second {
					early++
				}
			}
			packets += s.Samples[len(s.Samples)-1].Packets
		}
	}
	b.ReportMetric(float64(early), "discoveries-in-window")
	b.ReportMetric(float64(packets)/4, "packets-at-800s-avg")
}

// BenchmarkAblation_Prioritization measures the queue-ordering design
// choice (§III-C1, "Prioritizing CMDCLs"): unique findings within the
// first ten simulated minutes with the command-count-prioritised queue
// versus the same queue reversed. The prioritised order reaches the
// bug-dense hidden class 0x01 first.
func BenchmarkAblation_Prioritization(b *testing.B) {
	run := func(reverse bool) int {
		tb, err := testbed.New("D1", 17)
		if err != nil {
			b.Fatal(err)
		}
		d := dongle.New(tb.Medium, tb.Region)
		fp := scan.Fingerprint{Home: tb.Home(), Controller: testbed.ControllerID,
			Nodes: []protocol.NodeID{1, 2, 3}}
		queue := cmdclass.MustLoad().ControllerCluster()
		queue = append(queue, cmdclass.HiddenCandidates()...)
		queue = cmdclass.PrioritizeByCommandCount(queue)
		if reverse {
			for i, j := 0, len(queue)-1; i < j; i, j = i+1, j-1 {
				queue[i], queue[j] = queue[j], queue[i]
			}
		}
		mut := mutate.New(mutate.Semantics{Controller: 1, KnownNodes: fp.Nodes}, 17)
		eng, err := fuzz.New(d, fp, queue, mut, fuzz.StrategyFull, "D1",
			fuzz.Config{Duration: 10 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		tb.Bus.Subscribe(eng.Observe)
		return len(eng.Run().Findings)
	}
	var prioritized, reversed int
	for i := 0; i < b.N; i++ {
		prioritized = run(false)
		reversed = run(true)
	}
	b.ReportMetric(float64(prioritized), "bugs-in-10min-prioritized")
	b.ReportMetric(float64(reversed), "bugs-in-10min-reversed")
}

// BenchmarkAblation_SemanticPools measures the semantic value pools
// (known node IDs as mutation values): unique findings in the hidden
// class 0x01 within 30 simulated minutes, with and without network
// knowledge.
func BenchmarkAblation_SemanticPools(b *testing.B) {
	run := func(withSemantics bool) int {
		tb, err := testbed.New("D2", 23)
		if err != nil {
			b.Fatal(err)
		}
		d := dongle.New(tb.Medium, tb.Region)
		fp := scan.Fingerprint{Home: tb.Home(), Controller: testbed.ControllerID}
		sem := mutate.Semantics{Controller: 1}
		if withSemantics {
			fp.Nodes = []protocol.NodeID{1, 2, 3}
			sem.KnownNodes = fp.Nodes
		}
		proto, _ := cmdclass.HiddenClass(cmdclass.ClassZWaveProtocol)
		mut := mutate.New(sem, 23)
		eng, err := fuzz.New(d, fp, []*cmdclass.Class{proto}, mut, fuzz.StrategyFull, "D2",
			fuzz.Config{Duration: 30 * time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		tb.Bus.Subscribe(eng.Observe)
		return len(eng.Run().Findings)
	}
	var with, without int
	for i := 0; i < b.N; i++ {
		with = run(true)
		without = run(false)
	}
	b.ReportMetric(float64(with), "bugs-with-semantics")
	b.ReportMetric(float64(without), "bugs-without-semantics")
}

// BenchmarkPipeline_SingleCampaign measures one end-to-end one-hour
// campaign (all three phases), the unit of every table above.
func BenchmarkPipeline_SingleCampaign(b *testing.B) {
	b.ReportAllocs()
	var found int
	for i := 0; i < b.N; i++ {
		tb, err := testbed.New("D1", int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		c, err := zcover.Run(tb, zcover.StrategyFull, time.Hour, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		found = len(c.Fuzz.Findings)
	}
	b.ReportMetric(float64(found), "unique-vulns")
}
