package serialapi

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeLayout(t *testing.T) {
	raw := Encode(Frame{Type: TypeRequest, Func: FuncMemoryGetID})
	// SOF, LEN=3, TYPE, FUNC, CHK.
	want := []byte{SOF, 0x03, 0x00, 0x20}
	if !bytes.Equal(raw[:4], want) {
		t.Fatalf("frame = % X, want % X + CHK", raw, want)
	}
	if raw[4] != Checksum(raw[1:4]) {
		t.Fatal("checksum wrong")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	good := Encode(Frame{Type: TypeResponse, Func: FuncGetVersion, Data: []byte("v7")})
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"short", []byte{SOF, 1, 2}, ErrFrameTooShort},
		{"no sof", append([]byte{ACK}, good[1:]...), ErrNotDataFrame},
		{"bad len", func() []byte { r := append([]byte{}, good...); r[1]++; return r }(), ErrLengthMismatch},
		{"bad chk", func() []byte { r := append([]byte{}, good...); r[len(r)-1] ^= 0x55; return r }(), ErrBadChecksum},
	}
	for _, tc := range cases {
		if _, err := Decode(tc.raw); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// Property: encode/decode round-trips arbitrary frames.
func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(ftype bool, funcID byte, data []byte) bool {
		if len(data) > 250 {
			data = data[:250]
		}
		f := Frame{Type: TypeRequest, Func: funcID, Data: data}
		if ftype {
			f.Type = TypeResponse
		}
		got, err := Decode(Encode(f))
		return err == nil && got.Type == f.Type && got.Func == f.Func && bytes.Equal(got.Data, f.Data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fakeChip answers a fixed function set.
type fakeChip struct{ calls int }

func (f *fakeChip) SerialCall(funcID byte, data []byte) ([]byte, bool) {
	f.calls++
	switch funcID {
	case FuncGetVersion:
		return []byte("Z-Wave 7.18\x00\x01"), true
	case FuncMemoryGetID:
		return []byte{0xE7, 0xDE, 0x3F, 0x3D, 0x01}, true
	case FuncGetInitData:
		return []byte{0x08, 0x00, 0x02, 0b00000111, 0x00, 0x07, 0x00}, true
	case FuncGetNodeProtocolInfo:
		return []byte{0x80, 0x00, 0x00, 0x03, 0x40, 0x03}, true
	case FuncSendData:
		return []byte{0x01}, true
	}
	return nil, false
}

func TestClientCall(t *testing.T) {
	chip := &fakeChip{}
	c := NewClient(chip)
	data, err := c.Call(FuncMemoryGetID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 5 || data[4] != 0x01 {
		t.Fatalf("data = % X", data)
	}
	if _, err := c.Call(0x99, nil); err == nil {
		t.Fatal("unsupported function accepted")
	}
}

func TestPCControllerReadsChip(t *testing.T) {
	p := NewPCController(&fakeChip{})
	id, err := p.NetworkID()
	if err != nil {
		t.Fatal(err)
	}
	if id.Home != 0xE7DE3F3D || id.NodeID != 0x01 {
		t.Fatalf("network id = %+v", id)
	}
	v, err := p.Version()
	if err != nil || v[:6] != "Z-Wave" {
		t.Fatalf("version = %q, %v", v, err)
	}
	ids, err := p.NodeIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("node ids = %v", ids)
	}
	table, err := p.NodeTable()
	if err != nil || len(table) != 3 {
		t.Fatalf("table = %v, %v", table, err)
	}
	if table[0].TypeName() != "Entry Control (Door Lock)" {
		t.Fatalf("type = %q", table[0].TypeName())
	}
	if err := p.SendData(2, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeInfoTypeNames(t *testing.T) {
	cases := map[string]NodeInfo{
		"Static Controller":         {Basic: 0x02, Generic: 0x02},
		"Entry Control (Door Lock)": {Basic: 0x03, Generic: 0x40},
		"Binary Switch":             {Basic: 0x04, Generic: 0x10},
		"Routing Slave":             {Basic: 0x04, Generic: 0x77},
	}
	for want, n := range cases {
		if got := n.TypeName(); got != want {
			t.Errorf("TypeName(%+v) = %q, want %q", n, got, want)
		}
	}
	if !(NodeInfo{Capability: 0x80}).Listening() || (NodeInfo{Capability: 0x40}).Listening() {
		t.Error("Listening flag wrong")
	}
}

func TestNewClientNilChipPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClient(nil) did not panic")
		}
	}()
	NewClient(nil)
}
