package mutate

import (
	"testing"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

func BenchmarkSurfaceBuild(b *testing.B) {
	proto, _ := cmdclass.HiddenClass(cmdclass.ClassZWaveProtocol)
	m := New(Semantics{Controller: 1, KnownNodes: []protocol.NodeID{1, 2, 3}}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := m.Stream(proto)
		if s.SurfaceSize() == 0 {
			b.Fatal("empty surface")
		}
	}
}

func BenchmarkStreamNext(b *testing.B) {
	proto, _ := cmdclass.HiddenClass(cmdclass.ClassZWaveProtocol)
	m := New(Semantics{Controller: 1, KnownNodes: []protocol.NodeID{1, 2, 3}}, 1)
	s := m.Stream(proto)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if p := s.Next(); len(p) < 2 {
			b.Fatal("short payload")
		}
	}
}
