// Package discover implements phase 2 of ZCover: unknown-properties
// discovery (§III-C of the paper). It clusters the public specification
// for controller-relevant command classes the target did not list, then
// runs systematic validation testing — a sweep from CMDCL 0x00 upward —
// to find proprietary classes that are absent from the specification
// entirely, and to confirm which commands the firmware actually processes.
package discover

import (
	"fmt"
	"sort"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

// CmdRef names one confirmed (class, command) pair.
type CmdRef struct {
	Class cmdclass.ClassID
	Cmd   cmdclass.CommandID
}

// Result is the discovery-phase output: everything phase 3 needs to build
// its prioritised fuzzing queue.
type Result struct {
	// ListedClasses resolves the fingerprint's listed IDs against the spec.
	ListedClasses []*cmdclass.Class
	// UnlistedSpec holds controller-cluster classes the target did not
	// list (26 for the modern controllers of Table IV).
	UnlistedSpec []*cmdclass.Class
	// HiddenConfirmed holds out-of-spec proprietary classes that
	// validation testing confirmed functional (0x01 and 0x02).
	HiddenConfirmed []*cmdclass.Class
	// ConfirmedCommands lists the (class, command) pairs that elicited
	// responses during validation (53 in Table V).
	ConfirmedCommands []CmdRef
	// Prioritized is the final fuzzing queue: listed + unlisted + hidden,
	// ordered by descending command count (45 classes in Table V).
	Prioritized []*cmdclass.Class
	// ProbesSent counts validation packets used.
	ProbesSent int
}

// UnknownCount reports the "Unknown CMDCLs" column of Table IV:
// spec-inferred unlisted candidates plus validated proprietary classes.
func (r Result) UnknownCount() int {
	return len(r.UnlistedSpec) + len(r.HiddenConfirmed)
}

// genericSweepCommands is how many command IDs the out-of-spec sweep tries
// per unknown class ID before giving up on it.
const genericSweepCommands = 8

// Run executes the full discovery phase against a fingerprinted target.
func Run(d *dongle.Dongle, reg *cmdclass.Registry, fp scan.Fingerprint) (Result, error) {
	if reg == nil {
		return Result{}, fmt.Errorf("discover: nil registry")
	}
	var res Result

	listed := make(map[cmdclass.ClassID]bool, len(fp.Listed))
	for _, id := range fp.Listed {
		listed[id] = true
		if cls, ok := reg.Get(id); ok {
			res.ListedClasses = append(res.ListedClasses, cls)
		}
	}

	// Step 1 (§III-C1): cluster the specification and subtract the listed
	// set. Everything left is an unlisted candidate the controller should
	// support by classification.
	for _, cls := range reg.ControllerCluster() {
		if !listed[cls.ID] {
			res.UnlistedSpec = append(res.UnlistedSpec, cls)
		}
	}

	// Step 2 (§III-C2): systematic validation testing, sweeping class IDs
	// from 0x00 to the upper limit of the candidate list.
	upper := cmdclass.ClassID(0)
	for _, cls := range reg.ControllerCluster() {
		if cls.ID > upper {
			upper = cls.ID
		}
	}
	for cid := cmdclass.ClassID(0x01); ; cid++ {
		if _, inSpec := reg.Get(cid); !inSpec {
			if cls := probeUnknownClass(d, fp, cid, &res.ProbesSent); cls != nil {
				res.HiddenConfirmed = append(res.HiddenConfirmed, cls)
			}
		}
		if cid == upper {
			break
		}
	}

	// Step 3: confirm which commands of the full candidate pool the
	// firmware visibly processes, using safe spec-shaped probes.
	pool := res.pool()
	for _, cls := range pool {
		for _, cmd := range cls.Commands {
			res.ProbesSent++
			ex, err := d.SendAndObserve(fp.Home, scan.AttackerNodeID, fp.Controller,
				BuildSafeProbe(cls, cmd, fp), dongle.DefaultResponseWindow)
			if err != nil {
				return res, fmt.Errorf("discover: probing %s/%s: %w", cls.ID, cmd.ID, err)
			}
			if len(ex.Responses) > 0 {
				res.ConfirmedCommands = append(res.ConfirmedCommands, CmdRef{Class: cls.ID, Cmd: cmd.ID})
			}
			waitRecovery(d, fp)
		}
	}
	sort.Slice(res.ConfirmedCommands, func(i, j int) bool {
		a, b := res.ConfirmedCommands[i], res.ConfirmedCommands[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Cmd < b.Cmd
	})

	// Step 4: prioritise the queue by command count (§III-C1,
	// "Prioritizing CMDCLs").
	res.Prioritized = cmdclass.PrioritizeByCommandCount(pool)
	return res, nil
}

// pool assembles the candidate class set: listed + unlisted + hidden.
func (r *Result) pool() []*cmdclass.Class {
	out := make([]*cmdclass.Class, 0, len(r.ListedClasses)+len(r.UnlistedSpec)+len(r.HiddenConfirmed))
	out = append(out, r.ListedClasses...)
	out = append(out, r.UnlistedSpec...)
	out = append(out, r.HiddenConfirmed...)
	return out
}

// probeUnknownClass sends generic probes for a class ID that is absent
// from the public specification. A response means the firmware implements
// a proprietary class; its structure is then resolved against the known
// proprietary definitions (derived, as in the paper, from chipset
// documentation and observed behaviour).
func probeUnknownClass(d *dongle.Dongle, fp scan.Fingerprint, cid cmdclass.ClassID, probes *int) *cmdclass.Class {
	for cmd := byte(0x01); cmd <= genericSweepCommands; cmd++ {
		*probes++
		ex, err := d.SendAndObserve(fp.Home, scan.AttackerNodeID, fp.Controller,
			[]byte{byte(cid), cmd, 0x00}, dongle.DefaultResponseWindow)
		if err != nil {
			return nil
		}
		if len(ex.Responses) > 0 {
			if cls, ok := cmdclass.HiddenClass(cid); ok {
				return cls
			}
			// A responding class with no known definition is still a
			// candidate: synthesise a minimal definition so the mutator
			// can target it.
			return &cmdclass.Class{
				ID: cid, Name: fmt.Sprintf("PROPRIETARY_0x%02X", byte(cid)),
				Category: cmdclass.CategoryManagement, Scope: cmdclass.ScopeController,
			}
		}
	}
	return nil
}

// BuildSafeProbe constructs a spec-shaped, semantically benign packet for
// one command: full fixed-parameter length, legal values everywhere, no
// boundary or junk bytes. These are the packets validation testing sends —
// designed to elicit normal processing, not crashes.
func BuildSafeProbe(cls *cmdclass.Class, cmd cmdclass.Command, fp scan.Fingerprint) []byte {
	out := []byte{byte(cls.ID), byte(cmd.ID)}
	for _, p := range cmd.Params {
		if p.Kind == cmdclass.ParamVariadic {
			break
		}
		out = append(out, safeValue(p, fp))
	}
	return out
}

// safeValue picks the benign probe value for one parameter.
func safeValue(p cmdclass.Param, fp scan.Fingerprint) byte {
	switch p.Kind {
	case cmdclass.ParamNodeID:
		return byte(fp.Controller)
	case cmdclass.ParamRange:
		return p.Min
	case cmdclass.ParamEnum:
		if len(p.Values) > 0 {
			return p.Values[0]
		}
		return 0x00
	default: // byte, bitmask
		return 0x00
	}
}

// waitRecovery pauses until the target answers liveness probes again, in
// case a probe unexpectedly disturbed it. Validation probes are designed
// to be safe, so this almost never waits — but a discovery phase must not
// silently leave the controller hung for the fuzzing phase.
func waitRecovery(d *dongle.Dongle, fp scan.Fingerprint) {
	for i := 0; i < 120; i++ {
		if d.Ping(fp.Home, scan.AttackerNodeID, fp.Controller) {
			return
		}
		d.Clock().Advance(5 * time.Second)
	}
}
