package fuzz

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"zcover/internal/oracle"
	"zcover/internal/telemetry"
)

// sampleResult builds a two-finding result, the second carrying a
// flight-recorder trace.
func sampleResult() *Result {
	at := time.Date(2025, 1, 1, 0, 2, 3, 0, time.UTC)
	return &Result{
		Strategy: StrategyFull,
		Device:   "D4",
		Findings: []Finding{
			{
				Signature:      "node-removed/0x41/0x04",
				Event:          oracle.Event{At: at, Device: "D4", Kind: oracle.NodeRemoved, Class: 0x41, Cmd: 0x04, Detail: "node vanished"},
				TriggerPayload: []byte{0x41, 0x04, 0x01},
				Packets:        17,
				Elapsed:        90500 * time.Millisecond,
			},
			{
				Signature:      "service-hang/0x20/0x01",
				Event:          oracle.Event{At: at.Add(time.Minute), Device: "D4", Kind: oracle.ServiceHang, Class: 0x20, Cmd: 0x01, Duration: 30 * time.Second, Detail: "hang"},
				TriggerPayload: []byte{0x20, 0x01, 0xFF},
				Packets:        42,
				Elapsed:        2 * time.Minute,
				Trace: []telemetry.FrameRecord{
					{Seq: 7, At: at.Add(59 * time.Second), From: "attacker", Raw: []byte{0xDE, 0xAD, 0xBE, 0xEF}, Airtime: 4160 * time.Microsecond, Security: telemetry.SecurityNone, Targets: 2},
					{Seq: 8, At: at.Add(time.Minute), From: "attacker", Raw: []byte{0xCA, 0xFE}, Airtime: 2000 * time.Microsecond, Security: telemetry.SecurityS0, Targets: 2, Lost: 1},
				},
			},
		},
		PacketsSent: 42,
	}
}

func TestLogRoundTrip(t *testing.T) {
	res := sampleResult()
	var buf bytes.Buffer
	if err := WriteLog(&buf, res); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	entries, err := ReadLog(&buf)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}

	first := entries[0]
	if first.Strategy != string(StrategyFull) || first.Device != "D4" {
		t.Errorf("labels = %q/%q", first.Strategy, first.Device)
	}
	if first.Signature != "node-removed/0x41/0x04" || first.Kind != "node-removed" {
		t.Errorf("identity = %q kind %q", first.Signature, first.Kind)
	}
	if first.Class != 0x41 || first.Cmd != 0x04 {
		t.Errorf("vector = 0x%02X/0x%02X", first.Class, first.Cmd)
	}
	payload, err := first.TriggerPayload()
	if err != nil || !bytes.Equal(payload, []byte{0x41, 0x04, 0x01}) {
		t.Errorf("payload = % X err %v", payload, err)
	}
	if first.Elapsed() != 90500*time.Millisecond {
		t.Errorf("elapsed = %v", first.Elapsed())
	}
	if len(first.Trace) != 0 {
		t.Errorf("finding without recorder has %d trace frames", len(first.Trace))
	}

	second := entries[1]
	if second.DurationSec != 30 {
		t.Errorf("duration_sec = %v", second.DurationSec)
	}
	if len(second.Trace) != 2 {
		t.Fatalf("got %d trace frames, want 2", len(second.Trace))
	}
	tf := second.Trace[1]
	if tf.Seq != 8 || tf.From != "attacker" || tf.Security != "s0" || tf.Lost != 1 || tf.Targets != 2 {
		t.Errorf("trace frame = %+v", tf)
	}
	raw, err := tf.RawFrame()
	if err != nil || !bytes.Equal(raw, []byte{0xCA, 0xFE}) {
		t.Errorf("trace raw = % X err %v", raw, err)
	}
	if tf.Airtime() != 2000*time.Microsecond {
		t.Errorf("trace airtime = %v", tf.Airtime())
	}
	want := time.Date(2025, 1, 1, 0, 3, 3, 0, time.UTC)
	if !tf.At.Equal(want) {
		t.Errorf("trace at = %v, want %v", tf.At, want)
	}
}

// TestReadLogUnknownFieldTolerance pins the forward-compatibility contract:
// entries written by a newer version with extra fields still parse, and
// blank lines between entries are skipped.
func TestReadLogUnknownFieldTolerance(t *testing.T) {
	input := `{"strategy":"zcover","device":"D1","signature":"s","kind":"host-crash","cmdcl":32,"cmd":1,"payload":"2001","packets":3,"elapsed_sec":1.5,"duration_sec":0,"detail":"d","future_field":{"nested":true}}

{"strategy":"vfuzz","device":"D2","signature":"t","kind":"service-hang","cmdcl":0,"cmd":0,"payload":"","packets":9,"elapsed_sec":2,"duration_sec":10,"detail":"","trace":[{"seq":1,"at":"2025-01-01T00:00:01Z","raw":"00","airtime_us":100,"verdict_v2":"kept"}]}
`
	entries, err := ReadLog(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Class != 0x20 || entries[0].Cmd != 0x01 {
		t.Errorf("entry 0 vector = 0x%02X/0x%02X", entries[0].Class, entries[0].Cmd)
	}
	if len(entries[1].Trace) != 1 || entries[1].Trace[0].AirtimeUS != 100 {
		t.Errorf("entry 1 trace = %+v", entries[1].Trace)
	}
}

func TestReadLogRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"truncated object": `{"strategy":"zcover","device":`,
		"trailing garbage": `{"strategy":"zcover"} extra`,
		"not an object":    `[1,2,3]`,
		"wrong field type": `{"packets":"many"}`,
	}
	for name, input := range cases {
		if _, err := ReadLog(strings.NewReader("{}\n" + input + "\n")); err == nil {
			t.Errorf("%s: ReadLog accepted %q", name, input)
		} else if !strings.Contains(err.Error(), "line 2") {
			t.Errorf("%s: error %q does not locate line 2", name, err)
		}
	}
}

func TestWriteLogEmptyResult(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLog(&buf, &Result{Strategy: StrategyFull, Device: "D1"}); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty result wrote %q", buf.String())
	}
	entries, err := ReadLog(&buf)
	if err != nil || len(entries) != 0 {
		t.Errorf("ReadLog of empty log = %v entries, err %v", entries, err)
	}
}
