package harness

import (
	"reflect"
	"testing"

	"zcover/internal/fleet"
	"zcover/internal/zcover/fuzz"
)

// TestChaosTable5ByteIdenticalAcrossWorkers asserts the chaos-campaign
// acceptance criterion: for a fixed chaos seed the impairment sweep —
// Gilbert–Elliott loss, corruption, duplication, jitter, retransmissions,
// SPAN recovery, suspect grading and all — renders the same bytes from the
// sequential fallback and the parallel pool. The two invocations also pin
// run-to-run reproducibility: each builds every injector from scratch.
func TestChaosTable5ByteIdenticalAcrossWorkers(t *testing.T) {
	const chaosSeed = 99
	profiles := []string{"lossy"}
	seqTbl, seqRows, err := ChaosTable5(fleetTestBudget, profiles, chaosSeed, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parTbl, parRows, err := ChaosTable5(fleetTestBudget, profiles, chaosSeed, fleet.Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seqTbl.String() != parTbl.String() {
		t.Errorf("chaos table differs between workers=1 and workers=8:\n--- seq ---\n%s\n--- par ---\n%s",
			seqTbl.String(), parTbl.String())
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("chaos rows differ between worker counts: %+v vs %+v", seqRows, parRows)
	}
}

// TestChaosNoneProfileIsCleanRun guards the clean-path invariant from the
// job-spec side: a job carrying the "none" profile (enabled but inert) must
// produce byte-for-byte the findings of a job with no chaos at all, because
// ApplyChaos refuses to install an injector that cannot inject.
func TestChaosNoneProfileIsCleanRun(t *testing.T) {
	seed := deviceSeed("D1")
	outs, err := runCampaigns("chaos-test", []fleet.Job{
		{Name: "clean", Device: "D1", Strategy: fuzz.StrategyFull, Seed: seed, Budget: fleetTestBudget},
		{Name: "none", Device: "D1", Strategy: fuzz.StrategyFull, Seed: seed, Budget: fleetTestBudget,
			ChaosProfile: "none", ChaosSeed: 7},
	}, fleet.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	clean, none := outs[0].Campaign.Fuzz, outs[1].Campaign.Fuzz
	if !reflect.DeepEqual(clean.Findings, none.Findings) {
		t.Errorf("\"none\" profile changed the campaign: %d vs %d findings",
			len(none.Findings), len(clean.Findings))
	}
	if clean.PacketsSent != none.PacketsSent {
		t.Errorf("\"none\" profile changed packet count: %d vs %d", none.PacketsSent, clean.PacketsSent)
	}
}

// TestChaosBadProfileFailsFast: an invalid profile spec must surface as a
// job error before any campaign runs, not as a late panic in a worker.
func TestChaosBadProfileFailsFast(t *testing.T) {
	if _, _, err := ChaosTable5(fleetTestBudget, []string{"burst:badloss=2.0"}, 1, fleet.Config{Workers: 1}); err == nil {
		t.Fatal("out-of-range profile override accepted")
	}
	if _, _, err := ChaosTable5(fleetTestBudget, []string{"no-such-profile"}, 1, fleet.Config{Workers: 1}); err == nil {
		t.Fatal("unknown profile name accepted")
	}
}

// TestChaosImpairedCampaignGradesFindings runs one impaired campaign and
// checks the wiring end to end: the injector actually fired, and every
// finding carries a well-formed confidence grade.
func TestChaosImpairedCampaignGradesFindings(t *testing.T) {
	outs, err := runCampaigns("chaos-test", []fleet.Job{
		{Name: "stress", Device: "D1", Strategy: fuzz.StrategyFull, Seed: deviceSeed("D1"),
			Budget: fleetTestBudget, ChaosProfile: "lossy", ChaosSeed: 3},
	}, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := outs[0].Campaign.Fuzz
	if len(res.Findings) == 0 {
		t.Fatal("impaired campaign found nothing; resilience too weak for the lossy profile")
	}
	for _, f := range res.Findings {
		if s := f.Event.Confidence.String(); s != "confirmed" && s != "suspect" {
			t.Errorf("finding %s has malformed confidence %q", f.Signature, s)
		}
	}
}
