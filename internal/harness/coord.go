package harness

import (
	"encoding/json"
	"fmt"
	"time"

	"zcover/internal/checkpoint"
	"zcover/internal/fleet"
	"zcover/internal/report"
	"zcover/internal/zcover/fuzz"
)

// This file is the campaign layer's distributed half: the named job
// lists, spec hashes, and renderers the coordinator (internal/coord)
// and its workers share. The coordinator never interprets outcomes — it
// moves journal records; everything campaign-shaped lives here so the
// distributed path renders byte-identically to the local one.

// CampaignJobs returns the named distributed campaign's full job list.
// "table5" is the paper's Table V sweep; "smoke" is a three-job
// sub-minute list for CI and protocol tests. budget <= 0 selects each
// campaign's default.
func CampaignJobs(name string, budget time.Duration) ([]fleet.Job, error) {
	switch name {
	case "table5":
		return table5Jobs(budget), nil
	case "smoke":
		return smokeJobs(budget), nil
	}
	return nil, fmt.Errorf("harness: unknown campaign %q (want table5 or smoke)", name)
}

// smokeJobs is the tiny coordinator-path exercise: two controllers,
// both engines, real findings (a D1 full campaign surfaces its first
// vulnerability inside two simulated minutes) so the bug-log half of
// the determinism contract is not vacuous.
func smokeJobs(budget time.Duration) []fleet.Job {
	if budget <= 0 {
		budget = 2 * time.Minute
	}
	return []fleet.Job{
		{Name: "smoke/D1/zcover", Device: "D1", Strategy: fuzz.StrategyFull, Seed: 41, Budget: budget},
		{Name: "smoke/D1/vfuzz", Device: "D1", Baseline: true, Seed: 41, Budget: budget},
		{Name: "smoke/D2/zcover", Device: "D2", Strategy: fuzz.StrategyFull, Seed: 42, Budget: budget},
	}
}

// CampaignSpecHash fingerprints a campaign exactly as the checkpoint
// layer does (checkpoint.SpecHash over the name plus the complete job
// list), so coordinator journals, shard journals, and local checkpoint
// journals of the same sweep all carry — and cross-validate — the same
// hash.
func CampaignSpecHash(name string, jobs []fleet.Job) (string, error) {
	return checkpoint.SpecHash(campaignSpec{Campaign: name, Jobs: jobs})
}

// DecodeRecords decodes journal records (coordinator uploads, in job
// order) back into campaign outcomes. Every job must be present — the
// same full-coverage rule the shard merge enforces.
func DecodeRecords(recs []checkpoint.JobRecord, total int) ([]FleetOutcome, error) {
	if len(recs) != total {
		return nil, fmt.Errorf("harness: %d records for %d jobs", len(recs), total)
	}
	outs := make([]FleetOutcome, total)
	for _, rec := range recs {
		if rec.Index < 0 || rec.Index >= total {
			return nil, fmt.Errorf("harness: record index %d out of range [0,%d)", rec.Index, total)
		}
		out, err := DecodeOutcome(rec.Body)
		if err != nil {
			return nil, fmt.Errorf("harness: job %d (%s): %w", rec.Index, rec.Label, err)
		}
		outs[rec.Index] = out
	}
	return outs, nil
}

// RenderCampaign renders the named campaign's table from its outcomes
// and appends the findings to the bug-log sink (SetBugLog) in job order
// — the exact epilogue runCampaigns performs locally, so a coordinated
// sweep's table and bug log are byte-identical to a single-machine run.
func RenderCampaign(name string, outs []FleetOutcome) (*report.Table, error) {
	if err := writeBugLog(outs); err != nil {
		return nil, err
	}
	switch name {
	case "table5":
		tbl, _, err := renderTable5(outs)
		return tbl, err
	case "smoke":
		return renderSmoke(outs), nil
	}
	return nil, fmt.Errorf("harness: unknown campaign %q", name)
}

// renderSmoke summarises the smoke campaign: per job, the packets sent
// and findings surfaced.
func renderSmoke(outs []FleetOutcome) *report.Table {
	jobs := smokeJobs(0)
	tbl := &report.Table{
		Title:   "Coordinator smoke campaign",
		Headers: []string{"Job", "Packets", "Findings"},
	}
	for i, o := range outs {
		label := fmt.Sprintf("job %d", i)
		if i < len(jobs) {
			label = jobs[i].Name
		}
		packets, findings := 0, 0
		if res := o.Fuzz(); res != nil {
			packets, findings = res.PacketsSent, len(res.Findings)
		}
		tbl.AddRow(label, fmt.Sprintf("%d", packets), fmt.Sprintf("%d", findings))
	}
	return tbl
}

// LeaseRunner adapts the campaign executor into a coordinator worker's
// job runner: every leased job runs on a single-job fleet — fresh
// private testbed, panic isolation, MaxAttempts retries, timeline and
// progress wiring — exactly as it would inside a local sweep, and comes
// back as the serialised outcome the coordinator journals.
func LeaseRunner(cfg fleet.Config) func(job fleet.Job) (json.RawMessage, int, error) {
	cfg.Checkpoint = nil // leases replace local campaign checkpointing
	return func(job fleet.Job) (json.RawMessage, int, error) {
		res := fleet.Run([]fleet.Job{job}, RunFleetJob, cfg)[0]
		if res.Err != nil {
			return nil, res.Attempts, res.Err
		}
		raw, err := EncodeOutcome(res.Value)
		if err != nil {
			return nil, res.Attempts, err
		}
		return raw, res.Attempts, nil
	}
}
