// Package mutate implements phase 3's packet generator: ZCover's
// position-sensitive mutation (§III-D, Table I, Algorithm 1).
//
// The generator treats the application payload as the hierarchical
// structure of Fig. 6 — CMDCL at position 0, CMD at position 1, PARAMs in
// dependent positions — and mutates each position according to its
// spec-declared kind, using the mutation operators of Table I:
//
//	rand valid    replace with a randomly selected legal value
//	rand invalid  replace with a randomly selected illegal value
//	arith         add/subtract a small integer
//	interesting   replace with boundary/interesting values
//	insert        append a random byte
//
// Each class's stream starts with a deterministic *surface pass* that
// systematically applies these operators position by position (structural
// truncations, per-position pools, node-ID correlation pairs), then
// continues with random refinement. The surface pass is what makes
// ZCover's discoveries land within the first hundreds of packets (Fig. 12).
package mutate

import (
	"math/rand"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// Semantics carries the network knowledge fingerprinting produced: the
// value pools behind the paper's "dynamic and semantic mutation".
type Semantics struct {
	// Controller is the target controller's node ID.
	Controller protocol.NodeID
	// KnownNodes lists every node observed on the network.
	KnownNodes []protocol.NodeID
}

// Interesting node IDs beyond the observed ones: broadcast, the two rogue
// IDs of Fig. 9, unassigned, and the last assignable ID.
var interestingNodeIDs = []byte{0xFF, 0x0A, 0xC8, 0x00, 0xE8}

// byte-position pools per parameter kind (the "interesting" operator's
// value sets).
var (
	bytePool    = []byte{0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF}
	bitmaskPool = []byte{0xFF, 0x80, 0x07, 0x00}
)

// Mode selects the generator behaviour.
type Mode int

// Modes. Enum starts at 1.
const (
	// ModePositionSensitive is ZCover's full mutator.
	ModePositionSensitive Mode = iota + 1
	// ModeRandom is the γ ablation: random command and parameter bytes
	// with no position awareness, no pools, no semantics.
	ModeRandom
)

// Mutator generates test payloads for target classes.
type Mutator struct {
	sem  Semantics
	mode Mode
	seed int64
}

// New returns the position-sensitive mutator.
func New(sem Semantics, seed int64) *Mutator {
	return &Mutator{sem: sem, mode: ModePositionSensitive, seed: seed}
}

// NewRandom returns the γ-ablation mutator.
func NewRandom(seed int64) *Mutator {
	return &Mutator{mode: ModeRandom, seed: seed}
}

// Mode reports the generator behaviour.
func (m *Mutator) Mode() Mode { return m.mode }

// nodeIDPool builds the semantic node-ID value pool: known slaves first
// (they make packets that reference real state), then the controller
// itself, then interesting IDs.
func (m *Mutator) nodeIDPool() []byte {
	pool := make([]byte, 0, len(m.sem.KnownNodes)+len(interestingNodeIDs))
	seen := make(map[byte]bool)
	add := func(b byte) {
		if !seen[b] {
			seen[b] = true
			pool = append(pool, b)
		}
	}
	for _, id := range m.sem.KnownNodes {
		if id != m.sem.Controller {
			add(byte(id))
		}
	}
	add(byte(m.sem.Controller))
	for _, b := range interestingNodeIDs {
		add(b)
	}
	return pool
}

// pool returns the per-position mutation value pool for a parameter.
func (m *Mutator) pool(p cmdclass.Param) []byte {
	switch p.Kind {
	case cmdclass.ParamNodeID:
		return m.nodeIDPool()
	case cmdclass.ParamRange:
		vals := []byte{p.Min, p.Max}
		if p.Max < 0xFF {
			vals = append(vals, p.Max+1)
		}
		if p.Min > 0 {
			vals = append(vals, p.Min-1)
		}
		return append(vals, 0xFF)
	case cmdclass.ParamEnum:
		vals := append([]byte{}, p.Values...)
		return append(vals, invalidEnumValue(p))
	case cmdclass.ParamBitmask:
		return bitmaskPool
	default:
		return bytePool
	}
}

// invalidEnumValue picks a byte outside the enum's legal set (rand
// invalid operator, deterministic flavour).
func invalidEnumValue(p cmdclass.Param) byte {
	for v := byte(0xFD); ; v-- {
		if !p.Legal(v) {
			return v
		}
	}
}

// defaultValue is the semantically valid filler for positions not under
// mutation: a real slave node for node IDs, the first legal value
// otherwise.
func (m *Mutator) defaultValue(p cmdclass.Param) byte {
	switch p.Kind {
	case cmdclass.ParamNodeID:
		pool := m.nodeIDPool()
		if len(pool) > 0 {
			return pool[0]
		}
		return 0x02
	case cmdclass.ParamRange:
		return p.Min
	case cmdclass.ParamEnum:
		if len(p.Values) > 0 {
			return p.Values[0]
		}
		return 0x00
	default:
		return 0x00
	}
}

// fixedParams returns the non-variadic parameter schemas of a command.
func fixedParams(cmd cmdclass.Command) []cmdclass.Param {
	out := cmd.Params
	for i, p := range out {
		if p.Kind == cmdclass.ParamVariadic {
			return out[:i]
		}
	}
	return out
}

// correlationNodeIDs orders the node-ID pool for the correlation pass:
// IDs *not* observed on the network first (rogue-insertion shapes are the
// whole point of correlating an unknown ID with type fields), then the
// known ones.
func (m *Mutator) correlationNodeIDs() []byte {
	pool := m.nodeIDPool()
	known := make(map[byte]bool, len(m.sem.KnownNodes))
	for _, id := range m.sem.KnownNodes {
		known[byte(id)] = true
	}
	out := make([]byte, 0, len(pool))
	for _, v := range pool {
		if !known[v] {
			out = append(out, v)
		}
	}
	for _, v := range pool {
		if known[v] {
			out = append(out, v)
		}
	}
	return out
}

// Stream produces test payloads for one class: a deterministic surface
// pass followed by unbounded random refinement.
type Stream struct {
	class   *cmdclass.Class
	mut     *Mutator
	surface [][]byte
	quick   int // boundary of the quick pass (passes 1a + 1b)
	next    int
	rng     *rand.Rand
}

// Stream starts a payload stream for the class.
func (m *Mutator) Stream(cls *cmdclass.Class) *Stream {
	s := &Stream{
		class: cls,
		mut:   m,
		rng:   rand.New(rand.NewSource(m.seed ^ int64(cls.ID)<<32)),
	}
	if m.mode == ModePositionSensitive {
		s.surface, s.quick = m.buildSurface(cls)
	}
	return s
}

// QuickSize reports the size of the quick pass: the cheap class-wide
// sweeps (bare commands and single-position pools) the engine runs across
// every class before deep-diving any one of them.
func (s *Stream) QuickSize() int { return s.quick }

// Exhausted reports whether the deterministic surface has been consumed.
func (s *Stream) Exhausted() bool { return s.next >= len(s.surface) }

// SurfaceSize reports the deterministic prefix length.
func (s *Stream) SurfaceSize() int { return len(s.surface) }

// Next returns the next test payload. The stream never ends: after the
// surface pass it generates random refinements indefinitely.
func (s *Stream) Next() []byte {
	if s.next < len(s.surface) {
		p := s.surface[s.next]
		s.next++
		return p
	}
	if s.mut.mode == ModeRandom {
		return s.randomNaive()
	}
	return s.randomRefinement()
}

// buildSurface constructs the deterministic pass for a class, returning
// the packets and the quick-pass boundary.
func (m *Mutator) buildSurface(cls *cmdclass.Class) ([][]byte, int) {
	var out [][]byte
	clsB := byte(cls.ID)

	cmds := cls.Commands
	if len(cmds) == 0 {
		// A proprietary class with unknown structure: sweep command bytes.
		for cmd := byte(0x00); cmd <= 0x10; cmd++ {
			out = append(out, []byte{clsB, cmd})
			out = append(out, []byte{clsB, cmd, 0x00})
		}
		return out, len(out)
	}

	// Pass 1a: every command bare (ascending ID) — catches commands whose
	// parsers mishandle missing parameters.
	for _, cmd := range cmds {
		out = append(out, []byte{clsB, byte(cmd.ID)})
	}

	// Pass 1b: every command with a single mutated first-position value —
	// the cheapest position-sensitive sweep, run across the whole class
	// before drilling into any one command.
	for _, cmd := range cmds {
		var pool []byte
		if fp := fixedParams(cmd); len(fp) > 0 {
			pool = m.pool(fp[0])
		} else {
			pool = bytePool // junk byte on a parameterless command
		}
		for _, v := range pool {
			out = append(out, []byte{clsB, byte(cmd.ID), v})
		}
	}

	quick := len(out)

	// Pass 2: per command, richest first (more parameters, more attack
	// surface — the command-level analogue of the class prioritisation).
	ordered := make([]cmdclass.Command, len(cmds))
	copy(ordered, cmds)
	sortByFixedParamsDesc(ordered)
	for _, cmd := range ordered {
		out = append(out, m.commandPipeline(clsB, cmd)...)
	}
	return out, quick
}

// sortByFixedParamsDesc orders commands by descending fixed-parameter
// count, ties by ascending ID (stable, deterministic).
func sortByFixedParamsDesc(cmds []cmdclass.Command) {
	for i := 1; i < len(cmds); i++ {
		for j := i; j > 0; j-- {
			a, b := cmds[j-1], cmds[j]
			an, bn := len(fixedParams(a)), len(fixedParams(b))
			if bn > an || (bn == an && b.ID < a.ID) {
				cmds[j-1], cmds[j] = b, a
			} else {
				break
			}
		}
	}
}

// commandPipeline is the deep surface pass for one command: truncations,
// per-position pools at full length, insert, and node-ID correlation.
func (m *Mutator) commandPipeline(clsB byte, cmd cmdclass.Command) [][]byte {
	var out [][]byte
	fp := fixedParams(cmd)
	defaults := make([]byte, len(fp))
	for i, p := range fp {
		defaults[i] = m.defaultValue(p)
	}
	base := func() []byte {
		pkt := []byte{clsB, byte(cmd.ID)}
		return append(pkt, defaults...)
	}

	// Truncation sweep: spec-length violations with a mutated first
	// position (lengths 2..3 — length 0 and 1 ran in passes 1a/1b).
	if len(fp) >= 1 {
		pool0 := m.pool(fp[0])
		for plen := 2; plen <= 3 && plen < len(fp); plen++ {
			for _, v := range pool0 {
				pkt := []byte{clsB, byte(cmd.ID), v}
				pkt = append(pkt, defaults[1:plen]...)
				out = append(out, pkt)
			}
		}
	}

	// Positional pools at full length: mutate one position through its
	// pool, others semantically valid.
	for pos, p := range fp {
		for _, v := range m.pool(p) {
			pkt := base()
			pkt[2+pos] = v
			out = append(out, pkt)
		}
	}

	// Insert operator: spec-length packet plus a trailing byte, with the
	// first position swept (a mutated-but-plausible oversize packet).
	if len(fp) >= 1 {
		for _, v := range m.pool(fp[0]) {
			pkt := base()
			pkt[2] = v
			out = append(out, append(pkt, 0x00))
		}
	} else {
		out = append(out, append(base(), 0x00), append(base(), 0xAA))
	}

	// Correlation pass: when the first parameter is a node ID, its value
	// changes the meaning of every later field, so sweep (node ID ×
	// position value) pairs — the field-correlation idea the paper's
	// mutation is named for.
	if len(fp) >= 3 && fp[0].Kind == cmdclass.ParamNodeID {
		for _, v := range m.correlationNodeIDs() {
			for pos := 1; pos < len(fp); pos++ {
				pool := m.pool(fp[pos])
				if len(pool) > 3 {
					pool = pool[:3]
				}
				for _, w := range pool {
					pkt := base()
					pkt[2] = v
					pkt[2+pos] = w
					out = append(out, pkt)
				}
			}
		}
	}
	return out
}

// randomRefinement applies Table I operators randomly after the surface
// pass is exhausted.
func (s *Stream) randomRefinement() []byte {
	cls := s.class
	clsB := byte(cls.ID)
	if len(cls.Commands) == 0 {
		return s.randomNaive()
	}
	// rand valid command (80%) or rand invalid command byte (20%).
	var cmd cmdclass.Command
	if s.rng.Intn(5) == 0 {
		return append([]byte{clsB, byte(s.rng.Intn(256))}, s.randomBytes(s.rng.Intn(4))...)
	}
	cmd = cls.Commands[s.rng.Intn(len(cls.Commands))]
	fp := fixedParams(cmd)
	pkt := []byte{clsB, byte(cmd.ID)}
	plen := len(fp)
	if s.rng.Intn(3) == 0 { // structural mutation: wrong length
		plen = s.rng.Intn(len(fp) + 2)
	}
	for i := 0; i < plen; i++ {
		var p cmdclass.Param
		if i < len(fp) {
			p = fp[i]
		} else {
			p = cmdclass.Param{Kind: cmdclass.ParamByte}
		}
		pkt = append(pkt, s.mutateValue(p))
	}
	return pkt
}

// mutateValue applies one randomly chosen Table I operator to a position.
func (s *Stream) mutateValue(p cmdclass.Param) byte {
	switch s.rng.Intn(4) {
	case 0: // rand valid
		return s.mut.defaultValue(p)
	case 1: // rand invalid / random byte
		return byte(s.rng.Intn(256))
	case 2: // arith
		return s.mut.defaultValue(p) + byte(s.rng.Intn(9)) - 4
	default: // interesting
		pool := s.mut.pool(p)
		return pool[s.rng.Intn(len(pool))]
	}
}

// randomNaive is the γ generator: random command (from the spec list when
// the class is known, random byte otherwise) and uniformly random
// parameter bytes of random length — no pools, no semantics, no position
// awareness.
func (s *Stream) randomNaive() []byte {
	clsB := byte(s.class.ID)
	var cmdB byte
	if len(s.class.Commands) > 0 {
		cmdB = byte(s.class.Commands[s.rng.Intn(len(s.class.Commands))].ID)
	} else {
		cmdB = byte(s.rng.Intn(256))
	}
	return append([]byte{clsB, cmdB}, s.randomBytes(s.rng.Intn(5))...)
}

// randomBytes draws n uniform bytes.
func (s *Stream) randomBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(s.rng.Intn(256))
	}
	return out
}

// RandomQueue builds the γ configuration's class queue: all 256 class IDs
// in shuffled order, resolved against the public spec where possible and
// as opaque classes otherwise. No prioritisation, no discovery.
func RandomQueue(reg *cmdclass.Registry, seed int64) []*cmdclass.Class {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*cmdclass.Class, 0, 256)
	for id := 0; id < 256; id++ {
		if cls, ok := reg.Get(cmdclass.ClassID(id)); ok {
			out = append(out, cls)
			continue
		}
		out = append(out, &cmdclass.Class{
			ID: cmdclass.ClassID(id), Name: "UNKNOWN",
			Category: cmdclass.CategoryApplication, Scope: cmdclass.ScopeSlave,
		})
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
