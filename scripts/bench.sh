#!/bin/sh
# bench.sh — run the fleet benchmarks with memory stats and write the
# machine-readable summary to BENCH_fleet.json. `make bench` wraps it.
#
#   ./scripts/bench.sh                 # default: 3 iterations per variant
#   ./scripts/bench.sh -baseline       # also refresh scripts/bench_baseline.txt
#   BENCHTIME=10x ./scripts/bench.sh   # more iterations
#   BENCH_OUT=/tmp/b.json ./scripts/bench.sh
#   BENCH_RAW=/tmp/b.txt ./scripts/bench.sh   # keep the raw `go test` text
#
# The raw text output is what benchstat consumes; -baseline snapshots it to
# scripts/bench_baseline.txt, the committed reference that `make
# bench-compare` diffs against.
set -eu

cd "$(dirname "$0")/.."

benchtime="${BENCHTIME:-3x}"
out="${BENCH_OUT:-BENCH_fleet.json}"
keep_raw="${BENCH_RAW:-}"
baseline=""
for arg in "$@"; do
    case "$arg" in
    -baseline) baseline="yes" ;;
    *)
        echo "bench.sh: unknown flag $arg (want -baseline)" >&2
        exit 2
        ;;
    esac
done
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# Host stamp: every JSON entry carries the commit and the parallelism the
# numbers were measured under, so bench trajectories stay attributable
# when runs from different machines land in the same history.
git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
num_cpu="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)"
gomaxprocs="${GOMAXPROCS:-$num_cpu}"

echo "== go test -bench 'BenchmarkFleetParallelism|BenchmarkChaosCampaign|BenchmarkCovFuzz' -benchmem (benchtime $benchtime) =="
go test ./internal/harness -run '^$' -bench 'BenchmarkFleetParallelism|BenchmarkChaosCampaign|BenchmarkCovFuzz' \
    -benchmem -benchtime "$benchtime" | tee "$raw"

# Benchmark lines look like:
#   BenchmarkFleetParallelism/workers=4-8  3  123456 ns/op  45.6 simsec/s  789 B/op  12 allocs/op
# Units follow their values, so scan field pairs instead of positions.
awk -v sha="$git_sha" -v gmp="$gomaxprocs" -v ncpu="$num_cpu" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    ns = bop = allocs = rate = "null"
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")      ns = $i
        if ($(i+1) == "B/op")       bop = $i
        if ($(i+1) == "allocs/op")  allocs = $i
        if ($(i+1) == "simsec/s")   rate = $i
    }
    # One entry per line: verify.sh'"'"'s allocs ratchet greps name and
    # allocs_per_op off the same line.
    line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s, \"sim_rate\": %s, \"git_sha\": \"%s\", \"gomaxprocs\": %s, \"num_cpu\": %s}", name, ns, bop, allocs, rate, sha, gmp, ncpu)
    lines = (lines == "" ? line : lines ",\n" line)
}
END { printf "[\n%s\n]\n", lines }
' "$raw" > "$out"

echo "bench: wrote $out"
if [ -n "$keep_raw" ]; then
    cp "$raw" "$keep_raw"
    echo "bench: wrote $keep_raw"
fi
if [ -n "$baseline" ]; then
    cp "$raw" scripts/bench_baseline.txt
    echo "bench: refreshed scripts/bench_baseline.txt"
fi
