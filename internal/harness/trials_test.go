package harness

import (
	"testing"
	"time"
)

func TestRunTrialsStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial campaign; run without -short")
	}
	// Three 4-hour trials: enough budget that every D1 bug is reached in
	// each trial, so the discovery must be seed-stable.
	sum, err := RunTrials("D1", 3, 4*time.Hour, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 3 || len(sum.PerTrial) != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	for i, n := range sum.PerTrial {
		if n != 14 {
			t.Errorf("trial %d found %d, want 14", i+1, n)
		}
	}
	if !sum.Stable || sum.Union != 14 {
		t.Fatalf("trials not stable: %+v", sum)
	}
}

func TestRunTrialsRejectsBadCount(t *testing.T) {
	if _, err := RunTrials("D1", 0, time.Hour, 1); err == nil {
		t.Fatal("accepted zero trials")
	}
}
