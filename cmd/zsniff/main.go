// Command zsniff demonstrates the passive scanner: it assembles a testbed,
// lets the smart home generate its normal chatter, and prints what an
// external attacker's dongle can learn from the air — including from an
// S2-encrypted network, whose MAC headers remain readable.
//
// Usage:
//
//	zsniff -target D6 -window 2m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"zcover"
	"zcover/internal/cmdclass"
	"zcover/internal/decode"
	"zcover/internal/protocol"
	"zcover/internal/report"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "zsniff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("zsniff", flag.ContinueOnError)
	target := fs.String("target", "D6", "testbed to observe (D1..D7)")
	window := fs.Duration("window", 2*time.Minute, "sniffing window (simulated)")
	seed := fs.Int64("seed", 1, "testbed seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tb, err := zcover.NewTestbed(*target, *seed)
	if err != nil {
		return err
	}
	d := dongle.New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(int(window.Seconds()/10), 10*time.Second)

	fmt.Printf("zsniff: observing the %s network for %s (simulated)...\n\n", *target, *window)
	caps := d.Observe(*window)

	reg := cmdclass.MustLoad()
	tbl := &report.Table{
		Title:   fmt.Sprintf("Captured frames (%d)", len(caps)),
		Headers: []string{"Time", "Home", "Src", "Dst", "Len", "Dissection"},
	}
	shown := 0
	for _, c := range caps {
		f, err := protocol.Decode(c.Raw, protocol.ChecksumCS8)
		if err != nil {
			continue
		}
		if f.IsAck() {
			continue
		}
		tbl.AddRow(c.At.Format("15:04:05.000"), f.Home.String(),
			f.Src.String(), f.Dst.String(), fmt.Sprintf("%d", len(c.Raw)),
			decode.Payload(reg, f.Payload).String())
		if shown++; shown >= 20 {
			tbl.Notes = append(tbl.Notes, "... (truncated)")
			break
		}
	}
	fmt.Println(tbl.String())

	// Replay the captures through the passive scanner's analysis.
	d2 := dongle.New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(6, 10*time.Second)
	nets := scan.Passive(d2, time.Minute+10*time.Second)
	res := &report.Table{
		Title:   "Passive scanning result (paper Fig. 4 pipeline)",
		Headers: []string{"Home ID", "Nodes", "Inferred controller", "Frames"},
	}
	for _, n := range nets {
		res.AddRow(n.Home.String(), fmt.Sprintf("%v", n.Nodes), n.Controller.String(),
			fmt.Sprintf("%d", n.Frames))
	}
	fmt.Println(res.String())
	return nil
}
