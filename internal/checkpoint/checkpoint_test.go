package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testManifest() Manifest {
	return Manifest{
		Campaign: "table6", SpecHash: "0123456789abcdef",
		TotalJobs: 3, ShardIndex: 1, ShardCount: 1,
	}
}

func record(i int, payload string) JobRecord {
	return JobRecord{
		Index: i, Label: fmt.Sprintf("job-%d", i), Attempts: 1,
		Body: json.RawMessage(payload),
	}
}

// writeJournal creates a journal with n job records and closes it.
func writeJournal(t *testing.T, path string, n int) {
	t.Helper()
	j, err := Create(path, testManifest())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := j.Append(record(i, fmt.Sprintf(`{"value":%d}`, i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	writeJournal(t, path, 3)

	rep, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TailTruncated {
		t.Errorf("clean journal reported truncated tail: %s", rep.TailError)
	}
	if rep.Manifest.Campaign != "table6" || rep.Manifest.Version != Version {
		t.Errorf("manifest = %+v", rep.Manifest)
	}
	if len(rep.Jobs) != 3 {
		t.Fatalf("replayed %d jobs, want 3", len(rep.Jobs))
	}
	byIdx, err := rep.ByIndex()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec, ok := byIdx[i]
		if !ok {
			t.Fatalf("job %d missing from replay", i)
		}
		if want := fmt.Sprintf(`{"value":%d}`, i); string(rec.Body) != want {
			t.Errorf("job %d body = %s, want %s", i, rec.Body, want)
		}
	}
}

func TestCreateRefusesExistingJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	writeJournal(t, path, 1)
	if _, err := Create(path, testManifest()); err == nil {
		t.Fatal("Create silently overwrote an existing journal")
	}
}

// TestRecoverTruncatedTail is the crash-mid-write case: a partial final
// line must be detected, reported, truncated away, and appending must
// continue cleanly afterwards.
func TestRecoverTruncatedTail(t *testing.T) {
	for _, cut := range []string{
		`{"v":1,"type":"job","seq":3,"bo`,                                   // torn JSON
		`{"v":1,"type":"job","seq":3,"body":{"value":99},"crc":"00000000"}`, // bad CRC
	} {
		path := filepath.Join(t.TempDir(), "journal.jsonl")
		writeJournal(t, path, 2)
		clean, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(append([]byte{}, clean...), []byte(cut+"\n")...), 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := Load(path)
		if err != nil {
			t.Fatalf("tail %q: %v", cut[:20], err)
		}
		if !rep.TailTruncated || rep.TailError == "" {
			t.Fatalf("tail %q: damage not reported: %+v", cut[:20], rep)
		}
		if len(rep.Jobs) != 2 {
			t.Fatalf("tail %q: replayed %d jobs, want 2", cut[:20], len(rep.Jobs))
		}

		j, rep2, err := Recover(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep2.Jobs) != 2 {
			t.Fatalf("recover replayed %d jobs, want 2", len(rep2.Jobs))
		}
		if err := j.Append(record(2, `{"value":2}`)); err != nil {
			t.Fatal(err)
		}
		j.Close()

		// The recovered-and-extended journal must now read back clean.
		rep3, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep3.TailTruncated || len(rep3.Jobs) != 3 {
			t.Fatalf("after recovery: truncated=%v jobs=%d, want clean 3", rep3.TailTruncated, len(rep3.Jobs))
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(got), `"crc":"00000000"`) || strings.Contains(string(got), `"bo`+"\n") {
			t.Error("damaged tail survived recovery")
		}
	}
}

// TestMidJournalCorruptionFails: damage that is not the tail is real
// corruption and must fail loudly, never be replayed around.
func TestMidJournalCorruptionFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	writeJournal(t, path, 3)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	// Flip a byte inside the second record's body.
	lines[1] = strings.Replace(lines[1], `"value":0`, `"value":7`, 1)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("mid-journal corruption silently replayed")
	} else if !strings.Contains(err.Error(), "corrupted mid-journal") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, _, err := Recover(path); err == nil {
		t.Fatal("Recover accepted a mid-journal corruption")
	}
}

func TestLoadRejectsEmptyAndHeaderless(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Error("empty journal accepted")
	}
	if _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing journal accepted")
	}
}

func TestByIndexDuplicateHandling(t *testing.T) {
	rep := &Replay{Jobs: []JobRecord{
		record(0, `{"a":1}`), record(0, `{"a":1}`), record(1, `{"b":2}`),
	}}
	byIdx, err := rep.ByIndex()
	if err != nil {
		t.Fatalf("identical duplicate rejected: %v", err)
	}
	if len(byIdx) != 2 {
		t.Errorf("got %d indices, want 2", len(byIdx))
	}
	rep.Jobs = append(rep.Jobs, record(1, `{"b":999}`))
	if _, err := rep.ByIndex(); err == nil {
		t.Error("conflicting duplicate accepted")
	}
}

func TestSpecHashStability(t *testing.T) {
	type spec struct {
		Campaign string
		Seeds    []int64
	}
	a, err := SpecHash(spec{"table5", []int64{41, 42}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpecHash(spec{"table5", []int64{41, 42}})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same spec hashed differently: %s vs %s", a, b)
	}
	c, _ := SpecHash(spec{"table5", []int64{41, 43}})
	if a == c {
		t.Error("different specs collided (seed change undetected)")
	}
	if len(a) != 16 {
		t.Errorf("hash %q is not 16 hex digits", a)
	}
}

func TestJournalPathAndList(t *testing.T) {
	dir := t.TempDir()
	p1 := JournalPath(dir, "trials/D3", 2, 4)
	if filepath.Base(p1) != "journal-trials_D3-2of4.jsonl" {
		t.Errorf("path = %s", p1)
	}
	if p := JournalPath(dir, "table5", 0, 0); filepath.Base(p) != "journal-table5-1of1.jsonl" {
		t.Errorf("unsharded path = %s", p)
	}
	for i := 1; i <= 3; i++ {
		writeJournal(t, JournalPath(dir, "table5", i, 3), 1)
	}
	writeJournal(t, JournalPath(dir, "table6", 1, 1), 1)
	paths, err := ListJournals(dir, "table5")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("listed %d table5 journals, want 3: %v", len(paths), paths)
	}
	for i, p := range paths {
		if want := fmt.Sprintf("journal-table5-%dof3.jsonl", i+1); filepath.Base(p) != want {
			t.Errorf("paths[%d] = %s, want %s", i, filepath.Base(p), want)
		}
	}
}

func TestOutOfSequenceRecordFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	writeJournal(t, path, 1)
	// Splice a valid-CRC record with the wrong seq (a record from another
	// journal cat'ed on): CRC passes, sequence check must catch it.
	body := []byte(`{"index":9,"label":"alien","body":{}}`)
	env := envelope{V: Version, Type: "job", Seq: 7, Body: body, CRC: recordCRC("job", 7, body)}
	line, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(append(line, '\n'))
	// A second valid record after it so the splice is not mistaken for a
	// crash tail.
	body2 := []byte(`{"index":2,"label":"tail","body":{}}`)
	env2 := envelope{V: Version, Type: "job", Seq: 8, Body: body2, CRC: recordCRC("job", 8, body2)}
	line2, _ := json.Marshal(env2)
	f.Write(append(line2, '\n'))
	f.Close()

	if _, err := Load(path); err == nil {
		t.Fatal("out-of-sequence splice accepted")
	}
}
