package harness

import (
	"testing"
	"time"

	"zcover/internal/testbed"
)

// BenchmarkCovFuzz measures one coverage-guided campaign end to end —
// fingerprint, discovery, then the CovFuzz engine with its behavioral
// coverage map and in-memory corpus — against D1 at the one-hour budget.
// Its allocs/op figure gates the new hot path (coverage hooks, corpus
// admission, variant derivation) via the verify.sh -bench ratchet.
func BenchmarkCovFuzz(b *testing.B) {
	const budget = time.Hour
	var simSeconds float64
	for i := 0; i < b.N; i++ {
		tb, err := testbed.New("D1", 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunCovFuzz(tb, budget, 1)
		if err != nil {
			b.Fatal(err)
		}
		simSeconds = res.Elapsed.Seconds()
	}
	b.ReportMetric(simSeconds*float64(b.N)/b.Elapsed().Seconds(), "simsec/s")
}
