package device

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/security"
)

// LockMode values of DOOR_LOCK_OPERATION (class 0x62).
const (
	// LockModeUnsecured is "unlocked".
	LockModeUnsecured byte = 0x00
	// LockModeSecured is "locked".
	LockModeSecured byte = 0xFF
)

// DoorLock emulates testbed device D8: a Schlage BE469ZP-style smart door
// lock paired with S2 security. Operation commands (lock/unlock) are only
// accepted inside a valid S2 encapsulation; everything else a remote sender
// tries is ignored, as on the real device.
type DoorLock struct {
	node     *Node
	identity Identity
	hub      protocol.NodeID

	session *security.Session
	mode    byte
	battery byte

	opsApplied int
	rejected   int
}

// NewDoorLock attaches a door lock to the testbed. The S2 session is
// installed later by pairing (see PairS2).
func NewDoorLock(cfg Config, hub protocol.NodeID) *DoorLock {
	d := &DoorLock{
		hub:     hub,
		mode:    LockModeSecured,
		battery: 0x5F, // 95%
		identity: Identity{
			Basic:      BasicTypeSlave,
			Generic:    GenericTypeEntryControl,
			Specific:   0x03, // secure keypad door lock
			Capability: CapRouting,
			Security:   SecS2,
			Classes: []cmdclass.ClassID{
				cmdclass.ClassBasic,
				cmdclass.ClassDoorLock,
				cmdclass.ClassUserCode,
				cmdclass.ClassBattery,
				cmdclass.ClassWakeUp,
				cmdclass.ClassManufacturerSpec,
				cmdclass.ClassVersion,
				cmdclass.ClassSecurity0,
				cmdclass.ClassSecurity2,
			},
		},
	}
	d.node = NewNode(cfg)
	d.node.Handler = d.handle
	return d
}

// Node exposes the underlying node (for tests and the pairing flow).
func (d *DoorLock) Node() *Node { return d.node }

// Join puts the lock in learn mode and announces it to an including
// controller (the user pressing the inclusion button).
func (d *DoorLock) Join() error { return JoinNetwork(d.node, d.identity) }

// Identity reports the advertised NIF identity.
func (d *DoorLock) Identity() Identity { return d.identity }

// InstallSession installs the S2 session established during pairing. The
// lock is the "B" endpoint of the session (controller is "A").
func (d *DoorLock) InstallSession(s *security.Session) { d.session = s }

// Session returns the installed S2 session (nil before pairing).
func (d *DoorLock) Session() *security.Session { return d.session }

// Mode reports the current lock state.
func (d *DoorLock) Mode() byte { return d.mode }

// Stats reports secured operations applied and rejected attempts.
func (d *DoorLock) Stats() (applied, rejected int) { return d.opsApplied, d.rejected }

// ReportStatus proactively sends an S2-protected operation report to the
// hub — the periodic event traffic a passive sniffer feeds on.
func (d *DoorLock) ReportStatus() error {
	plain := []byte{byte(cmdclass.ClassDoorLock), byte(cmdclass.CmdDoorLockOperationReport), d.mode, 0x00, 0x00, 0xFE, 0xFE}
	if d.session == nil {
		return d.node.Send(d.hub, plain)
	}
	encap, err := d.session.Encapsulate(security.FlowBtoA, d.aad(d.node.ID(), d.hub), plain)
	if err != nil {
		return err
	}
	return d.node.Send(d.hub, encap)
}

// aad binds the MAC header into S2 tags, matching the controller's side.
func (d *DoorLock) aad(src, dst protocol.NodeID) []byte {
	h := d.node.Home()
	return []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), byte(src), byte(dst)}
}

// handle is the lock's application dispatch.
func (d *DoorLock) handle(f *protocol.Frame) {
	if HandleInclusion(d.node, f) {
		return
	}
	payload := f.Payload
	if security.IsEncapsulation(payload) && d.session != nil {
		plain, err := d.session.Decapsulate(security.FlowAtoB, d.aad(f.Src, f.Dst), payload)
		if err != nil {
			d.rejected++
			return
		}
		d.handleSecured(f.Src, plain)
		return
	}
	if target, ok := IsNIFRequest(payload); ok && (target == 0 || target == d.node.ID()) {
		_ = d.node.Send(f.Src, d.identity.NIFPayload())
		return
	}
	if len(payload) >= 2 && payload[0] == byte(cmdclass.ClassBattery) && payload[1] == 0x02 {
		_ = d.node.Send(f.Src, []byte{byte(cmdclass.ClassBattery), 0x03, d.battery})
		return
	}
	// Anything security-sensitive arriving in clear text is rejected: the
	// lock itself implements the spec correctly — the controller is the
	// vulnerable party in this paper.
	if len(payload) >= 1 && cmdclass.ClassID(payload[0]) == cmdclass.ClassDoorLock {
		d.rejected++
	}
}

// handleSecured processes a decapsulated S2 payload.
func (d *DoorLock) handleSecured(src protocol.NodeID, plain []byte) {
	if len(plain) < 2 || cmdclass.ClassID(plain[0]) != cmdclass.ClassDoorLock {
		return
	}
	switch cmdclass.CommandID(plain[1]) {
	case cmdclass.CmdDoorLockOperationSet:
		if len(plain) >= 3 {
			d.mode = plain[2]
			d.opsApplied++
		}
	case cmdclass.CmdDoorLockOperationGet:
		reply := []byte{byte(cmdclass.ClassDoorLock), byte(cmdclass.CmdDoorLockOperationReport), d.mode, 0x00, 0x00, 0xFE, 0xFE}
		encap, err := d.session.Encapsulate(security.FlowBtoA, d.aad(d.node.ID(), src), reply)
		if err != nil {
			return
		}
		_ = d.node.Send(src, encap)
	}
}
