// Package vtime provides the simulated-time substrate used throughout the
// ZCover reproduction.
//
// The paper's evaluation runs wall-clock campaigns (five 24-hour fuzzing
// trials per controller). Reproducing those campaigns against an emulated
// testbed would be pointlessly slow and non-deterministic on real time, so
// every component in this repository — the radio medium, the device models,
// the fuzzing engine, the liveness monitor — takes time from a Clock
// interface instead of the time package. Production-style code paths use
// SystemClock; simulations and tests use SimClock, which only advances when
// told to (directly or through its event queue).
//
// # Concurrency and pooling
//
// SimClock is internally locked and safe for concurrent use, but the
// simulations in this repository deliberately drive each clock from a
// single goroutine — determinism comes from the event queue's total order,
// which concurrent Advance calls would destroy. Parallel fleet campaigns
// therefore hold one private SimClock each and never share one. Event
// scheduling is the simulator's busiest allocation site, so fired event
// structs are recycled on a small per-clock freelist (guarded by the same
// mutex, bounded so bursts cannot pin memory); callbacks passed to
// Schedule must not assume identity of the event that carried them.
package vtime

import "time"

// Clock abstracts the passage of time. All timestamps are absolute
// time.Time values so durations and deadlines compose with the standard
// library.
type Clock interface {
	// Now reports the current instant on this clock.
	Now() time.Time
	// Sleep advances past d. On a SimClock this advances simulated time
	// immediately; on SystemClock it blocks.
	Sleep(d time.Duration)
}

// SystemClock is a Clock backed by the real time package.
type SystemClock struct{}

var _ Clock = SystemClock{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (SystemClock) Sleep(d time.Duration) { time.Sleep(d) }
