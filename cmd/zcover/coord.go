package main

// The distributed-sweep subcommands:
//
//	zcover coordinate -campaign table5 -fuzz 2h -addr :8937 -checkpoint-dir ckpt
//	zcover work -coordinator http://host:8937 -checkpoint-dir w1
//
// The coordinator turns a campaign's job list into leased work units,
// journals every uploaded outcome crash-safely, and — once all jobs are
// in — renders the same table and bug log a single-machine run would
// have produced, byte for byte. Workers are thin lease loops around the
// fleet job executor; any number may join or die mid-sweep.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zcover/internal/coord"
	"zcover/internal/fleet"
	"zcover/internal/harness"
	"zcover/internal/obs"
	"zcover/internal/telemetry"
)

// runCoordinate serves one campaign until every job is journaled, then
// renders the table and bug log.
func runCoordinate(args []string) error {
	fs := flag.NewFlagSet("zcover coordinate", flag.ContinueOnError)
	campaign := fs.String("campaign", "table5", "campaign to coordinate: table5 or smoke")
	budget := fs.Duration("fuzz", 0, "fuzzing budget per campaign job (0 = campaign default; table5: 24h)")
	addr := fs.String("addr", "localhost:8937", "address to serve the lease protocol on (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (lets scripts discover an ephemeral port)")
	ckptDir := fs.String("checkpoint-dir", "", "journal uploaded outcomes into this directory (required; the journal is the coordinator's durable state)")
	resume := fs.Bool("resume", false, "recover an existing journal in -checkpoint-dir instead of refusing to overwrite it")
	leaseTTL := fs.Duration("lease-ttl", coord.DefaultLeaseTTL, "lease deadline; a worker silent this long has its job re-issued")
	tableOut := fs.String("table-out", "", "also write the rendered table to this file (exactly the table bytes; CI diffs it against the golden)")
	buglogOut := fs.String("buglog-out", "", "write the merged findings to this file as bug-log JSON lines")
	obsAddr := fs.String("obs-addr", "", "serve the observability endpoints plus /coord status on this address")
	linger := fs.Duration("linger", 3*time.Second, "keep serving this long after completion so late workers hear Done instead of connection-refused")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ckptDir == "" {
		return fmt.Errorf("coordinate needs -checkpoint-dir — the journal is what survives a coordinator restart")
	}
	jobs, err := harness.CampaignJobs(*campaign, *budget)
	if err != nil {
		return err
	}
	hash, err := harness.CampaignSpecHash(*campaign, jobs)
	if err != nil {
		return err
	}
	co, err := coord.New(coord.Config{
		Campaign: *campaign, Jobs: jobs, SpecHash: hash,
		Dir: *ckptDir, Resume: *resume, LeaseTTL: *leaseTTL,
	})
	if err != nil {
		return err
	}
	defer co.Close()

	// Bind synchronously so a bad address fails before any worker can
	// connect, then publish the resolved address for scripts.
	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("coordinate: listen %s: %w", *addr, err)
	}
	srv := &http.Server{Handler: co.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(lis)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(lis.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	if *obsAddr != "" {
		osrv, err := obs.NewServer(*obsAddr, telemetry.Default(), nil,
			obs.Route{Path: "/coord", Handler: co.StatusHandler()})
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			osrv.Close(ctx)
		}()
		fmt.Fprintf(os.Stderr, "coordinate: observability on http://%s\n", osrv.Addr())
	}
	st := co.Status()
	fmt.Printf("Coordinating %s — %d jobs (spec %s, %d already journaled) on http://%s\n",
		*campaign, st.TotalJobs, hash, st.Done, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := co.Wait(ctx); err != nil {
		return err
	}
	recs, err := co.Records()
	if err != nil {
		return err
	}
	outs, err := harness.DecodeRecords(recs, len(jobs))
	if err != nil {
		return err
	}
	if *buglogOut != "" {
		bf, err := os.Create(*buglogOut)
		if err != nil {
			return err
		}
		defer bf.Close()
		harness.SetBugLog(bf)
		defer harness.SetBugLog(nil)
	}
	tbl, err := harness.RenderCampaign(*campaign, outs)
	if err != nil {
		return err
	}
	final := co.Status()
	fmt.Printf("Campaign complete — %d jobs from %d workers (%d leases expired, %d duplicate uploads)\n\n",
		final.Done, len(final.Workers), final.Expired, final.Duplicates)
	fmt.Println(tbl.String())
	if *tableOut != "" {
		if err := os.WriteFile(*tableOut, []byte(tbl.String()), 0o644); err != nil {
			return err
		}
	}
	// Keep answering Done for a beat: workers that leased nothing (or are
	// mid-backoff) exit cleanly instead of retrying a vanished server.
	if *linger > 0 {
		select {
		case <-ctx.Done():
		case <-time.After(*linger):
		}
	}
	return nil
}

// runWork drains leases from a coordinator until its campaign is done.
func runWork(args []string) error {
	fs := flag.NewFlagSet("zcover work", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8937 (required)")
	id := fs.String("id", "", "worker ID (default hostname-pid)")
	ckptDir := fs.String("checkpoint-dir", "", "journal completed jobs locally so a restarted worker re-uploads instead of re-running")
	resume := fs.Bool("resume", false, "continue an existing local journal in -checkpoint-dir")
	retryBudget := fs.Duration("retry-budget", time.Minute, "give up after the coordinator has been unreachable this long")
	verbose := fs.Bool("v", false, "log every lease and upload to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator == "" {
		return fmt.Errorf("work needs -coordinator URL")
	}
	if *id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cfg := coord.WorkerConfig{
		Coordinator: *coordinator, ID: *id,
		Dir: *ckptDir, Resume: *resume, RetryBudget: *retryBudget,
		Runner: harness.LeaseRunner(fleet.Config{Telemetry: telemetry.Default()}),
	}
	if *verbose {
		cfg.Log = os.Stderr
	}
	stats, err := coord.RunWorker(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("worker %s done — %d leased, %d ran, %d from local cache, %d uploaded (%d duplicates, %d retries)\n",
		*id, stats.Leased, stats.Ran, stats.Cached, stats.Uploaded, stats.Duplicates, stats.Retries)
	return nil
}
