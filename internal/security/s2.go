package security

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	"io"

	"zcover/internal/telemetry"
)

// Process-wide S2 transport metrics (the S0 counterparts live in s0.go).
var (
	mS2Encrypt  = telemetry.Default().Counter("security_s2_encrypt_total")
	mS2Decrypt  = telemetry.Default().Counter("security_s2_decrypt_total")
	mS2AuthFail = telemetry.Default().Counter("security_s2_auth_fail_total")
	mS2Desync   = telemetry.Default().Counter("security_s2_desync_total")
	mS2Resync   = telemetry.Default().Counter("security_s2_resync_total")
)

// S2 key-exchange and encapsulation. The flow mirrors the Security 2
// specification: the two nodes agree on a shared secret with Curve25519
// ECDH, derive a temporary key with CKDF (CMAC-based), transfer the
// permanent network key under it, and then protect application traffic
// with AES-128-CCM using SPAN-synchronised nonces.

// S2 key-derivation constants (CKDF personalisation strings).
var (
	ckdfTempExtract = []byte{0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33, 0x33}
	ckdfCCMLabel    = []byte("CCM-KEY-S2-ZWAVE")
	ckdfNonceLabel  = []byte("NONCE-PRK-S2-ZWV")
)

// EntropySize is the size of each SPAN entropy input in bytes.
const EntropySize = 16

// Keypair is an ECDH key pair used during S2 bootstrapping (KEX).
type Keypair struct {
	private *ecdh.PrivateKey
}

// GenerateKeypair creates a Curve25519 key pair from the given entropy
// source (crypto/rand.Reader in production, a seeded reader in tests).
func GenerateKeypair(rng io.Reader) (*Keypair, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdh.X25519().GenerateKey(rng)
	if err != nil {
		return nil, fmt.Errorf("security: generating S2 keypair: %w", err)
	}
	return &Keypair{private: priv}, nil
}

// Public returns the 32-byte public key sent in S2 PUBLIC_KEY_REPORT.
func (k *Keypair) Public() []byte { return k.private.PublicKey().Bytes() }

// SharedSecret runs X25519 against a peer's public key.
func (k *Keypair) SharedSecret(peerPublic []byte) ([]byte, error) {
	pub, err := ecdh.X25519().NewPublicKey(peerPublic)
	if err != nil {
		return nil, fmt.Errorf("security: bad S2 peer public key: %w", err)
	}
	secret, err := k.private.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("security: S2 ECDH: %w", err)
	}
	return secret, nil
}

// DeriveTempKey reduces an ECDH shared secret to the 16-byte temporary key
// that protects the network-key transfer (CKDF-TempExtract).
func DeriveTempKey(sharedSecret []byte) ([]byte, error) {
	if len(sharedSecret) != 32 {
		return nil, fmt.Errorf("security: S2 shared secret must be 32 bytes, got %d", len(sharedSecret))
	}
	prk := mustCMAC(ckdfTempExtract, sharedSecret)
	return prk, nil
}

// NewNetworkKey draws a random 16-byte S2 network key.
func NewNetworkKey(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rng, key); err != nil {
		return nil, fmt.Errorf("security: drawing network key: %w", err)
	}
	return key, nil
}

// Flow direction of an S2 message within a session.
type Flow int

// Flows. Enum starts at 1.
const (
	// FlowAtoB is traffic from the session's A endpoint to B.
	FlowAtoB Flow = iota + 1
	// FlowBtoA is traffic from B to A.
	FlowBtoA
)

// S2 session errors.
var (
	// ErrS2Auth indicates decapsulation failed authentication.
	ErrS2Auth = errors.New("security: S2 decapsulation failed")
	// ErrS2Desync indicates the SPAN sequence numbers no longer line up
	// and the receiver must re-synchronise (SOS nonce report).
	ErrS2Desync = errors.New("security: S2 SPAN out of sync")
)

// Session is one endpoint's view of an established S2 security session.
// Both peers construct a Session from the same network key and the same
// pair of entropy inputs; per-flow counters then stay in lockstep as long
// as traffic is delivered reliably (retransmission is the MAC layer's job).
//
// Session is not safe for concurrent use; the simulation is single-threaded.
type Session struct {
	ccmKey []byte
	// aead and meiCtx are the session's cached crypto contexts: the CCM
	// AEAD under ccmKey and the CMAC context of the mixed entropy input.
	// Both are immutable and resolved once at NewSession, so per-message
	// encapsulation pays no key expansion.
	aead     *ccm
	meiCtx   *keyContext
	mei      []byte // mixed entropy input: the SPAN personalisation
	ctr      map[Flow]uint32
	lastSeq  map[Flow]byte
	haveSeq  map[Flow]bool
	nextSeqA byte // sender sequence counter for FlowAtoB
	nextSeqB byte
	// recoveryWindow, when positive, lets Decapsulate search this many
	// SPAN counters ahead after an authentication failure — the local
	// equivalent of the SOS nonce-report exchange a receiver performs when
	// frame loss has desynchronised the nonce stream.
	recoveryWindow int
}

// SetRecoveryWindow enables SPAN desync recovery: after an authentication
// failure, Decapsulate retries up to window counters ahead of the expected
// one and, on success, fast-forwards the flow to resynchronise. Zero (the
// default) keeps the strict single-nonce behaviour.
func (s *Session) SetRecoveryWindow(window int) { s.recoveryWindow = window }

// NewSession derives a session from the 16-byte network key and the two
// SPAN entropy inputs (sender EI from the encapsulation extension, receiver
// EI from the NONCE_REPORT). Both endpoints must pass identical arguments.
func NewSession(networkKey, entropyA, entropyB []byte) (*Session, error) {
	if len(networkKey) != KeySize {
		return nil, fmt.Errorf("security: network key must be %d bytes, got %d", KeySize, len(networkKey))
	}
	if len(entropyA) != EntropySize || len(entropyB) != EntropySize {
		return nil, fmt.Errorf("security: SPAN entropy inputs must be %d bytes", EntropySize)
	}
	ccmKey := mustCMAC(networkKey, ckdfCCMLabel)
	noncePRK := mustCMAC(networkKey, ckdfNonceLabel)
	mixed := make([]byte, 0, 2*EntropySize)
	mixed = append(mixed, entropyA...)
	mixed = append(mixed, entropyB...)
	mei := mustCMAC(noncePRK, mixed)
	return &Session{
		ccmKey:  ccmKey,
		aead:    mustContextFor(ccmKey).aead,
		meiCtx:  mustContextFor(mei),
		mei:     mei,
		ctr:     map[Flow]uint32{FlowAtoB: 0, FlowBtoA: 0},
		lastSeq: map[Flow]byte{},
		haveSeq: map[Flow]bool{},
	}, nil
}

// nonceFor derives the 13-byte CCM nonce for message number n of a flow
// into the caller's buffer (no allocation on the per-message path).
func (s *Session) nonceFor(nonce *[CCMNonceSize]byte, flow Flow, n uint32) {
	msg := [5]byte{byte(flow), byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
	sc := getScratch()
	cmacTo(&sc.ks, s.meiCtx, sc, msg[:]) // ks doubles as the CMAC output here
	copy(nonce[:], sc.ks[:CCMNonceSize])
	putScratch(sc)
}

// appendAAD assembles the full CCM AAD (caller AAD plus sequence number and
// extension flags) into the caller's scratch buffer. S2 AAD is MAC-header
// sized, so the scratch never overflows in practice; an oversized AAD falls
// back to an allocation.
func appendAAD(scratch *[2 * BlockSize]byte, aad []byte, seq, extFlags byte) []byte {
	var full []byte
	if len(aad)+2 <= len(scratch) {
		full = scratch[:0]
	} else {
		full = make([]byte, 0, len(aad)+2)
	}
	full = append(full, aad...)
	return append(full, seq, extFlags)
}

// Encapsulate protects an application payload flowing in the given
// direction. It returns the S2 MESSAGE_ENCAPSULATION application payload:
// [COMMAND_CLASS_SECURITY_2, MESSAGE_ENCAPSULATION, seq, extFlags, ct||tag].
// aad binds the MAC-header fields (home ID, src, dst) into the tag.
func (s *Session) Encapsulate(flow Flow, aad, plaintext []byte) ([]byte, error) {
	seq := s.nextSeq(flow)
	n := s.ctr[flow]
	s.ctr[flow] = n + 1

	var nonce [CCMNonceSize]byte
	s.nonceFor(&nonce, flow, n)
	var aadScratch [2 * BlockSize]byte
	fullAAD := appendAAD(&aadScratch, aad, seq, 0x00)

	// The returned payload is the only allocation: the AEAD seals straight
	// into its spare capacity.
	out := make([]byte, 0, 4+len(plaintext)+CCMTagSize)
	out = append(out, 0x9F, 0x03, seq, 0x00)
	out = s.aead.Seal(out, nonce[:], plaintext, fullAAD)
	mS2Encrypt.Inc()
	return out, nil
}

// Decapsulate reverses Encapsulate for a payload received on the given
// flow. It enforces SPAN ordering: a replayed or reordered sequence number
// yields ErrS2Desync; a forged or corrupted ciphertext yields ErrS2Auth.
func (s *Session) Decapsulate(flow Flow, aad, payload []byte) ([]byte, error) {
	if len(payload) < 4+CCMTagSize {
		mS2AuthFail.Inc()
		return nil, fmt.Errorf("%w: payload too short (%d bytes)", ErrS2Auth, len(payload))
	}
	if payload[0] != 0x9F || payload[1] != 0x03 {
		mS2AuthFail.Inc()
		return nil, fmt.Errorf("%w: not an S2 message encapsulation", ErrS2Auth)
	}
	seq, extFlags := payload[2], payload[3]
	if s.haveSeq[flow] && seq == s.lastSeq[flow] {
		mS2Desync.Inc()
		return nil, fmt.Errorf("%w: duplicate sequence %d", ErrS2Desync, seq)
	}

	n := s.ctr[flow]
	var nonce [CCMNonceSize]byte
	s.nonceFor(&nonce, flow, n)
	var aadScratch [2 * BlockSize]byte
	fullAAD := appendAAD(&aadScratch, aad, seq, extFlags)
	pt, err := s.aead.Open(nil, nonce[:], payload[4:], fullAAD)
	if err != nil {
		// A lost frame leaves the sender's counter ahead of ours, so every
		// later frame fails against the expected nonce. With a recovery
		// window, probe forward counters; a hit means the message is
		// genuine and the flow fast-forwards past the gap.
		for skip := 1; skip <= s.recoveryWindow; skip++ {
			s.nonceFor(&nonce, flow, n+uint32(skip))
			if pt, err2 := s.aead.Open(nil, nonce[:], payload[4:], fullAAD); err2 == nil {
				s.ctr[flow] = n + uint32(skip) + 1
				s.lastSeq[flow] = seq
				s.haveSeq[flow] = true
				mS2Resync.Inc()
				mS2Decrypt.Inc()
				return pt, nil
			}
		}
		mS2AuthFail.Inc()
		return nil, fmt.Errorf("%w: %v", ErrS2Auth, err)
	}
	s.ctr[flow] = n + 1
	s.lastSeq[flow] = seq
	s.haveSeq[flow] = true
	mS2Decrypt.Inc()
	return pt, nil
}

// Resync resets a flow's SPAN counter to the peer's announced value after
// an SOS nonce exchange.
func (s *Session) Resync(flow Flow, counter uint32) {
	s.ctr[flow] = counter
	s.haveSeq[flow] = false
}

// Counter exposes the current SPAN counter of a flow (used by SOS resync).
func (s *Session) Counter(flow Flow) uint32 { return s.ctr[flow] }

// nextSeq hands out the per-flow sender sequence byte.
func (s *Session) nextSeq(flow Flow) byte {
	if flow == FlowAtoB {
		s.nextSeqA++
		return s.nextSeqA
	}
	s.nextSeqB++
	return s.nextSeqB
}

// IsEncapsulation reports whether an application payload is an S2 message
// encapsulation (what a sniffer can tell without keys).
func IsEncapsulation(payload []byte) bool {
	return len(payload) >= 2 && payload[0] == 0x9F && payload[1] == 0x03
}
