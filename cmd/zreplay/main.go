// Command zreplay works with ZCover bug logs: it can run a campaign and
// save its findings as a JSON-lines log, replay a saved log as
// single-packet proof-of-concept exploits against fresh devices, replay
// the built-in catalogue of the paper's fifteen PoCs, or summarise a span
// trace written by -trace-out.
//
// Usage:
//
//	zreplay -hunt -target D1 -duration 1h -out bugs.jsonl   # fuzz + save
//	zreplay -hunt -flight-recorder 16 -out bugs.jsonl        # + frame traces
//	zreplay -log bugs.jsonl                                  # replay a log
//	zreplay -catalog                                         # replay Table III PoCs
//	zreplay -trace spans.jsonl                               # summarise a trace
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"time"

	"zcover"
	"zcover/internal/cmdclass"
	"zcover/internal/decode"
	"zcover/internal/harness"
	"zcover/internal/telemetry"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/minimize"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "zreplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("zreplay", flag.ContinueOnError)
	hunt := fs.Bool("hunt", false, "run a fuzzing campaign and save the bug log")
	target := fs.String("target", "D1", "testbed controller (D1..D7)")
	duration := fs.Duration("duration", time.Hour, "campaign budget (with -hunt)")
	out := fs.String("out", "bugs.jsonl", "bug log path (with -hunt)")
	logPath := fs.String("log", "", "bug log to replay")
	catalog := fs.Bool("catalog", false, "replay the paper's Table III PoC catalogue")
	minimise := fs.Bool("minimize", false, "minimise each trigger payload before replaying")
	seed := fs.Int64("seed", 1, "deterministic seed")
	flightDepth := fs.Int("flight-recorder", 0, "with -hunt: attach a packet flight recorder of this depth so findings carry frame traces (0 = off)")
	tracePath := fs.String("trace", "", "span trace file (from -trace-out) to summarise")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *hunt:
		return runHunt(*target, *duration, *out, *seed, *flightDepth)
	case *tracePath != "":
		return summariseTrace(*tracePath)
	case *logPath != "":
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		entries, err := fuzz.ReadLog(f)
		if err != nil {
			return err
		}
		if *minimise {
			entries = minimiseEntries(entries, *seed)
		}
		return replay(entries, *seed)
	case *catalog:
		var entries []fuzz.LogEntry
		for _, b := range zcover.PaperBugs() {
			entries = append(entries, fuzz.LogEntry{
				Device:    b.PoCDevice,
				Signature: b.Signature,
				Payload:   hex.EncodeToString(b.PoCPayload),
				Detail:    fmt.Sprintf("bug %02d, %s", b.ID, b.Confirmed),
			})
		}
		return replay(entries, *seed)
	default:
		return fmt.Errorf("one of -hunt, -log, or -catalog is required")
	}
}

// runHunt fuzzes and saves the bug log, with frame traces when a flight
// recorder is attached.
func runHunt(target string, duration time.Duration, out string, seed int64, flightDepth int) error {
	tb, err := zcover.NewTestbed(target, seed)
	if err != nil {
		return err
	}
	c, err := zcover.RunWith(tb, zcover.StrategyFull, duration, seed, zcover.Options{
		FlightRecorderDepth: flightDepth,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := fuzz.WriteLog(f, c.Fuzz); err != nil {
		return err
	}
	traced := 0
	for _, finding := range c.Fuzz.Findings {
		if len(finding.Trace) > 0 {
			traced++
		}
	}
	fmt.Printf("campaign on %s: %d unique findings in %s; bug log written to %s\n",
		target, len(c.Fuzz.Findings), c.Fuzz.Elapsed.Round(time.Second), out)
	if flightDepth > 0 {
		fmt.Printf("flight recorder: %d/%d findings carry frame traces (depth %d)\n",
			traced, len(c.Fuzz.Findings), flightDepth)
	}
	return nil
}

// summariseTrace prints the spans of a -trace-out file in order.
func summariseTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := telemetry.ReadTrace(f)
	if err != nil {
		return err
	}
	for _, ev := range events {
		attrs := ""
		for _, k := range []string{"device", "strategy", "outcome", "findings", "packets", "attempts"} {
			if v, ok := ev.Attrs[k]; ok {
				attrs += fmt.Sprintf(" %s=%s", k, v)
			}
		}
		fmt.Printf("%-8s %-24s %12.3fs%s\n", ev.Kind, ev.Name, ev.DurSec, attrs)
	}
	fmt.Printf("\n%d spans\n", len(events))
	return nil
}

// minimiseEntries reduces each entry's payload to a minimal PoC.
func minimiseEntries(entries []fuzz.LogEntry, seed int64) []fuzz.LogEntry {
	out := make([]fuzz.LogEntry, 0, len(entries))
	for _, e := range entries {
		payload, err := e.TriggerPayload()
		if err != nil {
			out = append(out, e)
			continue
		}
		m := minimize.New(e.Device, seed)
		res, err := m.Minimize(payload, e.Signature)
		if err != nil {
			out = append(out, e) // state-dependent trigger: keep as logged
			continue
		}
		e.Payload = hex.EncodeToString(res.Minimal)
		if res.Saved() > 0 {
			e.Detail += fmt.Sprintf(" (minimised, -%d bytes)", res.Saved())
		}
		out = append(out, e)
	}
	return out
}

// replay verifies each entry as a single-packet PoC on a fresh device.
func replay(entries []fuzz.LogEntry, seed int64) error {
	results, err := harness.VerifyPoCs(entries, seed)
	if err != nil {
		return err
	}
	reg := cmdclass.MustLoad()
	reproduced := 0
	for _, r := range results {
		status := "NOT REPRODUCED"
		if r.Reproduced {
			status = "reproduced"
			reproduced++
		}
		payload, _ := r.Entry.TriggerPayload()
		detail := r.Entry.Detail
		if n := len(r.Entry.Trace); n > 0 {
			detail += fmt.Sprintf(" [%d-frame trace]", n)
		}
		fmt.Printf("%-14s  %-32s  %-34s  %s\n",
			status, r.Entry.Signature, decode.Payload(reg, payload), detail)
	}
	fmt.Printf("\n%d/%d proof-of-concept exploits reproduced on fresh devices\n",
		reproduced, len(results))
	return nil
}
