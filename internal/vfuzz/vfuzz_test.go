package vfuzz

import (
	"testing"
	"time"

	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
)

func newVFuzzRig(t *testing.T, index string, seed int64) (*Engine, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.New(index, seed)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	eng := New(d, tb.Home(), testbed.ControllerID, Config{Duration: time.Hour, Seed: seed})
	tb.Bus.Subscribe(eng.Observe)
	return eng, tb
}

func TestVFuzzFindsMACBugOnAffectedDevice(t *testing.T) {
	eng, _ := newVFuzzRig(t, "D1", 1)
	res := eng.Run()
	if len(res.Findings) != 1 {
		t.Fatalf("D1 findings = %d, want 1 (Table V)", len(res.Findings))
	}
	f := res.Findings[0]
	if f.Event.Kind != oracle.MACParsingFault {
		t.Fatalf("finding = %+v, want MAC parsing fault", f.Event)
	}
	if res.ClassesCovered != 256 || res.CommandsCovered != 256 {
		t.Fatalf("coverage = %d/%d, want 256/256 (Table V)", res.ClassesCovered, res.CommandsCovered)
	}
}

func TestVFuzzFindsNothingOnCleanDevice(t *testing.T) {
	eng, _ := newVFuzzRig(t, "D3", 1)
	res := eng.Run()
	for _, f := range res.Findings {
		if f.Event.Kind == oracle.MACParsingFault {
			t.Fatalf("D3 has no MAC bugs but VFuzz found %s", f.Signature)
		}
	}
}

func TestVFuzzNeverFindsApplicationLayerBugsInOneHour(t *testing.T) {
	// The disjointness claim of §IV-C: VFuzz's random payloads almost
	// never form the structured application commands ZCover's bugs need.
	for _, seed := range []int64{1, 2, 3} {
		eng, _ := newVFuzzRig(t, "D4", seed)
		res := eng.Run()
		for _, f := range res.Findings {
			if f.Event.Kind != oracle.MACParsingFault {
				t.Errorf("seed %d: app-layer finding %s", seed, f.Signature)
			}
		}
	}
}

func TestVFuzzFrameMutationsAreMACFocused(t *testing.T) {
	tb, err := testbed.New("D3", 9)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	eng := New(d, tb.Home(), testbed.ControllerID, Config{Seed: 9})

	clean := protocol.NewDataFrame(tb.Home(), 0x0F, testbed.ControllerID, []byte{0, 0}).MustEncode()
	mutatedHeaders := 0
	undecodable := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		raw := eng.nextFrame()
		if len(raw) >= protocol.HeaderSize {
			for pos := 0; pos < protocol.HeaderSize && pos < len(clean); pos++ {
				if pos == 7 { // LEN varies with payload length legitimately
					continue
				}
				if raw[pos] != clean[pos] {
					mutatedHeaders++
					break
				}
			}
		}
		if _, err := protocol.Decode(raw, protocol.ChecksumCS8); err != nil {
			undecodable++
		}
	}
	if mutatedHeaders < trials/2 {
		t.Errorf("only %d/%d frames had mutated MAC headers", mutatedHeaders, trials)
	}
	// Most frames are broken at the MAC level — the paper's explanation
	// for VFuzz's poor application-layer reach.
	if undecodable < trials/2 {
		t.Errorf("only %d/%d frames undecodable", undecodable, trials)
	}
}

func TestVFuzzFramesNeverExceedMACLimit(t *testing.T) {
	tb, err := testbed.New("D1", 10)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	eng := New(d, tb.Home(), testbed.ControllerID, Config{Seed: 10})
	for i := 0; i < 5000; i++ {
		if raw := eng.nextFrame(); len(raw) > protocol.MaxFrameSize {
			t.Fatalf("frame %d is %d bytes", i, len(raw))
		}
	}
}

func TestVFuzzRespectsBudget(t *testing.T) {
	eng, _ := newVFuzzRig(t, "D5", 2)
	res := eng.Run()
	if res.Elapsed < time.Hour || res.Elapsed > time.Hour+5*time.Minute {
		t.Fatalf("elapsed = %s", res.Elapsed)
	}
	if res.PacketsSent < 1000 {
		t.Fatalf("packets = %d, suspiciously few", res.PacketsSent)
	}
	if res.Strategy != StrategyVFuzz {
		t.Fatalf("strategy = %s", res.Strategy)
	}
}
