package cmdclass

// This file defines the two proprietary command classes that are NOT part of
// the public Z-Wave specification. The paper's systematic validation testing
// (§III-C2) discovered them by sweeping CMDCL values from 0x00 upward and
// observing which unlisted values the controller processed: 0x01, the
// Z-Wave protocol's own network-management class (normally reserved for
// chipset-internal use and documented only under NDA), and 0x02, a
// manufacturer diagnostic class. Seven of the paper's fifteen zero-day
// vulnerabilities live in CMDCL 0x01 (Table III).

// zwaveProtocolClass is the hidden CMDCL 0x01 definition. Command names
// follow the Z-Wave protocol command set; CMD 0x0D (NEW_NODE_REGISTERED)
// writes directly into the controller's node table, which is why it is the
// vector for bugs 01–04 and 12.
var zwaveProtocolClass = &Class{
	ID:       ClassZWaveProtocol,
	Name:     "ZWAVE_PROTOCOL",
	Version:  1,
	Category: CategoryNetwork,
	Scope:    ScopeController,
	Commands: []Command{
		{ID: 0x01, Name: "NODE_INFO", Dir: DirSupporting, Params: []Param{
			{Name: "Capability", Kind: ParamBitmask},
			{Name: "Security", Kind: ParamBitmask},
			{Name: "Properties", Kind: ParamBitmask},
			{Name: "BasicType", Kind: ParamByte},
			{Name: "GenericType", Kind: ParamByte},
			{Name: "SpecificType", Kind: ParamByte},
			{Name: "CommandClasses", Kind: ParamVariadic},
		}},
		{ID: 0x02, Name: "REQUEST_NODE_INFO", Dir: DirControlling, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
		}},
		{ID: 0x03, Name: "ASSIGN_IDS", Dir: DirControlling, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "HomeID1", Kind: ParamByte},
			{Name: "HomeID2", Kind: ParamByte},
			{Name: "HomeID3", Kind: ParamByte},
			{Name: "HomeID4", Kind: ParamByte},
		}},
		{ID: 0x04, Name: "FIND_NODES_IN_RANGE", Dir: DirControlling, Params: []Param{
			{Name: "NodeMaskLength", Kind: ParamRange, Min: 0, Max: 29},
			{Name: "NodeMask", Kind: ParamVariadic},
		}},
		{ID: 0x05, Name: "GET_NODES_IN_RANGE", Dir: DirControlling},
		{ID: 0x06, Name: "RANGE_INFO", Dir: DirSupporting, Params: []Param{
			{Name: "NodeMaskLength", Kind: ParamRange, Min: 0, Max: 29},
			{Name: "NodeMask", Kind: ParamVariadic},
		}},
		{ID: 0x07, Name: "COMMAND_COMPLETE", Dir: DirSupporting, Params: []Param{
			{Name: "SequenceNumber", Kind: ParamByte},
		}},
		{ID: 0x08, Name: "TRANSFER_PRESENTATION", Dir: DirControlling, Params: []Param{
			{Name: "Options", Kind: ParamBitmask},
		}},
		{ID: 0x09, Name: "TRANSFER_NODE_INFO", Dir: DirControlling, Params: []Param{
			{Name: "SequenceNumber", Kind: ParamByte},
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "NodeInfo", Kind: ParamVariadic},
		}},
		{ID: 0x0A, Name: "TRANSFER_RANGE_INFO", Dir: DirControlling, Params: []Param{
			{Name: "SequenceNumber", Kind: ParamByte},
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "NodeMask", Kind: ParamVariadic},
		}},
		{ID: 0x0B, Name: "TRANSFER_END", Dir: DirControlling, Params: []Param{
			{Name: "Status", Kind: ParamEnum, Values: []byte{0x00, 0x01, 0x02}},
		}},
		{ID: 0x0C, Name: "ASSIGN_RETURN_ROUTE", Dir: DirControlling, Params: []Param{
			{Name: "DestinationNodeID", Kind: ParamNodeID},
			{Name: "RouteLength", Kind: ParamRange, Min: 0, Max: 4},
			{Name: "Repeaters", Kind: ParamVariadic},
		}},
		{ID: 0x0D, Name: "NEW_NODE_REGISTERED", Dir: DirControlling, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "Capability", Kind: ParamBitmask},
			{Name: "Security", Kind: ParamBitmask},
			{Name: "Properties", Kind: ParamBitmask},
			{Name: "BasicType", Kind: ParamByte},
			{Name: "GenericType", Kind: ParamByte},
			{Name: "SpecificType", Kind: ParamByte},
			{Name: "CommandClasses", Kind: ParamVariadic},
		}},
		{ID: 0x0E, Name: "NEW_RANGE_REGISTERED", Dir: DirControlling, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "NodeMaskLength", Kind: ParamRange, Min: 0, Max: 29},
			{Name: "NodeMask", Kind: ParamVariadic},
		}},
		{ID: 0x0F, Name: "TRANSFER_NEW_PRIMARY_COMPLETE", Dir: DirControlling, Params: []Param{
			{Name: "GenericType", Kind: ParamByte},
		}},
		{ID: 0x10, Name: "AUTOMATIC_CONTROLLER_UPDATE_START", Dir: DirControlling},
		{ID: 0x11, Name: "SUC_NODE_ID", Dir: DirControlling, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
			{Name: "SUCCapability", Kind: ParamBitmask},
		}},
		{ID: 0x12, Name: "SET_SUC", Dir: DirControlling, Params: []Param{
			{Name: "Enable", Kind: ParamEnum, Values: []byte{0x00, 0x01}},
			{Name: "SUCCapability", Kind: ParamBitmask},
		}},
		{ID: 0x13, Name: "SET_SUC_ACK", Dir: DirSupporting, Params: []Param{
			{Name: "Result", Kind: ParamEnum, Values: []byte{0x00, 0x01}},
			{Name: "SUCCapability", Kind: ParamBitmask},
		}},
		{ID: 0x14, Name: "ASSIGN_SUC_RETURN_ROUTE", Dir: DirControlling, Params: []Param{
			{Name: "DestinationNodeID", Kind: ParamNodeID},
			{Name: "RouteLength", Kind: ParamRange, Min: 0, Max: 4},
			{Name: "Repeaters", Kind: ParamVariadic},
		}},
		{ID: 0x15, Name: "STATIC_ROUTE_REQUEST", Dir: DirControlling, Params: []Param{
			{Name: "DestinationNodeID", Kind: ParamNodeID},
		}},
		{ID: 0x16, Name: "LOST", Dir: DirSupporting, Params: []Param{
			{Name: "NodeID", Kind: ParamNodeID},
		}},
		{ID: 0x17, Name: "ACCEPT_LOST", Dir: DirControlling, Params: []Param{
			{Name: "Accepted", Kind: ParamEnum, Values: []byte{0x00, 0x01}},
		}},
	},
}

// proprietaryMfgClass is the hidden CMDCL 0x02 definition: a small
// manufacturer diagnostic class, also absent from the public spec.
var proprietaryMfgClass = &Class{
	ID:       ClassProprietaryMfg,
	Name:     "PROPRIETARY_MFG_DIAGNOSTIC",
	Version:  1,
	Category: CategoryManagement,
	Scope:    ScopeController,
	Commands: []Command{
		{ID: 0x01, Name: "DIAG_GET", Dir: DirControlling, Params: []Param{
			{Name: "DiagnosticID", Kind: ParamByte},
		}},
		{ID: 0x02, Name: "DIAG_REPORT", Dir: DirSupporting, Params: []Param{
			{Name: "DiagnosticID", Kind: ParamByte},
			{Name: "Data", Kind: ParamVariadic},
		}},
		{ID: 0x03, Name: "SELF_TEST", Dir: DirControlling, Params: []Param{
			{Name: "TestID", Kind: ParamRange, Min: 0, Max: 7},
		}},
	},
}

// HiddenCandidates returns the proprietary command-class definitions that
// validation testing can confirm on a target controller. They are not part
// of any Registry built from the public spec.
func HiddenCandidates() []*Class {
	return []*Class{zwaveProtocolClass, proprietaryMfgClass}
}

// HiddenClass returns the proprietary class definition for the given ID.
func HiddenClass(id ClassID) (*Class, bool) {
	for _, c := range HiddenCandidates() {
		if c.ID == id {
			return c, true
		}
	}
	return nil, false
}
