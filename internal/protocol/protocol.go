// Package protocol implements the Z-Wave (ITU-T G.9959) frame layer used by
// every other component of this repository: the simulated radio carries
// encoded frames, device and controller models parse them, and the ZCover
// and VFuzz fuzzers craft them.
//
// The wire format follows Figure 1 of the ZCover paper:
//
//	MAC:  H-ID(4) SRC(1) P1(1) P2(1) LEN(1) DST(1) <APL payload> CS
//	APL:  CMDCL(1) CMD(1) PARAM1..PARAMn
//
// LEN covers the whole MAC frame including the checksum. Two checksum
// schemes exist in deployed networks: the legacy 8-bit XOR checksum (CS-8,
// R1/R2 data rates) and CRC-16/CCITT (R3, 100 kbit/s). Both are implemented.
//
// # Concurrency and pooling
//
// All package-level functions and Frame methods are safe for concurrent
// use on distinct frames; a Frame itself is a plain struct with no internal
// locking. The steady encode/decode path is allocation-free when callers
// use the pooled variants: AppendEncode writes into a caller-supplied
// buffer (GetBuf/PutBuf recycle MaxFrameSize buffers through a shared
// sync.Pool) and DecodeInto parses into a caller-supplied Frame
// (GetFrame/PutFrame). Both pools are safe for concurrent use across
// parallel fleet campaigns. Ownership rule: a decoded Frame's Payload
// aliases the raw buffer it was parsed from, so a buffer must not be
// returned with PutBuf while any Frame, Capture, or log entry still
// references its bytes, and PutFrame zeroes the frame to drop that alias.
// Encode and Decode remain as allocating conveniences for cold paths.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
)

// Frame size limits from the G.9959 MAC (and §II-A of the paper).
const (
	// MaxFrameSize is the maximum total MAC frame length in bytes.
	MaxFrameSize = 64
	// HeaderSize is the fixed MAC header length preceding the payload:
	// home ID (4) + source (1) + frame control (2) + length (1) + destination (1).
	HeaderSize = 9
	// MaxPayloadCS8 is the maximum application payload under an 8-bit checksum.
	MaxPayloadCS8 = MaxFrameSize - HeaderSize - 1
	// MaxPayloadCRC16 is the maximum application payload under CRC-16.
	MaxPayloadCRC16 = MaxFrameSize - HeaderSize - 2
)

// HomeID identifies a Z-Wave network. It is assigned to a controller at
// manufacturing time and shared with slaves at inclusion.
type HomeID uint32

// String renders the home ID the way Z-Wave tooling prints it (8 hex digits).
func (h HomeID) String() string {
	return fmt.Sprintf("%08X", uint32(h))
}

// NodeID identifies a node within a network. Valid unicast IDs are 1..232;
// 0xFF is the broadcast destination.
type NodeID byte

// Reserved node IDs.
const (
	// NodeUnassigned marks a node that has not been included in a network.
	NodeUnassigned NodeID = 0x00
	// NodeBroadcast addresses every node in the network.
	NodeBroadcast NodeID = 0xFF
	// MaxUnicastNode is the largest assignable unicast node ID.
	MaxUnicastNode NodeID = 232
)

// IsUnicast reports whether n is a valid unicast node ID.
func (n NodeID) IsUnicast() bool { return n >= 1 && n <= MaxUnicastNode }

// String renders the node ID as Z-Wave tooling does (decimal).
func (n NodeID) String() string { return strconv.Itoa(int(n)) }

// ChecksumMode selects the frame integrity scheme.
type ChecksumMode int

// Supported checksum modes. Enum starts at 1 so the zero value is invalid
// and cannot be mistaken for a real mode.
const (
	// ChecksumCS8 is the legacy 8-bit XOR checksum used at R1/R2 rates.
	ChecksumCS8 ChecksumMode = iota + 1
	// ChecksumCRC16 is the CRC-16/CCITT checksum used at the R3 rate.
	ChecksumCRC16
)

// String implements fmt.Stringer.
func (m ChecksumMode) String() string {
	switch m {
	case ChecksumCS8:
		return "CS-8"
	case ChecksumCRC16:
		return "CRC-16"
	default:
		return "ChecksumMode(" + strconv.Itoa(int(m)) + ")"
	}
}

// trailerSize returns the checksum length in bytes for the mode.
func (m ChecksumMode) trailerSize() int {
	if m == ChecksumCRC16 {
		return 2
	}
	return 1
}

// Codec-level errors. Decode wraps these with positional detail; callers
// match with errors.Is.
var (
	// ErrFrameTooShort indicates fewer bytes than a minimal MAC frame.
	ErrFrameTooShort = errors.New("protocol: frame too short")
	// ErrFrameTooLong indicates a frame above MaxFrameSize.
	ErrFrameTooLong = errors.New("protocol: frame exceeds 64-byte MAC limit")
	// ErrLengthMismatch indicates the LEN field disagrees with the byte count.
	ErrLengthMismatch = errors.New("protocol: LEN field does not match frame size")
	// ErrBadChecksum indicates checksum verification failed.
	ErrBadChecksum = errors.New("protocol: checksum mismatch")
	// ErrPayloadTooLarge indicates an application payload that cannot fit.
	ErrPayloadTooLarge = errors.New("protocol: application payload too large")
)

// CS8 computes the legacy Z-Wave 8-bit checksum over data: an XOR chain
// seeded with 0xFF, as specified by ITU-T G.9959 for R1/R2 frames.
func CS8(data []byte) byte {
	cs := byte(0xFF)
	for _, b := range data {
		cs ^= b
	}
	return cs
}

// CRC16 computes the CRC-16/CCITT (polynomial 0x1021, initial value 0x1D0F)
// used by G.9959 R3 frames.
func CRC16(data []byte) uint16 {
	crc := uint16(0x1D0F)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// appendChecksumFrom appends the mode's checksum over buf[start:] to buf.
// The start offset lets AppendEncode write after existing bytes in dst.
func appendChecksumFrom(buf []byte, start int, mode ChecksumMode) []byte {
	if mode == ChecksumCRC16 {
		return binary.BigEndian.AppendUint16(buf, CRC16(buf[start:]))
	}
	return append(buf, CS8(buf[start:]))
}

// verifyChecksum checks the trailing checksum of raw under the mode.
func verifyChecksum(raw []byte, mode ChecksumMode) bool {
	n := mode.trailerSize()
	if len(raw) < n {
		return false
	}
	body, trailer := raw[:len(raw)-n], raw[len(raw)-n:]
	if mode == ChecksumCRC16 {
		return binary.BigEndian.Uint16(trailer) == CRC16(body)
	}
	return trailer[0] == CS8(body)
}
