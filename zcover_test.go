package zcover_test

import (
	"testing"
	"time"

	"zcover"
)

func TestPublicAPIQuickCampaign(t *testing.T) {
	tb, err := zcover.NewTestbed("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := zcover.Run(tb, zcover.StrategyFull, 30*time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint.Home.String() != "E7DE3F3D" {
		t.Errorf("fingerprinted home %s", c.Fingerprint.Home)
	}
	if len(c.Fuzz.Findings) < 8 {
		t.Errorf("30-minute campaign found %d bugs, want >= 8", len(c.Fuzz.Findings))
	}
	for _, f := range c.Fuzz.Findings {
		if _, ok := findInCatalog(f.Signature); !ok {
			t.Errorf("finding %s not in the paper catalogue", f.Signature)
		}
	}
}

func findInCatalog(sig string) (zcover.PaperBug, bool) {
	for _, b := range zcover.PaperBugs() {
		if b.Signature == sig {
			return b, true
		}
	}
	return zcover.PaperBug{}, false
}

func TestPublicAPIBaseline(t *testing.T) {
	tb, err := zcover.NewTestbed("D4", 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := zcover.RunBaseline(tb, time.Hour, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClassesCovered != 256 {
		t.Errorf("baseline coverage = %d", res.ClassesCovered)
	}
}

func TestPublicAPICatalog(t *testing.T) {
	if got := len(zcover.PaperBugs()); got != 15 {
		t.Fatalf("catalogue = %d bugs, want 15", got)
	}
}

// TestPublicAPIResumableCampaign: the checkpointed single-campaign entry
// point journals a fresh run and replays it on resume with identical
// findings.
func TestPublicAPIResumableCampaign(t *testing.T) {
	dir := t.TempDir()
	key := zcover.CampaignKey{
		Target: "D1", Strategy: zcover.StrategyFull, Duration: 2 * time.Minute, Seed: 41,
	}
	tb, err := zcover.NewTestbed("D1", 41)
	if err != nil {
		t.Fatal(err)
	}
	c1, resumed, err := zcover.RunResumable(dir, false, key, tb, zcover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("fresh campaign claimed to be resumed")
	}
	tb2, err := zcover.NewTestbed("D1", 41)
	if err != nil {
		t.Fatal(err)
	}
	c2, resumed, err := zcover.RunResumable(dir, true, key, tb2, zcover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("journaled campaign re-ran instead of replaying")
	}
	if len(c1.Fuzz.Findings) != len(c2.Fuzz.Findings) || c1.Fuzz.PacketsSent != c2.Fuzz.PacketsSent {
		t.Errorf("replay diverged: %d/%d findings, %d/%d packets",
			len(c1.Fuzz.Findings), len(c2.Fuzz.Findings), c1.Fuzz.PacketsSent, c2.Fuzz.PacketsSent)
	}
}

func TestPublicAPIExperimentDrivers(t *testing.T) {
	if tbl := zcover.Fig1(); len(tbl.Rows) == 0 {
		t.Error("Fig1 empty")
	}
	if _, csv, err := zcover.Fig5(); err != nil || len(csv.Rows) != 16 {
		t.Errorf("Fig5 = %v rows, err %v", csv, err)
	}
	if tbl := zcover.Table2(); len(tbl.Rows) != 9 {
		t.Error("Table2 wrong size")
	}
}
