package device

import (
	"testing"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

func newSensorRig(t *testing.T) (*Node, *MultilevelSensor, *[][]byte) {
	t.Helper()
	m := radio.NewMedium(vtime.NewSimClock())
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	var got [][]byte
	hub.Handler = func(f *protocol.Frame) { got = append(got, append([]byte{}, f.Payload...)) }
	sensor := NewMultilevelSensor(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x04, Name: "sensor"}, 0x01)
	return hub, sensor, &got
}

func TestSensorWakeCycleTraffic(t *testing.T) {
	_, sensor, got := newSensorRig(t)
	sensor.SetTemperature(228) // 22.8 °C
	if err := sensor.WakeCycle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 3 {
		t.Fatalf("hub received %d frames, want wakeup+reading+battery", len(*got))
	}
	if (*got)[0][0] != 0x84 || (*got)[0][1] != 0x07 {
		t.Fatalf("first frame = % X, want WAKE_UP NOTIFICATION", (*got)[0])
	}
	reading := (*got)[1]
	if reading[0] != 0x31 || reading[1] != 0x05 || reading[2] != 0x01 {
		t.Fatalf("reading = % X", reading)
	}
	if v := int(reading[4])<<8 | int(reading[5]); v != 228 {
		t.Fatalf("value = %d, want 228", v)
	}
	if sensor.Reports() != 1 {
		t.Fatalf("reports = %d", sensor.Reports())
	}
	if sensor.Awake() {
		t.Fatal("sensor should sleep after the cycle")
	}
}

func TestSensorSleepsBetweenCycles(t *testing.T) {
	hub, sensor, got := newSensorRig(t)
	if err := hub.Send(0x04, []byte{0x31, 0x04, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatalf("sleeping sensor answered: %v", *got)
	}
	if sensor.Awake() {
		t.Fatal("sensor should be asleep")
	}
}

func TestSensorAnswersWhileAwake(t *testing.T) {
	hub, sensor, got := newSensorRig(t)
	sensor.awake = true
	if err := hub.Send(0x04, []byte{0x31, 0x04, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := hub.Send(0x04, []byte{0x80, 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("awake sensor answers = %d, want 2", len(*got))
	}
	_ = sensor
}

func TestSensorJoinsOverTheAir(t *testing.T) {
	m := radio.NewMedium(vtime.NewSimClock())
	sensor := NewMultilevelSensor(Config{Medium: m, Region: radio.RegionUS, Home: 0xAAAA5555, ID: 0, Name: "factory"}, 0x01)
	if err := sensor.Join(); err != nil {
		t.Fatal(err)
	}
	if !sensor.Node().LearnMode() {
		t.Fatal("join did not enter learn mode")
	}
}
