package obs_test

import (
	"path/filepath"
	"strings"
	"testing"

	"zcover/internal/obs"
)

// report builds a 1-P host report shaped like the committed
// BENCH_scaling.json: flat capped points plus a slower uncapped one.
func report() *obs.ScalingReport {
	return &obs.ScalingReport{
		Host:     obs.HostInfo{GoVersion: "go1.24.0", Gomaxprocs: 1, NumCPU: 1},
		Campaign: "test sweep",
		Points: []obs.ScalingPoint{
			{Workers: 1, EffectiveWorkers: 1, WallSec: 10, SimSec: 4000},
			{Workers: 8, EffectiveWorkers: 1, WallSec: 10, SimSec: 3960},
			{Workers: 8, EffectiveWorkers: 8, Oversubscribed: true, WallSec: 10, SimSec: 3700,
				Phases: []obs.PhaseShare{{Phase: obs.PhaseFuzz, WallSec: 8, Share: 0.8}}},
		},
	}
}

func TestFinalizeDerivesEfficiency(t *testing.T) {
	r := report()
	r.Points[1].Phases = []obs.PhaseShare{{Phase: obs.PhaseFuzz, WallSec: 8, Share: 0.8}}
	r.Finalize()

	base := r.Points[0]
	if base.SimRate != 400 || base.Speedup != 1 || base.Efficiency != 1 {
		t.Errorf("baseline point: %+v", base)
	}
	capped := r.Points[1]
	// 8 workers on a 1-P host: ideal speedup is 1, so efficiency equals
	// raw speedup — host-portable normalization.
	if capped.IdealSpeedup != 1 {
		t.Errorf("IdealSpeedup = %v, want 1 (GOMAXPROCS=1)", capped.IdealSpeedup)
	}
	if capped.Efficiency < 0.98 || capped.Efficiency > 1 {
		t.Errorf("Efficiency = %v, want ~0.99", capped.Efficiency)
	}
}

func TestRankNamesHostParallelismAndOversubscription(t *testing.T) {
	r := report()
	r.Points[1].Phases = []obs.PhaseShare{{Phase: obs.PhaseFuzz, WallSec: 8, Share: 0.8}}
	r.Finalize()

	if len(r.Bottlenecks) < 2 {
		t.Fatalf("bottlenecks: %+v", r.Bottlenecks)
	}
	kinds := map[string]bool{}
	for i, b := range r.Bottlenecks {
		if b.Rank != i+1 {
			t.Errorf("rank %d at index %d", b.Rank, i)
		}
		kinds[b.Kind] = true
	}
	for _, want := range []string{"host-parallelism", "oversubscription", "phase"} {
		if !kinds[want] {
			t.Errorf("missing %q bottleneck: %+v", want, r.Bottlenecks)
		}
	}
	// The #1 entry must be a serializer, not phase attribution.
	if r.Bottlenecks[0].Kind == "phase" {
		t.Errorf("phase attribution ranked #1: %+v", r.Bottlenecks[0])
	}
	// Determinism: re-ranking the same data reproduces the order.
	order := func(r *obs.ScalingReport) string {
		var b strings.Builder
		for _, x := range r.Bottlenecks {
			b.WriteString(x.Kind + "/" + x.Detail + ";")
		}
		return b.String()
	}
	first := order(r)
	r.Finalize()
	if got := order(r); got != first {
		t.Errorf("ranking not deterministic:\n%s\n%s", first, got)
	}
}

func TestScalingReportFileRoundTrip(t *testing.T) {
	r := report()
	r.Finalize()
	path := filepath.Join(t.TempDir(), "scaling.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := obs.LoadScalingReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(r.Points) || len(back.Bottlenecks) != len(r.Bottlenecks) {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Host.Gomaxprocs != 1 {
		t.Errorf("host stamp lost: %+v", back.Host)
	}
}

func TestCheckRegression(t *testing.T) {
	base := report()
	base.Finalize()

	fresh := report()
	fresh.Finalize()
	if err := obs.CheckRegression(base, fresh, 0.10); err != nil {
		t.Errorf("identical reports flagged: %v", err)
	}

	slow := report()
	slow.Points[1].SimSec = 3000 // 25% efficiency drop at workers=8
	slow.Finalize()
	if err := obs.CheckRegression(base, slow, 0.10); err == nil {
		t.Error("25% efficiency regression passed the 10% gate")
	}

	if err := obs.CheckRegression(&obs.ScalingReport{}, fresh, 0.10); err == nil {
		t.Error("empty baseline accepted")
	}
}

func TestScalingTableRenders(t *testing.T) {
	r := report()
	r.Finalize()
	out := r.Table()
	for _, want := range []string{"Fleet scaling", "Ranked serialization sources", "GOMAXPROCS 1", "(raw)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestHostStamp(t *testing.T) {
	h := obs.Host("abc1234")
	if h.GitSHA != "abc1234" || h.Gomaxprocs < 1 || h.NumCPU < 1 || h.GoVersion == "" {
		t.Errorf("host stamp: %+v", h)
	}
}
