package security

import (
	"bytes"
	"testing"
)

// Native fuzz targets for the security transports. Each iteration rebuilds
// its keys and sessions from fixed bytes, so runs are deterministic and a
// crasher reproduces with no state from earlier inputs.

// fuzzS0Keys derives a fixed S0 key pair for the fuzz targets.
func fuzzS0Keys() S0Keys {
	keys, err := DeriveS0Keys(bytes.Repeat([]byte{0x42}, KeySize))
	if err != nil {
		panic(err)
	}
	return keys
}

// FuzzS0Decrypt feeds arbitrary payloads to the S0 decapsulator under a
// fixed key and nonce. A successful decapsulation must be authentic: S0
// encapsulation is deterministic given the nonces, so re-encapsulating the
// recovered plaintext with the sender nonce embedded in the payload must
// reproduce the input byte-for-byte. Everything else must error, not panic.
func FuzzS0Decrypt(f *testing.F) {
	keys := fuzzS0Keys()
	sn := bytes.Repeat([]byte{0x01}, S0NonceSize)
	rn := bytes.Repeat([]byte{0x02}, S0NonceSize)
	header := []byte{0x81, 0x02, 0x01, 0x0D}
	genuine, err := S0Encapsulate(keys, sn, rn, header, []byte{0x25, 0x01, 0xFF})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine)
	f.Add([]byte{0x98, 0x81})
	f.Add(bytes.Repeat([]byte{0x00}, 2+S0NonceSize+1+S0MACSize))
	f.Fuzz(func(t *testing.T, payload []byte) {
		pt, err := S0Decapsulate(keys, rn, header, payload)
		if err != nil {
			return
		}
		embedded := payload[2 : 2+S0NonceSize]
		again, err := S0Encapsulate(keys, embedded, rn, header, pt)
		if err != nil {
			t.Fatalf("accepted plaintext does not re-encapsulate: %v", err)
		}
		if !bytes.Equal(again, payload) {
			t.Fatalf("accepted payload is not a genuine encapsulation:\n got % X\nwant % X", payload, again)
		}
	})
}

// fuzzS2Sessions builds a deterministic fresh session pair (same key and
// entropy every call) so each fuzz iteration starts from pristine SPAN state.
func fuzzS2Sessions() (*Session, *Session) {
	key := bytes.Repeat([]byte{0x24}, KeySize)
	eiA := bytes.Repeat([]byte{0xA5}, EntropySize)
	eiB := bytes.Repeat([]byte{0x5A}, EntropySize)
	a, err := NewSession(key, eiA, eiB)
	if err != nil {
		panic(err)
	}
	b, err := NewSession(key, eiA, eiB)
	if err != nil {
		panic(err)
	}
	return a, b
}

// FuzzS2Decrypt throws arbitrary encapsulations and AADs at a fresh S2
// receiver. The decapsulator must never panic, and — whatever the garbage
// did — the session must stay usable: a genuine message encapsulated
// afterwards still authenticates and decrypts. This pins down the SPAN
// recovery path too (the receiver probes forward nonces on auth failure).
func FuzzS2Decrypt(f *testing.F) {
	a, _ := fuzzS2Sessions()
	aad := []byte{0xCB, 0x95, 0xA3, 0x4A, 0x01, 0x02}
	genuine, err := a.Encapsulate(FlowAtoB, aad, []byte{0x62, 0x01, 0xFF})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(genuine, aad)
	f.Add([]byte{0x9F, 0x03, 0x00, 0x00}, aad)
	f.Add(bytes.Repeat([]byte{0x9F}, 24), []byte{})
	f.Fuzz(func(t *testing.T, payload, fuzzAAD []byte) {
		sender, receiver := fuzzS2Sessions()
		receiver.SetRecoveryWindow(8)
		if _, err := receiver.Decapsulate(FlowAtoB, fuzzAAD, payload); err == nil {
			// The input authenticated, so it can only be the genuine first
			// message of this deterministic session; the receiver consumed
			// it. Burn the sender's copy so the liveness check below is not
			// a replay of the same sequence number.
			if _, err := sender.Encapsulate(FlowAtoB, aad, []byte{0x00}); err != nil {
				t.Fatal(err)
			}
		}

		// The attack must not have wedged the session.
		encap, err := sender.Encapsulate(FlowAtoB, aad, []byte{0x62, 0x01, 0xFF})
		if err != nil {
			t.Fatalf("encapsulate after fuzz input: %v", err)
		}
		got, err := receiver.Decapsulate(FlowAtoB, aad, encap)
		if err != nil {
			t.Fatalf("genuine message rejected after fuzz input % X: %v", payload, err)
		}
		if !bytes.Equal(got, []byte{0x62, 0x01, 0xFF}) {
			t.Fatalf("genuine message corrupted after fuzz input: % X", got)
		}
	})
}
