package serialapi

import (
	"bytes"
	"testing"
)

func FuzzDecodeSerial(f *testing.F) {
	f.Add(Encode(Frame{Type: TypeRequest, Func: FuncMemoryGetID}))
	f.Add([]byte{SOF, 0x03, 0x00, 0x20, 0xFF})
	f.Fuzz(func(t *testing.T, raw []byte) {
		frame, err := Decode(raw)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(frame), raw) {
			t.Fatal("serial frame round trip mismatch")
		}
	})
}
