package cmdclass

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// Property-based registry tests over the full specification database, with
// the generator seed pinned so the input set is stable across runs.

// Property: Get is consistent with All — every ID in All resolves through
// Get to the same class, any other ID misses, and a resolved class's
// command lookup agrees with its CommandIDs listing.
func TestRegistryLookupConsistencyProperty(t *testing.T) {
	reg := MustLoad()
	inAll := make(map[ClassID]*Class, reg.Len())
	for _, c := range reg.All() {
		inAll[c.ID] = c
	}
	prop := func(rawID byte, rawCmd byte) bool {
		id := ClassID(rawID)
		c, ok := reg.Get(id)
		if want, listed := inAll[id]; listed != ok || (ok && c != want) {
			return false
		}
		if !ok {
			return true
		}
		if c.ID != id {
			return false
		}
		known := make(map[CommandID]bool, len(c.Commands))
		for _, cid := range c.CommandIDs() {
			known[cid] = true
		}
		cmd, ok := c.Command(CommandID(rawCmd))
		if ok != known[CommandID(rawCmd)] {
			return false
		}
		return !ok || cmd.ID == CommandID(rawCmd)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: PrioritizeByCommandCount returns a permutation of its input,
// sorted by descending command count with ascending-ID tie-breaks — and the
// result is independent of the input order (any shuffle prioritises to the
// same sequence), which is what makes the fuzzing queue deterministic.
func TestPrioritizeByCommandCountProperty(t *testing.T) {
	reg := MustLoad()
	all := reg.All()
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		subset := make([]*Class, 0, len(all))
		for _, c := range all {
			if r.Intn(2) == 0 {
				subset = append(subset, c)
			}
		}
		shuffled := append([]*Class{}, subset...)
		r.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})

		got := PrioritizeByCommandCount(shuffled)
		if len(got) != len(subset) {
			return false
		}
		// Sorted by (commands desc, ID asc).
		if !sort.SliceIsSorted(got, func(i, j int) bool {
			if len(got[i].Commands) != len(got[j].Commands) {
				return len(got[i].Commands) > len(got[j].Commands)
			}
			return got[i].ID < got[j].ID
		}) {
			return false
		}
		// A permutation of the input: same classes, each exactly once.
		seen := make(map[ClassID]int, len(got))
		for _, c := range got {
			seen[c.ID]++
		}
		for _, c := range subset {
			seen[c.ID]--
		}
		for _, n := range seen {
			if n != 0 {
				return false
			}
		}
		// Order-independent: prioritising the unshuffled subset agrees.
		ref := PrioritizeByCommandCount(subset)
		for i := range ref {
			if ref[i] != got[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
