package controller

import (
	"fmt"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
)

// This file implements the fifteen vulnerability models of Table III as
// buggy firmware code paths. Each model documents its trigger predicate
// and which fuzzing strategy can reach it; the ablation results of
// Table VI fall out of these predicates:
//
//   - the seven CMDCL 0x01 bugs (01–05, 12, 14) need the hidden class plus
//     semantic parameter values (known node IDs, boundary mask lengths),
//     so only the full configuration reaches them;
//   - bugs 06 and 13 live in listed classes but need boundary parameter
//     values, so position-sensitive mutation (full and β) reaches them;
//   - bugs 07–11 and 15 live in listed classes and trigger on broadly
//     malformed parameters, so even random fuzzing (γ) reaches them.

// Hang durations from Table III's Duration column.
const (
	bug07Hang = 68 * time.Second
	bug08Hang = 67 * time.Second
	bug09Hang = 63 * time.Second
	bug10Hang = 4 * time.Second
	bug11Hang = 62 * time.Second
	bug14Hang = 4 * time.Minute
	bug15Hang = 59 * time.Second
)

// checkBugs evaluates the application-layer vulnerability models. It
// returns true when a model fired (the frame is consumed by the bug).
func (c *Controller) checkBugs(src protocol.NodeID, class cmdclass.ClassID, cmd cmdclass.CommandID, params []byte) bool {
	switch class {
	case cmdclass.ClassZWaveProtocol:
		return c.checkProtocolBugs(cmd, params)

	case cmdclass.ClassDeviceResetLocal:
		// Bug 07 (CVE-2023-6533): DEVICE_RESET_LOCALLY_NOTIFICATION takes
		// no parameters; trailing bytes corrupt the reset bookkeeping and
		// the controller goes silent for ~68 s.
		if c.profile.HasBug(Bug07ResetLocallyHang) &&
			cmd == cmdclass.CmdDeviceResetNotification && len(params) > 0 {
			c.hang(bug07Hang, class, cmd, "reset-notification with trailing bytes")
			return true
		}

	case cmdclass.ClassAssocGroupInfo:
		// Bugs 08 and 11 (CVE-2024-50924, CVE-2023-6643): reserved bits in
		// the AGI flags byte send the group-info walker into a retry loop.
		if len(params) >= 1 && params[0]&0x3F != 0 {
			if c.profile.HasBug(Bug08GroupInfoHang) && cmd == cmdclass.CmdAGIGroupInfoGet {
				c.hang(bug08Hang, class, cmd, "reserved AGI flag bits")
				return true
			}
			if c.profile.HasBug(Bug11CommandListHang) && cmd == cmdclass.CmdAGICommandListGet {
				c.hang(bug11Hang, class, cmd, "reserved AGI flag bits")
				return true
			}
		}

	case cmdclass.ClassFirmwareUpdateMD:
		// Bug 09 (CVE-2023-6642): MD_GET takes no parameters; junk bytes
		// stall the firmware metadata reader.
		if c.profile.HasBug(Bug09FirmwareMDHang) &&
			cmd == cmdclass.CmdFirmwareMDGet && len(params) > 0 {
			c.hang(bug09Hang, class, cmd, "firmware MD get with trailing bytes")
			return true
		}
		// Bug 15: REQUEST_GET shorter than its six fixed parameters makes
		// the parser read uninitialised fields and spin.
		if c.profile.HasBug(Bug15FirmwareReqHang) &&
			cmd == cmdclass.CmdFirmwareRequestGet && len(params) < 6 {
			c.hang(bug15Hang, class, cmd, "truncated firmware update request")
			return true
		}

	case cmdclass.ClassVersion:
		// Bug 10 (CVE-2023-6641): VERSION_COMMAND_CLASS_GET for a class
		// the firmware does not implement walks the class registry without
		// a terminator (~4 s outage per packet).
		// (A zero class ID takes the firmware's "no class requested" early
		// exit, so only non-zero unsupported IDs reach the buggy walk.)
		if c.profile.HasBug(Bug10VersionGetHang) &&
			cmd == cmdclass.CmdVersionCommandClassGet &&
			len(params) >= 1 && params[0] != 0x00 && !c.Supports(cmdclass.ClassID(params[0])) {
			c.hang(bug10Hang, class, cmd, fmt.Sprintf("version query for unsupported class 0x%02X", params[0]))
			return true
		}

	case cmdclass.ClassSecurity2:
		// Bug 06 (CVE-2023-6640): an S2 NONCE_GET carrying a sequence
		// number in the reserved top range crashes the PC controller
		// program's nonce bookkeeping.
		if c.profile.HasBug(Bug06HostCrash) &&
			cmd == cmdclass.CmdS2NonceGet && len(params) >= 1 && params[0] >= 0xF8 {
			c.host.Crash()
			c.emit(oracle.HostCrash, class, cmd, 0, "S2 nonce-get with reserved sequence number")
			return true
		}

	case cmdclass.ClassPowerlevel:
		// Bug 13: POWERLEVEL_TEST_NODE_SET with a 0xFFxx frame count makes
		// the host program stream test frames indefinitely.
		if c.profile.HasBug(Bug13HostDoS) &&
			cmd == cmdclass.CmdPowerlevelTestNodeSet && len(params) >= 3 && params[2] == 0xFF {
			c.host.Wedge()
			c.emit(oracle.HostDoS, class, cmd, 0, "powerlevel test flood wedges the host program")
			return true
		}
	}
	return false
}

// checkProtocolBugs evaluates the hidden CMDCL 0x01 models. The root flaw
// — shared by all of them and called out by the paper as a specification
// defect — is that this network-management class is accepted in clear text
// even on an S2 network.
func (c *Controller) checkProtocolBugs(cmd cmdclass.CommandID, params []byte) bool {
	switch cmd {
	case cmdclass.CmdProtoNewNodeRegistered:
		return c.checkNodeRegistrationBugs(params)

	case cmdclass.CmdProtoRequestNodeInfo:
		// Bug 05 (CVE-2024-50921): a *mutated* self-interrogation (trailing
		// junk after the node ID) drives the hub's event pipeline into a
		// loop and wedges the smartphone app (Samsung hubs D6, D7).
		if c.profile.HasBug(Bug05AppDoS) && len(params) >= 2 &&
			protocol.NodeID(params[0]) == c.node.ID() {
			c.host.Wedge()
			c.emit(oracle.AppDoS, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoRequestNodeInfo, 0,
				"self-interrogation loop wedges the smartphone app")
			return true
		}

	case cmdclass.CmdProtoFindNodesInRange:
		// Bug 14: a neighbour-discovery request with an oversized or
		// inconsistent node mask keeps the controller scanning for
		// non-existent devices for over four minutes.
		if !c.profile.HasBug(Bug14BusyScanHang) || len(params) < 1 {
			return false
		}
		maskLen := int(params[0])
		if maskLen >= 29 || maskLen > len(params)-1 {
			c.hang(bug14Hang, cmdclass.ClassZWaveProtocol, cmd, "scan for non-existent nodes")
			return true
		}
	}
	return false
}

// checkNodeRegistrationBugs evaluates the NEW_NODE_REGISTERED (0x01/0x0D)
// models — the memory-tampering family of Figs 8–11. The parameter layout
// is [NodeID, Capability, Security, Properties, Basic, Generic, Specific,
// classes...].
func (c *Controller) checkNodeRegistrationBugs(params []byte) bool {
	if len(params) < 1 {
		return false
	}
	target := protocol.NodeID(params[0])
	record, exists := c.table.Get(target)

	// Bug 04 (CVE-2024-50930): registration addressed to the broadcast ID
	// overwrites the whole device table (Fig 11).
	if c.profile.HasBug(Bug04DatabaseOverwrite) && target == protocol.NodeBroadcast {
		c.overwriteTable()
		c.emit(oracle.DatabaseOverwritten, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoNewNodeRegistered,
			0, "device table overwritten with attacker-chosen entries")
		return true
	}

	// Bug 03 (CVE-2024-50931): a bare registration (node ID only) is
	// treated as "node gone" and deletes the entry (Fig 10). The firmware
	// does refuse to unregister its own node ID.
	if c.profile.HasBug(Bug03NodeRemoval) && len(params) == 1 && exists &&
		target != c.node.ID() {
		c.table.Delete(target)
		c.emit(oracle.NodeRemoved, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoNewNodeRegistered,
			0, fmt.Sprintf("node %d removed from controller memory", target))
		return true
	}

	// Bug 12 (CVE-2024-50928): a two-byte registration with a zeroed
	// capability field truncates the stored wake-up configuration. The
	// wake-up NVM area is keyed by node ID independently of the node
	// table, so the write lands even for a node whose table entry is gone.
	if c.profile.HasBug(Bug12WakeupRemoval) && len(params) == 2 && params[1] == 0x00 &&
		c.wakeupStore[target] > 0 {
		delete(c.wakeupStore, target)
		if exists && record.WakeupInterval > 0 {
			record.WakeupInterval = 0
			c.table.Put(record)
		}
		c.emit(oracle.WakeupCleared, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoNewNodeRegistered,
			0, fmt.Sprintf("wake-up interval of node %d erased", target))
		return true
	}

	if len(params) < 7 {
		return false
	}
	capability, basic, generic, specific := params[1], params[4], params[5], params[6]

	// Bug 01 (CVE-2024-50929): a full registration for an existing node
	// with a different (non-zero) generic type silently rewrites the
	// stored device properties (Fig 8: door lock becomes routing slave).
	if c.profile.HasBug(Bug01MemoryCorruption) && exists &&
		generic != 0x00 && generic != record.Generic {
		old := record.Generic
		record.Capability, record.Basic, record.Generic, record.Specific = capability, basic, generic, specific
		c.table.Put(record)
		c.emit(oracle.NodeTampered, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoNewNodeRegistered,
			0, fmt.Sprintf("node %d generic type 0x%02X rewritten to 0x%02X", target, old, generic))
		return true
	}

	// Bug 02 (CVE-2024-50920): a full registration for an unknown unicast
	// ID claiming to be a controller inserts a rogue controller entry
	// (Fig 9: fake controllers #10 and #200).
	if c.profile.HasBug(Bug02RogueInsertion) && !exists && target.IsUnicast() &&
		basic == device.BasicTypeController {
		c.table.Put(NodeRecord{
			ID: target, Basic: basic, Generic: generic, Specific: specific,
			Capability: capability,
		})
		c.emit(oracle.RogueNodeAdded, cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoNewNodeRegistered,
			0, fmt.Sprintf("rogue controller inserted as node %d", target))
		return true
	}
	return false
}

// overwriteTable replaces the device table with attacker-shaped garbage,
// keeping only the controller's own entry (Fig 11).
func (c *Controller) overwriteTable() {
	self, ok := c.table.Get(c.node.ID())
	if !ok {
		self = NodeRecord{
			ID: c.node.ID(), Basic: device.BasicTypeStaticController,
			Generic: device.GenericTypeController, Specific: 0x01,
		}
	}
	c.table.Restore(NewNodeTable())
	c.table.Put(self)
	for _, id := range []protocol.NodeID{10, 200} {
		c.table.Put(NodeRecord{
			ID: id, Basic: device.BasicTypeController,
			Generic: device.GenericTypeController, Specific: 0x01,
		})
	}
}

// macBugCheck is the raw-frame hook implementing the profile's legacy MAC
// parsing faults (the one-days VFuzz finds). It returns true when the
// frame was consumed by a fault.
func (c *Controller) macBugCheck(raw []byte) bool {
	if len(c.profile.MACBugs) == 0 || len(raw) < protocol.HeaderSize {
		return false
	}
	home, _, dst, ok := protocol.SniffNetworkInfo(raw)
	if !ok || home != c.profile.Home {
		return false // home-ID filtering happens in hardware, before parsing
	}
	if dst != c.node.ID() && dst != protocol.NodeBroadcast {
		return false
	}
	if c.Busy() {
		return true // a hung chipset stays hung
	}
	headerType := raw[5] & 0x0F
	for _, bug := range c.profile.MACBugs {
		triggered := false
		switch bug {
		case MACBugLenOverflow:
			triggered = int(raw[7]) > len(raw)
		case MACBugRuntAck:
			triggered = headerType == 0x03 && len(raw) > protocol.HeaderSize+1
		case MACBugRoutedHeader:
			triggered = headerType == 0x08 && len(raw) < protocol.HeaderSize+4
		case MACBugEmptyMulticast:
			triggered = headerType == 0x02 && len(raw) < protocol.HeaderSize+4
		}
		if triggered {
			c.busyUntil = c.clock.Now().Add(2 * time.Second)
			c.bus.Emit(oracle.Event{
				At:       c.clock.Now(),
				Device:   c.profile.Index,
				Kind:     oracle.MACParsingFault,
				Cmd:      byte(bug), // discriminates the MAC fault family
				Duration: 2 * time.Second,
				Detail:   bug.String(),
			})
			return true
		}
	}
	return false
}
