package device

import (
	"fmt"
	"io"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/security"
)

// S0Channel is one endpoint of a Security-0 protected link: the legacy
// AES-128 transport of §II-A1. Each protected transmission runs the real
// S0 exchange over the air — NONCE_GET, NONCE_REPORT, MESSAGE
// ENCAPSULATION — so a sniffer sees exactly the frames the paper's
// analysis (and the Fouladi/Ghanoun attack) works with.
type S0Channel struct {
	node *Node
	keys security.S0Keys
	rng  io.Reader

	// issued holds nonces this endpoint handed out, keyed by their first
	// byte (the S0 nonce identifier).
	issued map[byte][]byte
	// pendingNonce buffers the peer nonce received for our next send.
	pendingNonce []byte
	// inbox receives decapsulated payloads.
	inbox [][]byte
}

// NewS0Channel wraps a node with S0 protection under the network key.
func NewS0Channel(node *Node, networkKey []byte, rng io.Reader) (*S0Channel, error) {
	keys, err := security.DeriveS0Keys(networkKey)
	if err != nil {
		return nil, err
	}
	return &S0Channel{node: node, keys: keys, rng: rng, issued: make(map[byte][]byte)}, nil
}

// HandleFrame processes S0 protocol frames addressed to this endpoint. It
// returns true when the frame was consumed.
func (s *S0Channel) HandleFrame(f *protocol.Frame) bool {
	payload := f.Payload
	if len(payload) < 2 || cmdclass.ClassID(payload[0]) != cmdclass.ClassSecurity0 {
		return false
	}
	switch cmdclass.CommandID(payload[1]) {
	case cmdclass.CmdS0NonceGet:
		nonce, err := security.NewS0Nonce(s.rng)
		if err != nil {
			return true
		}
		s.issued[nonce[0]] = nonce
		reply := append([]byte{byte(cmdclass.ClassSecurity0), byte(cmdclass.CmdS0NonceReport)}, nonce...)
		_ = s.node.Send(f.Src, reply)
		return true

	case cmdclass.CmdS0NonceReport:
		if len(payload) == 2+security.S0NonceSize {
			s.pendingNonce = append([]byte{}, payload[2:]...)
		}
		return true

	case cmdclass.CmdS0MessageEncap:
		if len(payload) < 2+security.S0NonceSize+1+security.S0MACSize {
			return true
		}
		nonceID := payload[len(payload)-1-security.S0MACSize]
		nonce, ok := s.issued[nonceID]
		if !ok {
			return true // unknown or already-used nonce
		}
		delete(s.issued, nonceID)
		plain, err := security.S0Decapsulate(s.keys, nonce, s.header(f.Src, f.Dst), payload)
		if err != nil {
			return true // forged or corrupted
		}
		s.inbox = append(s.inbox, plain)
		return true
	}
	return false
}

// header binds the MAC context into the S0 MAC, both directions agreeing.
func (s *S0Channel) header(src, dst protocol.NodeID) []byte {
	return []byte{0x81, byte(src), byte(dst)}
}

// SendSecured runs the full S0 exchange to deliver plaintext to dst:
// request a nonce, wait for the report (the caller advances the clock via
// the synchronous radio), encapsulate, transmit.
func (s *S0Channel) SendSecured(dst protocol.NodeID, plaintext []byte) error {
	s.pendingNonce = nil
	if err := s.node.Send(dst, []byte{byte(cmdclass.ClassSecurity0), byte(cmdclass.CmdS0NonceGet)}); err != nil {
		return err
	}
	if s.pendingNonce == nil {
		return fmt.Errorf("device: S0 peer %s sent no nonce", dst)
	}
	senderNonce, err := security.NewS0Nonce(s.rng)
	if err != nil {
		return err
	}
	encap, err := security.S0Encapsulate(s.keys, senderNonce, s.pendingNonce,
		s.header(s.node.ID(), dst), plaintext)
	if err != nil {
		return err
	}
	s.pendingNonce = nil
	return s.node.Send(dst, encap)
}

// Received drains the decapsulated inbox.
func (s *S0Channel) Received() [][]byte {
	out := s.inbox
	s.inbox = nil
	return out
}
