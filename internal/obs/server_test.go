package obs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"zcover/internal/obs"
	"zcover/internal/telemetry"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("campaign_packets_total").Add(42)
	tl := obs.NewTimeline()
	tl.StartWorker(0)
	tl.Phase(0, "job", obs.PhaseFuzz)

	srv, err := obs.NewServer("127.0.0.1:0", reg, tl)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "campaign_packets_total 42") {
		t.Errorf("/metrics = %d, missing counter:\n%s", code, body)
	}
	code, body := get(t, base+"/timeline")
	if code != http.StatusOK {
		t.Fatalf("/timeline = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/timeline body does not parse: %v", err)
	}
	if len(snap.Workers) != 1 {
		t.Errorf("/timeline workers = %d, want 1", len(snap.Workers))
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d, not a pprof index", code)
	}
}

func TestServerNilTimeline(t *testing.T) {
	srv, err := obs.NewServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	code, body := get(t, "http://"+srv.Addr()+"/timeline")
	if code != http.StatusOK {
		t.Fatalf("/timeline with nil timeline = %d", code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
}

func TestServerBadAddrFailsSynchronously(t *testing.T) {
	if _, err := obs.NewServer("256.0.0.1:bad", nil, nil); err == nil {
		t.Fatal("bad address accepted; want synchronous bind error")
	}
	// An occupied port must also fail at construction, not mid-campaign.
	srv, err := obs.NewServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close(context.Background())
	if _, err := obs.NewServer(srv.Addr(), nil, nil); err == nil {
		t.Fatalf("second bind of %s accepted; want error", srv.Addr())
	}
}

func TestServerCloseGraceful(t *testing.T) {
	srv, err := obs.NewServer("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/healthz", srv.Addr())); err == nil {
		t.Error("server still answering after Close")
	}
	var nilSrv *obs.Server
	if err := nilSrv.Close(ctx); err != nil {
		t.Errorf("nil server Close: %v", err)
	}
}
