package fuzz

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"zcover/internal/oracle"
)

// FuzzReadLog feeds arbitrary bytes to the bug-log reader. Accepted logs
// must survive a re-marshal round trip: serialising the parsed entries and
// reading them back yields the same entries, so nothing is silently dropped
// or reinterpreted between a write and a later replay.
func FuzzReadLog(f *testing.F) {
	var buf bytes.Buffer
	res := &Result{
		Strategy: StrategyFull,
		Device:   "D1",
		Findings: []Finding{{
			Signature:      "host-crash/0x9F/0x01",
			TriggerPayload: []byte{0x9F, 0x01, 0xFE},
			Packets:        338,
			Elapsed:        7 * time.Minute,
			Event:          oracle.Event{Kind: oracle.HostCrash, Class: 0x9F, Cmd: 0x01, Confidence: oracle.ConfidenceSuspect},
		}},
	}
	if err := WriteLog(&buf, res); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}\n{}"))
	f.Add([]byte(`{"signature":"x","cmdcl":1}`))
	f.Add([]byte("\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out strings.Builder
		enc := json.NewEncoder(&out)
		for _, e := range entries {
			if err := enc.Encode(e); err != nil {
				t.Fatalf("accepted entry does not re-marshal: %v", err)
			}
		}
		again, err := ReadLog(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("re-marshalled log does not parse: %v", err)
		}
		if !reflect.DeepEqual(entries, again) {
			t.Fatalf("log round trip mismatch:\n got %#v\nwant %#v", again, entries)
		}
	})
}
