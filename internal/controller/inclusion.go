package controller

import (
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/device"
	"zcover/internal/protocol"
)

// Over-the-air inclusion (the controller side). The host asks the
// controller to enter add-node mode (Serial API ADD_NODE_TO_NETWORK or the
// hub app's "add device"); the controller then listens promiscuously for
// a joining device's NIF broadcast, assigns the next free node ID, records
// the device, and answers with ASSIGN_IDS.

// AddNodeWindow is how long add-node mode stays armed by default.
const AddNodeWindow = 60 * time.Second

// AddNodeMode arms inclusion for the window. While armed, the radio
// accepts foreign-home broadcasts (the joining device does not share the
// network's home ID yet).
func (c *Controller) AddNodeMode(window time.Duration) {
	if window <= 0 {
		window = AddNodeWindow
	}
	c.inclusionUntil = c.clock.Now().Add(window)
	c.node.SetLearnMode(true)
	c.clock.Schedule(window, func() {
		if !c.inclusionActive() {
			c.node.SetLearnMode(false)
		}
	})
}

// inclusionActive reports whether add-node mode is armed.
func (c *Controller) inclusionActive() bool {
	return c.clock.Now().Before(c.inclusionUntil)
}

// RemoveNodeMode arms exclusion for the window: the next device that
// broadcasts its NIF in learn mode is removed from the table and told to
// reset to factory defaults (node ID 0, its own random home ID again —
// modelled as adopting the unassigned ID).
func (c *Controller) RemoveNodeMode(window time.Duration) {
	if window <= 0 {
		window = AddNodeWindow
	}
	c.exclusionUntil = c.clock.Now().Add(window)
	c.node.SetLearnMode(true)
	c.clock.Schedule(window, func() {
		if !c.inclusionActive() && !c.exclusionActive() {
			c.node.SetLearnMode(false)
		}
	})
}

// exclusionActive reports whether remove-node mode is armed.
func (c *Controller) exclusionActive() bool {
	return c.clock.Now().Before(c.exclusionUntil)
}

// handleLeave processes a NIF broadcast while remove-node mode is armed:
// the announcing device is excluded.
func (c *Controller) handleLeave(src protocol.NodeID) {
	if !src.IsUnicast() || src == c.node.ID() {
		return
	}
	if !c.table.Delete(src) {
		return // not ours
	}
	delete(c.wakeupStore, src)
	delete(c.sessions, src)
	c.exclusionUntil = time.Time{}
	c.node.SetLearnMode(false)
	// ASSIGN_IDS with node 0: "you are no longer part of any network".
	payload := []byte{
		byte(cmdclass.ClassZWaveProtocol), byte(cmdclass.CmdProtoAssignIDs),
		0x00, 0x00, 0x00, 0x00, 0x00,
	}
	_ = c.node.Send(protocol.NodeBroadcast, payload)
}

// LastIncluded reports the node ID assigned by the most recent inclusion
// (zero when none happened).
func (c *Controller) LastIncluded() protocol.NodeID { return c.lastIncluded }

// handleJoin processes a NIF broadcast while add-node mode is armed.
func (c *Controller) handleJoin(params []byte) {
	// NIF payload layout after class+cmd: capability, security, properties,
	// basic, generic, specific, classes...
	if len(params) < 6 {
		return
	}
	newID := c.nextFreeNodeID()
	if newID == protocol.NodeUnassigned {
		return // table full
	}
	rec := NodeRecord{
		ID:         newID,
		Capability: params[0],
		Security:   params[1],
		Basic:      params[3],
		Generic:    params[4],
		Specific:   params[5],
	}
	for _, b := range params[6:] {
		rec.Classes = append(rec.Classes, cmdclass.ClassID(b))
	}
	c.table.Put(rec)
	c.lastIncluded = newID
	c.inclusionUntil = time.Time{} // one join per arming
	c.node.SetLearnMode(false)
	_ = c.node.Send(protocol.NodeBroadcast, device.AssignIDsPayload(newID, c.profile.Home))
}

// nextFreeNodeID allocates the lowest unused unicast node ID.
func (c *Controller) nextFreeNodeID() protocol.NodeID {
	used := make(map[protocol.NodeID]bool)
	for _, id := range c.table.IDs() {
		used[id] = true
	}
	for id := protocol.NodeID(2); id <= protocol.MaxUnicastNode; id++ {
		if !used[id] {
			return id
		}
	}
	return protocol.NodeUnassigned
}
