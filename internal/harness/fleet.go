package harness

import (
	"zcover/internal/fleet"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// FleetOutcome is one fleet campaign's result: exactly one of Campaign
// (ZCover jobs) or Baseline (VFuzz jobs) is set.
type FleetOutcome struct {
	Campaign *Campaign
	Baseline *fuzz.Result
}

// Fuzz returns the job's fuzzing result regardless of kind.
func (o FleetOutcome) Fuzz() *fuzz.Result {
	if o.Baseline != nil {
		return o.Baseline
	}
	if o.Campaign != nil {
		return o.Campaign.Fuzz
	}
	return nil
}

// RunFleetJob is the canonical fleet.Runner: it executes one job spec
// against the worker's private testbed, streaming live metrics into the
// pool. All experiment drivers schedule through it.
func RunFleetJob(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (FleetOutcome, error) {
	onFinding := func(fuzz.Finding) { obs.Finding() }
	if job.Baseline {
		res, err := RunVFuzzObserved(tb, job.Budget, job.Seed, onFinding)
		if err != nil {
			return FleetOutcome{}, err
		}
		obs.Packets(res.PacketsSent)
		obs.SimTime(res.Elapsed)
		return FleetOutcome{Baseline: res}, nil
	}
	c, err := RunZCoverObserved(tb, job.Strategy, job.Budget, job.Seed, onFinding)
	if err != nil {
		return FleetOutcome{}, err
	}
	obs.Packets(c.Fuzz.PacketsSent)
	obs.SimTime(c.Fuzz.Elapsed)
	return FleetOutcome{Campaign: c}, nil
}

// runCampaigns executes the jobs through the fleet with all-or-nothing
// semantics: every table needs every row, so the first failed job's error
// (in job order, deterministically) aborts the driver. Successful outcomes
// come back index-aligned with jobs.
func runCampaigns(jobs []fleet.Job, cfg fleet.Config) ([]FleetOutcome, error) {
	results := fleet.Run(jobs, RunFleetJob, cfg)
	if err := fleet.FirstError(results); err != nil {
		return nil, err
	}
	outs := make([]FleetOutcome, len(results))
	for i := range results {
		outs[i] = results[i].Value
	}
	return outs, nil
}
