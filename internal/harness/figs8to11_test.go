package harness

import (
	"strings"
	"testing"
)

func TestFigs8to11Views(t *testing.T) {
	views, err := Figs8to11()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 4 {
		t.Fatalf("views = %d, want 4 (Figs 8-11)", len(views))
	}
	byFig := map[int]MemoryAttackView{}
	for _, v := range views {
		byFig[v.Figure] = v
		if !strings.Contains(v.Before, "Door Lock") {
			t.Errorf("fig %d: pristine view missing the lock:\n%s", v.Figure, v.Before)
		}
	}

	// Fig 8: the lock's stored type changes.
	if v := byFig[8]; strings.Contains(v.After, "Door Lock") {
		t.Errorf("fig 8: lock type unchanged:\n%s", v.After)
	}
	// Fig 9: rogue controllers 10 and 200 appear.
	if v := byFig[9]; !strings.Contains(v.After, "10 ") || !strings.Contains(v.After, "200") {
		t.Errorf("fig 9: rogue IDs missing:\n%s", v.After)
	}
	// Fig 10: both slaves vanish.
	if v := byFig[10]; strings.Contains(v.After, "Door Lock") || strings.Contains(v.After, "Binary Switch") {
		t.Errorf("fig 10: slaves still present:\n%s", v.After)
	}
	// Fig 11: the table holds only fake devices (plus self).
	if v := byFig[11]; strings.Contains(v.After, "Door Lock") ||
		!strings.Contains(v.After, "10 ") || !strings.Contains(v.After, "200") {
		t.Errorf("fig 11: overwrite not visible:\n%s", v.After)
	}
	// Rendered output embeds payload and both views.
	s := byFig[8].String()
	for _, want := range []string{"Figure 8", "01 0D 02", "before", "after"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered view missing %q", want)
		}
	}
}
