// IDS remediation walkthrough: the paper's §V-B proposes a lightweight
// intrusion detection system for legacy devices that cannot be patched.
// This example trains the model-based monitor on normal smart-home
// chatter, replays the Fig. 2 memory-tampering attack, and shows that
// while the vulnerable controller processes the packet silently, the
// monitor raises high-severity alarms the homeowner would see.
package main

import (
	"fmt"
	"log"
	"time"

	"zcover"
	"zcover/internal/ids"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

func main() {
	tb, err := zcover.NewTestbed("D6", 7)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy the monitor and train it on two minutes of normal traffic.
	monitor := ids.New(tb.Medium, tb.Region, tb.Home())
	tb.ScheduleTraffic(12, 10*time.Second)
	monitor.Train(2*time.Minute + time.Second)
	fmt.Printf("monitor trained: %d sources learned, %d frames observed\n\n",
		len(monitor.KnownSources()), monitor.FramesSeen())

	// Normal operation raises nothing.
	tb.ScheduleTraffic(6, 10*time.Second)
	tb.Clock.Advance(time.Minute + time.Second)
	fmt.Printf("after 1 min of normal traffic: %d alerts\n\n", len(monitor.Alerts()))

	// The Fig. 2 attack: one unencrypted packet erases the lock.
	fmt.Println("attacker injects the lock-removal packet [01 0D 02]...")
	d := dongle.New(tb.Medium, tb.Region)
	if _, err := d.SendAndObserve(tb.Home(), scan.AttackerNodeID, testbed.ControllerID,
		[]byte{0x01, 0x0D, testbed.LockID}, dongle.DefaultResponseWindow); err != nil {
		log.Fatal(err)
	}
	if _, ok := tb.Controller.Table().Get(testbed.LockID); !ok {
		fmt.Println("-> the controller silently dropped the lock from memory")
	}

	fmt.Printf("\nmonitor raised %d alerts:\n", len(monitor.Alerts()))
	for _, a := range monitor.Alerts() {
		fmt.Printf("  %s\n", a)
	}
	fmt.Println("\nWith the monitor deployed, the intrusion is no longer silent:")
	fmt.Println("the homeowner gets an alarm the moment the hidden management")
	fmt.Println("class appears on the air — before trusting the smart lock again.")
}
