package corpus

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/telemetry"
	"zcover/internal/zcover/minimize"
	"zcover/internal/zcover/mutate"
)

// newManager builds a manager over a couple of real specification classes.
func newManager(t *testing.T, seed int64) *Manager {
	t.Helper()
	reg, err := cmdclass.Load()
	if err != nil {
		t.Fatal(err)
	}
	var queue []*cmdclass.Class
	for _, id := range []cmdclass.ClassID{0x25, 0x20, 0x86} {
		cls, ok := reg.Get(id)
		if !ok {
			t.Fatalf("class 0x%02X not in registry", byte(id))
		}
		queue = append(queue, cls)
	}
	return NewManager(mutate.New(mutate.Semantics{Controller: 0x01}, seed), queue, seed)
}

func TestAdmitAssignsDenseIDsAndEnergy(t *testing.T) {
	m := newManager(t, 7)
	s0, err := m.Admit([]byte{0x25, 0x01, 0xFF}, 3, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.Admit([]byte{0x20, 0x01}, 100, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s0.ID != 0 || s1.ID != 1 || m.Len() != 2 {
		t.Fatalf("IDs = %d,%d len=%d", s0.ID, s1.ID, m.Len())
	}
	if s0.Energy != 5 {
		t.Fatalf("energy for 3 features = %d, want 5", s0.Energy)
	}
	if s1.Energy != maxEnergy {
		t.Fatalf("energy not capped: %d", s1.Energy)
	}
	// Admit copies the payload.
	p := []byte{0x86, 0x13, 0x01}
	s2, _ := m.Admit(p, 1, "", nil)
	p[2] = 0xEE
	if s2.Payload[2] != 0x01 {
		t.Fatal("Admit aliased the caller's payload")
	}
}

func TestVariantsAreDeterministic(t *testing.T) {
	gen := func() [][]byte {
		m := newManager(t, 41)
		s, err := m.Admit([]byte{0x25, 0x01, 0x10, 0x20, 0x30}, 4, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for k := 0; k < 32; k++ {
			out = append(out, append([]byte{}, m.Variant(s, k)...))
		}
		return out
	}
	a, b := gen(), gen()
	for k := range a {
		if !bytes.Equal(a[k], b[k]) {
			t.Fatalf("variant %d diverged: % X vs % X", k, a[k], b[k])
		}
	}
}

func TestHavocVariantsPreserveCommandVector(t *testing.T) {
	m := newManager(t, 42)
	s, err := m.Admit([]byte{0x25, 0x01, 0x10, 0x20, 0x30, 0x40}, 2, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	distinct := false
	for k := 0; k < 64; k++ {
		if k%4 == 3 {
			continue // spec-stream draws may switch commands by design
		}
		v := m.Variant(s, k)
		if len(v) < 2 {
			t.Fatalf("variant %d shorter than CMDCL+CMD: % X", k, v)
		}
		if v[0] != 0x25 || v[1] != 0x01 {
			t.Fatalf("variant %d rewrote the command vector: % X", k, v)
		}
		if len(v) > maxVariantLen {
			t.Fatalf("variant %d overlong: %d bytes", k, len(v))
		}
		if !bytes.Equal(v, s.Payload) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("no havoc variant differed from the seed")
	}
}

func TestStreamVariantsReuseMutateOperators(t *testing.T) {
	m := newManager(t, 43)
	s, err := m.Admit([]byte{0x25, 0x01}, 1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	// k ≡ 3 (mod 4) draws continue the class's mutation stream.
	v := m.Variant(s, 3)
	if len(v) < 1 || v[0] != 0x25 {
		t.Fatalf("stream variant left the seed's class: % X", v)
	}
}

func TestJournalReplayValidation(t *testing.T) {
	dir := t.TempDir()
	spec := map[string]any{"target": "D1", "seed": 7}

	// First run: admit three seeds.
	j, err := OpenJournal(dir, "covfuzz-D1", spec, false)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, 7)
	m.AttachJournal(j)
	payloads := [][]byte{{0x25, 0x01}, {0x20, 0x01, 0xFF}, {0x86, 0x13, 0xE0}}
	for i, p := range payloads {
		if _, err := m.Admit(p, i+1, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Resume: the journal must replay the prefix and accept an identical
	// re-admission sequence, then append new seeds.
	j2, err := OpenJournal(dir, "covfuzz-D1", spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Replayed() != 3 {
		t.Fatalf("Replayed = %d, want 3", j2.Replayed())
	}
	m2 := newManager(t, 7)
	m2.AttachJournal(j2)
	for i, p := range payloads {
		s, err := m2.Admit(p, i+1, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != i {
			t.Fatalf("replayed seed ID = %d, want %d", s.ID, i)
		}
	}
	if _, err := m2.Admit([]byte{0x70, 0x04, 0x01}, 2, "", nil); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 4 {
		t.Fatalf("corpus size after resume = %d, want 4", m2.Len())
	}
}

func TestJournalRefusesDivergentReplay(t *testing.T) {
	dir := t.TempDir()
	spec := "key"
	j, err := OpenJournal(dir, "covfuzz-D2", spec, false)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, 9)
	m.AttachJournal(j)
	if _, err := m.Admit([]byte{0x25, 0x01}, 1, "", nil); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, "covfuzz-D2", spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	m2 := newManager(t, 9)
	m2.AttachJournal(j2)
	if _, err := m2.Admit([]byte{0x25, 0x02}, 1, "", nil); err == nil {
		t.Fatal("divergent replay admission was accepted")
	}
}

func TestJournalRefusesSpecDriftAndOverwrite(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, "covfuzz-D3", "spec-a", false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(dir, "covfuzz-D3", "spec-a", false); err == nil {
		t.Fatal("existing journal opened without resume")
	}
	if _, err := OpenJournal(dir, "covfuzz-D3", "spec-b", true); err == nil {
		t.Fatal("journal resumed under a different spec")
	}
	if filepath.Dir(j.Path()) != dir {
		t.Fatalf("journal path %s not under %s", j.Path(), dir)
	}
}

func TestJournalPersistsTraceAndSignature(t *testing.T) {
	dir := t.TempDir()
	trace := []telemetry.FrameRecord{{
		Seq: 9, From: "attacker", Raw: []byte{0x01, 0x02},
		Airtime: 3 * time.Millisecond, Security: telemetry.SecurityNone, Targets: 2,
	}}
	j, err := OpenJournal(dir, "covfuzz-D4", "k", false)
	if err != nil {
		t.Fatal(err)
	}
	m := newManager(t, 11)
	m.AttachJournal(j)
	if _, err := m.Admit([]byte{0x25, 0x01, 0x07}, 2, "service-hang/0x25/0x01", trace); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2, err := OpenJournal(dir, "covfuzz-D4", "k", true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s := j2.replay[0]
	if s.Signature != "service-hang/0x25/0x01" {
		t.Fatalf("signature = %q", s.Signature)
	}
	if len(s.Trace) != 1 || s.Trace[0].Seq != 9 || !bytes.Equal(s.Trace[0].Raw, []byte{0x01, 0x02}) {
		t.Fatalf("trace did not round-trip: %+v", s.Trace)
	}
	if s.Trace[0].Airtime != 3*time.Millisecond || s.Trace[0].Targets != 2 {
		t.Fatalf("trace fields lost: %+v", s.Trace[0])
	}
}

func TestMinimizerReducesFindingSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("minimisation probes build fresh testbeds")
	}
	m := newManager(t, 71)
	m.SetMinimizer(minimize.New("D1", 71))
	// Bug 09: any 0x7A/0x01 with trailing bytes hangs D1; the minimal
	// trigger is 0x7A 0x01 0x00 (see minimize's own tests).
	s, err := m.Admit([]byte{0x7A, 0x01, 0xAA, 0xBB, 0xCC, 0xDD}, 5, "service-hang/0x7A/0x01", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Minimized {
		t.Fatal("finding seed was not minimised")
	}
	if want := []byte{0x7A, 0x01, 0x00}; !bytes.Equal(s.Payload, want) {
		t.Fatalf("minimal payload = % X, want % X", s.Payload, want)
	}
	if !bytes.Equal(s.Original, []byte{0x7A, 0x01, 0xAA, 0xBB, 0xCC, 0xDD}) {
		t.Fatalf("original payload lost: % X", s.Original)
	}

	// A coverage-only seed (no signature) is stored as-is.
	s2, err := m.Admit([]byte{0x25, 0x01, 0x10}, 1, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Minimized || s2.Original != nil {
		t.Fatal("coverage-only seed was minimised")
	}
}
