package harness

import (
	"fmt"

	"zcover/internal/oracle"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/scan"
)

// PoCResult is the outcome of replaying one logged trigger against a
// fresh testbed — the "develop proof-of-concept exploits for selected
// critical vulnerabilities" step of the paper's feedback loop, automated.
type PoCResult struct {
	// Entry is the replayed log entry.
	Entry fuzz.LogEntry
	// Reproduced reports whether the same anomaly signature fired again.
	Reproduced bool
	// Observed lists the signatures the replay actually produced.
	Observed []string
}

// VerifyPoCs replays each logged trigger payload against a *fresh*
// instance of its device (the single-packet PoC condition: no fuzzing
// history, just the one injection) and checks that the same anomaly
// reproduces.
func VerifyPoCs(entries []fuzz.LogEntry, seed int64) ([]PoCResult, error) {
	out := make([]PoCResult, 0, len(entries))
	for i, e := range entries {
		payload, err := e.TriggerPayload()
		if err != nil {
			return nil, fmt.Errorf("harness: entry %d: %w", i, err)
		}
		tb, err := testbed.New(e.Device, seed)
		if err != nil {
			return nil, fmt.Errorf("harness: entry %d: %w", i, err)
		}
		var observed []string
		tb.Bus.Subscribe(func(ev oracle.Event) { observed = append(observed, ev.Signature()) })

		d := dongle.New(tb.Medium, tb.Region)
		if _, err := d.SendAndObserve(tb.Home(), scan.AttackerNodeID, testbed.ControllerID,
			payload, dongle.DefaultResponseWindow); err != nil {
			return nil, fmt.Errorf("harness: entry %d: %w", i, err)
		}

		res := PoCResult{Entry: e, Observed: observed}
		for _, sig := range observed {
			if sig == e.Signature {
				res.Reproduced = true
			}
		}
		out = append(out, res)
	}
	return out, nil
}
