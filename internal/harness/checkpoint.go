package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"zcover/internal/checkpoint"
	"zcover/internal/cmdclass"
	"zcover/internal/fleet"
	"zcover/internal/testbed"
	"zcover/internal/zcover/discover"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/scan"
)

// This file is the checkpoint half of the campaign layer: it serialises
// FleetOutcome values into internal/checkpoint journals, resumes and
// shards campaign execution around the fleet, and merges shard journals
// back into complete result sets.
//
// The determinism contract: every job is fully determined by its spec
// (device, strategy, seed, budget, chaos profile/seed), so an outcome
// replayed from a journal is byte-identical to re-executing the job.
// Tables and bug logs rendered from any mix of cached and fresh
// outcomes therefore match an uninterrupted run exactly — the
// kill-anywhere/resume and split-anywhere/merge invariants pinned in
// checkpoint_test.go.

// discoveryRecord is the serialised form of discover.Result. Classes are
// stored as IDs and resolved back against the embedded specification on
// decode, so journals stay small and survive registry-pointer identity.
type discoveryRecord struct {
	Listed            []cmdclass.ClassID `json:"listed,omitempty"`
	Unlisted          []cmdclass.ClassID `json:"unlisted,omitempty"`
	Hidden            []cmdclass.ClassID `json:"hidden,omitempty"`
	ConfirmedCommands []discover.CmdRef  `json:"confirmed_commands,omitempty"`
	Prioritized       []cmdclass.ClassID `json:"prioritized,omitempty"`
	ProbesSent        int                `json:"probes_sent,omitempty"`
}

// campaignRecord is the serialised form of a ZCover Campaign. The fuzz
// result (findings with oracle events and confidence grades, timeline,
// packet counters, simulated elapsed time) marshals directly — every
// field is exported and JSON-exact (durations as nanoseconds, payloads
// as base64, sim timestamps as RFC 3339).
type campaignRecord struct {
	Fingerprint scan.Fingerprint `json:"fingerprint"`
	Discovery   discoveryRecord  `json:"discovery"`
	Fuzz        *fuzz.Result     `json:"fuzz"`
}

// outcomeRecord is the journal body of one FleetOutcome: exactly one of
// the fields is set, mirroring the in-memory invariant.
type outcomeRecord struct {
	Campaign *campaignRecord `json:"campaign,omitempty"`
	Baseline *fuzz.Result    `json:"baseline,omitempty"`
	CovFuzz  *fuzz.CovResult `json:"covfuzz,omitempty"`
}

// classIDs projects a class list to its IDs.
func classIDs(classes []*cmdclass.Class) []cmdclass.ClassID {
	if len(classes) == 0 {
		return nil
	}
	out := make([]cmdclass.ClassID, len(classes))
	for i, c := range classes {
		out[i] = c.ID
	}
	return out
}

// resolveClasses maps IDs back to specification classes: the registry
// first, then the proprietary (hidden) catalogue, then a synthesised
// minimal definition — the same fallback order the discovery phase uses
// when it meets a responding class with no spec entry.
func resolveClasses(reg *cmdclass.Registry, ids []cmdclass.ClassID) []*cmdclass.Class {
	if len(ids) == 0 {
		return nil
	}
	out := make([]*cmdclass.Class, len(ids))
	for i, id := range ids {
		if cls, ok := reg.Get(id); ok {
			out[i] = cls
		} else if cls, ok := cmdclass.HiddenClass(id); ok {
			out[i] = cls
		} else {
			out[i] = &cmdclass.Class{
				ID: id, Name: fmt.Sprintf("PROPRIETARY_0x%02X", byte(id)),
				Category: cmdclass.CategoryManagement, Scope: cmdclass.ScopeController,
			}
		}
	}
	return out
}

// EncodeOutcome serialises one campaign outcome for journaling.
func EncodeOutcome(o FleetOutcome) (json.RawMessage, error) {
	rec := outcomeRecord{Baseline: o.Baseline, CovFuzz: o.CovFuzz}
	if o.Campaign != nil {
		rec.Campaign = &campaignRecord{
			Fingerprint: o.Campaign.Fingerprint,
			Discovery: discoveryRecord{
				Listed:            classIDs(o.Campaign.Discovery.ListedClasses),
				Unlisted:          classIDs(o.Campaign.Discovery.UnlistedSpec),
				Hidden:            classIDs(o.Campaign.Discovery.HiddenConfirmed),
				ConfirmedCommands: o.Campaign.Discovery.ConfirmedCommands,
				Prioritized:       classIDs(o.Campaign.Discovery.Prioritized),
				ProbesSent:        o.Campaign.Discovery.ProbesSent,
			},
			Fuzz: o.Campaign.Fuzz,
		}
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("harness: encoding outcome: %w", err)
	}
	return raw, nil
}

// DecodeOutcome is the EncodeOutcome inverse.
func DecodeOutcome(raw json.RawMessage) (FleetOutcome, error) {
	var rec outcomeRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return FleetOutcome{}, fmt.Errorf("harness: decoding outcome: %w", err)
	}
	out := FleetOutcome{Baseline: rec.Baseline, CovFuzz: rec.CovFuzz}
	if rec.Campaign != nil {
		reg, err := cmdclass.Load()
		if err != nil {
			return FleetOutcome{}, fmt.Errorf("harness: %w", err)
		}
		out.Campaign = &Campaign{
			Fingerprint: rec.Campaign.Fingerprint,
			Discovery: discover.Result{
				ListedClasses:     resolveClasses(reg, rec.Campaign.Discovery.Listed),
				UnlistedSpec:      resolveClasses(reg, rec.Campaign.Discovery.Unlisted),
				HiddenConfirmed:   resolveClasses(reg, rec.Campaign.Discovery.Hidden),
				ConfirmedCommands: rec.Campaign.Discovery.ConfirmedCommands,
				Prioritized:       resolveClasses(reg, rec.Campaign.Discovery.Prioritized),
				ProbesSent:        rec.Campaign.Discovery.ProbesSent,
			},
			Fuzz: rec.Campaign.Fuzz,
		}
	}
	return out, nil
}

// ShardDone reports a sharded campaign invocation that completed its
// subset and journaled it: there is no table to render until the other
// shards' journals are merged. Drivers return it through the error path;
// cmd/experiments recognises it and prints the note instead of failing.
type ShardDone struct {
	// Campaign names the experiment.
	Campaign string
	// Shard is the subset this invocation ran.
	Shard fleet.Shard
	// JobsRun and JobsCached split the shard's jobs by how they were
	// satisfied; JobsTotal is the full unsharded campaign size.
	JobsRun, JobsCached, JobsTotal int
	// Dir is the checkpoint directory holding the journal.
	Dir string
}

// Error implements error.
func (e *ShardDone) Error() string {
	return fmt.Sprintf("harness: %s shard %s complete: %d jobs run, %d resumed from journal (%d of %d campaign jobs); merge all shards with -merge to render",
		e.Campaign, e.Shard, e.JobsRun, e.JobsCached, e.JobsRun+e.JobsCached, e.JobsTotal)
}

// campaignSpec is what SpecHash fingerprints: the experiment name plus
// the complete job list. Any drift — a seed, a budget, a chaos profile,
// job order — changes the hash and refuses stale journals.
type campaignSpec struct {
	Campaign string      `json:"campaign"`
	Jobs     []fleet.Job `json:"jobs"`
}

// bug-log sink (SetBugLog): campaign drivers append every completed
// campaign's findings here as JSON lines, in job order.
var (
	bugLogMu sync.Mutex
	bugLogW  io.Writer
)

// SetBugLog directs every subsequent campaign driver to append its
// outcomes' findings to w as bug-log JSON lines (fuzz.WriteLog format),
// in deterministic job order. Nil disables. Intended for process
// start-up, like SetFleetRecorderDepth.
func SetBugLog(w io.Writer) {
	bugLogMu.Lock()
	defer bugLogMu.Unlock()
	bugLogW = w
}

// writeBugLog appends the outcomes' findings to the configured sink.
func writeBugLog(outs []FleetOutcome) error {
	bugLogMu.Lock()
	defer bugLogMu.Unlock()
	if bugLogW == nil {
		return nil
	}
	for _, o := range outs {
		if res := o.Fuzz(); res != nil {
			if err := fuzz.WriteLog(bugLogW, res); err != nil {
				return err
			}
		}
	}
	return nil
}

// runCheckpointed is runCampaigns with a checkpoint spec: it resumes
// completed jobs from the shard's journal, executes (and journals) the
// rest, and — when sharding — stops after its subset with a ShardDone.
func runCheckpointed(name string, jobs []fleet.Job, cfg fleet.Config) ([]FleetOutcome, error) {
	spec := *cfg.Checkpoint
	hash, err := checkpoint.SpecHash(campaignSpec{Campaign: name, Jobs: jobs})
	if err != nil {
		return nil, err
	}
	if spec.Merge {
		return mergeCampaign(name, jobs, spec.Dir, hash)
	}

	shard := spec.Shard
	shardIdx, shardCnt := 1, 1
	if shard.Enabled() {
		shardIdx, shardCnt = shard.Index, shard.Count
	}
	path := checkpoint.JournalPath(spec.Dir, name, shardIdx, shardCnt)
	manifest := checkpoint.Manifest{
		Campaign: name, SpecHash: hash, TotalJobs: len(jobs),
		ShardIndex: shardIdx, ShardCount: shardCnt,
	}

	var journal *checkpoint.Journal
	cached := make(map[int]FleetOutcome)
	if _, statErr := os.Stat(path); statErr == nil {
		if !spec.Resume {
			return nil, fmt.Errorf("harness: checkpoint journal %s already exists; pass -resume to continue it or remove it to start over", path)
		}
		j, rep, err := checkpoint.Recover(path)
		if err != nil {
			return nil, err
		}
		if err := validateManifest(rep.Manifest, manifest, path); err != nil {
			j.Close()
			return nil, err
		}
		recs, err := rep.ByIndex()
		if err != nil {
			j.Close()
			return nil, err
		}
		// Decode up front: a record that passed its CRC but does not
		// decode is a codec mismatch and must fail the resume, not
		// silently re-run the job.
		for idx, rec := range recs {
			out, err := DecodeOutcome(rec.Body)
			if err != nil {
				j.Close()
				return nil, fmt.Errorf("harness: %s job %d (%s): %w", path, idx, rec.Label, err)
			}
			cached[idx] = out
		}
		journal = j
	} else {
		j, err := checkpoint.Create(path, manifest)
		if err != nil {
			return nil, err
		}
		journal = j
	}
	defer journal.Close()

	owned := shard.Indices(len(jobs))
	subJobs := make([]fleet.Job, len(owned))
	for k, i := range owned {
		subJobs[k] = jobs[i]
	}

	f := fleet.New(subJobs, RunFleetJob, cfg).WithResume(
		func(k int, job fleet.Job) (FleetOutcome, bool) {
			out, ok := cached[owned[k]]
			if ok {
				checkpoint.NoteResumed()
			}
			return out, ok
		},
		func(k int, job fleet.Job, res fleet.Result[FleetOutcome]) error {
			raw, err := EncodeOutcome(res.Value)
			if err != nil {
				return err
			}
			return journal.Append(checkpoint.JobRecord{
				Index: owned[k], Label: job.Label(), Attempts: res.Attempts, Body: raw,
			})
		})
	results := f.Run()
	if err := fleet.FirstError(results); err != nil {
		return nil, err
	}
	if shard.Enabled() {
		ran := 0
		for _, r := range results {
			if !r.Cached {
				ran++
			}
		}
		return nil, &ShardDone{
			Campaign: name, Shard: shard, Dir: spec.Dir,
			JobsRun: ran, JobsCached: len(results) - ran, JobsTotal: len(jobs),
		}
	}
	outs := make([]FleetOutcome, len(results))
	for i := range results {
		outs[i] = results[i].Value
	}
	return outs, nil
}

// CampaignKey identifies a single-campaign checkpoint: every input that
// determines the campaign's output. Two runs with equal keys produce
// byte-identical campaigns, which is what makes replaying a journaled
// outcome sound.
type CampaignKey struct {
	Target       string        `json:"target"`
	Strategy     fuzz.Strategy `json:"strategy"`
	Duration     time.Duration `json:"duration"`
	Seed         int64         `json:"seed"`
	ChaosProfile string        `json:"chaos_profile,omitempty"`
	ChaosSeed    int64         `json:"chaos_seed,omitempty"`
}

// RunZCoverResumable wraps RunZCoverWith in a single-job checkpoint
// journal under dir. A completed campaign already journaled for the same
// key is decoded and returned (resumed=true) without executing anything;
// a journal that exists but holds no completed outcome — the process
// died mid-campaign — re-runs the campaign from its seed and appends the
// outcome. An existing journal is refused unless resume is set.
func RunZCoverResumable(dir string, resume bool, key CampaignKey, tb *testbed.Testbed, opts Options) (*Campaign, bool, error) {
	hash, err := checkpoint.SpecHash(key)
	if err != nil {
		return nil, false, err
	}
	name := "zcover-" + key.Target
	path := checkpoint.JournalPath(dir, name, 1, 1)
	manifest := checkpoint.Manifest{
		Campaign: name, SpecHash: hash, TotalJobs: 1, ShardIndex: 1, ShardCount: 1,
	}
	var journal *checkpoint.Journal
	if _, statErr := os.Stat(path); statErr == nil {
		if !resume {
			return nil, false, fmt.Errorf("harness: checkpoint journal %s already exists; pass -resume to continue it or remove it to start over", path)
		}
		j, rep, err := checkpoint.Recover(path)
		if err != nil {
			return nil, false, err
		}
		if err := validateManifest(rep.Manifest, manifest, path); err != nil {
			j.Close()
			return nil, false, err
		}
		recs, err := rep.ByIndex()
		if err != nil {
			j.Close()
			return nil, false, err
		}
		if rec, ok := recs[0]; ok {
			j.Close()
			out, err := DecodeOutcome(rec.Body)
			if err != nil {
				return nil, false, fmt.Errorf("harness: %s: %w", path, err)
			}
			checkpoint.NoteResumed()
			return out.Campaign, true, nil
		}
		journal = j
	} else {
		j, err := checkpoint.Create(path, manifest)
		if err != nil {
			return nil, false, err
		}
		journal = j
	}
	defer journal.Close()

	c, err := RunZCoverWith(tb, key.Strategy, key.Duration, key.Seed, opts)
	if err != nil {
		return nil, false, err
	}
	raw, err := EncodeOutcome(FleetOutcome{Campaign: c})
	if err != nil {
		return nil, false, err
	}
	if err := journal.Append(checkpoint.JobRecord{Index: 0, Label: name, Attempts: 1, Body: raw}); err != nil {
		return nil, false, err
	}
	return c, false, nil
}

// validateManifest refuses journals written for a different campaign,
// job list, or shard assignment.
func validateManifest(got, want checkpoint.Manifest, path string) error {
	switch {
	case got.Campaign != want.Campaign:
		return fmt.Errorf("harness: %s was written for campaign %q, this run is %q", path, got.Campaign, want.Campaign)
	case got.SpecHash != want.SpecHash:
		return fmt.Errorf("harness: %s was written for a different job list (spec %s, this run %s) — seeds, budgets, or profiles changed", path, got.SpecHash, want.SpecHash)
	case got.TotalJobs != want.TotalJobs:
		return fmt.Errorf("harness: %s covers %d jobs, this run has %d", path, got.TotalJobs, want.TotalJobs)
	case got.ShardIndex != want.ShardIndex || got.ShardCount != want.ShardCount:
		return fmt.Errorf("harness: %s is shard %d/%d, this run is %d/%d", path, got.ShardIndex, got.ShardCount, want.ShardIndex, want.ShardCount)
	}
	return nil
}

// mergeCampaign renders a campaign purely from the shard journals in
// dir: every job of the full list must be present in exactly one (or
// byte-identically in several) journal, nothing executes.
func mergeCampaign(name string, jobs []fleet.Job, dir, hash string) ([]FleetOutcome, error) {
	paths, err := checkpoint.ListJournals(dir, name)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("harness: no %s journals in %s to merge", name, dir)
	}
	merged := make(map[int]checkpoint.JobRecord)
	for _, path := range paths {
		rep, err := checkpoint.Load(path)
		if err != nil {
			return nil, err
		}
		m := rep.Manifest
		if m.Campaign != name || m.SpecHash != hash || m.TotalJobs != len(jobs) {
			return nil, fmt.Errorf("harness: %s does not belong to this %s campaign (spec %s, want %s)",
				path, name, m.SpecHash, hash)
		}
		recs, err := rep.ByIndex()
		if err != nil {
			return nil, err
		}
		for idx, rec := range recs {
			if prev, ok := merged[idx]; ok {
				if string(prev.Body) != string(rec.Body) {
					return nil, fmt.Errorf("harness: job %d (%s) has conflicting outcomes across shard journals", idx, rec.Label)
				}
				continue
			}
			merged[idx] = rec
		}
	}
	var missing []string
	for i, job := range jobs {
		if _, ok := merged[i]; !ok {
			missing = append(missing, job.Label())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("harness: merge incomplete: %d of %d jobs missing from journals in %s (first missing: %s) — run the remaining shards first",
			len(missing), len(jobs), dir, missing[0])
	}
	outs := make([]FleetOutcome, len(jobs))
	for i := range jobs {
		out, err := DecodeOutcome(merged[i].Body)
		if err != nil {
			return nil, fmt.Errorf("harness: job %d (%s): %w", i, merged[i].Label, err)
		}
		checkpoint.NoteResumed()
		outs[i] = out
	}
	return outs, nil
}
