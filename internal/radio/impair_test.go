package radio

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"zcover/internal/vtime"
)

// outcomes transmits n frames from "tx" and returns, per named receiver,
// the concatenated bytes it observed (lost frames leave gaps, corrupted
// frames differ) — a fingerprint of that receiver's impairment stream.
func outcomes(t *testing.T, receivers []string, n int, seed int64) map[string][][]byte {
	t.Helper()
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	tx := m.Attach("tx", RegionEU)
	got := make(map[string][][]byte)
	var mu sync.Mutex
	for _, name := range receivers {
		name := name
		r := m.Attach(name, RegionEU)
		r.SetReceiver(func(c Capture) {
			mu.Lock()
			got[name] = append(got[name], append([]byte(nil), c.Raw...))
			mu.Unlock()
		})
	}
	m.SetImpairments(0.3, 0.2, seed)
	for i := 0; i < n; i++ {
		frame := []byte{0xDE, 0xAD, byte(i), 0x01, 0x02, 0x03, 0x04, 0x0A, 0xBE, 0xEF}
		if err := tx.Transmit(frame); err != nil {
			t.Fatal(err)
		}
		clock.RunUntilIdle()
	}
	return got
}

// TestImpairmentStreamsPerReceiver is the regression test for the shared
// impairment RNG: a receiver's loss/noise outcomes must depend only on the
// seed and its own name, so attaching an unrelated transceiver (such as a
// chaos interceptor's observer, or a sniffer) cannot shift them.
func TestImpairmentStreamsPerReceiver(t *testing.T) {
	base := outcomes(t, []string{"a", "b"}, 200, 99)
	// Same seed, but with an extra receiver attached between a and b.
	more := outcomes(t, []string{"a", "extra", "b"}, 200, 99)
	for _, name := range []string{"a", "b"} {
		if !reflect.DeepEqual(base[name], more[name]) {
			t.Errorf("receiver %q outcomes shifted when %q attached: %d vs %d frames",
				name, "extra", len(base[name]), len(more[name]))
		}
	}
	// Different seed must actually change something.
	other := outcomes(t, []string{"a", "b"}, 200, 100)
	if reflect.DeepEqual(base["a"], other["a"]) && reflect.DeepEqual(base["b"], other["b"]) {
		t.Error("impairment outcomes identical across different seeds")
	}
}

// TestInterceptorPassthroughKeepsDelivery checks that an interceptor
// returning the frame unchanged with no delay is invisible to receivers.
func TestInterceptorPassthroughKeepsDelivery(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	tx := m.Attach("tx", RegionEU)
	rx := m.Attach("rx", RegionEU)
	var got []Capture
	rx.SetReceiver(func(c Capture) { got = append(got, c) })
	m.SetInterceptor(func(from, to string, raw []byte) []Delivery {
		if from != "tx" || to != "rx" {
			t.Errorf("interceptor saw link %s->%s", from, to)
		}
		return []Delivery{{Raw: raw}}
	})
	frame := []byte{1, 2, 3, 4, 5}
	if err := tx.Transmit(frame); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	if len(got) != 1 || !bytes.Equal(got[0].Raw, frame) {
		t.Fatalf("passthrough delivery mangled: %v", got)
	}
}

// TestInterceptorDropDuplicateDelay exercises the three interceptor verbs:
// nil drops, two deliveries duplicate, and a positive delay arrives later
// on the simulated clock.
func TestInterceptorDropDuplicateDelay(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	tx := m.Attach("tx", RegionEU)
	rx := m.Attach("rx", RegionEU)
	var got []Capture
	rx.SetReceiver(func(c Capture) { got = append(got, c) })

	mode := "drop"
	m.SetInterceptor(func(from, to string, raw []byte) []Delivery {
		switch mode {
		case "drop":
			return nil
		case "dup":
			return []Delivery{{Raw: raw}, {Delay: 2 * time.Millisecond, Raw: raw}}
		default:
			return []Delivery{{Delay: 50 * time.Millisecond, Raw: raw}}
		}
	})

	frame := []byte{9, 9, 9}
	if err := tx.Transmit(frame); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	if len(got) != 0 {
		t.Fatalf("dropped frame delivered: %v", got)
	}

	mode = "dup"
	if err := tx.Transmit(frame); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	if len(got) != 2 {
		t.Fatalf("duplicate mode delivered %d frames, want 2", len(got))
	}
	if !got[1].At.After(got[0].At) {
		t.Errorf("duplicate copy not delayed: %v vs %v", got[0].At, got[1].At)
	}

	got = nil
	mode = "delay"
	start := clock.Now()
	if err := tx.Transmit(frame); err != nil {
		t.Fatal(err)
	}
	clock.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delayed frame count = %d, want 1", len(got))
	}
	if d := got[0].At.Sub(start); d < 50*time.Millisecond {
		t.Errorf("delayed delivery arrived after %v, want >= 50ms + airtime", d)
	}
}

// TestInterceptorConcurrentHammer drives the interceptor pipeline from
// many goroutines under -race: transmissions, interceptor rewrites with
// delays and duplicates, and attach/detach churn all at once.
func TestInterceptorConcurrentHammer(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	m.SetImpairments(0.1, 0.1, 7)
	var intercepted int64
	var imu sync.Mutex
	m.SetInterceptor(func(from, to string, raw []byte) []Delivery {
		imu.Lock()
		intercepted++
		n := intercepted
		imu.Unlock()
		switch n % 4 {
		case 0:
			return nil
		case 1:
			cp := append([]byte(nil), raw...)
			cp[0] ^= 0x80
			return []Delivery{{Raw: cp}}
		case 2:
			return []Delivery{{Raw: raw}, {Delay: time.Millisecond, Raw: raw}}
		default:
			return []Delivery{{Delay: 3 * time.Millisecond, Raw: raw}}
		}
	})
	rx := m.Attach("rx", RegionEU)
	rx.SetReceiver(func(Capture) {})

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			trx := m.Attach(fmt.Sprintf("w%d", w), RegionEU)
			trx.SetReceiver(func(Capture) {})
			for i := 0; i < 50; i++ {
				_ = trx.Transmit([]byte{byte(w), byte(i), 0xAA})
				trx.Stats()
			}
			trx.Detach()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			clock.RunUntilIdle()
			if intercepted == 0 {
				t.Fatal("interceptor never invoked")
			}
			return
		default:
			clock.Advance(time.Millisecond)
		}
	}
}
