package protocol

import "strconv"

// HeaderType is the MAC frame kind carried in frame-control byte P1.
type HeaderType int

// G.9959 header types. Enum starts at 1; the zero value is invalid.
const (
	// HeaderSinglecast is a frame addressed to one node (or broadcast).
	HeaderSinglecast HeaderType = iota + 1
	// HeaderMulticast is a frame addressed to a node mask.
	HeaderMulticast
	// HeaderAck is a transfer acknowledgement.
	HeaderAck
	// HeaderRouted is a frame carrying a source-routing header.
	HeaderRouted
)

// String implements fmt.Stringer.
func (t HeaderType) String() string {
	switch t {
	case HeaderSinglecast:
		return "singlecast"
	case HeaderMulticast:
		return "multicast"
	case HeaderAck:
		return "ack"
	case HeaderRouted:
		return "routed"
	default:
		return "HeaderType(" + strconv.Itoa(int(t)) + ")"
	}
}

// Frame-control wire encoding. P1 carries the header type in its low nibble
// and option flags in the high nibble; P2 carries the 4-bit sequence number
// and beam/routing flags, following G.9959 §8.1.3.
const (
	p1HeaderMask   = 0x0F
	p1AckRequested = 0x40
	p1LowPower     = 0x20
	p1SpeedMod     = 0x10

	p2SeqMask    = 0x0F
	p2BeamWakeup = 0x10
	p2RoutedFlag = 0x80

	p1Singlecast = 0x01
	p1Multicast  = 0x02
	p1Ack        = 0x03
	p1RoutedVal  = 0x08
)

// FrameControl models the two frame-control bytes (P1, P2) of the MAC
// header. The zero value is not a valid singlecast control word; use
// NewFrameControl or fill Header explicitly.
type FrameControl struct {
	// Header selects the MAC frame kind.
	Header HeaderType
	// AckRequested asks the receiver to return a transfer ack.
	AckRequested bool
	// LowPower marks a reduced-power transmission.
	LowPower bool
	// SpeedModified marks a frame sent at a non-default data rate.
	SpeedModified bool
	// Beam marks a frame preceded by a wake-up beam (FLiRS devices).
	Beam bool
	// Sequence is the 4-bit MAC sequence number.
	Sequence byte
}

// NewFrameControl returns a singlecast control word with the ack bit set,
// which is how ordinary Z-Wave application traffic is sent.
func NewFrameControl(seq byte) FrameControl {
	return FrameControl{Header: HeaderSinglecast, AckRequested: true, Sequence: seq & p2SeqMask}
}

// encode packs the control word into the two wire bytes.
func (fc FrameControl) encode() (p1, p2 byte) {
	switch fc.Header {
	case HeaderMulticast:
		p1 = p1Multicast
	case HeaderAck:
		p1 = p1Ack
	case HeaderRouted:
		p1 = p1RoutedVal
	default:
		p1 = p1Singlecast
	}
	if fc.AckRequested {
		p1 |= p1AckRequested
	}
	if fc.LowPower {
		p1 |= p1LowPower
	}
	if fc.SpeedModified {
		p1 |= p1SpeedMod
	}
	p2 = fc.Sequence & p2SeqMask
	if fc.Beam {
		p2 |= p2BeamWakeup
	}
	if fc.Header == HeaderRouted {
		p2 |= p2RoutedFlag
	}
	return p1, p2
}

// decodeFrameControl unpacks the two wire bytes. Unknown header-type values
// decode as singlecast, mirroring how tolerant real receivers behave; the
// fuzzers rely on this leniency to deliver malformed frames to the victim's
// application layer rather than having the codec reject them.
func decodeFrameControl(p1, p2 byte) FrameControl {
	fc := FrameControl{
		AckRequested:  p1&p1AckRequested != 0,
		LowPower:      p1&p1LowPower != 0,
		SpeedModified: p1&p1SpeedMod != 0,
		Beam:          p2&p2BeamWakeup != 0,
		Sequence:      p2 & p2SeqMask,
	}
	switch p1 & p1HeaderMask {
	case p1Multicast:
		fc.Header = HeaderMulticast
	case p1Ack:
		fc.Header = HeaderAck
	case p1RoutedVal:
		fc.Header = HeaderRouted
	default:
		fc.Header = HeaderSinglecast
	}
	return fc
}
