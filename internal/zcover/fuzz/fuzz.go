// Package fuzz implements ZCover's fuzzing engine: Algorithm 1 of the
// paper. It walks the prioritised command-class queue, drives the
// position-sensitive mutator, injects each test packet, monitors liveness
// with NOP pings, and logs unique findings as the oracle (the stand-in for
// the human verifier) confirms them.
package fuzz

import (
	"fmt"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/oracle"
	"zcover/internal/telemetry"
	"zcover/internal/vtime"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// Process-wide fuzzing metrics. Detection latency is the simulated time
// between injecting the trigger packet and the oracle observing its effect
// — the black-box analogue of the paper's human verification delay.
var (
	mPackets         = telemetry.Default().Counter("fuzz_packets_total")
	mFindings        = telemetry.Default().Counter("fuzz_findings_total")
	mDuplicates      = telemetry.Default().Counter("fuzz_duplicates_total")
	mDetectLatencyMS = telemetry.Default().Histogram("oracle_detect_latency_ms", 1, 10, 100, 1000, 10000)
)

// Strategy names the engine configuration (Table VI's three rows).
type Strategy string

// Strategies.
const (
	// StrategyFull is ZCover with every feature on: known + unknown
	// CMDCLs, position-sensitive mutation.
	StrategyFull Strategy = "zcover-full"
	// StrategyKnownOnly is the β ablation: listed CMDCLs only.
	StrategyKnownOnly Strategy = "zcover-beta"
	// StrategyRandom is the γ ablation: random CMDCLs, naive mutation.
	StrategyRandom Strategy = "zcover-gamma"
	// StrategyCoverage is the coverage-guided engine (CovEngine): the same
	// spec-driven quick pass, then corpus exploitation steered by the
	// behavioral coverage map instead of fixed per-class windows.
	StrategyCoverage Strategy = "zcover-cov"
)

// Config tunes a campaign.
type Config struct {
	// Duration is the fuzzing budget (Testing_T of Algorithm 1).
	Duration time.Duration
	// PerClass is the per-class window (C_T). Zero derives
	// Duration/len(queue). A new unique finding restarts the window, as
	// crashes keep Algorithm 1 on the current class.
	PerClass time.Duration
	// ResponseWindow bounds the wait after each test packet.
	ResponseWindow time.Duration
	// InterTestGap is idle time between tests (radio turnaround, logging).
	InterTestGap time.Duration
	// PingRetry is the liveness re-probe interval while the target is
	// unresponsive.
	PingRetry time.Duration
	// SamplePeriod spaces the timeline samples for Fig. 12. Zero means
	// one sample per 20 s of simulated time.
	SamplePeriod time.Duration
	// OnFinding, if set, is invoked synchronously for each new unique
	// finding — live progress for interactive callers.
	OnFinding func(Finding)
	// Recorder, if set, is the packet flight recorder attached to the
	// campaign's radio medium; each new finding carries a snapshot of it
	// (the surrounding frames) as its replayable post-mortem trace.
	Recorder *telemetry.FlightRecorder
	// Impairment, if set, tells the engine whether the channel injected
	// faults during an observation window. Findings whose window overlaps
	// injected faults are logged with suspect (rather than confirmed)
	// confidence — impairment-induced silence must not masquerade as a
	// vulnerability. The chaos injector implements this.
	Impairment ImpairmentMonitor
	// PingAttempts is how many NOP probes a single liveness check may send
	// before declaring the target unresponsive (>1 tolerates lossy
	// channels). Zero means one probe, the clean-channel behaviour.
	PingAttempts int
	// FrameBudget, when positive, caps the number of test packets the
	// campaign may inject; the engine stops at whichever of Duration and
	// FrameBudget runs out first. This is how the coverage-guided and
	// generational engines are compared at an equal frame budget.
	FrameBudget int
}

// ImpairmentMonitor reports whether channel faults were injected at or
// after a given simulated instant.
type ImpairmentMonitor interface {
	ImpairedSince(t time.Time) bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults(queueLen int) Config {
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.PerClass <= 0 && queueLen > 0 {
		c.PerClass = c.Duration / time.Duration(queueLen)
	}
	if c.ResponseWindow <= 0 {
		c.ResponseWindow = dongle.DefaultResponseWindow
	}
	if c.InterTestGap <= 0 {
		c.InterTestGap = 100 * time.Millisecond
	}
	if c.PingRetry <= 0 {
		c.PingRetry = 5 * time.Second
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 20 * time.Second
	}
	if c.PingAttempts <= 0 {
		c.PingAttempts = 1
	}
	return c
}

// Finding is one unique vulnerability discovery.
type Finding struct {
	// Signature deduplicates findings (effect + trigger vector).
	Signature string
	// Event is the oracle observation that confirmed the finding.
	Event oracle.Event
	// TriggerPayload is the application payload that fired it.
	TriggerPayload []byte
	// Packets is the number of test packets sent up to (and including)
	// the trigger.
	Packets int
	// Elapsed is the campaign time of the discovery.
	Elapsed time.Duration
	// MeasuredOutage is the service interruption the engine itself
	// observed through its liveness probes (zero when the target kept
	// responding — memory-tampering bugs do not take the radio down).
	// Granularity is the ping retry interval.
	MeasuredOutage time.Duration
	// Trace is the flight-recorder snapshot taken at the moment of
	// discovery: the last frames on the air up to and including the
	// trigger. Empty when no recorder was attached (Config.Recorder).
	Trace []telemetry.FrameRecord
}

// Sample is one point of the packets-over-time curve (Fig. 12).
type Sample struct {
	Elapsed time.Duration
	Packets int
	Unique  int
}

// Result summarises a campaign.
type Result struct {
	// Strategy and Device label the run.
	Strategy Strategy
	Device   string
	// Findings lists unique discoveries in order.
	Findings []Finding
	// Duplicates counts re-triggers of known findings.
	Duplicates int
	// PacketsSent counts test packets.
	PacketsSent int
	// ClassesCovered is the queue size (Table V CMDCL column).
	ClassesCovered int
	// CommandsCovered is the confirmed-command pool size (Table V CMD
	// column); set by the caller from discovery results.
	CommandsCovered int
	// Elapsed is the total simulated campaign time.
	Elapsed time.Duration
	// Timeline holds periodic samples plus one sample per finding.
	Timeline []Sample
}

// UniqueVulnerabilities reports the headline count.
func (r *Result) UniqueVulnerabilities() int { return len(r.Findings) }

// Engine drives one campaign against one target.
type Engine struct {
	dongle *dongle.Dongle
	clock  *vtime.SimClock
	fp     scan.Fingerprint
	queue  []*cmdclass.Class
	mut    *mutate.Mutator
	cfg    Config

	strategy Strategy
	device   string

	pending []oracle.Event
	seen    map[string]bool

	// crashedCmds records (class, command) pairs that made the target
	// unresponsive. The engine consults its own log and stops re-sending
	// them: re-triggering a known hang only burns campaign time.
	crashedCmds map[[2]byte]bool

	// campaign state while Run is active
	start      time.Time
	res        *Result
	nextSample time.Duration
}

// New builds an engine. The caller wires the oracle bus subscription via
// Observe (typically bus.Subscribe(engine.Observe)).
func New(d *dongle.Dongle, fp scan.Fingerprint, queue []*cmdclass.Class, mut *mutate.Mutator, strategy Strategy, device string, cfg Config) (*Engine, error) {
	if d == nil || mut == nil {
		return nil, fmt.Errorf("fuzz: dongle and mutator are required")
	}
	if len(queue) == 0 {
		return nil, fmt.Errorf("fuzz: empty class queue")
	}
	return &Engine{
		dongle:      d,
		clock:       d.Clock(),
		fp:          fp,
		queue:       queue,
		mut:         mut,
		cfg:         cfg.withDefaults(len(queue)),
		strategy:    strategy,
		device:      device,
		seen:        make(map[string]bool),
		crashedCmds: make(map[[2]byte]bool),
	}, nil
}

// Observe receives oracle events; subscribe it to the testbed bus before
// Run. Events observed while no campaign is active are dropped.
func (e *Engine) Observe(ev oracle.Event) {
	e.pending = append(e.pending, ev)
}

// Run executes the campaign and returns the result.
//
// The schedule is Algorithm 1 with a two-stage refinement: a *quick pass*
// first sends every class's cheap class-wide sweeps (bare commands and
// single-position mutations) in priority order, so that even a short
// campaign touches the whole queue; a *deep pass* then revisits each class
// for its per-class window C_T, continuing its stream with the structural,
// positional, and correlation mutations. A new unique finding restarts the
// current window (crashes keep Algorithm 1's attention on the class), and
// hang-recovery time is compensated — C_T measures mutation time, not time
// spent waiting for the controller to come back.
func (e *Engine) Run() *Result {
	res := &Result{
		Strategy:       e.strategy,
		Device:         e.device,
		ClassesCovered: len(e.queue),
	}
	e.start = e.clock.Now()
	e.res = res
	e.nextSample = e.cfg.SamplePeriod
	e.pending = nil

	streams := make([]*mutate.Stream, len(e.queue))
	for i, cls := range e.queue {
		streams[i] = e.mut.Stream(cls)
	}

	// Stage 1: quick pass across the whole prioritised queue.
	for _, stream := range streams {
		if e.budgetExhausted() {
			break
		}
		for n := stream.QuickSize(); n > 0 && !e.budgetExhausted(); n-- {
			e.oneTest(stream)
		}
	}

	// Stage 2: deep pass, C_T per class (Algorithm 1 lines 4-15).
	for _, stream := range streams {
		if e.budgetExhausted() {
			break
		}
		windowUsed := time.Duration(0)
		windowStart := e.clock.Now()
		for !e.budgetExhausted() {
			if windowUsed+e.clock.Now().Sub(windowStart) >= e.cfg.PerClass {
				break
			}
			newFinding, recovery := e.oneTest(stream)
			if newFinding {
				// Line 14's contrapositive: a crash keeps the fuzzer here.
				windowUsed = 0
				windowStart = e.clock.Now()
			}
			windowStart = windowStart.Add(recovery) // C_T counts mutation time only
		}
	}

	res.Elapsed = e.elapsed()
	res.Timeline = append(res.Timeline, Sample{
		Elapsed: res.Elapsed, Packets: res.PacketsSent, Unique: len(res.Findings),
	})
	return res
}

// elapsed reports campaign time.
func (e *Engine) elapsed() time.Duration { return e.clock.Now().Sub(e.start) }

// budgetExhausted reports whether either campaign budget — simulated time
// or, when configured, the frame cap — has run out.
func (e *Engine) budgetExhausted() bool {
	if e.cfg.FrameBudget > 0 && e.res.PacketsSent >= e.cfg.FrameBudget {
		return true
	}
	return e.elapsed() >= e.cfg.Duration
}

// maxFilteredDraws bounds how many consecutive known-crash payloads the
// engine will discard before giving up on the current stream position.
const maxFilteredDraws = 512

// drawFiltered pulls the stream's next payload, discarding draws that
// target commands the engine already knows to crash the controller.
func (e *Engine) drawFiltered(stream *mutate.Stream) []byte {
	payload := stream.Next()
	for i := 0; i < maxFilteredDraws && len(payload) >= 2 && e.crashedCmds[[2]byte{payload[0], payload[1]}]; i++ {
		payload = stream.Next()
	}
	return payload
}

// oneTest runs one send/observe/liveness cycle. It reports whether a new
// unique finding was logged and how long recovery waiting took.
func (e *Engine) oneTest(stream *mutate.Stream) (newFinding bool, recovery time.Duration) {
	return e.runPayload(e.drawFiltered(stream))
}

// runPayload injects one application payload and runs the observe /
// liveness / recovery cycle on it — the engine-independent half of a test.
// The coverage-guided engine calls it directly with corpus variants.
func (e *Engine) runPayload(payload []byte) (newFinding bool, recovery time.Duration) {
	txAt := e.clock.Now()
	ex, err := e.dongle.SendAndObserve(e.fp.Home, scan.AttackerNodeID, e.fp.Controller,
		payload, e.cfg.ResponseWindow)
	e.res.PacketsSent++
	mPackets.Inc()
	if err != nil {
		return false, 0 // unencodable mutant: skip, as a dongle would
	}

	newFinding = e.drainEvents(e.res, payload, e.elapsed(), txAt)

	// Feedback loop: liveness check via NOP ping; wait out hangs. A hang
	// marks the (class, command) pair as crashing so it is not re-sent,
	// and the measured outage is attributed to the finding it produced —
	// this is how a black-box fuzzer learns the durations of Table III.
	// (The MAC ack is sent before the application layer executes, so a
	// frame that hangs the controller still gets acked — every new finding
	// is therefore liveness-checked explicitly.)
	if (!ex.Acked || newFinding) && !e.ping() {
		if len(payload) >= 2 {
			e.crashedCmds[[2]byte{payload[0], payload[1]}] = true
		}
		before := e.clock.Now()
		e.awaitRecovery(e.start)
		recovery = e.clock.Now().Sub(before)
		if newFinding && len(e.res.Findings) > 0 {
			e.res.Findings[len(e.res.Findings)-1].MeasuredOutage = recovery
		}
	}
	e.clock.Advance(e.cfg.InterTestGap)

	for e.elapsed() >= e.nextSample {
		e.res.Timeline = append(e.res.Timeline, Sample{
			Elapsed: e.nextSample, Packets: e.res.PacketsSent, Unique: len(e.res.Findings),
		})
		e.nextSample += e.cfg.SamplePeriod
	}
	return newFinding, recovery
}

// drainEvents folds pending oracle observations into the result. It
// reports whether a new unique finding was logged. txAt is the simulated
// instant the trigger went on the air (detection-latency metric origin).
func (e *Engine) drainEvents(res *Result, payload []byte, elapsed time.Duration, txAt time.Time) bool {
	found := false
	for _, ev := range e.pending {
		sig := ev.Signature()
		if e.seen[sig] {
			res.Duplicates++
			mDuplicates.Inc()
			continue
		}
		e.seen[sig] = true
		found = true
		mFindings.Inc()
		if lat := ev.At.Sub(txAt); lat >= 0 {
			mDetectLatencyMS.Observe(float64(lat) / float64(time.Millisecond))
		}
		if e.cfg.Impairment != nil && ev.Confidence == oracle.ConfidenceConfirmed &&
			e.cfg.Impairment.ImpairedSince(txAt) {
			ev.Confidence = oracle.ConfidenceSuspect
		}
		finding := Finding{
			Signature:      sig,
			Event:          ev,
			TriggerPayload: append([]byte{}, payload...),
			Packets:        res.PacketsSent,
			Elapsed:        elapsed,
		}
		if e.cfg.Recorder != nil {
			finding.Trace = e.cfg.Recorder.Snapshot()
		}
		res.Findings = append(res.Findings, finding)
		if e.cfg.OnFinding != nil {
			e.cfg.OnFinding(finding)
		}
		res.Timeline = append(res.Timeline, Sample{
			Elapsed: elapsed, Packets: res.PacketsSent, Unique: len(res.Findings),
		})
	}
	e.pending = e.pending[:0]
	return found
}

// ping is one liveness check: up to PingAttempts NOP probes, so a single
// lost probe on an impaired channel does not read as a controller hang.
func (e *Engine) ping() bool {
	for i := 0; i < e.cfg.PingAttempts; i++ {
		if e.dongle.Ping(e.fp.Home, scan.AttackerNodeID, e.fp.Controller) {
			return true
		}
	}
	return false
}

// awaitRecovery pings until the target answers again or the campaign
// budget runs out — the "controller hangs" handling of the feedback loop.
func (e *Engine) awaitRecovery(start time.Time) {
	for e.clock.Now().Sub(start) < e.cfg.Duration {
		e.clock.Advance(e.cfg.PingRetry)
		if e.ping() {
			return
		}
	}
}

// BuildQueue assembles the class queue for a strategy:
//
//   - full: the discovery phase's prioritised 45-class pool;
//   - β: the listed classes only, still prioritised;
//   - γ: all 256 class IDs in random order.
func BuildQueue(strategy Strategy, reg *cmdclass.Registry, listed, prioritized []*cmdclass.Class, seed int64) []*cmdclass.Class {
	switch strategy {
	case StrategyKnownOnly:
		return cmdclass.PrioritizeByCommandCount(listed)
	case StrategyRandom:
		return mutate.RandomQueue(reg, seed)
	default:
		return prioritized
	}
}

// AttackerID re-exports the spoofed source for callers building packets.
const AttackerID = scan.AttackerNodeID
