package security

import (
	"bytes"
	"testing"
)

// BenchmarkS0Roundtrip measures one S0 encapsulate + decapsulate cycle —
// the legacy transport's per-message hot path. The cached key contexts
// make key expansion a one-time cost, so the steady state is dominated by
// the OFB/CBC-MAC block operations themselves.
func BenchmarkS0Roundtrip(b *testing.B) {
	keys, err := DeriveS0Keys(bytes.Repeat([]byte{0x11}, KeySize))
	if err != nil {
		b.Fatal(err)
	}
	senderNonce := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	receiverNonce := []byte{9, 10, 11, 12, 13, 14, 15, 16}
	header := []byte{0x98, 0x81}
	plaintext := []byte{0x25, 0x01, 0xFF}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := S0Encapsulate(keys, senderNonce, receiverNonce, header, plaintext)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := S0Decapsulate(keys, receiverNonce, header, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkS2Roundtrip measures one S2 encapsulate + decapsulate cycle
// through paired sessions — the modern transport's per-message hot path,
// exercising the cached CCM AEAD and the SPAN nonce derivation.
func BenchmarkS2Roundtrip(b *testing.B) {
	networkKey := bytes.Repeat([]byte{0x22}, KeySize)
	entropyA := bytes.Repeat([]byte{0x33}, KeySize)
	entropyB := bytes.Repeat([]byte{0x44}, KeySize)
	tx, err := NewSession(networkKey, entropyA, entropyB)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := NewSession(networkKey, entropyA, entropyB)
	if err != nil {
		b.Fatal(err)
	}
	aad := []byte{0xC0, 0xDE, 0xCA, 0xFE, 0x01, 0x02}
	plaintext := []byte{0x25, 0x01, 0xFF}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload, err := tx.Encapsulate(FlowAtoB, aad, plaintext)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rx.Decapsulate(FlowAtoB, aad, payload); err != nil {
			b.Fatal(err)
		}
	}
}
