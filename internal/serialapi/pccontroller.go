package serialapi

import (
	"fmt"
	"strings"
)

// PCController models the Z-Wave PC Controller desktop program: the host
// software the paper runs on a Windows laptop to drive the USB-stick
// controllers D1–D5 (§IV "Experiment environment"). It reads the chip's
// memory through the Serial API and renders the device table — the view
// shown in the paper's Figs 8–11, where the memory-tampering attacks
// become visible to the operator.
type PCController struct {
	client *Client
}

// NewPCController connects the program to a controller chip.
func NewPCController(chip Chip) *PCController {
	return &PCController{client: NewClient(chip)}
}

// NetworkID is the chip's identity as MemoryGetID reports it.
type NetworkID struct {
	// Home is the 4-byte home ID.
	Home uint32
	// NodeID is the chip's own node ID.
	NodeID byte
}

// NetworkID reads the home ID and node ID from chip memory.
func (p *PCController) NetworkID() (NetworkID, error) {
	data, err := p.client.Call(FuncMemoryGetID, nil)
	if err != nil {
		return NetworkID{}, err
	}
	if len(data) < 5 {
		return NetworkID{}, fmt.Errorf("serialapi: short MemoryGetID response (%d bytes)", len(data))
	}
	return NetworkID{
		Home:   uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]),
		NodeID: data[4],
	}, nil
}

// Version reads the firmware version string.
func (p *PCController) Version() (string, error) {
	data, err := p.client.Call(FuncGetVersion, nil)
	if err != nil {
		return "", err
	}
	// The version string is NUL-terminated; a library-type byte follows.
	version, _, _ := strings.Cut(string(data), "\x00")
	return version, nil
}

// NodeIDs reads the node bitmask from GetInitData: every node ID the
// controller has in its device table.
func (p *PCController) NodeIDs() ([]byte, error) {
	data, err := p.client.Call(FuncGetInitData, nil)
	if err != nil {
		return nil, err
	}
	// [apiVersion, capabilities, maskLen, mask..., chipType, chipVersion]
	if len(data) < 3 {
		return nil, fmt.Errorf("serialapi: short GetInitData response")
	}
	maskLen := int(data[2])
	if len(data) < 3+maskLen {
		return nil, fmt.Errorf("serialapi: truncated node mask")
	}
	var ids []byte
	for i, b := range data[3 : 3+maskLen] {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				ids = append(ids, byte(i*8+bit+1))
			}
		}
	}
	return ids, nil
}

// NodeInfo is one rendered node-table entry.
type NodeInfo struct {
	ID                       byte
	Capability, Security     byte
	Basic, Generic, Specific byte
}

// Listening reports the capability listening flag.
func (n NodeInfo) Listening() bool { return n.Capability&0x80 != 0 }

// TypeName renders the device type the way the PC Controller program's
// node list does.
func (n NodeInfo) TypeName() string {
	switch {
	case n.Basic == 0x01 || n.Basic == 0x02 || n.Generic == 0x02:
		return "Static Controller"
	case n.Generic == 0x40:
		return "Entry Control (Door Lock)"
	case n.Generic == 0x10:
		return "Binary Switch"
	case n.Basic == 0x04:
		return "Routing Slave"
	default:
		return fmt.Sprintf("Unknown (basic=0x%02X generic=0x%02X)", n.Basic, n.Generic)
	}
}

// NodeInfo reads one node's protocol info from the chip.
func (p *PCController) NodeInfo(id byte) (NodeInfo, error) {
	data, err := p.client.Call(FuncGetNodeProtocolInfo, []byte{id})
	if err != nil {
		return NodeInfo{}, err
	}
	if len(data) < 6 {
		return NodeInfo{}, fmt.Errorf("serialapi: short protocol info for node %d", id)
	}
	return NodeInfo{
		ID: id, Capability: data[0], Security: data[1],
		Basic: data[3], Generic: data[4], Specific: data[5],
	}, nil
}

// NodeTable reads the complete device table.
func (p *PCController) NodeTable() ([]NodeInfo, error) {
	ids, err := p.NodeIDs()
	if err != nil {
		return nil, err
	}
	out := make([]NodeInfo, 0, len(ids))
	for _, id := range ids {
		info, err := p.NodeInfo(id)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

// SendData asks the chip to transmit an application payload to a node.
func (p *PCController) SendData(dst byte, payload []byte) error {
	req := append([]byte{dst, byte(len(payload))}, payload...)
	req = append(req, 0x25) // TX options: ACK | AUTO_ROUTE
	resp, err := p.client.Call(FuncSendData, req)
	if err != nil {
		return err
	}
	if len(resp) < 1 || resp[0] != 0x01 {
		return fmt.Errorf("serialapi: SendData rejected")
	}
	return nil
}

// RenderTable draws the node list the way the program's UI shows it —
// the view of Figs 8–11.
func (p *PCController) RenderTable() (string, error) {
	table, err := p.NodeTable()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("ID   Listening  Device type\n")
	b.WriteString("---  ---------  -----------------------------\n")
	for _, n := range table {
		fmt.Fprintf(&b, "%-3d  %-9v  %s\n", n.ID, n.Listening(), n.TypeName())
	}
	return b.String(), nil
}
