package protocol

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based codec tests. Each property draws its inputs from a seeded
// generator (quick.Config.Rand pinned), so a failure reproduces exactly and
// the covered input set does not drift between runs.

// randFrame builds a random well-formed frame whose payload fits the MAC
// limit under the drawn checksum mode.
func randFrame(r *rand.Rand) *Frame {
	mode := ChecksumCS8
	if r.Intn(2) == 1 {
		mode = ChecksumCRC16
	}
	maxPayload := MaxFrameSize - HeaderSize - mode.trailerSize()
	payload := make([]byte, r.Intn(maxPayload+1))
	r.Read(payload)
	f := NewDataFrame(HomeID(r.Uint32()), NodeID(r.Intn(233)), NodeID(r.Intn(256)), payload)
	f.Checksum = mode
	return f
}

// Property: encode→decode is the identity on the semantic fields of every
// well-formed frame, under both checksum modes.
func TestFrameEncodeDecodeIdentityProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randFrame(r)
		raw, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw, f.Checksum)
		if err != nil {
			return false
		}
		return got.Home == f.Home && got.Src == f.Src && got.Dst == f.Dst &&
			bytes.Equal(got.Payload, f.Payload) && got.Checksum == f.Checksum
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: both integrity trailers reject *every* single-bit flip of an
// encoded frame — XOR CS-8 and CRC-16 each guarantee Hamming distance ≥ 2,
// and structural validation catches flips that land in the length byte.
func TestChecksumRejectsAnySingleBitFlip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randFrame(r)
		raw, err := f.Encode()
		if err != nil {
			return false
		}
		for i := range raw {
			for bit := 0; bit < 8; bit++ {
				mutated := append([]byte{}, raw...)
				mutated[i] ^= 1 << bit
				if _, err := Decode(mutated, f.Checksum); err == nil {
					t.Logf("flip byte %d bit %d of % X accepted", i, bit, raw)
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
