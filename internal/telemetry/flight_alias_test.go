package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestFlightRecorderCopiesCallerBuffer pins the ownership contract that
// lets the radio hot path hand pooled buffers to Record: the recorder must
// copy into ring-owned storage, so mutating (reusing) the caller's buffer
// afterwards cannot corrupt what was recorded.
func TestFlightRecorderCopiesCallerBuffer(t *testing.T) {
	r := NewFlightRecorder(4)
	buf := []byte{1, 2, 3, 4}
	r.Record(FrameRecord{At: time.Unix(0, 1), Raw: buf})
	// Simulate pool reuse: the caller's buffer is overwritten.
	for i := range buf {
		buf[i] = 0xFF
	}
	snap := r.Snapshot()
	if len(snap) != 1 || !bytes.Equal(snap[0].Raw, []byte{1, 2, 3, 4}) {
		t.Fatalf("recorded frame corrupted by buffer reuse: %x", snap[0].Raw)
	}
}

// TestFlightRecorderSnapshotSurvivesEviction checks the other aliasing
// direction: a Snapshot taken earlier must stay intact while recording
// continues and ring slots (whose storage Record reuses) are evicted.
func TestFlightRecorderSnapshotSurvivesEviction(t *testing.T) {
	r := NewFlightRecorder(2)
	r.Record(FrameRecord{Raw: []byte{0xAA, 0xBB}})
	snap := r.Snapshot()
	// Overfill the ring so every slot — including the one holding the
	// snapshotted frame — gets its storage reused.
	for i := 0; i < 8; i++ {
		r.Record(FrameRecord{Raw: []byte{byte(i), byte(i), byte(i)}})
	}
	if !bytes.Equal(snap[0].Raw, []byte{0xAA, 0xBB}) {
		t.Fatalf("snapshot mutated by later recording: %x", snap[0].Raw)
	}
}

// TestFlightRecorderConcurrentRecord hammers Record and Snapshot from
// several goroutines under -race; each goroutine reuses one buffer across
// its records, exactly like a pooled caller would.
func TestFlightRecorderConcurrentRecord(t *testing.T) {
	r := NewFlightRecorder(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 4)
			for i := 0; i < 100; i++ {
				buf[0], buf[1], buf[2], buf[3] = byte(w), byte(i), byte(w), byte(i)
				r.Record(FrameRecord{Raw: buf})
				if i%10 == 0 {
					for _, rec := range r.Snapshot() {
						if len(rec.Raw) != 4 || rec.Raw[0] != rec.Raw[2] || rec.Raw[1] != rec.Raw[3] {
							t.Errorf("torn record: %x", rec.Raw)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
}
