// Package zcover is a from-scratch Go reproduction of ZCover, the Z-Wave
// controller security-analysis framework of Nkuba et al. (DSN 2025):
// "ZCover: Uncovering Z-Wave Controller Vulnerabilities Through Systematic
// Security Analysis of Application Layer Implementation".
//
// The library bundles two things:
//
//   - A simulated Z-Wave smart home standing in for the paper's hardware
//     testbed: a software-defined sub-GHz air, emulated controllers D1–D7
//     carrying the paper's fifteen Table III vulnerability models, an
//     S2-paired door lock, and a legacy binary switch.
//
//   - The ZCover pipeline itself: passive/active fingerprinting, unknown
//     command-class discovery (spec clustering plus validation testing),
//     and the position-sensitive mutation fuzzer — plus a reimplementation
//     of the VFuzz baseline for comparison.
//
// The quickest way in:
//
//	tb, err := zcover.NewTestbed("D6", 1)
//	if err != nil { ... }
//	campaign, err := zcover.Run(tb, zcover.StrategyFull, time.Hour, 1)
//	for _, f := range campaign.Fuzz.Findings {
//	    fmt.Println(f.Elapsed, f.Signature)
//	}
//
// Every table and figure of the paper's evaluation can be regenerated with
// the experiment drivers (Table3, Table4, Table5, Table6, Fig5, Fig12) or
// the cmd/experiments binary.
package zcover

import (
	"time"

	"zcover/internal/chaos"
	"zcover/internal/coverage"
	"zcover/internal/fleet"
	"zcover/internal/harness"
	"zcover/internal/oracle"
	"zcover/internal/report"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/scan"
)

// Version identifies the library release.
const Version = "1.0.0"

// Core workflow types, re-exported from the implementation packages.
type (
	// Testbed is one assembled smart-home system under test.
	Testbed = testbed.Testbed
	// Campaign is a complete ZCover run: fingerprint, discovery, fuzzing.
	Campaign = harness.Campaign
	// Strategy selects the fuzzing configuration.
	Strategy = fuzz.Strategy
	// Result is a fuzzing campaign summary.
	Result = fuzz.Result
	// Finding is one unique vulnerability discovery.
	Finding = fuzz.Finding
	// Fingerprint is the phase-1 output (home ID, node IDs, listed classes).
	Fingerprint = scan.Fingerprint
	// AnomalyEvent is one oracle observation.
	AnomalyEvent = oracle.Event
	// PaperBug is one row of the paper's Table III catalogue.
	PaperBug = harness.PaperBug
	// Table is a rendered experiment table.
	Table = report.Table
	// CSV is a rendered figure series.
	CSV = report.CSV
	// FleetConfig tunes the parallel campaign scheduler (worker count,
	// retry limit, progress callback).
	FleetConfig = fleet.Config
	// FleetProgress is an atomic snapshot of a running campaign fleet.
	FleetProgress = fleet.Progress
	// FleetJob is one self-contained campaign spec for the scheduler.
	FleetJob = fleet.Job
	// Options attaches observability (finding callback, packet flight
	// recorder, phase tracer) to a campaign run.
	Options = harness.Options
	// TraceFrame is one serialised flight-recorder frame in a bug log.
	TraceFrame = fuzz.TraceFrame
	// ChaosProfile is one named channel-impairment configuration for the
	// deterministic fault injector (burst loss, corruption, duplication,
	// jitter, partitions).
	ChaosProfile = chaos.Profile
	// ChaosInjector is the seeded fault injector a profile instantiates;
	// Testbed.ApplyChaos installs one on the simulated air.
	ChaosInjector = chaos.Injector
	// ChaosStats counts the faults an injector has applied, per kind.
	ChaosStats = chaos.Stats
	// ChaosRow is one (device, profile) cell of the chaos robustness table.
	ChaosRow = harness.ChaosRow
	// Confidence is the oracle's grade for a finding: confirmed, or suspect
	// when it overlapped an injected channel fault.
	Confidence = oracle.Confidence
	// CampaignKey identifies a single-campaign checkpoint journal: every
	// input that determines the campaign's output.
	CampaignKey = harness.CampaignKey
	// CovResult is a coverage-guided campaign summary: the base Result
	// plus the behavioral coverage map's final state and corpus size.
	CovResult = fuzz.CovResult
	// CoverageStats is a behavioral-coverage map snapshot.
	CoverageStats = coverage.Stats
	// CovFuzzOptions configures the coverage-guided pipeline's corpus
	// side: journal directory, resume, seed minimisation.
	CovFuzzOptions = harness.CovFuzzOptions
	// CovFuzzRow is one device's engine comparison at equal frame budget.
	CovFuzzRow = harness.CovFuzzRow
)

// Oracle confidence grades.
const (
	// ConfidenceConfirmed marks a finding observed on a clean channel.
	ConfidenceConfirmed = oracle.ConfidenceConfirmed
	// ConfidenceSuspect marks a finding that overlapped channel impairment.
	ConfidenceSuspect = oracle.ConfidenceSuspect
)

// ParseChaosProfile resolves a profile spec — a builtin name ("burst",
// "noise", "jitter", "partition", "lossy", "stress", "none") optionally
// followed by overrides ("burst:badloss=0.7,partition=lock@1h/5m").
func ParseChaosProfile(spec string) (ChaosProfile, error) {
	return chaos.ParseProfile(spec)
}

// ChaosProfiles lists the builtin profile names.
func ChaosProfiles() []string { return chaos.Profiles() }

// Fuzzing strategies (the three configurations of the paper's ablation).
const (
	// StrategyFull enables every ZCover feature.
	StrategyFull = fuzz.StrategyFull
	// StrategyKnownOnly is the β ablation: listed command classes only.
	StrategyKnownOnly = fuzz.StrategyKnownOnly
	// StrategyRandom is the γ ablation: random classes, naive mutation.
	StrategyRandom = fuzz.StrategyRandom
)

// NewTestbed assembles the simulated smart home around the controller with
// the given testbed index ("D1".."D7", per Table II). seed drives pairing
// entropy deterministically.
func NewTestbed(index string, seed int64) (*Testbed, error) {
	return testbed.New(index, seed)
}

// NewPatchedTestbed assembles the same smart home around firmware built on
// the updated specification of §V-B: the spec-rooted vulnerabilities are
// closed, implementation bugs remain.
func NewPatchedTestbed(index string, seed int64) (*Testbed, error) {
	return testbed.NewPatched(index, seed)
}

// Run executes the full ZCover pipeline — fingerprinting, discovery, and
// fuzzing for the given budget — against the testbed's controller.
func Run(tb *Testbed, strategy Strategy, duration time.Duration, seed int64) (*Campaign, error) {
	return harness.RunZCover(tb, strategy, duration, seed)
}

// RunObserved is Run with a callback invoked live for each new unique
// finding (interactive progress).
func RunObserved(tb *Testbed, strategy Strategy, duration time.Duration, seed int64, onFinding func(Finding)) (*Campaign, error) {
	return harness.RunZCoverObserved(tb, strategy, duration, seed, onFinding)
}

// RunWith is Run with observability attachments: a live finding callback,
// a packet flight recorder whose snapshots ride on each finding, and a
// span tracer for the pipeline phases. The zero Options value makes it
// identical to Run.
func RunWith(tb *Testbed, strategy Strategy, duration time.Duration, seed int64, opts Options) (*Campaign, error) {
	return harness.RunZCoverWith(tb, strategy, duration, seed, opts)
}

// RunResumable is RunWith behind a crash-safe checkpoint journal in dir: a
// campaign already journaled for the same key is replayed byte-identically
// (resumed=true) instead of re-executing, and a fresh run journals its
// outcome before returning. An existing journal is refused unless resume
// is set, so a campaign is never double-run by accident.
func RunResumable(dir string, resume bool, key CampaignKey, tb *Testbed, opts Options) (*Campaign, bool, error) {
	return harness.RunZCoverResumable(dir, resume, key, tb, opts)
}

// RunCoverage executes the coverage-guided pipeline — fingerprinting,
// discovery, then the behavioral-coverage-guided engine with a
// deterministic corpus — against the testbed's controller.
func RunCoverage(tb *Testbed, duration time.Duration, seed int64) (*CovResult, error) {
	return harness.RunCovFuzz(tb, duration, seed)
}

// RunCoverageWith is RunCoverage with observability attachments plus the
// corpus configuration: crash-safe corpus journaling under a directory
// (resumable) and optional seed minimisation.
func RunCoverageWith(tb *Testbed, duration time.Duration, seed int64, opts Options, covOpts CovFuzzOptions) (*CovResult, error) {
	return harness.RunCovFuzzWith(tb, duration, seed, opts, covOpts)
}

// RunBaseline executes the VFuzz baseline against the testbed's controller
// for the given budget.
func RunBaseline(tb *Testbed, duration time.Duration, seed int64) (*Result, error) {
	return harness.RunVFuzz(tb, duration, seed)
}

// RunBaselineWith is RunBaseline with observability attachments.
func RunBaselineWith(tb *Testbed, duration time.Duration, seed int64, opts Options) (*Result, error) {
	return harness.RunVFuzzWith(tb, duration, seed, opts)
}

// PaperBugs returns the paper's Table III vulnerability catalogue.
func PaperBugs() []PaperBug { return harness.PaperBugs() }

// Experiment drivers, one per table and figure of the evaluation section.
var (
	// Fig1 dissects the Figure 1 example frame.
	Fig1 = harness.Fig1
	// Fig5 regenerates the command-class distribution of Figure 5.
	Fig5 = harness.Fig5
	// Fig12 regenerates the detection timelines of Figure 12.
	Fig12 = harness.Fig12
	// Figs8to11 reproduces the memory-tampering views of Figures 8-11.
	Figs8to11 = harness.Figs8to11
	// Table2 renders the testbed inventory.
	Table2 = harness.Table2
	// Table3 reruns the zero-day discovery campaign.
	Table3 = harness.Table3
	// Table4 reruns fingerprinting and discovery on all controllers.
	Table4 = harness.Table4
	// Table5 reruns the VFuzz comparison.
	Table5 = harness.Table5
	// Table6 reruns the ablation study.
	Table6 = harness.Table6
	// Remediation validates the §V-B specification-update mitigation.
	Remediation = harness.Remediation
)

// Fleet-scheduled experiment drivers: identical output to the plain
// drivers for any worker count (each campaign is independently seeded on
// its own testbed), with the scheduling knobs exposed.
var (
	// Table3Fleet reruns the zero-day discovery campaign across a pool.
	Table3Fleet = harness.Table3Fleet
	// Table4Fleet reruns fingerprinting and discovery across a pool.
	Table4Fleet = harness.Table4Fleet
	// Table5Fleet reruns the VFuzz comparison across a pool.
	Table5Fleet = harness.Table5Fleet
	// Table6Fleet reruns the ablation study across a pool.
	Table6Fleet = harness.Table6Fleet
	// Fig12Fleet regenerates the detection timelines across a pool.
	Fig12Fleet = harness.Fig12Fleet
	// RemediationFleet validates the §V-B mitigation across a pool.
	RemediationFleet = harness.RemediationFleet
	// RunTrialsFleet repeats full campaigns against one device across a pool.
	RunTrialsFleet = harness.RunTrialsFleet
	// ChaosTable5 reruns the Table V ZCover campaigns under impairment
	// profiles and reports detection-robustness deltas.
	ChaosTable5 = harness.ChaosTable5
	// CovFuzzTable compares the coverage-guided engine against the
	// generational engine at an equal frame budget across a pool.
	CovFuzzTable = harness.CovFuzzTable
)
