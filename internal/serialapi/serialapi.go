// Package serialapi implements the Z-Wave Serial API: the host-interface
// protocol spoken between controller chips and host software over
// USB/UART. In the paper's testbed, the Z-Wave PC Controller program
// drives the USB-stick controllers D1–D5 through this interface — it is
// how the researchers watched the node table while the memory-tampering
// attacks of Figs 8–11 unfolded, and it is the surface bugs 06 and 13
// take down.
//
// The wire format follows the published Serial API framing:
//
//	data frame:  SOF LEN TYPE FUNC data... CHK
//
// where LEN covers TYPE through CHK, TYPE is request (0x00) or response
// (0x01), and CHK is an XOR checksum over LEN..data seeded with 0xFF.
// Single-byte ACK/NAK/CAN frames acknowledge data frames.
package serialapi

import (
	"errors"
	"fmt"

	"zcover/internal/coverage"
)

// Frame delimiters and control bytes.
const (
	// SOF starts a data frame.
	SOF byte = 0x01
	// ACK acknowledges a correctly received data frame.
	ACK byte = 0x06
	// NAK rejects a corrupted data frame.
	NAK byte = 0x15
	// CAN cancels a collided transmission.
	CAN byte = 0x18
)

// Frame types.
const (
	// TypeRequest marks host→chip requests and chip→host callbacks.
	TypeRequest byte = 0x00
	// TypeResponse marks synchronous responses.
	TypeResponse byte = 0x01
)

// Serial API function IDs (the subset the emulated chips implement).
const (
	// FuncGetInitData returns the serial-API capabilities and the node
	// bitmask — the PC Controller program's view of the device table.
	FuncGetInitData byte = 0x02
	// FuncApplicationCommandHandler delivers received application frames
	// to the host (chip→host callback).
	FuncApplicationCommandHandler byte = 0x04
	// FuncGetControllerCapabilities reports the controller role flags.
	FuncGetControllerCapabilities byte = 0x05
	// FuncSendData transmits an application payload to a node.
	FuncSendData byte = 0x13
	// FuncGetVersion returns the firmware version string.
	FuncGetVersion byte = 0x15
	// FuncMemoryGetID returns the home ID and the chip's node ID.
	FuncMemoryGetID byte = 0x20
	// FuncGetNodeProtocolInfo returns a node-table record.
	FuncGetNodeProtocolInfo byte = 0x41
	// FuncAddNodeToNetwork arms or stops add-node (inclusion) mode.
	FuncAddNodeToNetwork byte = 0x4A
	// FuncRemoveFailedNode removes a non-responding node from the table
	// (the legitimate counterpart of what bug 03 lets attackers do).
	FuncRemoveFailedNode byte = 0x61
)

// Codec errors.
var (
	// ErrFrameTooShort indicates fewer bytes than a minimal data frame.
	ErrFrameTooShort = errors.New("serialapi: frame too short")
	// ErrNotDataFrame indicates a missing SOF.
	ErrNotDataFrame = errors.New("serialapi: not a data frame")
	// ErrLengthMismatch indicates a LEN field inconsistent with the data.
	ErrLengthMismatch = errors.New("serialapi: length mismatch")
	// ErrBadChecksum indicates checksum verification failed.
	ErrBadChecksum = errors.New("serialapi: checksum mismatch")
	// ErrChipNAK indicates the chip rejected the request frame.
	ErrChipNAK = errors.New("serialapi: chip NAKed the request")
)

// Frame is a parsed Serial API data frame.
type Frame struct {
	// Type is TypeRequest or TypeResponse.
	Type byte
	// Func is the Serial API function ID.
	Func byte
	// Data is the function payload.
	Data []byte
}

// Checksum computes the Serial API XOR checksum over LEN..data.
func Checksum(body []byte) byte {
	chk := byte(0xFF)
	for _, b := range body {
		chk ^= b
	}
	return chk
}

// Encode serialises a data frame.
func Encode(f Frame) []byte {
	// LEN counts TYPE, FUNC, data, and CHK.
	length := byte(3 + len(f.Data))
	out := make([]byte, 0, 2+int(length))
	out = append(out, SOF, length, f.Type, f.Func)
	out = append(out, f.Data...)
	return append(out, Checksum(out[1:]))
}

// Decode parses a data frame, validating framing and checksum. The
// returned frame's Data aliases raw.
func Decode(raw []byte) (Frame, error) {
	if len(raw) < 5 {
		return Frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooShort, len(raw))
	}
	if raw[0] != SOF {
		return Frame{}, fmt.Errorf("%w: leading byte %#02x", ErrNotDataFrame, raw[0])
	}
	if int(raw[1]) != len(raw)-2 {
		return Frame{}, fmt.Errorf("%w: LEN=%d, frame=%d bytes", ErrLengthMismatch, raw[1], len(raw))
	}
	if Checksum(raw[1:len(raw)-1]) != raw[len(raw)-1] {
		return Frame{}, ErrBadChecksum
	}
	return Frame{Type: raw[2], Func: raw[3], Data: raw[4 : len(raw)-1]}, nil
}

// Chip is the device side of the serial link: it answers host requests
// and may emit unsolicited callbacks.
type Chip interface {
	// SerialCall handles one request and returns the response data.
	// ok=false means the function is unsupported (the chip stays silent,
	// as real modules do for unknown function IDs).
	SerialCall(funcID byte, data []byte) (resp []byte, ok bool)
}

// Client is the host side of the serial link: it frames requests, walks
// the ACK handshake, and parses responses. This is the transport the PC
// Controller program model is built on.
type Client struct {
	chip Chip
	cov  *coverage.Collector
}

// NewClient connects a host client to a chip.
func NewClient(chip Chip) *Client {
	if chip == nil {
		panic("serialapi: NewClient requires a chip")
	}
	return &Client{chip: chip}
}

// SetCoverage attaches (or, with nil, detaches) a behavioral-coverage
// collector that observes every function the host invokes — the
// host-interface half of the "Serial API handlers hit" coverage axis
// (the chip side records its own dispatches).
func (c *Client) SetCoverage(cov *coverage.Collector) { c.cov = cov }

// Call performs one request/response exchange over the wire encoding:
// the request is encoded, "transmitted", decoded on the chip side,
// dispatched, and the response travels back the same way. Both directions
// exercise the real framing and checksums.
func (c *Client) Call(funcID byte, data []byte) ([]byte, error) {
	if c.cov != nil {
		c.cov.OnSerial(funcID)
	}
	raw := Encode(Frame{Type: TypeRequest, Func: funcID, Data: data})

	// Chip side: validate framing, ACK, dispatch.
	req, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (%v)", ErrChipNAK, err)
	}
	respData, ok := c.chip.SerialCall(req.Func, req.Data)
	if !ok {
		return nil, fmt.Errorf("serialapi: function 0x%02X unsupported", funcID)
	}

	// Response travels back through the codec as well.
	respRaw := Encode(Frame{Type: TypeResponse, Func: funcID, Data: respData})
	resp, err := Decode(respRaw)
	if err != nil {
		return nil, fmt.Errorf("serialapi: corrupted response: %w", err)
	}
	return resp.Data, nil
}
