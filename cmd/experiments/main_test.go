package main

import "testing"

func TestRunCheapExperiments(t *testing.T) {
	for _, which := range []string{"fig1", "fig5", "table2", "table4", "figs8-11"} {
		if err := run([]string{"-run", which}); err != nil {
			t.Fatalf("%s: %v", which, err)
		}
	}
}

func TestRunCampaignExperimentsShortBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign experiments; run without -short")
	}
	for _, args := range [][]string{
		{"-run", "table6", "-ablation", "30m"},
		{"-run", "fig12", "-fuzz", "30m", "-window", "400s"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "table99"}); err == nil {
		t.Fatal("accepted unknown experiment")
	}
}
