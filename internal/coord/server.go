package coord

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"zcover/internal/checkpoint"
	"zcover/internal/fleet"
)

// Config describes the campaign a Coordinator serves.
type Config struct {
	// Campaign names the experiment; it keys the journal filename.
	Campaign string
	// Jobs is the full job list, in render order.
	Jobs []fleet.Job
	// SpecHash fingerprints Campaign+Jobs (harness.CampaignSpecHash);
	// result uploads must echo it and drifted journals are refused.
	SpecHash string
	// Dir is the checkpoint directory holding the coordinator's journal.
	// The journal is the coordinator's only durable state: a restarted
	// coordinator recovers every completed job from it and re-leases the
	// rest. The file is the same format (and path) a single-machine
	// checkpointed run writes, so `experiments -merge` can render it.
	Dir string
	// Resume permits recovering an existing journal; without it an
	// existing journal is an error, exactly like the CLI -resume rule.
	Resume bool
	// LeaseTTL is the lease deadline; zero means DefaultLeaseTTL.
	LeaseTTL time.Duration
	// RetryAfter is the backoff hint returned when every remaining job
	// is leased; zero means one tenth of LeaseTTL.
	RetryAfter time.Duration
	// now is the test clock hook; nil means time.Now.
	now func() time.Time
}

// lease is one outstanding work assignment. Leases are scheduling state
// only: they never gate result uploads and are not persisted.
type lease struct {
	id       string
	jobIndex int
	worker   string
	deadline time.Time
}

// jobState tracks one job's lifecycle on the coordinator.
type jobState struct {
	label    string
	done     bool
	body     json.RawMessage
	attempts int
	// lease is the job's current assignment (nil when unassigned). An
	// expired lease is replaced on the next /lease poll; the old ID
	// becomes unknown, so its heartbeats answer 410 Gone.
	lease *lease
}

// Coordinator is the campaign-side half of the protocol. Construct with
// New, mount Handler on an HTTP server, and Wait for completion.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	jobs     []jobState
	journal  *checkpoint.Journal
	done     int
	failure  error
	finished chan struct{}
	leaseSeq int
	workers  map[string]*WorkerStatus
	expired  int64
	dupes    int64
	rejected int64
}

// New builds a coordinator for the campaign, creating its journal (or
// recovering an existing one when cfg.Resume). Jobs already journaled
// are complete immediately; a coordinator whose journal covers every job
// is born finished.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Campaign == "" || len(cfg.Jobs) == 0 || cfg.SpecHash == "" {
		return nil, fmt.Errorf("coord: campaign, jobs, and spec hash are all required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("coord: a checkpoint dir is required — the journal is the coordinator's durable state")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = cfg.LeaseTTL / 10
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	c := &Coordinator{
		cfg:      cfg,
		jobs:     make([]jobState, len(cfg.Jobs)),
		finished: make(chan struct{}),
		workers:  make(map[string]*WorkerStatus),
	}
	for i, job := range cfg.Jobs {
		c.jobs[i].label = job.Label()
	}
	manifest := checkpoint.Manifest{
		Campaign: cfg.Campaign, SpecHash: cfg.SpecHash,
		TotalJobs: len(cfg.Jobs), ShardIndex: 1, ShardCount: 1,
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	path := checkpoint.JournalPath(cfg.Dir, cfg.Campaign, 1, 1)
	journal, replay, err := openJournal(path, manifest, cfg.Resume)
	if err != nil {
		return nil, err
	}
	c.journal = journal
	if replay != nil {
		recs, err := replay.ByIndex()
		if err != nil {
			journal.Close()
			return nil, err
		}
		for idx, rec := range recs {
			if idx < 0 || idx >= len(c.jobs) {
				journal.Close()
				return nil, fmt.Errorf("coord: %s: job index %d out of range [0,%d)", path, idx, len(c.jobs))
			}
			c.jobs[idx].done = true
			c.jobs[idx].body = rec.Body
			c.jobs[idx].attempts = rec.Attempts
			c.done++
			checkpoint.NoteResumed()
		}
	}
	if c.done == len(c.jobs) {
		close(c.finished)
	}
	return c, nil
}

// openJournal creates path, or recovers it when resume permits.
func openJournal(path string, manifest checkpoint.Manifest, resume bool) (*checkpoint.Journal, *checkpoint.Replay, error) {
	if _, err := os.Stat(path); err != nil {
		journal, cerr := checkpoint.Create(path, manifest)
		if cerr != nil {
			return nil, nil, cerr
		}
		return journal, nil, nil
	}
	if !resume {
		return nil, nil, fmt.Errorf("coord: journal %s already exists; pass -resume to continue it or remove it to start over", path)
	}
	journal, replay, err := checkpoint.Recover(path)
	if err != nil {
		return nil, nil, err
	}
	m := replay.Manifest
	if m.Campaign != manifest.Campaign || m.SpecHash != manifest.SpecHash || m.TotalJobs != manifest.TotalJobs {
		journal.Close()
		return nil, nil, fmt.Errorf("coord: %s was written for campaign %q spec %s (%d jobs), this run is %q spec %s (%d jobs)",
			path, m.Campaign, m.SpecHash, m.TotalJobs, manifest.Campaign, manifest.SpecHash, manifest.TotalJobs)
	}
	return journal, replay, nil
}

// Handler returns the coordinator's HTTP mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest", c.handleManifest)
	mux.HandleFunc("/lease", c.handleLease)
	mux.HandleFunc("/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/result", c.handleResult)
	mux.Handle("/status", c.StatusHandler())
	return mux
}

// StatusHandler serves the live Status JSON — mounted at /status on the
// coordinator's own mux and at /coord on the observability server.
func (c *Coordinator) StatusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
}

// Wait blocks until every job has a journaled outcome (nil) or the
// campaign failed terminally on some worker (that job's error), or ctx
// ends. Workers polling after completion are told Done so they exit.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-c.finished:
	case <-ctx.Done():
		return fmt.Errorf("coord: %s interrupted with %d of %d jobs complete",
			c.cfg.Campaign, c.doneCount(), len(c.cfg.Jobs))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

// doneCount returns the completed-job count.
func (c *Coordinator) doneCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.done
}

// Records returns every journaled outcome in job order. Valid only after
// Wait returned nil.
func (c *Coordinator) Records() ([]checkpoint.JobRecord, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failure != nil {
		return nil, c.failure
	}
	if c.done != len(c.jobs) {
		return nil, fmt.Errorf("coord: %s incomplete: %d of %d jobs", c.cfg.Campaign, c.done, len(c.jobs))
	}
	out := make([]checkpoint.JobRecord, len(c.jobs))
	for i := range c.jobs {
		out[i] = checkpoint.JobRecord{
			Index: i, Label: c.jobs[i].label,
			Attempts: c.jobs[i].attempts, Body: c.jobs[i].body,
		}
	}
	return out, nil
}

// Close releases the journal. Completed records are already durable.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journal.Close()
}

// Status snapshots the coordinator's live state.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Status{
		Campaign: c.cfg.Campaign, SpecHash: c.cfg.SpecHash,
		TotalJobs: len(c.jobs), Done: c.done, LeaseTTL: c.cfg.LeaseTTL,
		Expired: c.expired, Duplicates: c.dupes, Rejected: c.rejected,
		Workers: make(map[string]WorkerStatus, len(c.workers)),
	}
	if c.failure != nil {
		s.Failed = c.failure.Error()
	}
	now := c.cfg.now()
	for i := range c.jobs {
		if l := c.jobs[i].lease; l != nil && !c.jobs[i].done && now.Before(l.deadline) {
			s.Leased++
		}
	}
	for id, w := range c.workers {
		s.Workers[id] = *w
	}
	return s
}

// touchWorker records that a worker was heard from. Callers hold mu.
func (c *Coordinator) touchWorker(id string) *WorkerStatus {
	w := c.workers[id]
	if w == nil {
		w = &WorkerStatus{}
		c.workers[id] = w
	}
	w.LastSeen = c.cfg.now()
	return w
}

// handleManifest answers GET /manifest.
func (c *Coordinator) handleManifest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ManifestReply{
		Campaign: c.cfg.Campaign, SpecHash: c.cfg.SpecHash,
		TotalJobs: len(c.cfg.Jobs), LeaseTTL: c.cfg.LeaseTTL,
	})
}

// handleLease answers POST /lease: the next unleased (or expired-lease)
// job in index order, a retry-after hint, or done.
func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorker(req.Worker)
	if c.done == len(c.jobs) || c.failure != nil {
		writeJSON(w, http.StatusOK, LeaseReply{Done: true})
		return
	}
	now := c.cfg.now()
	for i := range c.jobs {
		js := &c.jobs[i]
		if js.done {
			continue
		}
		if l := js.lease; l != nil {
			if now.Before(l.deadline) {
				continue
			}
			// The holder went quiet past its deadline: re-issue. The job
			// is idempotent, so if the straggler finishes anyway its
			// upload is deduplicated against the new holder's.
			js.lease = nil
			c.expired++
			mExpired.Inc()
		}
		c.leaseSeq++
		l := &lease{
			id:       fmt.Sprintf("L%d-j%d", c.leaseSeq, i),
			jobIndex: i, worker: req.Worker,
			deadline: now.Add(c.cfg.LeaseTTL),
		}
		js.lease = l
		c.touchWorker(req.Worker).Leases++
		mLeases.Inc()
		job := c.cfg.Jobs[i]
		writeJSON(w, http.StatusOK, LeaseReply{
			LeaseID: l.id, JobIndex: i, Job: &job,
			TTL: c.cfg.LeaseTTL, SpecHash: c.cfg.SpecHash,
		})
		return
	}
	writeJSON(w, http.StatusOK, LeaseReply{RetryAfter: c.cfg.RetryAfter})
}

// handleHeartbeat answers POST /heartbeat: extends a live lease, or 410
// Gone when the lease expired (or was never issued / predates a restart)
// — the worker's cue that its job may have been re-issued. The worker
// keeps running regardless: its result stays valid.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorker(req.Worker)
	mHeartbeats.Inc()
	now := c.cfg.now()
	for i := range c.jobs {
		l := c.jobs[i].lease
		if l == nil || l.id != req.LeaseID {
			continue
		}
		if c.jobs[i].done {
			break
		}
		if !now.Before(l.deadline) {
			break
		}
		l.deadline = now.Add(c.cfg.LeaseTTL)
		w.WriteHeader(http.StatusOK)
		return
	}
	mStale.Inc()
	http.Error(w, "lease expired or unknown", http.StatusGone)
}

// handleResult answers POST /result. The upload is validated against the
// manifest, journaled durably, and deduplicated: leases play no part, so
// stragglers, resumed workers, and restarted coordinators all converge
// on the same byte stream.
func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req ResultRequest
	if !readJSON(w, r, &req) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorker(req.Worker)
	if req.SpecHash != c.cfg.SpecHash {
		c.rejected++
		mRejected.Inc()
		http.Error(w, fmt.Sprintf("spec hash %s does not match manifest %s — the worker ran a different job list",
			req.SpecHash, c.cfg.SpecHash), http.StatusUnprocessableEntity)
		return
	}
	if req.JobIndex < 0 || req.JobIndex >= len(c.jobs) {
		c.rejected++
		mRejected.Inc()
		http.Error(w, fmt.Sprintf("job index %d out of range [0,%d)", req.JobIndex, len(c.jobs)), http.StatusUnprocessableEntity)
		return
	}
	js := &c.jobs[req.JobIndex]
	if req.Error != "" {
		// A terminal worker-side failure fails the campaign: every table
		// needs every row (fleet.FirstError semantics).
		if c.failure == nil && !js.done {
			c.failure = fmt.Errorf("coord: job %s failed on worker %s: %s", js.label, req.Worker, req.Error)
			close(c.finished)
		}
		writeJSON(w, http.StatusOK, ResultReply{Status: "accepted"})
		return
	}
	if len(req.Body) == 0 {
		c.rejected++
		mRejected.Inc()
		http.Error(w, "empty result body", http.StatusUnprocessableEntity)
		return
	}
	if js.done {
		if string(js.body) != string(req.Body) {
			c.rejected++
			mRejected.Inc()
			http.Error(w, fmt.Sprintf("job %s already journaled with different bytes — non-deterministic worker or corrupted upload", js.label),
				http.StatusConflict)
			return
		}
		c.dupes++
		mDuplicates.Inc()
		writeJSON(w, http.StatusOK, ResultReply{Status: "duplicate"})
		return
	}
	if err := c.journal.Append(checkpoint.JobRecord{
		Index: req.JobIndex, Label: js.label, Attempts: req.Attempts, Body: req.Body,
	}); err != nil {
		// A result that cannot be made durable must not be acknowledged.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	js.done = true
	js.body = req.Body
	js.attempts = req.Attempts
	js.lease = nil
	c.done++
	c.touchWorker(req.Worker).Results++
	mResults.Inc()
	if c.done == len(c.jobs) {
		close(c.finished)
	}
	writeJSON(w, http.StatusOK, ResultReply{Status: "accepted"})
}

// readJSON decodes a request body, answering 400 on malformed input.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON encodes v with a stable field order.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// SortedWorkers lists a Status's worker IDs deterministically for
// rendering.
func (s Status) SortedWorkers() []string {
	ids := make([]string, 0, len(s.Workers))
	for id := range s.Workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
