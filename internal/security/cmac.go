// Package security implements the Z-Wave transport encapsulations used by
// the emulated testbed: Security 0 (AES-128 with the specification's
// fixed-temp-key inclusion weakness) and Security 2 (X25519 ECDH key
// agreement, AES-128-CMAC key derivation, AES-128-CCM authenticated
// encryption with SPAN nonce synchronisation).
//
// Everything is built on the Go standard library: crypto/aes, crypto/ecdh,
// crypto/subtle. AES-CMAC (RFC 4493) and AES-CCM (RFC 3610) are implemented
// here because the standard library does not ship them.
//
// # Concurrency and caching
//
// Package-level functions (CMAC, NewCCM, S0Encapsulate, S0Decapsulate) are
// safe for concurrent use: they share a process-wide keyed AES-context
// cache (see cache.go) whose entries are immutable after construction, so
// parallel fleet campaigns amortise key schedules across goroutines without
// locking on the per-frame path. Session is the exception — it carries
// per-flow SPAN counters and is confined to one campaign's simulation
// goroutine, like the rest of a testbed. Key slices handed to this package
// are read, copied where retained, and never mutated; callers likewise must
// not mutate a key while another goroutine is using it.
package security

import (
	"crypto/aes"
	"fmt"
)

const (
	// KeySize is the AES-128 key size used by every Z-Wave security class.
	KeySize = 16
	// BlockSize is the AES block size.
	BlockSize = aes.BlockSize
)

// CMAC computes AES-CMAC (RFC 4493) of msg under a 16-byte key. The AES
// block and subkeys come from the process-wide key-context cache, so
// repeated MACs under one key pay a single key expansion.
func CMAC(key, msg []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("security: CMAC key must be %d bytes, got %d", KeySize, len(key))
	}
	ctx, err := contextFor(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, BlockSize)
	sc := getScratch()
	cmacTo((*[BlockSize]byte)(out), ctx, sc, msg)
	putScratch(sc)
	return out, nil
}

// cmacTo computes AES-CMAC of msg into out using a cached context and
// pooled scratch (sc.last, sc.x). This is the allocation-free core the
// per-message S2 paths (nonce derivation, key expansion) run on.
func cmacTo(out *[BlockSize]byte, ctx *keyContext, sc *scratch, msg []byte) {
	n := (len(msg) + BlockSize - 1) / BlockSize
	lastComplete := n > 0 && len(msg)%BlockSize == 0
	if n == 0 {
		n = 1
	}

	sc.last = [BlockSize]byte{}
	if lastComplete {
		copy(sc.last[:], msg[(n-1)*BlockSize:])
		xorBlock(&sc.last, ctx.k1)
	} else {
		rem := msg[(n-1)*BlockSize:]
		copy(sc.last[:], rem)
		sc.last[len(rem)] = 0x80
		xorBlock(&sc.last, ctx.k2)
	}

	sc.x = [BlockSize]byte{}
	for i := 0; i < n-1; i++ {
		xorBytes(&sc.x, msg[i*BlockSize:(i+1)*BlockSize])
		ctx.block.Encrypt(sc.x[:], sc.x[:])
	}
	xorBlock(&sc.x, sc.last)
	ctx.block.Encrypt(sc.x[:], sc.x[:])
	*out = sc.x
}

// mustCMAC is CMAC for keys known to be the right length.
func mustCMAC(key, msg []byte) []byte {
	out, err := CMAC(key, msg)
	if err != nil {
		panic(err)
	}
	return out
}

// cmacSubkeys derives the RFC 4493 subkeys K1 and K2.
func cmacSubkeys(encrypt func(dst, src []byte)) (k1, k2 [BlockSize]byte) {
	var l [BlockSize]byte
	encrypt(l[:], l[:])
	k1 = dbl(l)
	k2 = dbl(k1)
	return k1, k2
}

// dbl is doubling in GF(2^128) with the CMAC reduction constant 0x87.
func dbl(in [BlockSize]byte) (out [BlockSize]byte) {
	carry := byte(0)
	for i := BlockSize - 1; i >= 0; i-- {
		b := in[i]
		out[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		out[BlockSize-1] ^= 0x87
	}
	return out
}

func xorBlock(dst *[BlockSize]byte, src [BlockSize]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func xorBytes(dst *[BlockSize]byte, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}
