package device

import (
	"testing"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

func TestMulticastReachesAddressedNodesOnly(t *testing.T) {
	m := radio.NewMedium(vtime.NewSimClock())
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})

	counts := map[protocol.NodeID]int{}
	for _, id := range []protocol.NodeID{2, 3, 9} {
		id := id
		n := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: id, Name: "n"})
		n.Handler = func(f *protocol.Frame) {
			if f.CommandClass() == 0x25 {
				counts[id]++
			}
		}
	}

	if err := hub.SendMulticast([]protocol.NodeID{2, 9}, []byte{0x25, 0x01, 0x00}); err != nil {
		t.Fatal(err)
	}
	if counts[2] != 1 || counts[9] != 1 {
		t.Fatalf("addressed nodes missed the frame: %v", counts)
	}
	if counts[3] != 0 {
		t.Fatalf("unaddressed node processed the frame: %v", counts)
	}
}

func TestMulticastPayloadRoundTrip(t *testing.T) {
	payload, err := protocol.EncodeMulticastPayload([]protocol.NodeID{1, 8, 17}, []byte{0x20, 0x01, 0xFF})
	if err != nil {
		t.Fatal(err)
	}
	ids, apl, err := protocol.ParseMulticastPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 8 || ids[2] != 17 {
		t.Fatalf("ids = %v", ids)
	}
	if len(apl) != 3 || apl[0] != 0x20 {
		t.Fatalf("apl = % X", apl)
	}
}

func TestMulticastValidation(t *testing.T) {
	if _, err := protocol.EncodeMulticastPayload(nil, nil); err == nil {
		t.Fatal("accepted empty addressee list")
	}
	if _, err := protocol.EncodeMulticastPayload([]protocol.NodeID{0xFF}, nil); err == nil {
		t.Fatal("accepted broadcast addressee")
	}
	if _, _, err := protocol.ParseMulticastPayload([]byte{0x05, 0x01}); err == nil {
		t.Fatal("accepted truncated mask")
	}
	if _, _, err := protocol.ParseMulticastPayload([]byte{0x00, 0x01}); err == nil {
		t.Fatal("accepted zero mask length")
	}
}
