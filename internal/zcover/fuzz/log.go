package fuzz

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"zcover/internal/oracle"
	"zcover/internal/telemetry"
)

// LogEntry is the serialised form of one finding — the bug log Algorithm 1
// saves "to file for future analysis" (line 16). Entries are written as
// JSON lines so logs concatenate and stream.
type LogEntry struct {
	// Strategy and Device label the campaign.
	Strategy string `json:"strategy"`
	Device   string `json:"device"`
	// Signature is the deduplication key.
	Signature string `json:"signature"`
	// Kind, Class, Cmd describe the anomaly and its vector.
	Kind  string `json:"kind"`
	Class byte   `json:"cmdcl"`
	Cmd   byte   `json:"cmd"`
	// Payload is the hex-encoded trigger application payload.
	Payload string `json:"payload"`
	// Packets and ElapsedSec locate the discovery within the campaign.
	Packets    int     `json:"packets"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// DurationSec is the observed outage (0 for persistent effects).
	DurationSec float64 `json:"duration_sec"`
	// Detail is the oracle's description.
	Detail string `json:"detail"`
	// Confidence is the oracle's grade when the finding was observed under
	// channel impairment ("suspect"); omitted for confirmed findings, so
	// clean-campaign logs are byte-identical to older versions.
	Confidence string `json:"confidence,omitempty"`
	// Trace is the flight-recorder snapshot at discovery: the last frames
	// on the air up to and including the trigger. Present only when the
	// campaign ran with a flight recorder attached.
	Trace []TraceFrame `json:"trace,omitempty"`
}

// TraceFrame is the serialised form of one flight-recorder frame: the raw
// bytes as transmitted plus the medium's delivery verdict, timestamped on
// the simulated timeline.
type TraceFrame struct {
	// Seq is the recorder-assigned sequence number.
	Seq uint64 `json:"seq"`
	// At is the simulated instant the frame finished arriving.
	At time.Time `json:"at"`
	// From names the transmitting transceiver.
	From string `json:"from,omitempty"`
	// Raw is the hex-encoded frame as it went on the air.
	Raw string `json:"raw"`
	// AirtimeUS is the frame's medium occupancy in microseconds.
	AirtimeUS int64 `json:"airtime_us"`
	// Security is the transport encapsulation class ("none", "s0", "s2").
	Security string `json:"security,omitempty"`
	// Targets/Lost/Corrupted is the delivery verdict.
	Targets   int `json:"targets,omitempty"`
	Lost      int `json:"lost,omitempty"`
	Corrupted int `json:"corrupted,omitempty"`
}

// RawFrame decodes the hex frame bytes.
func (tf TraceFrame) RawFrame() ([]byte, error) {
	raw, err := hex.DecodeString(tf.Raw)
	if err != nil {
		return nil, fmt.Errorf("fuzz: trace frame %d raw %q: %w", tf.Seq, tf.Raw, err)
	}
	return raw, nil
}

// Airtime reconstructs the medium occupancy.
func (tf TraceFrame) Airtime() time.Duration {
	return time.Duration(tf.AirtimeUS) * time.Microsecond
}

// traceFrames converts a flight-recorder snapshot to its log form.
func traceFrames(recs []telemetry.FrameRecord) []TraceFrame {
	if len(recs) == 0 {
		return nil
	}
	out := make([]TraceFrame, len(recs))
	for i, r := range recs {
		out[i] = TraceFrame{
			Seq:       r.Seq,
			At:        r.At,
			From:      r.From,
			Raw:       hex.EncodeToString(r.Raw),
			AirtimeUS: r.Airtime.Microseconds(),
			Security:  string(r.Security),
			Targets:   r.Targets,
			Lost:      r.Lost,
			Corrupted: r.Corrupted,
		}
	}
	return out
}

// WriteLog serialises a campaign's findings as JSON lines.
func WriteLog(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	for _, f := range res.Findings {
		entry := LogEntry{
			Strategy:    string(res.Strategy),
			Device:      res.Device,
			Signature:   f.Signature,
			Kind:        f.Event.Kind.String(),
			Class:       f.Event.Class,
			Cmd:         f.Event.Cmd,
			Payload:     hex.EncodeToString(f.TriggerPayload),
			Packets:     f.Packets,
			ElapsedSec:  f.Elapsed.Seconds(),
			DurationSec: f.Event.Duration.Seconds(),
			Detail:      f.Event.Detail,
			Trace:       traceFrames(f.Trace),
		}
		if f.Event.Confidence != oracle.ConfidenceConfirmed {
			entry.Confidence = f.Event.Confidence.String()
		}
		if err := enc.Encode(entry); err != nil {
			return fmt.Errorf("fuzz: writing bug log: %w", err)
		}
	}
	return nil
}

// ReadLog parses a JSON-lines bug log, the WriteLog counterpart. Decoding
// is strict about structure — a malformed or truncated line, or trailing
// data after the JSON object, fails with its line number — but tolerant of
// unknown fields, so logs written by newer versions still replay.
func ReadLog(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var entry LogEntry
		if err := json.Unmarshal(text, &entry); err != nil {
			return nil, fmt.Errorf("fuzz: bug log line %d: %w", line, err)
		}
		out = append(out, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fuzz: reading bug log: %w", err)
	}
	return out, nil
}

// TriggerPayload decodes the entry's hex payload.
func (e LogEntry) TriggerPayload() ([]byte, error) {
	raw, err := hex.DecodeString(e.Payload)
	if err != nil {
		return nil, fmt.Errorf("fuzz: bug log payload %q: %w", e.Payload, err)
	}
	return raw, nil
}

// Elapsed reconstructs the discovery time.
func (e LogEntry) Elapsed() time.Duration {
	return time.Duration(e.ElapsedSec * float64(time.Second))
}
