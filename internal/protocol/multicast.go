package protocol

import "fmt"

// Multicast addressing (G.9959 multicast frames). The destination field of
// a multicast frame is unused; instead the payload carries a node bitmask
// prefix naming every addressee:
//
//	[maskLen] [mask bytes...] <APL payload>
const (
	// MaxMulticastMaskLen bounds the bitmask (29 bytes cover all 232 nodes).
	MaxMulticastMaskLen = 29
)

// EncodeMulticastPayload prepends the addressee bitmask to an application
// payload. The mask is sized to the highest addressed node.
func EncodeMulticastPayload(addressees []NodeID, apl []byte) ([]byte, error) {
	if len(addressees) == 0 {
		return nil, fmt.Errorf("%w: no addressees", ErrBadRoute)
	}
	maskLen := 0
	for _, id := range addressees {
		if !id.IsUnicast() {
			return nil, fmt.Errorf("%w: addressee %s", ErrBadRoute, id)
		}
		if n := (int(id)-1)/8 + 1; n > maskLen {
			maskLen = n
		}
	}
	mask := make([]byte, maskLen)
	for _, id := range addressees {
		mask[(id-1)/8] |= 1 << ((id - 1) % 8)
	}
	out := make([]byte, 0, 1+maskLen+len(apl))
	out = append(out, byte(maskLen))
	out = append(out, mask...)
	return append(out, apl...), nil
}

// ParseMulticastPayload splits a multicast payload into addressees and the
// application payload. The returned APL aliases payload.
func ParseMulticastPayload(payload []byte) ([]NodeID, []byte, error) {
	if len(payload) < 2 {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrNotRouted, len(payload))
	}
	maskLen := int(payload[0])
	if maskLen == 0 || maskLen > MaxMulticastMaskLen || len(payload) < 1+maskLen {
		return nil, nil, fmt.Errorf("%w: mask length %d", ErrBadRoute, maskLen)
	}
	var ids []NodeID
	for i, b := range payload[1 : 1+maskLen] {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != 0 {
				ids = append(ids, NodeID(i*8+bit+1))
			}
		}
	}
	return ids, payload[1+maskLen:], nil
}

// NewMulticastFrame builds a multicast data frame.
func NewMulticastFrame(home HomeID, src NodeID, addressees []NodeID, apl []byte) (*Frame, error) {
	payload, err := EncodeMulticastPayload(addressees, apl)
	if err != nil {
		return nil, err
	}
	f := NewDataFrame(home, src, NodeBroadcast, payload)
	f.Control.Header = HeaderMulticast
	f.Control.AckRequested = false // multicast frames are unacknowledged
	return f, nil
}
