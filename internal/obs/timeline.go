// Package obs is the campaign execution profiler: it turns "the fleet
// doesn't scale" into a ranked, reproducible bottleneck report.
//
// The package layers four pieces on the telemetry registry and span
// tracer from internal/telemetry:
//
//   - Worker timelines (Timeline): per-worker wall-clock intervals
//     attributed to campaign phases (testbed build, scan, discovery, the
//     fuzz loop, checkpoint persist, idle). Serialization shows up as
//     idle gaps; phase dominance shows up as wall share.
//   - Contention capture (StartProfiling, SnapshotProfiles,
//     TopContendedLocks, SampleRuntimeMetrics): opt-in runtime mutex and
//     block profiling, pprof-format snapshots at campaign end, and
//     runtime/metrics samples (GC, goroutines, scheduler latency) folded
//     into the metrics registry.
//   - A unified observability HTTP server (Server): one mux serving
//     /debug/pprof, /metrics (Prometheus text from the registry),
//     /healthz, and /timeline (the live worker timeline as JSON) —
//     replacing the fire-and-forget pprof goroutines the CLIs used to
//     start.
//   - The scaling report (ScalingReport): parallel efficiency across
//     worker counts with per-phase wall-time attribution and a
//     deterministic bottleneck ranking.
//
// Determinism contract: nothing in this package is consulted by the
// simulation. Attaching a Timeline, enabling contention profiling, or
// serving the HTTP endpoints cannot change what a campaign finds — the
// experiment tables stay byte-identical with profiling on or off, at any
// worker count (pinned in internal/harness tests).
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Phase names the fleet and harness attribute worker wall time to. A
// custom fleet runner that never reports phases has its whole run
// attributed to PhaseRun.
const (
	// PhaseIdle is time a worker spends without a job: waiting for work
	// at the queue, or drained at the end of a campaign. Idle gaps while
	// jobs remain queued are the signature of serialization.
	PhaseIdle = "idle"
	// PhaseBuild is per-attempt testbed construction (devices, pairing,
	// S2 key exchange), before the campaign proper starts.
	PhaseBuild = "build"
	// PhaseScan is phase 1 of the pipeline: passive fingerprinting.
	PhaseScan = "scan"
	// PhaseDiscover is phase 2: unknown-properties discovery.
	PhaseDiscover = "discover"
	// PhaseFuzz is phase 3: the fuzz loop, oracle grading included (the
	// oracle observes findings inline on the simulated timeline).
	PhaseFuzz = "fuzz"
	// PhasePersist is checkpoint journaling: encoding the outcome and the
	// fsync'd journal append, serialized across workers.
	PhasePersist = "persist"
	// PhaseRun is runner execution not otherwise attributed (custom
	// runners, or the slice between phases).
	PhaseRun = "run"
)

// Interval is one contiguous stretch of one worker's wall time spent in a
// single phase.
type Interval struct {
	// Worker is the fleet worker lane (0-based).
	Worker int `json:"worker"`
	// Job labels the job being executed ("" for idle intervals).
	Job string `json:"job,omitempty"`
	// Phase is one of the Phase* constants (or a custom phase name).
	Phase string `json:"phase"`
	// Start and End bound the interval on the wall clock.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
}

// Dur returns the interval's length.
func (iv Interval) Dur() time.Duration { return iv.End.Sub(iv.Start) }

// lane is one worker's recording state.
type lane struct {
	intervals []Interval
	open      Interval // open.Phase == "" means no interval in flight
	active    bool
}

// Timeline records per-worker phase intervals. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Timeline is a valid
// no-op recorder, mirroring telemetry.Tracer), so the fleet and harness
// call sites need no guards.
//
// Recording cost is one mutex acquisition per phase transition — a
// handful per job, nowhere near the per-frame hot path.
type Timeline struct {
	mu    sync.Mutex
	now   func() time.Time
	lanes map[int]*lane
	start time.Time
}

// NewTimeline returns an empty timeline on the wall clock.
func NewTimeline() *Timeline {
	return &Timeline{now: time.Now, lanes: map[int]*lane{}}
}

// SetNow overrides the timeline clock (tests). Not for concurrent use
// with recording.
func (t *Timeline) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
}

// StartWorker opens worker w's lane in the idle phase. The fleet calls it
// once per worker goroutine before the job loop.
func (t *Timeline) StartWorker(w int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	if t.start.IsZero() || now.Before(t.start) {
		t.start = now
	}
	ln := t.lane(w)
	ln.active = true
	t.transition(ln, w, "", PhaseIdle, now)
}

// StopWorker closes worker w's open interval and marks the lane drained.
func (t *Timeline) StopWorker(w int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ln := t.lane(w)
	t.closeOpen(ln, t.now())
	ln.active = false
}

// Phase transitions worker w into the given phase of the given job,
// closing whatever interval was open. Use job "" with PhaseIdle for
// between-job waits.
func (t *Timeline) Phase(w int, job, phase string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.transition(t.lane(w), w, job, phase, t.now())
}

// lane returns worker w's lane, creating it. Callers hold t.mu.
func (t *Timeline) lane(w int) *lane {
	ln, ok := t.lanes[w]
	if !ok {
		ln = &lane{}
		t.lanes[w] = ln
	}
	return ln
}

// closeOpen completes the lane's open interval at now. Callers hold t.mu.
func (t *Timeline) closeOpen(ln *lane, now time.Time) {
	if ln.open.Phase == "" {
		return
	}
	ln.open.End = now
	ln.intervals = append(ln.intervals, ln.open)
	ln.open = Interval{}
}

// transition closes the open interval and opens a new one. Callers hold t.mu.
func (t *Timeline) transition(ln *lane, w int, job, phase string, now time.Time) {
	t.closeOpen(ln, now)
	ln.open = Interval{Worker: w, Job: job, Phase: phase, Start: now}
}

// WorkerStats is one worker's aggregate over a timeline snapshot.
type WorkerStats struct {
	// Worker is the lane index.
	Worker int `json:"worker"`
	// BusySec and IdleSec split the worker's recorded wall time.
	BusySec float64 `json:"busy_sec"`
	IdleSec float64 `json:"idle_sec"`
	// Jobs is how many distinct job labels the worker executed.
	Jobs int `json:"jobs"`
}

// BusyShare is the busy fraction of the worker's recorded time.
func (w WorkerStats) BusyShare() float64 {
	total := w.BusySec + w.IdleSec
	if total <= 0 {
		return 0
	}
	return w.BusySec / total
}

// Snapshot is a consistent copy of a timeline with aggregates.
type Snapshot struct {
	// Start is the earliest recorded instant.
	Start time.Time `json:"start"`
	// At is when the snapshot was taken.
	At time.Time `json:"at"`
	// Workers aggregates each lane, ordered by worker index.
	Workers []WorkerStats `json:"workers"`
	// PhaseWallSec is total wall time per phase, summed across workers.
	PhaseWallSec map[string]float64 `json:"phase_wall_sec"`
	// Intervals is every completed interval plus in-flight ones truncated
	// at the snapshot instant, ordered by worker then start time.
	Intervals []Interval `json:"intervals"`
}

// WallSec is the snapshot's elapsed wall clock (Start to At).
func (s Snapshot) WallSec() float64 {
	if s.Start.IsZero() {
		return 0
	}
	return s.At.Sub(s.Start).Seconds()
}

// PhaseShares returns phases sorted by descending wall share of the
// summed per-phase time (idle included).
func (s Snapshot) PhaseShares() []PhaseShare {
	var total float64
	for _, sec := range s.PhaseWallSec {
		total += sec
	}
	out := make([]PhaseShare, 0, len(s.PhaseWallSec))
	for phase, sec := range s.PhaseWallSec {
		ps := PhaseShare{Phase: phase, WallSec: sec}
		if total > 0 {
			ps.Share = sec / total
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WallSec != out[j].WallSec {
			return out[i].WallSec > out[j].WallSec
		}
		return out[i].Phase < out[j].Phase
	})
	return out
}

// PhaseShare is one phase's slice of the fleet's summed wall time.
type PhaseShare struct {
	Phase   string  `json:"phase"`
	WallSec float64 `json:"wall_sec"`
	Share   float64 `json:"share"`
}

// Snapshot captures the timeline, truncating in-flight intervals at the
// current instant. Safe to call concurrently with recording (the
// /timeline endpoint does). A nil timeline yields a zero snapshot.
func (t *Timeline) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	snap := Snapshot{Start: t.start, At: now, PhaseWallSec: map[string]float64{}}
	workers := make([]int, 0, len(t.lanes))
	for w := range t.lanes {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	for _, w := range workers {
		ln := t.lanes[w]
		ivs := append([]Interval(nil), ln.intervals...)
		if ln.open.Phase != "" {
			open := ln.open
			open.End = now
			ivs = append(ivs, open)
		}
		ws := WorkerStats{Worker: w}
		jobs := map[string]bool{}
		for _, iv := range ivs {
			sec := iv.Dur().Seconds()
			snap.PhaseWallSec[iv.Phase] += sec
			if iv.Phase == PhaseIdle {
				ws.IdleSec += sec
			} else {
				ws.BusySec += sec
				if iv.Job != "" {
					jobs[iv.Job] = true
				}
			}
		}
		ws.Jobs = len(jobs)
		snap.Workers = append(snap.Workers, ws)
		snap.Intervals = append(snap.Intervals, ivs...)
	}
	return snap
}

// WriteJSON renders the snapshot as one indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
