// Package harness orchestrates complete experiments: it assembles a
// testbed, runs the three ZCover phases (or a baseline fuzzer) end to end,
// and regenerates every table and figure of the paper's evaluation
// section. Each experiment driver lives in its own file (table3.go,
// fig12.go, ...).
package harness

import (
	"fmt"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/telemetry"
	"zcover/internal/testbed"
	"zcover/internal/vfuzz"
	"zcover/internal/zcover/discover"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// PassiveScanWindow is how long campaigns sniff before interrogating the
// target; the testbed schedules periodic slave reports inside it.
const PassiveScanWindow = 2 * time.Minute

// Options attaches optional observability to a campaign run. The zero value
// runs the campaign exactly as before: no callback, no recorder, no trace.
// Every attachment is a pure observer — enabling them cannot change what the
// campaign finds, only what it records along the way.
type Options struct {
	// OnFinding is invoked live for each unique finding.
	OnFinding func(fuzz.Finding)
	// FlightRecorderDepth, when positive, attaches a packet flight recorder
	// of that depth to the testbed medium for the duration of the run, and
	// each finding carries a snapshot of the last frames on the air at the
	// moment of discovery (Finding.Trace).
	FlightRecorderDepth int
	// Tracer, when non-nil, receives one "phase" span per pipeline stage
	// (scan, discover, fuzz), timestamped on the testbed's simulated clock
	// so traces are deterministic.
	Tracer *telemetry.Tracer
	// OnPhase, when non-nil, is invoked at the start of each pipeline
	// phase ("scan", "discover", "fuzz") on the campaign goroutine —
	// the hook the fleet's worker timeline attributes wall time through.
	OnPhase func(phase string)
	// FrameBudget, when positive, caps the campaign's injected test frames
	// (fuzz.Config.FrameBudget) — the equal-budget knob the covfuzz
	// comparison tables use. Unlike the observers above this does change
	// what the campaign finds; it is a budget, not an attachment.
	FrameBudget int
}

// phaseSpan opens a span on the simulated timeline; no-op without a tracer.
// It also fires OnPhase, so span emission and wall-time attribution stay in
// lockstep at every phase boundary.
func (o Options) phaseSpan(tb *testbed.Testbed, name string, attrs map[string]string) *telemetry.Span {
	if o.OnPhase != nil {
		o.OnPhase(name)
	}
	return o.Tracer.SpanAt(name, "phase", attrs, tb.Clock.Now())
}

// Campaign is one complete ZCover run against one testbed.
type Campaign struct {
	// Fingerprint is the phase-1 output.
	Fingerprint scan.Fingerprint
	// Discovery is the phase-2 output (zero value for β/γ, which skip it
	// in whole or in part).
	Discovery discover.Result
	// Fuzz is the phase-3 campaign result.
	Fuzz *fuzz.Result
}

// RunZCover executes the full ZCover pipeline against the testbed's
// controller with the given strategy and fuzzing budget.
func RunZCover(tb *testbed.Testbed, strategy fuzz.Strategy, duration time.Duration, seed int64) (*Campaign, error) {
	return RunZCoverWith(tb, strategy, duration, seed, Options{})
}

// RunZCoverObserved is RunZCover with a live finding callback.
func RunZCoverObserved(tb *testbed.Testbed, strategy fuzz.Strategy, duration time.Duration, seed int64, onFinding func(fuzz.Finding)) (*Campaign, error) {
	return RunZCoverWith(tb, strategy, duration, seed, Options{OnFinding: onFinding})
}

// RunZCoverWith is RunZCover with observability attachments.
func RunZCoverWith(tb *testbed.Testbed, strategy fuzz.Strategy, duration time.Duration, seed int64, opts Options) (*Campaign, error) {
	reg, err := cmdclass.Load()
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	d := dongle.New(tb.Medium, tb.Region)

	var recorder *telemetry.FlightRecorder
	if opts.FlightRecorderDepth > 0 {
		recorder = telemetry.NewFlightRecorder(opts.FlightRecorderDepth)
		tb.Medium.SetFlightRecorder(recorder)
		defer tb.Medium.SetFlightRecorder(nil)
	}
	attrs := map[string]string{"device": tb.Controller.Profile().Index, "strategy": string(strategy)}

	// Phase 1: known-properties fingerprinting over live traffic.
	span := opts.phaseSpan(tb, "scan", attrs)
	tb.ScheduleTraffic(12, 10*time.Second)
	fp, err := scan.FingerprintTarget(d, PassiveScanWindow, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: fingerprinting: %w", err)
	}
	out := &Campaign{Fingerprint: fp}
	span.SetAttr("nodes", fmt.Sprint(len(fp.Nodes)))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}

	// Phase 2: unknown-properties discovery (full strategy only — the β
	// ablation deliberately ignores unknown classes, γ ignores both).
	var listed, prioritized []*cmdclass.Class
	for _, id := range fp.Listed {
		if cls, ok := reg.Get(id); ok {
			listed = append(listed, cls)
		}
	}
	if strategy == fuzz.StrategyFull {
		span = opts.phaseSpan(tb, "discover", attrs)
		out.Discovery, err = discover.Run(d, reg, fp)
		if err != nil {
			return nil, fmt.Errorf("harness: discovery: %w", err)
		}
		prioritized = out.Discovery.Prioritized
		span.SetAttr("confirmed", fmt.Sprint(len(out.Discovery.ConfirmedCommands)))
		if err := span.EndAt(tb.Clock.Now()); err != nil {
			return nil, err
		}
	}

	// Phase 3: position-sensitive mutation fuzzing.
	var mut *mutate.Mutator
	if strategy == fuzz.StrategyRandom {
		mut = mutate.NewRandom(seed)
	} else {
		mut = mutate.New(mutate.Semantics{Controller: fp.Controller, KnownNodes: fp.Nodes}, seed)
	}
	queue := fuzz.BuildQueue(strategy, reg, listed, prioritized, seed)
	span = opts.phaseSpan(tb, "fuzz", attrs)
	fcfg := fuzz.Config{
		Duration:    duration,
		OnFinding:   opts.OnFinding,
		Recorder:    recorder,
		FrameBudget: opts.FrameBudget,
	}
	if tb.Chaos != nil {
		// Under chaos the engine grades findings against the injector's
		// fault timeline (Confidence) and re-probes liveness before calling
		// an outage, so impairment-induced silence is not a vulnerability.
		fcfg.Impairment = tb.Chaos
		fcfg.PingAttempts = 3
	}
	engine, err := fuzz.New(d, fp, queue, mut, strategy, tb.Controller.Profile().Index, fcfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	sub := tb.Bus.Subscribe(engine.Observe)
	defer sub.Unsubscribe()
	out.Fuzz = engine.Run()
	if strategy == fuzz.StrategyFull {
		// Only the full strategy runs discovery; for β/γ the engine's own
		// count stands rather than being clobbered by the zero-value
		// Discovery.
		out.Fuzz.CommandsCovered = len(out.Discovery.ConfirmedCommands)
	}
	span.SetAttr("findings", fmt.Sprint(len(out.Fuzz.Findings)))
	span.SetAttr("packets", fmt.Sprint(out.Fuzz.PacketsSent))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}
	return out, nil
}

// RunVFuzz executes the VFuzz baseline against the testbed's controller.
// VFuzz fingerprints the network the same way (it, too, scans for home and
// node IDs) and then fuzzes MAC frames for the budget.
func RunVFuzz(tb *testbed.Testbed, duration time.Duration, seed int64) (*fuzz.Result, error) {
	return RunVFuzzObserved(tb, duration, seed, nil)
}

// RunVFuzzObserved is RunVFuzz with a live finding callback.
func RunVFuzzObserved(tb *testbed.Testbed, duration time.Duration, seed int64, onFinding func(fuzz.Finding)) (*fuzz.Result, error) {
	return RunVFuzzWith(tb, duration, seed, Options{OnFinding: onFinding})
}

// RunVFuzzWith is RunVFuzz with observability attachments. The VFuzz
// baseline has no discovery phase, so it emits only scan and fuzz spans.
func RunVFuzzWith(tb *testbed.Testbed, duration time.Duration, seed int64, opts Options) (*fuzz.Result, error) {
	d := dongle.New(tb.Medium, tb.Region)
	if opts.FlightRecorderDepth > 0 {
		recorder := telemetry.NewFlightRecorder(opts.FlightRecorderDepth)
		tb.Medium.SetFlightRecorder(recorder)
		defer tb.Medium.SetFlightRecorder(nil)
	}
	attrs := map[string]string{"device": tb.Controller.Profile().Index, "strategy": string(vfuzz.StrategyVFuzz)}

	span := opts.phaseSpan(tb, "scan", attrs)
	tb.ScheduleTraffic(12, 10*time.Second)
	nets := scan.Passive(d, PassiveScanWindow)
	if len(nets) == 0 {
		return nil, fmt.Errorf("harness: vfuzz: no traffic observed")
	}
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}

	net := nets[0]
	span = opts.phaseSpan(tb, "fuzz", attrs)
	engine := vfuzz.New(d, net.Home, net.Controller, vfuzz.Config{
		Duration: duration, Seed: seed, OnFinding: opts.OnFinding,
	})
	sub := tb.Bus.Subscribe(engine.Observe)
	defer sub.Unsubscribe()
	res := engine.Run()
	res.Device = tb.Controller.Profile().Index
	span.SetAttr("findings", fmt.Sprint(len(res.Findings)))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}
	return res, nil
}
