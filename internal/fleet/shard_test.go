package fleet_test

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"zcover/internal/fleet"
	"zcover/internal/testbed"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    fleet.Shard
		wantErr bool
	}{
		{"", fleet.Shard{}, false},
		{"1/1", fleet.Shard{}, false}, // 1/1 collapses to unsharded
		{"1/3", fleet.Shard{Index: 1, Count: 3}, false},
		{"3/3", fleet.Shard{Index: 3, Count: 3}, false},
		{"0/3", fleet.Shard{}, true},
		{"4/3", fleet.Shard{}, true},
		{"2", fleet.Shard{}, true},
		{"a/b", fleet.Shard{}, true},
		{"2/0", fleet.Shard{}, true},
	}
	for _, c := range cases {
		got, err := fleet.ParseShard(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseShard(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseShard(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestShardPartition: every job index belongs to exactly one of the n
// shards, and the zero Shard owns everything.
func TestShardPartition(t *testing.T) {
	const total, n = 11, 3
	owned := make([]int, total)
	for i := 1; i <= n; i++ {
		s := fleet.Shard{Index: i, Count: n}
		for _, idx := range s.Indices(total) {
			owned[idx]++
		}
	}
	for idx, c := range owned {
		if c != 1 {
			t.Errorf("job %d owned by %d shards, want exactly 1", idx, c)
		}
	}
	var zero fleet.Shard
	if got := zero.Indices(4); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("zero shard owns %v, want all", got)
	}
	if zero.String() != "" || (fleet.Shard{Index: 2, Count: 3}).String() != "2/3" {
		t.Error("Shard.String mismatch")
	}
}

// TestWithResumeServesCachedJobs: cached jobs must not execute (no
// testbed build, no runner call), must be marked Cached, and must not be
// re-persisted; fresh jobs must execute and persist exactly once.
func TestWithResumeServesCachedJobs(t *testing.T) {
	jobs := []fleet.Job{
		zcoverJob("a", "D1", 1), zcoverJob("b", "D2", 2), zcoverJob("c", "D3", 3),
	}
	ran := make(map[string]bool)
	var mu sync.Mutex
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (string, error) {
		mu.Lock()
		ran[job.Name] = true
		mu.Unlock()
		return "ran:" + job.Name, nil
	}
	persisted := make(map[int]string)
	f := fleet.New(jobs, runner, fleet.Config{Workers: 2}).WithResume(
		func(i int, job fleet.Job) (string, bool) {
			if job.Name == "b" {
				return "cached:b", true
			}
			return "", false
		},
		func(i int, job fleet.Job, res fleet.Result[string]) error {
			// persistMu serializes us; no lock needed.
			persisted[i] = res.Value
			return nil
		})
	results := f.Run()
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if ran["b"] {
		t.Error("cached job executed anyway")
	}
	if !results[1].Cached || results[1].Value != "cached:b" || results[1].Attempts != 0 {
		t.Errorf("cached result = %+v", results[1])
	}
	if results[0].Cached || results[2].Cached {
		t.Error("fresh jobs marked cached")
	}
	if want := map[int]string{0: "ran:a", 2: "ran:c"}; !reflect.DeepEqual(persisted, want) {
		t.Errorf("persisted = %v, want %v", persisted, want)
	}
	p := f.Progress()
	if !p.Finished() || p.Done != 3 {
		t.Errorf("progress after cached run: %+v", p)
	}
}

// TestPersistFailureFailsJob: a journal that cannot be written must fail
// the job loudly, not report durable work that is not.
func TestPersistFailureFailsJob(t *testing.T) {
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		return 1, nil
	}
	f := fleet.New([]fleet.Job{zcoverJob("j", "D1", 1)}, runner, fleet.Config{Workers: 1}).
		WithResume(nil, func(i int, job fleet.Job, res fleet.Result[int]) error {
			return errors.New("disk full")
		})
	results := f.Run()
	if results[0].Err == nil {
		t.Fatal("persist failure swallowed")
	}
	if p := f.Progress(); p.Failed != 1 {
		t.Errorf("failed = %d, want 1", p.Failed)
	}
}
