package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zcover/internal/fleet"
)

// testJobs is a tiny job list for protocol tests. The coordinator never
// executes jobs, so the specs just need to be distinct.
func testJobs(n int) []fleet.Job {
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		jobs[i] = fleet.Job{Name: fmt.Sprintf("t/%d", i), Device: "D1", Seed: int64(i), Budget: time.Minute}
	}
	return jobs
}

// fakeClock is the deterministic test time source for Config.now.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// newTestCoord builds a coordinator over n jobs with a fake clock and a
// httptest server in front of its handler.
func newTestCoord(t *testing.T, n int, ttl time.Duration) (*Coordinator, *httptest.Server, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	c, err := New(Config{
		Campaign: "prot", Jobs: testJobs(n), SpecHash: "cafe0123",
		Dir: t.TempDir(), LeaseTTL: ttl, now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv, clock
}

// post sends one JSON request and decodes the reply into out (when the
// status is 2xx). It returns the HTTP status and raw body.
func post(t *testing.T, srv *httptest.Server, path string, req, out any) (int, string) {
	t.Helper()
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if resp.StatusCode/100 == 2 && out != nil {
		if err := json.Unmarshal(body.Bytes(), out); err != nil {
			t.Fatalf("%s: decoding %q: %v", path, body.String(), err)
		}
	}
	return resp.StatusCode, body.String()
}

func leaseAs(t *testing.T, srv *httptest.Server, worker string) LeaseReply {
	t.Helper()
	var reply LeaseReply
	if code, body := post(t, srv, "/lease", LeaseRequest{Worker: worker}, &reply); code != http.StatusOK {
		t.Fatalf("lease: %d %s", code, body)
	}
	return reply
}

func uploadBody(idx int, s string) ResultRequest {
	return ResultRequest{
		Worker: "w", JobIndex: idx, SpecHash: "cafe0123",
		Attempts: 1, Body: json.RawMessage(s),
	}
}

func TestManifestAndLeaseDrain(t *testing.T) {
	c, srv, _ := newTestCoord(t, 3, time.Minute)

	var m ManifestReply
	if code, body := post(t, srv, "/manifest", LeaseRequest{Worker: "w1"}, &m); code != http.StatusOK {
		t.Fatalf("manifest: %d %s", code, body)
	}
	if m.Campaign != "prot" || m.SpecHash != "cafe0123" || m.TotalJobs != 3 || m.LeaseTTL != time.Minute {
		t.Fatalf("manifest = %+v", m)
	}

	// Leases come out in job-index order, each with the full spec.
	for i := 0; i < 3; i++ {
		l := leaseAs(t, srv, "w1")
		if l.Done || l.RetryAfter != 0 || l.JobIndex != i || l.Job == nil || l.SpecHash != m.SpecHash {
			t.Fatalf("lease %d = %+v", i, l)
		}
		if l.Job.Name != fmt.Sprintf("t/%d", i) {
			t.Fatalf("lease %d carries job %q", i, l.Job.Name)
		}
	}
	// Everything leased and nothing done: back off.
	if l := leaseAs(t, srv, "w2"); l.RetryAfter <= 0 {
		t.Fatalf("all-leased reply = %+v", l)
	}

	// Upload all three; the next poll reports done.
	for i := 0; i < 3; i++ {
		var reply ResultReply
		if code, body := post(t, srv, "/result", uploadBody(i, fmt.Sprintf(`{"i":%d}`, i)), &reply); code != http.StatusOK {
			t.Fatalf("result %d: %d %s", i, code, body)
		}
		if reply.Status != "accepted" {
			t.Fatalf("result %d status %q", i, reply.Status)
		}
	}
	if l := leaseAs(t, srv, "w1"); !l.Done {
		t.Fatalf("post-completion lease = %+v", l)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if rec.Index != i || string(rec.Body) != fmt.Sprintf(`{"i":%d}`, i) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
}

// TestLeaseExpiryReissueAndStragglerDedup is the straggler matrix: an
// expired lease is re-issued to another worker, and when the original
// holder finishes anyway its byte-identical upload is deduplicated while
// a conflicting one is refused.
func TestLeaseExpiryReissueAndStragglerDedup(t *testing.T) {
	c, srv, clock := newTestCoord(t, 1, time.Minute)

	l1 := leaseAs(t, srv, "slow")
	if l1.JobIndex != 0 {
		t.Fatalf("lease = %+v", l1)
	}
	// Within TTL the job stays with its holder.
	clock.Advance(59 * time.Second)
	if l := leaseAs(t, srv, "fast"); l.RetryAfter <= 0 {
		t.Fatalf("pre-expiry lease = %+v", l)
	}
	// Past the deadline it is re-issued under a fresh lease ID.
	clock.Advance(2 * time.Second)
	l2 := leaseAs(t, srv, "fast")
	if l2.JobIndex != 0 || l2.LeaseID == l1.LeaseID {
		t.Fatalf("re-issued lease = %+v (original %+v)", l2, l1)
	}
	if st := c.Status(); st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}

	// The new holder completes the job...
	var reply ResultReply
	post(t, srv, "/result", uploadBody(0, `{"v":1}`), &reply)
	if reply.Status != "accepted" {
		t.Fatalf("fresh upload status %q", reply.Status)
	}
	// ...then the straggler lands the identical bytes: deduplicated.
	if code, _ := post(t, srv, "/result", uploadBody(0, `{"v":1}`), &reply); code != http.StatusOK || reply.Status != "duplicate" {
		t.Fatalf("duplicate upload: %d %q", code, reply.Status)
	}
	if st := c.Status(); st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
	// Conflicting bytes for a done job are corruption, never silently kept.
	if code, body := post(t, srv, "/result", uploadBody(0, `{"v":2}`), nil); code != http.StatusConflict {
		t.Fatalf("conflicting upload: %d %s", code, body)
	}
	if st := c.Status(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}

func TestHeartbeatExtendsLiveLeaseOnly(t *testing.T) {
	_, srv, clock := newTestCoord(t, 1, time.Minute)
	l := leaseAs(t, srv, "w1")

	// A heartbeat inside the TTL extends the deadline: after 59s+59s the
	// job is still held even though 118s > TTL.
	clock.Advance(59 * time.Second)
	if code, body := post(t, srv, "/heartbeat", HeartbeatRequest{Worker: "w1", LeaseID: l.LeaseID}, nil); code != http.StatusOK {
		t.Fatalf("heartbeat: %d %s", code, body)
	}
	clock.Advance(59 * time.Second)
	if got := leaseAs(t, srv, "w2"); got.RetryAfter <= 0 {
		t.Fatalf("lease after heartbeat = %+v", got)
	}

	// Past the extended deadline the heartbeat answers 410 Gone.
	clock.Advance(2 * time.Second)
	if code, _ := post(t, srv, "/heartbeat", HeartbeatRequest{Worker: "w1", LeaseID: l.LeaseID}, nil); code != http.StatusGone {
		t.Fatalf("post-expiry heartbeat: %d, want 410", code)
	}
	// So does a heartbeat for a lease that was never issued (the
	// coordinator-restarted case: in-memory leases are gone).
	if code, _ := post(t, srv, "/heartbeat", HeartbeatRequest{Worker: "w1", LeaseID: "L99-j0"}, nil); code != http.StatusGone {
		t.Fatalf("unknown-lease heartbeat: %d, want 410", code)
	}
}

func TestResultValidation(t *testing.T) {
	c, srv, _ := newTestCoord(t, 2, time.Minute)

	// A spec-hash mismatch means the worker ran a different job list:
	// refused, never journaled.
	bad := uploadBody(0, `{"v":1}`)
	bad.SpecHash = "deadbeef"
	if code, body := post(t, srv, "/result", bad, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("spec mismatch: %d %s", code, body)
	}
	// Out-of-range index and empty body are likewise refused.
	if code, _ := post(t, srv, "/result", uploadBody(7, `{"v":1}`), nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad index accepted: %d", code)
	}
	if code, _ := post(t, srv, "/result", uploadBody(0, ``), nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("empty body accepted: %d", code)
	}
	if st := c.Status(); st.Rejected != 3 || st.Done != 0 {
		t.Fatalf("status after rejections = %+v", st)
	}
	// Malformed JSON is a 400.
	resp, err := srv.Client().Post(srv.URL+"/result", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	}
}

func TestTerminalJobFailureFailsCampaign(t *testing.T) {
	c, srv, _ := newTestCoord(t, 2, time.Minute)
	req := ResultRequest{Worker: "w1", JobIndex: 1, SpecHash: "cafe0123", Error: "boom after retries"}
	if code, body := post(t, srv, "/result", req, nil); code != http.StatusOK {
		t.Fatalf("error upload: %d %s", code, body)
	}
	// The campaign is failed: Wait surfaces the job error and further
	// lease polls tell workers to exit.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	err := c.Wait(ctx)
	if err == nil || !strings.Contains(err.Error(), "boom after retries") {
		t.Fatalf("Wait = %v", err)
	}
	if l := leaseAs(t, srv, "w2"); !l.Done {
		t.Fatalf("lease after failure = %+v", l)
	}
	if _, err := c.Records(); err == nil {
		t.Fatal("Records succeeded on a failed campaign")
	}
	if st := c.Status(); st.Failed == "" {
		t.Fatalf("status.Failed empty: %+v", st)
	}
}

// TestCoordinatorRestartRecoversJournal is the coordinator half of the
// crash matrix: a restarted coordinator rebuilds completed jobs from its
// journal and re-leases only the rest.
func TestCoordinatorRestartRecoversJournal(t *testing.T) {
	dir := t.TempDir()
	jobs := testJobs(3)
	cfg := Config{Campaign: "prot", Jobs: jobs, SpecHash: "cafe0123", Dir: dir}
	c1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer(c1.Handler())
	leaseAs(t, srv1, "w1") // job 0 leased (in-memory only)
	leaseAs(t, srv1, "w1") // job 1 leased, then completed:
	var reply ResultReply
	post(t, srv1, "/result", uploadBody(1, `{"v":"one"}`), &reply)
	srv1.Close()
	c1.Close()

	// Without Resume the journal is refused, like the CLI rule.
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("New over existing journal = %v", err)
	}
	// A drifted spec hash is refused even with Resume.
	drifted := cfg
	drifted.Resume = true
	drifted.SpecHash = "deadbeef"
	if _, err := New(drifted); err == nil {
		t.Fatal("resumed journal with mismatched spec hash")
	}

	cfg.Resume = true
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	if st := c2.Status(); st.Done != 1 {
		t.Fatalf("recovered done = %d, want 1", st.Done)
	}
	// Old leases died with the process: jobs 0 and 2 are leased afresh,
	// job 1 never is.
	if l := leaseAs(t, srv2, "w2"); l.JobIndex != 0 {
		t.Fatalf("first post-restart lease = %+v", l)
	}
	if l := leaseAs(t, srv2, "w2"); l.JobIndex != 2 {
		t.Fatalf("second post-restart lease = %+v", l)
	}
	post(t, srv2, "/result", uploadBody(0, `{"v":"zero"}`), &reply)
	post(t, srv2, "/result", uploadBody(2, `{"v":"two"}`), &reply)
	recs, err := c2.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{`{"v":"zero"}`, `{"v":"one"}`, `{"v":"two"}`} {
		if string(recs[i].Body) != want {
			t.Fatalf("record %d = %s, want %s", i, recs[i].Body, want)
		}
	}
}

// fakeRunner returns deterministic bytes derived from the job spec, like
// a real (deterministic) campaign would.
func fakeRunner(job fleet.Job) (json.RawMessage, int, error) {
	return json.RawMessage(fmt.Sprintf(`{"ran":%q}`, job.Name)), 1, nil
}

func TestWorkerDrainsCampaign(t *testing.T) {
	c, srv, _ := newTestCoord(t, 3, time.Minute)
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, ID: "w1", Runner: fakeRunner,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Leased != 3 || stats.Ran != 3 || stats.Uploaded != 3 || stats.Cached != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	recs, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	if string(recs[2].Body) != `{"ran":"t/2"}` {
		t.Fatalf("record 2 = %s", recs[2].Body)
	}
	// A worker joining a finished campaign exits immediately.
	late, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, ID: "w2", Runner: fakeRunner,
	})
	if err != nil || late.Leased != 0 {
		t.Fatalf("late worker: %+v, %v", late, err)
	}
	st := c.Status()
	if got := st.SortedWorkers(); len(got) != 2 || got[0] != "w1" || got[1] != "w2" {
		t.Fatalf("workers = %v", got)
	}
	if w := st.Workers["w1"]; w.Results != 3 {
		t.Fatalf("w1 footprint = %+v", w)
	}
}

// TestWorkerLocalCacheSurvivesRestart: a worker keeping a local journal
// re-uploads finished work after a restart instead of re-executing it —
// here against a brand-new coordinator that lost everything.
func TestWorkerLocalCacheSurvivesRestart(t *testing.T) {
	workerDir := t.TempDir()
	jobs := testJobs(3)
	ran := 0
	counting := func(job fleet.Job) (json.RawMessage, int, error) {
		ran++
		return fakeRunner(job)
	}

	c1, srv1, _ := newTestCoord(t, 3, time.Minute)
	if _, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv1.URL, ID: "w1", Runner: counting, Dir: workerDir,
	}); err != nil {
		t.Fatal(err)
	}
	want, err := c1.Records()
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("ran = %d, want 3", ran)
	}

	// The coordinator is replaced wholesale (fresh dir, empty journal);
	// the restarted worker serves every job from its cache.
	c2, err := New(Config{Campaign: "prot", Jobs: jobs, SpecHash: "cafe0123", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv2.URL, ID: "w1", Runner: counting, Dir: workerDir, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 || stats.Cached != 3 || stats.Ran != 0 {
		t.Fatalf("restarted worker re-executed: ran=%d stats=%+v", ran, stats)
	}
	got, err := c2.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if string(got[i].Body) != string(want[i].Body) {
			t.Fatalf("record %d differs after cache replay", i)
		}
	}

	// A cache from a different campaign is refused, not replayed.
	c3, err := New(Config{Campaign: "prot", Jobs: testJobs(2), SpecHash: "0ddba11", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	srv3 := httptest.NewServer(c3.Handler())
	defer srv3.Close()
	if _, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv3.URL, ID: "w1", Runner: counting, Dir: workerDir, Resume: true,
	}); err == nil {
		t.Fatal("stale worker cache accepted for a different campaign")
	}
}

// TestWorkerRetriesTransientErrors: 5xx answers and transport failures
// are retried with backoff; 4xx answers are terminal.
func TestWorkerRetriesTransientErrors(t *testing.T) {
	_, srv, _ := newTestCoord(t, 1, time.Minute)
	fails := 2
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fails > 0 && r.URL.Path == "/lease" {
			fails--
			http.Error(w, "starting up", http.StatusServiceUnavailable)
			return
		}
		srv.Config.Handler.ServeHTTP(w, r)
	}))
	defer flaky.Close()
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: flaky.URL, ID: "w1", Runner: fakeRunner,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retries < 2 || stats.Uploaded != 1 {
		t.Fatalf("stats = %+v", stats)
	}

	terminal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no such campaign", http.StatusNotFound)
	}))
	defer terminal.Close()
	if _, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: terminal.URL, ID: "w1", Runner: fakeRunner,
		Backoff: time.Millisecond,
	}); err == nil {
		t.Fatal("terminal 404 retried forever (or swallowed)")
	}

	// An orphaned worker — coordinator gone for good — exhausts its retry
	// budget and exits with the transport error instead of spinning.
	gone := httptest.NewServer(http.HandlerFunc(nil))
	gone.Close()
	_, err = RunWorker(context.Background(), WorkerConfig{
		Coordinator: gone.URL, ID: "w1", Runner: fakeRunner,
		Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
		RetryBudget: 20 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("orphaned worker = %v", err)
	}
}

// TestWorkerRunnerFailureFailsCampaign: a terminal runner error reaches
// the coordinator and fails the whole campaign (all-or-nothing).
func TestWorkerRunnerFailureFailsCampaign(t *testing.T) {
	c, srv, _ := newTestCoord(t, 2, time.Minute)
	broken := func(job fleet.Job) (json.RawMessage, int, error) {
		return nil, 2, fmt.Errorf("testbed exploded")
	}
	if _, err := RunWorker(context.Background(), WorkerConfig{
		Coordinator: srv.URL, ID: "w1", Runner: broken,
	}); err == nil || !strings.Contains(err.Error(), "testbed exploded") {
		t.Fatalf("worker error = %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := c.Wait(ctx); err == nil || !strings.Contains(err.Error(), "testbed exploded") {
		t.Fatalf("Wait = %v", err)
	}
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{Jobs: testJobs(1), SpecHash: "x", Dir: "d"}); err == nil {
		t.Fatal("accepted empty campaign")
	}
	if _, err := New(Config{Campaign: "c", SpecHash: "x", Dir: "d"}); err == nil {
		t.Fatal("accepted empty job list")
	}
	if _, err := New(Config{Campaign: "c", Jobs: testJobs(1), Dir: "d"}); err == nil {
		t.Fatal("accepted empty spec hash")
	}
	if _, err := New(Config{Campaign: "c", Jobs: testJobs(1), SpecHash: "x"}); err == nil {
		t.Fatal("accepted empty dir")
	}
}
