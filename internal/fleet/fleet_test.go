package fleet_test

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/harness"
	"zcover/internal/oracle"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// jobSpec builds a short ZCover job for pool-mechanics tests.
func zcoverJob(name, device string, seed int64) fleet.Job {
	return fleet.Job{
		Name: name, Device: device,
		Strategy: fuzz.StrategyFull, Seed: seed, Budget: 2 * time.Minute,
	}
}

func TestRunPreservesJobOrder(t *testing.T) {
	jobs := []fleet.Job{
		zcoverJob("a", "D1", 1), zcoverJob("b", "D2", 2), zcoverJob("c", "D3", 3),
	}
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (string, error) {
		return job.Name + "/" + job.Device, nil
	}
	results := fleet.Run(jobs, runner, fleet.Config{Workers: 3})
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, want := range []string{"a/D1", "b/D2", "c/D3"} {
		if results[i].Err != nil {
			t.Fatalf("job %d failed: %v", i, results[i].Err)
		}
		if results[i].Value != want {
			t.Errorf("results[%d] = %q, want %q (completion order must not leak)", i, results[i].Value, want)
		}
		if results[i].Attempts != 1 {
			t.Errorf("results[%d].Attempts = %d, want 1", i, results[i].Attempts)
		}
	}
	if err := fleet.FirstError(results); err != nil {
		t.Errorf("FirstError = %v, want nil", err)
	}
}

// TestDeterministicAcrossWorkerCounts is the core fleet invariant: the
// same job list with the same seeds yields identical results whether the
// campaigns run sequentially or across eight workers.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := []fleet.Job{
		zcoverJob("d1", "D1", 41),
		zcoverJob("d2", "D2", 42),
		{Name: "d1-vfuzz", Device: "D1", Baseline: true, Seed: 41, Budget: 2 * time.Minute},
		{Name: "d3-beta", Device: "D3", Strategy: fuzz.StrategyKnownOnly, Seed: 43, Budget: 2 * time.Minute},
	}
	run := func(workers int) []fleet.Result[harness.FleetOutcome] {
		return fleet.Run(jobs, harness.RunFleetJob, fleet.Config{Workers: workers})
	}
	seq := run(1)
	par := run(8)
	if err := fleet.FirstError(seq); err != nil {
		t.Fatalf("sequential run failed: %v", err)
	}
	if err := fleet.FirstError(par); err != nil {
		t.Fatalf("parallel run failed: %v", err)
	}
	for i := range jobs {
		if seq[i].Attempts != par[i].Attempts {
			t.Errorf("job %s: attempts %d (workers=1) vs %d (workers=8)",
				jobs[i].Name, seq[i].Attempts, par[i].Attempts)
		}
		if !reflect.DeepEqual(seq[i].Value, par[i].Value) {
			t.Errorf("job %s: campaign outcome differs between workers=1 and workers=8", jobs[i].Name)
		}
	}
}

func TestPanicIsolationAndRetry(t *testing.T) {
	var boomAttempts atomic.Int64
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		if job.Name == "boom" && boomAttempts.Add(1) == 1 {
			panic("simulated campaign crash")
		}
		return int(job.Seed), nil
	}
	jobs := []fleet.Job{zcoverJob("ok1", "D1", 10), zcoverJob("boom", "D2", 20), zcoverJob("ok2", "D3", 30)}
	results := fleet.Run(jobs, runner, fleet.Config{Workers: 2, MaxAttempts: 2})

	if err := fleet.FirstError(results); err != nil {
		t.Fatalf("retry should have rescued the panicking job: %v", err)
	}
	if results[1].Attempts != 2 {
		t.Errorf("boom job ran %d attempts, want 2", results[1].Attempts)
	}
	if len(results[1].AttemptErrors) != 1 || results[1].AttemptErrors[0] != "campaign panicked: simulated campaign crash" {
		t.Errorf("AttemptErrors = %q", results[1].AttemptErrors)
	}
	for _, i := range []int{0, 2} {
		if results[i].Attempts != 1 || results[i].Value != int(jobs[i].Seed) {
			t.Errorf("job %s was disturbed by its neighbour's panic: %+v", jobs[i].Name, results[i])
		}
	}
}

func TestRetryExhaustionReportsPanicError(t *testing.T) {
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		panic(fmt.Sprintf("always broken: %s", job.Name))
	}
	results := fleet.Run([]fleet.Job{zcoverJob("doomed", "D1", 1)}, runner,
		fleet.Config{Workers: 1, MaxAttempts: 3})
	r := results[0]
	if r.Err == nil {
		t.Fatal("job must fail after exhausting attempts")
	}
	if r.Attempts != 3 || len(r.AttemptErrors) != 3 {
		t.Errorf("attempts = %d, attempt errors = %d, want 3/3", r.Attempts, len(r.AttemptErrors))
	}
	var pe *fleet.PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("Err %v does not unwrap to *PanicError", r.Err)
	}
	if pe.Stack == "" {
		t.Error("recovered panic lost its stack")
	}
}

func TestRetryGetsFreshTestbed(t *testing.T) {
	var attempts atomic.Int64
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		if len(tb.Bus.Events()) != 0 {
			t.Error("retry observed oracle events from a previous attempt")
		}
		if tb.Bus.Subscribers() != 0 {
			t.Error("retry observed leaked bus subscribers from a previous attempt")
		}
		tb.Bus.Emit(oracle.Event{Device: job.Device, Kind: oracle.HostCrash})
		if attempts.Add(1) == 1 {
			return 0, errors.New("transient failure")
		}
		return 1, nil
	}
	results := fleet.Run([]fleet.Job{zcoverJob("j", "D1", 7)}, runner,
		fleet.Config{Workers: 1, MaxAttempts: 2})
	if results[0].Err != nil {
		t.Fatalf("second attempt should succeed: %v", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", results[0].Attempts)
	}
}

func TestUnknownDeviceFailsAfterAttempts(t *testing.T) {
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		t.Error("runner must not be called when the testbed cannot be built")
		return 0, nil
	}
	results := fleet.Run([]fleet.Job{zcoverJob("bad", "D99", 1)}, runner, fleet.Config{Workers: 1})
	if results[0].Err == nil {
		t.Fatal("unknown device must fail the job")
	}
	if results[0].Attempts != fleet.DefaultMaxAttempts {
		t.Errorf("attempts = %d, want default %d", results[0].Attempts, fleet.DefaultMaxAttempts)
	}
}

func TestProgressCountersAndRollback(t *testing.T) {
	var failedOnce atomic.Bool
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		obs.Finding()
		obs.Finding()
		obs.Packets(100)
		obs.SimTime(time.Hour)
		if job.Name == "flaky" && !failedOnce.Swap(true) {
			return 0, errors.New("first attempt dies after reporting metrics")
		}
		return 1, nil
	}
	var mu sync.Mutex
	var last fleet.Progress
	f := fleet.New([]fleet.Job{zcoverJob("steady", "D1", 1), zcoverJob("flaky", "D2", 2)},
		runner, fleet.Config{Workers: 1, MaxAttempts: 2, OnProgress: func(p fleet.Progress) {
			mu.Lock()
			last = p
			mu.Unlock()
		}})
	results := f.Run()
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}

	p := f.Progress()
	if !p.Finished() || p.Done != 2 || p.Failed != 0 || p.Total != 2 {
		t.Errorf("final progress %+v", p)
	}
	if p.Retried != 1 {
		t.Errorf("retried = %d, want 1", p.Retried)
	}
	// The flaky job's first attempt reported 2 findings/100 packets/1h sim
	// before dying; those must have been rolled back, leaving exactly two
	// successful attempts' worth.
	if p.Findings != 4 || p.Packets != 200 || p.SimTime != 2*time.Hour {
		t.Errorf("metrics not rolled back: findings=%d packets=%d sim=%s",
			p.Findings, p.Packets, p.SimTime)
	}
	mu.Lock()
	defer mu.Unlock()
	if !last.Finished() {
		t.Errorf("last OnProgress snapshot not terminal: %+v", last)
	}
}

func TestLiveMetricsFlowThroughHarnessRunner(t *testing.T) {
	f := fleet.New([]fleet.Job{zcoverJob("live", "D1", 41)}, harness.RunFleetJob,
		fleet.Config{Workers: 1})
	results := f.Run()
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}
	res := results[0].Value.Fuzz()
	p := f.Progress()
	if p.Findings != len(res.Findings) {
		t.Errorf("progress findings = %d, campaign found %d", p.Findings, len(res.Findings))
	}
	if p.Packets != int64(res.PacketsSent) {
		t.Errorf("progress packets = %d, campaign sent %d", p.Packets, res.PacketsSent)
	}
	if p.SimTime != res.Elapsed {
		t.Errorf("progress sim time = %s, campaign elapsed %s", p.SimTime, res.Elapsed)
	}
	if len(res.Findings) == 0 {
		t.Error("2-minute D1 campaign found nothing; live-metric test is vacuous")
	}
}

func TestJobLabel(t *testing.T) {
	cases := []struct {
		job  fleet.Job
		want string
	}{
		{fleet.Job{Name: "explicit", Device: "D1"}, "explicit"},
		{fleet.Job{Device: "D2", Strategy: fuzz.StrategyFull}, "D2/zcover-full"},
		{fleet.Job{Device: "D3", Baseline: true}, "D3/vfuzz"},
	}
	for _, c := range cases {
		if got := c.job.Label(); got != c.want {
			t.Errorf("Label() = %q, want %q", got, c.want)
		}
	}
}
