package controller

import (
	"sort"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// classCmd keys the responder table.
type classCmd struct {
	class cmdclass.ClassID
	cmd   cmdclass.CommandID
}

// replyFunc builds an application-layer reply payload (nil = no reply).
type replyFunc func(c *Controller, params []byte) []byte

// responders is the firmware's command-processing table: the 53 commands
// every tested controller visibly responds to. Systematic validation
// testing (§III-C2) confirms exactly this set, which is where the "CMD 53"
// column of Table V comes from. The table is identical across D1–D7: the
// differences between modern and legacy models live in the NIF (listed
// classes), not the firmware's actual reach — which is the paper's point
// about unlisted properties.
var responders = map[classCmd]replyFunc{
	// CMDCL 0x01 — hidden Z-Wave protocol class (6 commands).
	{cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoRequestNodeInfo}: func(c *Controller, params []byte) []byte {
		// Only self-interrogation is answered; requests about other nodes
		// are for those nodes to answer.
		if len(params) >= 1 && params[0] != 0x00 && protocol.NodeID(params[0]) != c.node.ID() {
			return nil
		}
		return c.identity().NIFPayload()
	},
	{cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoFindNodesInRange}: func(c *Controller, _ []byte) []byte {
		c.nifSeq++
		return []byte{0x01, 0x07, c.nifSeq} // COMMAND_COMPLETE
	},
	{cmdclass.ClassZWaveProtocol, cmdclass.CmdProtoGetNodesInRange}: func(c *Controller, _ []byte) []byte {
		mask := byte(0)
		for _, id := range c.table.IDs() {
			if id <= 8 {
				mask |= 1 << (id - 1)
			}
		}
		return []byte{0x01, 0x06, 0x01, mask} // RANGE_INFO
	},
	{cmdclass.ClassZWaveProtocol, 0x11}: func(c *Controller, _ []byte) []byte {
		c.nifSeq++
		return []byte{0x01, 0x07, c.nifSeq} // SUC_NODE_ID -> COMMAND_COMPLETE
	},
	{cmdclass.ClassZWaveProtocol, 0x12}: func(_ *Controller, params []byte) []byte {
		result := byte(0x00)
		if len(params) >= 1 && params[0] == 0x01 {
			result = 0x01
		}
		return []byte{0x01, 0x13, result, 0x00} // SET_SUC -> SET_SUC_ACK
	},
	{cmdclass.ClassZWaveProtocol, 0x15}: func(c *Controller, _ []byte) []byte {
		c.nifSeq++
		return []byte{0x01, 0x07, c.nifSeq} // STATIC_ROUTE_REQUEST -> COMPLETE
	},

	// CMDCL 0x02 — hidden manufacturer diagnostic class (2 commands).
	{cmdclass.ClassProprietaryMfg, 0x01}: func(c *Controller, params []byte) []byte {
		id := byte(0x00)
		if len(params) >= 1 {
			id = params[0]
		}
		return []byte{0x02, 0x02, id, c.profile.FirmwareVersion[0], c.profile.FirmwareVersion[1]}
	},
	{cmdclass.ClassProprietaryMfg, 0x03}: func(_ *Controller, params []byte) []byte {
		id := byte(0x00)
		if len(params) >= 1 {
			id = params[0]
		}
		return []byte{0x02, 0x02, id, 0x00} // SELF_TEST -> DIAG_REPORT pass
	},

	// BASIC (1).
	{cmdclass.ClassBasic, cmdclass.CmdBasicGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x20, 0x03, 0x00}
	},

	// ASSOCIATION_GRP_INFO (3).
	{cmdclass.ClassAssocGroupInfo, cmdclass.CmdAGIGroupNameGet}: func(_ *Controller, _ []byte) []byte {
		return append([]byte{0x59, 0x02, 0x01, 0x08}, []byte("Lifeline")...)
	},
	{cmdclass.ClassAssocGroupInfo, cmdclass.CmdAGIGroupInfoGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x59, 0x04, 0x01, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00}
	},
	{cmdclass.ClassAssocGroupInfo, cmdclass.CmdAGICommandListGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x59, 0x06, 0x01, 0x02, 0x5A, 0x01}
	},

	// ZWAVEPLUS_INFO (1).
	{cmdclass.ClassZWavePlusInfo, 0x01}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x5E, 0x02, 0x02, 0x05, 0x00, 0x01, 0x00, 0x01, 0x00}
	},

	// SUPERVISION (1).
	{cmdclass.ClassSupervision, 0x01}: func(_ *Controller, params []byte) []byte {
		session := byte(0x00)
		if len(params) >= 1 {
			session = params[0] & 0x3F
		}
		return []byte{0x6C, 0x02, session, 0xFF, 0x00}
	},

	// MANUFACTURER_SPECIFIC (2).
	{cmdclass.ClassManufacturerSpec, 0x04}: func(c *Controller, _ []byte) []byte {
		return []byte{0x72, 0x05, 0x00, 0x86, 0x00, 0x01, c.profile.FirmwareVersion[0], c.profile.FirmwareVersion[1]}
	},
	{cmdclass.ClassManufacturerSpec, 0x06}: func(_ *Controller, params []byte) []byte {
		idType := byte(0x01)
		if len(params) >= 1 {
			idType = params[0]
		}
		return []byte{0x72, 0x07, idType, 0x04, 0xDE, 0xAD, 0xBE, 0xEF}
	},

	// POWERLEVEL (2).
	{cmdclass.ClassPowerlevel, 0x02}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x73, 0x03, 0x00, 0x00}
	},
	{cmdclass.ClassPowerlevel, 0x05}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x73, 0x06, 0x02, 0x01, 0x00, 0x00}
	},

	// INCLUSION_CONTROLLER (1).
	{cmdclass.ClassInclusionCtrl, 0x01}: func(_ *Controller, params []byte) []byte {
		step := byte(0x01)
		if len(params) >= 2 {
			step = params[1]
		}
		return []byte{0x74, 0x02, step, 0x01}
	},

	// FIRMWARE_UPDATE_MD (2).
	{cmdclass.ClassFirmwareUpdateMD, cmdclass.CmdFirmwareMDGet}: func(c *Controller, _ []byte) []byte {
		return []byte{0x7A, 0x02, 0x00, 0x86, c.profile.FirmwareVersion[0], c.profile.FirmwareVersion[1], 0xAB, 0xCD}
	},
	{cmdclass.ClassFirmwareUpdateMD, cmdclass.CmdFirmwareRequestGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x7A, 0x04, 0x00} // REQUEST_REPORT: invalid combination
	},

	// ASSOCIATION (2). SET (0x01) and REMOVE (0x04) mutate the stored
	// groups in dispatchPayload; only the Get-style commands reply.
	{cmdclass.ClassAssociation, 0x02}: func(c *Controller, params []byte) []byte {
		group := byte(0x01)
		if len(params) >= 1 {
			group = params[0]
		}
		reply := []byte{0x85, 0x03, group, 0x05, 0x00}
		for _, m := range c.associations[group] {
			reply = append(reply, byte(m))
		}
		return reply
	},
	{cmdclass.ClassAssociation, 0x05}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x85, 0x06, 0x01}
	},

	// VERSION (4).
	{cmdclass.ClassVersion, cmdclass.CmdVersionGet}: func(c *Controller, _ []byte) []byte {
		return []byte{0x86, 0x12, 0x01, 0x07, 0x0F, c.profile.FirmwareVersion[0], c.profile.FirmwareVersion[1]}
	},
	{cmdclass.ClassVersion, cmdclass.CmdVersionCommandClassGet}: func(c *Controller, params []byte) []byte {
		if len(params) < 1 {
			return nil
		}
		// Reaching here means the class is supported (bug 10 consumed the
		// unsupported case).
		return []byte{0x86, 0x14, params[0], 0x01}
	},
	{cmdclass.ClassVersion, 0x15}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x86, 0x16, 0x07}
	},
	{cmdclass.ClassVersion, cmdclass.CmdVersionZWaveSWGet}: func(c *Controller, _ []byte) []byte {
		return []byte{0x86, 0x18, c.profile.FirmwareVersion[0], c.profile.FirmwareVersion[1], 0x00, 0x00, 0x00}
	},

	// SECURITY (S0) (3).
	{cmdclass.ClassSecurity0, cmdclass.CmdS0SupportedGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x98, 0x03, 0x00, 0x62, 0x63}
	},
	{cmdclass.ClassSecurity0, cmdclass.CmdS0SchemeGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x98, 0x05, 0x00}
	},
	{cmdclass.ClassSecurity0, cmdclass.CmdS0NonceGet}: func(c *Controller, _ []byte) []byte {
		c.nifSeq++
		n := c.nifSeq
		return []byte{0x98, 0x80, n, n ^ 0x5A, n ^ 0xC3, n + 1, n + 2, n + 3, n + 4, n + 5}
	},

	// SECURITY_2 (2).
	{cmdclass.ClassSecurity2, cmdclass.CmdS2NonceGet}: func(c *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		reply := []byte{0x9F, 0x02, seq, 0x01}
		for i := byte(0); i < 16; i++ {
			reply = append(reply, seq^i^byte(c.stats.Replies))
		}
		return reply
	},
	{cmdclass.ClassSecurity2, cmdclass.CmdS2KexGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x9F, 0x05, 0x00, 0x02, 0x01, 0x07}
	},

	// CONFIGURATION (2) — implemented but unlisted.
	{cmdclass.ClassConfiguration, 0x05}: func(_ *Controller, params []byte) []byte {
		p := byte(0x01)
		if len(params) >= 1 {
			p = params[0]
		}
		return []byte{0x70, 0x06, p, 0x01, 0x00}
	},
	{cmdclass.ClassConfiguration, 0x08}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x70, 0x09, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00}
	},

	// WAKE_UP (1) — implemented but unlisted.
	{cmdclass.ClassWakeUp, cmdclass.CmdWakeUpIntervalGet}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x84, 0x06, 0x00, 0x0E, 0x10, 0x01}
	},

	// NETWORK_MANAGEMENT_INCLUSION (6) — implemented but unlisted.
	{cmdclass.ClassNetworkMgmtIncl, 0x07}: nmStatusReply(0x08, 0x07), // FAILED_NODE_REMOVE: not failed
	{cmdclass.ClassNetworkMgmtIncl, 0x09}: nmStatusReply(0x0A, 0x07), // FAILED_NODE_REPLACE: reject
	{cmdclass.ClassNetworkMgmtIncl, 0x0B}: nmStatusReply(0x0C, 0x22), // NEIGHBOR_UPDATE: done
	{cmdclass.ClassNetworkMgmtIncl, 0x0D}: nmStatusReply(0x0E, 0x00), // RETURN_ROUTE_ASSIGN
	{cmdclass.ClassNetworkMgmtIncl, 0x0F}: nmStatusReply(0x10, 0x00), // RETURN_ROUTE_DELETE
	{cmdclass.ClassNetworkMgmtIncl, 0x18}: nmStatusReply(0x19, 0x01), // S2_BOOTSTRAP

	// NETWORK_MANAGEMENT_BASIC (4) — implemented but unlisted.
	{0x4D, 0x01}: nmStatusReply4D(0x02, 0x00), // LEARN_MODE_SET: refused
	{0x4D, 0x03}: nmStatusReply4D(0x04, 0x00), // NETWORK_UPDATE_REQUEST
	{0x4D, 0x06}: nmStatusReply4D(0x07, 0x07), // DEFAULT_SET: unauthorized
	{0x4D, 0x08}: func(_ *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{0x4D, 0x09, seq, 0x00, 0x11, 0x22, 0x33, 0x44}
	},

	// NETWORK_MANAGEMENT_PROXY (3) — implemented but unlisted.
	{0x52, 0x01}: func(c *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		reply := []byte{0x52, 0x02, seq, 0x00, 0x01}
		mask := byte(0)
		for _, id := range c.table.IDs() {
			if id <= 8 {
				mask |= 1 << (id - 1)
			}
		}
		return append(reply, mask)
	},
	{0x52, 0x03}: func(c *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{0x52, 0x04, seq, 0x00}
	},
	{0x52, 0x05}: func(_ *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{0x52, 0x06, seq, 0x01, 0x00}
	},

	// NETWORK_MANAGEMENT_PRIMARY (1) — implemented but unlisted.
	{0x54, 0x01}: func(_ *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{0x54, 0x02, seq, 0x07, 0x00} // reject
	},

	// NM_INSTALLATION_MAINTENANCE (2) — implemented but unlisted.
	{0x67, 0x02}: func(_ *Controller, params []byte) []byte {
		node := byte(0x01)
		if len(params) >= 1 {
			node = params[0]
		}
		return []byte{0x67, 0x03, node, 0x00, 0x00, 0x00, 0x00, 0x01}
	},
	{0x67, 0x04}: func(_ *Controller, params []byte) []byte {
		node := byte(0x01)
		if len(params) >= 1 {
			node = params[0]
		}
		return []byte{0x67, 0x05, node, 0x00}
	},

	// INDICATOR (2) — implemented but unlisted.
	{cmdclass.ClassIndicator, 0x02}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x87, 0x03, 0x00}
	},
	{cmdclass.ClassIndicator, 0x04}: func(_ *Controller, _ []byte) []byte {
		return []byte{0x87, 0x05, 0x50, 0x00, 0x01}
	},
}

// nmStatusReply builds a NETWORK_MANAGEMENT_INCLUSION status responder.
func nmStatusReply(replyCmd, status byte) replyFunc {
	return func(_ *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{byte(cmdclass.ClassNetworkMgmtIncl), replyCmd, seq, status, 0x00}
	}
}

// nmStatusReply4D builds a NETWORK_MANAGEMENT_BASIC status responder.
func nmStatusReply4D(replyCmd, status byte) replyFunc {
	return func(_ *Controller, params []byte) []byte {
		seq := byte(0x00)
		if len(params) >= 1 {
			seq = params[0]
		}
		return []byte{0x4D, replyCmd, seq, status}
	}
}

// respond consults the firmware command table.
func (c *Controller) respond(class cmdclass.ClassID, cmd cmdclass.CommandID, params []byte) []byte {
	fn, ok := responders[classCmd{class, cmd}]
	if !ok {
		return nil
	}
	return fn(c, params)
}

// SupportedCommandCount reports the number of commands the firmware
// visibly responds to — the quantity systematic validation testing
// measures (53 in Table V).
func SupportedCommandCount() int { return len(responders) }

// SupportedCommands lists the responding (class, command) pairs sorted by
// class then command.
func SupportedCommands() []struct {
	Class cmdclass.ClassID
	Cmd   cmdclass.CommandID
} {
	out := make([]struct {
		Class cmdclass.ClassID
		Cmd   cmdclass.CommandID
	}, 0, len(responders))
	for k := range responders {
		out = append(out, struct {
			Class cmdclass.ClassID
			Cmd   cmdclass.CommandID
		}{k.class, k.cmd})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return out[i].Cmd < out[j].Cmd
	})
	return out
}
