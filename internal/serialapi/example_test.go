package serialapi_test

import (
	"fmt"

	"zcover/internal/controller"
	"zcover/internal/oracle"
	"zcover/internal/radio"
	"zcover/internal/serialapi"
	"zcover/internal/vtime"
)

// ExamplePCController reads a controller's identity and node table the way
// the Z-Wave PC Controller program does.
func ExamplePCController() {
	m := radio.NewMedium(vtime.NewSimClock())
	profile, _ := controller.ProfileByIndex("D1")
	chip := controller.New(m, radio.RegionUS, profile, &oracle.Bus{})

	pc := serialapi.NewPCController(chip)
	id, _ := pc.NetworkID()
	version, _ := pc.Version()
	nodes, _ := pc.NodeIDs()
	fmt.Printf("home %08X, node %d, %s, %d node(s) in memory\n",
		id.Home, id.NodeID, version, len(nodes))
	// Output:
	// home E7DE3F3D, node 1, Z-Wave 7.18, 1 node(s) in memory
}

// ExampleEncode shows the Serial API data-frame wire format.
func ExampleEncode() {
	raw := serialapi.Encode(serialapi.Frame{
		Type: serialapi.TypeRequest,
		Func: serialapi.FuncMemoryGetID,
	})
	fmt.Printf("% X\n", raw)
	// Output:
	// 01 03 00 20 DC
}
