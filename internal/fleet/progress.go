package fleet

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress is an atomic snapshot of a running fleet. All counters are
// monotonic except Queued/Running, which shrink as jobs drain.
type Progress struct {
	// Total is the job count the fleet was built with.
	Total int
	// Queued jobs have not started; Running are in flight; Done finished
	// successfully; Failed exhausted their attempts.
	Queued, Running, Done, Failed int
	// Retried counts attempts that failed and were rescheduled on a fresh
	// testbed.
	Retried int
	// Findings is the live unique-vulnerability count across the fleet
	// (contributions from attempts that later fail are rolled back).
	Findings int
	// Packets is the live test-packet count across the fleet.
	Packets int64
	// SimTime is the total simulated campaign time completed.
	SimTime time.Duration
	// Wall is the real time since Run started (zero before Run).
	Wall time.Duration
}

// Finished reports whether every job has drained.
func (p Progress) Finished() bool { return p.Done+p.Failed == p.Total }

// SimRate is the fleet's throughput: simulated campaign time delivered
// per wall-clock second. A 7-worker fleet of healthy campaigns should
// approach 7× a single worker's rate on idle hardware.
func (p Progress) SimRate() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return p.SimTime.Seconds() / p.Wall.Seconds()
}

// String renders a one-line ticker form.
func (p Progress) String() string {
	return fmt.Sprintf("%d/%d done, %d running, %d queued, %d failed | %d findings, %d pkts | %s sim in %s (%.1fx)",
		p.Done, p.Total, p.Running, p.Queued, p.Failed,
		p.Findings, p.Packets,
		p.SimTime.Round(time.Second), p.Wall.Round(time.Millisecond), p.SimRate())
}

// counters is the fleet's shared atomic state behind Progress snapshots.
type counters struct {
	total     int
	startWall atomic.Int64 // unix nanos; 0 until Run starts

	queued, running, done, failed, retried atomic.Int64
	findings, packets, simNanos            atomic.Int64
}

func (c *counters) start(t time.Time) {
	c.startWall.CompareAndSwap(0, t.UnixNano())
}

func (c *counters) snapshot() Progress {
	p := Progress{
		Total:    c.total,
		Queued:   int(c.queued.Load()),
		Running:  int(c.running.Load()),
		Done:     int(c.done.Load()),
		Failed:   int(c.failed.Load()),
		Retried:  int(c.retried.Load()),
		Findings: int(c.findings.Load()),
		Packets:  c.packets.Load(),
		SimTime:  time.Duration(c.simNanos.Load()),
	}
	if s := c.startWall.Load(); s != 0 {
		p.Wall = time.Since(time.Unix(0, s))
	}
	return p
}

// Observer is the metrics channel a Runner reports through. Each attempt
// gets its own observer; if the attempt fails, its contributions are
// subtracted back out so retries do not double-count.
type Observer struct {
	c        *counters
	onChange func()

	findings int64
	packets  int64
	simNanos int64
}

// Finding records one new unique vulnerability (live — call it from the
// campaign's OnFinding callback).
func (o *Observer) Finding() {
	o.findings++
	o.c.findings.Add(1)
	if o.onChange != nil {
		o.onChange()
	}
}

// Packets adds n test packets to the fleet totals.
func (o *Observer) Packets(n int) {
	o.packets += int64(n)
	o.c.packets.Add(int64(n))
}

// SimTime adds completed simulated campaign time to the fleet totals.
func (o *Observer) SimTime(d time.Duration) {
	o.simNanos += int64(d)
	o.c.simNanos.Add(int64(d))
}

// rollback subtracts everything this attempt reported.
func (o *Observer) rollback() {
	o.c.findings.Add(-o.findings)
	o.c.packets.Add(-o.packets)
	o.c.simNanos.Add(-o.simNanos)
	o.findings, o.packets, o.simNanos = 0, 0, 0
}
