package fuzz

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// LogEntry is the serialised form of one finding — the bug log Algorithm 1
// saves "to file for future analysis" (line 16). Entries are written as
// JSON lines so logs concatenate and stream.
type LogEntry struct {
	// Strategy and Device label the campaign.
	Strategy string `json:"strategy"`
	Device   string `json:"device"`
	// Signature is the deduplication key.
	Signature string `json:"signature"`
	// Kind, Class, Cmd describe the anomaly and its vector.
	Kind  string `json:"kind"`
	Class byte   `json:"cmdcl"`
	Cmd   byte   `json:"cmd"`
	// Payload is the hex-encoded trigger application payload.
	Payload string `json:"payload"`
	// Packets and ElapsedSec locate the discovery within the campaign.
	Packets    int     `json:"packets"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// DurationSec is the observed outage (0 for persistent effects).
	DurationSec float64 `json:"duration_sec"`
	// Detail is the oracle's description.
	Detail string `json:"detail"`
}

// WriteLog serialises a campaign's findings as JSON lines.
func WriteLog(w io.Writer, res *Result) error {
	enc := json.NewEncoder(w)
	for _, f := range res.Findings {
		entry := LogEntry{
			Strategy:    string(res.Strategy),
			Device:      res.Device,
			Signature:   f.Signature,
			Kind:        f.Event.Kind.String(),
			Class:       f.Event.Class,
			Cmd:         f.Event.Cmd,
			Payload:     hex.EncodeToString(f.TriggerPayload),
			Packets:     f.Packets,
			ElapsedSec:  f.Elapsed.Seconds(),
			DurationSec: f.Event.Duration.Seconds(),
			Detail:      f.Event.Detail,
		}
		if err := enc.Encode(entry); err != nil {
			return fmt.Errorf("fuzz: writing bug log: %w", err)
		}
	}
	return nil
}

// ReadLog parses a JSON-lines bug log.
func ReadLog(r io.Reader) ([]LogEntry, error) {
	var out []LogEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var entry LogEntry
		if err := json.Unmarshal(text, &entry); err != nil {
			return nil, fmt.Errorf("fuzz: bug log line %d: %w", line, err)
		}
		out = append(out, entry)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fuzz: reading bug log: %w", err)
	}
	return out, nil
}

// TriggerPayload decodes the entry's hex payload.
func (e LogEntry) TriggerPayload() ([]byte, error) {
	raw, err := hex.DecodeString(e.Payload)
	if err != nil {
		return nil, fmt.Errorf("fuzz: bug log payload %q: %w", e.Payload, err)
	}
	return raw, nil
}

// Elapsed reconstructs the discovery time.
func (e LogEntry) Elapsed() time.Duration {
	return time.Duration(e.ElapsedSec * float64(time.Second))
}
