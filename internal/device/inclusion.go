package device

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// Over-the-air inclusion (the slave side). A factory-fresh device joins a
// network in three steps: the user puts it in learn mode, it broadcasts
// its node information frame, and the including controller answers with
// ASSIGN_IDS carrying the network home ID and the device's new node ID.

// JoinNetwork puts the node in learn mode and broadcasts its NIF — what
// happens when the user presses the device's inclusion button while the
// controller is in add-node mode. The assignment arrives asynchronously;
// the caller's handler must route ASSIGN_IDS through HandleInclusion.
func JoinNetwork(n *Node, id Identity) error {
	n.SetLearnMode(true)
	return n.Send(protocol.NodeBroadcast, id.NIFPayload())
}

// HandleInclusion processes inclusion-protocol frames on a joining device.
// It returns true when the frame was consumed (whether or not it completed
// the join).
func HandleInclusion(n *Node, f *protocol.Frame) bool {
	if !n.LearnMode() {
		return false
	}
	payload := f.Payload
	if len(payload) < 7 ||
		payload[0] != byte(cmdclass.ClassZWaveProtocol) ||
		payload[1] != byte(cmdclass.CmdProtoAssignIDs) {
		return false
	}
	newID := protocol.NodeID(payload[2])
	home := protocol.HomeID(uint32(payload[3])<<24 | uint32(payload[4])<<16 |
		uint32(payload[5])<<8 | uint32(payload[6]))
	if newID == protocol.NodeUnassigned {
		// Exclusion: reset to factory (unassigned, out of the network).
		n.Adopt(home, protocol.NodeUnassigned)
		return true
	}
	if !newID.IsUnicast() {
		return true // malformed assignment: stay in learn mode
	}
	n.Adopt(home, newID)
	return true
}

// LeaveNetwork puts the node in learn mode and broadcasts its NIF while
// the controller is in remove-node mode — the user pressing the exclusion
// button.
func LeaveNetwork(n *Node, id Identity) error {
	return JoinNetwork(n, id) // same announcement; the controller's mode decides
}

// AssignIDsPayload builds the controller's ASSIGN_IDS frame payload.
func AssignIDsPayload(id protocol.NodeID, home protocol.HomeID) []byte {
	return []byte{
		byte(cmdclass.ClassZWaveProtocol), byte(cmdclass.CmdProtoAssignIDs),
		byte(id),
		byte(home >> 24), byte(home >> 16), byte(home >> 8), byte(home),
	}
}
