package obs_test

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"zcover/internal/obs"
)

// fakeClock is a deterministic timeline clock tests advance by hand.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestTimelinePhaseAttribution(t *testing.T) {
	clk := newFakeClock()
	tl := obs.NewTimeline()
	tl.SetNow(clk.now)

	tl.StartWorker(0)
	clk.advance(2 * time.Second) // idle
	tl.Phase(0, "job-a", obs.PhaseBuild)
	clk.advance(1 * time.Second)
	tl.Phase(0, "job-a", obs.PhaseFuzz)
	clk.advance(5 * time.Second)
	tl.Phase(0, "", obs.PhaseIdle)
	clk.advance(3 * time.Second)
	tl.StopWorker(0)

	snap := tl.Snapshot()
	if len(snap.Workers) != 1 {
		t.Fatalf("workers = %d, want 1", len(snap.Workers))
	}
	ws := snap.Workers[0]
	if ws.IdleSec != 5 {
		t.Errorf("IdleSec = %v, want 5", ws.IdleSec)
	}
	if ws.BusySec != 6 {
		t.Errorf("BusySec = %v, want 6", ws.BusySec)
	}
	if ws.Jobs != 1 {
		t.Errorf("Jobs = %d, want 1", ws.Jobs)
	}
	if got := snap.PhaseWallSec[obs.PhaseFuzz]; got != 5 {
		t.Errorf("fuzz wall = %v, want 5", got)
	}
	if got := snap.PhaseWallSec[obs.PhaseBuild]; got != 1 {
		t.Errorf("build wall = %v, want 1", got)
	}
	if got := ws.BusyShare(); got < 0.54 || got > 0.55 {
		t.Errorf("BusyShare = %v, want 6/11", got)
	}

	// fuzz and idle tie at 5s; the deterministic tie-break is by name.
	shares := snap.PhaseShares()
	if len(shares) == 0 || shares[0].Phase != obs.PhaseFuzz {
		t.Fatalf("dominant phase = %+v, want fuzz (5s, name tie-break) first", shares)
	}
	var total float64
	for _, ps := range shares {
		total += ps.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %v, want 1", total)
	}
}

func TestTimelineSnapshotTruncatesInFlight(t *testing.T) {
	clk := newFakeClock()
	tl := obs.NewTimeline()
	tl.SetNow(clk.now)

	tl.StartWorker(3)
	tl.Phase(3, "j", obs.PhaseScan)
	clk.advance(4 * time.Second)

	snap := tl.Snapshot() // scan interval still open
	if got := snap.PhaseWallSec[obs.PhaseScan]; got != 4 {
		t.Errorf("open interval truncated at %vs, want 4", got)
	}
	// The snapshot must not have closed the live interval: advancing and
	// snapping again extends the same stretch.
	clk.advance(2 * time.Second)
	snap = tl.Snapshot()
	if got := snap.PhaseWallSec[obs.PhaseScan]; got != 6 {
		t.Errorf("after more time, scan wall = %v, want 6", got)
	}
}

func TestTimelineNilSafe(t *testing.T) {
	var tl *obs.Timeline
	tl.StartWorker(0) // must not panic
	tl.Phase(0, "j", obs.PhaseFuzz)
	tl.StopWorker(0)
	tl.SetNow(time.Now)
	snap := tl.Snapshot()
	if len(snap.Workers) != 0 || snap.WallSec() != 0 {
		t.Errorf("nil timeline snapshot not empty: %+v", snap)
	}
	if err := snap.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTimelineSnapshotJSONRoundTrip(t *testing.T) {
	clk := newFakeClock()
	tl := obs.NewTimeline()
	tl.SetNow(clk.now)
	tl.StartWorker(0)
	tl.Phase(0, "job", obs.PhaseFuzz)
	clk.advance(time.Second)
	tl.StopWorker(0)

	var b strings.Builder
	if err := tl.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back obs.Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(back.Intervals) != 2 { // idle (zero-length) + fuzz
		t.Errorf("round-tripped %d intervals, want 2", len(back.Intervals))
	}
}

// TestTimelineRace hammers concurrent recording and snapshotting; the
// -race build of `make verify` is the assertion.
func TestTimelineRace(t *testing.T) {
	tl := obs.NewTimeline()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tl.StartWorker(w)
			for i := 0; i < 200; i++ {
				tl.Phase(w, "j", obs.PhaseFuzz)
				tl.Phase(w, "", obs.PhaseIdle)
			}
			tl.StopWorker(w)
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = tl.Snapshot()
		}
	}()
	wg.Wait()
	if got := len(tl.Snapshot().Workers); got != 4 {
		t.Errorf("lanes = %d, want 4", got)
	}
}
