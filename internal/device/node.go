// Package device provides the emulated Z-Wave node framework: the shared
// MAC/application plumbing every testbed node is built on, the slave
// devices of Table II (the Schlage S2 door lock D8 and the GE legacy binary
// switch D9), and the S2/S0 pairing flows that bind slaves to a controller.
package device

import (
	"fmt"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/telemetry"
	"zcover/internal/vtime"
)

// mRetransmissions counts MAC retransmissions across all nodes; it stays
// zero unless a retry policy is installed (chaos campaigns).
var mRetransmissions = telemetry.Default().Counter("device_retransmissions_total")

// RetryPolicy configures ACK-timeout retransmission with capped
// exponential backoff: attempt k (k >= 2) is sent Backoff*2^(k-2) after
// the previous one, capped at MaxBackoff. The policy exists for impaired
// channels; with no policy installed (the default) a node transmits each
// frame exactly once, which keeps clean campaigns byte-identical.
type RetryPolicy struct {
	// MaxAttempts bounds total transmissions of one frame (first send
	// included). Values below 2 disable retransmission.
	MaxAttempts int
	// Backoff is the delay before the first retransmission.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
}

// awaitKey identifies one in-flight acknowledgement wait.
type awaitKey struct {
	dst protocol.NodeID
	seq byte
}

// Config describes one node's attachment to the simulated testbed.
type Config struct {
	// Medium is the shared air.
	Medium *radio.Medium
	// Region selects the RF profile.
	Region radio.Region
	// Home is the network home ID.
	Home protocol.HomeID
	// ID is the node ID within the network.
	ID protocol.NodeID
	// Name is a diagnostic label (e.g. "D8-doorlock").
	Name string
}

// Node is the shared plumbing of an emulated Z-Wave node: a transceiver,
// home-ID filtering, MAC acknowledgements, and application dispatch. The
// concrete device (slave, controller) installs Handler and optional hooks.
type Node struct {
	cfg   Config
	clock *vtime.SimClock
	trx   *radio.Transceiver
	seq   byte
	learn bool

	// Handler receives every application frame addressed to this node
	// (or broadcast) after MAC validation. The frame is pool-backed and its
	// payload aliases the capture buffer: both are valid only for the
	// duration of the call, so retaining either requires a copy.
	Handler func(f *protocol.Frame)
	// RawHook, if set, sees every capture before decoding; returning true
	// consumes the frame. Controller models use it for the legacy MAC
	// parsing bugs that VFuzz exercises.
	RawHook func(raw []byte) bool
	// Gate, if set and returning false, silently drops incoming frames
	// (no MAC ack, no dispatch) — how a hung controller looks on the air.
	Gate func() bool
	// OnAck, if set, is invoked when a MAC ack addressed to this node
	// arrives (used by senders awaiting transfer confirmation).
	OnAck func(f *protocol.Frame)
	// Repeater marks a mains-powered routing node that forwards routed
	// frames on behalf of the mesh.
	Repeater bool

	retry   *RetryPolicy
	pending map[awaitKey]bool // false = awaiting ack, true = acked
}

// SetRetry installs (or, with nil, removes) the node's retransmission
// policy. Like the rest of Node, this is driven from the single simulation
// goroutine.
func (n *Node) SetRetry(rp *RetryPolicy) { n.retry = rp }

// NewNode attaches a node to the medium.
func NewNode(cfg Config) *Node {
	if cfg.Medium == nil {
		panic("device: Config.Medium is required")
	}
	n := &Node{cfg: cfg, clock: cfg.Medium.Clock()}
	n.trx = cfg.Medium.Attach(cfg.Name, cfg.Region)
	n.trx.SetReceiver(n.onCapture)
	return n
}

// Home reports the node's network home ID.
func (n *Node) Home() protocol.HomeID { return n.cfg.Home }

// SetLearnMode switches home-ID filtering off (on) so an unincluded device
// can hear the including controller's frames. Real devices enter learn
// mode when the user presses the inclusion button.
func (n *Node) SetLearnMode(on bool) { n.learn = on }

// LearnMode reports whether learn mode is active.
func (n *Node) LearnMode() bool { return n.learn }

// Adopt rebinds the node to a network: the final step of inclusion, when
// the controller assigns the device its home ID and node ID.
func (n *Node) Adopt(home protocol.HomeID, id protocol.NodeID) {
	n.cfg.Home = home
	n.cfg.ID = id
	n.learn = false
}

// ID reports the node's node ID.
func (n *Node) ID() protocol.NodeID { return n.cfg.ID }

// Name reports the diagnostic label.
func (n *Node) Name() string { return n.cfg.Name }

// Clock exposes the simulated clock.
func (n *Node) Clock() *vtime.SimClock { return n.clock }

// Detach removes the node from the air.
func (n *Node) Detach() { n.trx.Detach() }

// Place assigns the node's radio a position for the geometric propagation
// model (see radio.Medium.SetRange).
func (n *Node) Place(x, y float64) { n.trx.Place(x, y) }

// SendMulticast transmits one application payload to several nodes at
// once via the multicast bitmask.
func (n *Node) SendMulticast(addressees []protocol.NodeID, apl []byte) error {
	f, err := protocol.NewMulticastFrame(n.cfg.Home, n.cfg.ID, addressees, apl)
	if err != nil {
		return err
	}
	n.seq = (n.seq + 1) & 0x0F
	f.Control.Sequence = n.seq
	return n.transmitFrame(f)
}

// SendRouted transmits an application payload to dst through the given
// source route — the mesh path used when dst is out of direct range.
func (n *Node) SendRouted(dst protocol.NodeID, repeaters []protocol.NodeID, apl []byte) error {
	f, err := protocol.NewRoutedFrame(n.cfg.Home, n.cfg.ID, dst, repeaters, apl)
	if err != nil {
		return err
	}
	n.seq = (n.seq + 1) & 0x0F
	f.Control.Sequence = n.seq
	return n.transmitFrame(f)
}

// transmitFrame encodes f into a pooled buffer, transmits it, and returns
// the buffer to the pool. Delivery on the simulated medium is synchronous,
// so the medium and every receiver are done with the bytes by the time
// Transmit returns; only paths that retain the encoding for retransmission
// (sendReliable) must encode into a private buffer instead.
func (n *Node) transmitFrame(f *protocol.Frame) error {
	buf := protocol.GetBuf()
	defer protocol.PutBuf(buf)
	raw, err := f.AppendEncode(*buf)
	if err != nil {
		return fmt.Errorf("device %s: %w", n.cfg.Name, err)
	}
	return n.trx.Transmit(raw)
}

// Send transmits an application payload to dst with the ack-request bit
// set, as ordinary Z-Wave traffic does. With a retry policy installed,
// unacknowledged unicast frames are retransmitted with capped exponential
// backoff.
func (n *Node) Send(dst protocol.NodeID, payload []byte) error {
	f := protocol.NewDataFrame(n.cfg.Home, n.cfg.ID, dst, payload)
	n.seq = (n.seq + 1) & 0x0F
	f.Control.Sequence = n.seq
	if n.retry == nil || n.retry.MaxAttempts < 2 || dst == protocol.NodeBroadcast {
		return n.transmitFrame(f)
	}
	// The retry chain retains raw across scheduled retransmissions, so it
	// gets a private (unpooled) encoding.
	raw, err := f.Encode()
	if err != nil {
		return fmt.Errorf("device %s: %w", n.cfg.Name, err)
	}
	return n.sendReliable(dst, n.seq, raw)
}

// sendReliable transmits raw and arms the retry chain. Frame delivery on
// the simulated medium is synchronous, so by the time Transmit returns the
// MAC ack — if it survived the channel — has already arrived and marked
// the wait; the healthy path therefore schedules nothing.
func (n *Node) sendReliable(dst protocol.NodeID, seq byte, raw []byte) error {
	key := awaitKey{dst: dst, seq: seq}
	if n.pending == nil {
		n.pending = make(map[awaitKey]bool)
	}
	n.pending[key] = false
	if err := n.trx.Transmit(raw); err != nil {
		delete(n.pending, key)
		return err
	}
	n.armRetry(key, raw, 2, n.retry.Backoff)
	return nil
}

// armRetry schedules transmission attempt number `attempt` after delay,
// unless the frame has been acked or attempts are exhausted (either way
// the wait is forgotten).
func (n *Node) armRetry(key awaitKey, raw []byte, attempt int, delay time.Duration) {
	if n.pending[key] || attempt > n.retry.MaxAttempts {
		delete(n.pending, key)
		return
	}
	rp := n.retry
	n.clock.Schedule(delay, func() {
		if n.pending[key] {
			delete(n.pending, key)
			return
		}
		mRetransmissions.Inc()
		_ = n.trx.Transmit(raw)
		next := delay * 2
		if rp.MaxBackoff > 0 && next > rp.MaxBackoff {
			next = rp.MaxBackoff
		}
		n.armRetry(key, raw, attempt+1, next)
	})
}

// SendAck transmits a MAC transfer acknowledgement.
func (n *Node) SendAck(dst protocol.NodeID, seq byte) error {
	return n.transmitFrame(protocol.NewAckFrame(n.cfg.Home, n.cfg.ID, dst, seq))
}

// onCapture is the MAC receive path. The decoded frame comes from the
// frame pool and is returned when dispatch finishes, so Handler/OnAck must
// not retain the *Frame or its payload past the call (the payload aliases
// the capture buffer, which itself is only valid during the callback).
// Nested deliveries — a handler that transmits, triggering a synchronous
// inbound ack — draw distinct frames from the pool, so reentrancy is safe.
func (n *Node) onCapture(c radio.Capture) {
	if n.RawHook != nil && n.RawHook(c.Raw) {
		return
	}
	f := protocol.GetFrame()
	defer protocol.PutFrame(f)
	if err := protocol.DecodeInto(f, c.Raw, protocol.ChecksumCS8); err != nil {
		// Malformed frames are dropped by the chipset, as on real silicon.
		return
	}
	if f.Home != n.cfg.Home && !n.learn {
		return
	}
	if n.Gate != nil && !n.Gate() {
		return
	}
	// Routed frames are examined before destination filtering: a repeater
	// forwards frames addressed to other nodes.
	if f.Control.Header == protocol.HeaderRouted {
		n.handleRouted(f)
		return
	}
	// Multicast frames address nodes through the payload bitmask.
	if f.Control.Header == protocol.HeaderMulticast {
		ids, apl, err := protocol.ParseMulticastPayload(f.Payload)
		if err != nil {
			return
		}
		for _, id := range ids {
			if id == n.cfg.ID {
				if n.Handler != nil {
					inner := *f
					inner.Payload = apl
					n.Handler(&inner)
				}
				return
			}
		}
		return
	}
	if f.Dst != n.cfg.ID && f.Dst != protocol.NodeBroadcast {
		return
	}
	if f.IsAck() {
		if n.pending != nil {
			key := awaitKey{dst: f.Src, seq: f.Control.Sequence}
			if _, ok := n.pending[key]; ok {
				n.pending[key] = true
			}
		}
		if n.OnAck != nil {
			n.OnAck(f)
		}
		return
	}
	if f.Control.AckRequested && f.Dst == n.cfg.ID {
		// Best-effort MAC ack; a full air would retry, the simulation
		// does not need to.
		_ = n.SendAck(f.Src, f.Control.Sequence)
	}
	if n.Handler != nil {
		n.Handler(f)
	}
}

// handleRouted processes a routed frame: final-leg delivery when we are
// the destination, retransmission when it is our repeater turn.
func (n *Node) handleRouted(f *protocol.Frame) {
	rh, apl, err := protocol.ParseRoutedPayload(f.Payload)
	if err != nil {
		return // malformed routing header: dropped (or consumed by RawHook bugs)
	}
	if f.Dst == n.cfg.ID && rh.Hop >= len(rh.Repeaters) {
		if n.Handler != nil {
			inner := *f
			inner.Payload = apl
			n.Handler(&inner)
		}
		return
	}
	if n.Repeater && rh.Hop < len(rh.Repeaters) && rh.Repeaters[rh.Hop] == n.cfg.ID {
		rh.Hop++
		payload, err := protocol.EncodeRoutedPayload(rh, apl)
		if err != nil {
			return
		}
		fwd := *f
		fwd.Payload = payload
		_ = n.transmitFrame(&fwd)
	}
}
