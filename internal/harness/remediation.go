package harness

import (
	"strconv"
	"time"

	"zcover/internal/report"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// RemediationRow is one device's before/after-patch comparison.
type RemediationRow struct {
	// Index is the testbed device.
	Index string
	// Before and After count unique vulnerabilities found by a full
	// campaign against the stock and patched firmware.
	Before, After int
	// Remaining lists the signatures surviving the patch.
	Remaining []string
}

// Remediation validates the paper's §V-B mitigation path: rerun the full
// ZCover campaign against firmware built on the updated specification
// (the one the Z-Wave Alliance incorporates the paper's findings into)
// and show that only the implementation bugs — which need vendor SDK
// fixes, not spec changes — survive.
func Remediation(devices []string, duration time.Duration) (*report.Table, []RemediationRow, error) {
	if len(devices) == 0 {
		devices = []string{"D1", "D6"}
	}
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	out := &report.Table{
		Title: "Remediation (§V-B): full campaign before vs after the specification update",
		Headers: []string{"ID", "#Vul stock firmware", "#Vul patched firmware", "Surviving (implementation bugs)"},
		Notes: []string{
			"The patch closes every specification-rooted bug; host-program",
			"implementation bugs (06, 13) need vendor SDK fixes and remain.",
		},
	}
	var rows []RemediationRow
	for _, idx := range devices {
		seed := deviceSeed(idx)
		stock, err := testbed.New(idx, seed)
		if err != nil {
			return nil, nil, err
		}
		before, err := RunZCover(stock, fuzz.StrategyFull, duration, seed)
		if err != nil {
			return nil, nil, err
		}
		patched, err := testbed.NewPatched(idx, seed)
		if err != nil {
			return nil, nil, err
		}
		after, err := RunZCover(patched, fuzz.StrategyFull, duration, seed)
		if err != nil {
			return nil, nil, err
		}
		row := RemediationRow{Index: idx, Before: len(before.Fuzz.Findings), After: len(after.Fuzz.Findings)}
		for _, f := range after.Fuzz.Findings {
			row.Remaining = append(row.Remaining, f.Signature)
		}
		rows = append(rows, row)
		surviving := "-"
		if len(row.Remaining) > 0 {
			surviving = ""
			for i, s := range row.Remaining {
				if i > 0 {
					surviving += ", "
				}
				surviving += s
			}
		}
		out.AddRow(idx, strconv.Itoa(row.Before), strconv.Itoa(row.After), surviving)
	}
	return out, rows, nil
}
