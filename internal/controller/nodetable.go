// Package controller emulates the Z-Wave controllers of the paper's
// testbed (devices D1–D7 of Table II). Each controller model combines:
//
//   - ordinary firmware behaviour: home-ID filtering, MAC acks, NIF
//     responses, a node table (the "controller's memory" of Figs 8–11),
//     S2 sessions with paired slaves, and application responders for the
//     commands the firmware genuinely implements;
//   - the paper's fifteen vulnerability models (Table III), implemented as
//     buggy code paths keyed by CMDCL, CMD, parameter semantics, and
//     encapsulation state; and
//   - the legacy MAC-layer parsing one-days that VFuzz finds (Table V).
//
// The models are black-box from the fuzzer's point of view: everything
// observable goes through the radio or the oracle bus (the stand-in for
// the human watching the PC Controller program and the SmartThings app).
package controller

import (
	"fmt"
	"sort"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// NodeRecord is one entry of the controller's node table — the in-memory
// device database the CMDCL 0x01 attacks tamper with.
type NodeRecord struct {
	// ID is the node ID.
	ID protocol.NodeID
	// Basic, Generic, Specific are the stored device-type bytes.
	Basic, Generic, Specific byte
	// Capability and Security are the stored NIF flag bytes.
	Capability, Security byte
	// WakeupInterval is the stored wake-up interval for sleeping nodes
	// (zero when not applicable).
	WakeupInterval time.Duration
	// Classes is the stored supported-class list.
	Classes []cmdclass.ClassID
}

// clone deep-copies the record.
func (r NodeRecord) clone() NodeRecord {
	out := r
	out.Classes = append([]cmdclass.ClassID(nil), r.Classes...)
	return out
}

// NodeTable is the controller's device database. It is not safe for
// concurrent use; the simulation is single-threaded.
type NodeTable struct {
	records map[protocol.NodeID]NodeRecord
}

// NewNodeTable returns an empty table.
func NewNodeTable() *NodeTable {
	return &NodeTable{records: make(map[protocol.NodeID]NodeRecord)}
}

// Put inserts or replaces a record.
func (t *NodeTable) Put(r NodeRecord) { t.records[r.ID] = r.clone() }

// Get returns the record for id.
func (t *NodeTable) Get(id protocol.NodeID) (NodeRecord, bool) {
	r, ok := t.records[id]
	if !ok {
		return NodeRecord{}, false
	}
	return r.clone(), true
}

// Delete removes the record for id, reporting whether it existed.
func (t *NodeTable) Delete(id protocol.NodeID) bool {
	if _, ok := t.records[id]; !ok {
		return false
	}
	delete(t.records, id)
	return true
}

// Len reports the number of records.
func (t *NodeTable) Len() int { return len(t.records) }

// IDs returns the node IDs in ascending order.
func (t *NodeTable) IDs() []protocol.NodeID {
	out := make([]protocol.NodeID, 0, len(t.records))
	for id := range t.records {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snapshot deep-copies the table (used for reset and for oracle diffing).
func (t *NodeTable) Snapshot() *NodeTable {
	out := NewNodeTable()
	for _, r := range t.records {
		out.Put(r)
	}
	return out
}

// Restore replaces the table contents with a snapshot's.
func (t *NodeTable) Restore(snap *NodeTable) {
	t.records = make(map[protocol.NodeID]NodeRecord, snap.Len())
	for _, r := range snap.records {
		t.records[r.ID] = r.clone()
	}
}

// String renders the table the way the PC Controller program lists it.
func (t *NodeTable) String() string {
	s := ""
	for _, id := range t.IDs() {
		r := t.records[id]
		s += fmt.Sprintf("node %3d: basic=0x%02X generic=0x%02X specific=0x%02X wakeup=%s\n",
			id, r.Basic, r.Generic, r.Specific, r.WakeupInterval)
	}
	return s
}
