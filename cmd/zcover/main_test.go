package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunShortCampaign(t *testing.T) {
	if err := run([]string{"-target", "D1", "-strategy", "full", "-duration", "20m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBetaAndGamma(t *testing.T) {
	for _, strat := range []string{"beta", "gamma"} {
		if err := run([]string{"-target", "D3", "-strategy", strat, "-duration", "5m"}); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-strategy", "sideways"}); err == nil {
		t.Fatal("accepted unknown strategy")
	}
	if err := run([]string{"-target", "D9"}); err == nil {
		t.Fatal("accepted unknown target")
	}
	if err := run([]string{"-resume"}); err == nil {
		t.Fatal("accepted -resume without -checkpoint-dir")
	}
	// The obs server binds synchronously: a bad address must fail before
	// any campaign work, not print-and-swallow from a goroutine.
	if err := run([]string{"-target", "D1", "-duration", "5m", "-obs-addr", "256.0.0.1:bad"}); err == nil {
		t.Fatal("accepted bad -obs-addr")
	}
}

// TestObservabilityFlags drives -obs-addr (and its deprecated -pprof
// alias) plus -profile-dir through a short campaign: the run must succeed
// and leave pprof-format contention snapshots behind.
func TestObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-target", "D1", "-duration", "5m",
		"-obs-addr", "127.0.0.1:0", "-profile-dir", dir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mutex.pb.gz", "block.pb.gz", "heap.pb.gz"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing profile snapshot %s: %v", name, err)
		}
	}
	if err := run([]string{"-target", "D1", "-duration", "5m", "-pprof", "127.0.0.1:0"}); err != nil {
		t.Fatalf("-pprof alias: %v", err)
	}
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	ferr := f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = orig
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// TestCheckpointReplayCLI: a journaled campaign replayed with -resume
// must print the exact same report (modulo the replay note) without
// executing anything, and re-running without -resume must be refused.
func TestCheckpointReplayCLI(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-target", "D1", "-duration", "2m", "-seed", "41", "-checkpoint-dir", dir}
	first := capture(t, func() error { return run(args) })
	if err := run(args); err == nil {
		t.Fatal("existing journal accepted without -resume")
	}
	second := capture(t, func() error { return run(append(args, "-resume")) })
	const note = "Campaign replayed from checkpoint journal — nothing executed.\n\n"
	if !strings.Contains(second, note) {
		t.Fatalf("replay note missing:\n%s", second)
	}
	if got := strings.Replace(second, note, "", 1); got != first {
		t.Errorf("replayed report differs from the original:\n--- first ---\n%s--- replay ---\n%s", first, got)
	}
}

func TestCoverageModeRejectsBadFlagCombos(t *testing.T) {
	bad := [][]string{
		{"-fuzz-mode", "sideways"},
		{"-corpus-dir", "x"},   // needs coverage mode
		{"-coverage-out", "x"}, // needs coverage mode
		{"-fuzz-mode", "coverage", "-checkpoint-dir", "x"},
		{"-fuzz-mode", "coverage", "-strategy", "beta"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}

// TestCoverageModeCLI drives the coverage-guided engine end to end from
// the CLI: campaign summary + findings table, corpus journal on disk,
// coverage-map JSON out, and a byte-identical -resume replay.
func TestCoverageModeCLI(t *testing.T) {
	dir := t.TempDir()
	covOut := dir + "/cov.json"
	args := []string{"-target", "D1", "-fuzz-mode", "coverage", "-duration", "10m",
		"-seed", "7", "-corpus-dir", dir, "-coverage-out", covOut,
		"-metrics-out", dir + "/metrics.json"}
	first := capture(t, func() error { return run(args) })
	if !strings.Contains(first, "behavioral-coverage-guided fuzzing") ||
		!strings.Contains(first, "corpus seeds") {
		t.Fatalf("summary missing:\n%s", first)
	}
	if !strings.Contains(first, "Unique vulnerabilities") {
		t.Fatalf("findings table missing:\n%s", first)
	}
	cov1, err := os.ReadFile(covOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(cov1), `"features"`) {
		t.Fatalf("coverage map JSON malformed:\n%s", cov1)
	}

	// An existing corpus journal is refused without -resume...
	if err := run(args); err == nil {
		t.Fatal("existing corpus journal accepted without -resume")
	}
	// ...and replays the identical campaign with it.
	second := capture(t, func() error { return run(append(args, "-resume")) })
	if second != first {
		t.Errorf("resumed campaign output differs:\n--- first ---\n%s--- resume ---\n%s", first, second)
	}
	cov2, err := os.ReadFile(covOut)
	if err != nil {
		t.Fatal(err)
	}
	if string(cov1) != string(cov2) {
		t.Error("resumed coverage map differs")
	}
}
