package harness

import (
	"runtime"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/obs"
)

// TestTable5ByteIdenticalWithProfiling pins the ISSUE's determinism
// criterion: attaching the full observability stack — worker timeline plus
// runtime contention profiling — leaves Table V byte-identical to the bare
// run, at workers=1 and workers=8 alike. Profilers that feed back into
// campaign state would surface here first.
func TestTable5ByteIdenticalWithProfiling(t *testing.T) {
	bare, _, err := Table5Fleet(fleetTestBudget, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	restore := obs.StartProfiling(obs.ProfileConfig{MutexFraction: 1})
	defer restore()
	for _, workers := range []int{1, 8} {
		tl := obs.NewTimeline()
		profTbl, _, err := Table5Fleet(fleetTestBudget, fleet.Config{Workers: workers, Timeline: tl})
		if err != nil {
			t.Fatal(err)
		}
		if bare.String() != profTbl.String() {
			t.Errorf("Table V differs with profiling at workers=%d:\n--- bare ---\n%s\n--- profiled ---\n%s",
				workers, bare.String(), profTbl.String())
		}
		// The timeline must actually have recorded the run: one lane per
		// effective worker, with busy time in the pipeline phases.
		snap := tl.Snapshot()
		want := fleet.Config{Workers: workers}.EffectiveWorkers(10)
		if len(snap.Workers) != want {
			t.Errorf("workers=%d: %d timeline lanes, want %d", workers, len(snap.Workers), want)
		}
		if snap.PhaseWallSec[obs.PhaseFuzz] <= 0 {
			t.Errorf("workers=%d: no fuzz-phase wall time recorded: %v", workers, snap.PhaseWallSec)
		}
		if snap.PhaseWallSec[obs.PhaseScan] <= 0 {
			t.Errorf("workers=%d: no scan-phase wall time recorded: %v", workers, snap.PhaseWallSec)
		}
	}
}

// TestScalingSweepShort runs the real sweep at a tiny budget and checks
// the report is structurally complete: derived efficiencies, phase
// attribution, and — on hosts where the sweep oversubscribes — the raw
// comparison point and a ranked bottleneck list.
func TestScalingSweepShort(t *testing.T) {
	rep, err := ScalingSweep(ScalingConfig{
		Workers: []int{1, 2}, Budget: 10 * time.Minute, GitSHA: "test", Contention: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Host.Gomaxprocs != runtime.GOMAXPROCS(0) {
		t.Errorf("host stamp: %+v", rep.Host)
	}
	wantPoints := 2
	if 2 > runtime.GOMAXPROCS(0) {
		wantPoints = 3 // plus the uncapped raw point
	}
	if len(rep.Points) != wantPoints {
		t.Fatalf("points = %d, want %d: %+v", len(rep.Points), wantPoints, rep.Points)
	}
	base := rep.Points[0]
	if base.Workers != 1 || base.Speedup != 1 || base.SimRate <= 0 {
		t.Errorf("baseline point: %+v", base)
	}
	for _, p := range rep.Points {
		if p.SimSec <= 0 || p.WallSec <= 0 || len(p.Phases) == 0 {
			t.Errorf("incomplete point: %+v", p)
		}
		if p.IdealSpeedup < 1 {
			t.Errorf("IdealSpeedup %v at workers=%d", p.IdealSpeedup, p.Workers)
		}
	}
	if 2 > runtime.GOMAXPROCS(0) && len(rep.Bottlenecks) == 0 {
		t.Error("oversubscribed sweep ranked no bottlenecks")
	}
	for i, b := range rep.Bottlenecks {
		if b.Rank != i+1 || b.Kind == "" || b.Evidence == "" {
			t.Errorf("malformed bottleneck: %+v", b)
		}
	}
}
