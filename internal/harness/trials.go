package harness

import (
	"fmt"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/zcover/fuzz"
)

// TrialSummary aggregates repeated campaigns against one device —
// "following recommended fuzzing practices, we conducted five 24-hour
// fuzzing trials for each controller" (§IV, Experiment environment).
type TrialSummary struct {
	// Device is the testbed index.
	Device string
	// Trials is the number of campaigns run.
	Trials int
	// PerTrial lists each trial's unique-vulnerability count.
	PerTrial []int
	// Union is the number of distinct signatures across all trials.
	Union int
	// Stable reports whether every trial found the same signature set.
	Stable bool
}

// RunTrials executes n full-ZCover campaigns against the same device,
// each on a freshly built testbed (as re-flashing/rebooting the device
// does in the paper's methodology), with per-trial seeds.
func RunTrials(index string, n int, duration time.Duration, baseSeed int64) (TrialSummary, error) {
	return RunTrialsFleet(index, n, duration, baseSeed, fleet.Config{})
}

// RunTrialsFleet is RunTrials with the trials scheduled across a fleet
// worker pool. Trial seeds are fixed up front, so the summary is identical
// for any worker count.
func RunTrialsFleet(index string, n int, duration time.Duration, baseSeed int64, cfg fleet.Config) (TrialSummary, error) {
	if n <= 0 {
		return TrialSummary{}, fmt.Errorf("harness: trials must be positive, got %d", n)
	}
	var jobs []fleet.Job
	for trial := 0; trial < n; trial++ {
		jobs = append(jobs, fleet.Job{
			Name: fmt.Sprintf("trials/%s/%d", index, trial+1), Device: index,
			Strategy: fuzz.StrategyFull, Seed: baseSeed + int64(trial), Budget: duration,
		})
	}
	outs, err := runCampaigns("trials/"+index, jobs, cfg)
	if err != nil {
		return TrialSummary{}, err
	}

	sum := TrialSummary{Device: index, Trials: n, Stable: true}
	union := make(map[string]bool)
	var first map[string]bool
	for _, o := range outs {
		found := make(map[string]bool, len(o.Fuzz().Findings))
		for _, f := range o.Fuzz().Findings {
			found[f.Signature] = true
			union[f.Signature] = true
		}
		sum.PerTrial = append(sum.PerTrial, len(found))
		if first == nil {
			first = found
		} else if !sameSet(first, found) {
			sum.Stable = false
		}
	}
	sum.Union = len(union)
	return sum, nil
}

// sameSet compares two signature sets.
func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
