package fuzz

import (
	"zcover/internal/cmdclass"
	"zcover/internal/corpus"
	"zcover/internal/coverage"
	"zcover/internal/telemetry"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// Coverage-guided engine metrics.
var (
	mCovCampaigns = telemetry.Default().Counter("covfuzz_campaigns_total")
	mCovDeduped   = telemetry.Default().Counter("covfuzz_dedup_skipped_total")
	mCovRounds    = telemetry.Default().Counter("covfuzz_rounds_total")
)

// CovResult is a coverage-guided campaign summary: the base campaign
// result plus the coverage map's final state and the corpus it grew.
type CovResult struct {
	Result
	// Coverage is the final behavioral-coverage snapshot.
	Coverage coverage.Stats `json:"coverage"`
	// CorpusSize is the number of admitted seeds.
	CorpusSize int `json:"corpus_size"`
	// SeedsMinimized counts corpus seeds that minimisation reduced.
	SeedsMinimized int `json:"seeds_minimized,omitempty"`
	// Rounds is how many corpus-exploitation rounds completed.
	Rounds int `json:"rounds"`
}

// CovEngine is the coverage-guided counterpart of Engine. It shares the
// send/observe/liveness machinery (runPayload) and the spec-driven quick
// pass, but replaces Algorithm 1's fixed per-class windows with a
// behavioral-coverage feedback loop: inputs that light up new coverage-map
// features are admitted to a corpus, and campaign time is spent mutating
// admitted seeds in proportion to the novelty they contributed.
//
// Determinism contract: given the same device, seeds, queue, and budgets,
// a CovEngine campaign replays byte-identically — all scheduling state
// lives in slices and dense indexes (no map iteration), variants derive
// from (campaignSeed, seed ID, visit index), and time comes from the
// simulated clock. The corpus journal verifies this on resume.
type CovEngine struct {
	*Engine
	cov  *coverage.Collector
	corp *corpus.Manager

	// tested dedups exact payloads: the coverage map cannot change on a
	// byte-identical re-send, so the frame budget is better spent
	// elsewhere. Lookup only — never iterated.
	tested map[string]bool

	// visits is the per-seed variant cursor, indexed by seed ID. It only
	// grows, so a revisited seed draws fresh variants each round.
	visits []int
}

// NewCov builds a coverage-guided engine. campaignSeed feeds the corpus
// manager's deterministic variant derivation; the caller wires the
// returned engine's Coverage() collector into the testbed hooks
// (controller, serial API, oracle bus) and the oracle bus subscription via
// Observe, exactly as with New.
func NewCov(d *dongle.Dongle, fp scan.Fingerprint, queue []*cmdclass.Class, mut *mutate.Mutator, device string, campaignSeed int64, cfg Config) (*CovEngine, error) {
	base, err := New(d, fp, queue, mut, StrategyCoverage, device, cfg)
	if err != nil {
		return nil, err
	}
	return &CovEngine{
		Engine: base,
		cov:    coverage.NewCollector(),
		corp:   corpus.NewManager(mut, queue, campaignSeed),
		tested: make(map[string]bool),
	}, nil
}

// Coverage exposes the engine's collector for testbed hook wiring.
func (e *CovEngine) Coverage() *coverage.Collector { return e.cov }

// Corpus exposes the engine's corpus manager, e.g. to attach a journal
// (corpus.Manager.AttachJournal) or a minimizer before Run.
func (e *CovEngine) Corpus() *corpus.Manager { return e.corp }

// Run executes the coverage-guided campaign.
//
// Stage 1 is the generational engine's quick pass verbatim — every class's
// cheap sweeps in priority order — so the coverage-guided engine never
// gives up the spec-driven baseline; it seeds both the coverage map and
// the corpus. Stage 2 then loops over the corpus in admission order,
// spending each seed's energy on deterministic variants (three havoc
// draws, then one continuation of the seed class's position-sensitive
// mutation stream, repeating), until the time or frame budget runs out.
func (e *CovEngine) Run() (*CovResult, error) {
	mCovCampaigns.Inc()
	res := &Result{
		Strategy:       e.strategy,
		Device:         e.device,
		ClassesCovered: len(e.queue),
	}
	e.start = e.clock.Now()
	e.res = res
	e.nextSample = e.cfg.SamplePeriod
	e.pending = nil

	streams := make([]*mutate.Stream, len(e.queue))
	for i, cls := range e.queue {
		streams[i] = e.mut.Stream(cls)
	}

	// Stage 1: spec-driven quick pass (identical coverage of the queue).
	for _, stream := range streams {
		if e.budgetExhausted() {
			break
		}
		for n := stream.QuickSize(); n > 0 && !e.budgetExhausted(); n-- {
			if err := e.covTest(e.drawFiltered(stream)); err != nil {
				return nil, err
			}
		}
	}

	// Stage 2: coverage-guided corpus exploitation with an exploration
	// tax — each round first continues every class stream by one draw
	// (classes the corpus never admitted still get deeper structural
	// mutations), then walks the corpus in admission order spending each
	// seed's energy budget on variants.
	rounds := 0
	for !e.budgetExhausted() {
		sentBefore := res.PacketsSent

		for _, stream := range streams {
			if e.budgetExhausted() {
				break
			}
			if stream.Exhausted() {
				continue
			}
			if err := e.covTest(e.drawFiltered(stream)); err != nil {
				return nil, err
			}
		}

		for i := 0; i < e.corp.Len() && !e.budgetExhausted(); i++ {
			s := e.corp.Seed(i)
			for k := 0; k < s.Energy && !e.budgetExhausted(); k++ {
				for len(e.visits) <= s.ID {
					e.visits = append(e.visits, 0)
				}
				v := e.corp.Variant(s, e.visits[s.ID])
				e.visits[s.ID]++
				if err := e.covTest(v); err != nil {
					return nil, err
				}
			}
		}

		rounds++
		mCovRounds.Inc()
		if res.PacketsSent == sentBefore {
			// The whole round deduplicated away (exhausted streams, tiny
			// corpus): charge an idle gap so the time budget still drains
			// instead of spinning.
			e.clock.Advance(e.cfg.InterTestGap)
		}
	}

	res.Elapsed = e.elapsed()
	res.Timeline = append(res.Timeline, Sample{
		Elapsed: res.Elapsed, Packets: res.PacketsSent, Unique: len(res.Findings),
	})

	out := &CovResult{
		Result:     *res,
		Coverage:   e.cov.Stats(),
		CorpusSize: e.corp.Len(),
		Rounds:     rounds,
	}
	for _, s := range e.corp.Seeds() {
		if s.Minimized {
			out.SeedsMinimized++
		}
	}
	return out, nil
}

// covTest runs one payload under coverage measurement and admits it to
// the corpus when it lights up new features. Byte-identical re-sends are
// skipped: they cannot change the map.
func (e *CovEngine) covTest(payload []byte) error {
	if len(payload) >= 2 && e.crashedCmds[[2]byte{payload[0], payload[1]}] {
		return nil // known hang: the generational engine filters these too
	}
	key := string(payload)
	if e.tested[key] {
		mCovDeduped.Inc()
		return nil
	}
	e.tested[key] = true

	e.cov.BeginInput()
	newFinding, _ := e.runPayload(payload)
	newFeat := e.cov.EndInput()
	if newFeat == 0 {
		return nil
	}

	sig := ""
	if newFinding && len(e.res.Findings) > 0 {
		sig = e.res.Findings[len(e.res.Findings)-1].Signature
	}
	var trace []telemetry.FrameRecord
	if e.cfg.Recorder != nil {
		trace = e.cfg.Recorder.Snapshot()
	}
	_, err := e.corp.Admit(payload, newFeat, sig, trace)
	return err
}
