package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Partition schedules a node outage: every frame to or from a transceiver
// whose name contains Node is swallowed during [From, From+For), measured
// from the instant the injector is attached.
type Partition struct {
	// Node is matched as a substring of transceiver names ("lock" matches
	// "D1-lock"); an empty string matches nothing.
	Node string
	// From is the offset from attach time at which the outage starts.
	From time.Duration
	// For is how long the outage lasts; zero disables the partition.
	For time.Duration
}

// Profile is one impairment configuration. The zero value injects no
// faults; a Profile is plain data and safe to copy.
type Profile struct {
	// Name labels the profile in reports and flags.
	Name string

	// GoodLoss and BadLoss are the per-frame loss probabilities of the
	// Gilbert–Elliott channel's good and bad states. GoodToBad and
	// BadToGood are the per-frame state transition probabilities; with
	// both zero the channel stays in the good state and GoodLoss acts as
	// plain independent loss.
	GoodLoss  float64
	BadLoss   float64
	GoodToBad float64
	BadToGood float64

	// Corrupt is the probability a delivered frame has one random bit
	// flipped (the CS-8 / CRC-16 rejection path on the receiver).
	Corrupt float64

	// Duplicate is the probability a delivered frame arrives twice.
	Duplicate float64

	// Jitter is the probability a delivered frame is delayed by a uniform
	// extra latency in (0, JitterMax] — enough to reorder it past frames
	// sent later.
	Jitter    float64
	JitterMax time.Duration

	// Partitions are scheduled node outages.
	Partitions []Partition
}

// Enabled reports whether the profile can inject any fault at all.
func (p Profile) Enabled() bool {
	if p.GoodLoss > 0 || p.BadLoss > 0 || p.Corrupt > 0 || p.Duplicate > 0 {
		return true
	}
	if p.Jitter > 0 && p.JitterMax > 0 {
		return true
	}
	for _, pt := range p.Partitions {
		if pt.Node != "" && pt.For > 0 {
			return true
		}
	}
	return false
}

// String renders the profile compactly for reports.
func (p Profile) String() string {
	if p.Name != "" {
		return p.Name
	}
	if !p.Enabled() {
		return "none"
	}
	return "custom"
}

// builtins are the named impairment profiles. "burst" approximates the
// paper testbed's worst observed RF (occasional deep fades), "noise" and
// "jitter" isolate single fault types, "partition" reproduces the ISSUE's
// "partition D8 from t=2h for 10m" scenario against the lock, and
// "lossy"/"stress" are mild and harsh combinations.
var builtins = map[string]Profile{
	"none": {Name: "none"},
	"burst": {Name: "burst",
		GoodLoss: 0.002, BadLoss: 0.5, GoodToBad: 0.03, BadToGood: 0.25},
	"noise": {Name: "noise", Corrupt: 0.05},
	"jitter": {Name: "jitter",
		Jitter: 0.3, JitterMax: 60 * time.Millisecond, Duplicate: 0.02},
	"partition": {Name: "partition",
		Partitions: []Partition{{Node: "lock", From: 2 * time.Hour, For: 10 * time.Minute}}},
	"lossy": {Name: "lossy",
		GoodLoss: 0.01, BadLoss: 0.3, GoodToBad: 0.02, BadToGood: 0.3,
		Corrupt: 0.01, Duplicate: 0.01,
		Jitter: 0.1, JitterMax: 20 * time.Millisecond},
	"stress": {Name: "stress",
		GoodLoss: 0.05, BadLoss: 0.6, GoodToBad: 0.05, BadToGood: 0.2,
		Corrupt: 0.05, Duplicate: 0.05,
		Jitter: 0.25, JitterMax: 80 * time.Millisecond,
		Partitions: []Partition{{Node: "lock", From: time.Hour, For: 5 * time.Minute}}},
}

// Profiles lists the built-in profile names, sorted.
func Profiles() []string {
	names := make([]string, 0, len(builtins))
	for n := range builtins {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseProfile resolves a -chaos-profile flag value: a built-in name
// ("burst"), optionally followed by colon-separated key=value overrides
// ("burst:badloss=0.7,corrupt=0.01"). Recognised keys: goodloss, badloss,
// gtob, btog, corrupt, dup, jitterp, jittermax (a duration), and
// partition=node@FROM/FOR (repeatable; durations like 2h, 10m).
func ParseProfile(spec string) (Profile, error) {
	name, rest, hasRest := strings.Cut(strings.TrimSpace(spec), ":")
	name = strings.ToLower(strings.TrimSpace(name))
	p, ok := builtins[name]
	if !ok {
		return Profile{}, fmt.Errorf("chaos: unknown profile %q (builtins: %s)",
			name, strings.Join(Profiles(), ", "))
	}
	// Builtin partitions are shared slices; copy before overrides append.
	p.Partitions = append([]Partition(nil), p.Partitions...)
	if !hasRest {
		return p, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: override %q is not key=value", kv)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "goodloss":
			p.GoodLoss, err = parseProb(val)
		case "badloss":
			p.BadLoss, err = parseProb(val)
		case "gtob":
			p.GoodToBad, err = parseProb(val)
		case "btog":
			p.BadToGood, err = parseProb(val)
		case "corrupt":
			p.Corrupt, err = parseProb(val)
		case "dup":
			p.Duplicate, err = parseProb(val)
		case "jitterp":
			p.Jitter, err = parseProb(val)
		case "jittermax":
			p.JitterMax, err = time.ParseDuration(val)
		case "partition":
			var pt Partition
			pt, err = parsePartition(val)
			if err == nil {
				p.Partitions = append(p.Partitions, pt)
			}
		default:
			return Profile{}, fmt.Errorf("chaos: unknown override key %q", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: override %s: %w", key, err)
		}
	}
	p.Name = name + ":" + rest
	return p, nil
}

// parseProb parses a probability and checks it is in [0,1].
func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", v)
	}
	return v, nil
}

// parsePartition parses "node@FROM/FOR", e.g. "lock@2h/10m".
func parsePartition(s string) (Partition, error) {
	node, sched, ok := strings.Cut(s, "@")
	if !ok || node == "" {
		return Partition{}, fmt.Errorf("partition %q is not node@from/for", s)
	}
	fromStr, forStr, ok := strings.Cut(sched, "/")
	if !ok {
		return Partition{}, fmt.Errorf("partition %q is not node@from/for", s)
	}
	from, err := time.ParseDuration(fromStr)
	if err != nil {
		return Partition{}, err
	}
	dur, err := time.ParseDuration(forStr)
	if err != nil {
		return Partition{}, err
	}
	if dur <= 0 {
		return Partition{}, fmt.Errorf("partition duration %s is not positive", dur)
	}
	return Partition{Node: node, From: from, For: dur}, nil
}
