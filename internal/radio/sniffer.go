package radio

import (
	"sync"

	"zcover/internal/protocol"
)

// Sniffer is a promiscuous capture device: the software analogue of the
// Yardstick One in receive mode. It records every frame on its region,
// regardless of home ID, with simulated timestamps — the raw material of
// ZCover's passive scanner.
type Sniffer struct {
	trx *Transceiver

	mu       sync.Mutex
	captures []Capture
	limit    int
}

// NewSniffer attaches a promiscuous capture device to the medium. limit
// bounds the retained capture ring (0 means unbounded).
func NewSniffer(m *Medium, region Region, limit int) *Sniffer {
	s := &Sniffer{limit: limit}
	s.trx = m.Attach("sniffer", region)
	s.trx.SetReceiver(s.onFrame)
	return s
}

// onFrame records a capture, evicting the oldest beyond the limit. The
// incoming Raw is only valid for the duration of this callback (it may
// alias the transmitter's buffer or a pooled copy), so retention requires
// a private copy.
func (s *Sniffer) onFrame(c Capture) {
	c.Raw = append([]byte(nil), c.Raw...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.captures = append(s.captures, c)
	if s.limit > 0 && len(s.captures) > s.limit {
		s.captures = s.captures[len(s.captures)-s.limit:]
	}
}

// Captures returns a copy of the retained captures in arrival order.
func (s *Sniffer) Captures() []Capture {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Capture, len(s.captures))
	copy(out, s.captures)
	return out
}

// Clear discards retained captures.
func (s *Sniffer) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.captures = nil
}

// Close detaches the sniffer from the air.
func (s *Sniffer) Close() { s.trx.Detach() }

// Networks summarises the home IDs observed so far and the node IDs seen
// communicating under each — the passive-scanning result of §III-B1.
func (s *Sniffer) Networks() map[protocol.HomeID][]protocol.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[protocol.HomeID]map[protocol.NodeID]bool)
	for _, c := range s.captures {
		home, src, dst, ok := protocol.SniffNetworkInfo(c.Raw)
		if !ok {
			continue
		}
		if seen[home] == nil {
			seen[home] = make(map[protocol.NodeID]bool)
		}
		if src.IsUnicast() {
			seen[home][src] = true
		}
		if dst.IsUnicast() {
			seen[home][dst] = true
		}
	}
	out := make(map[protocol.HomeID][]protocol.NodeID, len(seen))
	for home, nodes := range seen {
		ids := make([]protocol.NodeID, 0, len(nodes))
		for id := range nodes {
			ids = append(ids, id)
		}
		sortNodeIDs(ids)
		out[home] = ids
	}
	return out
}

// sortNodeIDs sorts in place (tiny slices; insertion sort avoids an import).
func sortNodeIDs(ids []protocol.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
