package controller

import "testing"

func TestAssociationSetGetRemove(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x85, 0x01, 0x01, 0x03}) // add node 3 to lifeline
	r.inject(t, []byte{0x85, 0x01, 0x01, 0x02})
	r.inject(t, []byte{0x85, 0x01, 0x01, 0x02}) // duplicate ignored
	if got := r.ctrl.Associations(1); len(got) != 2 {
		t.Fatalf("lifeline = %v", got)
	}
	r.inject(t, []byte{0x85, 0x02, 0x01}) // GET
	last := r.replies[len(r.replies)-1]
	if last[0] != 0x85 || last[1] != 0x03 || len(last) != 7 {
		t.Fatalf("report = % X", last)
	}
	r.inject(t, []byte{0x85, 0x04, 0x01, 0x03}) // remove node 3
	if got := r.ctrl.Associations(1); len(got) != 1 || got[0] != 0x02 {
		t.Fatalf("after remove = %v", got)
	}
}

func TestAssociationValidation(t *testing.T) {
	r := newRig(t, "D2")
	r.inject(t, []byte{0x85, 0x01, 0x09, 0x03}) // group out of range
	r.inject(t, []byte{0x85, 0x01, 0x01, 0xFF}) // broadcast member
	if got := r.ctrl.Associations(9); len(got) != 0 {
		t.Fatalf("invalid group stored: %v", got)
	}
	if got := r.ctrl.Associations(1); len(got) != 0 {
		t.Fatalf("broadcast member stored: %v", got)
	}
}

func TestAssociationRemoveFromAllGroups(t *testing.T) {
	r := newRig(t, "D3")
	r.inject(t, []byte{0x85, 0x01, 0x01, 0x02})
	r.inject(t, []byte{0x85, 0x01, 0x02, 0x02})
	r.inject(t, []byte{0x85, 0x04, 0x00, 0x02}) // group 0: everywhere
	if len(r.ctrl.Associations(1)) != 0 || len(r.ctrl.Associations(2)) != 0 {
		t.Fatal("remove-from-all left members")
	}
}

func TestAssociationResetClears(t *testing.T) {
	r := newRig(t, "D4")
	r.inject(t, []byte{0x85, 0x01, 0x01, 0x02})
	r.ctrl.Reset()
	if len(r.ctrl.Associations(1)) != 0 {
		t.Fatal("reset kept associations")
	}
}
