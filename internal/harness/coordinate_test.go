package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"zcover/internal/coord"
	"zcover/internal/fleet"
)

// smokeBaseline runs the smoke campaign on the classic single-machine
// path and returns its rendered table and bug-log bytes — the golden the
// distributed path must reproduce exactly.
func smokeBaseline(t *testing.T) (string, string) {
	t.Helper()
	outs, log, err := runWithBugLog(t, "smoke", smokeJobs(0), fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if log == "" {
		t.Fatal("bug log empty — the smoke job list no longer surfaces findings, so determinism over it proves nothing")
	}
	return renderSmoke(outs).String(), log
}

// newSmokeCoordinator builds a coordinator over the smoke campaign with
// an HTTP server in front of it.
func newSmokeCoordinator(t *testing.T, dir string, resume bool, ttl time.Duration) (*coord.Coordinator, *httptest.Server) {
	t.Helper()
	jobs := smokeJobs(0)
	hash, err := CampaignSpecHash("smoke", jobs)
	if err != nil {
		t.Fatal(err)
	}
	c, err := coord.New(coord.Config{
		Campaign: "smoke", Jobs: jobs, SpecHash: hash,
		Dir: dir, Resume: resume, LeaseTTL: ttl,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	return c, srv
}

// renderCoordinated waits for the campaign, decodes the coordinator's
// journal records, and renders table + bug log the way `zcover
// coordinate` does.
func renderCoordinated(t *testing.T, c *coord.Coordinator) (string, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	outs, err := DecodeRecords(recs, len(smokeJobs(0)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	SetBugLog(&buf)
	defer SetBugLog(nil)
	tbl, err := RenderCampaign("smoke", outs)
	if err != nil {
		t.Fatal(err)
	}
	return tbl.String(), buf.String()
}

// TestCoordinatedCampaignMatchesSingleMachine is the tentpole invariant:
// a coordinator with N workers must render the exact table and bug-log
// bytes the single-machine run produces, for N = 1 and N = 3.
func TestCoordinatedCampaignMatchesSingleMachine(t *testing.T) {
	wantTable, wantLog := smokeBaseline(t)
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, srv := newSmokeCoordinator(t, t.TempDir(), false, 0)
			defer c.Close()
			defer srv.Close()
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					_, errs[i] = coord.RunWorker(context.Background(), coord.WorkerConfig{
						Coordinator: srv.URL, ID: fmt.Sprintf("w%d", i),
						Runner: LeaseRunner(fleet.Config{}),
					})
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			gotTable, gotLog := renderCoordinated(t, c)
			if gotTable != wantTable {
				t.Errorf("table differs from single-machine run:\n--- want ---\n%s--- got ---\n%s", wantTable, gotTable)
			}
			if gotLog != wantLog {
				t.Errorf("bug log differs from single-machine run:\n--- want ---\n%s--- got ---\n%s", wantLog, gotLog)
			}
		})
	}
}

// TestCoordinatedCampaignSurvivesWorkerKill: a worker killed mid-job
// abandons its lease; after the deadline the job is re-issued to a
// healthy worker and the final bytes are still identical.
func TestCoordinatedCampaignSurvivesWorkerKill(t *testing.T) {
	wantTable, wantLog := smokeBaseline(t)
	c, srv := newSmokeCoordinator(t, t.TempDir(), false, 100*time.Millisecond)
	defer c.Close()
	defer srv.Close()

	// The doomed worker dies (its context is cancelled) the instant its
	// first job starts — lease granted, no result ever uploaded.
	killCtx, kill := context.WithCancel(context.Background())
	defer kill()
	doomed := func(job fleet.Job) (json.RawMessage, int, error) {
		kill()
		return nil, 0, killCtx.Err()
	}
	if _, err := coord.RunWorker(killCtx, coord.WorkerConfig{
		Coordinator: srv.URL, ID: "doomed", Runner: doomed,
	}); err != context.Canceled {
		t.Fatalf("killed worker returned %v, want context.Canceled", err)
	}

	// A healthy worker picks up the remaining jobs, waits out the dead
	// lease, and finishes the re-issued job too.
	if _, err := coord.RunWorker(context.Background(), coord.WorkerConfig{
		Coordinator: srv.URL, ID: "healthy", Runner: LeaseRunner(fleet.Config{}),
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Expired == 0 {
		t.Error("no lease expired — the kill scenario did not actually exercise re-issue")
	}
	gotTable, gotLog := renderCoordinated(t, c)
	if gotTable != wantTable {
		t.Errorf("table differs after worker kill:\n--- want ---\n%s--- got ---\n%s", wantTable, gotTable)
	}
	if gotLog != wantLog {
		t.Errorf("bug log differs after worker kill:\n--- want ---\n%s--- got ---\n%s", wantLog, gotLog)
	}
}

// TestCoordinatedCampaignSurvivesCoordinatorRestart: results journaled
// before a coordinator crash survive into the resumed coordinator, the
// open jobs are re-leased, and the merged bytes are identical.
func TestCoordinatedCampaignSurvivesCoordinatorRestart(t *testing.T) {
	wantTable, wantLog := smokeBaseline(t)
	dir := t.TempDir()
	jobs := smokeJobs(0)
	hash, err := CampaignSpecHash("smoke", jobs)
	if err != nil {
		t.Fatal(err)
	}

	// First life: exactly one job completes before the "crash" (the
	// result is computed by the real runner and uploaded directly).
	c1, srv1 := newSmokeCoordinator(t, dir, false, 0)
	raw, attempts, err := LeaseRunner(fleet.Config{})(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(coord.ResultRequest{
		Worker: "w0", JobIndex: 0, SpecHash: hash, Attempts: attempts, Body: raw,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv1.URL+"/result", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("upload before crash: %d", resp.StatusCode)
	}
	srv1.Close()
	c1.Close()

	// Second life: the journal restores job 0, a worker finishes the rest.
	c2, srv2 := newSmokeCoordinator(t, dir, true, 0)
	defer c2.Close()
	defer srv2.Close()
	if st := c2.Status(); st.Done != 1 {
		t.Fatalf("recovered done = %d, want 1", st.Done)
	}
	stats, err := coord.RunWorker(context.Background(), coord.WorkerConfig{
		Coordinator: srv2.URL, ID: "w1", Runner: LeaseRunner(fleet.Config{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Ran != len(jobs)-1 {
		t.Fatalf("post-restart worker ran %d jobs, want %d", stats.Ran, len(jobs)-1)
	}
	gotTable, gotLog := renderCoordinated(t, c2)
	if gotTable != wantTable {
		t.Errorf("table differs after coordinator restart:\n--- want ---\n%s--- got ---\n%s", wantTable, gotTable)
	}
	if gotLog != wantLog {
		t.Errorf("bug log differs after coordinator restart:\n--- want ---\n%s--- got ---\n%s", wantLog, gotLog)
	}
}

func TestCampaignJobsAndDecodeValidation(t *testing.T) {
	if _, err := CampaignJobs("sideways", 0); err == nil {
		t.Fatal("accepted unknown campaign")
	}
	jobs, err := CampaignJobs("table5", 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2*len(table5Devices) {
		t.Fatalf("table5 job count = %d", len(jobs))
	}
	for _, job := range jobs {
		if job.Budget != 2*time.Hour {
			t.Fatalf("job %s budget = %s", job.Name, job.Budget)
		}
	}
	if _, err := DecodeRecords(nil, 3); err == nil || !strings.Contains(err.Error(), "0 records for 3 jobs") {
		t.Fatalf("short record set: %v", err)
	}
	if _, err := RenderCampaign("sideways", nil); err == nil {
		t.Fatal("rendered unknown campaign")
	}
}
