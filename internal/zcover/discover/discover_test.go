package discover

import (
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/controller"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

// runDiscovery fingerprints and discovers against one testbed profile.
func runDiscovery(t *testing.T, index string) (Result, scan.Fingerprint, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.New(index, 11)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(6, 10*time.Second)
	fp, err := scan.FingerprintTarget(d, time.Minute+10*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, cmdclass.MustLoad(), fp)
	if err != nil {
		t.Fatal(err)
	}
	return res, fp, tb
}

func TestDiscoveryCountsMatchTableIV(t *testing.T) {
	cases := map[string]struct{ unlisted, unknown int }{
		"D1": {26, 28},
		"D3": {28, 30},
	}
	for index, want := range cases {
		res, _, _ := runDiscovery(t, index)
		if got := len(res.UnlistedSpec); got != want.unlisted {
			t.Errorf("%s: %d unlisted spec classes, want %d", index, got, want.unlisted)
		}
		if got := res.UnknownCount(); got != want.unknown {
			t.Errorf("%s: %d unknown CMDCLs, want %d (Table IV)", index, got, want.unknown)
		}
		if got := len(res.Prioritized); got != 45 {
			t.Errorf("%s: prioritized queue has %d classes, want 45 (Table V)", index, got)
		}
	}
}

func TestDiscoveryFindsBothProprietaryClasses(t *testing.T) {
	res, _, _ := runDiscovery(t, "D2")
	if len(res.HiddenConfirmed) != 2 {
		t.Fatalf("hidden confirmed = %d classes, want 2", len(res.HiddenConfirmed))
	}
	ids := map[cmdclass.ClassID]bool{}
	for _, c := range res.HiddenConfirmed {
		ids[c.ID] = true
	}
	if !ids[cmdclass.ClassZWaveProtocol] || !ids[cmdclass.ClassProprietaryMfg] {
		t.Fatalf("hidden confirmed = %v, want 0x01 and 0x02", res.HiddenConfirmed)
	}
	// The confirmed 0x01 resolves to the full protocol definition, giving
	// the mutator its 23 commands.
	for _, c := range res.HiddenConfirmed {
		if c.ID == cmdclass.ClassZWaveProtocol && len(c.Commands) != 23 {
			t.Errorf("0x01 resolved with %d commands, want 23", len(c.Commands))
		}
	}
}

func TestDiscoveryConfirms53Commands(t *testing.T) {
	res, _, _ := runDiscovery(t, "D4")
	if got := len(res.ConfirmedCommands); got != 53 {
		t.Fatalf("validation confirmed %d commands, want 53 (Table V)", got)
	}
	// The confirmed set must be exactly the firmware's responder table.
	want := controller.SupportedCommands()
	for i, ref := range res.ConfirmedCommands {
		if ref.Class != want[i].Class || ref.Cmd != want[i].Cmd {
			t.Fatalf("confirmed[%d] = %s/%s, want %s/%s",
				i, ref.Class, ref.Cmd, want[i].Class, want[i].Cmd)
		}
	}
}

func TestDiscoveryProbesAreSafe(t *testing.T) {
	// Validation testing must not trip any vulnerability model: the
	// probes are spec-shaped and benign by construction.
	res, _, tb := runDiscovery(t, "D6")
	if events := tb.Bus.Events(); len(events) != 0 {
		t.Fatalf("discovery fired %d anomalies: %v", len(events), events)
	}
	if res.ProbesSent == 0 {
		t.Fatal("no probes sent")
	}
	// The controller's memory must be untouched.
	if tb.Controller.Table().Len() != 3 {
		t.Fatalf("node table = %v after discovery", tb.Controller.Table().IDs())
	}
}

func TestDiscoveryPrioritizesHiddenProtocolClassFirst(t *testing.T) {
	res, _, _ := runDiscovery(t, "D1")
	// 0x01 (23 commands) ties with NETWORK_MANAGEMENT_INCLUSION (23) and
	// wins on the ID tiebreak: the bug-dense hidden class is fuzzed first.
	if res.Prioritized[0].ID != cmdclass.ClassZWaveProtocol {
		t.Fatalf("highest-priority class = %s, want 0x01", res.Prioritized[0].ID)
	}
}

func TestBuildSafeProbeShapes(t *testing.T) {
	reg := cmdclass.MustLoad()
	fp := scan.Fingerprint{Controller: 0x01}
	version, _ := reg.Get(cmdclass.ClassVersion)
	cmd, _ := version.Command(cmdclass.CmdVersionCommandClassGet)
	probe := BuildSafeProbe(version, cmd, fp)
	if len(probe) != 3 || probe[0] != 0x86 || probe[1] != 0x13 || probe[2] != 0x00 {
		t.Fatalf("probe = % X", probe)
	}
	// Variadic tails are omitted; fixed params take benign values.
	proto, _ := cmdclass.HiddenClass(cmdclass.ClassZWaveProtocol)
	reg13, _ := proto.Command(cmdclass.CmdProtoNewNodeRegistered)
	probe = BuildSafeProbe(proto, reg13, fp)
	if len(probe) != 2+7 {
		t.Fatalf("NEW_NODE_REGISTERED probe has %d bytes, want 9", len(probe))
	}
	if probe[2] != 0x01 { // node ID parameter: the target controller
		t.Fatalf("node-ID probe value = %#02x", probe[2])
	}
}

func TestRunRejectsNilRegistry(t *testing.T) {
	if _, err := Run(nil, nil, scan.Fingerprint{}); err == nil {
		t.Fatal("Run accepted a nil registry")
	}
}
