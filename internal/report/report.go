// Package report renders experiment outputs: ASCII tables matching the
// paper's table layout, and CSV series for figures.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a titled grid.
type Table struct {
	// Title is printed above the grid.
	Title string
	// Headers names the columns.
	Headers []string
	// Rows holds the cell values.
	Rows [][]string
	// Notes are printed below the grid, one per line.
	Notes []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with box-drawing-free ASCII, column-aligned.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "%s\n", n)
	}
	return b.String()
}

// WriteTo implements io.WriterTo.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, t.String())
	return int64(n), err
}

// CSV is a figure data series.
type CSV struct {
	// Headers names the columns.
	Headers []string
	// Rows holds the values.
	Rows [][]string
}

// AddRow appends a row.
func (c *CSV) AddRow(cells ...string) { c.Rows = append(c.Rows, cells) }

// String renders comma-separated values (cells are never quoted; the
// figure series contain only numbers and simple identifiers).
func (c *CSV) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(c.Headers, ","))
	b.WriteByte('\n')
	for _, row := range c.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Seconds formats a duration as whole seconds for figure axes.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%d", int(d.Seconds()))
}

// DurationCell formats Table III's Duration column: bounded outages in
// seconds/minutes, unbounded effects as "Infinite".
func DurationCell(d time.Duration) string {
	if d == 0 {
		return "Infinite"
	}
	if d >= time.Minute && d%time.Minute == 0 {
		return fmt.Sprintf("%d min", int(d.Minutes()))
	}
	return fmt.Sprintf("%d sec", int(d.Seconds()))
}
