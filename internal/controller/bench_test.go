package controller

import (
	"testing"

	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// BenchmarkDispatch measures the controller's receive path end to end
// (frame decode, bug-model evaluation, responder lookup, reply).
func BenchmarkDispatch(b *testing.B) {
	profile, _ := ProfileByIndex("D1")
	m := radio.NewMedium(vtime.NewSimClock())
	ctrl := New(m, radio.RegionUS, profile, &oracle.Bus{})
	_ = ctrl
	attacker := device.NewNode(device.Config{
		Medium: m, Region: radio.RegionUS, Home: profile.Home, ID: 0x0F, Name: "attacker",
	})
	raw := protocol.NewDataFrame(profile.Home, 0x0F, 0x01, []byte{0x86, 0x11}).MustEncode()
	_ = attacker
	trx := m.Attach("raw", radio.RegionUS)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := trx.Transmit(raw); err != nil {
			b.Fatal(err)
		}
	}
}
