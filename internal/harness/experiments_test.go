package harness

import (
	"strings"
	"testing"
	"time"

	"zcover/internal/controller"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

func TestFig1FrameDissection(t *testing.T) {
	tb := Fig1()
	out := tb.String()
	for _, want := range []string{"H-ID", "CB 95 A3 4A", "CMDCL", "20", "PARAM1", "FF"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig5SeriesMatchesPaper(t *testing.T) {
	_, csv, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"23", "15", "11", "10", "8", "7", "6", "6", "5", "4", "3", "2", "2", "1", "1", "0"}
	if len(csv.Rows) != len(want) {
		t.Fatalf("Fig5 has %d bars, want %d", len(csv.Rows), len(want))
	}
	for i, row := range csv.Rows {
		if row[1] != want[i] {
			t.Errorf("bar %d (%s) = %s commands, paper shows %s", i, row[0], row[1], want[i])
		}
	}
}

func TestTable2Inventory(t *testing.T) {
	tb := Table2()
	if len(tb.Rows) != 9 {
		t.Fatalf("Table II lists %d devices, want 9", len(tb.Rows))
	}
	out := tb.String()
	for _, want := range []string{"ZooZ", "Aeotec", "Samsung", "Schlage", "GE Jasco", "ZST10", "BE469ZP"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestTable4MatchesPaperExactly(t *testing.T) {
	_, rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		home           string
		known, unknown int
	}{
		"D1": {"E7DE3F3D", 17, 28},
		"D2": {"CD007171", 17, 28},
		"D3": {"CB51722D", 15, 30},
		"D4": {"C7E9DD54", 17, 28},
		"D5": {"F4C3754D", 15, 30},
		"D6": {"CB95A34A", 17, 28},
		"D7": {"EDC87EE4", 15, 30},
	}
	if len(rows) != 7 {
		t.Fatalf("Table IV has %d rows", len(rows))
	}
	for _, r := range rows {
		w := want[r.Index]
		if r.Home != w.home {
			t.Errorf("%s home = %s, want %s", r.Index, r.Home, w.home)
		}
		if r.NodeID != "0x01" {
			t.Errorf("%s node = %s, want 0x01", r.Index, r.NodeID)
		}
		if r.Known != w.known || r.Unknown != w.unknown {
			t.Errorf("%s known/unknown = %d/%d, want %d/%d",
				r.Index, r.Known, r.Unknown, w.known, w.unknown)
		}
		if r.Commands != 53 {
			t.Errorf("%s validated commands = %d, want 53", r.Index, r.Commands)
		}
	}
}

func TestTable6AblationMatchesPaperShape(t *testing.T) {
	_, rows, err := Table6(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("ablation has %d rows", len(rows))
	}
	// Paper: full=15 (across the full Table III catalogue; 14 of those
	// manifest on the ZooZ per its affected-devices column), β=8, γ=6.
	if rows[0].Vulns != 14 {
		t.Errorf("full config found %d, want 14 (all ZooZ bugs)", rows[0].Vulns)
	}
	if rows[1].Vulns != 8 {
		t.Errorf("beta config found %d, want 8", rows[1].Vulns)
	}
	if rows[2].Vulns != 6 {
		t.Errorf("gamma config found %d, want 6", rows[2].Vulns)
	}
	if !(rows[0].Vulns > rows[1].Vulns && rows[1].Vulns > rows[2].Vulns) {
		t.Error("ablation ordering full > beta > gamma violated")
	}
}

func TestTable3FullCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("24h-per-device campaign; run without -short")
	}
	_, res, err := Table3(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Unmatched) > 0 {
		t.Fatalf("signatures outside the Table III catalogue: %v", res.Unmatched)
	}
	// Every Table III bug must be rediscovered on exactly its affected set.
	wantDevices := map[controller.BugID][]string{}
	for _, p := range controller.Profiles() {
		for _, b := range p.Bugs {
			wantDevices[b] = append(wantDevices[b], p.Index)
		}
	}
	for _, bug := range PaperBugs() {
		got := res.Affected[bug.ID]
		want := wantDevices[bug.ID]
		if len(got) != len(want) {
			t.Errorf("bug %02d rediscovered on %v, want %v", bug.ID, got, want)
		}
	}
	// Union = the paper's headline 15 zero-days.
	if got := len(res.Affected); got != 15 {
		t.Errorf("union of unique vulnerabilities = %d, want 15", got)
	}
}

func TestTable5ComparisonMatchesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("24h-per-device comparison; run without -short")
	}
	_, rows, err := Table5(24 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	wantVFuzz := map[string]int{"D1": 1, "D2": 3, "D3": 0, "D4": 4, "D5": 0}
	for _, r := range rows {
		if r.VFuzzClasses != 256 || r.VFuzzCommands != 256 {
			t.Errorf("%s VFuzz coverage %d/%d, want 256/256", r.Index, r.VFuzzClasses, r.VFuzzCommands)
		}
		if r.ZCoverClasses != 45 || r.ZCoverCmds != 53 {
			t.Errorf("%s ZCover coverage %d/%d, want 45/53", r.Index, r.ZCoverClasses, r.ZCoverCmds)
		}
		if r.VFuzzVulns != wantVFuzz[r.Index] {
			t.Errorf("%s VFuzz found %d, want %d", r.Index, r.VFuzzVulns, wantVFuzz[r.Index])
		}
		if r.ZCoverVulns != 14 {
			t.Errorf("%s ZCover found %d, want 14", r.Index, r.ZCoverVulns)
		}
		if r.ZCoverVulns <= r.VFuzzVulns {
			t.Errorf("%s: ZCover (%d) must dominate VFuzz (%d)", r.Index, r.ZCoverVulns, r.VFuzzVulns)
		}
		if r.Overlap != 0 {
			t.Errorf("%s: %d common vulnerabilities, paper found none", r.Index, r.Overlap)
		}
	}
}

func TestFig12TimelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("24h campaigns; run without -short")
	}
	csvs, series, err := Fig12(24*time.Hour, 800*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 || len(csvs) != 4 {
		t.Fatalf("Fig12 covers %d devices, want 4", len(series))
	}
	for _, s := range series {
		if len(s.Samples) == 0 {
			t.Errorf("%s: empty timeline", s.Index)
			continue
		}
		early := 0
		for _, f := range s.Discoveries {
			if f.Elapsed <= 800*time.Second {
				early++
			}
		}
		// The paper's point: discoveries cluster in the initial phase.
		if early < 5 {
			t.Errorf("%s: only %d discoveries within the first 800 s", s.Index, early)
		}
		if len(s.Discoveries) != 14 {
			t.Errorf("%s: %d total discoveries, want 14", s.Index, len(s.Discoveries))
		}
		last := s.Samples[len(s.Samples)-1]
		// Paper Fig 12 shows up to ~1000 packets in the first 800 s.
		if last.Packets < 100 || last.Packets > 1500 {
			t.Errorf("%s: %d packets at the window edge, outside the paper's range", s.Index, last.Packets)
		}
	}
}

func TestRunZCoverRejectsBadInputs(t *testing.T) {
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	// A campaign against a silent testbed (no scheduled traffic) is fine —
	// RunZCover schedules its own; but an unknown strategy string still
	// runs as full. Exercise the success path cheaply.
	c, err := RunZCover(tb, fuzz.StrategyKnownOnly, time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Fuzz.ClassesCovered != 17 {
		t.Fatalf("beta queue = %d classes", c.Fuzz.ClassesCovered)
	}
}

func TestCatalogSignaturesUnique(t *testing.T) {
	bugs := PaperBugs()
	if len(bugs) != 15 {
		t.Fatalf("catalogue has %d bugs, want 15", len(bugs))
	}
	seen := map[string]bool{}
	for _, b := range bugs {
		if seen[b.Signature] {
			t.Errorf("duplicate signature %s", b.Signature)
		}
		seen[b.Signature] = true
		if got, ok := BugBySignature(b.Signature); !ok || got.ID != b.ID {
			t.Errorf("BugBySignature(%s) = %v, %v", b.Signature, got.ID, ok)
		}
	}
	if _, ok := BugBySignature("nope"); ok {
		t.Error("BugBySignature accepted an unknown signature")
	}
}
