package decode_test

import (
	"fmt"

	"zcover/internal/cmdclass"
	"zcover/internal/decode"
)

// ExamplePayload dissects the bug-03 proof-of-concept packet.
func ExamplePayload() {
	reg := cmdclass.MustLoad()
	fmt.Println(decode.Payload(reg, []byte{0x01, 0x0D, 0x02}))
	fmt.Println(decode.Payload(reg, []byte{0x62, 0x01, 0xFF}))
	fmt.Println(decode.Payload(reg, []byte{0x9F, 0x03, 0x07, 0x00, 0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7, 8}))
	// Output:
	// ZWAVE_PROTOCOL NEW_NODE_REGISTERED NodeID=0x02
	// DOOR_LOCK OPERATION_SET Mode=0xFF
	// SECURITY_2 MESSAGE_ENCAPSULATION (encrypted payload)
}
