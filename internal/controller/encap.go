package controller

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// Transport-encapsulation handling. Real controller firmware unwraps
// CRC-16, MULTI_CMD, and SUPERVISION encapsulations before dispatching the
// inner command — which means an encapsulated payload reaches the same
// vulnerable application parsers as a bare one. The fuzzers do not need
// this path to reproduce the paper's results, but a controller model that
// dropped encapsulated traffic would be unfaithful to the firmware the
// paper tests.

// maxEncapDepth bounds recursive unwrapping, as shipped firmware does.
const maxEncapDepth = 3

// dispatchPayload routes one application payload: it unwraps transport
// encapsulations (recursively, up to maxEncapDepth) and hands everything
// else to the vulnerability models and responders.
func (c *Controller) dispatchPayload(src protocol.NodeID, payload []byte, depth int) {
	if len(payload) < 2 {
		return
	}
	class := cmdclass.ClassID(payload[0])
	cmd := cmdclass.CommandID(payload[1])
	inner := payload[2:]
	if c.cov != nil {
		c.cov.OnDispatch(payload[0], payload[1], depth, false)
	}

	if depth < maxEncapDepth {
		switch {
		case class == cmdclass.ClassCRC16Encap && cmd == 0x01:
			// CRC_16_ENCAP: [inner command..., crc16(2)]. The checksum
			// covers the encapsulation header plus the inner command.
			if len(inner) >= 4 {
				body, trailer := inner[:len(inner)-2], inner[len(inner)-2:]
				whole := append([]byte{byte(class), byte(cmd)}, body...)
				want := protocol.CRC16(whole)
				if trailer[0] == byte(want>>8) && trailer[1] == byte(want) {
					c.dispatchPayload(src, body, depth+1)
					return
				}
			}
			return // bad checksum: dropped silently

		case class == cmdclass.ClassMultiCmd && cmd == 0x01:
			// MULTI_CMD_ENCAP: [count, (len, cmd...)*]. Each element is
			// dispatched independently.
			if len(inner) >= 1 {
				rest := inner[1:]
				for count := int(inner[0]); count > 0 && len(rest) >= 1; count-- {
					n := int(rest[0])
					if n == 0 || n > len(rest)-1 {
						return // malformed element: stop parsing
					}
					c.dispatchPayload(src, rest[1:1+n], depth+1)
					rest = rest[1+n:]
				}
			}
			return

		case class == cmdclass.ClassSupervision && cmd == 0x01:
			// SUPERVISION_GET: [sessionID, encapLen, inner...]. A valid
			// inner command is processed and confirmed with a supervision
			// report; anything else falls through to the plain responder.
			if len(inner) >= 2 {
				session := inner[0] & 0x3F
				n := int(inner[1])
				if n > 0 && n <= len(inner)-2 {
					c.dispatchPayload(src, inner[2:2+n], depth+1)
					c.reply(src, []byte{byte(cmdclass.ClassSupervision), 0x02, session, 0xFF, 0x00})
					return
				}
			}
		}
	}

	// A NIF broadcast during add-node mode is a device asking to join;
	// during remove-node mode it is a device asking to leave.
	if class == cmdclass.ClassZWaveProtocol && cmd == cmdclass.CmdProtoNodeInfo {
		if c.inclusionActive() {
			c.handleJoin(payload[2:])
			return
		}
		if c.exclusionActive() {
			c.handleLeave(src)
			return
		}
	}

	params := payload[2:]
	if c.checkBugs(src, class, cmd, params) {
		return
	}
	// Stateful writes the firmware implements without replying.
	if class == cmdclass.ClassAssociation && len(params) >= 2 {
		switch cmd {
		case 0x01: // ASSOCIATION_SET
			c.associate(params[0], protocol.NodeID(params[1]))
			return
		case 0x04: // ASSOCIATION_REMOVE
			c.disassociate(params[0], protocol.NodeID(params[1]))
			return
		}
	}
	if reply := c.respond(class, cmd, params); reply != nil {
		c.reply(src, reply)
	}
}
