package controller

import (
	"testing"
	"time"

	"zcover/internal/device"
	"zcover/internal/radio"
	"zcover/internal/serialapi"
)

// newFactorySwitch attaches a factory-fresh switch (unassigned node, its
// own out-of-the-box home ID) to the rig's air.
func newFactorySwitch(r *testRig) *device.BinarySwitch {
	return device.NewBinarySwitch(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: 0xFACECAFE, ID: 0x00, Name: "factory-switch",
	}, 0x01)
}

func TestOverTheAirInclusion(t *testing.T) {
	r := newRig(t, "D1")
	sw := newFactorySwitch(r)

	// Host arms add-node mode; user presses the device's button.
	r.ctrl.AddNodeMode(0)
	if err := sw.Join(); err != nil {
		t.Fatal(err)
	}

	// The device adopted the network identity the controller assigned.
	if sw.Node().Home() != r.ctrl.Profile().Home {
		t.Fatalf("device home = %s, want %s", sw.Node().Home(), r.ctrl.Profile().Home)
	}
	newID := sw.Node().ID()
	if newID != 4 { // 1 controller + 2 slaves already present
		t.Fatalf("assigned node ID %s, want 4", newID)
	}
	if sw.Node().LearnMode() {
		t.Fatal("device still in learn mode after inclusion")
	}
	if r.ctrl.LastIncluded() != newID {
		t.Fatalf("controller recorded %s", r.ctrl.LastIncluded())
	}

	// The controller's table has the new record with the advertised types.
	rec, ok := r.ctrl.Table().Get(newID)
	if !ok {
		t.Fatal("new node missing from table")
	}
	if rec.Generic != device.GenericTypeSwitchBinary {
		t.Fatalf("record = %+v", rec)
	}
	if len(rec.Classes) != len(sw.Identity().Classes) {
		t.Fatalf("record classes = %v", rec.Classes)
	}

	// And the device is controllable on its new identity.
	if err := r.ctrl.Node().Send(newID, []byte{0x25, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if !sw.On() {
		t.Fatal("included switch not controllable")
	}
}

func TestInclusionRequiresArmedMode(t *testing.T) {
	r := newRig(t, "D2")
	sw := newFactorySwitch(r)
	if err := sw.Join(); err != nil { // controller NOT in add-node mode
		t.Fatal(err)
	}
	if sw.Node().Home() == r.ctrl.Profile().Home {
		t.Fatal("device joined without add-node mode")
	}
	if r.ctrl.Table().Len() != 3 {
		t.Fatalf("table grew: %v", r.ctrl.Table().IDs())
	}
}

func TestInclusionModeExpires(t *testing.T) {
	r := newRig(t, "D3")
	r.ctrl.AddNodeMode(30 * time.Second)
	r.clock.Advance(31 * time.Second)
	sw := newFactorySwitch(r)
	if err := sw.Join(); err != nil {
		t.Fatal(err)
	}
	if sw.Node().Home() == r.ctrl.Profile().Home {
		t.Fatal("device joined after the window expired")
	}
}

func TestInclusionSingleJoinPerArming(t *testing.T) {
	r := newRig(t, "D4")
	r.ctrl.AddNodeMode(time.Minute)
	first := newFactorySwitch(r)
	if err := first.Join(); err != nil {
		t.Fatal(err)
	}
	second := newFactorySwitch(r)
	if err := second.Join(); err != nil {
		t.Fatal(err)
	}
	if second.Node().Home() == r.ctrl.Profile().Home {
		t.Fatal("second device joined on a single arming")
	}
	if r.ctrl.Table().Len() != 4 {
		t.Fatalf("table = %v", r.ctrl.Table().IDs())
	}
}

func TestInclusionViaSerialAPI(t *testing.T) {
	r := newRig(t, "D5")
	pc := serialapi.NewPCController(r.ctrl)
	if _, err := serialapi.NewClient(r.ctrl).Call(serialapi.FuncAddNodeToNetwork, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	sw := newFactorySwitch(r)
	if err := sw.Join(); err != nil {
		t.Fatal(err)
	}
	ids, err := pc.NodeIDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 4 {
		t.Fatalf("PC controller sees %v", ids)
	}

	// Stop request disarms a fresh arming.
	if _, err := serialapi.NewClient(r.ctrl).Call(serialapi.FuncAddNodeToNetwork, []byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if _, err := serialapi.NewClient(r.ctrl).Call(serialapi.FuncAddNodeToNetwork, []byte{0x05}); err != nil {
		t.Fatal(err)
	}
	late := newFactorySwitch(r)
	if err := late.Join(); err != nil {
		t.Fatal(err)
	}
	if late.Node().Home() == r.ctrl.Profile().Home {
		t.Fatal("device joined after stop")
	}
}

func TestInclusionIgnoresMalformedAssignment(t *testing.T) {
	r := newRig(t, "D1")
	sw := newFactorySwitch(r)
	sw.Node().SetLearnMode(true)
	// A spoofed broadcast assignment with an illegal node ID must not be
	// adopted (the device stays in learn mode).
	if err := r.attacker.Send(0xFF, device.AssignIDsPayload(0xFF, 0x12345678)); err == nil {
		// dst 0xFF is the broadcast; Send takes the dst as first arg —
		// reaching here means the frame went out; the device must have
		// ignored it.
		if !sw.Node().LearnMode() {
			t.Fatal("device adopted a malformed assignment")
		}
	}
}
