package protocol

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCS8KnownVector(t *testing.T) {
	// XOR chain seeded with 0xFF: 0xFF ^ 0x01 ^ 0x02 ^ 0x03 = 0xFF.
	if got := CS8([]byte{0x01, 0x02, 0x03}); got != 0xFF {
		t.Fatalf("CS8 = %#02x, want 0xFF", got)
	}
	if got := CS8(nil); got != 0xFF {
		t.Fatalf("CS8(nil) = %#02x, want seed 0xFF", got)
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// G.9959 test vector: CRC-16/AUG-CCITT over "123456789" is 0xE5CC.
	if got := CRC16([]byte("123456789")); got != 0xE5CC {
		t.Fatalf("CRC16 = %#04x, want 0xE5CC", got)
	}
}

func TestCRC16DetectsSingleBitFlip(t *testing.T) {
	data := []byte{0xCB, 0x95, 0xA3, 0x4A, 0x0F, 0x41, 0x00, 0x0D, 0x01, 0x20, 0x01, 0xFF}
	orig := CRC16(data)
	for i := range data {
		for bit := 0; bit < 8; bit++ {
			data[i] ^= 1 << bit
			if CRC16(data) == orig {
				t.Fatalf("bit flip at byte %d bit %d not detected", i, bit)
			}
			data[i] ^= 1 << bit
		}
	}
}

func TestFrameEncodeLayout(t *testing.T) {
	f := NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01, 0xFF})
	raw := f.MustEncode()
	want := []byte{
		0xCB, 0x95, 0xA3, 0x4A, // home ID
		0x0F,       // src
		0x41, 0x00, // frame control: singlecast + ack-req, seq 0
		0x0D,             // LEN = 13
		0x01,             // dst
		0x20, 0x01, 0xFF, // BASIC SET 0xFF
	}
	if !bytes.Equal(raw[:len(raw)-1], want) {
		t.Fatalf("encoded frame = % X, want % X + CS", raw, want)
	}
	if raw[len(raw)-1] != CS8(raw[:len(raw)-1]) {
		t.Fatal("trailing byte is not the CS-8 checksum")
	}
}

func TestFrameRoundTripCS8(t *testing.T) {
	f := NewDataFrame(0xE7DE3F3D, 0x01, 0x02, []byte{0x62, 0x01, 0xFF, 0x00})
	got, err := Decode(f.MustEncode(), ChecksumCS8)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Home != f.Home || got.Src != f.Src || got.Dst != f.Dst {
		t.Fatalf("round trip header mismatch: got %+v want %+v", got, f)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("round trip payload = % X, want % X", got.Payload, f.Payload)
	}
}

func TestFrameRoundTripCRC16(t *testing.T) {
	f := NewDataFrame(0xCD007171, 0x01, 0x05, []byte{0x86, 0x13, 0x01})
	f.Checksum = ChecksumCRC16
	got, err := Decode(f.MustEncode(), ChecksumCRC16)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Fatalf("payload = % X, want % X", got.Payload, f.Payload)
	}
	if got.Checksum != ChecksumCRC16 {
		t.Fatalf("Checksum = %v, want CRC-16", got.Checksum)
	}
}

func TestDecodeRejectsShortFrame(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}, ChecksumCS8); !errors.Is(err, ErrFrameTooShort) {
		t.Fatalf("err = %v, want ErrFrameTooShort", err)
	}
}

func TestDecodeRejectsOverlongFrame(t *testing.T) {
	raw := make([]byte, MaxFrameSize+1)
	if _, err := Decode(raw, ChecksumCS8); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", err)
	}
}

func TestDecodeRejectsLengthMismatch(t *testing.T) {
	raw := NewDataFrame(1, 1, 2, []byte{0x20, 0x02}).MustEncode()
	raw[7]++ // corrupt LEN
	if _, err := Decode(raw, ChecksumCS8); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}

func TestDecodeRejectsBadChecksum(t *testing.T) {
	raw := NewDataFrame(1, 1, 2, []byte{0x20, 0x02}).MustEncode()
	raw[len(raw)-1] ^= 0xA5
	if _, err := Decode(raw, ChecksumCS8); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	f := NewDataFrame(1, 1, 2, make([]byte, MaxPayloadCS8+1))
	if _, err := f.Encode(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestEncodeMaxPayloadFits(t *testing.T) {
	f := NewDataFrame(1, 1, 2, make([]byte, MaxPayloadCS8))
	raw, err := f.Encode()
	if err != nil {
		t.Fatalf("Encode at max payload: %v", err)
	}
	if len(raw) != MaxFrameSize {
		t.Fatalf("frame = %d bytes, want %d", len(raw), MaxFrameSize)
	}
	f.Checksum = ChecksumCRC16
	if _, err := f.Encode(); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatal("CRC-16 frame should not fit one extra byte over the CS-8 max")
	}
}

func TestAckFrameRoundTrip(t *testing.T) {
	ack := NewAckFrame(0xF4C3754D, 0x01, 0x0F, 0x0B)
	got, err := Decode(ack.MustEncode(), ChecksumCS8)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !got.IsAck() {
		t.Fatalf("decoded frame not recognised as ack: %+v", got.Control)
	}
	if got.Control.Sequence != 0x0B {
		t.Fatalf("sequence = %#x, want 0x0B", got.Control.Sequence)
	}
}

func TestFrameControlFlagsRoundTrip(t *testing.T) {
	cases := []FrameControl{
		{Header: HeaderSinglecast, AckRequested: true, Sequence: 5},
		{Header: HeaderMulticast, LowPower: true, Sequence: 15},
		{Header: HeaderAck, SpeedModified: true},
		{Header: HeaderRouted, Beam: true, Sequence: 9},
	}
	for _, fc := range cases {
		p1, p2 := fc.encode()
		got := decodeFrameControl(p1, p2)
		if got != fc {
			t.Errorf("frame control %+v round-tripped to %+v", fc, got)
		}
	}
}

func TestAccessorsOnShortPayloads(t *testing.T) {
	f := &Frame{}
	if f.CommandClass() != 0 || f.Command() != 0 || f.Params() != nil {
		t.Fatal("accessors on empty payload should return zero values")
	}
	f.Payload = []byte{0x25}
	if f.CommandClass() != 0x25 || f.Command() != 0 {
		t.Fatal("single-byte payload accessors wrong")
	}
	f.Payload = []byte{0x25, 0x02, 0xAA}
	if f.CommandClass() != 0x25 || f.Command() != 0x02 || !bytes.Equal(f.Params(), []byte{0xAA}) {
		t.Fatal("three-byte payload accessors wrong")
	}
}

func TestSniffNetworkInfo(t *testing.T) {
	raw := NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x20, 0x01}).MustEncode()
	home, src, dst, ok := SniffNetworkInfo(raw)
	if !ok || home != 0xCB95A34A || src != 0x0F || dst != 0x01 {
		t.Fatalf("SniffNetworkInfo = %v %v %v %v", home, src, dst, ok)
	}
	// Corrupted checksum must not matter: the passive scanner reads headers
	// from any capture, including damaged ones.
	raw[len(raw)-1] ^= 0xFF
	if _, _, _, ok := SniffNetworkInfo(raw); !ok {
		t.Fatal("SniffNetworkInfo should ignore checksum damage")
	}
	if _, _, _, ok := SniffNetworkInfo(raw[:HeaderSize-1]); ok {
		t.Fatal("SniffNetworkInfo should reject truncated headers")
	}
}

func TestHomeIDString(t *testing.T) {
	if got := HomeID(0xCB95A34A).String(); got != "CB95A34A" {
		t.Fatalf("HomeID.String() = %q", got)
	}
	if got := HomeID(0x0000000F).String(); got != "0000000F" {
		t.Fatalf("HomeID.String() = %q, want zero-padded", got)
	}
}

func TestNodeIDPredicates(t *testing.T) {
	if NodeUnassigned.IsUnicast() || NodeBroadcast.IsUnicast() || NodeID(233).IsUnicast() {
		t.Fatal("reserved IDs must not be unicast")
	}
	if !NodeID(1).IsUnicast() || !MaxUnicastNode.IsUnicast() {
		t.Fatal("valid IDs must be unicast")
	}
}

// randomFrame builds an arbitrary-but-encodable frame from fuzz inputs.
func randomFrame(r *rand.Rand) *Frame {
	payload := make([]byte, r.Intn(MaxPayloadCRC16+1))
	r.Read(payload)
	mode := ChecksumCS8
	if r.Intn(2) == 1 {
		mode = ChecksumCRC16
	}
	return &Frame{
		Home:     HomeID(r.Uint32()),
		Src:      NodeID(r.Intn(256)),
		Control:  NewFrameControl(byte(r.Intn(16))),
		Dst:      NodeID(r.Intn(256)),
		Payload:  payload,
		Checksum: mode,
	}
}

// Property: every encodable frame decodes back to itself.
func TestFrameRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := randomFrame(r)
		raw, err := f.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(raw, f.Checksum)
		if err != nil {
			return false
		}
		return got.Home == f.Home && got.Src == f.Src && got.Dst == f.Dst &&
			bytes.Equal(got.Payload, f.Payload) &&
			reflect.DeepEqual(got.Control, f.Control)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption of an encoded frame is rejected by
// Decode (LEN, checksum or both catch it) — except corruption that the
// checksum itself cannot see, which for CS-8 and CRC-16 over <64 bytes
// cannot happen with a single flipped byte.
func TestFrameCorruptionDetectedProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	prop := func(seed int64, pos, flip byte) bool {
		if flip == 0 {
			flip = 0x01
		}
		r := rand.New(rand.NewSource(seed))
		f := randomFrame(r)
		raw := f.MustEncode()
		idx := int(pos) % len(raw)
		raw[idx] ^= flip
		_, err := Decode(raw, f.Checksum)
		return err != nil
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrameEncode(b *testing.B) {
	f := NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x62, 0x01, 0xFF, 0x00, 0x01})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecode(b *testing.B) {
	raw := NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x62, 0x01, 0xFF, 0x00, 0x01}).MustEncode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(raw, ChecksumCS8); err != nil {
			b.Fatal(err)
		}
	}
}
