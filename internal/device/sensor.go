package device

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// MultilevelSensor emulates a battery-powered temperature sensor: a
// sleeping (wake-up) node that periodically wakes, reports a reading and
// its battery level to the hub, and goes back to sleep. It rounds out the
// testbed with the third device archetype of real smart homes — the
// paper's testbed focuses on the lock and switch, but sleepers are what
// the wake-up machinery (and bug 12's stored intervals) exist for.
type MultilevelSensor struct {
	node     *Node
	identity Identity
	hub      protocol.NodeID

	temperatureDeciC int
	battery          byte
	awake            bool
	reports          int
}

// NewMultilevelSensor attaches a sensor to the testbed.
func NewMultilevelSensor(cfg Config, hub protocol.NodeID) *MultilevelSensor {
	s := &MultilevelSensor{
		hub:              hub,
		temperatureDeciC: 215, // 21.5 °C
		battery:          0x64,
		identity: Identity{
			Basic:      BasicTypeSlave,
			Generic:    0x21, // sensor multilevel generic type
			Specific:   0x01,
			Capability: 0, // non-listening: a sleeper
			Security:   0,
			Classes: []cmdclass.ClassID{
				cmdclass.ClassBasic,
				cmdclass.ClassSensorMultilevel,
				cmdclass.ClassBattery,
				cmdclass.ClassWakeUp,
				cmdclass.ClassVersion,
			},
		},
	}
	s.node = NewNode(cfg)
	s.node.Handler = s.handle
	return s
}

// Node exposes the underlying node.
func (s *MultilevelSensor) Node() *Node { return s.node }

// Identity reports the advertised NIF identity.
func (s *MultilevelSensor) Identity() Identity { return s.identity }

// Join puts the sensor in learn mode and announces it.
func (s *MultilevelSensor) Join() error { return JoinNetwork(s.node, s.identity) }

// SetTemperature updates the measured value (deci-degrees Celsius).
func (s *MultilevelSensor) SetTemperature(deciC int) { s.temperatureDeciC = deciC }

// Reports counts the readings sent so far.
func (s *MultilevelSensor) Reports() int { return s.reports }

// Awake reports whether the sensor radio is currently listening.
func (s *MultilevelSensor) Awake() bool { return s.awake }

// WakeCycle performs one wake-up period: announce the wake-up, send a
// sensor report and battery level, then return to sleep — the traffic
// pattern of every battery sensor on a real network.
func (s *MultilevelSensor) WakeCycle() error {
	s.awake = true
	defer func() { s.awake = false }()

	wakeup := []byte{byte(cmdclass.ClassWakeUp), byte(cmdclass.CmdWakeUpNotification)}
	if err := s.node.Send(s.hub, wakeup); err != nil {
		return err
	}
	if err := s.reportReading(); err != nil {
		return err
	}
	battery := []byte{byte(cmdclass.ClassBattery), 0x03, s.battery}
	return s.node.Send(s.hub, battery)
}

// reportReading sends the SENSOR_MULTILEVEL report (temperature, scale
// Celsius, two-byte value with one decimal).
func (s *MultilevelSensor) reportReading() error {
	v := s.temperatureDeciC
	payload := []byte{
		byte(cmdclass.ClassSensorMultilevel), 0x05,
		0x01,                  // sensor type: air temperature
		0x22,                  // precision 1, scale 0 (°C), size 2
		byte(v >> 8), byte(v), // value
	}
	s.reports++
	return s.node.Send(s.hub, payload)
}

// handle answers queries while the sensor is awake; a sleeping sensor's
// radio is off and the frame is lost (the hub is expected to queue
// commands until the next wake-up notification).
func (s *MultilevelSensor) handle(f *protocol.Frame) {
	if HandleInclusion(s.node, f) {
		return
	}
	if !s.awake {
		return
	}
	payload := f.Payload
	if target, ok := IsNIFRequest(payload); ok && (target == 0 || target == s.node.ID()) {
		_ = s.node.Send(f.Src, s.identity.NIFPayload())
		return
	}
	if len(payload) < 2 {
		return
	}
	switch cmdclass.ClassID(payload[0]) {
	case cmdclass.ClassSensorMultilevel:
		if payload[1] == 0x04 { // GET
			_ = s.reportReading()
		}
	case cmdclass.ClassBattery:
		if payload[1] == 0x02 {
			_ = s.node.Send(f.Src, []byte{byte(cmdclass.ClassBattery), 0x03, s.battery})
		}
	}
}
