// Quickstart: assemble the simulated smart home around one of the paper's
// controllers, run the full ZCover pipeline for a short budget, and print
// what it finds. This is the library's one-screen introduction.
package main

import (
	"fmt"
	"log"
	"time"

	"zcover"
)

func main() {
	// The testbed: a Samsung SmartThings hub (D6 of Table II) with an
	// S2-paired door lock and a legacy binary switch.
	tb, err := zcover.NewTestbed("D6", 1)
	if err != nil {
		log.Fatal(err)
	}

	// One call runs all three ZCover phases: passive/active
	// fingerprinting, unknown-command-class discovery, and
	// position-sensitive fuzzing. Thirty minutes of simulated fuzzing
	// completes in well under a second of real time.
	campaign, err := zcover.Run(tb, zcover.StrategyFull, 30*time.Minute, 1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("target network  %s (controller node %s)\n",
		campaign.Fingerprint.Home, campaign.Fingerprint.Controller)
	fmt.Printf("listed classes  %d  |  unknown classes discovered  %d\n",
		len(campaign.Fingerprint.Listed), campaign.Discovery.UnknownCount())
	fmt.Printf("test packets    %d\n\n", campaign.Fuzz.PacketsSent)

	fmt.Printf("unique vulnerabilities found: %d\n", len(campaign.Fuzz.Findings))
	for _, f := range campaign.Fuzz.Findings {
		fmt.Printf("  %-8s  %-32s  payload % X\n",
			f.Elapsed.Round(time.Second), f.Signature, f.TriggerPayload)
	}

	// The oracle's view: what the homeowner's equipment experienced.
	fmt.Printf("\ncontroller memory after the campaign (%d entries): %v\n",
		tb.Controller.Table().Len(), tb.Controller.Table().IDs())
	fmt.Printf("smartphone app healthy: %v\n", tb.Controller.Host().Healthy())
}
