package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"

	"zcover/internal/telemetry"
)

// Process-wide frame-codec metrics. Decode runs on every captured frame
// (receivers, sniffers, the dongle's classifier), so failures here are the
// MAC-layer health signal: checksum failures separate from structural ones.
var (
	mDecodeOK       = telemetry.Default().Counter("protocol_frames_decoded_total")
	mDecodeFail     = telemetry.Default().Counter("protocol_decode_fail_total")
	mChecksumFail   = telemetry.Default().Counter("protocol_checksum_fail_total")
	mEncodeTooLarge = telemetry.Default().Counter("protocol_encode_too_large_total")
)

// Frame is a parsed Z-Wave MAC frame. Payload holds the application layer
// (CMDCL, CMD, PARAMs); for S0/S2 traffic it holds the security
// encapsulation produced by internal/security.
type Frame struct {
	// Home is the 4-byte network home ID.
	Home HomeID
	// Src is the sending node.
	Src NodeID
	// Control carries the two frame-control bytes (P1, P2).
	Control FrameControl
	// Dst is the receiving node (or NodeBroadcast).
	Dst NodeID
	// Payload is the application-layer payload. Encode copies it; Decode
	// aliases the input slice, so callers that retain frames across buffer
	// reuse must copy.
	Payload []byte
	// Checksum selects the integrity trailer. Zero defaults to CS-8.
	Checksum ChecksumMode
}

// NewDataFrame builds an ordinary singlecast data frame with the ack bit
// set — the shape of every normal application exchange in a Z-Wave network.
func NewDataFrame(home HomeID, src, dst NodeID, payload []byte) *Frame {
	return &Frame{
		Home:     home,
		Src:      src,
		Control:  NewFrameControl(0),
		Dst:      dst,
		Payload:  payload,
		Checksum: ChecksumCS8,
	}
}

// NewAckFrame builds the transfer acknowledgement for a received frame.
func NewAckFrame(home HomeID, src, dst NodeID, seq byte) *Frame {
	fc := FrameControl{Header: HeaderAck, Sequence: seq & p2SeqMask}
	return &Frame{Home: home, Src: src, Control: fc, Dst: dst, Checksum: ChecksumCS8}
}

// checksumOrDefault resolves the zero value to CS-8.
func (f *Frame) checksumOrDefault() ChecksumMode {
	if f.Checksum == ChecksumCRC16 {
		return ChecksumCRC16
	}
	return ChecksumCS8
}

// CommandClass returns the first application payload byte, the command
// class, or 0 if the payload is empty.
func (f *Frame) CommandClass() byte {
	if len(f.Payload) == 0 {
		return 0
	}
	return f.Payload[0]
}

// Command returns the second application payload byte, the command, or 0
// if the payload has fewer than two bytes.
func (f *Frame) Command() byte {
	if len(f.Payload) < 2 {
		return 0
	}
	return f.Payload[1]
}

// Params returns the application parameters (payload bytes after CMDCL and
// CMD). The returned slice aliases the payload.
func (f *Frame) Params() []byte {
	if len(f.Payload) <= 2 {
		return nil
	}
	return f.Payload[2:]
}

// IsAck reports whether the frame is a MAC transfer acknowledgement.
func (f *Frame) IsAck() bool { return f.Control.Header == HeaderAck }

// Encode serialises the frame into a freshly allocated buffer. It fails if
// the payload cannot fit within the 64-byte MAC limit under the selected
// checksum mode. Hot paths that reuse buffers should call AppendEncode.
func (f *Frame) Encode() ([]byte, error) {
	mode := f.checksumOrDefault()
	total := HeaderSize + len(f.Payload) + mode.trailerSize()
	if total > MaxFrameSize {
		mEncodeTooLarge.Inc()
		return nil, fmt.Errorf("%w: %d-byte payload needs a %d-byte frame", ErrPayloadTooLarge, len(f.Payload), total)
	}
	return f.AppendEncode(make([]byte, 0, total))
}

// AppendEncode serialises the frame, appending the encoded bytes to dst and
// returning the extended slice. With a dst of sufficient capacity (a pooled
// GetBuf slice, or any buffer of MaxFrameSize bytes) the steady encode path
// performs no allocation. On error dst is returned unchanged.
func (f *Frame) AppendEncode(dst []byte) ([]byte, error) {
	mode := f.checksumOrDefault()
	total := HeaderSize + len(f.Payload) + mode.trailerSize()
	if total > MaxFrameSize {
		mEncodeTooLarge.Inc()
		return dst, fmt.Errorf("%w: %d-byte payload needs a %d-byte frame", ErrPayloadTooLarge, len(f.Payload), total)
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(f.Home))
	dst = append(dst, byte(f.Src))
	p1, p2 := f.Control.encode()
	dst = append(dst, p1, p2, byte(total), byte(f.Dst))
	dst = append(dst, f.Payload...)
	return appendChecksumFrom(dst, start, mode), nil
}

// MustEncode is Encode for frames known valid by construction; it panics on
// error and exists for tests and fixed fixtures.
func (f *Frame) MustEncode() []byte {
	raw, err := f.Encode()
	if err != nil {
		panic(err)
	}
	return raw
}

// Decode parses raw under the given checksum mode. The returned frame's
// Payload aliases raw. Errors wrap the package sentinel errors with
// positional detail; hot paths that only branch on failure should use
// DecodeInto, which returns the bare sentinels without formatting.
func Decode(raw []byte, mode ChecksumMode) (*Frame, error) {
	f := &Frame{}
	if err := DecodeInto(f, raw, mode); err != nil {
		if mode != ChecksumCRC16 {
			mode = ChecksumCS8
		}
		switch {
		case errors.Is(err, ErrFrameTooShort):
			return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrFrameTooShort, len(raw), HeaderSize+mode.trailerSize())
		case errors.Is(err, ErrFrameTooLong):
			return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLong, len(raw))
		case errors.Is(err, ErrLengthMismatch):
			return nil, fmt.Errorf("%w: LEN=%d, frame is %d bytes", ErrLengthMismatch, raw[7], len(raw))
		default:
			return nil, fmt.Errorf("%w (%s)", ErrBadChecksum, mode)
		}
	}
	return f, nil
}

// DecodeInto parses raw under the given checksum mode into a caller-supplied
// frame, overwriting every field. The frame's Payload aliases raw, so the
// caller owns the aliasing hazard: a frame decoded into a reused or pooled
// buffer is only valid until that buffer's next use. Unlike Decode, failures
// return the package sentinel errors themselves with no formatting, which
// keeps the reject path of receivers and fuzzers allocation-free.
func DecodeInto(f *Frame, raw []byte, mode ChecksumMode) error {
	if mode != ChecksumCRC16 {
		mode = ChecksumCS8
	}
	if len(raw) < HeaderSize+mode.trailerSize() {
		mDecodeFail.Inc()
		return ErrFrameTooShort
	}
	if len(raw) > MaxFrameSize {
		mDecodeFail.Inc()
		return ErrFrameTooLong
	}
	if int(raw[7]) != len(raw) {
		mDecodeFail.Inc()
		return ErrLengthMismatch
	}
	if !verifyChecksum(raw, mode) {
		mDecodeFail.Inc()
		mChecksumFail.Inc()
		return ErrBadChecksum
	}
	mDecodeOK.Inc()
	*f = Frame{
		Home:     HomeID(binary.BigEndian.Uint32(raw[0:4])),
		Src:      NodeID(raw[4]),
		Control:  decodeFrameControl(raw[5], raw[6]),
		Dst:      NodeID(raw[8]),
		Payload:  raw[HeaderSize : len(raw)-mode.trailerSize()],
		Checksum: mode,
	}
	return nil
}

// SniffNetworkInfo extracts the home ID and source/destination node IDs
// from a raw frame without validating its checksum. This is exactly what
// the paper's passive scanner does (§III-B1): even S2 traffic exposes these
// MAC header fields in clear text.
func SniffNetworkInfo(raw []byte) (HomeID, NodeID, NodeID, bool) {
	if len(raw) < HeaderSize {
		return 0, 0, 0, false
	}
	return HomeID(binary.BigEndian.Uint32(raw[0:4])), NodeID(raw[4]), NodeID(raw[8]), true
}

// String renders a compact human-readable summary used by log files and the
// zsniff tool.
func (f *Frame) String() string {
	return fmt.Sprintf("home=%s src=%s dst=%s type=%s len=%d payload=% X",
		f.Home, f.Src, f.Dst, f.Control.Header, HeaderSize+len(f.Payload)+f.checksumOrDefault().trailerSize(), f.Payload)
}
