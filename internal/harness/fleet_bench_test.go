package harness

import (
	"fmt"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/zcover/fuzz"
)

// BenchmarkFleetParallelism measures a 7-device Table V-style sweep
// (VFuzz + ZCover campaign per controller, 14 jobs) at increasing worker
// counts. Campaigns are CPU-bound simulations sharing nothing, so on an
// idle multi-core host the 8-worker variant should approach the core
// count in speedup over the sequential workers=1 path (≥3× on 8 cores is
// the acceptance bar; a single-core host shows ~1×).
func BenchmarkFleetParallelism(b *testing.B) {
	const budget = time.Hour
	devices := []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7"}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "bench/" + idx + "/vfuzz", Device: idx,
				Baseline: true, Seed: seed, Budget: budget},
			fleet.Job{Name: "bench/" + idx + "/zcover", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: budget})
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var simSeconds float64
			for i := 0; i < b.N; i++ {
				results := fleet.Run(jobs, RunFleetJob, fleet.Config{Workers: workers})
				if err := fleet.FirstError(results); err != nil {
					b.Fatal(err)
				}
				simSeconds = 0
				for _, r := range results {
					if f := r.Value.Fuzz(); f != nil {
						simSeconds += f.Elapsed.Seconds()
					}
				}
			}
			// Simulated seconds fuzzed per wall second — the fleet's
			// throughput figure (scripts/bench.sh exports it as sim_rate).
			b.ReportMetric(simSeconds*float64(b.N)/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}
