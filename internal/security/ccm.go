package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// CCM parameters fixed by the Z-Wave S2 specification: 13-byte nonce and
// 8-byte authentication tag, leaving a 2-byte CCM length field.
const (
	// CCMNonceSize is the nonce length in bytes.
	CCMNonceSize = 13
	// CCMTagSize is the authentication tag length in bytes.
	CCMTagSize = 8
)

// ErrCCMAuth is returned when CCM tag verification fails.
var ErrCCMAuth = errors.New("security: CCM authentication failed")

// ccm implements AES-CCM (RFC 3610) as a cipher.AEAD with the S2 parameter
// set (L=2, M=8).
type ccm struct {
	block cipher.Block
}

var _ cipher.AEAD = (*ccm)(nil)

// NewCCM returns an AES-CCM AEAD under a 16-byte key with the S2 parameter
// set (13-byte nonce, 8-byte tag).
func NewCCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("security: CCM key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return &ccm{block: block}, nil
}

// NonceSize implements cipher.AEAD.
func (*ccm) NonceSize() int { return CCMNonceSize }

// Overhead implements cipher.AEAD.
func (*ccm) Overhead() int { return CCMTagSize }

// maxPayload is the largest plaintext CCM with L=2 can frame.
const maxPayload = 1<<16 - 1

// Seal implements cipher.AEAD.
func (c *ccm) Seal(dst, nonce, plaintext, aad []byte) []byte {
	if len(nonce) != CCMNonceSize {
		panic("security: bad CCM nonce size")
	}
	if len(plaintext) > maxPayload {
		panic("security: CCM plaintext too large")
	}
	tag := c.authTag(nonce, plaintext, aad)

	out := make([]byte, len(plaintext)+CCMTagSize)
	c.ctrCrypt(nonce, out[:len(plaintext)], plaintext, 1)

	// Encrypt the tag with counter block 0.
	var s0 [BlockSize]byte
	c.ctrBlock(nonce, 0, &s0)
	for i := 0; i < CCMTagSize; i++ {
		out[len(plaintext)+i] = tag[i] ^ s0[i]
	}
	return append(dst, out...)
}

// Open implements cipher.AEAD.
func (c *ccm) Open(dst, nonce, ciphertext, aad []byte) ([]byte, error) {
	if len(nonce) != CCMNonceSize {
		return nil, fmt.Errorf("security: bad CCM nonce size %d", len(nonce))
	}
	if len(ciphertext) < CCMTagSize {
		return nil, fmt.Errorf("security: CCM ciphertext shorter than tag")
	}
	body := ciphertext[:len(ciphertext)-CCMTagSize]
	gotTag := ciphertext[len(ciphertext)-CCMTagSize:]

	plaintext := make([]byte, len(body))
	c.ctrCrypt(nonce, plaintext, body, 1)

	wantTag := c.authTag(nonce, plaintext, aad)
	var s0 [BlockSize]byte
	c.ctrBlock(nonce, 0, &s0)
	expect := make([]byte, CCMTagSize)
	for i := 0; i < CCMTagSize; i++ {
		expect[i] = wantTag[i] ^ s0[i]
	}
	if subtle.ConstantTimeCompare(gotTag, expect) != 1 {
		return nil, ErrCCMAuth
	}
	return append(dst, plaintext...), nil
}

// authTag computes the CBC-MAC portion of CCM (the T value, untruncated
// beyond tag size).
func (c *ccm) authTag(nonce, plaintext, aad []byte) [CCMTagSize]byte {
	// B0: flags | nonce | message length.
	var b0 [BlockSize]byte
	flags := byte(((CCMTagSize - 2) / 2) << 3) // M' field
	flags |= 1                                 // L' = L-1 = 1
	if len(aad) > 0 {
		flags |= 1 << 6
	}
	b0[0] = flags
	copy(b0[1:1+CCMNonceSize], nonce)
	binary.BigEndian.PutUint16(b0[BlockSize-2:], uint16(len(plaintext)))

	var x [BlockSize]byte
	c.block.Encrypt(x[:], b0[:])

	// Associated data blocks, prefixed with its 2-byte length encoding
	// (S2 AAD is always well under the 0xFEFF threshold).
	if len(aad) > 0 {
		var hdr [2]byte
		binary.BigEndian.PutUint16(hdr[:], uint16(len(aad)))
		buf := make([]byte, 0, 2+len(aad))
		buf = append(buf, hdr[:]...)
		buf = append(buf, aad...)
		for len(buf)%BlockSize != 0 {
			buf = append(buf, 0)
		}
		for i := 0; i < len(buf); i += BlockSize {
			xorBytes(&x, buf[i:i+BlockSize])
			c.block.Encrypt(x[:], x[:])
		}
	}

	// Payload blocks.
	for i := 0; i < len(plaintext); i += BlockSize {
		end := i + BlockSize
		if end > len(plaintext) {
			end = len(plaintext)
		}
		xorBytes(&x, plaintext[i:end])
		c.block.Encrypt(x[:], x[:])
	}

	var tag [CCMTagSize]byte
	copy(tag[:], x[:CCMTagSize])
	return tag
}

// ctrBlock writes keystream block i for the nonce into out.
func (c *ccm) ctrBlock(nonce []byte, counter uint16, out *[BlockSize]byte) {
	var a [BlockSize]byte
	a[0] = 1 // L' = 1
	copy(a[1:1+CCMNonceSize], nonce)
	binary.BigEndian.PutUint16(a[BlockSize-2:], counter)
	c.block.Encrypt(out[:], a[:])
}

// ctrCrypt XORs src with the CTR keystream starting at the given counter.
func (c *ccm) ctrCrypt(nonce []byte, dst, src []byte, startCounter uint16) {
	var ks [BlockSize]byte
	counter := startCounter
	for i := 0; i < len(src); i += BlockSize {
		c.ctrBlock(nonce, counter, &ks)
		counter++
		end := i + BlockSize
		if end > len(src) {
			end = len(src)
		}
		for j := i; j < end; j++ {
			dst[j] = src[j] ^ ks[j-i]
		}
	}
}
