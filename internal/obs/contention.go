package obs

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"zcover/internal/telemetry"
)

// ProfileConfig tunes the runtime's contention collectors. The zero value
// uses sensible campaign defaults.
type ProfileConfig struct {
	// MutexFraction is the sampling rate for mutex contention events
	// (runtime.SetMutexProfileFraction): 1 in MutexFraction contended
	// acquisitions is recorded. Zero means 5.
	MutexFraction int
	// BlockRate is the goroutine blocking sample threshold in nanoseconds
	// (runtime.SetBlockProfileRate): a blocking event of d ns is recorded
	// with probability min(1, d/BlockRate). Zero means 10µs.
	BlockRate int
}

func (c ProfileConfig) withDefaults() ProfileConfig {
	if c.MutexFraction <= 0 {
		c.MutexFraction = 5
	}
	if c.BlockRate <= 0 {
		c.BlockRate = int(10 * time.Microsecond)
	}
	return c
}

// StartProfiling enables runtime mutex and block profiling and returns a
// restore func that puts both collectors back to their prior state.
// Profiling taxes contended paths only (uncontended locks stay fast), and
// never feeds back into campaign results.
func StartProfiling(cfg ProfileConfig) (restore func()) {
	cfg = cfg.withDefaults()
	prevMutex := runtime.SetMutexProfileFraction(cfg.MutexFraction)
	runtime.SetBlockProfileRate(cfg.BlockRate)
	return func() {
		runtime.SetMutexProfileFraction(prevMutex)
		runtime.SetBlockProfileRate(0)
	}
}

// SnapshotProfiles writes pprof-format snapshots of the runtime profiles
// into dir (created if missing): mutex.pb.gz, block.pb.gz, goroutine.pb.gz,
// heap.pb.gz, allocs.pb.gz, threadcreate.pb.gz. The CLIs call it once at
// campaign end when -profile-dir is set; `go tool pprof` reads the files.
func SnapshotProfiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("obs: profile dir: %w", err)
	}
	for _, name := range []string{"mutex", "block", "goroutine", "heap", "allocs", "threadcreate"} {
		p := pprof.Lookup(name)
		if p == nil {
			continue
		}
		path := filepath.Join(dir, name+".pb.gz")
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
		err = p.WriteTo(f, 0)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("obs: writing %s profile: %w", name, err)
		}
	}
	return nil
}

// LockSite is one contended synchronization site aggregated from the
// runtime mutex profile.
type LockSite struct {
	// Site is the function that held the contended lock (the frame that
	// called Unlock), e.g. "zcover/internal/telemetry.(*Registry).Counter".
	Site string `json:"site"`
	// Count is the number of sampled contention events.
	Count int64 `json:"count"`
	// DelayCycles is the cumulative sampled wait, in CPU cycles (the
	// runtime's native unit; comparable within one report, not across
	// machines).
	DelayCycles int64 `json:"delay_cycles"`
}

// TopContendedLocks ranks lock sites by cumulative sampled delay from the
// runtime mutex profile, best-effort symbolized, most contended first.
// Returns at most n sites (n <= 0 means all). Mutex profiling must have
// been enabled (StartProfiling) for the profile to contain anything.
func TopContendedLocks(n int) []LockSite {
	records := make([]runtime.BlockProfileRecord, 64)
	for {
		cnt, ok := runtime.MutexProfile(records)
		if ok {
			records = records[:cnt]
			break
		}
		records = make([]runtime.BlockProfileRecord, len(records)*2)
	}
	agg := map[string]*LockSite{}
	for _, rec := range records {
		site := symbolize(rec.Stack())
		ls, ok := agg[site]
		if !ok {
			ls = &LockSite{Site: site}
			agg[site] = ls
		}
		ls.Count += rec.Count
		ls.DelayCycles += rec.Cycles
	}
	out := make([]LockSite, 0, len(agg))
	for _, ls := range agg {
		out = append(out, *ls)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DelayCycles != out[j].DelayCycles {
			return out[i].DelayCycles > out[j].DelayCycles
		}
		return out[i].Site < out[j].Site
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// symbolize names the most meaningful frame of a contention stack: the
// first non-runtime, non-sync frame (the code that owned the lock), or
// the innermost frame when everything is runtime-internal.
func symbolize(stack []uintptr) string {
	if len(stack) == 0 {
		return "unknown"
	}
	frames := runtime.CallersFrames(stack)
	first := ""
	for {
		fr, more := frames.Next()
		name := fr.Function
		if name == "" {
			name = fmt.Sprintf("pc=%#x", fr.PC)
		}
		if first == "" {
			first = name
		}
		if !strings.HasPrefix(name, "runtime.") && !strings.HasPrefix(name, "sync.") &&
			!strings.HasPrefix(name, "internal/sync.") {
			return name
		}
		if !more {
			return first
		}
	}
}

// Runtime metric gauge names (SampleRuntimeMetrics). Everything is an
// integer gauge so it folds into the existing registry export.
const (
	MetricGomaxprocs       = "obs_gomaxprocs"
	MetricNumCPU           = "obs_num_cpu"
	MetricGoroutines       = "obs_goroutines"
	MetricGCCycles         = "obs_gc_cycles_total"
	MetricGCPauseTotalNs   = "obs_gc_pause_total_ns"
	MetricHeapAllocBytes   = "obs_heap_alloc_bytes"
	MetricSchedLatencyP50  = "obs_sched_latency_p50_ns"
	MetricSchedLatencyP99  = "obs_sched_latency_p99_ns"
	MetricTotalAllocBytes  = "obs_total_alloc_bytes"
	MetricMutexContentions = "obs_mutex_contentions_sampled"
)

// RuntimeSample is one reading of the scheduler/GC health metrics.
type RuntimeSample struct {
	Gomaxprocs       int     `json:"gomaxprocs"`
	NumCPU           int     `json:"num_cpu"`
	Goroutines       int     `json:"goroutines"`
	GCCycles         uint32  `json:"gc_cycles"`
	GCPauseTotal     int64   `json:"gc_pause_total_ns"`
	HeapAllocBytes   uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes  uint64  `json:"total_alloc_bytes"`
	SchedLatencyP50  int64   `json:"sched_latency_p50_ns"`
	SchedLatencyP99  int64   `json:"sched_latency_p99_ns"`
	MutexContentions int64   `json:"mutex_contentions_sampled"`
	GCPauseShare     float64 `json:"-"` // filled by callers that know wall time
}

// SampleRuntimeMetrics reads the scheduler and GC health counters
// (runtime/metrics plus ReadMemStats) and, when reg is non-nil, publishes
// them as obs_* gauges so /metrics and -metrics-out carry them.
func SampleRuntimeMetrics(reg *telemetry.Registry) RuntimeSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := RuntimeSample{
		Gomaxprocs:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		Goroutines:      runtime.NumGoroutine(),
		GCCycles:        ms.NumGC,
		GCPauseTotal:    int64(ms.PauseTotalNs),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
	}
	samples := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(samples)
	if h := samples[0].Value; h.Kind() == metrics.KindFloat64Histogram {
		s.SchedLatencyP50 = histQuantileNs(h.Float64Histogram(), 0.50)
		s.SchedLatencyP99 = histQuantileNs(h.Float64Histogram(), 0.99)
	}
	for _, ls := range TopContendedLocks(0) {
		s.MutexContentions += ls.Count
	}
	if reg != nil {
		reg.Gauge(MetricGomaxprocs).Set(int64(s.Gomaxprocs))
		reg.Gauge(MetricNumCPU).Set(int64(s.NumCPU))
		reg.Gauge(MetricGoroutines).Set(int64(s.Goroutines))
		reg.Gauge(MetricGCCycles).Set(int64(s.GCCycles))
		reg.Gauge(MetricGCPauseTotalNs).Set(s.GCPauseTotal)
		reg.Gauge(MetricHeapAllocBytes).Set(int64(s.HeapAllocBytes))
		reg.Gauge(MetricTotalAllocBytes).Set(int64(s.TotalAllocBytes))
		reg.Gauge(MetricSchedLatencyP50).Set(s.SchedLatencyP50)
		reg.Gauge(MetricSchedLatencyP99).Set(s.SchedLatencyP99)
		reg.Gauge(MetricMutexContentions).Set(s.MutexContentions)
	}
	return s
}

// histQuantileNs extracts an approximate quantile from a runtime/metrics
// float64 histogram of seconds, returned in nanoseconds (the bucket's
// upper bound; good enough for p50/p99 health readings).
func histQuantileNs(h *metrics.Float64Histogram, q float64) int64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * q)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Buckets[i+1] is the bucket's upper bound; the last bucket's
			// bound can be +Inf, so fall back to its lower bound.
			bound := h.Buckets[i+1]
			if math.IsInf(bound, 0) {
				bound = h.Buckets[i]
			}
			return int64(bound * 1e9)
		}
	}
	bound := h.Buckets[len(h.Buckets)-1]
	if math.IsInf(bound, 0) && len(h.Buckets) > 1 {
		bound = h.Buckets[len(h.Buckets)-2]
	}
	return int64(bound * 1e9)
}
