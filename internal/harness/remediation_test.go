package harness

import (
	"testing"
	"time"
)

func TestRemediationClosesSpecBugs(t *testing.T) {
	_, rows, err := Remediation([]string{"D1", "D6"}, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	byIdx := map[string]RemediationRow{}
	for _, r := range rows {
		byIdx[r.Index] = r
	}
	// The USB stick keeps exactly its two implementation bugs.
	d1 := byIdx["D1"]
	if d1.Before <= d1.After {
		t.Fatalf("patch did not reduce D1 findings: %d -> %d", d1.Before, d1.After)
	}
	if d1.After != 2 {
		t.Fatalf("D1 patched findings = %d (%v), want the two implementation bugs", d1.After, d1.Remaining)
	}
	for _, sig := range d1.Remaining {
		if sig != "host-crash/0x9F/0x01" && sig != "host-dos/0x73/0x04" {
			t.Errorf("spec-rooted bug survived the patch: %s", sig)
		}
	}
	// The hub has no implementation bugs: the patch silences it entirely.
	if d6 := byIdx["D6"]; d6.After != 0 {
		t.Fatalf("D6 patched findings = %d (%v), want 0", d6.After, d6.Remaining)
	}
}
