package main

import "testing"

func TestRunSniff(t *testing.T) {
	if err := run([]string{"-target", "D6", "-window", "1m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSniffBadTarget(t *testing.T) {
	if err := run([]string{"-target", "nope"}); err == nil {
		t.Fatal("accepted unknown target")
	}
}
