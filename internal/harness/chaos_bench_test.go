package harness

import (
	"fmt"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/zcover/fuzz"
)

// BenchmarkChaosCampaign measures the impaired sweep: one clean and one
// lossy-profile ZCover campaign per controller D1–D5 (10 jobs), at the
// sequential and parallel worker counts. Comparing its simsec/s against
// BenchmarkFleetParallelism quantifies the injector pipeline's overhead —
// the interceptor runs on every delivery, plus the retransmission and
// SPAN-recovery work the faults provoke.
func BenchmarkChaosCampaign(b *testing.B) {
	const budget = time.Hour
	devices := []string{"D1", "D2", "D3", "D4", "D5"}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "bench-chaos/" + idx + "/clean", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: budget},
			fleet.Job{Name: "bench-chaos/" + idx + "/lossy", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: budget,
				ChaosProfile: "lossy", ChaosSeed: 99})
	}
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var simSeconds float64
			for i := 0; i < b.N; i++ {
				results := fleet.Run(jobs, RunFleetJob, fleet.Config{Workers: workers})
				if err := fleet.FirstError(results); err != nil {
					b.Fatal(err)
				}
				simSeconds = 0
				for _, r := range results {
					if f := r.Value.Fuzz(); f != nil {
						simSeconds += f.Elapsed.Seconds()
					}
				}
			}
			b.ReportMetric(simSeconds*float64(b.N)/b.Elapsed().Seconds(), "simsec/s")
		})
	}
}
