package radio

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/vtime"
)

func newTestMedium() *Medium {
	return NewMedium(vtime.NewSimClock())
}

func TestTransmitDeliversToSameRegion(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	var got []byte
	b.SetReceiver(func(c Capture) { got = c.Raw })

	raw := protocol.NewDataFrame(0xCB95A34A, 1, 2, []byte{0x20, 0x01, 0xFF}).MustEncode()
	if err := a.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(raw) {
		t.Fatalf("received % X, want % X", got, raw)
	}
}

func TestTransmitNotDeliveredAcrossRegions(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionUS)
	delivered := false
	b.SetReceiver(func(Capture) { delivered = true })
	if err := a.Transmit([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("frame crossed RF regions")
	}
}

func TestTransmitNotEchoedToSender(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	echo := false
	a.SetReceiver(func(Capture) { echo = true })
	if err := a.Transmit(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if echo {
		t.Fatal("sender heard its own transmission")
	}
}

func TestTransmitRejectsOversizedFrame(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	if err := a.Transmit(make([]byte, protocol.MaxFrameSize+1)); !errors.Is(err, ErrFrameTooLong) {
		t.Fatalf("err = %v, want ErrFrameTooLong", err)
	}
}

func TestDetachedTransceiver(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	got := 0
	b.SetReceiver(func(Capture) { got++ })
	b.Detach()
	if err := a.Transmit(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("detached transceiver received a frame")
	}
	if err := b.Transmit(make([]byte, 10)); !errors.Is(err, ErrDetached) {
		t.Fatalf("detached transmit err = %v, want ErrDetached", err)
	}
}

func TestAirtimeModel(t *testing.T) {
	// 30-byte frame: (30+10)*8 bits at 100 kbit/s = 3.2 ms + 1 ms turnaround.
	want := TurnaroundTime + 3200*time.Microsecond
	if got := Airtime(30); got != want {
		t.Fatalf("Airtime(30) = %v, want %v", got, want)
	}
	if Airtime(64) <= Airtime(8) {
		t.Fatal("airtime must grow with frame size")
	}
}

func TestTransmitAdvancesCaptureTimestamp(t *testing.T) {
	clock := vtime.NewSimClock()
	m := NewMedium(clock)
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	var at time.Time
	b.SetReceiver(func(c Capture) { at = c.At })
	raw := make([]byte, 20)
	if err := a.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if want := vtime.SimEpoch.Add(Airtime(len(raw))); !at.Equal(want) {
		t.Fatalf("capture timestamp %v, want %v", at, want)
	}
}

func TestStatsCount(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	b.SetReceiver(func(Capture) {})
	for i := 0; i < 5; i++ {
		if err := a.Transmit(make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if tx, _ := a.Stats(); tx != 5 {
		t.Fatalf("a tx = %d, want 5", tx)
	}
	if _, rx := b.Stats(); rx != 5 {
		t.Fatalf("b rx = %d, want 5", rx)
	}
	if m.TransmitCount() != 5 {
		t.Fatalf("medium count = %d", m.TransmitCount())
	}
}

// TestReceiverOwnershipContract pins the zero-copy delivery contract:
// Capture.Raw is valid (and byte-correct) during the callback, aliases the
// transmitter's buffer on the clean path, and therefore must be copied by
// receivers that retain it — exactly what Sniffer and the dongle do.
func TestReceiverOwnershipContract(t *testing.T) {
	m := newTestMedium()
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	raw := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var aliased, retained []byte
	b.SetReceiver(func(c Capture) {
		if !bytes.Equal(c.Raw, raw) {
			t.Errorf("callback saw %x, want %x", c.Raw, raw)
		}
		aliased = c.Raw
		retained = append([]byte(nil), c.Raw...)
	})
	if err := a.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	raw[0] = 0xFF
	if aliased[0] != 0xFF {
		t.Fatal("clean-path delivery made a copy; expected zero-copy aliasing")
	}
	if retained[0] != 1 {
		t.Fatal("copied retention affected by transmitter mutation")
	}
}

func TestLossImpairment(t *testing.T) {
	m := newTestMedium()
	m.SetImpairments(1.0, 0, 99) // 100% loss
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	got := 0
	b.SetReceiver(func(Capture) { got++ })
	for i := 0; i < 10; i++ {
		if err := a.Transmit(make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if got != 0 {
		t.Fatalf("received %d frames under 100%% loss", got)
	}
}

func TestNoiseImpairmentCorruptsChecksum(t *testing.T) {
	m := newTestMedium()
	m.SetImpairments(0, 1.0, 7) // every frame corrupted by one bit
	a := m.Attach("a", RegionEU)
	b := m.Attach("b", RegionEU)
	bad := 0
	b.SetReceiver(func(c Capture) {
		if _, err := protocol.Decode(c.Raw, protocol.ChecksumCS8); err != nil {
			bad++
		}
	})
	raw := protocol.NewDataFrame(1, 1, 2, []byte{0x20, 0x02}).MustEncode()
	for i := 0; i < 20; i++ {
		if err := a.Transmit(raw); err != nil {
			t.Fatal(err)
		}
	}
	if bad != 20 {
		t.Fatalf("only %d/20 corrupted frames failed decode", bad)
	}
}

func TestSnifferSeesAllHomeIDs(t *testing.T) {
	m := newTestMedium()
	s := NewSniffer(m, RegionEU, 0)
	a := m.Attach("a", RegionEU)

	f1 := protocol.NewDataFrame(0xCB95A34A, 0x0F, 0x01, []byte{0x25, 0x03, 0xFF}).MustEncode()
	f2 := protocol.NewDataFrame(0xE7DE3F3D, 0x01, 0x02, []byte{0x20, 0x02}).MustEncode()
	for _, f := range [][]byte{f1, f2, f1} {
		if err := a.Transmit(f); err != nil {
			t.Fatal(err)
		}
	}
	nets := s.Networks()
	if len(nets) != 2 {
		t.Fatalf("saw %d networks, want 2", len(nets))
	}
	nodes := nets[protocol.HomeID(0xCB95A34A)]
	if len(nodes) != 2 || nodes[0] != 0x01 || nodes[1] != 0x0F {
		t.Fatalf("home CB95A34A nodes = %v", nodes)
	}
	if got := len(s.Captures()); got != 3 {
		t.Fatalf("captures = %d, want 3", got)
	}
	s.Clear()
	if len(s.Captures()) != 0 {
		t.Fatal("Clear left captures behind")
	}
}

func TestSnifferRingLimit(t *testing.T) {
	m := newTestMedium()
	s := NewSniffer(m, RegionEU, 2)
	a := m.Attach("a", RegionEU)
	for i := byte(1); i <= 4; i++ {
		raw := protocol.NewDataFrame(1, protocol.NodeID(i), 2, []byte{0x20, 0x02}).MustEncode()
		if err := a.Transmit(raw); err != nil {
			t.Fatal(err)
		}
	}
	caps := s.Captures()
	if len(caps) != 2 {
		t.Fatalf("retained %d captures, want 2", len(caps))
	}
	if _, src, _, _ := protocol.SniffNetworkInfo(caps[0].Raw); src != 3 {
		t.Fatalf("oldest retained src = %v, want 3", src)
	}
}

func TestSnifferIgnoresBroadcastAndRunts(t *testing.T) {
	m := newTestMedium()
	s := NewSniffer(m, RegionEU, 0)
	a := m.Attach("a", RegionEU)
	bcast := protocol.NewDataFrame(5, 1, protocol.NodeBroadcast, []byte{0x20, 0x02}).MustEncode()
	if err := a.Transmit(bcast); err != nil {
		t.Fatal(err)
	}
	if err := a.Transmit([]byte{1, 2, 3}); err != nil { // runt
		t.Fatal(err)
	}
	nets := s.Networks()
	nodes := nets[protocol.HomeID(5)]
	if len(nodes) != 1 || nodes[0] != 1 {
		t.Fatalf("nodes = %v, want [1] (broadcast dst excluded)", nodes)
	}
}

// Property: every attached same-region transceiver other than the sender
// receives exactly one copy per transmission under a clean medium.
func TestDeliveryFanoutProperty(t *testing.T) {
	prop := func(nPeers uint8, payloadLen uint8) bool {
		peers := int(nPeers%8) + 1
		m := newTestMedium()
		tx := m.Attach("tx", RegionEU)
		counts := make([]int, peers)
		for i := 0; i < peers; i++ {
			i := i
			m.Attach("rx", RegionEU).SetReceiver(func(Capture) { counts[i]++ })
		}
		raw := make([]byte, int(payloadLen%50)+10)
		if err := tx.Transmit(raw); err != nil {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
