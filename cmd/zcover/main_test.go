package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunShortCampaign(t *testing.T) {
	if err := run([]string{"-target", "D1", "-strategy", "full", "-duration", "20m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBetaAndGamma(t *testing.T) {
	for _, strat := range []string{"beta", "gamma"} {
		if err := run([]string{"-target", "D3", "-strategy", strat, "-duration", "5m"}); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-strategy", "sideways"}); err == nil {
		t.Fatal("accepted unknown strategy")
	}
	if err := run([]string{"-target", "D9"}); err == nil {
		t.Fatal("accepted unknown target")
	}
	if err := run([]string{"-resume"}); err == nil {
		t.Fatal("accepted -resume without -checkpoint-dir")
	}
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()
	ferr := f()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = orig
	if ferr != nil {
		t.Fatalf("run failed: %v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

// TestCheckpointReplayCLI: a journaled campaign replayed with -resume
// must print the exact same report (modulo the replay note) without
// executing anything, and re-running without -resume must be refused.
func TestCheckpointReplayCLI(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-target", "D1", "-duration", "2m", "-seed", "41", "-checkpoint-dir", dir}
	first := capture(t, func() error { return run(args) })
	if err := run(args); err == nil {
		t.Fatal("existing journal accepted without -resume")
	}
	second := capture(t, func() error { return run(append(args, "-resume")) })
	const note = "Campaign replayed from checkpoint journal — nothing executed.\n\n"
	if !strings.Contains(second, note) {
		t.Fatalf("replay note missing:\n%s", second)
	}
	if got := strings.Replace(second, note, "", 1); got != first {
		t.Errorf("replayed report differs from the original:\n--- first ---\n%s--- replay ---\n%s", first, got)
	}
}
