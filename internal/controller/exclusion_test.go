package controller

import (
	"testing"
	"time"

	"zcover/internal/device"
	"zcover/internal/protocol"
	"zcover/internal/radio"
)

func TestOverTheAirExclusion(t *testing.T) {
	r := newRig(t, "D1")
	// Stand up a live switch matching table entry 3.
	sw := device.NewBinarySwitch(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: r.ctrl.Profile().Home, ID: 0x03, Name: "live-switch",
	}, 0x01)

	r.ctrl.RemoveNodeMode(time.Minute)
	if err := device.LeaveNetwork(sw.Node(), sw.Identity()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ctrl.Table().Get(0x03); ok {
		t.Fatal("node 3 still in the table after exclusion")
	}
	if sw.Node().ID() != protocol.NodeUnassigned {
		t.Fatalf("device ID after exclusion = %s, want unassigned", sw.Node().ID())
	}
}

func TestExclusionIgnoresForeignDevices(t *testing.T) {
	r := newRig(t, "D2")
	foreign := device.NewBinarySwitch(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: 0xFACECAFE, ID: 0x09, Name: "neighbour",
	}, 0x01)
	r.ctrl.RemoveNodeMode(time.Minute)
	if err := device.LeaveNetwork(foreign.Node(), foreign.Identity()); err != nil {
		t.Fatal(err)
	}
	// Node 9 was never ours; table unchanged and mode still armed.
	if r.ctrl.Table().Len() != 3 {
		t.Fatalf("table = %v", r.ctrl.Table().IDs())
	}
}

func TestExclusionModeExpires(t *testing.T) {
	r := newRig(t, "D3")
	r.ctrl.RemoveNodeMode(10 * time.Second)
	r.clock.Advance(11 * time.Second)
	sw := device.NewBinarySwitch(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: r.ctrl.Profile().Home, ID: 0x03, Name: "late",
	}, 0x01)
	if err := device.LeaveNetwork(sw.Node(), sw.Identity()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.ctrl.Table().Get(0x03); !ok {
		t.Fatal("device excluded after the window expired")
	}
}

func TestExclusionClearsSessionsAndWakeup(t *testing.T) {
	r := newRig(t, "D4")
	lock := device.NewDoorLock(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: r.ctrl.Profile().Home, ID: 0x02, Name: "live-lock",
	}, 0x01)
	r.ctrl.RemoveNodeMode(time.Minute)
	if err := device.LeaveNetwork(lock.Node(), lock.Identity()); err != nil {
		t.Fatal(err)
	}
	if r.ctrl.WakeupInterval(0x02) != 0 {
		t.Fatal("wakeup store not cleaned on legitimate exclusion")
	}
	if _, ok := r.ctrl.Session(0x02); ok {
		t.Fatal("S2 session survived exclusion")
	}
}
