package fuzz

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/corpus"
	"zcover/internal/protocol"
	"zcover/internal/telemetry"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// newCovEngine builds a coverage-guided engine on a fresh testbed with all
// three coverage hooks wired, mirroring newEngine.
func newCovEngine(t *testing.T, index string, classes []cmdclass.ClassID, cfg Config) (*CovEngine, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.New(index, 21)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	fp := scan.Fingerprint{
		Home:       tb.Home(),
		Controller: testbed.ControllerID,
		Nodes:      []protocol.NodeID{0x01, 0x02, 0x03},
	}
	var queue []*cmdclass.Class
	for _, id := range classes {
		if cls, ok := cmdclass.MustLoad().Get(id); ok {
			queue = append(queue, cls)
			continue
		}
		cls, ok := cmdclass.HiddenClass(id)
		if !ok {
			t.Fatalf("class %s unknown", id)
		}
		queue = append(queue, cls)
	}
	mut := mutate.New(mutate.Semantics{Controller: fp.Controller, KnownNodes: fp.Nodes}, 21)
	eng, err := NewCov(d, fp, queue, mut, index, 21, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Controller.SetCoverage(eng.Coverage())
	tb.Bus.SetCoverage(eng.Coverage())
	tb.Bus.Subscribe(eng.Observe)
	return eng, tb
}

func TestCovEngineFindsHangBugAndGrowsCorpus(t *testing.T) {
	eng, _ := newCovEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion}, Config{
		Duration: 10 * time.Minute,
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %d: %+v", len(res.Findings), res.Findings)
	}
	if res.Findings[0].Signature != "service-hang/0x86/0x13" {
		t.Fatalf("finding = %s", res.Findings[0].Signature)
	}
	if res.CorpusSize == 0 {
		t.Fatal("no seeds admitted")
	}
	if res.Coverage.Features == 0 || res.Coverage.Density <= 0 {
		t.Fatalf("coverage empty: %+v", res.Coverage)
	}
	// The finding itself must have been admitted with its signature.
	var found bool
	for _, s := range eng.Corpus().Seeds() {
		if s.Signature == "service-hang/0x86/0x13" {
			found = true
		}
	}
	if !found {
		t.Fatal("finding seed not in corpus")
	}
}

func TestCovEngineIsDeterministic(t *testing.T) {
	run := func() []byte {
		eng, _ := newCovEngine(t, "D2", []cmdclass.ClassID{
			cmdclass.ClassZWaveProtocol, cmdclass.ClassBasic,
		}, Config{Duration: 20 * time.Minute})
		res, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical campaigns diverged:\n%s\n%s", a, b)
	}
}

func TestFrameBudgetCapsBothEngines(t *testing.T) {
	const budget = 40

	gen, _ := newEngine(t, "D3", []cmdclass.ClassID{cmdclass.ClassBasic}, Config{
		Duration: time.Hour, FrameBudget: budget,
	})
	if got := gen.Run().PacketsSent; got != budget {
		t.Fatalf("generational sent %d frames, want %d", got, budget)
	}

	cov, _ := newCovEngine(t, "D3", []cmdclass.ClassID{cmdclass.ClassBasic}, Config{
		Duration: time.Hour, FrameBudget: budget,
	})
	res, err := cov.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsSent > budget {
		t.Fatalf("coverage-guided sent %d frames, budget %d", res.PacketsSent, budget)
	}
}

func TestCovEngineResumesFromCorpusJournal(t *testing.T) {
	dir := t.TempDir()
	spec := map[string]any{"device": "D1", "seed": 21, "budget": "10m"}
	cfg := Config{Duration: 10 * time.Minute}
	classes := []cmdclass.ClassID{cmdclass.ClassVersion, cmdclass.ClassBasic}

	j, err := corpus.OpenJournal(dir, "covfuzz-D1", spec, false)
	if err != nil {
		t.Fatal(err)
	}
	eng1, _ := newCovEngine(t, "D1", classes, cfg)
	eng1.Corpus().AttachJournal(j)
	res1, err := eng1.Run()
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	// "Kill" the campaign and start over against the persisted corpus: the
	// deterministic re-run must replay every admission byte-identically.
	j2, err := corpus.OpenJournal(dir, "covfuzz-D1", spec, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Replayed() != res1.CorpusSize {
		t.Fatalf("journal holds %d seeds, campaign admitted %d", j2.Replayed(), res1.CorpusSize)
	}
	eng2, _ := newCovEngine(t, "D1", classes, cfg)
	eng2.Corpus().AttachJournal(j2)
	res2, err := eng2.Run()
	if err != nil {
		t.Fatalf("replay validation failed: %v", err)
	}
	if res2.CorpusSize != res1.CorpusSize {
		t.Fatalf("resumed corpus = %d seeds, original = %d", res2.CorpusSize, res1.CorpusSize)
	}

	b1, _ := json.Marshal(res1)
	b2, _ := json.Marshal(res2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("resumed campaign result diverged:\n%s\n%s", b1, b2)
	}
}

func TestCovEngineAttachesTracesToSeeds(t *testing.T) {
	eng, tb := newCovEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion}, Config{
		Duration: 5 * time.Minute,
	})
	rec := telemetry.NewFlightRecorder(32)
	tb.Medium.SetFlightRecorder(rec)
	eng.cfg.Recorder = rec
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CorpusSize == 0 {
		t.Fatal("no seeds admitted")
	}
	for _, s := range eng.Corpus().Seeds() {
		if len(s.Trace) == 0 {
			t.Fatalf("seed %d admitted without a flight-recorder trace", s.ID)
		}
		if len(s.Trace) > 32 {
			t.Fatalf("seed %d trace unbounded: %d frames", s.ID, len(s.Trace))
		}
	}
}

func TestCovEngineCoverageExceedsQuickPassAlone(t *testing.T) {
	// The exploitation loop must add features beyond what the quick pass
	// alone reaches: run the same campaign at two budgets and require the
	// longer one to have strictly denser coverage.
	short, _ := newCovEngine(t, "D2", []cmdclass.ClassID{cmdclass.ClassZWaveProtocol}, Config{
		Duration: time.Hour, FrameBudget: 30,
	})
	rs, err := short.Run()
	if err != nil {
		t.Fatal(err)
	}
	long, _ := newCovEngine(t, "D2", []cmdclass.ClassID{cmdclass.ClassZWaveProtocol}, Config{
		Duration: time.Hour, FrameBudget: 600,
	})
	rl, err := long.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rl.Coverage.Features <= rs.Coverage.Features {
		t.Fatalf("600-frame coverage (%d features) not above 30-frame coverage (%d)",
			rl.Coverage.Features, rs.Coverage.Features)
	}
	if rl.Rounds == 0 {
		t.Fatal("no exploitation rounds ran")
	}
}
