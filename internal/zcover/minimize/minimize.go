// Package minimize reduces bug-triggering payloads to minimal
// proof-of-concept packets. The paper develops PoC exploits manually after
// fuzzing ("After validation, we develop proof-of-concept (PoC) exploits
// for selected critical vulnerabilities", §IV-A); this package automates
// the mechanical part: given a finding's trigger payload, it searches for
// the shortest, most-zeroed payload that still fires the same anomaly
// signature on a fresh instance of the device.
//
// Minimisation never touches the campaign's live target — each probe runs
// against a freshly assembled testbed, exactly as a researcher re-flashing
// the device between PoC attempts.
package minimize

import (
	"fmt"

	"zcover/internal/oracle"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

// Result is a minimisation outcome.
type Result struct {
	// Original and Minimal are the input and reduced payloads.
	Original, Minimal []byte
	// Probes counts the candidate payloads tried.
	Probes int
}

// Saved reports how many bytes minimisation removed.
func (r Result) Saved() int { return len(r.Original) - len(r.Minimal) }

// Minimizer reduces payloads against fresh instances of one device model.
type Minimizer struct {
	device string
	seed   int64
}

// New builds a minimiser for the given testbed device.
func New(device string, seed int64) *Minimizer {
	return &Minimizer{device: device, seed: seed}
}

// triggers reports whether the payload fires the signature on a fresh
// device.
func (m *Minimizer) triggers(payload []byte, signature string) (bool, error) {
	tb, err := testbed.New(m.device, m.seed)
	if err != nil {
		return false, err
	}
	fired := false
	tb.Bus.Subscribe(func(ev oracle.Event) {
		if ev.Signature() == signature {
			fired = true
		}
	})
	d := dongle.New(tb.Medium, tb.Region)
	if _, err := d.SendAndObserve(tb.Home(), scan.AttackerNodeID, testbed.ControllerID,
		payload, dongle.DefaultResponseWindow); err != nil {
		return false, err
	}
	return fired, nil
}

// Minimize reduces the payload while preserving the anomaly signature. The
// search is greedy and deterministic: first trim trailing bytes, then zero
// every remaining byte position (CMDCL and CMD are structural and left
// untouched).
func (m *Minimizer) Minimize(payload []byte, signature string) (Result, error) {
	res := Result{Original: append([]byte{}, payload...)}
	ok, err := m.triggers(payload, signature)
	if err != nil {
		return res, err
	}
	if !ok {
		return res, fmt.Errorf("minimize: payload does not reproduce %s on a fresh %s", signature, m.device)
	}

	cur := append([]byte{}, payload...)

	// Phase 1: trim from the tail, keeping at least CMDCL+CMD.
	for len(cur) > 2 {
		candidate := cur[:len(cur)-1]
		res.Probes++
		ok, err := m.triggers(candidate, signature)
		if err != nil {
			return res, err
		}
		if !ok {
			break
		}
		cur = candidate
	}

	// Phase 2: zero each remaining parameter byte.
	for i := 2; i < len(cur); i++ {
		if cur[i] == 0x00 {
			continue
		}
		candidate := append([]byte{}, cur...)
		candidate[i] = 0x00
		res.Probes++
		ok, err := m.triggers(candidate, signature)
		if err != nil {
			return res, err
		}
		if ok {
			cur = candidate
		}
	}

	res.Minimal = cur
	return res, nil
}
