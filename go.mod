module zcover

go 1.22
