// Package cmdclass models the Z-Wave application-layer command-class
// specification: the database ZCover's unknown-properties discovery phase
// (§III-C of the paper) mines for controller-relevant command classes, their
// commands, and their parameter schemas.
//
// The database itself lives in spec_data.xml, an embedded file in the same
// format family as the libzwaveip ZWave_custom_cmd_classes.xml the paper
// parses, covering the 122 command classes of the 2023B/2024 specification.
// The two proprietary classes the paper uncovers by validation testing
// (0x01 and 0x02) are deliberately *absent* from the XML — they are not in
// the public specification — and are defined in proprietary.go instead.
package cmdclass

import (
	"fmt"
	"sort"
	"strconv"
)

// ClassID is a one-byte command-class identifier (the CMDCL field).
type ClassID byte

// String renders the ID in the 0xNN convention used throughout Z-Wave
// documentation and the paper.
func (id ClassID) String() string { return fmt.Sprintf("0x%02X", byte(id)) }

// CommandID is a one-byte command identifier within a class (the CMD field).
type CommandID byte

// String implements fmt.Stringer.
func (id CommandID) String() string { return fmt.Sprintf("0x%02X", byte(id)) }

// Well-known class IDs referenced by name across the repository. The full
// set lives in the embedded spec; these constants exist so device models,
// vulnerability models, and tests read clearly.
const (
	ClassZWaveProtocol     ClassID = 0x01 // hidden network-management class (proprietary)
	ClassProprietaryMfg    ClassID = 0x02 // second hidden proprietary class
	ClassBasic             ClassID = 0x20
	ClassControllerRepl    ClassID = 0x21
	ClassApplicationStatus ClassID = 0x22
	ClassSwitchBinary      ClassID = 0x25
	ClassSwitchMultilevel  ClassID = 0x26
	ClassSensorBinary      ClassID = 0x30
	ClassSensorMultilevel  ClassID = 0x31
	ClassNetworkMgmtIncl   ClassID = 0x34
	ClassTransportService  ClassID = 0x55
	ClassCRC16Encap        ClassID = 0x56
	ClassAssocGroupInfo    ClassID = 0x59
	ClassDeviceResetLocal  ClassID = 0x5A
	ClassCentralScene      ClassID = 0x5B
	ClassZWavePlusInfo     ClassID = 0x5E
	ClassDoorLock          ClassID = 0x62
	ClassUserCode          ClassID = 0x63
	ClassSupervision       ClassID = 0x6C
	ClassConfiguration     ClassID = 0x70
	ClassNotification      ClassID = 0x71
	ClassManufacturerSpec  ClassID = 0x72
	ClassPowerlevel        ClassID = 0x73
	ClassInclusionCtrl     ClassID = 0x74
	ClassFirmwareUpdateMD  ClassID = 0x7A
	ClassBattery           ClassID = 0x80
	ClassHail              ClassID = 0x82
	ClassWakeUp            ClassID = 0x84
	ClassAssociation       ClassID = 0x85
	ClassVersion           ClassID = 0x86
	ClassIndicator         ClassID = 0x87
	ClassProprietary       ClassID = 0x88
	ClassMultiCmd          ClassID = 0x8F
	ClassSecurity0         ClassID = 0x98
	ClassSecurity2         ClassID = 0x9F
)

// Well-known command IDs used by device models and vulnerability triggers.
const (
	// CMDCL 0x01 (Z-Wave protocol) commands — the hidden class of Table III.
	CmdProtoNodeInfo          CommandID = 0x01
	CmdProtoRequestNodeInfo   CommandID = 0x02 // Bug 05 vector
	CmdProtoAssignIDs         CommandID = 0x03
	CmdProtoFindNodesInRange  CommandID = 0x04 // Bug 14 vector
	CmdProtoGetNodesInRange   CommandID = 0x05
	CmdProtoNewNodeRegistered CommandID = 0x0D // Bugs 01-04, 12 vector

	// BASIC.
	CmdBasicSet    CommandID = 0x01
	CmdBasicGet    CommandID = 0x02
	CmdBasicReport CommandID = 0x03

	// SWITCH_BINARY.
	CmdSwitchBinarySet    CommandID = 0x01
	CmdSwitchBinaryGet    CommandID = 0x02
	CmdSwitchBinaryReport CommandID = 0x03

	// DOOR_LOCK.
	CmdDoorLockOperationSet    CommandID = 0x01
	CmdDoorLockOperationGet    CommandID = 0x02
	CmdDoorLockOperationReport CommandID = 0x03

	// ASSOCIATION_GRP_INFO.
	CmdAGIGroupNameGet   CommandID = 0x01
	CmdAGIGroupInfoGet   CommandID = 0x03 // Bug 08 vector
	CmdAGICommandListGet CommandID = 0x05 // Bug 11 vector

	// DEVICE_RESET_LOCALLY.
	CmdDeviceResetNotification CommandID = 0x01 // Bug 07 vector

	// VERSION.
	CmdVersionGet             CommandID = 0x11
	CmdVersionReport          CommandID = 0x12
	CmdVersionCommandClassGet CommandID = 0x13 // Bug 10 vector
	CmdVersionZWaveSWGet      CommandID = 0x17

	// POWERLEVEL.
	CmdPowerlevelSet         CommandID = 0x01
	CmdPowerlevelTestNodeSet CommandID = 0x04 // Bug 13 vector

	// FIRMWARE_UPDATE_MD.
	CmdFirmwareMDGet      CommandID = 0x01 // Bug 09 vector
	CmdFirmwareRequestGet CommandID = 0x03 // Bug 15 vector

	// WAKE_UP.
	CmdWakeUpIntervalSet    CommandID = 0x04
	CmdWakeUpIntervalGet    CommandID = 0x05
	CmdWakeUpIntervalReport CommandID = 0x06
	CmdWakeUpNotification   CommandID = 0x07

	// SECURITY_2.
	CmdS2NonceGet      CommandID = 0x01 // Bug 06 vector
	CmdS2NonceReport   CommandID = 0x02
	CmdS2MessageEncap  CommandID = 0x03
	CmdS2KexGet        CommandID = 0x04
	CmdS2KexReport     CommandID = 0x05
	CmdS2KexSet        CommandID = 0x06
	CmdS2KexFail       CommandID = 0x07
	CmdS2PublicKey     CommandID = 0x08
	CmdS2NetworkKeyGet CommandID = 0x09
	CmdS2NetworkKeyRep CommandID = 0x0A
	CmdS2NetKeyVerify  CommandID = 0x0B
	CmdS2TransferEnd   CommandID = 0x0C

	// SECURITY_0.
	CmdS0SupportedGet  CommandID = 0x02
	CmdS0SchemeGet     CommandID = 0x04
	CmdS0NetworkKeySet CommandID = 0x06
	CmdS0NonceGet      CommandID = 0x40
	CmdS0NonceReport   CommandID = 0x80
	CmdS0MessageEncap  CommandID = 0x81
)

// Direction tells whether a command is sent by the controlling side or by
// the supporting (slave) side, as the public spec annotates.
type Direction int

// Command directions. Enum starts at 1.
const (
	// DirControlling marks commands a controller sends (Set, Get, ...).
	DirControlling Direction = iota + 1
	// DirSupporting marks commands a supporting node sends (Report, ...).
	DirSupporting
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case DirControlling:
		return "controlling"
	case DirSupporting:
		return "supporting"
	default:
		return "Direction(" + strconv.Itoa(int(d)) + ")"
	}
}

// Category is the functional cluster the spec assigns a class to; the
// paper's discovery phase clusters classes into application functionality,
// transport encapsulation, management, and networking (§III-C1).
type Category int

// Functional categories. Enum starts at 1.
const (
	CategoryApplication Category = iota + 1
	CategoryTransport
	CategoryManagement
	CategoryNetwork
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryApplication:
		return "application"
	case CategoryTransport:
		return "transport"
	case CategoryManagement:
		return "management"
	case CategoryNetwork:
		return "network"
	default:
		return "Category(" + strconv.Itoa(int(c)) + ")"
	}
}

// Scope tells which side of the network a class is relevant to. The
// discovery phase's controller cluster is exactly the classes whose scope
// is not ScopeSlave.
type Scope int

// Scopes. Enum starts at 1.
const (
	ScopeController Scope = iota + 1
	ScopeSlave
	ScopeBoth
)

// String implements fmt.Stringer.
func (s Scope) String() string {
	switch s {
	case ScopeController:
		return "controller"
	case ScopeSlave:
		return "slave"
	case ScopeBoth:
		return "both"
	default:
		return "Scope(" + strconv.Itoa(int(s)) + ")"
	}
}

// ParamKind describes how a command parameter is valued; the
// position-sensitive mutator chooses operators per kind.
type ParamKind int

// Parameter kinds. Enum starts at 1.
const (
	// ParamByte is an unconstrained single byte.
	ParamByte ParamKind = iota + 1
	// ParamRange is a byte constrained to [Min, Max].
	ParamRange
	// ParamEnum is a byte drawn from an explicit legal-value set.
	ParamEnum
	// ParamNodeID is a byte holding a Z-Wave node ID.
	ParamNodeID
	// ParamBitmask is a byte of independent flag bits.
	ParamBitmask
	// ParamVariadic is a variable-length tail (e.g. a key, name or blob).
	ParamVariadic
)

// String implements fmt.Stringer.
func (k ParamKind) String() string {
	switch k {
	case ParamByte:
		return "byte"
	case ParamRange:
		return "range"
	case ParamEnum:
		return "enum"
	case ParamNodeID:
		return "nodeid"
	case ParamBitmask:
		return "bitmask"
	case ParamVariadic:
		return "variadic"
	default:
		return "ParamKind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Param is the schema of one command parameter at a fixed position.
type Param struct {
	// Name is the spec's parameter name.
	Name string
	// Kind selects the value model.
	Kind ParamKind
	// Min and Max bound ParamRange values.
	Min, Max byte
	// Values enumerates legal bytes for ParamEnum.
	Values []byte
}

// Legal reports whether b is a legal value for the parameter.
func (p Param) Legal(b byte) bool {
	switch p.Kind {
	case ParamRange:
		return b >= p.Min && b <= p.Max
	case ParamEnum:
		for _, v := range p.Values {
			if v == b {
				return true
			}
		}
		return false
	default:
		return true
	}
}

// Command is one command within a class.
type Command struct {
	// ID is the CMD byte.
	ID CommandID
	// Name is the spec's command name (without the class prefix).
	Name string
	// Dir is the controlling/supporting direction.
	Dir Direction
	// Params are the positional parameter schemas.
	Params []Param
}

// MinLength returns the minimum legal APL payload length (CMDCL + CMD +
// non-variadic params) for the command.
func (c Command) MinLength() int {
	n := 2
	for _, p := range c.Params {
		if p.Kind != ParamVariadic {
			n++
		}
	}
	return n
}

// Class is one command class of the specification.
type Class struct {
	// ID is the CMDCL byte.
	ID ClassID
	// Name is the spec name without the COMMAND_CLASS_ prefix.
	Name string
	// Version is the highest specified class version.
	Version int
	// Category is the functional cluster.
	Category Category
	// Scope marks controller/slave/both relevance.
	Scope Scope
	// Commands lists the class's commands sorted by ID.
	Commands []Command
}

// Command returns the command with the given ID, if present.
func (c *Class) Command(id CommandID) (Command, bool) {
	for _, cmd := range c.Commands {
		if cmd.ID == id {
			return cmd, true
		}
	}
	return Command{}, false
}

// CommandIDs returns the sorted command IDs of the class.
func (c *Class) CommandIDs() []CommandID {
	ids := make([]CommandID, 0, len(c.Commands))
	for _, cmd := range c.Commands {
		ids = append(ids, cmd.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ControllerRelevant reports whether the class belongs to the controller
// cluster of the discovery phase.
func (c *Class) ControllerRelevant() bool { return c.Scope != ScopeSlave }
