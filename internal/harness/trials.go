package harness

import (
	"fmt"
	"time"

	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// TrialSummary aggregates repeated campaigns against one device —
// "following recommended fuzzing practices, we conducted five 24-hour
// fuzzing trials for each controller" (§IV, Experiment environment).
type TrialSummary struct {
	// Device is the testbed index.
	Device string
	// Trials is the number of campaigns run.
	Trials int
	// PerTrial lists each trial's unique-vulnerability count.
	PerTrial []int
	// Union is the number of distinct signatures across all trials.
	Union int
	// Stable reports whether every trial found the same signature set.
	Stable bool
}

// RunTrials executes n full-ZCover campaigns against the same device,
// resetting the testbed between trials (as re-flashing/rebooting the
// device does in the paper's methodology), with per-trial seeds.
func RunTrials(index string, n int, duration time.Duration, baseSeed int64) (TrialSummary, error) {
	if n <= 0 {
		return TrialSummary{}, fmt.Errorf("harness: trials must be positive, got %d", n)
	}
	sum := TrialSummary{Device: index, Trials: n, Stable: true}
	union := make(map[string]bool)
	var first map[string]bool

	for trial := 0; trial < n; trial++ {
		seed := baseSeed + int64(trial)
		tb, err := testbed.New(index, seed)
		if err != nil {
			return TrialSummary{}, err
		}
		c, err := RunZCover(tb, fuzz.StrategyFull, duration, seed)
		if err != nil {
			return TrialSummary{}, fmt.Errorf("harness: trial %d: %w", trial+1, err)
		}
		found := make(map[string]bool, len(c.Fuzz.Findings))
		for _, f := range c.Fuzz.Findings {
			found[f.Signature] = true
			union[f.Signature] = true
		}
		sum.PerTrial = append(sum.PerTrial, len(found))
		if first == nil {
			first = found
		} else if !sameSet(first, found) {
			sum.Stable = false
		}
	}
	sum.Union = len(union)
	return sum, nil
}

// sameSet compares two signature sets.
func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
