package mutate

import (
	"bytes"
	"testing"
	"testing/quick"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

func testSemantics() Semantics {
	return Semantics{Controller: 0x01, KnownNodes: []protocol.NodeID{0x01, 0x02, 0x03}}
}

func testMutator() *Mutator { return New(testSemantics(), 1) }

func classOf(t *testing.T, id cmdclass.ClassID) *cmdclass.Class {
	t.Helper()
	if cls, ok := cmdclass.MustLoad().Get(id); ok {
		return cls
	}
	cls, ok := cmdclass.HiddenClass(id)
	if !ok {
		t.Fatalf("class %s not found", id)
	}
	return cls
}

func TestStreamPayloadsTargetTheirClass(t *testing.T) {
	m := testMutator()
	for _, id := range []cmdclass.ClassID{cmdclass.ClassVersion, cmdclass.ClassZWaveProtocol} {
		s := m.Stream(classOf(t, id))
		for i := 0; i < s.SurfaceSize()+50; i++ {
			p := s.Next()
			if len(p) < 2 {
				t.Fatalf("payload %d too short: % X", i, p)
			}
			if p[0] != byte(id) {
				t.Fatalf("payload %d targets class %#02x, want %s", i, p[0], id)
			}
		}
	}
}

func TestSurfaceIncludesBareCommands(t *testing.T) {
	m := testMutator()
	version := classOf(t, cmdclass.ClassVersion)
	s := m.Stream(version)
	seen := make(map[byte]bool)
	for i := 0; i < s.QuickSize(); i++ {
		p := s.Next()
		if len(p) == 2 {
			seen[p[1]] = true
		}
	}
	for _, cmd := range version.Commands {
		if !seen[byte(cmd.ID)] {
			t.Errorf("quick pass missing bare command %s", cmd.ID)
		}
	}
}

func TestSurfaceReachesMemoryTamperShapes(t *testing.T) {
	// The deterministic surface must contain the exact packet shapes of
	// the Table III CMDCL 0x01 bugs.
	m := testMutator()
	s := m.Stream(classOf(t, cmdclass.ClassZWaveProtocol))
	var surface [][]byte
	for i := 0; i < s.SurfaceSize(); i++ {
		surface = append(surface, s.Next())
	}
	contains := func(pred func(p []byte) bool) bool {
		for _, p := range surface {
			if pred(p) {
				return true
			}
		}
		return false
	}
	if !contains(func(p []byte) bool { // bug 03: bare removal of known node
		return len(p) == 3 && p[1] == 0x0D && p[2] == 0x02
	}) {
		t.Error("surface missing node-removal shape [01 0D 02]")
	}
	if !contains(func(p []byte) bool { // bug 04: broadcast registration
		return len(p) >= 3 && p[1] == 0x0D && p[2] == 0xFF
	}) {
		t.Error("surface missing broadcast-registration shape")
	}
	if !contains(func(p []byte) bool { // bug 12: truncated capability clear
		return len(p) == 4 && p[1] == 0x0D && p[2] == 0x02 && p[3] == 0x00
	}) {
		t.Error("surface missing wakeup-clear shape [01 0D 02 00]")
	}
	if !contains(func(p []byte) bool { // bug 14: max node-mask length
		return len(p) == 3 && p[1] == 0x04 && p[2] == 29
	}) {
		t.Error("surface missing boundary mask-length shape [01 04 1D]")
	}
	if !contains(func(p []byte) bool { // bug 02: unknown node claiming controller type
		return len(p) >= 9 && p[1] == 0x0D && (p[2] == 0x0A || p[2] == 0xC8) && p[6] == 0x01
	}) {
		t.Error("surface missing rogue-controller correlation shape")
	}
}

func TestSurfaceBoundaryValuesForRanges(t *testing.T) {
	m := testMutator()
	proto := classOf(t, cmdclass.ClassZWaveProtocol)
	cmd, _ := proto.Command(cmdclass.CmdProtoFindNodesInRange)
	pool := m.pool(cmd.Params[0]) // range 0..29
	want := []byte{0, 29, 30, 0xFF}
	for _, w := range want {
		found := false
		for _, v := range pool {
			if v == w {
				found = true
			}
		}
		if !found {
			t.Errorf("range pool missing boundary value %d: %v", w, pool)
		}
	}
}

func TestNodeIDPoolContainsSemanticsAndInteresting(t *testing.T) {
	m := testMutator()
	pool := m.nodeIDPool()
	// Known slaves first, controller after them, then interesting IDs.
	if pool[0] != 0x02 || pool[1] != 0x03 {
		t.Fatalf("pool starts %v, want known slaves first", pool[:2])
	}
	for _, want := range []byte{0x01, 0xFF, 0x0A, 0xC8, 0x00} {
		found := false
		for _, v := range pool {
			if v == want {
				found = true
			}
		}
		if !found {
			t.Errorf("node-ID pool missing %#02x", want)
		}
	}
	// No duplicates.
	seen := map[byte]bool{}
	for _, v := range pool {
		if seen[v] {
			t.Fatalf("duplicate %#02x in pool %v", v, pool)
		}
		seen[v] = true
	}
}

func TestCorrelationPoolPutsUnknownIDsFirst(t *testing.T) {
	m := testMutator()
	pool := m.correlationNodeIDs()
	known := map[byte]bool{0x01: true, 0x02: true, 0x03: true}
	boundary := -1
	for i, v := range pool {
		if known[v] {
			boundary = i
			break
		}
	}
	if boundary == -1 {
		t.Fatal("no known IDs in correlation pool")
	}
	for _, v := range pool[boundary:] {
		if !known[v] {
			t.Fatalf("unknown ID %#02x after known block: %v", v, pool)
		}
	}
}

func TestEnumPoolIncludesIllegalValue(t *testing.T) {
	m := testMutator()
	p := cmdclass.Param{Kind: cmdclass.ParamEnum, Values: []byte{0x00, 0xFF}}
	pool := m.pool(p)
	hasIllegal := false
	for _, v := range pool {
		if !p.Legal(v) {
			hasIllegal = true
		}
	}
	if !hasIllegal {
		t.Fatalf("enum pool %v has no illegal value (rand invalid operator)", pool)
	}
}

func TestUnknownClassSurfaceSweepsCommands(t *testing.T) {
	m := testMutator()
	opaque := &cmdclass.Class{ID: 0x02, Name: "OPAQUE"}
	s := m.Stream(opaque)
	if s.QuickSize() == 0 || s.QuickSize() != s.SurfaceSize() {
		t.Fatalf("opaque class quick=%d surface=%d", s.QuickSize(), s.SurfaceSize())
	}
	for i := 0; i < s.SurfaceSize(); i++ {
		if p := s.Next(); p[0] != 0x02 {
			t.Fatalf("payload % X", p)
		}
	}
}

func TestRandomModeHasNoSurface(t *testing.T) {
	m := NewRandom(3)
	s := m.Stream(classOf(t, cmdclass.ClassVersion))
	if s.QuickSize() != 0 || s.SurfaceSize() != 0 {
		t.Fatal("gamma mode must not build a surface")
	}
	for i := 0; i < 100; i++ {
		p := s.Next()
		if p[0] != byte(cmdclass.ClassVersion) {
			t.Fatalf("payload % X", p)
		}
		if len(p) > 2+4 {
			t.Fatalf("gamma payload too long: % X", p)
		}
	}
}

func TestStreamsAreDeterministicPerSeed(t *testing.T) {
	a := New(testSemantics(), 9).Stream(classOf(t, cmdclass.ClassAssocGroupInfo))
	b := New(testSemantics(), 9).Stream(classOf(t, cmdclass.ClassAssocGroupInfo))
	for i := 0; i < 500; i++ {
		if !bytes.Equal(a.Next(), b.Next()) {
			t.Fatalf("streams diverged at packet %d", i)
		}
	}
}

func TestRandomQueueCoversAll256(t *testing.T) {
	q := RandomQueue(cmdclass.MustLoad(), 5)
	if len(q) != 256 {
		t.Fatalf("queue has %d classes, want 256", len(q))
	}
	seen := map[cmdclass.ClassID]bool{}
	for _, c := range q {
		if seen[c.ID] {
			t.Fatalf("duplicate class %s", c.ID)
		}
		seen[c.ID] = true
	}
	// Shuffled: the first 16 should not be 0x00..0x0F in order.
	inOrder := true
	for i := 0; i < 16; i++ {
		if q[i].ID != cmdclass.ClassID(i) {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("random queue is not shuffled")
	}
}

func TestExhausted(t *testing.T) {
	m := testMutator()
	s := m.Stream(classOf(t, cmdclass.ClassCRC16Encap))
	for !s.Exhausted() {
		s.Next()
	}
	// After exhaustion the stream keeps producing (random refinement).
	if p := s.Next(); len(p) < 2 {
		t.Fatalf("post-surface payload % X", p)
	}
}

// Property: every generated payload fits a Z-Wave frame and targets the
// stream's class.
func TestPayloadsAlwaysEncodableProperty(t *testing.T) {
	reg := cmdclass.MustLoad()
	classes := reg.ControllerCluster()
	prop := func(seed int64, classIdx uint8, n uint8) bool {
		cls := classes[int(classIdx)%len(classes)]
		m := New(testSemantics(), seed)
		s := m.Stream(cls)
		for i := 0; i < int(n%64)+1; i++ {
			p := s.Next()
			if p[0] != byte(cls.ID) {
				return false
			}
			f := protocol.NewDataFrame(0x1234, 0x0F, 0x01, p)
			if _, err := f.Encode(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
