package fleet

import (
	"fmt"
	"sync/atomic"
	"time"

	"zcover/internal/obs"
	"zcover/internal/telemetry"
)

// Progress is an atomic snapshot of a running fleet. All counters are
// monotonic except Queued/Running, which shrink as jobs drain.
type Progress struct {
	// Total is the job count the fleet was built with.
	Total int
	// Queued jobs have not started; Running are in flight; Done finished
	// successfully; Failed exhausted their attempts.
	Queued, Running, Done, Failed int
	// Retried counts attempts that failed and were rescheduled on a fresh
	// testbed.
	Retried int
	// Findings is the live unique-vulnerability count across the fleet
	// (contributions from attempts that later fail are rolled back).
	Findings int
	// Packets is the live test-packet count across the fleet.
	Packets int64
	// SimTime is the total simulated campaign time completed.
	SimTime time.Duration
	// Wall is the real time since Run started (zero before Run).
	Wall time.Duration
}

// Finished reports whether every job has drained.
func (p Progress) Finished() bool { return p.Done+p.Failed == p.Total }

// SimRate is the fleet's throughput: simulated campaign time delivered
// per wall-clock second. A 7-worker fleet of healthy campaigns should
// approach 7× a single worker's rate on idle hardware.
func (p Progress) SimRate() float64 {
	if p.Wall <= 0 {
		return 0
	}
	return p.SimTime.Seconds() / p.Wall.Seconds()
}

// String renders a one-line ticker form.
func (p Progress) String() string {
	return fmt.Sprintf("%d/%d done, %d running, %d queued, %d failed | %d findings, %d pkts | %s sim in %s (%.1fx)",
		p.Done, p.Total, p.Running, p.Queued, p.Failed,
		p.Findings, p.Packets,
		p.SimTime.Round(time.Second), p.Wall.Round(time.Millisecond), p.SimRate())
}

// Telemetry gauge names the fleet publishes its live state under. Fleet
// state is bidirectional (queues drain, failed attempts roll back), so
// every instrument is a gauge, not a counter.
const (
	MetricQueued   = "fleet_jobs_queued"
	MetricRunning  = "fleet_jobs_running"
	MetricDone     = "fleet_jobs_done"
	MetricFailed   = "fleet_jobs_failed"
	MetricRetried  = "fleet_jobs_retried"
	MetricFindings = "fleet_findings"
	MetricPackets  = "fleet_packets"
	MetricSimNanos = "fleet_sim_nanos"
)

// counters is the fleet's shared live state behind Progress snapshots. The
// telemetry registry is the single source of truth: each field is a view
// over a named gauge. Because a shared registry accumulates across
// sequential fleets (cmd/experiments points every driver at the process
// default), each fleet captures the gauges' values at construction and
// snapshots report deltas from that base — per-fleet Progress stays exact
// while the registry keeps process-wide running totals.
type counters struct {
	total     int
	startWall atomic.Int64 // unix nanos; 0 until Run starts

	queued, running, done, failed, retried *telemetry.Gauge
	findings, packets, simNanos            *telemetry.Gauge

	baseQueued, baseRunning, baseDone, baseFailed, baseRetried int64
	baseFindings, basePackets, baseSimNanos                    int64
}

// bind points the counter views at reg (nil means a private registry) and
// publishes the initial queue depth.
func (c *counters) bind(reg *telemetry.Registry, total int) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c.total = total
	c.queued = reg.Gauge(MetricQueued)
	c.running = reg.Gauge(MetricRunning)
	c.done = reg.Gauge(MetricDone)
	c.failed = reg.Gauge(MetricFailed)
	c.retried = reg.Gauge(MetricRetried)
	c.findings = reg.Gauge(MetricFindings)
	c.packets = reg.Gauge(MetricPackets)
	c.simNanos = reg.Gauge(MetricSimNanos)

	c.baseQueued = c.queued.Load()
	c.baseRunning = c.running.Load()
	c.baseDone = c.done.Load()
	c.baseFailed = c.failed.Load()
	c.baseRetried = c.retried.Load()
	c.baseFindings = c.findings.Load()
	c.basePackets = c.packets.Load()
	c.baseSimNanos = c.simNanos.Load()

	c.queued.Add(int64(total))
}

func (c *counters) start(t time.Time) {
	c.startWall.CompareAndSwap(0, t.UnixNano())
}

func (c *counters) snapshot() Progress {
	p := Progress{
		Total:    c.total,
		Queued:   int(c.queued.Load() - c.baseQueued),
		Running:  int(c.running.Load() - c.baseRunning),
		Done:     int(c.done.Load() - c.baseDone),
		Failed:   int(c.failed.Load() - c.baseFailed),
		Retried:  int(c.retried.Load() - c.baseRetried),
		Findings: int(c.findings.Load() - c.baseFindings),
		Packets:  c.packets.Load() - c.basePackets,
		SimTime:  time.Duration(c.simNanos.Load() - c.baseSimNanos),
	}
	if s := c.startWall.Load(); s != 0 {
		p.Wall = time.Since(time.Unix(0, s))
	}
	return p
}

// Observer is the metrics channel a Runner reports through. Each attempt
// gets its own observer; if the attempt fails, its contributions are
// subtracted back out so retries do not double-count.
type Observer struct {
	c        *counters
	onChange func()

	// timeline/worker/job route Phase calls to the fleet's worker
	// timeline; timeline may be nil (no-op).
	timeline *obs.Timeline
	worker   int
	job      string

	findings int64
	packets  int64
	simNanos int64
}

// Phase attributes the worker's wall time to a campaign phase from here
// until the next transition (one of the obs.Phase* names — the harness
// reports scan/discover/fuzz as the pipeline advances). No-op without a
// timeline; never affects campaign results.
func (o *Observer) Phase(name string) {
	if o == nil {
		return
	}
	o.timeline.Phase(o.worker, o.job, name)
}

// Finding records one new unique vulnerability (live — call it from the
// campaign's OnFinding callback).
func (o *Observer) Finding() {
	o.findings++
	o.c.findings.Add(1)
	if o.onChange != nil {
		o.onChange()
	}
}

// Packets adds n test packets to the fleet totals.
func (o *Observer) Packets(n int) {
	o.packets += int64(n)
	o.c.packets.Add(int64(n))
}

// SimTime adds completed simulated campaign time to the fleet totals.
func (o *Observer) SimTime(d time.Duration) {
	o.simNanos += int64(d)
	o.c.simNanos.Add(int64(d))
}

// rollback subtracts everything this attempt reported.
func (o *Observer) rollback() {
	o.c.findings.Add(-o.findings)
	o.c.packets.Add(-o.packets)
	o.c.simNanos.Add(-o.simNanos)
	o.findings, o.packets, o.simNanos = 0, 0, 0
}
