// Package decode renders Z-Wave application payloads human-readable by
// resolving class, command, and parameter names against the specification
// database (and the proprietary class definitions). It is the dissector
// behind the zsniff tool and the replay verifier's reports — the
// "packet dissection" step of the paper's Fig. 4 made presentable.
package decode

import (
	"fmt"
	"strings"

	"zcover/internal/cmdclass"
	"zcover/internal/security"
)

// Decoded is the annotated form of one application payload.
type Decoded struct {
	// ClassID and Class name the command class ("?" when unknown).
	ClassID cmdclass.ClassID
	Class   string
	// CommandID and Command name the command within the class.
	CommandID cmdclass.CommandID
	Command   string
	// Params annotates each parameter byte with its spec name.
	Params []Param
	// Encrypted marks S0/S2 encapsulations whose payload is opaque.
	Encrypted bool
	// Trailing holds bytes beyond the spec's parameter list.
	Trailing []byte
}

// Param is one annotated parameter byte.
type Param struct {
	// Name is the spec's parameter name ("?" beyond the spec).
	Name string
	// Value is the wire byte.
	Value byte
	// Legal reports whether the value is legal for the parameter's kind.
	Legal bool
}

// Payload dissects one application payload against the registry.
func Payload(reg *cmdclass.Registry, payload []byte) Decoded {
	out := Decoded{Class: "?", Command: "?"}
	if len(payload) == 0 {
		return out
	}
	out.ClassID = cmdclass.ClassID(payload[0])
	if out.ClassID == 0x00 {
		out.Class = "NO_OPERATION"
		return out
	}
	if security.IsEncapsulation(payload) {
		out.Class, out.Command, out.Encrypted = "SECURITY_2", "MESSAGE_ENCAPSULATION", true
		out.CommandID = 0x03
		return out
	}
	if len(payload) >= 2 && payload[0] == 0x98 && payload[1] == 0x81 {
		out.Class, out.Command, out.Encrypted = "SECURITY", "MESSAGE_ENCAPSULATION", true
		out.CommandID = 0x81
		return out
	}

	cls, ok := reg.Get(out.ClassID)
	if !ok {
		cls, ok = cmdclass.HiddenClass(out.ClassID)
	}
	if !ok {
		return out
	}
	out.Class = cls.Name
	if len(payload) < 2 {
		return out
	}
	out.CommandID = cmdclass.CommandID(payload[1])
	cmd, ok := cls.Command(out.CommandID)
	if !ok {
		return out
	}
	out.Command = cmd.Name

	rest := payload[2:]
	for _, p := range cmd.Params {
		if len(rest) == 0 {
			break
		}
		if p.Kind == cmdclass.ParamVariadic {
			out.Params = append(out.Params, Param{Name: p.Name, Value: rest[0], Legal: true})
			rest = nil
			break
		}
		out.Params = append(out.Params, Param{Name: p.Name, Value: rest[0], Legal: p.Legal(rest[0])})
		rest = rest[1:]
	}
	out.Trailing = rest
	return out
}

// String renders the dissection on one line, e.g.
//
//	ZWAVE_PROTOCOL NEW_NODE_REGISTERED NodeID=0x02 +1 trailing
func (d Decoded) String() string {
	var b strings.Builder
	b.WriteString(d.Class)
	if d.Command != "?" || d.CommandID != 0 {
		fmt.Fprintf(&b, " %s", d.Command)
	}
	if d.Encrypted {
		b.WriteString(" (encrypted payload)")
		return b.String()
	}
	for _, p := range d.Params {
		fmt.Fprintf(&b, " %s=0x%02X", p.Name, p.Value)
		if !p.Legal {
			b.WriteString("!")
		}
	}
	if len(d.Trailing) > 0 {
		fmt.Fprintf(&b, " +% X trailing", d.Trailing)
	}
	return b.String()
}
