package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"zcover/internal/telemetry"
)

// Server is the unified observability HTTP endpoint both CLIs expose with
// -obs-addr: one mux serving
//
//	/debug/pprof/...  the standard pprof index and profiles
//	/metrics          the telemetry registry in Prometheus text format
//	/healthz          200 "ok" liveness probe
//	/timeline         the live worker timeline snapshot as JSON
//
// Unlike the fire-and-forget `go http.ListenAndServe` pattern it
// replaces, NewServer binds its listener synchronously — a bad address or
// occupied port fails the command before the campaign starts instead of
// printing to stderr mid-run — and Close drains in-flight requests
// gracefully at campaign end.
type Server struct {
	lis net.Listener
	srv *http.Server
	// done closes when Serve returns; Close waits on it so shutdown is
	// not racing the serve loop.
	done chan struct{}
	err  error
}

// Route mounts an extra handler on the observability mux — the hook
// subsystems use to surface live state beside the standard endpoints
// (the campaign coordinator mounts its Status JSON at /coord).
type Route struct {
	// Path is the mux pattern ("/coord").
	Path string
	// Handler serves it.
	Handler http.Handler
}

// NewServer binds addr and starts serving the observability mux. reg nil
// means the process-wide telemetry default; tl may be nil (the /timeline
// endpoint then reports an empty snapshot). Any extra routes are mounted
// beside the standard endpoints.
func NewServer(addr string, reg *telemetry.Registry, tl *Timeline, extra ...Route) (*Server, error) {
	if reg == nil {
		reg = telemetry.Default()
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := tl.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	for _, rt := range extra {
		mux.Handle(rt.Path, rt.Handler)
	}
	s := &Server{
		lis:  lis,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close shuts the server down gracefully within ctx's deadline (in-flight
// requests drain), falling back to a hard close, and returns any serve
// error. Safe on a nil server, so CLIs can `defer srv.Close(ctx)`
// unconditionally.
func (s *Server) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	if err := s.srv.Shutdown(ctx); err != nil {
		s.srv.Close()
	}
	<-s.done
	return s.err
}
