package device

import (
	"fmt"
	"io"

	"zcover/internal/security"
)

// S2Pairing is the outcome of an S2 inclusion (bootstrapping) ceremony.
type S2Pairing struct {
	// NetworkKey is the permanent key granted to the device.
	NetworkKey []byte
	// ControllerSession is the including controller's session endpoint
	// (flow A→B is controller→device).
	ControllerSession *security.Session
	// DeviceSession is the included device's endpoint.
	DeviceSession *security.Session
	// Transcript holds the KEX application payloads in exchange order, as
	// they would appear on the air. Everything up to the network-key
	// report is clear text by design; an eavesdropper still cannot derive
	// the key because it is protected by the ECDH-derived temporary key —
	// unlike S0's fixed temporary key.
	Transcript [][]byte
}

// PairS2 runs the S2 key-exchange ceremony between a controller and a
// joining device and returns both endpoints' established sessions.
//
// The message flow follows the S2 bootstrap: KEX_REPORT, KEX_SET, the two
// PUBLIC_KEY_REPORTs, ECDH, CKDF temporary key, NETWORK_KEY_GET/REPORT
// under the temporary key, NETWORK_KEY_VERIFY, TRANSFER_END, and finally
// the SPAN entropy exchange. The exchange itself runs in-process rather
// than over the simulated air: inclusion happens before the attack window
// the paper studies, and running it inline keeps the testbed setup
// deterministic. The payload bytes are still produced exactly as they
// would be transmitted, so tests (and the sniffer example) can inspect a
// faithful transcript.
//
// networkKey is the controller's existing S2 key; pass nil to have a fresh
// key generated (first inclusion).
func PairS2(rng io.Reader, networkKey []byte) (*S2Pairing, error) {
	out := &S2Pairing{}

	// 1. Joining device announces its supported schemes and requests keys.
	kexReport := []byte{0x9F, 0x05, 0x00, 0x02, 0x01, security.KeySize & 0x07}
	out.Transcript = append(out.Transcript, kexReport)

	// 2. Controller grants scheme 2 (ECDH) and the unauthenticated class.
	kexSet := []byte{0x9F, 0x06, 0x00, 0x02, 0x01, 0x01}
	out.Transcript = append(out.Transcript, kexSet)

	// 3–4. Public key exchange.
	devKeys, err := security.GenerateKeypair(rng)
	if err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	ctrlKeys, err := security.GenerateKeypair(rng)
	if err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	out.Transcript = append(out.Transcript,
		append([]byte{0x9F, 0x08, 0x00}, devKeys.Public()...),
		append([]byte{0x9F, 0x08, 0x01}, ctrlKeys.Public()...))

	// 5. Both sides derive the temporary key from the ECDH secret.
	devSecret, err := devKeys.SharedSecret(ctrlKeys.Public())
	if err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	ctrlSecret, err := ctrlKeys.SharedSecret(devKeys.Public())
	if err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	tempKeyDev, err := security.DeriveTempKey(devSecret)
	if err != nil {
		return nil, err
	}
	tempKeyCtrl, err := security.DeriveTempKey(ctrlSecret)
	if err != nil {
		return nil, err
	}

	// 6–7. Network key transfer under the temporary key. The inclusion
	// nonce is fixed per the bootstrap profile (the temporary key is
	// single-use, so this is safe — unlike S0's fixed *key*).
	if networkKey == nil {
		networkKey, err = security.NewNetworkKey(rng)
		if err != nil {
			return nil, err
		}
	}
	out.NetworkKey = networkKey
	aead, err := security.NewCCM(tempKeyCtrl)
	if err != nil {
		return nil, err
	}
	bootNonce := make([]byte, security.CCMNonceSize)
	keyReport := append([]byte{0x9F, 0x0A, 0x01}, aead.Seal(nil, bootNonce, networkKey, []byte{0x9F, 0x0A})...)
	out.Transcript = append(out.Transcript, []byte{0x9F, 0x09, 0x01}, keyReport)

	// Device side decrypts with its own derivation of the temp key.
	devAEAD, err := security.NewCCM(tempKeyDev)
	if err != nil {
		return nil, err
	}
	gotKey, err := devAEAD.Open(nil, bootNonce, keyReport[3:], []byte{0x9F, 0x0A})
	if err != nil {
		return nil, fmt.Errorf("device: S2 pairing: network key transfer failed: %w", err)
	}

	// 8. Verification handshake.
	out.Transcript = append(out.Transcript, []byte{0x9F, 0x0B}, []byte{0x9F, 0x0C, 0x01})

	// 9. SPAN entropy exchange establishes the nonce stream.
	eiCtrl := make([]byte, security.EntropySize)
	eiDev := make([]byte, security.EntropySize)
	if _, err := io.ReadFull(rng, eiCtrl); err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	if _, err := io.ReadFull(rng, eiDev); err != nil {
		return nil, fmt.Errorf("device: S2 pairing: %w", err)
	}
	out.Transcript = append(out.Transcript,
		append([]byte{0x9F, 0x02, 0x01, 0x01}, eiDev...)) // NONCE_REPORT with SOS

	out.ControllerSession, err = security.NewSession(networkKey, eiCtrl, eiDev)
	if err != nil {
		return nil, err
	}
	out.DeviceSession, err = security.NewSession(gotKey, eiCtrl, eiDev)
	if err != nil {
		return nil, err
	}
	return out, nil
}
