// Package fleet schedules many independent fuzzing campaigns across a
// bounded worker pool.
//
// The paper's evaluation is dozens of self-contained 24-hour campaigns
// (7 controllers × 3 strategies × multi-trial repeats); each one runs on
// its own testbed.Testbed with a private simulated clock and radio medium,
// so nothing stops them from running concurrently. The fleet is the
// orchestration layer that exploits that: it accepts a slice of Job specs,
// executes them across Config.Workers goroutines, and returns results in
// deterministic job order regardless of completion order.
//
// Isolation is the core invariant. The fleet — not the caller — constructs
// a fresh testbed for every attempt, so campaigns share no mutable state
// and a retry never observes residue (oracle events, controller memory,
// radio sniffer buffers) from a failed predecessor. A campaign that panics
// is recovered and recorded, not propagated: one bad campaign cannot abort
// a table. Failed attempts are retried with fresh testbed state up to
// Config.MaxAttempts before the job is reported failed in its Result.
//
// Observability: Progress returns an atomic snapshot of the pool (jobs
// queued/running/done/failed, live finding and packet counts, simulated
// versus wall-clock throughput), and Config.OnProgress delivers the same
// snapshot to a callback on every state change — cmd/experiments renders
// it as a live ticker.
//
// # Concurrency and pooling
//
// Run is safe to call from multiple goroutines on distinct Fleet values;
// one Fleet runs one job slice at a time. Worker goroutines share nothing
// campaign-visible: each attempt gets a fresh testbed, private SimClock,
// medium, and oracle bus. What workers do share are the process-wide
// object pools (protocol frame/buffer pools, security cipher-context
// cache and crypto scratch pool) — all safe for concurrent use and
// invisible to results, which is why tables render byte-identically for
// any worker count. Progress counters are atomic telemetry gauges;
// OnProgress callbacks run on worker goroutines and must be fast and
// thread-safe.
package fleet

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"zcover/internal/chaos"
	"zcover/internal/obs"
	"zcover/internal/telemetry"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// DefaultMaxAttempts is how many times a job runs (first try plus retries)
// before the fleet reports it failed.
const DefaultMaxAttempts = 2

// Job is one self-contained campaign spec: which controller to build a
// testbed around and how to fuzz it. The zero strategy with Baseline set
// runs the VFuzz comparison engine instead of the ZCover pipeline.
type Job struct {
	// Name labels the job in results and progress ("table5/D3/zcover").
	// Optional; a label is derived from the other fields when empty.
	Name string
	// Device is the testbed index ("D1".."D7").
	Device string
	// Patched selects the §V-B updated-specification firmware.
	Patched bool
	// Strategy is the ZCover configuration (ignored for Baseline jobs).
	Strategy fuzz.Strategy
	// Baseline runs the VFuzz baseline instead of the ZCover pipeline.
	Baseline bool
	// FuzzMode selects the engine for ZCover jobs: "" is the generational
	// Algorithm 1 engine, ModeCoverage the coverage-guided one.
	FuzzMode string
	// Frames, when positive, caps the campaign's injected test frames —
	// the equal-frame-budget knob for engine comparisons.
	Frames int
	// Seed drives both the testbed assembly (S2 pairing entropy) and the
	// campaign's mutation stream, exactly as the sequential drivers did.
	Seed int64
	// Budget is the fuzzing duration (simulated time).
	Budget time.Duration
	// ChaosProfile, when non-empty, installs a fault injector on the job's
	// testbed (chaos.ParseProfile syntax, e.g. "burst" or
	// "lossy:corrupt=0.1"). Empty or "none" keeps the channel clean and the
	// campaign byte-identical to pre-chaos builds.
	ChaosProfile string
	// ChaosSeed seeds the injector's fault streams, independent of Seed so
	// the same campaign can be replayed under different impairment draws.
	ChaosSeed int64
}

// ModeCoverage selects the coverage-guided engine for a job.
const ModeCoverage = "coverage"

// Label returns Name, or a derived "device/strategy" label.
func (j Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	label := j.Device + "/" + string(j.Strategy)
	if j.Baseline {
		label = j.Device + "/vfuzz"
	}
	if j.FuzzMode == ModeCoverage {
		label = j.Device + "/covfuzz"
	}
	if j.ChaosProfile != "" {
		label += "+" + j.ChaosProfile
	}
	return label
}

// build assembles the job's private testbed. Every attempt gets a fresh
// one, so campaigns share nothing and retries start clean — including the
// fault injector, whose burst/partition state is rebuilt from ChaosSeed.
func (j Job) build() (*testbed.Testbed, error) {
	var tb *testbed.Testbed
	var err error
	if j.Patched {
		tb, err = testbed.NewPatched(j.Device, j.Seed)
	} else {
		tb, err = testbed.New(j.Device, j.Seed)
	}
	if err != nil {
		return nil, err
	}
	if j.ChaosProfile != "" {
		p, perr := chaos.ParseProfile(j.ChaosProfile)
		if perr != nil {
			return nil, fmt.Errorf("fleet: job %s: %w", j.Label(), perr)
		}
		tb.ApplyChaos(p, j.ChaosSeed)
	}
	return tb, nil
}

// Runner executes one job attempt against a freshly built testbed and
// returns the campaign outcome. The runner must confine itself to the
// given testbed; obs reports live metrics into the pool. harness.RunFleetJob
// is the canonical runner for the experiment drivers.
type Runner[T any] func(tb *testbed.Testbed, job Job, obs *Observer) (T, error)

// Config tunes the pool.
type Config struct {
	// Workers bounds campaign concurrency. Zero or negative means
	// GOMAXPROCS. Workers=1 is the sequential fallback: byte-identical to
	// running the jobs in a plain loop.
	//
	// Campaigns are CPU-bound (the simulation never blocks on real I/O
	// apart from the serialized checkpoint append), so worker goroutines
	// beyond GOMAXPROCS cannot add throughput — they only add scheduler
	// churn and cache interleaving. The 1→8 worker sweep in
	// BENCH_scaling.json measured that oversubscription tax at ~7% sim-rate
	// on a 1-P host, so Run caps the pool at GOMAXPROCS. Results are
	// byte-identical either way; set AllowOversubscription to measure the
	// uncapped behavior.
	Workers int
	// AllowOversubscription disables the GOMAXPROCS worker cap. The
	// scaling sweep uses it to quantify the overhead the cap removes.
	AllowOversubscription bool
	// MaxAttempts is how many times a failing job is run (each attempt on
	// a fresh testbed) before it is reported failed. Zero or negative
	// means DefaultMaxAttempts.
	MaxAttempts int
	// OnProgress, if set, receives a Progress snapshot after every state
	// change (job start/finish, retry, each new finding). Calls are
	// serialized by the fleet; the callback must not block for long.
	OnProgress func(Progress)
	// Telemetry is the metrics registry the fleet publishes its live state
	// to (the fleet_* gauges). Nil gives the fleet a private registry;
	// pass telemetry.Default() to fold fleet state into the process-wide
	// export. Progress snapshots stay exact either way — each fleet tracks
	// deltas from the registry values it observed at construction.
	Telemetry *telemetry.Registry
	// Tracer, if set, emits one JSONL span per job (wall-clock times, with
	// device/strategy/attempt attributes) — the fleet half of the trace
	// stream the pipeline phases also write to.
	Tracer *telemetry.Tracer
	// Checkpoint, if set, asks the campaign layer to journal completed
	// jobs crash-safely and to resume/shard/merge across runs. The fleet
	// carries the spec but does not interpret it (see CheckpointSpec);
	// callers install the journal through WithResume.
	Checkpoint *CheckpointSpec
	// Timeline, if set, records per-worker phase intervals (build, the
	// pipeline phases, persist, idle) for the scaling report and the
	// /timeline endpoint. Nil disables recording at zero cost; attaching
	// one never changes campaign results.
	Timeline *obs.Timeline
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	return c
}

// Result is one job's outcome. Results are returned in job order.
type Result[T any] struct {
	// Job echoes the spec.
	Job Job
	// Value is the runner's return value (zero when Err is non-nil).
	Value T
	// Err is nil on success; otherwise the final attempt's error. A
	// recovered panic surfaces as a *PanicError in the chain.
	Err error
	// Attempts is how many times the job ran (1 = first try succeeded).
	Attempts int
	// Cached marks a job whose Value was served from a checkpoint
	// journal instead of being executed (Attempts is 0 for such jobs).
	Cached bool
	// AttemptErrors records each failed attempt's error text, in order.
	AttemptErrors []string
	// Wall is the real time the job spent executing (all attempts).
	Wall time.Duration
}

// PanicError wraps a panic recovered from a campaign so one bad run cannot
// abort the whole table.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements error. The stack is kept out of the message so error
// strings stay comparable across runs; read Stack for forensics.
func (e *PanicError) Error() string {
	return fmt.Sprintf("campaign panicked: %v", e.Value)
}

// Fleet executes a fixed job list across a worker pool. Construct with
// New, start with Run, and poll Progress from any goroutine while running.
type Fleet[T any] struct {
	jobs   []Job
	runner Runner[T]
	cfg    Config

	c counters

	// progressMu serializes OnProgress callbacks.
	progressMu sync.Mutex

	// cached/persist are the checkpoint-resume hooks (WithResume):
	// cached short-circuits a job whose outcome is already journaled;
	// persist makes a freshly completed outcome durable. persistMu
	// serializes persist so journal appends never interleave.
	cached    func(i int, job Job) (T, bool)
	persist   func(i int, job Job, res Result[T]) error
	persistMu sync.Mutex
}

// New builds a fleet over the given jobs. Run executes it.
func New[T any](jobs []Job, runner Runner[T], cfg Config) *Fleet[T] {
	if runner == nil {
		panic("fleet: nil runner")
	}
	f := &Fleet[T]{jobs: jobs, runner: runner, cfg: cfg.withDefaults()}
	f.c.bind(f.cfg.Telemetry, len(jobs))
	return f
}

// Run executes every job and returns one Result per job, index-aligned
// with the input slice regardless of completion order. Run blocks until
// the whole fleet drains; call it once.
func Run[T any](jobs []Job, runner Runner[T], cfg Config) []Result[T] {
	return New(jobs, runner, cfg).Run()
}

// WithResume installs checkpoint-resume hooks and returns f. cached is
// consulted before a job executes: a hit yields a Result with Cached set
// and zero attempts, without building a testbed. persist is invoked once
// per successfully executed (non-cached) job, serialized across workers;
// a persist error fails the job — a checkpointed campaign whose journal
// cannot be written must not pretend its work is durable.
func (f *Fleet[T]) WithResume(cached func(i int, job Job) (T, bool), persist func(i int, job Job, res Result[T]) error) *Fleet[T] {
	f.cached = cached
	f.persist = persist
	return f
}

// EffectiveWorkers returns the worker-goroutine count Run will actually
// use for a fleet of `jobs` jobs: Workers clamped to the job count and —
// unless AllowOversubscription — to GOMAXPROCS, since extra goroutines on
// a CPU-bound pool cost sim-rate instead of adding it.
func (c Config) EffectiveWorkers(jobs int) int {
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if !c.AllowOversubscription {
		if p := runtime.GOMAXPROCS(0); workers > p {
			workers = p
		}
	}
	if workers > jobs {
		workers = jobs
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Run executes the fleet. See the package-level Run.
func (f *Fleet[T]) Run() []Result[T] {
	f.c.start(time.Now())
	results := make([]Result[T], len(f.jobs))
	workers := f.cfg.EffectiveWorkers(len(f.jobs))

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			f.cfg.Timeline.StartWorker(w)
			defer f.cfg.Timeline.StopWorker(w)
			// Each results slot is written by exactly one worker, so the
			// slice needs no lock; wg.Wait orders the writes before reads.
			for i := range idx {
				results[i] = f.execute(w, i, f.jobs[i])
				f.cfg.Timeline.Phase(w, "", obs.PhaseIdle)
			}
		}(w)
	}
	for i := range f.jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	f.notify()
	return results
}

// Progress returns an atomic snapshot of the pool. Safe to call from any
// goroutine, including concurrently with Run.
func (f *Fleet[T]) Progress() Progress {
	return f.c.snapshot()
}

// notify delivers a snapshot to the OnProgress callback, serialized.
func (f *Fleet[T]) notify() {
	if f.cfg.OnProgress == nil {
		return
	}
	f.progressMu.Lock()
	defer f.progressMu.Unlock()
	f.cfg.OnProgress(f.c.snapshot())
}

// execute runs one job to completion: up to MaxAttempts attempts, each on
// a fresh testbed, with panics recovered and live metrics rolled back for
// attempts that fail. A job whose outcome is already journaled (the
// WithResume cached hook) is served from the checkpoint without running.
// w is the worker lane for timeline attribution.
func (f *Fleet[T]) execute(w, i int, job Job) Result[T] {
	if f.cached != nil {
		if val, ok := f.cached(i, job); ok {
			f.c.queued.Add(-1)
			f.c.done.Add(1)
			f.notify()
			return Result[T]{Job: job, Value: val, Cached: true}
		}
	}
	f.c.queued.Add(-1)
	f.c.running.Add(1)
	f.notify()

	res := Result[T]{Job: job}
	span := f.cfg.Tracer.Span(job.Label(), "job", map[string]string{
		"device": job.Device, "strategy": string(job.Strategy),
	})
	wallStart := time.Now()
	for attempt := 1; attempt <= f.cfg.MaxAttempts; attempt++ {
		res.Attempts = attempt
		ob := &Observer{c: &f.c, onChange: f.notify,
			timeline: f.cfg.Timeline, worker: w, job: job.Label()}
		val, err := f.attempt(w, job, ob)
		if err == nil {
			res.Value, res.Err = val, nil
			break
		}
		// Undo the failed attempt's live contributions so the ticker
		// reflects only completed or in-flight work, then retry clean.
		ob.rollback()
		res.AttemptErrors = append(res.AttemptErrors, err.Error())
		res.Err = fmt.Errorf("fleet: job %s: attempt %d/%d: %w",
			job.Label(), attempt, f.cfg.MaxAttempts, err)
		if attempt < f.cfg.MaxAttempts {
			f.c.retried.Add(1)
			f.notify()
		}
	}
	res.Wall = time.Since(wallStart)
	span.SetAttr("attempts", strconv.Itoa(res.Attempts))
	if res.Err != nil {
		span.SetAttr("outcome", "failed")
	} else {
		span.SetAttr("outcome", "done")
	}
	_ = span.End()

	if res.Err == nil && f.persist != nil {
		// Persist is serialized across workers, so with a deep queue this
		// section shows up on the timeline as contention — phase-attribute
		// the wait plus the fsync'd append together.
		f.cfg.Timeline.Phase(w, job.Label(), obs.PhasePersist)
		f.persistMu.Lock()
		err := f.persist(i, job, res)
		f.persistMu.Unlock()
		if err != nil {
			res.Err = fmt.Errorf("fleet: job %s: checkpointing result: %w", job.Label(), err)
		}
	}

	f.c.running.Add(-1)
	if res.Err != nil {
		f.c.failed.Add(1)
	} else {
		f.c.done.Add(1)
	}
	f.notify()
	return res
}

// attempt builds a fresh testbed and runs the job once, converting a
// panic anywhere in the campaign stack into a *PanicError.
func (f *Fleet[T]) attempt(w int, job Job, ob *Observer) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	f.cfg.Timeline.Phase(w, job.Label(), obs.PhaseBuild)
	tb, err := job.build()
	if err != nil {
		return val, err
	}
	// Runners that report pipeline phases (Observer.Phase) refine this;
	// anything else is attributed to the catch-all run phase.
	f.cfg.Timeline.Phase(w, job.Label(), obs.PhaseRun)
	return f.runner(tb, job, ob)
}

// FirstError returns the first failed job's error in job order, or nil if
// every job succeeded. Drivers that want all-or-nothing semantics (every
// table needs every row) use it to fail deterministically.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}
