package controller

import (
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/coverage"
	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
	"zcover/internal/vtime"
)

// Stats aggregates a controller's traffic counters.
type Stats struct {
	// AppFrames counts application frames dispatched.
	AppFrames int
	// Replies counts application responses sent.
	Replies int
	// DroppedBusy counts frames dropped while the controller was hung.
	DroppedBusy int
	// SecureFrames counts S2-decapsulated application payloads.
	SecureFrames int
}

// Controller is one emulated testbed controller.
type Controller struct {
	node    *device.Node
	clock   *vtime.SimClock
	profile Profile
	bus     *oracle.Bus

	table        *NodeTable
	initialTable *NodeTable
	// wakeupStore is the separate NVM area holding per-node wake-up
	// configuration. It is written at inclusion time and — true to the
	// sloppy firmware the paper examines — NOT cleaned up when a node
	// table entry disappears.
	wakeupStore        map[protocol.NodeID]time.Duration
	initialWakeupStore map[protocol.NodeID]time.Duration
	host               *Host
	busyUntil          time.Time

	sessions map[protocol.NodeID]*security.Session
	hidden   map[cmdclass.ClassID]bool // implemented but not in the NIF
	nifSeq   byte
	stats    Stats

	// cov, when non-nil, receives behavioral-coverage observations from
	// the dispatch and Serial API paths (SetCoverage). Nil-guarded at
	// every call site so the disabled hot path pays one pointer compare.
	cov *coverage.Collector

	inclusionUntil time.Time
	exclusionUntil time.Time
	lastIncluded   protocol.NodeID

	// associations holds the association groups (group 1 is the lifeline).
	associations map[byte][]protocol.NodeID
}

// New attaches a controller with the given profile to the medium. The
// oracle bus receives anomaly events; it must not be nil.
func New(m *radio.Medium, region radio.Region, profile Profile, bus *oracle.Bus) *Controller {
	if bus == nil {
		panic("controller: New requires an oracle bus")
	}
	c := &Controller{
		clock:        m.Clock(),
		profile:      profile,
		bus:          bus,
		table:        NewNodeTable(),
		wakeupStore:  make(map[protocol.NodeID]time.Duration),
		host:         NewHost(profile.Host),
		sessions:     make(map[protocol.NodeID]*security.Session),
		hidden:       hiddenImplemented(profile),
		associations: map[byte][]protocol.NodeID{1: nil},
	}
	c.node = device.NewNode(device.Config{
		Medium: m, Region: region,
		Home: profile.Home, ID: 0x01, Name: profile.Index,
	})
	c.node.Gate = c.alive
	c.node.Handler = c.dispatch
	c.node.RawHook = c.macBugCheck

	// The controller itself is entry 1 of its own device table.
	c.table.Put(NodeRecord{
		ID: 0x01, Basic: device.BasicTypeStaticController,
		Generic: device.GenericTypeController, Specific: 0x01,
		Capability: device.CapListening | device.CapRouting,
		Classes:    profile.Listed,
	})
	c.initialTable = c.table.Snapshot()
	return c
}

// hiddenImplemented returns the classes the firmware implements without
// listing them in the NIF — the paper's "unlisted but supported"
// properties. Legacy controllers additionally implement (but do not list)
// the two classes missing from their NIF.
func hiddenImplemented(p Profile) map[cmdclass.ClassID]bool {
	out := map[cmdclass.ClassID]bool{
		cmdclass.ClassZWaveProtocol:   true,
		cmdclass.ClassProprietaryMfg:  true,
		cmdclass.ClassConfiguration:   true,
		cmdclass.ClassWakeUp:          true,
		cmdclass.ClassNetworkMgmtIncl: true,
		0x4D:                          true, // NETWORK_MANAGEMENT_BASIC
		0x52:                          true, // NETWORK_MANAGEMENT_PROXY
		0x54:                          true, // NETWORK_MANAGEMENT_PRIMARY
		0x67:                          true, // NM_INSTALLATION_MAINTENANCE
		cmdclass.ClassIndicator:       true,
	}
	listed := make(map[cmdclass.ClassID]bool, len(p.Listed))
	for _, c := range p.Listed {
		listed[c] = true
	}
	if !listed[cmdclass.ClassZWavePlusInfo] {
		out[cmdclass.ClassZWavePlusInfo] = true
	}
	if !listed[cmdclass.ClassSupervision] {
		out[cmdclass.ClassSupervision] = true
	}
	return out
}

// SetCoverage attaches (or, with nil, detaches) a behavioral-coverage
// collector. The collector is not thread-safe; attach one collector per
// campaign, on the campaign's own testbed, for the duration of its
// fuzzing phase.
func (c *Controller) SetCoverage(cov *coverage.Collector) { c.cov = cov }

// Node exposes the controller's radio node.
func (c *Controller) Node() *device.Node { return c.node }

// Profile reports the device profile.
func (c *Controller) Profile() Profile { return c.profile }

// Table exposes the controller's node table (the oracle and testbed setup
// read it; the fuzzers never do).
func (c *Controller) Table() *NodeTable { return c.table }

// Host exposes the attached host software.
func (c *Controller) Host() *Host { return c.host }

// Stats reports traffic counters.
func (c *Controller) Stats() Stats { return c.stats }

// Busy reports whether the controller is currently hung.
func (c *Controller) Busy() bool { return c.clock.Now().Before(c.busyUntil) }

// alive is the node gate: a hung controller neither acks nor dispatches.
func (c *Controller) alive() bool {
	if c.Busy() {
		c.stats.DroppedBusy++
		return false
	}
	return true
}

// IncludeNode registers a slave in the controller's table (testbed setup:
// the device has been included in the network).
func (c *Controller) IncludeNode(r NodeRecord) {
	c.table.Put(r)
	if r.WakeupInterval > 0 {
		c.wakeupStore[r.ID] = r.WakeupInterval
	}
	c.initialTable = c.table.Snapshot()
	c.initialWakeupStore = copyWakeupStore(c.wakeupStore)
}

// copyWakeupStore duplicates the wake-up NVM area.
func copyWakeupStore(in map[protocol.NodeID]time.Duration) map[protocol.NodeID]time.Duration {
	out := make(map[protocol.NodeID]time.Duration, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// WakeupInterval reads the stored wake-up configuration for a node.
func (c *Controller) WakeupInterval(id protocol.NodeID) time.Duration {
	return c.wakeupStore[id]
}

// InstallSession installs the controller-side S2 session for a paired node.
func (c *Controller) InstallSession(id protocol.NodeID, s *security.Session) {
	c.sessions[id] = s
}

// Session returns the S2 session for a node, if paired.
func (c *Controller) Session(id protocol.NodeID) (*security.Session, bool) {
	s, ok := c.sessions[id]
	return s, ok
}

// Supports reports whether the firmware processes the given class at all
// (listed or hidden).
func (c *Controller) Supports(id cmdclass.ClassID) bool {
	if c.hidden[id] {
		return true
	}
	for _, l := range c.profile.Listed {
		if l == id {
			return true
		}
	}
	return false
}

// Reset restores the controller to its post-inclusion state: node table,
// host software, and hang timers. Used between fuzzing trials.
func (c *Controller) Reset() {
	c.associations = map[byte][]protocol.NodeID{1: nil}
	c.table.Restore(c.initialTable)
	c.wakeupStore = copyWakeupStore(c.initialWakeupStore)
	c.host.Restart()
	c.busyUntil = time.Time{}
	c.stats = Stats{}
}

// identity builds the controller's NIF identity from its profile.
func (c *Controller) identity() device.Identity {
	return device.Identity{
		Basic:      device.BasicTypeStaticController,
		Generic:    device.GenericTypeController,
		Specific:   0x01,
		Capability: device.CapListening | device.CapRouting,
		Security:   device.SecS0 | device.SecS2,
		Classes:    c.profile.Listed,
	}
}

// Associations reports the members of an association group.
func (c *Controller) Associations(group byte) []protocol.NodeID {
	return append([]protocol.NodeID(nil), c.associations[group]...)
}

// associate adds a node to a group (duplicates ignored, groups 1-5 only).
func (c *Controller) associate(group byte, id protocol.NodeID) {
	if group < 1 || group > 5 || !id.IsUnicast() {
		return
	}
	for _, m := range c.associations[group] {
		if m == id {
			return
		}
	}
	c.associations[group] = append(c.associations[group], id)
}

// disassociate removes a node from a group (all groups when group is 0).
func (c *Controller) disassociate(group byte, id protocol.NodeID) {
	groups := []byte{group}
	if group == 0 {
		groups = groups[:0]
		for g := range c.associations {
			groups = append(groups, g)
		}
	}
	for _, g := range groups {
		members := c.associations[g][:0]
		for _, m := range c.associations[g] {
			if m != id {
				members = append(members, m)
			}
		}
		c.associations[g] = members
	}
}

// aad binds MAC header fields into S2 tags (must match the slave side).
func (c *Controller) aad(src, dst protocol.NodeID) []byte {
	h := c.profile.Home
	return []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), byte(src), byte(dst)}
}

// dispatch is the controller's application-layer receive path.
func (c *Controller) dispatch(f *protocol.Frame) {
	payload := f.Payload
	if len(payload) == 0 {
		return
	}
	c.stats.AppFrames++

	class := cmdclass.ClassID(payload[0])
	if class == 0x00 { // NOP: liveness probe, MAC ack already sent
		return
	}

	// S2 traffic from a paired node is decapsulated and consumed.
	if security.IsEncapsulation(payload) {
		if s, ok := c.sessions[f.Src]; ok {
			plain, err := s.Decapsulate(security.FlowBtoA, c.aad(f.Src, f.Dst), payload)
			if err == nil {
				c.stats.SecureFrames++
				if c.cov != nil && len(plain) >= 2 {
					c.cov.OnDispatch(plain[0], plain[1], 0, true)
				}
				c.consumeSecured(f.Src, plain)
				return
			}
		}
		// Fall through: an unparseable 0x9F frame still reaches the S2
		// command parser below (NONCE_GET etc. are clear-text commands).
	}

	c.dispatchPayload(f.Src, payload, 0)
}

// consumeSecured processes an S2-decapsulated payload from a paired slave
// (status reports and the like).
func (c *Controller) consumeSecured(src protocol.NodeID, plain []byte) {
	// Reports are consumed silently; the hub forwards them to the cloud,
	// which the simulation does not model beyond host health.
	_ = src
	_ = plain
}

// reply sends an application payload back and counts it.
func (c *Controller) reply(dst protocol.NodeID, payload []byte) {
	c.stats.Replies++
	_ = c.node.Send(dst, payload)
}

// hang wedges the controller for d and emits the matching oracle event.
func (c *Controller) hang(d time.Duration, class cmdclass.ClassID, cmd cmdclass.CommandID, detail string) {
	until := c.clock.Now().Add(d)
	if until.After(c.busyUntil) {
		c.busyUntil = until
	}
	c.emit(oracle.ServiceHang, class, cmd, d, detail)
}

// emit publishes an anomaly event on the oracle bus.
func (c *Controller) emit(kind oracle.Kind, class cmdclass.ClassID, cmd cmdclass.CommandID, d time.Duration, detail string) {
	c.bus.Emit(oracle.Event{
		At:       c.clock.Now(),
		Device:   c.profile.Index,
		Kind:     kind,
		Class:    byte(class),
		Cmd:      byte(cmd),
		Duration: d,
		Detail:   detail,
	})
}
