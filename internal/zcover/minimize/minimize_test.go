package minimize_test

import (
	"bytes"
	"testing"
	"time"

	"zcover/internal/harness"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/minimize"
)

func TestMinimizeTrimsTrailingJunk(t *testing.T) {
	m := minimize.New("D1", 71)
	// Bug 09 fires on any 0x7A/0x01 with trailing bytes; a single junk
	// byte suffices, and it can be zero.
	res, err := m.Minimize([]byte{0x7A, 0x01, 0xAA, 0xBB, 0xCC, 0xDD}, "service-hang/0x7A/0x01")
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x7A, 0x01, 0x00}; !bytes.Equal(res.Minimal, want) {
		t.Fatalf("minimal = % X, want % X", res.Minimal, want)
	}
	if res.Saved() != 3 {
		t.Fatalf("saved = %d", res.Saved())
	}
}

func TestMinimizePreservesEssentialStructure(t *testing.T) {
	m := minimize.New("D1", 72)
	// Bug 01 needs the node ID and a conflicting non-zero generic type;
	// minimisation may trim the tail behind the generic byte but must not
	// zero the two load-bearing parameters.
	payload := []byte{0x01, 0x0D, 0x02, 0x80, 0x40, 0x20, 0x04, 0x10, 0x01}
	res, err := m.Minimize(payload, "node-tampered/0x01/0x0D")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Minimal) != 9 { // fixed 7-parameter layout is required
		t.Fatalf("minimal = % X", res.Minimal)
	}
	if res.Minimal[2] != 0x02 {
		t.Fatal("node ID was zeroed away")
	}
	if res.Minimal[7] == 0x00 {
		t.Fatal("generic type was zeroed away")
	}
	// Everything non-essential is zeroed.
	for _, i := range []int{3, 4, 5, 6, 8} {
		if res.Minimal[i] != 0x00 {
			t.Fatalf("byte %d not zeroed: % X", i, res.Minimal)
		}
	}
}

func TestMinimizeBoundaryTrigger(t *testing.T) {
	m := minimize.New("D4", 73)
	// Bug 10 needs a non-zero unsupported class value: zeroing must fail,
	// trimming must stop at one parameter.
	res, err := m.Minimize([]byte{0x86, 0x13, 0xE0, 0x11, 0x22}, "service-hang/0x86/0x13")
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{0x86, 0x13, 0xE0}; !bytes.Equal(res.Minimal, want) {
		t.Fatalf("minimal = % X, want % X", res.Minimal, want)
	}
}

func TestMinimizeRejectsNonReproducingPayload(t *testing.T) {
	m := minimize.New("D1", 74)
	if _, err := m.Minimize([]byte{0x20, 0x02}, "service-hang/0x86/0x13"); err == nil {
		t.Fatal("accepted a payload that does not reproduce")
	}
}

func TestMinimizeCampaignFindings(t *testing.T) {
	tb, err := testbed.New("D1", 75)
	if err != nil {
		t.Fatal(err)
	}
	c, err := harness.RunZCover(tb, fuzz.StrategyFull, 30*time.Minute, 75)
	if err != nil {
		t.Fatal(err)
	}
	m := minimize.New("D1", 76)
	minimised := 0
	for _, f := range c.Fuzz.Findings {
		res, err := m.Minimize(f.TriggerPayload, f.Signature)
		if err != nil {
			// Rogue insertion is state-dependent (see the PoC tests);
			// everything else must minimise.
			if f.Signature == "rogue-node-added/0x01/0x0D" {
				continue
			}
			t.Errorf("%s: %v", f.Signature, err)
			continue
		}
		minimised++
		if len(res.Minimal) > len(f.TriggerPayload) {
			t.Errorf("%s: minimal longer than original", f.Signature)
		}
	}
	if minimised < len(c.Fuzz.Findings)-1 {
		t.Fatalf("minimised only %d of %d findings", minimised, len(c.Fuzz.Findings))
	}
}
