package device

import (
	"bytes"
	"math/rand"
	"testing"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
	"zcover/internal/vtime"
)

// s0Pair wires two nodes with S0 channels under one network key.
func s0Pair(t *testing.T) (*S0Channel, *S0Channel, *radio.Medium) {
	t.Helper()
	m := radio.NewMedium(vtime.NewSimClock())
	rng := rand.New(rand.NewSource(13))
	key, err := security.NewNetworkKey(rng)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id protocol.NodeID, name string) (*Node, *S0Channel) {
		n := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: id, Name: name})
		ch, err := NewS0Channel(n, key, rng)
		if err != nil {
			t.Fatal(err)
		}
		n.Handler = func(f *protocol.Frame) { ch.HandleFrame(f) }
		return n, ch
	}
	_, a := mk(0x01, "s0-hub")
	_, b := mk(0x05, "s0-sensor")
	return a, b, m
}

func TestS0ChannelRoundTripOverTheAir(t *testing.T) {
	hub, sensor, _ := s0Pair(t)
	msg := []byte{0x30, 0x03, 0xFF} // SENSOR_BINARY REPORT triggered
	if err := sensor.SendSecured(0x01, msg); err != nil {
		t.Fatal(err)
	}
	got := hub.Received()
	if len(got) != 1 || !bytes.Equal(got[0], msg) {
		t.Fatalf("received %v", got)
	}
	_ = sensor
}

func TestS0ChannelBothDirections(t *testing.T) {
	hub, sensor, _ := s0Pair(t)
	if err := hub.SendSecured(0x05, []byte{0x25, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if got := sensor.Received(); len(got) != 1 || got[0][0] != 0x25 {
		t.Fatalf("sensor received %v", got)
	}
	if err := sensor.SendSecured(0x01, []byte{0x25, 0x03, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if got := hub.Received(); len(got) != 1 {
		t.Fatalf("hub received %v", got)
	}
}

func TestS0ChannelRejectsReplayedNonce(t *testing.T) {
	hub, sensor, m := s0Pair(t)
	// Capture the encapsulation frame off the air and replay it.
	var captured []byte
	sniffer := m.Attach("sniffer", radio.RegionUS)
	sniffer.SetReceiver(func(c radio.Capture) {
		if f, err := protocol.Decode(c.Raw, protocol.ChecksumCS8); err == nil &&
			len(f.Payload) > 2 && f.Payload[0] == 0x98 && f.Payload[1] == 0x81 {
			captured = append([]byte{}, c.Raw...)
		}
	})
	if err := sensor.SendSecured(0x01, []byte{0x30, 0x03, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(hub.Received()) != 1 || captured == nil {
		t.Fatal("setup failed")
	}
	// Replay: the receiver nonce was single-use, so the replay is dropped.
	attacker := m.Attach("attacker", radio.RegionUS)
	if err := attacker.Transmit(captured); err != nil {
		t.Fatal(err)
	}
	if got := hub.Received(); len(got) != 0 {
		t.Fatalf("replay accepted: %v", got)
	}
}

func TestS0ChannelFailsWithoutPeer(t *testing.T) {
	m := radio.NewMedium(vtime.NewSimClock())
	rng := rand.New(rand.NewSource(14))
	key, _ := security.NewNetworkKey(rng)
	n := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 1, Name: "lonely"})
	ch, err := NewS0Channel(n, key, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.SendSecured(0x09, []byte{0x20, 0x01, 0xFF}); err == nil {
		t.Fatal("secured send succeeded with no peer on the air")
	}
}

// The weakness demonstration end to end: an eavesdropper that captured an
// S0 *inclusion* can decrypt every later message. The inclusion key
// transfer is protected only by the fixed all-zero temporary key, so the
// network key is effectively public to anyone sniffing at join time.
func TestS0SnifferDecryptsTrafficAfterKeyCapture(t *testing.T) {
	hub, sensor, m := s0Pair(t)

	// Inclusion time: the attacker captures the key transfer and recovers
	// the network key with the known temporary key.
	rng := rand.New(rand.NewSource(15))
	netKey, _ := security.NewNetworkKey(rng)
	sn, _ := security.NewS0Nonce(rng)
	rn, _ := security.NewS0Nonce(rng)
	transfer, err := security.S0EncryptNetworkKeyTransfer(netKey, sn, rn)
	if err != nil {
		t.Fatal(err)
	}
	stolen, err := security.S0RecoverNetworkKeyFromCapture(transfer, rn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stolen, netKey) {
		t.Fatal("key recovery failed")
	}

	// Runtime: the sniffer watches one protected exchange. Both nonce
	// halves are visible on the air — the receiver nonce travels in the
	// clear-text NONCE_REPORT and the sender nonce rides in the
	// encapsulation header — so the captured key decrypts everything.
	_ = hub
	var sniffedNonce, sniffedEncap []byte
	var src, dst protocol.NodeID
	sniffer := m.Attach("s0-sniffer", radio.RegionUS)
	sniffer.SetReceiver(func(c radio.Capture) {
		f, err := protocol.Decode(c.Raw, protocol.ChecksumCS8)
		if err != nil || len(f.Payload) < 2 || f.Payload[0] != 0x98 {
			return
		}
		switch f.Payload[1] {
		case 0x80: // NONCE_REPORT
			sniffedNonce = append([]byte{}, f.Payload[2:]...)
		case 0x81: // MESSAGE_ENCAPSULATION
			sniffedEncap = append([]byte{}, f.Payload...)
			src, dst = f.Src, f.Dst
		}
	})

	secret := []byte{0x62, 0x01, 0x00} // "unlock the door"
	if err := sensor.SendSecured(0x01, secret); err != nil {
		t.Fatal(err)
	}
	if sniffedNonce == nil || sniffedEncap == nil {
		t.Fatal("sniffer missed the exchange")
	}

	// The channels in this test run under a different random key, so use
	// the channel's own key material to stand in for the stolen one: what
	// matters is that key + sniffed frames = plaintext.
	plain, err := security.S0Decapsulate(sensor.keys, sniffedNonce,
		[]byte{0x81, byte(src), byte(dst)}, sniffedEncap)
	if err != nil {
		t.Fatalf("sniffer with the captured key could not decrypt: %v", err)
	}
	if !bytes.Equal(plain, secret) {
		t.Fatalf("decrypted %x, want %x", plain, secret)
	}
}
