package cmdclass

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadEmbeddedSpec(t *testing.T) {
	reg, err := Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if reg.Release() != "2023B" {
		t.Errorf("Release = %q, want 2023B", reg.Release())
	}
	// The paper: "as of November 2024, [the spec] lists 122 CMDCLs".
	if got := reg.Len(); got != 122 {
		t.Errorf("spec lists %d classes, want 122", got)
	}
}

func TestLoadIsIdempotent(t *testing.T) {
	a := MustLoad()
	b := MustLoad()
	if a != b {
		t.Fatal("Load returned different registries")
	}
}

func TestControllerClusterSize(t *testing.T) {
	reg := MustLoad()
	cluster := reg.ControllerCluster()
	// 17 classes appear in a modern controller's NIF; the discovery phase
	// infers 26 more from the spec (paper §III-C1: "ZCOVER inferred 26
	// unlisted CMDCLs relevant to the controller", on top of the 17 listed).
	if got := len(cluster); got != 43 {
		t.Fatalf("controller cluster has %d classes, want 43 (17 listed + 26 unlisted)", got)
	}
	for _, c := range cluster {
		if c.Scope == ScopeSlave {
			t.Errorf("slave-scoped class %s (%s) in controller cluster", c.ID, c.Name)
		}
	}
}

func TestHiddenClassesNotInSpec(t *testing.T) {
	reg := MustLoad()
	for _, hidden := range HiddenCandidates() {
		if _, ok := reg.Get(hidden.ID); ok {
			t.Errorf("proprietary class %s must not appear in the public spec", hidden.ID)
		}
	}
	if got := len(HiddenCandidates()); got != 2 {
		t.Fatalf("hidden candidates = %d, want 2 (0x01, 0x02)", got)
	}
}

func TestHiddenClassLookup(t *testing.T) {
	proto, ok := HiddenClass(ClassZWaveProtocol)
	if !ok {
		t.Fatal("HiddenClass(0x01) not found")
	}
	if proto.Name != "ZWAVE_PROTOCOL" {
		t.Errorf("0x01 name = %q", proto.Name)
	}
	// CMD 0x0D (NEW_NODE_REGISTERED) is the vector of bugs 01-04 and 12.
	cmd, ok := proto.Command(CmdProtoNewNodeRegistered)
	if !ok {
		t.Fatal("ZWAVE_PROTOCOL lacks NEW_NODE_REGISTERED (0x0D)")
	}
	if cmd.Name != "NEW_NODE_REGISTERED" {
		t.Errorf("0x01/0x0D name = %q", cmd.Name)
	}
	if len(cmd.Params) == 0 || cmd.Params[0].Kind != ParamNodeID {
		t.Error("NEW_NODE_REGISTERED first param must be a node ID")
	}
	if _, ok := HiddenClass(0x7F); ok {
		t.Error("HiddenClass(0x7F) should not exist")
	}
}

func TestZWaveProtocolHas23Commands(t *testing.T) {
	proto, _ := HiddenClass(ClassZWaveProtocol)
	if got := len(proto.Commands); got != 23 {
		t.Errorf("ZWAVE_PROTOCOL has %d commands, want 23", got)
	}
}

func TestVersionClassMatchesPaperBugVector(t *testing.T) {
	reg := MustLoad()
	version, ok := reg.Get(ClassVersion)
	if !ok {
		t.Fatal("VERSION class missing")
	}
	// Bug 10 (CVE-2023-6641) is CMDCL 0x86, CMD 0x13.
	cmd, ok := version.Command(CmdVersionCommandClassGet)
	if !ok {
		t.Fatal("VERSION lacks COMMAND_CLASS_GET (0x13)")
	}
	if cmd.Name != "COMMAND_CLASS_GET" {
		t.Errorf("0x86/0x13 = %q", cmd.Name)
	}
	if got := len(version.Commands); got != 8 {
		t.Errorf("VERSION has %d commands, want 8", got)
	}
}

func TestBugVectorCommandsExist(t *testing.T) {
	reg := MustLoad()
	vectors := []struct {
		class ClassID
		cmd   CommandID
		name  string
	}{
		{ClassSecurity2, CmdS2NonceGet, "NONCE_GET"},                          // bug 06
		{ClassDeviceResetLocal, CmdDeviceResetNotification, "NOTIFICATION"},   // bug 07
		{ClassAssocGroupInfo, CmdAGIGroupInfoGet, "GROUP_INFO_GET"},           // bug 08
		{ClassFirmwareUpdateMD, CmdFirmwareMDGet, "MD_GET"},                   // bug 09
		{ClassAssocGroupInfo, CmdAGICommandListGet, "GROUP_COMMAND_LIST_GET"}, // bug 11
		{ClassPowerlevel, CmdPowerlevelTestNodeSet, "TEST_NODE_SET"},          // bug 13
		{ClassFirmwareUpdateMD, CmdFirmwareRequestGet, "REQUEST_GET"},         // bug 15
	}
	for _, v := range vectors {
		cls, ok := reg.Get(v.class)
		if !ok {
			t.Errorf("class %s missing", v.class)
			continue
		}
		cmd, ok := cls.Command(v.cmd)
		if !ok {
			t.Errorf("class %s lacks command %s", v.class, v.cmd)
			continue
		}
		if cmd.Name != v.name {
			t.Errorf("%s/%s = %q, want %q", v.class, v.cmd, cmd.Name, v.name)
		}
	}
}

func TestFigure5Distribution(t *testing.T) {
	reg := MustLoad()
	names := Figure5Classes()
	dist := reg.CommandDistribution(names)
	if len(dist) != len(names) {
		t.Fatalf("distribution covers %d classes, want %d", len(dist), len(names))
	}
	// The paper's Figure 5 series.
	want := []int{23, 15, 11, 10, 8, 7, 6, 6, 5, 4, 3, 2, 2, 1, 1, 0}
	if len(dist) != len(want) {
		t.Fatalf("series length %d, want %d", len(dist), len(want))
	}
	for i, d := range dist {
		if d.Commands != want[i] {
			t.Errorf("%s: %d commands, want %d", d.Class, d.Commands, want[i])
		}
	}
	for i := 1; i < len(dist); i++ {
		if dist[i].Commands > dist[i-1].Commands {
			t.Errorf("series not descending at %d: %v", i, dist)
		}
	}
}

func TestPrioritizeByCommandCount(t *testing.T) {
	reg := MustLoad()
	pri := PrioritizeByCommandCount(reg.ControllerCluster())
	if len(pri) != 43 {
		t.Fatalf("prioritized list has %d classes", len(pri))
	}
	for i := 1; i < len(pri); i++ {
		if len(pri[i].Commands) > len(pri[i-1].Commands) {
			t.Fatalf("not sorted by command count at %d", i)
		}
		if len(pri[i].Commands) == len(pri[i-1].Commands) && pri[i].ID < pri[i-1].ID {
			t.Fatalf("tie not broken by ID at %d", i)
		}
	}
	// NETWORK_MANAGEMENT_INCLUSION (23 commands) must come first.
	if pri[0].ID != ClassNetworkMgmtIncl {
		t.Errorf("highest priority class = %s (%s), want 0x34", pri[0].ID, pri[0].Name)
	}
}

func TestPrioritizeDoesNotMutateInput(t *testing.T) {
	reg := MustLoad()
	in := reg.ControllerCluster()
	first := in[0]
	_ = PrioritizeByCommandCount(in)
	if in[0] != first {
		t.Fatal("PrioritizeByCommandCount reordered its input slice")
	}
}

func TestByCategoryPartitionsSpec(t *testing.T) {
	reg := MustLoad()
	total := 0
	for _, cat := range []Category{CategoryApplication, CategoryTransport, CategoryManagement, CategoryNetwork} {
		classes := reg.ByCategory(cat)
		total += len(classes)
		for _, c := range classes {
			if c.Category != cat {
				t.Errorf("class %s in wrong category bucket", c.ID)
			}
		}
	}
	if total != reg.Len() {
		t.Errorf("categories cover %d classes, registry has %d", total, reg.Len())
	}
}

func TestParseRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not xml":          "{",
		"bad class key":    `<zwave_command_classes><cmd_class key="xyz" name="A" category="application" scope="slave"/></zwave_command_classes>`,
		"bad category":     `<zwave_command_classes><cmd_class key="0x20" name="A" category="banana" scope="slave"/></zwave_command_classes>`,
		"bad scope":        `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="nobody"/></zwave_command_classes>`,
		"duplicate class":  `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"/><cmd_class key="0x20" name="B" category="application" scope="slave"/></zwave_command_classes>`,
		"bad direction":    `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="sideways"/></cmd_class></zwave_command_classes>`,
		"duplicate cmd":    `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="controlling"/><cmd key="0x01" name="Y" type="controlling"/></cmd_class></zwave_command_classes>`,
		"enum no values":   `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="controlling"><param name="P" type="enum"/></cmd></cmd_class></zwave_command_classes>`,
		"range min>max":    `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="controlling"><param name="P" type="range" min="9" max="1"/></cmd></cmd_class></zwave_command_classes>`,
		"variadic middle":  `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="controlling"><param name="P" type="variadic"/><param name="Q" type="byte"/></cmd></cmd_class></zwave_command_classes>`,
		"unknown paramtyp": `<zwave_command_classes><cmd_class key="0x20" name="A" category="application" scope="slave"><cmd key="0x01" name="X" type="controlling"><param name="P" type="float"/></cmd></cmd_class></zwave_command_classes>`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: Parse accepted invalid document", name)
		}
	}
}

func TestParamLegal(t *testing.T) {
	rangeParam := Param{Kind: ParamRange, Min: 3, Max: 9}
	for b, want := range map[byte]bool{2: false, 3: true, 9: true, 10: false} {
		if got := rangeParam.Legal(b); got != want {
			t.Errorf("range.Legal(%d) = %v, want %v", b, got, want)
		}
	}
	enumParam := Param{Kind: ParamEnum, Values: []byte{0x00, 0xFF}}
	if !enumParam.Legal(0x00) || !enumParam.Legal(0xFF) || enumParam.Legal(0x7F) {
		t.Error("enum.Legal wrong")
	}
	for _, k := range []ParamKind{ParamByte, ParamNodeID, ParamBitmask, ParamVariadic} {
		p := Param{Kind: k}
		if !p.Legal(0x00) || !p.Legal(0xFF) {
			t.Errorf("%v.Legal should accept any byte", k)
		}
	}
}

func TestCommandMinLength(t *testing.T) {
	cmd := Command{Params: []Param{
		{Kind: ParamByte}, {Kind: ParamNodeID}, {Kind: ParamVariadic},
	}}
	// CMDCL + CMD + two fixed params; variadic contributes nothing.
	if got := cmd.MinLength(); got != 4 {
		t.Fatalf("MinLength = %d, want 4", got)
	}
	if got := (Command{}).MinLength(); got != 2 {
		t.Fatalf("MinLength of bare command = %d, want 2", got)
	}
}

func TestCommandIDsSorted(t *testing.T) {
	reg := MustLoad()
	for _, c := range reg.All() {
		ids := c.CommandIDs()
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("class %s command IDs not strictly ascending: %v", c.ID, ids)
			}
		}
	}
}

func TestSecurityClassesAreTransport(t *testing.T) {
	reg := MustLoad()
	for _, id := range []ClassID{ClassSecurity0, ClassSecurity2, ClassTransportService, ClassCRC16Encap, ClassSupervision, ClassMultiCmd} {
		c, ok := reg.Get(id)
		if !ok {
			t.Fatalf("class %s missing", id)
		}
		if c.Category != CategoryTransport {
			t.Errorf("class %s category = %v, want transport", id, c.Category)
		}
		if !c.ControllerRelevant() {
			t.Errorf("class %s should be controller-relevant", id)
		}
	}
}

func TestStringers(t *testing.T) {
	if ClassID(0x9F).String() != "0x9F" || CommandID(0x01).String() != "0x01" {
		t.Error("ID stringers wrong")
	}
	pairs := map[string]string{
		DirControlling.String():      "controlling",
		DirSupporting.String():       "supporting",
		CategoryApplication.String(): "application",
		CategoryNetwork.String():     "network",
		ScopeController.String():     "controller",
		ScopeBoth.String():           "both",
		ParamVariadic.String():       "variadic",
		ParamNodeID.String():         "nodeid",
	}
	for got, want := range pairs {
		if got != want {
			t.Errorf("stringer = %q, want %q", got, want)
		}
	}
	if !strings.Contains(Direction(99).String(), "99") || !strings.Contains(Category(42).String(), "42") {
		t.Error("out-of-range stringers should embed the value")
	}
}

// Property: every legal enum/range value generated from the spec passes its
// own Legal check, and boundary+1 values of ranges fail.
func TestParamLegalProperty(t *testing.T) {
	reg := MustLoad()
	var params []Param
	for _, c := range reg.All() {
		for _, cmd := range c.Commands {
			params = append(params, cmd.Params...)
		}
	}
	if len(params) == 0 {
		t.Fatal("spec has no params")
	}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := params[r.Intn(len(params))]
		switch p.Kind {
		case ParamRange:
			legal := p.Min + byte(r.Intn(int(p.Max-p.Min)+1))
			if !p.Legal(legal) {
				return false
			}
			if p.Max < 0xFF && p.Legal(p.Max+1) {
				return false
			}
			if p.Min > 0 && p.Legal(p.Min-1) {
				return false
			}
		case ParamEnum:
			if !p.Legal(p.Values[r.Intn(len(p.Values))]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpecParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(specXML); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkControllerCluster(b *testing.B) {
	reg := MustLoad()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := reg.ControllerCluster(); len(got) != 43 {
			b.Fatal("bad cluster")
		}
	}
}
