// Ablation walkthrough: the three fuzzing configurations of the paper's
// §IV-D (Table VI), one hour each against the ZooZ controller, showing why
// hidden-class discovery and position-sensitive mutation matter.
package main

import (
	"fmt"
	"log"
	"time"

	"zcover"
)

func main() {
	configs := []struct {
		name     string
		strategy zcover.Strategy
		seed     int64
	}{
		{"full  (known + unknown CMDCLs + position-sensitive mutation)", zcover.StrategyFull, 41},
		{"beta  (known CMDCLs only + position-sensitive mutation)", zcover.StrategyKnownOnly, 41},
		{"gamma (random CMDCLs + no position-sensitive mutation)", zcover.StrategyRandom, 4},
	}

	fmt.Println("Ablation study: 1 hour of fuzzing against the ZooZ ZST10 (D1)")
	fmt.Println()
	for i, cfg := range configs {
		tb, err := zcover.NewTestbed("D1", cfg.seed)
		if err != nil {
			log.Fatal(err)
		}
		c, err := zcover.Run(tb, cfg.strategy, time.Hour, cfg.seed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("test %d: %s\n", i+1, cfg.name)
		fmt.Printf("  classes fuzzed  %d\n", c.Fuzz.ClassesCovered)
		fmt.Printf("  packets sent    %d\n", c.Fuzz.PacketsSent)
		fmt.Printf("  unique bugs     %d\n", len(c.Fuzz.Findings))
		hidden := 0
		for _, f := range c.Fuzz.Findings {
			if f.Event.Class == 0x01 {
				hidden++
			}
		}
		fmt.Printf("  ...of which in the hidden CMDCL 0x01: %d\n\n", hidden)
	}
	fmt.Println("Only the full configuration reaches the memory-tampering family")
	fmt.Println("(bugs 01-04, 12, 14) living in the proprietary class 0x01; beta")
	fmt.Println("finds the listed-class bugs; gamma stumbles only on the triggers")
	fmt.Println("that need no parameter structure at all.")
}
