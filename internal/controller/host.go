package controller

import "strconv"

// HostKind identifies the host software attached to a controller: USB-stick
// controllers (D1–D5) are driven by the Z-Wave PC Controller program on a
// Windows laptop; the Samsung hubs (D6, D7) are driven by the SmartThings
// cloud and smartphone app (§IV "Experiment environment").
type HostKind int

// Host kinds. Enum starts at 1.
const (
	// HostPCProgram is the Z-Wave PC Controller desktop program.
	HostPCProgram HostKind = iota + 1
	// HostSmartApp is the SmartThings cloud/app pipeline.
	HostSmartApp
)

// String implements fmt.Stringer.
func (k HostKind) String() string {
	switch k {
	case HostPCProgram:
		return "Z-Wave PC Controller program"
	case HostSmartApp:
		return "SmartThings app"
	default:
		return "HostKind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Host models the host software's health, which bugs 05, 06, and 13
// degrade. A crashed host restarts only manually (Restart), matching the
// "Infinite" durations of Table III.
type Host struct {
	kind    HostKind
	crashed bool
	wedged  bool
}

// NewHost attaches host software of the given kind.
func NewHost(kind HostKind) *Host { return &Host{kind: kind} }

// Kind reports the host software kind.
func (h *Host) Kind() HostKind { return h.kind }

// Crash models the host program terminating abnormally (bug 06).
func (h *Host) Crash() { h.crashed = true }

// Wedge models the host program hanging without terminating (bugs 05, 13).
func (h *Host) Wedge() { h.wedged = true }

// Healthy reports whether the host can currently serve the user.
func (h *Host) Healthy() bool { return !h.crashed && !h.wedged }

// Crashed reports whether the host program terminated.
func (h *Host) Crashed() bool { return h.crashed }

// Restart models the user manually restarting the host software.
func (h *Host) Restart() { h.crashed, h.wedged = false, false }
