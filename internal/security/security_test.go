package security

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// RFC 4493 test vectors.
func TestCMACRFC4493Vectors(t *testing.T) {
	key := "2b7e151628aed2a6abf7158809cf4f3c"
	msg := "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
	cases := []struct {
		name    string
		msgLen  int
		wantMAC string
	}{
		{"empty", 0, "bb1d6929e95937287fa37d129b756746"},
		{"16 bytes", 16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{"40 bytes", 40, "dfa66747de9ae63030ca32611497c827"},
		{"64 bytes", 64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	k := mustHex(t, key)
	m := mustHex(t, msg)
	for _, tc := range cases {
		got, err := CMAC(k, m[:tc.msgLen])
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if want := mustHex(t, tc.wantMAC); !bytes.Equal(got, want) {
			t.Errorf("%s: CMAC = %x, want %x", tc.name, got, want)
		}
	}
}

func TestCMACRejectsBadKey(t *testing.T) {
	if _, err := CMAC([]byte("short"), nil); err == nil {
		t.Fatal("CMAC accepted a short key")
	}
}

func TestCCMRoundTrip(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	aead, err := NewCCM(key)
	if err != nil {
		t.Fatal(err)
	}
	nonce := make([]byte, CCMNonceSize)
	copy(nonce, "zwave-nonce13")
	pt := []byte{0x62, 0x01, 0xFF}
	aad := []byte{0xCB, 0x95, 0xA3, 0x4A, 0x01, 0x02}
	ct := aead.Seal(nil, nonce, pt, aad)
	if len(ct) != len(pt)+CCMTagSize {
		t.Fatalf("ciphertext length %d, want %d", len(ct), len(pt)+CCMTagSize)
	}
	got, err := aead.Open(nil, nonce, ct, aad)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %x, want %x", got, pt)
	}
}

func TestCCMDetectsTampering(t *testing.T) {
	key := make([]byte, KeySize)
	aead, _ := NewCCM(key)
	nonce := make([]byte, CCMNonceSize)
	pt := []byte("door lock operation set secured")
	aad := []byte("header")
	ct := aead.Seal(nil, nonce, pt, aad)

	for i := range ct {
		ct[i] ^= 0x01
		if _, err := aead.Open(nil, nonce, ct, aad); !errors.Is(err, ErrCCMAuth) {
			t.Fatalf("tampered byte %d accepted (err=%v)", i, err)
		}
		ct[i] ^= 0x01
	}
	// Wrong AAD must fail too.
	if _, err := aead.Open(nil, nonce, ct, []byte("other")); !errors.Is(err, ErrCCMAuth) {
		t.Fatal("wrong AAD accepted")
	}
	// Truncated ciphertext.
	if _, err := aead.Open(nil, nonce, ct[:CCMTagSize-1], aad); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestCCMEmptyPlaintext(t *testing.T) {
	aead, _ := NewCCM(make([]byte, KeySize))
	nonce := make([]byte, CCMNonceSize)
	ct := aead.Seal(nil, nonce, nil, nil)
	if len(ct) != CCMTagSize {
		t.Fatalf("empty plaintext ciphertext = %d bytes, want %d", len(ct), CCMTagSize)
	}
	pt, err := aead.Open(nil, nonce, ct, nil)
	if err != nil || len(pt) != 0 {
		t.Fatalf("Open = %x, %v", pt, err)
	}
}

// Property: CCM round-trips arbitrary payloads and AAD.
func TestCCMRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		key := make([]byte, KeySize)
		r.Read(key)
		nonce := make([]byte, CCMNonceSize)
		r.Read(nonce)
		pt := make([]byte, r.Intn(60))
		r.Read(pt)
		aad := make([]byte, r.Intn(20))
		r.Read(aad)
		aead, err := NewCCM(key)
		if err != nil {
			return false
		}
		got, err := aead.Open(nil, nonce, aead.Seal(nil, nonce, pt, aad), aad)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDHSharedSecretAgreement(t *testing.T) {
	rngA := rand.New(rand.NewSource(1))
	rngB := rand.New(rand.NewSource(2))
	a, err := GenerateKeypair(rngA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateKeypair(rngB)
	if err != nil {
		t.Fatal(err)
	}
	sab, err := a.SharedSecret(b.Public())
	if err != nil {
		t.Fatal(err)
	}
	sba, err := b.SharedSecret(a.Public())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sab, sba) {
		t.Fatal("ECDH shared secrets disagree")
	}
	tk, err := DeriveTempKey(sab)
	if err != nil {
		t.Fatal(err)
	}
	if len(tk) != KeySize {
		t.Fatalf("temp key = %d bytes, want %d", len(tk), KeySize)
	}
}

func TestDeriveTempKeyRejectsBadSecret(t *testing.T) {
	if _, err := DeriveTempKey([]byte("short")); err == nil {
		t.Fatal("accepted short shared secret")
	}
}

func TestSharedSecretRejectsBadPublicKey(t *testing.T) {
	a, _ := GenerateKeypair(rand.New(rand.NewSource(3)))
	if _, err := a.SharedSecret([]byte{1, 2, 3}); err == nil {
		t.Fatal("accepted malformed public key")
	}
}

func newTestSessions(t *testing.T) (*Session, *Session) {
	t.Helper()
	r := rand.New(rand.NewSource(42))
	key, err := NewNetworkKey(r)
	if err != nil {
		t.Fatal(err)
	}
	eiA := make([]byte, EntropySize)
	eiB := make([]byte, EntropySize)
	r.Read(eiA)
	r.Read(eiB)
	sa, err := NewSession(key, eiA, eiB)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := NewSession(key, eiA, eiB)
	if err != nil {
		t.Fatal(err)
	}
	return sa, sb
}

func TestS2SessionRoundTrip(t *testing.T) {
	controller, lock := newTestSessions(t)
	aad := []byte{0xCB, 0x95, 0xA3, 0x4A, 0x01, 0x02}
	msg := []byte{0x62, 0x01, 0xFF} // DOOR_LOCK_OPERATION_SET secured

	for i := 0; i < 10; i++ {
		encap, err := controller.Encapsulate(FlowAtoB, aad, msg)
		if err != nil {
			t.Fatal(err)
		}
		if !IsEncapsulation(encap) {
			t.Fatal("payload not recognised as S2 encapsulation")
		}
		got, err := lock.Decapsulate(FlowAtoB, aad, encap)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d: %x, want %x", i, got, msg)
		}
	}
}

func TestS2BidirectionalFlowsIndependent(t *testing.T) {
	a, b := newTestSessions(t)
	aad := []byte("hdr")
	e1, _ := a.Encapsulate(FlowAtoB, aad, []byte("ping"))
	e2, _ := b.Encapsulate(FlowBtoA, aad, []byte("pong"))
	if got, err := b.Decapsulate(FlowAtoB, aad, e1); err != nil || string(got) != "ping" {
		t.Fatalf("AtoB: %q, %v", got, err)
	}
	if got, err := a.Decapsulate(FlowBtoA, aad, e2); err != nil || string(got) != "pong" {
		t.Fatalf("BtoA: %q, %v", got, err)
	}
}

func TestS2RejectsReplay(t *testing.T) {
	a, b := newTestSessions(t)
	aad := []byte("hdr")
	encap, _ := a.Encapsulate(FlowAtoB, aad, []byte("unlock"))
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); !errors.Is(err, ErrS2Desync) {
		t.Fatalf("replay accepted (err=%v)", err)
	}
}

func TestS2RejectsForgery(t *testing.T) {
	a, b := newTestSessions(t)
	aad := []byte("hdr")
	encap, _ := a.Encapsulate(FlowAtoB, aad, []byte("unlock"))
	encap[len(encap)-1] ^= 0xFF
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); !errors.Is(err, ErrS2Auth) {
		t.Fatalf("forgery accepted (err=%v)", err)
	}
}

func TestS2RejectsWrongHeaderAAD(t *testing.T) {
	a, b := newTestSessions(t)
	encap, _ := a.Encapsulate(FlowAtoB, []byte("realhdr"), []byte("unlock"))
	if _, err := b.Decapsulate(FlowAtoB, []byte("fakehdr"), encap); !errors.Is(err, ErrS2Auth) {
		t.Fatalf("spoofed MAC header accepted (err=%v)", err)
	}
}

func TestS2RejectsGarbage(t *testing.T) {
	_, b := newTestSessions(t)
	if _, err := b.Decapsulate(FlowAtoB, nil, []byte{0x9F, 0x03}); err == nil {
		t.Fatal("accepted truncated encapsulation")
	}
	if _, err := b.Decapsulate(FlowAtoB, nil, []byte{0x20, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("accepted non-S2 payload")
	}
}

func TestS2ResyncAfterLoss(t *testing.T) {
	a, b := newTestSessions(t)
	aad := []byte("hdr")
	// First message lost on the air: sender advanced, receiver did not.
	if _, err := a.Encapsulate(FlowAtoB, aad, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	encap, _ := a.Encapsulate(FlowAtoB, aad, []byte("second"))
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); err == nil {
		t.Fatal("desynced message unexpectedly accepted")
	}
	// SOS: receiver resyncs to the sender's counter (one behind, since the
	// failed attempt consumed nothing).
	b.Resync(FlowAtoB, a.Counter(FlowAtoB)-1)
	encap2, _ := a.Encapsulate(FlowAtoB, aad, []byte("third"))
	b.Resync(FlowAtoB, a.Counter(FlowAtoB)-1)
	got, err := b.Decapsulate(FlowAtoB, aad, encap2)
	if err != nil || string(got) != "third" {
		t.Fatalf("after resync: %q, %v", got, err)
	}
}

func TestNewSessionValidation(t *testing.T) {
	good := make([]byte, KeySize)
	ei := make([]byte, EntropySize)
	if _, err := NewSession(good[:8], ei, ei); err == nil {
		t.Fatal("accepted short network key")
	}
	if _, err := NewSession(good, ei[:4], ei); err == nil {
		t.Fatal("accepted short entropy")
	}
}

func TestS0KeyDerivationDistinct(t *testing.T) {
	key := bytes.Repeat([]byte{0x11}, KeySize)
	keys, err := DeriveS0Keys(key)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(keys.Enc, keys.Auth) {
		t.Fatal("S0 enc and auth keys identical")
	}
	if _, err := DeriveS0Keys(key[:4]); err == nil {
		t.Fatal("accepted short S0 key")
	}
}

func TestS0RoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	netKey, _ := NewNetworkKey(r)
	keys, _ := DeriveS0Keys(netKey)
	sn, _ := NewS0Nonce(r)
	rn, _ := NewS0Nonce(r)
	header := []byte{0x81, 0x02, 0x01, 0x0D}
	pt := []byte{0x25, 0x01, 0xFF}

	encap, err := S0Encapsulate(keys, sn, rn, header, pt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := S0Decapsulate(keys, rn, header, encap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round trip = %x, want %x", got, pt)
	}
}

func TestS0DetectsTampering(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	netKey, _ := NewNetworkKey(r)
	keys, _ := DeriveS0Keys(netKey)
	sn, _ := NewS0Nonce(r)
	rn, _ := NewS0Nonce(r)
	header := []byte{0x81}
	encap, _ := S0Encapsulate(keys, sn, rn, header, []byte("lock the door"))

	tampered := append([]byte{}, encap...)
	tampered[12] ^= 0x01 // flip a ciphertext bit
	if _, err := S0Decapsulate(keys, rn, header, tampered); !errors.Is(err, ErrS0Auth) {
		t.Fatalf("tampering accepted (err=%v)", err)
	}
	wrongNonce, _ := NewS0Nonce(r)
	if _, err := S0Decapsulate(keys, wrongNonce, header, encap); !errors.Is(err, ErrS0Auth) {
		t.Fatalf("wrong receiver nonce accepted (err=%v)", err)
	}
	if _, err := S0Decapsulate(keys, rn, header, encap[:10]); !errors.Is(err, ErrS0Auth) {
		t.Fatal("truncated payload accepted")
	}
}

// The S0 weakness the paper cites: a sniffer recovers the network key from
// the inclusion exchange because the temporary key is fixed to zeros.
func TestS0FixedTempKeyWeakness(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	netKey, _ := NewNetworkKey(r)
	sn, _ := NewS0Nonce(r)
	rn, _ := NewS0Nonce(r)

	capture, err := S0EncryptNetworkKeyTransfer(netKey, sn, rn)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := S0RecoverNetworkKeyFromCapture(capture, rn)
	if err != nil {
		t.Fatalf("attacker could not decrypt key transfer: %v", err)
	}
	if !bytes.Equal(recovered, netKey) {
		t.Fatal("recovered key differs from network key — S0 weakness model broken")
	}
}

// Property: S0 round-trips arbitrary payloads.
func TestS0RoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		netKey, _ := NewNetworkKey(r)
		keys, _ := DeriveS0Keys(netKey)
		sn, _ := NewS0Nonce(r)
		rn, _ := NewS0Nonce(r)
		header := make([]byte, r.Intn(8))
		r.Read(header)
		pt := make([]byte, r.Intn(40))
		r.Read(pt)
		encap, err := S0Encapsulate(keys, sn, rn, header, pt)
		if err != nil {
			return false
		}
		got, err := S0Decapsulate(keys, rn, header, encap)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkS2Encapsulate(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	key, _ := NewNetworkKey(r)
	ei := make([]byte, EntropySize)
	s, _ := NewSession(key, ei, ei)
	aad := []byte{0xCB, 0x95, 0xA3, 0x4A, 0x01, 0x02}
	msg := []byte{0x62, 0x01, 0xFF}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encapsulate(FlowAtoB, aad, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCMAC(b *testing.B) {
	key := make([]byte, KeySize)
	msg := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CMAC(key, msg); err != nil {
			b.Fatal(err)
		}
	}
}
