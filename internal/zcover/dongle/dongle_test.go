package dongle

import (
	"testing"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/testbed"
	"zcover/internal/vtime"
)

func TestObserveCollectsScheduledTraffic(t *testing.T) {
	tb, err := testbed.New("D6", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(3, 10*time.Second)
	caps := d.Observe(time.Minute)
	if len(caps) < 6 { // 3 lock reports + 3 switch reports (+ acks)
		t.Fatalf("captured %d frames, want >= 6", len(caps))
	}
	for _, c := range caps {
		if home, _, _, ok := protocol.SniffNetworkInfo(c.Raw); !ok || home != tb.Home() {
			t.Fatalf("capture with wrong home: % X", c.Raw)
		}
	}
}

func TestSendAndObserveClassifiesAckAndResponse(t *testing.T) {
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tb.Medium, tb.Region)
	ex, err := d.SendAndObserve(tb.Home(), 0x0F, testbed.ControllerID,
		[]byte{0x86, 0x11}, DefaultResponseWindow)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Acked {
		t.Fatal("controller did not ack")
	}
	if len(ex.Responses) != 1 || ex.Responses[0].CommandClass() != 0x86 {
		t.Fatalf("responses = %v", ex.Responses)
	}
}

func TestPingAliveAndHung(t *testing.T) {
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tb.Medium, tb.Region)
	if !d.Ping(tb.Home(), 0x0F, testbed.ControllerID) {
		t.Fatal("live controller did not answer ping")
	}
	// Hang the controller via bug 10 and confirm the ping fails.
	if _, err := d.SendAndObserve(tb.Home(), 0x0F, testbed.ControllerID,
		[]byte{0x86, 0x13, 0xE0}, DefaultResponseWindow); err != nil {
		t.Fatal(err)
	}
	if d.Ping(tb.Home(), 0x0F, testbed.ControllerID) {
		t.Fatal("hung controller answered ping")
	}
	d.Clock().Advance(5 * time.Second)
	if !d.Ping(tb.Home(), 0x0F, testbed.ControllerID) {
		t.Fatal("controller did not recover")
	}
}

func TestSendRawCountsPackets(t *testing.T) {
	m := radio.NewMedium(vtime.NewSimClock())
	d := New(m, radio.RegionUS)
	if err := d.SendRaw(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if err := d.SendRaw(make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if got := d.PacketsSent(); got != 2 {
		t.Fatalf("PacketsSent = %d, want 2", got)
	}
}

func TestDrainClearsBuffer(t *testing.T) {
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tb.Medium, tb.Region)
	if err := tb.Lock.ReportStatus(); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Drain()); got == 0 {
		t.Fatal("no captures buffered")
	}
	if got := len(d.Drain()); got != 0 {
		t.Fatalf("second drain returned %d captures", got)
	}
}

func TestSendAndObserveIgnoresOtherNetworks(t *testing.T) {
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := New(tb.Medium, tb.Region)
	// A frame for a different home ID gets no ack and no response.
	ex, err := d.SendAndObserve(0x11223344, 0x0F, testbed.ControllerID,
		[]byte{0x86, 0x11}, DefaultResponseWindow)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Acked || len(ex.Responses) != 0 {
		t.Fatalf("foreign-home exchange = %+v", ex)
	}
}
