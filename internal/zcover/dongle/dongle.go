// Package dongle provides ZCover's attacker-side radio access: the
// software equivalent of the Yardstick One transceiver the paper drives
// from the fuzzing laptop. It can sniff promiscuously, inject raw or
// crafted frames, and run send-and-observe exchanges with simulated
// timing — and nothing else: ZCover never touches a device except through
// this interface, preserving the paper's black-box, external-entity design
// assumption (§III-A).
package dongle

import (
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// Timing defaults for exchanges. Real Z-Wave application responses arrive
// well under these windows; they bound how long the attacker waits, and
// they are what makes a fuzzing test cycle cost ~0.7 s of simulated time,
// matching the paper's ~800 packets per ~600 s.
const (
	// DefaultResponseWindow is how long an exchange waits for responses.
	DefaultResponseWindow = 400 * time.Millisecond
	// DefaultPingWindow is how long a liveness ping waits for the MAC ack.
	DefaultPingWindow = 200 * time.Millisecond
)

// Dongle is the attacker's transceiver. Like a campaign's other actors it
// is confined to the single simulation goroutine, so its capture buffer
// and scrap list need no locking.
type Dongle struct {
	clock *vtime.SimClock
	trx   *radio.Transceiver

	buffer []radio.Capture
	scrap  [][]byte // recycled capture-copy buffers for internal exchanges
	sent   int
}

// New attaches a dongle to the medium on the given region.
func New(m *radio.Medium, region radio.Region) *Dongle {
	d := &Dongle{clock: m.Clock()}
	d.trx = m.Attach("zcover-dongle", region)
	d.trx.SetReceiver(func(c radio.Capture) {
		// Capture.Raw is valid only during the callback, so buffering it
		// requires a copy; internal exchanges recycle these copies through
		// d.scrap, making the steady-state fuzzing cycle allocation-free.
		var buf []byte
		if n := len(d.scrap); n > 0 {
			buf, d.scrap = d.scrap[n-1][:0], d.scrap[:n-1]
		}
		c.Raw = append(buf, c.Raw...)
		d.buffer = append(d.buffer, c)
	})
	return d
}

// Clock exposes the simulated clock the dongle advances while waiting.
func (d *Dongle) Clock() *vtime.SimClock { return d.clock }

// PacketsSent reports the number of frames injected so far.
func (d *Dongle) PacketsSent() int { return d.sent }

// Drain returns and clears the capture buffer. Ownership of the returned
// captures (including their Raw bytes) transfers to the caller; the dongle
// starts a fresh buffer rather than recycling theirs.
func (d *Dongle) Drain() []radio.Capture {
	out := d.buffer
	d.buffer = nil
	return out
}

// recycleBuffered discards buffered captures, returning their byte copies
// to the scrap list for the receiver to reuse. Internal exchange paths use
// this instead of Drain so the hot fuzzing loop does not allocate.
func (d *Dongle) recycleBuffered() {
	for i := range d.buffer {
		d.scrap = append(d.scrap, d.buffer[i].Raw)
		d.buffer[i] = radio.Capture{}
	}
	d.buffer = d.buffer[:0]
}

// Observe listens for the given window and returns everything captured.
// This is the passive-scanning primitive.
func (d *Dongle) Observe(window time.Duration) []radio.Capture {
	d.clock.Advance(window)
	return d.Drain()
}

// SendRaw injects a raw frame (used by the VFuzz baseline, whose mutations
// target the MAC frame itself).
func (d *Dongle) SendRaw(raw []byte) error {
	d.sent++
	return d.trx.Transmit(raw)
}

// Send crafts and injects a well-formed frame with the given application
// payload, spoofing src.
func (d *Dongle) Send(home protocol.HomeID, src, dst protocol.NodeID, payload []byte) error {
	// Encode into a pooled buffer; delivery is synchronous, so the medium
	// is done with the bytes by the time SendRaw returns.
	buf := protocol.GetBuf()
	defer protocol.PutBuf(buf)
	raw, err := protocol.NewDataFrame(home, src, dst, payload).AppendEncode(*buf)
	if err != nil {
		return err
	}
	return d.SendRaw(raw)
}

// Exchange is the outcome of a send-and-observe cycle.
type Exchange struct {
	// Acked reports whether the destination MAC-acked the frame.
	Acked bool
	// Responses holds application frames the destination sent back to the
	// spoofed source during the window.
	Responses []*protocol.Frame
}

// SendAndObserve injects an application payload and watches the air for
// the response window, classifying what came back.
func (d *Dongle) SendAndObserve(home protocol.HomeID, src, dst protocol.NodeID, payload []byte, window time.Duration) (Exchange, error) {
	if window <= 0 {
		window = DefaultResponseWindow
	}
	d.recycleBuffered()
	if err := d.Send(home, src, dst, payload); err != nil {
		return Exchange{}, err
	}
	d.clock.Advance(window)
	return d.classify(home, src, dst), nil
}

// classify inspects the buffered captures for acks and responses from dst
// back to the spoofed src, then recycles the capture copies. Responses are
// handed out with private payload copies, so recycling is invisible to
// callers.
func (d *Dongle) classify(home protocol.HomeID, src, dst protocol.NodeID) Exchange {
	var ex Exchange
	f := protocol.GetFrame()
	defer protocol.PutFrame(f)
	for i := range d.buffer {
		err := protocol.DecodeInto(f, d.buffer[i].Raw, protocol.ChecksumCS8)
		if err != nil || f.Home != home || f.Src != dst || f.Dst != src {
			continue
		}
		if f.IsAck() {
			ex.Acked = true
			continue
		}
		resp := *f
		resp.Payload = append([]byte{}, f.Payload...)
		ex.Responses = append(ex.Responses, &resp)
	}
	d.recycleBuffered()
	return ex
}

// Ping sends a NOP liveness probe and reports whether dst acked — the
// feedback mechanism of the paper's crash verification loop.
func (d *Dongle) Ping(home protocol.HomeID, src, dst protocol.NodeID) bool {
	ex, err := d.SendAndObserve(home, src, dst, []byte{0x00}, DefaultPingWindow)
	return err == nil && ex.Acked
}
