package protocol

import "testing"

// BenchmarkFrameCodec measures one encode + decode cycle on the pooled,
// append-into-caller-buffer fast path — the exact shape the radio hot loop
// uses (AppendEncode into a pooled buffer, DecodeInto a pooled frame).
// The steady state is zero-alloc.
func BenchmarkFrameCodec(b *testing.B) {
	src := NewDataFrame(HomeID(0xC0DECAFE), 1, 2, []byte{0x25, 0x01, 0xFF})
	buf := GetBuf()
	defer PutBuf(buf)
	f := GetFrame()
	defer PutFrame(f)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := src.AppendEncode((*buf)[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := DecodeInto(f, raw, ChecksumCS8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameEncodeAlloc measures the plain allocating Encode for
// comparison with the pooled path above.
func BenchmarkFrameEncodeAlloc(b *testing.B) {
	src := NewDataFrame(HomeID(0xC0DECAFE), 1, 2, []byte{0x25, 0x01, 0xFF})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
