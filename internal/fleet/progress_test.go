package fleet

import (
	"strings"
	"testing"
	"time"

	"zcover/internal/telemetry"
	"zcover/internal/testbed"
)

// TestSimRateEdgeCases pins the division guards: zero or negative wall
// time must not produce Inf/NaN.
func TestSimRateEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		p    Progress
		want float64
	}{
		{"zero wall", Progress{SimTime: time.Hour}, 0},
		{"negative wall", Progress{SimTime: time.Hour, Wall: -time.Second}, 0},
		{"zero sim", Progress{Wall: time.Second}, 0},
		{"normal", Progress{SimTime: 10 * time.Second, Wall: 2 * time.Second}, 5},
	}
	for _, tc := range cases {
		if got := tc.p.SimRate(); got != tc.want {
			t.Errorf("%s: SimRate = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestProgressStringEdgeCases renders the ticker line for degenerate
// snapshots: the zero value (zero total, zero wall) must stay finite and
// well-formed.
func TestProgressStringEdgeCases(t *testing.T) {
	zero := Progress{}
	s := zero.String()
	if strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Errorf("zero Progress renders %q", s)
	}
	if !strings.Contains(s, "0/0 done") || !strings.Contains(s, "(0.0x)") {
		t.Errorf("zero Progress renders %q", s)
	}
	if !zero.Finished() {
		t.Error("zero-total Progress should report Finished (vacuously drained)")
	}

	busy := Progress{Total: 4, Done: 1, Running: 2, Queued: 1,
		Findings: 3, Packets: 99, SimTime: time.Minute, Wall: time.Second}
	s = busy.String()
	for _, want := range []string{"1/4 done", "2 running", "1 queued", "3 findings", "99 pkts", "(60.0x)"} {
		if !strings.Contains(s, want) {
			t.Errorf("Progress renders %q, missing %q", s, want)
		}
	}
}

// TestCountersAreRegistryViews pins the tentpole rewiring: fleet state
// lives in the telemetry registry, and a fleet sharing a registry with a
// previous fleet still reports exact per-fleet Progress (delta from the
// base it observed at construction).
func TestCountersAreRegistryViews(t *testing.T) {
	reg := telemetry.NewRegistry()

	var c1 counters
	c1.bind(reg, 3)
	c1.queued.Add(-1)
	c1.done.Add(1)
	c1.packets.Add(500)
	c1.findings.Add(2)

	if got := reg.Gauge(MetricDone).Load(); got != 1 {
		t.Fatalf("registry %s = %d, want 1", MetricDone, got)
	}
	p := c1.snapshot()
	if p.Done != 1 || p.Queued != 2 || p.Packets != 500 || p.Findings != 2 {
		t.Fatalf("fleet1 snapshot = %+v", p)
	}

	// A second fleet over the same registry: process totals accumulate,
	// per-fleet Progress starts from zero.
	var c2 counters
	c2.bind(reg, 5)
	p2 := c2.snapshot()
	if p2.Done != 0 || p2.Queued != 5 || p2.Packets != 0 || p2.Findings != 0 {
		t.Fatalf("fleet2 initial snapshot = %+v", p2)
	}
	c2.done.Add(1)
	if got := reg.Gauge(MetricDone).Load(); got != 2 {
		t.Fatalf("registry %s after second fleet = %d, want 2", MetricDone, got)
	}
	if p := c1.snapshot(); p.Done != 2 {
		// Shared-registry caveat: concurrent fleets bleed into each other's
		// deltas — documented, and why the default is a private registry.
		t.Logf("note: fleet1 sees shared-registry drift: %+v", p)
	}
}

// TestRunPublishesToSharedRegistry runs a real (trivial-runner) fleet with
// Config.Telemetry and checks the registry holds the end state.
func TestRunPublishesToSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	jobs := []Job{{Name: "a", Device: "D1"}, {Name: "b", Device: "D1"}}
	runner := func(_ *testbed.Testbed, job Job, obs *Observer) (string, error) {
		obs.Packets(10)
		obs.SimTime(time.Second)
		obs.Finding()
		return job.Name, nil
	}
	results := Run(jobs, runner, Config{Workers: 2, Telemetry: reg})
	if err := FirstError(results); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge(MetricDone).Load(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricDone, got)
	}
	if got := reg.Gauge(MetricPackets).Load(); got != 20 {
		t.Errorf("%s = %d, want 20", MetricPackets, got)
	}
	if got := reg.Gauge(MetricFindings).Load(); got != 2 {
		t.Errorf("%s = %d, want 2", MetricFindings, got)
	}
	if got := reg.Gauge(MetricRunning).Load(); got != 0 {
		t.Errorf("%s = %d, want 0 after drain", MetricRunning, got)
	}
	if got := reg.Gauge(MetricSimNanos).Load(); got != int64(2*time.Second) {
		t.Errorf("%s = %d, want %d", MetricSimNanos, got, int64(2*time.Second))
	}
}
