package testbed

import (
	"testing"
	"time"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
)

func TestNewBuildsAllSevenTestbeds(t *testing.T) {
	for _, idx := range []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7"} {
		tb, err := New(idx, 1)
		if err != nil {
			t.Fatalf("%s: %v", idx, err)
		}
		if tb.Controller.Profile().Index != idx {
			t.Errorf("%s: wrong profile", idx)
		}
		if tb.Controller.Table().Len() != 3 {
			t.Errorf("%s: node table = %v", idx, tb.Controller.Table().IDs())
		}
	}
}

func TestNewRejectsUnknownProfile(t *testing.T) {
	if _, err := New("D9", 1); err == nil {
		t.Fatal("accepted a slave index as a controller profile")
	}
}

func TestLockIsPairedWithController(t *testing.T) {
	tb, err := New("D6", 3)
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := tb.Controller.Session(LockID)
	if !ok {
		t.Fatal("controller has no S2 session for the lock")
	}
	// Controller -> lock secured unlock round-trips through the real air.
	h := tb.Home()
	aad := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), ControllerID, LockID}
	encap, err := sess.Encapsulate(security.FlowAtoB, aad,
		[]byte{0x62, 0x01, 0x00}) // DOOR_LOCK_OPERATION_SET unsecured
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Controller.Node().Send(LockID, encap); err != nil {
		t.Fatal(err)
	}
	if tb.Lock.Mode() != 0x00 {
		t.Fatal("secured unlock did not reach the lock")
	}
}

func TestLockWakeupIntervalRegistered(t *testing.T) {
	tb, err := New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Controller.WakeupInterval(LockID); got != time.Hour {
		t.Fatalf("lock wakeup interval = %s, want 1h", got)
	}
	rec, ok := tb.Controller.Table().Get(LockID)
	if !ok || rec.WakeupInterval != time.Hour {
		t.Fatalf("lock record = %+v", rec)
	}
}

func TestGenerateTrafficVisibleToSniffer(t *testing.T) {
	tb, err := New("D4", 2)
	if err != nil {
		t.Fatal(err)
	}
	sniffer := radio.NewSniffer(tb.Medium, tb.Region, 0)
	if err := tb.GenerateTraffic(3, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	nets := sniffer.Networks()
	nodes := nets[tb.Home()]
	if len(nodes) != 3 {
		t.Fatalf("sniffer saw nodes %v, want controller+lock+switch", nodes)
	}
}

func TestScheduleTrafficFiresOnClockAdvance(t *testing.T) {
	tb, err := New("D2", 2)
	if err != nil {
		t.Fatal(err)
	}
	sniffer := radio.NewSniffer(tb.Medium, tb.Region, 0)
	tb.ScheduleTraffic(4, 5*time.Second)
	if got := len(sniffer.Captures()); got != 0 {
		t.Fatalf("traffic fired before the clock advanced: %d captures", got)
	}
	tb.Clock.Advance(30 * time.Second)
	if got := len(sniffer.Captures()); got < 8 {
		t.Fatalf("captured %d frames after advancing, want >= 8", got)
	}
}

func TestResetRestoresControllerAndOracle(t *testing.T) {
	tb, err := New("D5", 4)
	if err != nil {
		t.Fatal(err)
	}
	attacker := tb.Medium.Attach("attacker", tb.Region)
	raw := protocol.NewDataFrame(tb.Home(), 0x0F, ControllerID, []byte{0x01, 0x0D, 0xFF}).MustEncode()
	if err := attacker.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if _, lockStillThere := tb.Controller.Table().Get(LockID); lockStillThere || len(tb.Bus.Events()) == 0 {
		t.Fatal("attack did not land")
	}
	tb.Reset()
	if _, ok := tb.Controller.Table().Get(LockID); !ok || tb.Controller.Table().Len() != 3 {
		t.Fatal("reset did not restore the table")
	}
	if len(tb.Bus.Events()) != 0 {
		t.Fatal("reset did not clear the oracle")
	}
}

func TestHiddenClassDefinitions(t *testing.T) {
	defs := HiddenClassDefinitions()
	if len(defs) != 2 {
		t.Fatalf("hidden definitions = %d, want 2", len(defs))
	}
}

func TestDistinctTestbedsAreIsolated(t *testing.T) {
	a, err := New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("D2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.GenerateTraffic(1, time.Second); err != nil {
		t.Fatal(err)
	}
	if b.Medium.TransmitCount() != 0 {
		t.Fatal("traffic leaked between testbeds")
	}
}

func TestAddSensorJoinsTheHome(t *testing.T) {
	tb, err := New("D6", 8)
	if err != nil {
		t.Fatal(err)
	}
	sensor := tb.AddSensor(0x04, 30*time.Minute)
	if tb.Controller.Table().Len() != 4 {
		t.Fatalf("table = %v", tb.Controller.Table().IDs())
	}
	if got := tb.Controller.WakeupInterval(0x04); got != 30*time.Minute {
		t.Fatalf("wakeup interval = %s", got)
	}
	if err := sensor.WakeCycle(); err != nil {
		t.Fatal(err)
	}
	if got := tb.Controller.Stats().AppFrames; got < 3 {
		t.Fatalf("controller saw %d frames from the wake cycle", got)
	}
}
