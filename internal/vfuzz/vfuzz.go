// Package vfuzz reimplements the VFuzz baseline (Nkuba et al., "Riding the
// IoT Wave With VFuzz", IEEE Access 2022) as the paper's comparison target
// (§IV-C, Table V). VFuzz is a MAC-frame fuzzer built for slave devices:
// it mutates fields across the whole Z-Wave frame — home ID, frame
// control, length, addresses — and sweeps the full 256-value CMDCL space
// with random payload bytes, with no knowledge of the controller's
// implemented command classes and no position-aware payload mutation.
//
// Those two differences are exactly why the paper finds the tools'
// results disjoint: VFuzz's broken MAC fields reach the chipset's frame
// parser (where the legacy one-day bugs live) but its payloads almost
// never form the structured application commands ZCover's bugs need.
package vfuzz

import (
	"math/rand"
	"time"

	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/vtime"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/scan"
)

// StrategyVFuzz labels VFuzz results in shared reporting.
const StrategyVFuzz fuzz.Strategy = "vfuzz"

// Config tunes a VFuzz campaign.
type Config struct {
	// Duration is the fuzzing budget.
	Duration time.Duration
	// Seed drives the mutation stream.
	Seed int64
	// ResponseWindow, InterTestGap, PingRetry mirror the ZCover engine's
	// pacing so Table V compares equal wall-clock budgets.
	ResponseWindow time.Duration
	InterTestGap   time.Duration
	PingRetry      time.Duration
	// SamplePeriod spaces timeline samples.
	SamplePeriod time.Duration
	// OnFinding, if set, is invoked synchronously for each new unique
	// finding — live progress for interactive callers.
	OnFinding func(fuzz.Finding)
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 24 * time.Hour
	}
	if c.ResponseWindow <= 0 {
		c.ResponseWindow = dongle.DefaultResponseWindow
	}
	if c.InterTestGap <= 0 {
		c.InterTestGap = 100 * time.Millisecond
	}
	if c.PingRetry <= 0 {
		c.PingRetry = 5 * time.Second
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 20 * time.Second
	}
	return c
}

// Engine drives one VFuzz campaign.
type Engine struct {
	dongle *dongle.Dongle
	clock  *vtime.SimClock
	home   protocol.HomeID
	target protocol.NodeID
	cfg    Config
	rng    *rand.Rand

	pending []oracle.Event
	seen    map[string]bool

	// Per-iteration scratch: nextFrame's result is consumed within one test
	// cycle (findings copy the trigger payload), so the payload and encode
	// buffers are recycled across iterations.
	payloadBuf []byte
	frameBuf   []byte
}

// New builds a VFuzz engine against the target controller. Like ZCover,
// VFuzz learns the home ID and node ID by scanning first; the caller
// passes them in.
func New(d *dongle.Dongle, home protocol.HomeID, target protocol.NodeID, cfg Config) *Engine {
	return &Engine{
		dongle: d,
		clock:  d.Clock(),
		home:   home,
		target: target,
		cfg:    cfg.withDefaults(),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		seen:   make(map[string]bool),

		payloadBuf: make([]byte, 9),
		frameBuf:   make([]byte, 0, protocol.MaxFrameSize),
	}
}

// Observe receives oracle events; subscribe it to the testbed bus before
// Run (bus.Subscribe(engine.Observe)).
func (e *Engine) Observe(ev oracle.Event) { e.pending = append(e.pending, ev) }

// Run executes the campaign.
func (e *Engine) Run() *fuzz.Result {
	res := &fuzz.Result{
		Strategy:        StrategyVFuzz,
		ClassesCovered:  256,
		CommandsCovered: 256,
	}
	start := e.clock.Now()
	elapsed := func() time.Duration { return e.clock.Now().Sub(start) }
	nextSample := e.cfg.SamplePeriod

	for elapsed() < e.cfg.Duration {
		raw := e.nextFrame()
		_ = e.dongle.SendRaw(raw)
		res.PacketsSent++
		e.clock.Advance(e.cfg.ResponseWindow)
		// VFuzz's device-behaviour fingerprinting sends a state probe
		// after every test case, making its cycle slower than ZCover's.
		e.clock.Advance(e.cfg.ResponseWindow)

		for _, ev := range e.pending {
			sig := ev.Signature()
			if e.seen[sig] {
				res.Duplicates++
				continue
			}
			e.seen[sig] = true
			finding := fuzz.Finding{
				Signature:      sig,
				Event:          ev,
				TriggerPayload: append([]byte{}, raw...),
				Packets:        res.PacketsSent,
				Elapsed:        elapsed(),
			}
			res.Findings = append(res.Findings, finding)
			if e.cfg.OnFinding != nil {
				e.cfg.OnFinding(finding)
			}
			res.Timeline = append(res.Timeline, fuzz.Sample{
				Elapsed: elapsed(), Packets: res.PacketsSent, Unique: len(res.Findings),
			})
		}
		e.pending = e.pending[:0]

		if !e.dongle.Ping(e.home, scan.AttackerNodeID, e.target) {
			e.awaitRecovery(start)
		}
		e.clock.Advance(e.cfg.InterTestGap)

		for elapsed() >= nextSample {
			res.Timeline = append(res.Timeline, fuzz.Sample{
				Elapsed: nextSample, Packets: res.PacketsSent, Unique: len(res.Findings),
			})
			nextSample += e.cfg.SamplePeriod
		}
	}
	res.Elapsed = elapsed()
	return res
}

// awaitRecovery pings until the target answers or the budget runs out.
func (e *Engine) awaitRecovery(start time.Time) {
	for e.clock.Now().Sub(start) < e.cfg.Duration {
		e.clock.Advance(e.cfg.PingRetry)
		if e.dongle.Ping(e.home, scan.AttackerNodeID, e.target) {
			return
		}
	}
}

// nextFrame builds one VFuzz test frame: a valid base frame with a random
// application payload (uniform CMDCL/CMD/PARAM bytes), then one to three
// MAC-field mutations, checksum recomputed unless the checksum itself was
// the mutation target.
func (e *Engine) nextFrame() []byte {
	payload := e.payloadBuf[:2+e.rng.Intn(8)]
	for i := range payload {
		payload[i] = byte(e.rng.Intn(256))
	}
	f := protocol.NewDataFrame(e.home, scan.AttackerNodeID, e.target, payload)
	raw, err := f.AppendEncode(e.frameBuf[:0])
	if err != nil {
		raw = append(e.frameBuf[:0], 0, 0, 0, 0, 0, 0, 0, 10, 0, 0)
	}

	fixChecksum := true
	for n := 4 + e.rng.Intn(4); n > 0; n-- {
		switch e.rng.Intn(8) {
		case 0: // home ID byte
			raw[e.rng.Intn(4)] ^= byte(1 + e.rng.Intn(255))
		case 1: // source
			raw[4] = byte(e.rng.Intn(256))
		case 2: // frame control P1
			raw[5] = byte(e.rng.Intn(256))
		case 3: // frame control P2
			raw[6] = byte(e.rng.Intn(256))
		case 4: // LEN
			raw[7] = byte(e.rng.Intn(256))
		case 5: // destination
			raw[8] = byte(e.rng.Intn(256))
		case 6: // truncate the frame
			if len(raw) > protocol.HeaderSize {
				raw = raw[:protocol.HeaderSize+e.rng.Intn(len(raw)-protocol.HeaderSize)]
			}
		default: // checksum itself
			raw[len(raw)-1] = byte(e.rng.Intn(256))
			fixChecksum = false
		}
	}
	if fixChecksum && len(raw) > 1 {
		raw[len(raw)-1] = protocol.CS8(raw[:len(raw)-1])
	}
	if len(raw) > protocol.MaxFrameSize {
		raw = raw[:protocol.MaxFrameSize]
	}
	return raw
}
