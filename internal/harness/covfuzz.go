package harness

import (
	"fmt"
	"strconv"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/corpus"
	"zcover/internal/fleet"
	"zcover/internal/oracle"
	"zcover/internal/report"
	"zcover/internal/telemetry"
	"zcover/internal/testbed"
	"zcover/internal/zcover/discover"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/minimize"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// CovFuzzOptions configures the coverage-guided pipeline's corpus side.
// The zero value keeps the corpus in memory only.
type CovFuzzOptions struct {
	// CorpusDir, when set, journals every admitted seed to a crash-safe
	// corpus journal under this directory (corpus.OpenJournal), so a
	// killed campaign keeps its corpus and a resumed one replays it.
	CorpusDir string
	// Resume allows continuing an existing corpus journal; without it an
	// existing journal is refused, mirroring campaign checkpoints.
	Resume bool
	// Minimize reduces finding seeds to their minimal trigger before
	// admission (corpus.Manager.SetMinimizer).
	Minimize bool
}

// covFuzzKey pins a corpus journal to the campaign that wrote it: any
// drift in these inputs changes the SpecHash and refuses the journal.
type covFuzzKey struct {
	Device   string        `json:"device"`
	Duration time.Duration `json:"duration"`
	Frames   int           `json:"frames,omitempty"`
	Seed     int64         `json:"seed"`
}

// RunCovFuzz executes the coverage-guided pipeline against the testbed's
// controller with an in-memory corpus.
func RunCovFuzz(tb *testbed.Testbed, duration time.Duration, seed int64) (*fuzz.CovResult, error) {
	return RunCovFuzzWith(tb, duration, seed, Options{}, CovFuzzOptions{})
}

// RunCovFuzzWith runs the full three-phase pipeline — fingerprinting,
// discovery, then the coverage-guided engine in place of the generational
// one. The engine's behavioral-coverage collector is wired into the
// controller's dispatch path and the oracle bus for the duration of the
// run, and coverage-novel inputs grow a deterministic corpus.
func RunCovFuzzWith(tb *testbed.Testbed, duration time.Duration, seed int64, opts Options, covOpts CovFuzzOptions) (*fuzz.CovResult, error) {
	reg, err := cmdclass.Load()
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	d := dongle.New(tb.Medium, tb.Region)

	var recorder *telemetry.FlightRecorder
	if opts.FlightRecorderDepth > 0 {
		recorder = telemetry.NewFlightRecorder(opts.FlightRecorderDepth)
		tb.Medium.SetFlightRecorder(recorder)
		defer tb.Medium.SetFlightRecorder(nil)
	}
	device := tb.Controller.Profile().Index
	attrs := map[string]string{"device": device, "strategy": string(fuzz.StrategyCoverage)}

	// Phase 1: fingerprinting.
	span := opts.phaseSpan(tb, "scan", attrs)
	tb.ScheduleTraffic(12, 10*time.Second)
	fp, err := scan.FingerprintTarget(d, PassiveScanWindow, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: fingerprinting: %w", err)
	}
	span.SetAttr("nodes", fmt.Sprint(len(fp.Nodes)))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}

	// Phase 2: discovery — the coverage-guided engine starts from the same
	// prioritised queue as the full generational strategy.
	span = opts.phaseSpan(tb, "discover", attrs)
	disc, err := discover.Run(d, reg, fp)
	if err != nil {
		return nil, fmt.Errorf("harness: discovery: %w", err)
	}
	span.SetAttr("confirmed", fmt.Sprint(len(disc.ConfirmedCommands)))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}

	// Phase 3: coverage-guided fuzzing.
	mut := mutate.New(mutate.Semantics{Controller: fp.Controller, KnownNodes: fp.Nodes}, seed)
	queue := fuzz.BuildQueue(fuzz.StrategyFull, reg, nil, disc.Prioritized, seed)
	span = opts.phaseSpan(tb, "fuzz", attrs)
	fcfg := fuzz.Config{
		Duration:    duration,
		OnFinding:   opts.OnFinding,
		Recorder:    recorder,
		FrameBudget: opts.FrameBudget,
	}
	if tb.Chaos != nil {
		fcfg.Impairment = tb.Chaos
		fcfg.PingAttempts = 3
	}
	engine, err := fuzz.NewCov(d, fp, queue, mut, device, seed, fcfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}

	// Wire the behavioral-coverage hooks for the duration of the run.
	cov := engine.Coverage()
	tb.Controller.SetCoverage(cov)
	defer tb.Controller.SetCoverage(nil)
	tb.Bus.SetCoverage(cov)
	defer tb.Bus.SetCoverage(nil)

	if covOpts.Minimize {
		engine.Corpus().SetMinimizer(minimize.New(device, seed))
	}
	if covOpts.CorpusDir != "" {
		key := covFuzzKey{Device: device, Duration: duration, Frames: opts.FrameBudget, Seed: seed}
		j, err := corpus.OpenJournal(covOpts.CorpusDir, "covfuzz-"+device, key, covOpts.Resume)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		engine.Corpus().AttachJournal(j)
	}

	sub := tb.Bus.Subscribe(engine.Observe)
	defer sub.Unsubscribe()
	res, err := engine.Run()
	if err != nil {
		return nil, err
	}
	res.CommandsCovered = len(disc.ConfirmedCommands)
	span.SetAttr("findings", fmt.Sprint(len(res.Findings)))
	span.SetAttr("packets", fmt.Sprint(res.PacketsSent))
	span.SetAttr("features", fmt.Sprint(res.Coverage.Features))
	if err := span.EndAt(tb.Clock.Now()); err != nil {
		return nil, err
	}
	return res, nil
}

// distinctKinds counts the distinct oracle effect classes among findings
// — hangs, node tampering, database overwrites, ... — the "discovery
// classes" the engine comparison is scored on.
func distinctKinds(findings []fuzz.Finding) int {
	seen := make(map[oracle.Kind]bool, len(findings))
	for _, f := range findings {
		seen[f.Event.Kind] = true
	}
	return len(seen)
}

// framesToFirst reports the frame count at the first finding, 0 if none.
func framesToFirst(findings []fuzz.Finding) int {
	if len(findings) == 0 {
		return 0
	}
	return findings[0].Packets
}

// CovFuzzRow is one device's engine comparison at an equal frame budget.
type CovFuzzRow struct {
	Index        string
	Frames       int
	GenVulns     int
	GenKinds     int
	GenFirst     int
	CovVulns     int
	CovKinds     int
	CovFirst     int
	CovCorpus    int
	CovFeatures  int
	CovDensity   float64
	SeedsMinimal int
}

// covFuzzFramesPerTest is the nominal simulated cost of one test cycle
// (response window + inter-test gap), used to convert a time budget into
// an equal frame budget for both engines.
const covFuzzFramesPerTest = 500 * time.Millisecond

// CovFuzzTable compares the coverage-guided engine against the
// generational engine on D1–D5 at an equal frame budget derived from
// duration. Both engines run the identical discovery pipeline and get the
// same time and frame caps; the table reports unique findings, distinct
// discovery classes, frames to first discovery, and the coverage map's
// final state.
func CovFuzzTable(duration time.Duration, cfg fleet.Config) (*report.Table, []CovFuzzRow, error) {
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	frames := int(duration / covFuzzFramesPerTest)
	out := &report.Table{
		Title: "Coverage-guided vs generational fuzzing at equal frame budget",
		Headers: []string{"ID", "Frames", "Gen #Vul", "Gen Kinds", "Gen 1st",
			"Cov #Vul", "Cov Kinds", "Cov 1st", "Corpus", "Features", "Density"},
		Notes: []string{
			"Both engines run the full discovery pipeline and stop at the same",
			"frame budget; 1st is the frame count of the first discovery (0 = none).",
			"Features/Density describe the behavioral coverage map (dispatch state x",
			"CMDCL x encap depth x security class, Serial API handlers, oracle events).",
		},
	}
	devices := []string{"D1", "D2", "D3", "D4", "D5"}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "covfuzz/" + idx + "/gen", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration, Frames: frames},
			fleet.Job{Name: "covfuzz/" + idx + "/cov", Device: idx,
				Strategy: fuzz.StrategyFull, FuzzMode: fleet.ModeCoverage,
				Seed: seed, Budget: duration, Frames: frames})
	}
	outs, err := runCampaigns("covfuzz", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []CovFuzzRow
	for i, idx := range devices {
		gen := outs[2*i].Campaign.Fuzz
		cov := outs[2*i+1].CovFuzz
		row := CovFuzzRow{
			Index:    idx,
			Frames:   frames,
			GenVulns: len(gen.Findings), GenKinds: distinctKinds(gen.Findings),
			GenFirst: framesToFirst(gen.Findings),
			CovVulns: len(cov.Findings), CovKinds: distinctKinds(cov.Findings),
			CovFirst:  framesToFirst(cov.Findings),
			CovCorpus: cov.CorpusSize, CovFeatures: cov.Coverage.Features,
			CovDensity:   cov.Coverage.Density,
			SeedsMinimal: cov.SeedsMinimized,
		}
		rows = append(rows, row)
		out.AddRow(idx, strconv.Itoa(row.Frames),
			strconv.Itoa(row.GenVulns), strconv.Itoa(row.GenKinds), strconv.Itoa(row.GenFirst),
			strconv.Itoa(row.CovVulns), strconv.Itoa(row.CovKinds), strconv.Itoa(row.CovFirst),
			strconv.Itoa(row.CovCorpus), strconv.Itoa(row.CovFeatures),
			fmt.Sprintf("%.5f", row.CovDensity))
	}
	return out, rows, nil
}
