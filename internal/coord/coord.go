// Package coord turns one campaign into leased work units spread across
// many worker processes (or machines) and merges the results back into
// the exact byte stream a single-machine run would have produced.
//
// # Roles
//
// The Coordinator owns the campaign: the full job list, its spec hash
// (the same CRC-64 fingerprint internal/checkpoint journals carry), and
// a crash-safe journal of every completed job. It hands out Leases —
// (job, deadline) pairs — over a small HTTP/JSON protocol, tracks worker
// heartbeats, re-issues leases whose deadline passed (a crashed or
// straggling worker), and accepts journal-record uploads.
//
// Workers are thin: RunWorker loops lease → execute → upload, sending
// heartbeats while a job runs and retrying with exponential backoff when
// the coordinator is unreachable. A worker may keep a local checkpoint
// journal so a kill-and-restart re-uploads finished work instead of
// re-executing it.
//
// # Protocol
//
//	GET  /manifest   campaign identity: name, spec hash, job count, TTL
//	POST /lease      {worker} → a leased job, a retry-after backoff, or done
//	POST /heartbeat  {worker, lease_id} extends the lease; 410 if expired
//	POST /result     {job_index, spec_hash, body} journals one outcome
//	GET  /status     live JSON state (also mounted at /coord on -obs-addr)
//
// # Determinism
//
// Every job is fully determined by its spec, so executing it twice —
// on different workers, after a lease expired, before and after a
// coordinator restart — produces byte-identical outcomes. The
// coordinator therefore treats leases as scheduling hints, not
// correctness state: a result upload is valid whenever its spec hash
// matches the manifest, even from a lease it no longer remembers. A
// duplicate upload (a late straggler finishing after its job was
// re-issued and completed elsewhere) is deduplicated by byte comparison
// exactly like a shard merge; bytes that differ are corruption and are
// refused. Leases live only in memory — after a coordinator restart the
// journal restores every completed job and the open ones are simply
// re-leased. internal/harness pins the invariant: coordinator + N
// workers == the single-machine run, byte-for-byte, tables and bug log
// included, under worker kills and coordinator restarts.
//
// DESIGN.md §16 documents the lease protocol and the failure matrix.
package coord

import (
	"encoding/json"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/telemetry"
)

// DefaultLeaseTTL is the lease deadline granted to a worker per job and
// heartbeat. Campaigns are simulated, so wall-clock per job is short;
// two minutes tolerates slow CI runners without stalling re-issue long.
const DefaultLeaseTTL = 2 * time.Minute

// Process-wide coordinator and worker metrics.
var (
	mLeases     = telemetry.Default().Counter("coord_leases_issued_total")
	mExpired    = telemetry.Default().Counter("coord_leases_expired_total")
	mHeartbeats = telemetry.Default().Counter("coord_heartbeats_total")
	mStale      = telemetry.Default().Counter("coord_heartbeats_stale_total")
	mResults    = telemetry.Default().Counter("coord_results_total")
	mDuplicates = telemetry.Default().Counter("coord_results_duplicate_total")
	mRejected   = telemetry.Default().Counter("coord_results_rejected_total")

	mWorkerLeases  = telemetry.Default().Counter("coord_worker_leases_total")
	mWorkerUploads = telemetry.Default().Counter("coord_worker_uploads_total")
	mWorkerCached  = telemetry.Default().Counter("coord_worker_cached_total")
	mWorkerRetries = telemetry.Default().Counter("coord_worker_retries_total")
)

// ManifestReply is GET /manifest: the campaign the coordinator serves.
// Workers stamp it into their local checkpoint journals so a cached
// outcome can never be replayed into a different campaign.
type ManifestReply struct {
	// Campaign names the experiment ("table5", "smoke", ...).
	Campaign string `json:"campaign"`
	// SpecHash fingerprints the full job list (checkpoint.SpecHash).
	SpecHash string `json:"spec_hash"`
	// TotalJobs is the campaign's job count.
	TotalJobs int `json:"total_jobs"`
	// LeaseTTL is the lease deadline workers should heartbeat within.
	LeaseTTL time.Duration `json:"lease_ttl"`
}

// LeaseRequest is POST /lease: a worker asking for a work unit.
type LeaseRequest struct {
	// Worker identifies the requester (status, straggler attribution).
	Worker string `json:"worker"`
}

// LeaseReply answers a lease request. Exactly one of Done, RetryAfter>0,
// or Job non-nil holds.
type LeaseReply struct {
	// Done reports the campaign is complete (or failed): the worker
	// should exit its loop.
	Done bool `json:"done,omitempty"`
	// RetryAfter, when positive, means every remaining job is currently
	// leased: poll again after this long.
	RetryAfter time.Duration `json:"retry_after,omitempty"`
	// LeaseID names the granted lease for heartbeats.
	LeaseID string `json:"lease_id,omitempty"`
	// JobIndex is the job's position in the full job list.
	JobIndex int `json:"job_index,omitempty"`
	// Job is the complete job spec to execute.
	Job *fleet.Job `json:"job,omitempty"`
	// TTL is the lease deadline; heartbeat sooner than this to keep it.
	TTL time.Duration `json:"ttl,omitempty"`
	// SpecHash echoes the manifest so the result upload can prove which
	// job list the outcome belongs to.
	SpecHash string `json:"spec_hash,omitempty"`
}

// HeartbeatRequest is POST /heartbeat: extend a running job's lease.
type HeartbeatRequest struct {
	Worker  string `json:"worker"`
	LeaseID string `json:"lease_id"`
}

// ResultRequest is POST /result: one completed (or terminally failed)
// job's outcome. Body is the caller-serialised outcome journaled
// byte-for-byte, exactly as a local checkpoint would store it.
type ResultRequest struct {
	Worker   string `json:"worker"`
	LeaseID  string `json:"lease_id,omitempty"`
	JobIndex int    `json:"job_index"`
	// SpecHash must match the manifest: an upload from a drifted job
	// list is refused, never journaled.
	SpecHash string          `json:"spec_hash"`
	Attempts int             `json:"attempts,omitempty"`
	Body     json.RawMessage `json:"body,omitempty"`
	// Error, when non-empty, reports the job failed on the worker after
	// its retries; the coordinator fails the campaign (all-or-nothing,
	// matching fleet.FirstError semantics).
	Error string `json:"error,omitempty"`
}

// ResultReply reports how an upload was handled.
type ResultReply struct {
	// Status is "accepted" for a fresh outcome or "duplicate" for a
	// byte-identical re-upload (late straggler, worker resume).
	Status string `json:"status"`
}

// Status is the coordinator's live state (GET /status, and /coord on the
// observability server).
type Status struct {
	Campaign   string        `json:"campaign"`
	SpecHash   string        `json:"spec_hash"`
	TotalJobs  int           `json:"total_jobs"`
	Done       int           `json:"done"`
	Leased     int           `json:"leased"`
	Failed     string        `json:"failed,omitempty"`
	LeaseTTL   time.Duration `json:"lease_ttl"`
	Expired    int64         `json:"leases_expired"`
	Duplicates int64         `json:"results_duplicate"`
	Rejected   int64         `json:"results_rejected"`
	// Workers summarises every worker the coordinator has heard from.
	Workers map[string]WorkerStatus `json:"workers,omitempty"`
}

// WorkerStatus is one worker's footprint on the coordinator.
type WorkerStatus struct {
	Leases   int       `json:"leases"`
	Results  int       `json:"results"`
	LastSeen time.Time `json:"last_seen"`
}
