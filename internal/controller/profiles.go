package controller

import (
	"strconv"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// BugID indexes the paper's Table III zero-day vulnerabilities.
type BugID int

// The fifteen Table III bugs. Values match the paper's Bug ID column.
const (
	Bug01MemoryCorruption  BugID = 1  // CVE-2024-50929
	Bug02RogueInsertion    BugID = 2  // CVE-2024-50920
	Bug03NodeRemoval       BugID = 3  // CVE-2024-50931
	Bug04DatabaseOverwrite BugID = 4  // CVE-2024-50930
	Bug05AppDoS            BugID = 5  // CVE-2024-50921
	Bug06HostCrash         BugID = 6  // CVE-2023-6640
	Bug07ResetLocallyHang  BugID = 7  // CVE-2023-6533
	Bug08GroupInfoHang     BugID = 8  // CVE-2024-50924
	Bug09FirmwareMDHang    BugID = 9  // CVE-2023-6642
	Bug10VersionGetHang    BugID = 10 // CVE-2023-6641
	Bug11CommandListHang   BugID = 11 // CVE-2023-6643
	Bug12WakeupRemoval     BugID = 12 // CVE-2024-50928
	Bug13HostDoS           BugID = 13 // reported, no CVE
	Bug14BusyScanHang      BugID = 14 // reported, no CVE
	Bug15FirmwareReqHang   BugID = 15 // reported, no CVE
)

// String implements fmt.Stringer.
func (b BugID) String() string { return "Bug" + pad2(int(b)) }

func pad2(n int) string {
	if n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}

// MACBug identifies a legacy MAC-layer parsing fault — the one-day class of
// bugs that VFuzz's MAC-frame mutation reaches and ZCover's application-
// layer mutation never does (Table V: "no vulnerabilities found in common").
type MACBug int

// MAC parsing faults. Enum starts at 1.
const (
	// MACBugLenOverflow: LEN field larger than the received frame makes
	// the chipset read past the buffer.
	MACBugLenOverflow MACBug = iota + 1
	// MACBugRuntAck: an acknowledgement frame carrying payload bytes
	// confuses the transfer state machine.
	MACBugRuntAck
	// MACBugRoutedHeader: a routed header with a truncated repeater list
	// crashes the routing engine.
	MACBugRoutedHeader
	// MACBugEmptyMulticast: a multicast frame without an address mask
	// wedges the multicast parser.
	MACBugEmptyMulticast
)

// String implements fmt.Stringer.
func (b MACBug) String() string {
	switch b {
	case MACBugLenOverflow:
		return "mac-len-overflow"
	case MACBugRuntAck:
		return "mac-runt-ack"
	case MACBugRoutedHeader:
		return "mac-routed-header"
	case MACBugEmptyMulticast:
		return "mac-empty-multicast"
	default:
		return "MACBug(" + strconv.Itoa(int(b)) + ")"
	}
}

// Profile is the per-device configuration of one testbed controller
// (Tables II and IV of the paper).
type Profile struct {
	// Index is the testbed identifier ("D1".."D7").
	Index string
	// Brand and Model identify the product.
	Brand, Model string
	// Year is the model year.
	Year int
	// Host is the attached host software.
	Host HostKind
	// Home is the network home ID observed in Table IV.
	Home protocol.HomeID
	// Listed is the command-class list the controller advertises in its
	// NIF — the "known CMDCLs" of the fingerprinting phase.
	Listed []cmdclass.ClassID
	// Bugs is the subset of Table III bugs present on this device.
	Bugs []BugID
	// MACBugs is the device's legacy MAC parsing faults.
	MACBugs []MACBug
	// FirmwareVersion feeds the VERSION responder.
	FirmwareVersion [2]byte
	// Patched marks a firmware built against the updated Z-Wave
	// specification the paper's findings feed into (§V-B): every
	// specification-rooted vulnerability is closed. Implementation bugs in
	// the host programs (06, 13) and the legacy MAC one-days are out of
	// the specification's reach and survive.
	Patched bool
}

// specRooted reports whether a Table III bug's root cause is the Z-Wave
// specification (every row except the two implementation bugs 06 and 13).
func specRooted(id BugID) bool {
	return id != Bug06HostCrash && id != Bug13HostDoS
}

// HasBug reports whether the profile carries the given Table III bug.
// Patched firmware closes every specification-rooted bug.
func (p Profile) HasBug(id BugID) bool {
	if p.Patched && specRooted(id) {
		return false
	}
	for _, b := range p.Bugs {
		if b == id {
			return true
		}
	}
	return false
}

// PatchedProfile returns the profile rebuilt against the updated
// specification — same device, same NIF, spec-rooted bugs closed.
func PatchedProfile(index string) (Profile, bool) {
	p, ok := ProfileByIndex(index)
	if !ok {
		return Profile{}, false
	}
	p.Patched = true
	return p, ok
}

// modernListed is the 17-class NIF of the 700-series-era controllers
// (D1, D2, D4, D6 in Table IV).
func modernListed() []cmdclass.ClassID {
	return []cmdclass.ClassID{
		cmdclass.ClassZWavePlusInfo,
		cmdclass.ClassBasic,
		cmdclass.ClassControllerRepl,
		cmdclass.ClassApplicationStatus,
		cmdclass.ClassTransportService,
		cmdclass.ClassCRC16Encap,
		cmdclass.ClassAssocGroupInfo,
		cmdclass.ClassDeviceResetLocal,
		cmdclass.ClassSupervision,
		cmdclass.ClassManufacturerSpec,
		cmdclass.ClassPowerlevel,
		cmdclass.ClassInclusionCtrl,
		cmdclass.ClassFirmwareUpdateMD,
		cmdclass.ClassAssociation,
		cmdclass.ClassVersion,
		cmdclass.ClassSecurity0,
		cmdclass.ClassSecurity2,
	}
}

// legacyListed is the 15-class NIF of the 2015-era controllers (D3, D5,
// D7): they predate ZWAVEPLUS_INFO and SUPERVISION.
func legacyListed() []cmdclass.ClassID {
	out := make([]cmdclass.ClassID, 0, 15)
	for _, c := range modernListed() {
		if c == cmdclass.ClassZWavePlusInfo || c == cmdclass.ClassSupervision {
			continue
		}
		out = append(out, c)
	}
	return out
}

// commonBugs are the Table III bugs present on every tested controller.
func commonBugs() []BugID {
	return []BugID{
		Bug01MemoryCorruption, Bug02RogueInsertion, Bug03NodeRemoval,
		Bug04DatabaseOverwrite, Bug07ResetLocallyHang, Bug08GroupInfoHang,
		Bug09FirmwareMDHang, Bug10VersionGetHang, Bug11CommandListHang,
		Bug12WakeupRemoval, Bug14BusyScanHang, Bug15FirmwareReqHang,
	}
}

// usbBugs adds the PC-Controller-program bugs (06, 13) present on the USB
// interface controllers D1–D5.
func usbBugs() []BugID {
	return append(commonBugs(), Bug06HostCrash, Bug13HostDoS)
}

// hubBugs adds the smartphone-app bug (05) present on the Samsung hubs
// D6 and D7.
func hubBugs() []BugID {
	return append(commonBugs(), Bug05AppDoS)
}

// Profiles returns the seven controller profiles of the paper's testbed,
// in Table II order. Home IDs and NIF sizes follow Table IV; bug sets
// follow Table III's affected-device column; MAC one-day counts follow the
// VFuzz results in Table V (D1: 1, D2: 3, D3: 0, D4: 4, D5: 0).
func Profiles() []Profile {
	return []Profile{
		{
			Index: "D1", Brand: "ZooZ", Model: "ZST10", Year: 2022,
			Host: HostPCProgram, Home: 0xE7DE3F3D,
			Listed: modernListed(), Bugs: usbBugs(),
			MACBugs:         []MACBug{MACBugLenOverflow},
			FirmwareVersion: [2]byte{0x07, 0x12},
		},
		{
			Index: "D2", Brand: "SiLab", Model: "UZB-7", Year: 2019,
			Host: HostPCProgram, Home: 0xCD007171,
			Listed: modernListed(), Bugs: usbBugs(),
			MACBugs:         []MACBug{MACBugLenOverflow, MACBugRuntAck, MACBugRoutedHeader},
			FirmwareVersion: [2]byte{0x07, 0x0F},
		},
		{
			Index: "D3", Brand: "Nortek", Model: "HUSBZB-1", Year: 2015,
			Host: HostPCProgram, Home: 0xCB51722D,
			Listed: legacyListed(), Bugs: usbBugs(),
			FirmwareVersion: [2]byte{0x04, 0x3C},
		},
		{
			Index: "D4", Brand: "Aeotec", Model: "ZW090-A", Year: 2015,
			Host: HostPCProgram, Home: 0xC7E9DD54,
			Listed: modernListed(), Bugs: usbBugs(),
			MACBugs: []MACBug{
				MACBugLenOverflow, MACBugRuntAck,
				MACBugRoutedHeader, MACBugEmptyMulticast,
			},
			FirmwareVersion: [2]byte{0x04, 0x36},
		},
		{
			Index: "D5", Brand: "ZWaveMe", Model: "ZMEUUZB1", Year: 2015,
			Host: HostPCProgram, Home: 0xF4C3754D,
			Listed: legacyListed(), Bugs: usbBugs(),
			FirmwareVersion: [2]byte{0x04, 0x22},
		},
		{
			Index: "D6", Brand: "Samsung", Model: "ET-WV520", Year: 2017,
			Host: HostSmartApp, Home: 0xCB95A34A,
			Listed: modernListed(), Bugs: hubBugs(),
			FirmwareVersion: [2]byte{0x05, 0x27},
		},
		{
			Index: "D7", Brand: "Samsung", Model: "STH-ETH-200", Year: 2015,
			Host: HostSmartApp, Home: 0xEDC87EE4,
			Listed: legacyListed(), Bugs: hubBugs(),
			FirmwareVersion: [2]byte{0x04, 0x18},
		},
	}
}

// ProfileByIndex returns the profile with the given testbed index.
func ProfileByIndex(idx string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Index == idx {
			return p, true
		}
	}
	return Profile{}, false
}
