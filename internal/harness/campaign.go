// Package harness orchestrates complete experiments: it assembles a
// testbed, runs the three ZCover phases (or a baseline fuzzer) end to end,
// and regenerates every table and figure of the paper's evaluation
// section. Each experiment driver lives in its own file (table3.go,
// fig12.go, ...).
package harness

import (
	"fmt"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/testbed"
	"zcover/internal/vfuzz"
	"zcover/internal/zcover/discover"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/fuzz"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// PassiveScanWindow is how long campaigns sniff before interrogating the
// target; the testbed schedules periodic slave reports inside it.
const PassiveScanWindow = 2 * time.Minute

// Campaign is one complete ZCover run against one testbed.
type Campaign struct {
	// Fingerprint is the phase-1 output.
	Fingerprint scan.Fingerprint
	// Discovery is the phase-2 output (zero value for β/γ, which skip it
	// in whole or in part).
	Discovery discover.Result
	// Fuzz is the phase-3 campaign result.
	Fuzz *fuzz.Result
}

// RunZCover executes the full ZCover pipeline against the testbed's
// controller with the given strategy and fuzzing budget.
func RunZCover(tb *testbed.Testbed, strategy fuzz.Strategy, duration time.Duration, seed int64) (*Campaign, error) {
	return RunZCoverObserved(tb, strategy, duration, seed, nil)
}

// RunZCoverObserved is RunZCover with a live finding callback.
func RunZCoverObserved(tb *testbed.Testbed, strategy fuzz.Strategy, duration time.Duration, seed int64, onFinding func(fuzz.Finding)) (*Campaign, error) {
	reg, err := cmdclass.Load()
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	d := dongle.New(tb.Medium, tb.Region)

	// Phase 1: known-properties fingerprinting over live traffic.
	tb.ScheduleTraffic(12, 10*time.Second)
	fp, err := scan.FingerprintTarget(d, PassiveScanWindow, 0)
	if err != nil {
		return nil, fmt.Errorf("harness: fingerprinting: %w", err)
	}
	out := &Campaign{Fingerprint: fp}

	// Phase 2: unknown-properties discovery (full strategy only — the β
	// ablation deliberately ignores unknown classes, γ ignores both).
	var listed, prioritized []*cmdclass.Class
	for _, id := range fp.Listed {
		if cls, ok := reg.Get(id); ok {
			listed = append(listed, cls)
		}
	}
	if strategy == fuzz.StrategyFull {
		out.Discovery, err = discover.Run(d, reg, fp)
		if err != nil {
			return nil, fmt.Errorf("harness: discovery: %w", err)
		}
		prioritized = out.Discovery.Prioritized
	}

	// Phase 3: position-sensitive mutation fuzzing.
	var mut *mutate.Mutator
	if strategy == fuzz.StrategyRandom {
		mut = mutate.NewRandom(seed)
	} else {
		mut = mutate.New(mutate.Semantics{Controller: fp.Controller, KnownNodes: fp.Nodes}, seed)
	}
	queue := fuzz.BuildQueue(strategy, reg, listed, prioritized, seed)
	engine, err := fuzz.New(d, fp, queue, mut, strategy, tb.Controller.Profile().Index, fuzz.Config{
		Duration:  duration,
		OnFinding: onFinding,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	sub := tb.Bus.Subscribe(engine.Observe)
	defer sub.Unsubscribe()
	out.Fuzz = engine.Run()
	if strategy == fuzz.StrategyFull {
		// Only the full strategy runs discovery; for β/γ the engine's own
		// count stands rather than being clobbered by the zero-value
		// Discovery.
		out.Fuzz.CommandsCovered = len(out.Discovery.ConfirmedCommands)
	}
	return out, nil
}

// RunVFuzz executes the VFuzz baseline against the testbed's controller.
// VFuzz fingerprints the network the same way (it, too, scans for home and
// node IDs) and then fuzzes MAC frames for the budget.
func RunVFuzz(tb *testbed.Testbed, duration time.Duration, seed int64) (*fuzz.Result, error) {
	return RunVFuzzObserved(tb, duration, seed, nil)
}

// RunVFuzzObserved is RunVFuzz with a live finding callback.
func RunVFuzzObserved(tb *testbed.Testbed, duration time.Duration, seed int64, onFinding func(fuzz.Finding)) (*fuzz.Result, error) {
	d := dongle.New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(12, 10*time.Second)
	nets := scan.Passive(d, PassiveScanWindow)
	if len(nets) == 0 {
		return nil, fmt.Errorf("harness: vfuzz: no traffic observed")
	}
	net := nets[0]
	engine := vfuzz.New(d, net.Home, net.Controller, vfuzz.Config{
		Duration: duration, Seed: seed, OnFinding: onFinding,
	})
	sub := tb.Bus.Subscribe(engine.Observe)
	defer sub.Unsubscribe()
	res := engine.Run()
	res.Device = tb.Controller.Profile().Index
	return res, nil
}
