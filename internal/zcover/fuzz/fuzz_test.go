package fuzz

import (
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/mutate"
	"zcover/internal/zcover/scan"
)

// newEngine builds an engine wired to a fresh testbed, with the queue
// restricted to the given classes.
func newEngine(t *testing.T, index string, classes []cmdclass.ClassID, cfg Config) (*Engine, *testbed.Testbed) {
	t.Helper()
	tb, err := testbed.New(index, 21)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	fp := scan.Fingerprint{
		Home:       tb.Home(),
		Controller: testbed.ControllerID,
		Nodes:      []protocol.NodeID{0x01, 0x02, 0x03},
	}
	var queue []*cmdclass.Class
	for _, id := range classes {
		if cls, ok := cmdclass.MustLoad().Get(id); ok {
			queue = append(queue, cls)
			continue
		}
		cls, ok := cmdclass.HiddenClass(id)
		if !ok {
			t.Fatalf("class %s unknown", id)
		}
		queue = append(queue, cls)
	}
	mut := mutate.New(mutate.Semantics{Controller: fp.Controller, KnownNodes: fp.Nodes}, 21)
	eng, err := New(d, fp, queue, mut, StrategyFull, index, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb.Bus.Subscribe(eng.Observe)
	return eng, tb
}

func TestEngineFindsHangBugInOneClass(t *testing.T) {
	eng, _ := newEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion}, Config{
		Duration: 10 * time.Minute,
	})
	res := eng.Run()
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %d: %+v", len(res.Findings), res.Findings)
	}
	f := res.Findings[0]
	if f.Event.Kind != oracle.ServiceHang || f.Event.Class != 0x86 || f.Event.Cmd != 0x13 {
		t.Fatalf("finding = %+v", f.Event)
	}
	if len(f.TriggerPayload) < 3 || f.TriggerPayload[0] != 0x86 || f.TriggerPayload[1] != 0x13 {
		t.Fatalf("trigger payload % X", f.TriggerPayload)
	}
}

func TestEngineDoesNotRepeatCrashCommands(t *testing.T) {
	eng, _ := newEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassDeviceResetLocal}, Config{
		Duration: 30 * time.Minute,
	})
	res := eng.Run()
	if len(res.Findings) != 1 {
		t.Fatalf("findings = %d", len(res.Findings))
	}
	// Re-triggering the 68 s hang would flood duplicates; the engine's
	// crash filter must keep them near zero.
	if res.Duplicates > 2 {
		t.Fatalf("duplicates = %d, want <= 2", res.Duplicates)
	}
}

func TestEngineMemoryBugsDoNotStopCampaign(t *testing.T) {
	eng, tb := newEngine(t, "D2", []cmdclass.ClassID{cmdclass.ClassZWaveProtocol}, Config{
		Duration: 45 * time.Minute,
	})
	res := eng.Run()
	sigs := map[string]bool{}
	for _, f := range res.Findings {
		sigs[f.Signature] = true
	}
	for _, want := range []string{
		"node-removed/0x01/0x0D",
		"database-overwritten/0x01/0x0D",
		"wakeup-cleared/0x01/0x0D",
		"rogue-node-added/0x01/0x0D",
		"node-tampered/0x01/0x0D",
		"service-hang/0x01/0x04",
	} {
		if !sigs[want] {
			t.Errorf("missing finding %s (got %v)", want, res.Findings)
		}
	}
	// The attack left visible damage in the controller's memory.
	if tb.Controller.Table().Len() == 3 {
		t.Error("node table untouched after memory-tampering campaign")
	}
}

func TestEngineRespectsDuration(t *testing.T) {
	eng, _ := newEngine(t, "D3", []cmdclass.ClassID{cmdclass.ClassBasic}, Config{
		Duration: 2 * time.Minute,
	})
	res := eng.Run()
	if res.Elapsed < 2*time.Minute || res.Elapsed > 3*time.Minute {
		t.Fatalf("elapsed = %s, want ~2m", res.Elapsed)
	}
	if res.PacketsSent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestEngineTimelineMonotonic(t *testing.T) {
	eng, _ := newEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion, cmdclass.ClassBasic}, Config{
		Duration: 10 * time.Minute,
	})
	res := eng.Run()
	if len(res.Timeline) < 3 {
		t.Fatalf("timeline has %d samples", len(res.Timeline))
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Packets < res.Timeline[i-1].Packets && res.Timeline[i].Elapsed > res.Timeline[i-1].Elapsed {
			t.Fatalf("timeline not monotonic at %d: %+v", i, res.Timeline[i-1:i+1])
		}
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Packets != res.PacketsSent {
		t.Fatalf("final sample packets=%d, result=%d", last.Packets, res.PacketsSent)
	}
}

func TestEngineValidation(t *testing.T) {
	if _, err := New(nil, scan.Fingerprint{}, nil, nil, StrategyFull, "D1", Config{}); err == nil {
		t.Fatal("New accepted nil dongle/mutator")
	}
	tb, err := testbed.New("D1", 1)
	if err != nil {
		t.Fatal(err)
	}
	d := dongle.New(tb.Medium, tb.Region)
	mut := mutate.New(mutate.Semantics{}, 1)
	if _, err := New(d, scan.Fingerprint{}, nil, mut, StrategyFull, "D1", Config{}); err == nil {
		t.Fatal("New accepted an empty queue")
	}
}

func TestBuildQueueShapes(t *testing.T) {
	reg := cmdclass.MustLoad()
	listed := reg.ControllerCluster()[:5]
	prioritized := reg.ControllerCluster()

	if q := BuildQueue(StrategyKnownOnly, reg, listed, prioritized, 1); len(q) != 5 {
		t.Fatalf("beta queue = %d classes", len(q))
	}
	if q := BuildQueue(StrategyRandom, reg, listed, prioritized, 1); len(q) != 256 {
		t.Fatalf("gamma queue = %d classes", len(q))
	}
	if q := BuildQueue(StrategyFull, reg, listed, prioritized, 1); len(q) != len(prioritized) {
		t.Fatalf("full queue = %d classes", len(q))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults(45)
	if c.Duration != 24*time.Hour {
		t.Errorf("default duration = %s", c.Duration)
	}
	if c.PerClass != 24*time.Hour/45 {
		t.Errorf("default per-class = %s", c.PerClass)
	}
	if c.ResponseWindow <= 0 || c.InterTestGap <= 0 || c.PingRetry <= 0 || c.SamplePeriod <= 0 {
		t.Error("defaults left zero fields")
	}
}

func TestOnFindingHookStreamsLive(t *testing.T) {
	eng, _ := newEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion}, Config{
		Duration:  10 * time.Minute,
		OnFinding: nil,
	})
	_ = eng
	var streamed []string
	eng2, _ := newEngine(t, "D1", []cmdclass.ClassID{cmdclass.ClassVersion}, Config{
		Duration:  10 * time.Minute,
		OnFinding: func(f Finding) { streamed = append(streamed, f.Signature) },
	})
	res := eng2.Run()
	if len(streamed) != len(res.Findings) {
		t.Fatalf("streamed %d, result has %d", len(streamed), len(res.Findings))
	}
}

func TestResultHelpers(t *testing.T) {
	res := &Result{Findings: []Finding{{Signature: "a"}, {Signature: "b"}}}
	if res.UniqueVulnerabilities() != 2 {
		t.Fatal("UniqueVulnerabilities wrong")
	}
	e := LogEntry{ElapsedSec: 90.5, Payload: "7a03"}
	if e.Elapsed() != 90500*time.Millisecond {
		t.Fatalf("Elapsed = %s", e.Elapsed())
	}
	p, err := e.TriggerPayload()
	if err != nil || len(p) != 2 || p[0] != 0x7A {
		t.Fatalf("payload = % X, %v", p, err)
	}
}

func TestMeasuredOutageMatchesModelDurations(t *testing.T) {
	// The engine's own liveness probes must measure the hang windows of
	// the vulnerability models to within the ping-retry granularity.
	eng, _ := newEngine(t, "D1", []cmdclass.ClassID{
		cmdclass.ClassDeviceResetLocal, // 68 s hang
		cmdclass.ClassVersion,          // 4 s hang
	}, Config{Duration: 20 * time.Minute})
	res := eng.Run()
	want := map[string]time.Duration{
		"service-hang/0x5A/0x01": 68 * time.Second,
		"service-hang/0x86/0x13": 4 * time.Second,
	}
	for _, f := range res.Findings {
		expected, ok := want[f.Signature]
		if !ok {
			continue
		}
		delete(want, f.Signature)
		// The response window consumes the first ~0.5 s of the hang before
		// measurement starts; ping retries add up to ~5 s at the end.
		if f.MeasuredOutage < expected-time.Second || f.MeasuredOutage > expected+6*time.Second {
			t.Errorf("%s: measured outage %s, model %s", f.Signature, f.MeasuredOutage, expected)
		}
	}
	if len(want) != 0 {
		t.Fatalf("findings missing: %v", want)
	}
}

func TestMemoryBugsHaveNoOutage(t *testing.T) {
	eng, _ := newEngine(t, "D2", []cmdclass.ClassID{cmdclass.ClassZWaveProtocol}, Config{
		Duration: 30 * time.Minute,
	})
	res := eng.Run()
	for _, f := range res.Findings {
		if f.Event.Kind.String() == "node-removed" && f.MeasuredOutage != 0 {
			t.Errorf("memory bug has measured outage %s", f.MeasuredOutage)
		}
	}
}
