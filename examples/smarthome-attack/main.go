// Smart-home attack walkthrough: the end-to-end scenario of the paper's
// Figure 2. A homeowner controls an S2-encrypted door lock through their
// hub; an attacker 10–70 m away sniffs the network, crafts one unencrypted
// packet for the hidden network-management class, and erases the lock from
// the controller's memory — after which the homeowner can no longer
// control the door, without any alarm being raised.
package main

import (
	"fmt"
	"log"
	"time"

	"zcover"
	"zcover/internal/protocol"
	"zcover/internal/security"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

func main() {
	tb, err := zcover.NewTestbed("D6", 99)
	if err != nil {
		log.Fatal(err)
	}

	// ---- The happy smart home -------------------------------------------
	fmt.Println("1. Homeowner locks the door through the hub (S2 encrypted).")
	if err := operateLock(tb, 0xFF); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("   lock state: %s\n\n", lockState(tb))

	// ---- (1)-(3): the attacker scans the network ------------------------
	fmt.Println("2. Attacker sniffs all Z-Wave traffic from outside the house.")
	d := dongle.New(tb.Medium, tb.Region)
	tb.ScheduleTraffic(6, 10*time.Second)
	nets := scan.Passive(d, time.Minute+10*time.Second)
	net := nets[0]
	fmt.Printf("   found network %s, nodes %v, controller node %s\n",
		net.Home, net.Nodes, net.Controller)
	fmt.Println("   (S2 hides payloads, but home and node IDs are clear text)")
	fmt.Println()

	// ---- (4): one unencrypted packet deletes the lock -------------------
	fmt.Println("3. Attacker injects ONE unencrypted packet: hidden CMDCL 0x01,")
	fmt.Println("   CMD 0x0D (NEW_NODE_REGISTERED) naming the lock with no node info.")
	attack := []byte{0x01, 0x0D, byte(testbed.LockID)}
	if _, err := d.SendAndObserve(net.Home, scan.AttackerNodeID, net.Controller,
		attack, dongle.DefaultResponseWindow); err != nil {
		log.Fatal(err)
	}
	if _, stillThere := tb.Controller.Table().Get(testbed.LockID); stillThere {
		log.Fatal("attack failed: lock still registered")
	}
	fmt.Printf("   controller memory now: %v — the lock (node %d) is GONE\n\n",
		tb.Controller.Table().IDs(), testbed.LockID)
	for _, e := range tb.Bus.Events() {
		fmt.Printf("   oracle: %s\n", e)
	}
	fmt.Println()

	// ---- (5)-(6): the homeowner cannot lock the door anymore ------------
	fmt.Println("4. Homeowner tries to lock the door again...")
	if err := operateLock(tb, 0xFF); err != nil {
		fmt.Printf("   command fails: %v\n", err)
	}
	fmt.Println("   The hub no longer recognises the lock (CVE-2024-50931).")
	fmt.Println("   The physical lock still works locally, but the smart home")
	fmt.Println("   has silently lost control of the front door.")
}

// operateLock models the hub acting on a homeowner command: it looks the
// lock up in its own memory, then sends an S2-encapsulated operation.
func operateLock(tb *zcover.Testbed, mode byte) error {
	if _, known := tb.Controller.Table().Get(testbed.LockID); !known {
		return fmt.Errorf("device %d not found in controller memory", testbed.LockID)
	}
	sess, ok := tb.Controller.Session(testbed.LockID)
	if !ok {
		return fmt.Errorf("no security session for device %d", testbed.LockID)
	}
	h := tb.Home()
	aad := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h),
		testbed.ControllerID, testbed.LockID}
	encap, err := sess.Encapsulate(security.FlowAtoB, aad, []byte{0x62, 0x01, mode})
	if err != nil {
		return err
	}
	return tb.Controller.Node().Send(protocol.NodeID(testbed.LockID), encap)
}

// lockState renders the lock's current mode.
func lockState(tb *zcover.Testbed) string {
	if tb.Lock.Mode() == 0xFF {
		return "SECURED (locked)"
	}
	return "UNSECURED (unlocked)"
}
