#!/bin/sh
# bench_scaling.sh — run the fleet worker-scaling sweep and write
# BENCH_scaling.json (sim-rate, parallel efficiency, per-phase wall share,
# top contended locks, ranked bottlenecks). `make bench-scaling` wraps it.
#
#   ./scripts/bench_scaling.sh          # sweep workers 1,2,4,8, 24h budgets
#   ./scripts/bench_scaling.sh -gate    # also fail if parallel efficiency at
#                                       # the top worker count regressed >10%
#                                       # vs the committed BENCH_scaling.json
#   SCALING_BUDGET=2h SCALING_WORKERS=1,4 ./scripts/bench_scaling.sh
#   SCALING_OUT=/tmp/s.json PROFILE_DIR=/tmp/profiles ./scripts/bench_scaling.sh
#
# The gate compares efficiency (speedup over the host's own ideal,
# min(workers, GOMAXPROCS)), so reports from a 1-core container and an
# 8-core runner gate against the same bar.
set -eu

cd "$(dirname "$0")/.."

out="${SCALING_OUT:-BENCH_scaling.json}"
budget="${SCALING_BUDGET:-24h}"
workers="${SCALING_WORKERS:-1,2,4,8}"
profdir="${PROFILE_DIR:-}"
gate=""
for arg in "$@"; do
    case "$arg" in
    -gate) gate="yes" ;;
    *)
        echo "bench_scaling.sh: unknown flag $arg (want -gate)" >&2
        exit 2
        ;;
    esac
done

git_sha="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

set -- -run scaling -fuzz "$budget" -scaling-workers "$workers" \
    -scaling-out "$out" -git-sha "$git_sha"
if [ -n "$gate" ]; then
    if [ ! -f BENCH_scaling.json ]; then
        echo "bench_scaling.sh: -gate needs a committed BENCH_scaling.json" >&2
        exit 2
    fi
    # The CLI loads the baseline before overwriting $out, so gating the
    # file in place compares old-versus-new.
    set -- "$@" -scaling-baseline BENCH_scaling.json
fi
if [ -n "$profdir" ]; then
    set -- "$@" -profile-dir "$profdir"
fi

echo "== experiments -run scaling (budget $budget, workers $workers) =="
go run ./cmd/experiments "$@"
echo "bench-scaling: wrote $out"
