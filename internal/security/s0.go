package security

import (
	"crypto/rand"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"

	"zcover/internal/telemetry"
)

// Process-wide S0 transport metrics (the S2 counterparts live in s2.go).
var (
	mS0Encrypt  = telemetry.Default().Counter("security_s0_encrypt_total")
	mS0Decrypt  = telemetry.Default().Counter("security_s0_decrypt_total")
	mS0AuthFail = telemetry.Default().Counter("security_s0_auth_fail_total")
)

// Security 0 (S0) encapsulation: the legacy AES-128 transport. Key
// derivation, OFB encryption, and CBC-MAC authentication follow the S0
// specification. The scheme's well-known weakness — the network key is
// transferred during inclusion under a *fixed all-zero temporary key*
// (Fouladi & Ghanoun, Black Hat 2013; paper §II-A1) — is reproduced
// faithfully: see S0TempKey and the s0 inclusion test, which demonstrates
// that a passive sniffer recovers the network key.

const (
	// S0NonceSize is the size of each S0 nonce half (sender/receiver).
	S0NonceSize = 8
	// S0MACSize is the truncated CBC-MAC length.
	S0MACSize = 8
)

// ErrS0Auth indicates S0 MAC verification failed.
var ErrS0Auth = errors.New("security: S0 authentication failed")

// s0TempKey is the specification's fixed all-zero S0 temporary key.
var s0TempKey [KeySize]byte

// S0TempKey returns the temporary key protecting the S0 network-key
// transfer. The specification fixes it to all zeros — the root cause of the
// S0 downgrade/MITM weakness.
//
// The returned slice aliases a single package-level constant so that every
// call resolves to the same key-context cache entry; callers must treat it
// as read-only. (It used to return a fresh zero slice per call, which both
// defeated the cache and let callers mutate what looked like shared state.)
func S0TempKey() []byte { return s0TempKey[:] }

// s0 key-derivation constants: the network key encrypts a fixed pattern to
// produce the encryption and authentication keys.
var (
	s0EncPattern  = repeatByte(0xAA, BlockSize)
	s0AuthPattern = repeatByte(0x55, BlockSize)
)

func repeatByte(b byte, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

// S0Keys holds the derived S0 encryption and authentication keys.
type S0Keys struct {
	// Enc is the AES-OFB encryption key.
	Enc []byte
	// Auth is the CBC-MAC authentication key.
	Auth []byte
}

// DeriveS0Keys expands a 16-byte network key into the S0 key pair.
func DeriveS0Keys(networkKey []byte) (S0Keys, error) {
	ctx, err := contextFor(networkKey)
	if err != nil {
		return S0Keys{}, fmt.Errorf("security: S0 network key: %w", err)
	}
	enc := make([]byte, BlockSize)
	auth := make([]byte, BlockSize)
	ctx.block.Encrypt(enc, s0EncPattern)
	ctx.block.Encrypt(auth, s0AuthPattern)
	return S0Keys{Enc: enc, Auth: auth}, nil
}

// NewS0Nonce draws one 8-byte nonce half.
func NewS0Nonce(rng io.Reader) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	n := make([]byte, S0NonceSize)
	if _, err := io.ReadFull(rng, n); err != nil {
		return nil, fmt.Errorf("security: drawing S0 nonce: %w", err)
	}
	return n, nil
}

// S0Encapsulate protects plaintext with the S0 scheme. senderNonce and
// receiverNonce are the two 8-byte halves of the OFB IV (the receiver half
// comes from a NONCE_REPORT exchange). header binds the MAC-layer context
// (security byte, src, dst, length) into the MAC as the spec prescribes.
// The returned payload is [0x98, 0x81, senderNonce, ciphertext,
// receiverNonceID, mac].
func S0Encapsulate(keys S0Keys, senderNonce, receiverNonce, header, plaintext []byte) ([]byte, error) {
	if len(senderNonce) != S0NonceSize || len(receiverNonce) != S0NonceSize {
		return nil, fmt.Errorf("security: S0 nonces must be %d bytes", S0NonceSize)
	}
	encCtx, err := contextFor(keys.Enc)
	if err != nil {
		return nil, err
	}
	authCtx, err := contextFor(keys.Auth)
	if err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	copy(sc.iv[:S0NonceSize], senderNonce)
	copy(sc.iv[S0NonceSize:], receiverNonce)

	// The single allocation is the returned payload; the ciphertext is
	// produced in place inside it.
	out := make([]byte, 0, 2+S0NonceSize+len(plaintext)+1+S0MACSize)
	out = append(out, 0x98, 0x81)
	out = append(out, senderNonce...)
	ctStart := len(out)
	out = out[:ctStart+len(plaintext)]
	ct := out[ctStart:]
	ofbCrypt(encCtx, sc, ct, plaintext)
	mac := s0MAC(authCtx, sc, header, ct)
	out = append(out, receiverNonce[0]) // nonce identifier
	out = append(out, mac[:]...)
	mS0Encrypt.Inc()
	return out, nil
}

// S0Decapsulate reverses S0Encapsulate. The caller supplies the receiver
// nonce it handed out earlier (matched by the embedded nonce identifier).
func S0Decapsulate(keys S0Keys, receiverNonce, header, payload []byte) ([]byte, error) {
	minLen := 2 + S0NonceSize + 1 + S0MACSize
	if len(payload) < minLen {
		mS0AuthFail.Inc()
		return nil, fmt.Errorf("%w: payload too short (%d bytes)", ErrS0Auth, len(payload))
	}
	if payload[0] != 0x98 || payload[1] != 0x81 {
		mS0AuthFail.Inc()
		return nil, fmt.Errorf("%w: not an S0 message encapsulation", ErrS0Auth)
	}
	senderNonce := payload[2 : 2+S0NonceSize]
	ct := payload[2+S0NonceSize : len(payload)-1-S0MACSize]
	nonceID := payload[len(payload)-1-S0MACSize]
	gotMAC := payload[len(payload)-S0MACSize:]

	if nonceID != receiverNonce[0] {
		mS0AuthFail.Inc()
		return nil, fmt.Errorf("%w: unknown receiver nonce id %#02x", ErrS0Auth, nonceID)
	}
	authCtx, err := contextFor(keys.Auth)
	if err != nil {
		return nil, err
	}
	sc := getScratch()
	defer putScratch(sc)
	copy(sc.iv[:S0NonceSize], senderNonce)
	copy(sc.iv[S0NonceSize:], receiverNonce)
	wantMAC := s0MAC(authCtx, sc, header, ct)
	if subtle.ConstantTimeCompare(gotMAC, wantMAC[:]) != 1 {
		mS0AuthFail.Inc()
		return nil, ErrS0Auth
	}
	encCtx, err := contextFor(keys.Enc)
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ct))
	ofbCrypt(encCtx, sc, pt, ct)
	mS0Decrypt.Inc()
	return pt, nil
}

// s0MAC computes the truncated AES-CBC-MAC over header and ciphertext,
// bound to the IV the caller placed in sc.iv. The MAC'd message (header,
// length byte, ciphertext) is assembled in sc.msg — S0 payloads are
// bounded by the 64-byte MAC frame, so the scratch always suffices.
func s0MAC(ctx *keyContext, sc *scratch, header, ct []byte) [S0MACSize]byte {
	var msg []byte
	if n := len(header) + 1 + len(ct); n <= len(sc.msg) {
		msg = sc.msg[:0]
	} else {
		msg = make([]byte, 0, n)
	}
	msg = append(msg, header...)
	msg = append(msg, byte(len(ct)))
	msg = append(msg, ct...)

	// CBC-MAC with the IV encrypted as the first block (per S0).
	ctx.block.Encrypt(sc.x[:], sc.iv[:])
	for i := 0; i < len(msg); i += BlockSize {
		end := i + BlockSize
		if end > len(msg) {
			end = len(msg)
		}
		xorBytes(&sc.x, msg[i:end])
		ctx.block.Encrypt(sc.x[:], sc.x[:])
	}
	var mac [S0MACSize]byte
	copy(mac[:], sc.x[:S0MACSize])
	return mac
}

// ofbCrypt applies AES-OFB keystream from the cached context, with the IV
// read from sc.iv (left intact for the MAC) and the keystream evolving in
// sc.ks. OFB is symmetric, so the same function encrypts and decrypts.
func ofbCrypt(ctx *keyContext, sc *scratch, dst, src []byte) {
	sc.ks = sc.iv
	for i := 0; i < len(src); i += BlockSize {
		ctx.block.Encrypt(sc.ks[:], sc.ks[:])
		end := i + BlockSize
		if end > len(src) {
			end = len(src)
		}
		for j := i; j < end; j++ {
			dst[j] = src[j] ^ sc.ks[j-i]
		}
	}
}

// S0EncryptNetworkKeyTransfer models the inclusion-time NETWORK_KEY_SET:
// the permanent network key encrypted under the *fixed all-zero temporary
// key*. A sniffer that captures this exchange recovers the network key —
// the S0 weakness the paper cites.
func S0EncryptNetworkKeyTransfer(networkKey, senderNonce, receiverNonce []byte) ([]byte, error) {
	tempKeys, err := DeriveS0Keys(S0TempKey())
	if err != nil {
		return nil, err
	}
	header := []byte{0x98, 0x06} // NETWORK_KEY_SET context
	return S0Encapsulate(tempKeys, senderNonce, receiverNonce, header, networkKey)
}

// S0RecoverNetworkKeyFromCapture is the attacker's side of the S0
// weakness: given a captured key-transfer encapsulation and the receiver
// nonce (both visible on the air), recover the network key using the
// known-fixed temporary key.
func S0RecoverNetworkKeyFromCapture(capture, receiverNonce []byte) ([]byte, error) {
	tempKeys, err := DeriveS0Keys(S0TempKey())
	if err != nil {
		return nil, err
	}
	header := []byte{0x98, 0x06}
	return S0Decapsulate(tempKeys, receiverNonce, header, capture)
}
