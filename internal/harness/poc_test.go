package harness

import (
	"bytes"
	"encoding/hex"
	"testing"
	"time"

	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// catalogEntries converts the canonical PoC catalogue into log entries.
func catalogEntries() []fuzz.LogEntry {
	var out []fuzz.LogEntry
	for _, b := range PaperBugs() {
		out = append(out, fuzz.LogEntry{
			Device:    b.PoCDevice,
			Signature: b.Signature,
			Class:     b.CMDCL,
			Cmd:       b.CMD,
			Payload:   hex.EncodeToString(b.PoCPayload),
		})
	}
	return out
}

func TestAll15CanonicalPoCsReproduce(t *testing.T) {
	results, err := VerifyPoCs(catalogEntries(), 61)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !r.Reproduced {
			t.Errorf("PoC for %s did not reproduce on %s (observed %v, payload %s)",
				r.Entry.Signature, r.Entry.Device, r.Observed, r.Entry.Payload)
		}
	}
}

func TestPoCsAreSinglePacket(t *testing.T) {
	for _, b := range PaperBugs() {
		if len(b.PoCPayload) == 0 || len(b.PoCPayload) > 12 {
			t.Errorf("bug %02d PoC payload has %d bytes", b.ID, len(b.PoCPayload))
		}
		if b.PoCPayload[0] != b.CMDCL {
			t.Errorf("bug %02d PoC targets class 0x%02X, catalogue says 0x%02X",
				b.ID, b.PoCPayload[0], b.CMDCL)
		}
	}
}

func TestBugLogRoundTripAndReplay(t *testing.T) {
	tb, err := testbed.New("D1", 62)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunZCover(tb, fuzz.StrategyFull, 30*time.Minute, 62)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fuzz.Findings) == 0 {
		t.Fatal("campaign found nothing")
	}

	var buf bytes.Buffer
	if err := fuzz.WriteLog(&buf, c.Fuzz); err != nil {
		t.Fatal(err)
	}
	entries, err := fuzz.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(c.Fuzz.Findings) {
		t.Fatalf("log round trip: %d entries, %d findings", len(entries), len(c.Fuzz.Findings))
	}
	for i, e := range entries {
		payload, err := e.TriggerPayload()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(payload, c.Fuzz.Findings[i].TriggerPayload) {
			t.Fatalf("entry %d payload mismatch", i)
		}
	}

	// Replaying the campaign's own triggers on a fresh device reproduces
	// almost everything; the rogue-insertion trigger is state-dependent
	// (its node ID existed mid-campaign but not on a fresh table), which
	// is exactly why the paper crafts PoCs manually after fuzzing.
	results, err := VerifyPoCs(entries, 63)
	if err != nil {
		t.Fatal(err)
	}
	reproduced := 0
	for _, r := range results {
		if r.Reproduced {
			reproduced++
		}
	}
	if reproduced < len(results)-2 {
		t.Fatalf("only %d/%d campaign triggers reproduced", reproduced, len(results))
	}
}

func TestReadLogRejectsGarbage(t *testing.T) {
	if _, err := fuzz.ReadLog(bytes.NewBufferString("{not json\n")); err == nil {
		t.Fatal("accepted malformed log")
	}
	entries, err := fuzz.ReadLog(bytes.NewBufferString(""))
	if err != nil || len(entries) != 0 {
		t.Fatalf("empty log: %v, %v", entries, err)
	}
	if _, err := (fuzz.LogEntry{Payload: "zz"}).TriggerPayload(); err == nil {
		t.Fatal("accepted bad hex payload")
	}
}
