package device

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
	"zcover/internal/vtime"
)

const testHome protocol.HomeID = 0xCB95A34A

func newTestbed(t *testing.T) (*radio.Medium, *Node) {
	t.Helper()
	m := radio.NewMedium(vtime.NewSimClock())
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	return m, hub
}

func TestIdentityNIFRoundTrip(t *testing.T) {
	id := Identity{
		Basic: BasicTypeSlave, Generic: GenericTypeEntryControl, Specific: 0x03,
		Capability: CapRouting, Security: SecS2,
		Classes: []cmdclass.ClassID{cmdclass.ClassBasic, cmdclass.ClassDoorLock},
	}
	got, ok := ParseNIF(id.NIFPayload())
	if !ok {
		t.Fatal("ParseNIF rejected own payload")
	}
	if got.Basic != id.Basic || got.Generic != id.Generic || got.Specific != id.Specific ||
		got.Capability != id.Capability || got.Security != id.Security {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, id)
	}
	if len(got.Classes) != 2 || got.Classes[1] != cmdclass.ClassDoorLock {
		t.Fatalf("classes = %v", got.Classes)
	}
}

func TestParseNIFRejectsGarbage(t *testing.T) {
	for _, payload := range [][]byte{nil, {0x01}, {0x01, 0x01, 0, 0}, {0x20, 0x01, 0, 0, 0, 0, 0, 0}} {
		if _, ok := ParseNIF(payload); ok {
			t.Errorf("ParseNIF accepted % X", payload)
		}
	}
}

func TestIsNIFRequest(t *testing.T) {
	if id, ok := IsNIFRequest(NIFRequestPayload(0x07)); !ok || id != 0x07 {
		t.Fatalf("IsNIFRequest = %v %v", id, ok)
	}
	if _, ok := IsNIFRequest([]byte{0x01, 0x0D, 0x02}); ok {
		t.Fatal("non-request payload accepted")
	}
	if id, ok := IsNIFRequest([]byte{0x01, 0x02}); !ok || id != 0 {
		t.Fatal("target-less request should parse with target 0")
	}
}

func TestNodeFiltersForeignHomeID(t *testing.T) {
	m, hub := newTestbed(t)
	got := 0
	hub.Handler = func(*protocol.Frame) { got++ }
	foreign := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: 0xDEADBEEF, ID: 0x02, Name: "foreign"})
	if err := foreign.Send(0x01, []byte{0x20, 0x02}); err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("frame from foreign home ID dispatched")
	}
}

func TestNodeFiltersOtherDestination(t *testing.T) {
	m, hub := newTestbed(t)
	got := 0
	hub.Handler = func(*protocol.Frame) { got++ }
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	if err := peer.Send(0x09, []byte{0x20, 0x02}); err != nil { // not for hub
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatal("frame for another node dispatched")
	}
	if err := peer.Send(protocol.NodeBroadcast, []byte{0x20, 0x02}); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("broadcast frame not dispatched")
	}
}

func TestNodeSendsMACAck(t *testing.T) {
	m, hub := newTestbed(t)
	hub.Handler = func(*protocol.Frame) {}
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	acked := 0
	peer.OnAck = func(*protocol.Frame) { acked++ }
	if err := peer.Send(0x01, NOPPayload()); err != nil {
		t.Fatal(err)
	}
	if acked != 1 {
		t.Fatalf("acks received = %d, want 1", acked)
	}
}

func TestNodeGateSuppressesAckAndDispatch(t *testing.T) {
	m, hub := newTestbed(t)
	dispatched := 0
	hub.Handler = func(*protocol.Frame) { dispatched++ }
	alive := false
	hub.Gate = func() bool { return alive }

	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	acked := 0
	peer.OnAck = func(*protocol.Frame) { acked++ }

	if err := peer.Send(0x01, NOPPayload()); err != nil {
		t.Fatal(err)
	}
	if acked != 0 || dispatched != 0 {
		t.Fatal("gated node responded")
	}
	alive = true
	if err := peer.Send(0x01, NOPPayload()); err != nil {
		t.Fatal(err)
	}
	if acked != 1 || dispatched != 1 {
		t.Fatalf("ungated node: acked=%d dispatched=%d", acked, dispatched)
	}
}

func TestNodeRawHookConsumesFrames(t *testing.T) {
	m, hub := newTestbed(t)
	dispatched := 0
	hub.Handler = func(*protocol.Frame) { dispatched++ }
	raws := 0
	hub.RawHook = func(raw []byte) bool { raws++; return true }
	peer := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "peer"})
	if err := peer.Send(0x01, NOPPayload()); err != nil {
		t.Fatal(err)
	}
	if raws != 1 || dispatched != 0 {
		t.Fatalf("raws=%d dispatched=%d", raws, dispatched)
	}
}

func TestPairS2EstablishesInteroperableSessions(t *testing.T) {
	p, err := PairS2(rand.New(rand.NewSource(5)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.NetworkKey) != security.KeySize {
		t.Fatalf("network key = %d bytes", len(p.NetworkKey))
	}
	aad := []byte("hdr")
	encap, err := p.ControllerSession.Encapsulate(security.FlowAtoB, aad, []byte("lock"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.DeviceSession.Decapsulate(security.FlowAtoB, aad, encap)
	if err != nil || string(got) != "lock" {
		t.Fatalf("device decap: %q, %v", got, err)
	}
}

func TestPairS2ReusesProvidedNetworkKey(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, security.KeySize)
	p, err := PairS2(rand.New(rand.NewSource(6)), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.NetworkKey, key) {
		t.Fatal("pairing replaced the provided network key")
	}
}

func TestPairS2TranscriptShape(t *testing.T) {
	p, err := PairS2(rand.New(rand.NewSource(7)), nil)
	if err != nil {
		t.Fatal(err)
	}
	// KEX_REPORT, KEX_SET, 2× PUBLIC_KEY_REPORT, NETWORK_KEY_GET,
	// NETWORK_KEY_REPORT, NETWORK_KEY_VERIFY, TRANSFER_END, NONCE_REPORT.
	if len(p.Transcript) != 9 {
		t.Fatalf("transcript has %d messages, want 9", len(p.Transcript))
	}
	for i, msg := range p.Transcript {
		if msg[0] != 0x9F {
			t.Fatalf("transcript[%d] not an S2 payload: % X", i, msg)
		}
	}
	// The network key must not appear in clear anywhere on the air.
	for i, msg := range p.Transcript {
		if bytes.Contains(msg, p.NetworkKey) {
			t.Fatalf("transcript[%d] leaks the network key", i)
		}
	}
}

func TestDoorLockAcceptsOnlyS2Operations(t *testing.T) {
	m, hub := newTestbed(t)
	lock := NewDoorLock(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "D8"}, 0x01)
	p, err := PairS2(rand.New(rand.NewSource(8)), nil)
	if err != nil {
		t.Fatal(err)
	}
	lock.InstallSession(p.DeviceSession)

	// Clear-text unlock attempt must be rejected.
	if err := hub.Send(0x02, []byte{byte(cmdclass.ClassDoorLock), byte(cmdclass.CmdDoorLockOperationSet), LockModeUnsecured}); err != nil {
		t.Fatal(err)
	}
	if lock.Mode() != LockModeSecured {
		t.Fatal("clear-text operation changed the lock state")
	}
	if _, rejected := lock.Stats(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}

	// S2-encapsulated unlock must be applied.
	h := testHome
	aad := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), 0x01, 0x02}
	encap, err := p.ControllerSession.Encapsulate(security.FlowAtoB, aad,
		[]byte{byte(cmdclass.ClassDoorLock), byte(cmdclass.CmdDoorLockOperationSet), LockModeUnsecured})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Send(0x02, encap); err != nil {
		t.Fatal(err)
	}
	if lock.Mode() != LockModeUnsecured {
		t.Fatal("S2 operation not applied")
	}
	if applied, _ := lock.Stats(); applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
}

func TestDoorLockRespondsToNIFRequest(t *testing.T) {
	m, hub := newTestbed(t)
	lock := NewDoorLock(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "D8"}, 0x01)
	var nif Identity
	got := false
	hub.Handler = func(f *protocol.Frame) {
		if id, ok := ParseNIF(f.Payload); ok {
			nif, got = id, true
		}
	}
	if err := hub.Send(0x02, NIFRequestPayload(0x02)); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("no NIF response")
	}
	if nif.Generic != GenericTypeEntryControl || nif.Security&SecS2 == 0 {
		t.Fatalf("lock NIF = %+v", nif)
	}
	if len(nif.Classes) != len(lock.Identity().Classes) {
		t.Fatalf("NIF lists %d classes, want %d", len(nif.Classes), len(lock.Identity().Classes))
	}
}

func TestDoorLockStatusReportEncrypted(t *testing.T) {
	m, hub := newTestbed(t)
	lock := NewDoorLock(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "D8"}, 0x01)
	p, err := PairS2(rand.New(rand.NewSource(9)), nil)
	if err != nil {
		t.Fatal(err)
	}
	lock.InstallSession(p.DeviceSession)
	var payload []byte
	hub.Handler = func(f *protocol.Frame) { payload = append([]byte{}, f.Payload...) }
	if err := lock.ReportStatus(); err != nil {
		t.Fatal(err)
	}
	if !security.IsEncapsulation(payload) {
		t.Fatalf("status report not S2-encapsulated: % X", payload)
	}
	h := testHome
	aad := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), 0x02, 0x01}
	plain, err := p.ControllerSession.Decapsulate(security.FlowBtoA, aad, payload)
	if err != nil {
		t.Fatal(err)
	}
	if cmdclass.ClassID(plain[0]) != cmdclass.ClassDoorLock {
		t.Fatalf("report plain = % X", plain)
	}
}

func TestDoorLockBatteryGet(t *testing.T) {
	m, hub := newTestbed(t)
	NewDoorLock(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "D8"}, 0x01)
	var report []byte
	hub.Handler = func(f *protocol.Frame) { report = append([]byte{}, f.Payload...) }
	if err := hub.Send(0x02, []byte{byte(cmdclass.ClassBattery), 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(report) != 3 || report[0] != byte(cmdclass.ClassBattery) || report[1] != 0x03 {
		t.Fatalf("battery report = % X", report)
	}
}

func TestBinarySwitchClearTextControl(t *testing.T) {
	m, hub := newTestbed(t)
	sw := NewBinarySwitch(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x03, Name: "D9"}, 0x01)
	if err := hub.Send(0x03, []byte{byte(cmdclass.ClassSwitchBinary), byte(cmdclass.CmdSwitchBinarySet), 0xFF}); err != nil {
		t.Fatal(err)
	}
	if !sw.On() {
		t.Fatal("switch did not turn on")
	}
	// Legacy device: an attacker with the home ID can inject too.
	attacker := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x0F, Name: "attacker"})
	if err := attacker.Send(0x03, []byte{byte(cmdclass.ClassBasic), byte(cmdclass.CmdBasicSet), 0x00}); err != nil {
		t.Fatal(err)
	}
	if sw.On() {
		t.Fatal("injected BASIC_SET off was not applied — legacy model broken")
	}
	if sw.SetCount() != 2 {
		t.Fatalf("set count = %d, want 2", sw.SetCount())
	}
}

func TestBinarySwitchGetAndVersion(t *testing.T) {
	m, hub := newTestbed(t)
	NewBinarySwitch(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x03, Name: "D9"}, 0x01)
	var last []byte
	hub.Handler = func(f *protocol.Frame) { last = append([]byte{}, f.Payload...) }
	if err := hub.Send(0x03, []byte{byte(cmdclass.ClassSwitchBinary), byte(cmdclass.CmdSwitchBinaryGet)}); err != nil {
		t.Fatal(err)
	}
	if len(last) != 3 || last[1] != byte(cmdclass.CmdSwitchBinaryReport) || last[2] != 0x00 {
		t.Fatalf("switch report = % X", last)
	}
	if err := hub.Send(0x03, []byte{byte(cmdclass.ClassVersion), byte(cmdclass.CmdVersionGet)}); err != nil {
		t.Fatal(err)
	}
	if len(last) < 2 || last[1] != byte(cmdclass.CmdVersionReport) {
		t.Fatalf("version report = % X", last)
	}
}

// Property: NIF payload/parse round-trips arbitrary identities.
func TestNIFRoundTripProperty(t *testing.T) {
	prop := func(basic, generic, specific, cap8, sec byte, classes []byte) bool {
		if len(classes) > 30 {
			classes = classes[:30]
		}
		id := Identity{Basic: basic, Generic: generic, Specific: specific, Capability: cap8, Security: sec}
		for _, c := range classes {
			id.Classes = append(id.Classes, cmdclass.ClassID(c))
		}
		got, ok := ParseNIF(id.NIFPayload())
		if !ok {
			return false
		}
		if got.Basic != basic || got.Generic != generic || got.Specific != specific {
			return false
		}
		if len(got.Classes) != len(id.Classes) {
			return false
		}
		for i := range got.Classes {
			if got.Classes[i] != id.Classes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDoorLockSecuredOperationGet(t *testing.T) {
	m, hub := newTestbed(t)
	lock := NewDoorLock(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x02, Name: "D8"}, 0x01)
	p, err := PairS2(rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	lock.InstallSession(p.DeviceSession)

	var reply []byte
	hub.Handler = func(f *protocol.Frame) { reply = append([]byte{}, f.Payload...) }

	h := testHome
	aad := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), 0x01, 0x02}
	encap, err := p.ControllerSession.Encapsulate(security.FlowAtoB, aad,
		[]byte{byte(cmdclass.ClassDoorLock), byte(cmdclass.CmdDoorLockOperationGet)})
	if err != nil {
		t.Fatal(err)
	}
	if err := hub.Send(0x02, encap); err != nil {
		t.Fatal(err)
	}
	if !security.IsEncapsulation(reply) {
		t.Fatalf("reply not encapsulated: % X", reply)
	}
	aadBack := []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), 0x02, 0x01}
	plain, err := p.ControllerSession.Decapsulate(security.FlowBtoA, aadBack, reply)
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] != byte(cmdclass.ClassDoorLock) || plain[1] != byte(cmdclass.CmdDoorLockOperationReport) {
		t.Fatalf("report = % X", plain)
	}
	if plain[2] != LockModeSecured {
		t.Fatalf("reported mode = %#02x", plain[2])
	}
}

func TestNodeAccessors(t *testing.T) {
	m, _ := newTestbed(t)
	n := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x07, Name: "acc"})
	if n.Name() != "acc" || n.Clock() == nil || n.ID() != 0x07 {
		t.Fatal("accessors wrong")
	}
	n.Detach()
	if err := n.Send(0x01, []byte{0x00}); err == nil {
		t.Fatal("detached node transmitted")
	}
}
