package harness

import (
	"strings"
	"testing"
	"time"

	"zcover/internal/ids"
	"zcover/internal/oracle"
	"zcover/internal/serialapi"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// TestGrandIntegration runs one campaign with every observer attached at
// once — the IDS on the air, the PC Controller program on the serial port,
// the oracle on the bus — and cross-checks that their views agree.
func TestGrandIntegration(t *testing.T) {
	tb, err := testbed.New("D2", 90)
	if err != nil {
		t.Fatal(err)
	}

	// Defender's monitor, trained on normal traffic before the attack.
	monitor := ids.New(tb.Medium, tb.Region, tb.Home())
	tb.ScheduleTraffic(12, 10*time.Second)
	monitor.Train(2*time.Minute + time.Second)

	// Operator's host program, reading chip memory over the Serial API.
	pc := serialapi.NewPCController(tb.Controller)
	before, err := pc.RenderTable()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(before, "Door Lock") {
		t.Fatalf("pristine view:\n%s", before)
	}

	// The attack campaign.
	c, err := RunZCover(tb, fuzz.StrategyFull, time.Hour, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fuzz.Findings) < 12 {
		t.Fatalf("campaign found %d bugs", len(c.Fuzz.Findings))
	}

	// 1. Oracle and campaign agree on the unique signatures.
	oracleSigs := map[string]bool{}
	for _, e := range tb.Bus.Events() {
		oracleSigs[e.Signature()] = true
	}
	for _, f := range c.Fuzz.Findings {
		if !oracleSigs[f.Signature] {
			t.Errorf("finding %s missing from the oracle log", f.Signature)
		}
	}

	// 2. The serial view shows the memory damage the oracle reported.
	after, err := pc.RenderTable()
	if err != nil {
		t.Fatal(err)
	}
	sawOverwrite := false
	for _, e := range tb.Bus.Events() {
		if e.Kind == oracle.DatabaseOverwritten {
			sawOverwrite = true
		}
	}
	if sawOverwrite && !strings.Contains(after, "200") {
		t.Errorf("oracle reported an overwrite the serial view does not show:\n%s", after)
	}

	// 3. The IDS saw the campaign loudly: every clear-text hidden-class
	// attack the oracle confirmed must have at least one matching alert.
	rules := monitor.AlertsByRule()
	if rules[ids.RuleClearTextProtocol] == 0 {
		t.Error("IDS missed the hidden-class traffic")
	}
	if rules[ids.RuleUnknownSource] == 0 {
		t.Error("IDS missed the attacker's spoofed source")
	}
	if len(monitor.Alerts()) < len(c.Fuzz.Findings) {
		t.Errorf("IDS raised %d alerts for %d findings", len(monitor.Alerts()), len(c.Fuzz.Findings))
	}

	// 4. Host health matches the oracle's host-level findings.
	hostHit := false
	for _, e := range tb.Bus.Events() {
		if e.Kind == oracle.HostCrash || e.Kind == oracle.HostDoS {
			hostHit = true
		}
	}
	if hostHit == tb.Controller.Host().Healthy() {
		t.Errorf("host health %v inconsistent with oracle (hostHit=%v)",
			tb.Controller.Host().Healthy(), hostHit)
	}
}
