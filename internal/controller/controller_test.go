package controller

import (
	"math/rand"
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/device"
	"zcover/internal/oracle"
	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/security"
	"zcover/internal/vtime"
)

// testRig is a controller under test plus an attacker node and oracle log.
type testRig struct {
	clock    *vtime.SimClock
	medium   *radio.Medium
	ctrl     *Controller
	attacker *device.Node
	bus      *oracle.Bus
	events   []oracle.Event
	replies  [][]byte
	acks     int
}

func newRig(t *testing.T, index string) *testRig {
	t.Helper()
	profile, ok := ProfileByIndex(index)
	if !ok {
		t.Fatalf("unknown profile %s", index)
	}
	r := &testRig{clock: vtime.NewSimClock(), bus: &oracle.Bus{}}
	r.medium = radio.NewMedium(r.clock)
	r.bus.Subscribe(func(e oracle.Event) { r.events = append(r.events, e) })
	r.ctrl = New(r.medium, radio.RegionUS, profile, r.bus)
	r.attacker = device.NewNode(device.Config{
		Medium: r.medium, Region: radio.RegionUS,
		Home: profile.Home, ID: 0x0F, Name: "attacker",
	})
	r.attacker.Handler = func(f *protocol.Frame) { r.replies = append(r.replies, append([]byte{}, f.Payload...)) }
	r.attacker.OnAck = func(*protocol.Frame) { r.acks++ }

	// Post-inclusion state: a door lock (node 2, with a wake-up interval)
	// and a switch (node 3), as in the paper's smart-home testbed.
	r.ctrl.IncludeNode(NodeRecord{
		ID: 2, Basic: device.BasicTypeSlave, Generic: device.GenericTypeEntryControl,
		Specific: 0x03, Capability: device.CapRouting, Security: device.SecS2,
		WakeupInterval: time.Hour,
		Classes:        []cmdclass.ClassID{cmdclass.ClassDoorLock},
	})
	r.ctrl.IncludeNode(NodeRecord{
		ID: 3, Basic: device.BasicTypeRoutingSlave, Generic: device.GenericTypeSwitchBinary,
		Specific: 0x01, Capability: device.CapListening,
		Classes: []cmdclass.ClassID{cmdclass.ClassSwitchBinary},
	})
	return r
}

// inject sends an application payload from the attacker to the controller.
func (r *testRig) inject(t *testing.T, payload []byte) {
	t.Helper()
	if err := r.attacker.Send(0x01, payload); err != nil {
		t.Fatal(err)
	}
}

func (r *testRig) lastEventKind() (oracle.Kind, bool) {
	if len(r.events) == 0 {
		return 0, false
	}
	return r.events[len(r.events)-1].Kind, true
}

func TestProfilesMatchTableIV(t *testing.T) {
	profiles := Profiles()
	if len(profiles) != 7 {
		t.Fatalf("testbed has %d controllers, want 7", len(profiles))
	}
	wantHomes := map[string]protocol.HomeID{
		"D1": 0xE7DE3F3D, "D2": 0xCD007171, "D3": 0xCB51722D,
		"D4": 0xC7E9DD54, "D5": 0xF4C3754D, "D6": 0xCB95A34A, "D7": 0xEDC87EE4,
	}
	wantListed := map[string]int{"D1": 17, "D2": 17, "D3": 15, "D4": 17, "D5": 15, "D6": 17, "D7": 15}
	for _, p := range profiles {
		if p.Home != wantHomes[p.Index] {
			t.Errorf("%s home = %s, want %s", p.Index, p.Home, wantHomes[p.Index])
		}
		if len(p.Listed) != wantListed[p.Index] {
			t.Errorf("%s lists %d classes, want %d", p.Index, len(p.Listed), wantListed[p.Index])
		}
	}
}

func TestProfilesBugSetsMatchTableIII(t *testing.T) {
	counts := map[string]int{}
	for _, p := range Profiles() {
		counts[p.Index] = len(p.Bugs)
		// Bug 05 only on hubs; bugs 06/13 only on USB sticks.
		isHub := p.Host == HostSmartApp
		if p.HasBug(Bug05AppDoS) != isHub {
			t.Errorf("%s bug05 presence wrong", p.Index)
		}
		if p.HasBug(Bug06HostCrash) == isHub || p.HasBug(Bug13HostDoS) == isHub {
			t.Errorf("%s bug06/13 presence wrong", p.Index)
		}
	}
	for idx, n := range counts {
		isHub := idx == "D6" || idx == "D7"
		want := 14
		if isHub {
			want = 13
		}
		if n != want {
			t.Errorf("%s carries %d bugs, want %d", idx, n, want)
		}
	}
}

func TestProfilesMACBugCountsMatchTableV(t *testing.T) {
	want := map[string]int{"D1": 1, "D2": 3, "D3": 0, "D4": 4, "D5": 0, "D6": 0, "D7": 0}
	for _, p := range Profiles() {
		if got := len(p.MACBugs); got != want[p.Index] {
			t.Errorf("%s has %d MAC bugs, want %d", p.Index, got, want[p.Index])
		}
	}
}

func TestSupportedCommandCountIs53(t *testing.T) {
	if got := SupportedCommandCount(); got != 53 {
		t.Fatalf("firmware responds to %d commands, want 53 (Table V)", got)
	}
	cmds := SupportedCommands()
	if len(cmds) != 53 {
		t.Fatalf("SupportedCommands lists %d", len(cmds))
	}
	for i := 1; i < len(cmds); i++ {
		if cmds[i].Class < cmds[i-1].Class {
			t.Fatal("SupportedCommands not sorted")
		}
	}
}

func TestControllerAnswersNOPWithAck(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, device.NOPPayload())
	if r.acks != 1 {
		t.Fatalf("acks = %d, want 1", r.acks)
	}
}

func TestControllerAnswersNIFRequest(t *testing.T) {
	r := newRig(t, "D4")
	r.inject(t, device.NIFRequestPayload(0x01))
	if len(r.replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(r.replies))
	}
	id, ok := device.ParseNIF(r.replies[0])
	if !ok {
		t.Fatalf("reply not a NIF: % X", r.replies[0])
	}
	if len(id.Classes) != 17 {
		t.Fatalf("D4 NIF lists %d classes, want 17 (Table IV)", len(id.Classes))
	}
	if id.Basic != device.BasicTypeStaticController {
		t.Errorf("NIF basic type = %#02x", id.Basic)
	}
}

func TestControllerNIFRequestForOtherNodeUnanswered(t *testing.T) {
	r := newRig(t, "D4")
	r.inject(t, device.NIFRequestPayload(0x02))
	if len(r.replies) != 0 {
		t.Fatalf("controller answered a NIF request for node 2: % X", r.replies[0])
	}
}

func TestRespondersAnswerSafeProbes(t *testing.T) {
	r := newRig(t, "D1")
	cases := [][]byte{
		{0x86, 0x11},             // VERSION_GET
		{0x86, 0x13, 0x20},       // VERSION_COMMAND_CLASS_GET, supported class
		{0x72, 0x04},             // MANUFACTURER_SPECIFIC_GET
		{0x9F, 0x01, 0x05},       // S2 NONCE_GET, benign sequence
		{0x98, 0x40},             // S0 NONCE_GET
		{0x59, 0x03, 0x40, 0x01}, // AGI GROUP_INFO_GET, legal flags
		{0x01, 0x02, 0x01},       // REQUEST_NODE_INFO (self)
		{0x02, 0x01, 0x00},       // proprietary DIAG_GET
		{0x70, 0x05, 0x01},       // CONFIGURATION_GET (unlisted class)
		{0x52, 0x01, 0x07},       // NM proxy NODE_LIST_GET (unlisted class)
	}
	for _, payload := range cases {
		before := len(r.replies)
		r.inject(t, payload)
		if len(r.replies) != before+1 {
			t.Errorf("no reply to % X", payload)
		}
	}
	if len(r.events) != 0 {
		t.Fatalf("safe probes fired %d anomalies: %v", len(r.events), r.events)
	}
}

func TestUnsupportedClassSilent(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x62, 0x02}) // DOOR_LOCK_OPERATION_GET: slave class
	if len(r.replies) != 0 {
		t.Fatalf("controller replied to unsupported class: % X", r.replies[0])
	}
}

func TestBug01MemoryCorruption(t *testing.T) {
	r := newRig(t, "D6")
	// Rewrite the lock (node 2, generic 0x40) as a routing slave (Fig 8).
	r.inject(t, []byte{0x01, 0x0D, 0x02, 0x00, 0x00, 0x00, 0x04, 0x10, 0x01})
	if k, _ := r.lastEventKind(); k != oracle.NodeTampered {
		t.Fatalf("event = %v, want NodeTampered", r.events)
	}
	rec, ok := r.ctrl.Table().Get(0x02)
	if !ok || rec.Generic != 0x10 {
		t.Fatalf("record not tampered: %+v", rec)
	}
}

func TestBug02RogueInsertion(t *testing.T) {
	r := newRig(t, "D1")
	for _, id := range []byte{10, 200} {
		r.inject(t, []byte{0x01, 0x0D, id, 0x80, 0x00, 0x00, 0x01, 0x02, 0x01})
	}
	if r.ctrl.Table().Len() != 5 { // self + 2 slaves + 2 rogues
		t.Fatalf("table has %d entries: %v", r.ctrl.Table().Len(), r.ctrl.Table().IDs())
	}
	rogues := 0
	for _, e := range r.events {
		if e.Kind == oracle.RogueNodeAdded {
			rogues++
		}
	}
	if rogues != 2 {
		t.Fatalf("rogue events = %d, want 2", rogues)
	}
}

func TestBug03NodeRemoval(t *testing.T) {
	r := newRig(t, "D2")
	r.inject(t, []byte{0x01, 0x0D, 0x02})
	if _, ok := r.ctrl.Table().Get(0x02); ok {
		t.Fatal("node 2 still in table")
	}
	if k, _ := r.lastEventKind(); k != oracle.NodeRemoved {
		t.Fatalf("events = %v", r.events)
	}
	// Removing a non-existent node does nothing.
	n := len(r.events)
	r.inject(t, []byte{0x01, 0x0D, 0x77})
	if len(r.events) != n {
		t.Fatal("ghost removal fired an event")
	}
}

func TestBug04DatabaseOverwrite(t *testing.T) {
	r := newRig(t, "D3")
	r.inject(t, []byte{0x01, 0x0D, 0xFF})
	if k, _ := r.lastEventKind(); k != oracle.DatabaseOverwritten {
		t.Fatalf("events = %v", r.events)
	}
	ids := r.ctrl.Table().IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 10 || ids[2] != 200 {
		t.Fatalf("table after overwrite = %v", ids)
	}
}

func TestBug05AppDoSOnlyOnHubs(t *testing.T) {
	// Mutated self-interrogation: node ID + trailing junk.
	attack := []byte{0x01, 0x02, 0x01, 0xAA}
	hub := newRig(t, "D6")
	hub.inject(t, attack)
	if k, _ := hub.lastEventKind(); k != oracle.AppDoS {
		t.Fatalf("D6 events = %v", hub.events)
	}
	if hub.ctrl.Host().Healthy() {
		t.Fatal("app still healthy after DoS")
	}
	usb := newRig(t, "D1")
	usb.inject(t, attack)
	if len(usb.events) != 0 {
		t.Fatalf("D1 fired %v for a hub-only bug", usb.events)
	}
}

func TestBug06HostCrashOnlyOnUSBSticks(t *testing.T) {
	attack := []byte{0x9F, 0x01, 0xFF} // reserved sequence number
	usb := newRig(t, "D5")
	usb.inject(t, attack)
	if k, _ := usb.lastEventKind(); k != oracle.HostCrash {
		t.Fatalf("D5 events = %v", usb.events)
	}
	if !usb.ctrl.Host().Crashed() {
		t.Fatal("host not crashed")
	}
	hub := newRig(t, "D7")
	hub.inject(t, attack)
	if len(hub.events) != 0 {
		t.Fatalf("D7 fired %v for a USB-only bug", hub.events)
	}
}

func TestHangBugsDurationsMatchTableIII(t *testing.T) {
	cases := []struct {
		payload []byte
		class   byte
		cmd     byte
		dur     time.Duration
	}{
		{[]byte{0x5A, 0x01, 0x00}, 0x5A, 0x01, 68 * time.Second},       // bug 07
		{[]byte{0x59, 0x03, 0x07, 0x01}, 0x59, 0x03, 67 * time.Second}, // bug 08
		{[]byte{0x7A, 0x01, 0xAA}, 0x7A, 0x01, 63 * time.Second},       // bug 09
		{[]byte{0x86, 0x13, 0xE0}, 0x86, 0x13, 4 * time.Second},        // bug 10
		{[]byte{0x59, 0x05, 0x07, 0x01}, 0x59, 0x05, 62 * time.Second}, // bug 11
		{[]byte{0x01, 0x04, 0x1D}, 0x01, 0x04, 4 * time.Minute},        // bug 14
		{[]byte{0x7A, 0x03, 0x00, 0x86}, 0x7A, 0x03, 59 * time.Second}, // bug 15
	}
	for _, tc := range cases {
		r := newRig(t, "D4")
		r.inject(t, tc.payload)
		if len(r.events) != 1 {
			t.Errorf("payload % X: %d events", tc.payload, len(r.events))
			continue
		}
		e := r.events[0]
		if e.Kind != oracle.ServiceHang || e.Class != tc.class || e.Cmd != tc.cmd || e.Duration != tc.dur {
			t.Errorf("payload % X: event %+v", tc.payload, e)
		}
		if !r.ctrl.Busy() {
			t.Errorf("payload % X: controller not busy", tc.payload)
		}
	}
}

func TestHungControllerIgnoresTrafficThenRecovers(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x86, 0x13, 0xE0}) // bug 10: 4 s hang
	acksBefore := r.acks
	r.inject(t, device.NOPPayload())
	if r.acks != acksBefore {
		t.Fatal("hung controller acked a NOP")
	}
	r.clock.Advance(5 * time.Second)
	r.inject(t, device.NOPPayload())
	if r.acks != acksBefore+1 {
		t.Fatal("controller did not recover after the hang window")
	}
}

func TestBug10RequiresUnsupportedClass(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x86, 0x13, 0x20}) // BASIC: supported -> normal reply
	if len(r.events) != 0 {
		t.Fatalf("supported-class version query fired %v", r.events)
	}
	if len(r.replies) != 1 {
		t.Fatal("no version report")
	}
}

func TestBug12WakeupCleared(t *testing.T) {
	r := newRig(t, "D7")
	r.inject(t, []byte{0x01, 0x0D, 0x02, 0x00})
	if k, _ := r.lastEventKind(); k != oracle.WakeupCleared {
		t.Fatalf("events = %v", r.events)
	}
	rec, _ := r.ctrl.Table().Get(0x02)
	if rec.WakeupInterval != 0 {
		t.Fatal("wakeup interval not cleared")
	}
	// The switch (node 3) has no wake-up interval: no event.
	n := len(r.events)
	r.inject(t, []byte{0x01, 0x0D, 0x03, 0x00})
	if len(r.events) != n {
		t.Fatal("wakeup-clear fired for a node without an interval")
	}
}

func TestBug13HostDoS(t *testing.T) {
	r := newRig(t, "D2")
	r.inject(t, []byte{0x73, 0x04, 0x03, 0x05, 0xFF, 0xFF})
	if k, _ := r.lastEventKind(); k != oracle.HostDoS {
		t.Fatalf("events = %v", r.events)
	}
	if r.ctrl.Host().Healthy() {
		t.Fatal("host still healthy")
	}
	// Benign test-node set does not trigger.
	r.ctrl.Reset()
	r.events = nil
	r.inject(t, []byte{0x73, 0x04, 0x03, 0x05, 0x00, 0x10})
	if len(r.events) != 0 {
		t.Fatalf("benign powerlevel test fired %v", r.events)
	}
}

func TestMACBugsOnlyOnAffectedDevices(t *testing.T) {
	overflow := func(home protocol.HomeID) []byte {
		raw := protocol.NewDataFrame(home, 0x0F, 0x01, []byte{0x20, 0x02}).MustEncode()
		raw[7] = 0x3F // LEN larger than the frame
		return raw
	}
	d4, _ := ProfileByIndex("D4")
	r := newRig(t, "D4")
	trx := r.medium.Attach("raw-attacker", radio.RegionUS)
	if err := trx.Transmit(overflow(d4.Home)); err != nil {
		t.Fatal(err)
	}
	if k, _ := r.lastEventKind(); k != oracle.MACParsingFault {
		t.Fatalf("D4 events = %v", r.events)
	}

	d3rig := newRig(t, "D3")
	d3, _ := ProfileByIndex("D3")
	trx3 := d3rig.medium.Attach("raw-attacker", radio.RegionUS)
	if err := trx3.Transmit(overflow(d3.Home)); err != nil {
		t.Fatal(err)
	}
	if len(d3rig.events) != 0 {
		t.Fatalf("D3 has no MAC bugs but fired %v", d3rig.events)
	}
}

func TestMACBugsRequireMatchingHomeID(t *testing.T) {
	r := newRig(t, "D4")
	raw := protocol.NewDataFrame(0x12345678, 0x0F, 0x01, []byte{0x20, 0x02}).MustEncode()
	raw[7] = 0x3F
	trx := r.medium.Attach("raw-attacker", radio.RegionUS)
	if err := trx.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if len(r.events) != 0 {
		t.Fatal("MAC bug fired across home IDs")
	}
}

func TestMACBugVariants(t *testing.T) {
	d4, _ := ProfileByIndex("D4")
	build := func(mod func([]byte) []byte) []byte {
		raw := protocol.NewDataFrame(d4.Home, 0x0F, 0x01, []byte{0x20, 0x02}).MustEncode()
		return mod(raw)
	}
	cases := map[MACBug][]byte{
		MACBugRuntAck: build(func(raw []byte) []byte {
			raw[5] = 0x03 // ack header with payload
			return raw
		}),
		MACBugRoutedHeader: func() []byte {
			f := protocol.NewDataFrame(d4.Home, 0x0F, 0x01, nil)
			f.Control.Header = protocol.HeaderRouted
			return f.MustEncode()
		}(),
		MACBugEmptyMulticast: func() []byte {
			f := protocol.NewDataFrame(d4.Home, 0x0F, 0x01, nil) // no address mask
			f.Control.Header = protocol.HeaderMulticast
			return f.MustEncode()
		}(),
	}
	for bug, raw := range cases {
		r := newRig(t, "D4")
		trx := r.medium.Attach("raw-attacker", radio.RegionUS)
		r.clock.Advance(10 * time.Second)
		if err := trx.Transmit(raw); err != nil {
			t.Fatal(err)
		}
		if len(r.events) != 1 || r.events[0].Kind != oracle.MACParsingFault || MACBug(r.events[0].Cmd) != bug {
			t.Errorf("%v: events = %v", bug, r.events)
		}
	}
}

func TestResetRestoresState(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, []byte{0x01, 0x0D, 0xFF}) // wipe table
	r.inject(t, []byte{0x9F, 0x01, 0xFF}) // crash host
	r.inject(t, []byte{0x86, 0x13, 0xE0}) // hang
	r.ctrl.Reset()
	if r.ctrl.Table().Len() != 3 {
		t.Fatalf("table after reset = %v", r.ctrl.Table().IDs())
	}
	if !r.ctrl.Host().Healthy() || r.ctrl.Busy() {
		t.Fatal("host/busy state not reset")
	}
}

func TestS2SessionTrafficConsumed(t *testing.T) {
	r := newRig(t, "D6")
	p, err := device.PairS2(rand.New(rand.NewSource(3)), nil)
	if err != nil {
		t.Fatal(err)
	}
	r.ctrl.InstallSession(0x0F, p.DeviceSession) // attacker node plays the slave here
	aad := r.ctrl.aad(0x0F, 0x01)
	encap, err := p.ControllerSession.Encapsulate(security.FlowBtoA, aad, []byte{0x62, 0x03, 0xFF, 0, 0, 0xFE, 0xFE})
	if err != nil {
		t.Fatal(err)
	}
	r.inject(t, encap)
	if got := r.ctrl.Stats().SecureFrames; got != 1 {
		t.Fatalf("secure frames = %d, want 1", got)
	}
}

func TestSupportsListedAndHidden(t *testing.T) {
	r := newRig(t, "D3") // legacy: 0x5E/0x6C unlisted but implemented
	for _, c := range []cmdclass.ClassID{
		cmdclass.ClassVersion, cmdclass.ClassZWaveProtocol,
		cmdclass.ClassConfiguration, cmdclass.ClassZWavePlusInfo,
	} {
		if !r.ctrl.Supports(c) {
			t.Errorf("D3 should support %s", c)
		}
	}
	if r.ctrl.Supports(cmdclass.ClassDoorLock) {
		t.Error("controller should not support DOOR_LOCK")
	}
}

func TestNodeTableSnapshotRestore(t *testing.T) {
	tbl := NewNodeTable()
	tbl.Put(NodeRecord{ID: 1, Generic: 0x02, Classes: []cmdclass.ClassID{0x20}})
	snap := tbl.Snapshot()
	tbl.Put(NodeRecord{ID: 9, Generic: 0x10})
	rec, _ := tbl.Get(1)
	rec.Generic = 0x77
	tbl.Put(rec)
	tbl.Restore(snap)
	if tbl.Len() != 1 {
		t.Fatalf("restored table has %d entries", tbl.Len())
	}
	got, _ := tbl.Get(1)
	if got.Generic != 0x02 {
		t.Fatal("restore did not revert mutation")
	}
	// Mutating a Get result must not affect the table (copy semantics).
	got.Classes[0] = 0xFF
	again, _ := tbl.Get(1)
	if again.Classes[0] == 0xFF {
		t.Fatal("Get leaked internal state")
	}
}
