package security

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestKeyContextCacheConcurrent hammers the keyed AES-context cache from
// many goroutines under -race: concurrent S0 and S2 roundtrips under both
// shared and goroutine-distinct keys, interleaved with cache resets. Every
// roundtrip must still produce the correct plaintext — the cache entries
// are immutable and safe to share, and a reset mid-flight only costs a
// re-derivation, never correctness.
func TestKeyContextCacheConcurrent(t *testing.T) {
	const workers = 8
	const iters = 200

	sharedKey := bytes.Repeat([]byte{0x5A}, KeySize)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the workers use the shared key, half a private one, so
			// the cache sees both read-heavy hits and concurrent inserts.
			key := sharedKey
			if w%2 == 1 {
				key = bytes.Repeat([]byte{byte(w)}, KeySize)
			}
			keys, err := DeriveS0Keys(key)
			if err != nil {
				errs <- err
				return
			}
			sess, err := NewSession(key, bytes.Repeat([]byte{0x0A}, EntropySize), bytes.Repeat([]byte{0x0B}, EntropySize))
			if err != nil {
				errs <- err
				return
			}
			sn := []byte{1, 2, 3, 4, 5, 6, 7, byte(w)}
			rn := []byte{8, 7, 6, 5, 4, 3, 2, byte(w)}
			header := []byte{0x98, 0x81}
			for i := 0; i < iters; i++ {
				pt := []byte{0x25, 0x01, byte(i), byte(w)}
				enc, err := S0Encapsulate(keys, sn, rn, header, pt)
				if err != nil {
					errs <- err
					return
				}
				dec, err := S0Decapsulate(keys, rn, header, enc)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(dec, pt) {
					errs <- fmt.Errorf("worker %d iter %d: S0 roundtrip %x != %x", w, i, dec, pt)
					return
				}
				s2enc, err := sess.Encapsulate(FlowAtoB, header, pt)
				if err != nil {
					errs <- err
					return
				}
				// Each worker owns its Session (sessions are single-
				// goroutine by contract); only the context cache is shared.
				if _, err := CMAC(key, s2enc); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	// Concurrent resets force re-derivation races against the readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			ResetKeyContextCache()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestKeyContextCacheReuse checks that repeated operations under one key
// resolve to a single cache entry rather than re-expanding the key.
func TestKeyContextCacheReuse(t *testing.T) {
	ResetKeyContextCache()
	key := bytes.Repeat([]byte{0x77}, KeySize)
	for i := 0; i < 10; i++ {
		if _, err := CMAC(key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if n := KeyContextCacheLen(); n != 1 {
		t.Fatalf("cache holds %d contexts after 10 CMACs under one key, want 1", n)
	}
}
