package corpus

import (
	"encoding/json"
	"fmt"
	"os"

	"zcover/internal/checkpoint"
)

// Corpus persistence rides the crash-safe journal format of
// internal/checkpoint: one CRC-framed JSONL record per admitted seed,
// fsynced at append time, with the campaign identity pinned in the
// manifest. A killed coverage campaign therefore keeps every seed it
// admitted; on resume the deterministic engine regenerates the same
// admissions, which the Manager validates against this journal record by
// record before appending anything new (see Manager.Admit).

// Journal is one campaign's durable corpus.
type Journal struct {
	j      *checkpoint.Journal
	replay []*Seed
}

// OpenJournal opens (or creates) the corpus journal for a campaign under
// dir. name labels the campaign ("covfuzz-D1"); spec is the complete
// campaign key — any drift in it refuses an existing journal, exactly like
// campaign checkpoints. An existing journal is refused unless resume is
// set; with resume, its seeds become the Manager's replay prefix.
func OpenJournal(dir, name string, spec any, resume bool) (*Journal, error) {
	hash, err := checkpoint.SpecHash(spec)
	if err != nil {
		return nil, err
	}
	campaign := "corpus-" + name
	path := checkpoint.JournalPath(dir, campaign, 1, 1)

	if _, statErr := os.Stat(path); statErr == nil {
		if !resume {
			return nil, fmt.Errorf("corpus: journal %s already exists; pass resume to continue it or remove it to start over", path)
		}
		j, rep, err := checkpoint.Recover(path)
		if err != nil {
			return nil, err
		}
		m := rep.Manifest
		if m.Campaign != campaign || m.SpecHash != hash {
			j.Close()
			return nil, fmt.Errorf("corpus: %s was written for campaign %q spec %s, this run is %q spec %s — seeds or budgets changed",
				path, m.Campaign, m.SpecHash, campaign, hash)
		}
		recs, err := rep.ByIndex()
		if err != nil {
			j.Close()
			return nil, err
		}
		replay := make([]*Seed, len(recs))
		for idx, rec := range recs {
			if idx < 0 || idx >= len(recs) {
				j.Close()
				return nil, fmt.Errorf("corpus: %s has non-dense seed index %d over %d records", path, idx, len(recs))
			}
			var s Seed
			if err := json.Unmarshal(rec.Body, &s); err != nil {
				j.Close()
				return nil, fmt.Errorf("corpus: %s seed %d: %w", path, idx, err)
			}
			replay[idx] = &s
		}
		return &Journal{j: j, replay: replay}, nil
	}

	manifest := checkpoint.Manifest{
		Campaign: campaign, SpecHash: hash, ShardIndex: 1, ShardCount: 1,
	}
	j, err := checkpoint.Create(path, manifest)
	if err != nil {
		return nil, err
	}
	return &Journal{j: j}, nil
}

// Replayed reports how many seeds the journal already held when opened.
func (j *Journal) Replayed() int { return len(j.replay) }

// Path reports the journal file location.
func (j *Journal) Path() string { return j.j.Path() }

// Close releases the journal file.
func (j *Journal) Close() error { return j.j.Close() }

// append journals one freshly admitted seed.
func (j *Journal) append(s *Seed) error {
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("corpus: encoding seed %d: %w", s.ID, err)
	}
	label := fmt.Sprintf("seed-%d", s.ID)
	if len(s.Payload) >= 2 {
		label = fmt.Sprintf("seed-%d/0x%02X-0x%02X", s.ID, s.Payload[0], s.Payload[1])
	}
	return j.j.Append(checkpoint.JobRecord{Index: s.ID, Label: label, Body: body})
}
