# Tier-1 gate and convenience targets. `make verify` must pass before
# every commit; CI runs the same script.

.PHONY: verify verify-full test bench bench-compare bench-scaling build fuzz-smoke

verify:
	./scripts/verify.sh

# Includes the 24h-budget campaign tests (slow; what CI runs nightly).
verify-full:
	./scripts/verify.sh -full

build:
	go build ./...

test:
	go test ./...

# Runs the fleet benchmarks with -benchmem and writes BENCH_fleet.json
# (name, ns/op, B/op, allocs/op, sim-rate per worker-count variant).
bench:
	./scripts/bench.sh

# Runs the fleet worker-scaling sweep and writes BENCH_scaling.json
# (sim-rate, parallel efficiency, per-phase wall share, ranked bottlenecks).
# `./scripts/bench_scaling.sh -gate` also fails on >10% efficiency
# regression vs the committed report (the nightly CI leg).
bench-scaling:
	./scripts/bench_scaling.sh

# Re-runs the benchmarks and diffs against scripts/bench_baseline.txt —
# via benchstat when installed, via the built-in awk comparator otherwise.
# Refresh the baseline with `./scripts/bench.sh -baseline`.
bench-compare:
	./scripts/bench_compare.sh

# Runs every native fuzz target for a short burst (default 10s each) on top
# of the committed corpora. FUZZTIME=1m make fuzz-smoke for longer runs.
fuzz-smoke:
	./scripts/fuzz_smoke.sh
