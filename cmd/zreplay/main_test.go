package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestHuntThenReplay(t *testing.T) {
	log := filepath.Join(t.TempDir(), "bugs.jsonl")
	if err := run([]string{"-hunt", "-target", "D1", "-duration", "20m", "-out", log}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(log); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-log", log}); err != nil {
		t.Fatal(err)
	}
}

func TestCatalogReplay(t *testing.T) {
	if err := run([]string{"-catalog"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRequiresAMode(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("accepted no mode")
	}
	if err := run([]string{"-log", "/nonexistent/x.jsonl"}); err == nil {
		t.Fatal("accepted missing log file")
	}
}

func TestHuntMinimizeReplay(t *testing.T) {
	log := filepath.Join(t.TempDir(), "bugs.jsonl")
	if err := run([]string{"-hunt", "-target", "D4", "-duration", "15m", "-out", log}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-log", log, "-minimize"}); err != nil {
		t.Fatal(err)
	}
}
