package fleet

import (
	"fmt"
	"strconv"
	"strings"
)

// Shard is a deterministic subset assignment over a job list: shard i of
// n owns every job whose index is congruent to i-1 modulo n (round-robin,
// so long and short jobs spread evenly across shards). The zero value is
// "no sharding" — it owns every job.
//
// Sharding composes with the fleet's determinism invariant: because each
// job is self-contained and seeded, the union of the n shards' results is
// byte-identical to the 1-shard run, whatever machines the shards ran on.
type Shard struct {
	// Index is the 1-based shard number, in [1, Count].
	Index int
	// Count is the total number of shards.
	Count int
}

// ParseShard parses the "i/n" command-line form ("2/3" = second of three
// shards). The empty string parses to the zero Shard (no sharding).
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("fleet: shard %q: want i/n, e.g. 2/3", s)
	}
	idx, err := strconv.Atoi(i)
	if err != nil {
		return Shard{}, fmt.Errorf("fleet: shard %q: bad index: %w", s, err)
	}
	cnt, err := strconv.Atoi(n)
	if err != nil {
		return Shard{}, fmt.Errorf("fleet: shard %q: bad count: %w", s, err)
	}
	if cnt < 1 || idx < 1 || idx > cnt {
		return Shard{}, fmt.Errorf("fleet: shard %q: index must be in [1, %d]", s, cnt)
	}
	if cnt == 1 {
		return Shard{}, nil // 1/1 is the unsharded run
	}
	return Shard{Index: idx, Count: cnt}, nil
}

// Enabled reports whether this value actually splits the job list.
func (s Shard) Enabled() bool { return s.Count > 1 }

// Owns reports whether job index i (0-based, over the full job list)
// belongs to this shard. The zero Shard owns everything.
func (s Shard) Owns(i int) bool {
	if !s.Enabled() {
		return true
	}
	return i%s.Count == s.Index-1
}

// Indices returns the 0-based job indices this shard owns out of total.
func (s Shard) Indices(total int) []int {
	var out []int
	for i := 0; i < total; i++ {
		if s.Owns(i) {
			out = append(out, i)
		}
	}
	return out
}

// String renders the "i/n" form ("" for the zero Shard).
func (s Shard) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%d/%d", s.Index, s.Count)
}

// CheckpointSpec asks the campaign layer to journal completed jobs
// crash-safely and to resume, shard, or merge from existing journals.
// The fleet itself treats the spec as data — internal/harness interprets
// it around the fleet via internal/checkpoint (the fleet cannot, because
// only the caller knows how to serialise its result type T).
type CheckpointSpec struct {
	// Dir is the checkpoint directory holding one journal per
	// (campaign, shard). Empty disables checkpointing.
	Dir string
	// Resume permits continuing an existing journal; without it an
	// existing journal is an error (refusing to double-run a campaign
	// by accident).
	Resume bool
	// Shard restricts execution to a subset of the job list; the other
	// shards' journals are merged later. Zero value = run everything.
	Shard Shard
	// Merge renders results purely from the journals already in Dir —
	// nothing executes. All shards must be present and complete.
	Merge bool
}
