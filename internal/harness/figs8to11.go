package harness

import (
	"fmt"
	"strings"

	"zcover/internal/serialapi"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
	"zcover/internal/zcover/scan"
)

// MemoryAttackView is one of the paper's Figs 8–11: the PC Controller
// program's node list before and after a memory-tampering attack.
type MemoryAttackView struct {
	// Figure is the paper figure number (8–11).
	Figure int
	// Title describes the attack.
	Title string
	// Payload is the injected application payload.
	Payload []byte
	// Before and After are the rendered node-table views.
	Before, After string
}

// Figs8to11 reproduces the four memory-tampering proof-of-concept views
// of the paper (Figs 8–11) on the Aeotec controller: each attack is one
// unencrypted packet to the hidden CMDCL 0x01, and the effect is read
// back through the Serial API exactly as the PC Controller program's UI
// shows it.
func Figs8to11() ([]MemoryAttackView, error) {
	attacks := []struct {
		figure  int
		title   string
		payload []byte
	}{
		{8, "Memory tampering: door lock rewritten as routing slave (bug 01)",
			[]byte{0x01, 0x0D, testbed.LockID, 0x00, 0x00, 0x00, 0x04, 0x10, 0x01}},
		{9, "Rogue controllers #10 and #200 inserted (bug 02)",
			nil}, // two packets; handled below
		{10, "Valid devices #2 and #3 removed (bug 03)",
			nil}, // two packets; handled below
		{11, "Device table overwritten with fake devices (bug 04)",
			[]byte{0x01, 0x0D, 0xFF}},
	}

	var out []MemoryAttackView
	for _, a := range attacks {
		tb, err := testbed.New("D4", 31)
		if err != nil {
			return nil, err
		}
		d := dongle.New(tb.Medium, tb.Region)
		pc := serialapi.NewPCController(tb.Controller)

		before, err := pc.RenderTable()
		if err != nil {
			return nil, err
		}

		var payloads [][]byte
		switch a.figure {
		case 9:
			payloads = [][]byte{
				{0x01, 0x0D, 10, 0x80, 0x00, 0x00, 0x01, 0x02, 0x01},
				{0x01, 0x0D, 200, 0x80, 0x00, 0x00, 0x01, 0x02, 0x01},
			}
		case 10:
			payloads = [][]byte{
				{0x01, 0x0D, testbed.LockID},
				{0x01, 0x0D, testbed.SwitchID},
			}
		default:
			payloads = [][]byte{a.payload}
		}
		for _, p := range payloads {
			if _, err := d.SendAndObserve(tb.Home(), scan.AttackerNodeID, testbed.ControllerID,
				p, dongle.DefaultResponseWindow); err != nil {
				return nil, err
			}
		}

		after, err := pc.RenderTable()
		if err != nil {
			return nil, err
		}
		out = append(out, MemoryAttackView{
			Figure: a.figure, Title: a.title,
			Payload: payloads[len(payloads)-1],
			Before:  before, After: after,
		})
	}
	return out, nil
}

// String renders one view pair for terminal output.
func (v MemoryAttackView) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: %s\n", v.Figure, v.Title)
	fmt.Fprintf(&b, "injected payload: % X\n\n", v.Payload)
	b.WriteString("-- controller memory before --\n")
	b.WriteString(v.Before)
	b.WriteString("\n-- controller memory after --\n")
	b.WriteString(v.After)
	return b.String()
}
