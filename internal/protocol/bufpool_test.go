package protocol

import (
	"bytes"
	"testing"
)

// TestGetBufAppendEncodeRoundtrip pins the zero-alloc encode contract: a
// pooled buffer holds the encoded frame, DecodeInto parses it back, and the
// decoded fields match the source. This is the exact shape of the device
// send path.
func TestGetBufAppendEncodeRoundtrip(t *testing.T) {
	src := NewDataFrame(HomeID(0xC0DECAFE), 5, 9, []byte{0x25, 0x01, 0xFF})
	buf := GetBuf()
	defer PutBuf(buf)
	raw, err := src.AppendEncode(*buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(*buf) != 0 {
		t.Fatalf("AppendEncode must not store back into *buf, got len %d", len(*buf))
	}
	f := GetFrame()
	defer PutFrame(f)
	if err := DecodeInto(f, raw, ChecksumCS8); err != nil {
		t.Fatal(err)
	}
	if f.Home != src.Home || f.Src != src.Src || f.Dst != src.Dst {
		t.Fatalf("roundtrip mismatch: got %v want %v", f, src)
	}
	if !bytes.Equal(f.Payload, src.Payload) {
		t.Fatalf("payload mismatch: %x vs %x", f.Payload, src.Payload)
	}
}

// TestGetBufReturnsEmptyFullCapacity checks the Get contract: empty slice,
// MaxFrameSize capacity, even after a previous user left bytes in it.
func TestGetBufReturnsEmptyFullCapacity(t *testing.T) {
	b := GetBuf()
	*b = append(*b, 1, 2, 3)
	PutBuf(b)
	got := GetBuf()
	defer PutBuf(got)
	if len(*got) != 0 {
		t.Fatalf("GetBuf returned non-empty slice (len %d)", len(*got))
	}
	if cap(*got) < MaxFrameSize {
		t.Fatalf("GetBuf capacity %d < MaxFrameSize %d", cap(*got), MaxFrameSize)
	}
}

// TestPutBufRejectsShrunkBuffers: a buffer whose backing array was swapped
// for something smaller than MaxFrameSize must not re-enter the pool, or a
// later AppendEncode into it would allocate mid-hot-path.
func TestPutBufRejectsShrunkBuffers(t *testing.T) {
	small := make([]byte, 0, 4)
	PutBuf(&small) // must be dropped, not pooled
	for i := 0; i < 64; i++ {
		b := GetBuf()
		if cap(*b) < MaxFrameSize {
			t.Fatalf("undersized buffer (cap %d) leaked into the pool", cap(*b))
		}
		PutBuf(b)
	}
}

// TestPutFrameZeroes checks that pooled frames come back zeroed — a stale
// Payload alias would pin a raw buffer and leak one user's bytes to the
// next.
func TestPutFrameZeroes(t *testing.T) {
	f := GetFrame()
	f.Home = 0xDEAD
	f.Payload = []byte{1, 2, 3}
	PutFrame(f)
	g := GetFrame()
	defer PutFrame(g)
	if g.Home != 0 || g.Payload != nil || g.Src != 0 || g.Dst != 0 {
		t.Fatalf("pooled frame not zeroed: %+v", g)
	}
}

// TestAppendEncodeIntoPrefixedBuffer checks the append contract when dst
// already holds bytes: the frame (and its checksum) must cover only the
// appended region, leaving the prefix intact.
func TestAppendEncodeIntoPrefixedBuffer(t *testing.T) {
	src := NewDataFrame(HomeID(0x11223344), 1, 2, []byte{0xAA})
	prefix := []byte{0xFE, 0xFD}
	out, err := src.AppendEncode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: %x", out[:2])
	}
	f := GetFrame()
	defer PutFrame(f)
	if err := DecodeInto(f, out[2:], ChecksumCS8); err != nil {
		t.Fatalf("suffix region does not decode standalone: %v", err)
	}
	if f.Home != src.Home {
		t.Fatalf("home mismatch: %08X", uint32(f.Home))
	}
}

// TestAppendEncodeErrorLeavesDstUnchanged pins the documented error
// contract: on ErrPayloadTooLarge the returned slice is dst, unmodified.
func TestAppendEncodeErrorLeavesDstUnchanged(t *testing.T) {
	f := NewDataFrame(HomeID(1), 1, 2, make([]byte, MaxFrameSize))
	dst := []byte{9, 9}
	out, err := f.AppendEncode(dst)
	if err == nil {
		t.Fatal("want ErrPayloadTooLarge")
	}
	if len(out) != 2 || out[0] != 9 || out[1] != 9 {
		t.Fatalf("dst modified on error: %x", out)
	}
}
