// Package corpus manages the seed corpus of the coverage-guided fuzzing
// engine: admission of coverage-novel inputs, deterministic power-schedule
// mutation of admitted seeds, optional PoC-style seed minimisation, and
// crash-safe persistence on the checkpoint journal format.
//
// Everything here is deterministic by construction. Admission order is the
// engine's test order; seed IDs are dense and sequential; variants are
// derived from (campaign seed, seed ID, variant index) through a fixed
// mixing function plus the position-sensitive mutation streams of
// internal/zcover/mutate. There is no wall clock, no global RNG, and no Go
// map iteration, so a killed and resumed campaign regenerates the same
// corpus byte for byte — which the journal verifies record by record.
package corpus

import (
	"bytes"
	"fmt"

	"zcover/internal/cmdclass"
	"zcover/internal/telemetry"
	"zcover/internal/zcover/minimize"
	"zcover/internal/zcover/mutate"
)

// Process-wide corpus metrics.
var (
	mAdmitted  = telemetry.Default().Counter("corpus_seeds_admitted_total")
	mReplayed  = telemetry.Default().Counter("corpus_seeds_replayed_total")
	mMinimized = telemetry.Default().Counter("corpus_seeds_minimized_total")
	mVariants  = telemetry.Default().Counter("corpus_variants_total")
)

// maxEnergy caps a seed's per-visit mutation budget so one very novel seed
// cannot starve the rest of the corpus.
const maxEnergy = 16

// maxVariantLen bounds grown variants; anything longer would be rejected
// by the frame codec anyway and waste the draw.
const maxVariantLen = 48

// Seed is one admitted corpus entry.
type Seed struct {
	// ID is the dense admission index (0, 1, 2, ...).
	ID int `json:"id"`
	// Payload is the application payload under management. When Minimized
	// is set this is the reduced form; Original preserves the admitted
	// bytes.
	Payload []byte `json:"payload"`
	// Original is the payload as admitted, kept only when minimisation
	// changed it (replay validation compares against it).
	Original []byte `json:"original,omitempty"`
	// NewFeatures is how many coverage-map features the seed contributed
	// at admission — the input to the power schedule.
	NewFeatures int `json:"new_features"`
	// Energy is the per-visit mutation budget the scheduler grants.
	Energy int `json:"energy"`
	// Signature is the oracle signature the seed triggered, when it was a
	// finding (minimisation target); empty for coverage-only seeds.
	Signature string `json:"signature,omitempty"`
	// Minimized marks seeds whose payload was reduced via minimize.
	Minimized bool `json:"minimized,omitempty"`
	// Trace is the bounded flight-recorder snapshot captured at admission
	// — the same replayable post-mortem fuzz findings carry — so a corpus
	// entry journaled to JSONL documents the frames that led to it.
	Trace []telemetry.FrameRecord `json:"trace,omitempty"`
}

// energyFor is the power schedule: a base budget plus the admission
// novelty, capped. Deterministic in the seed's recorded features.
func energyFor(newFeatures int) int {
	e := 2 + newFeatures
	if e > maxEnergy {
		e = maxEnergy
	}
	return e
}

// Manager owns one campaign's corpus. Not safe for concurrent use: like
// the coverage Collector it belongs to a single campaign goroutine.
type Manager struct {
	mut          *mutate.Mutator
	campaignSeed int64

	classes map[cmdclass.ClassID]*cmdclass.Class
	streams map[cmdclass.ClassID]*mutate.Stream

	minimizer *minimize.Minimizer

	seeds []*Seed

	journal    *Journal
	nextReplay int
}

// NewManager builds a corpus manager. mut supplies the spec-aware variant
// draws (the mutate reuse of the power schedule); queue is the campaign's
// class queue, used to resolve per-class mutation streams; campaignSeed
// feeds the havoc mixing function.
func NewManager(mut *mutate.Mutator, queue []*cmdclass.Class, campaignSeed int64) *Manager {
	m := &Manager{
		mut:          mut,
		campaignSeed: campaignSeed,
		classes:      make(map[cmdclass.ClassID]*cmdclass.Class, len(queue)),
		streams:      make(map[cmdclass.ClassID]*mutate.Stream, len(queue)),
	}
	for _, cls := range queue {
		if _, ok := m.classes[cls.ID]; !ok {
			m.classes[cls.ID] = cls
		}
	}
	return m
}

// SetMinimizer enables seed minimisation: seeds admitted with an oracle
// signature are reduced to their minimal trigger before storage. Nil
// disables (the default — minimisation probes fresh testbeds and is
// wall-clock expensive).
func (m *Manager) SetMinimizer(mz *minimize.Minimizer) { m.minimizer = mz }

// AttachJournal installs the corpus journal. Seeds already present in the
// journal (a resumed campaign) become the replay prefix: subsequent Admit
// calls must reproduce them byte-identically and are served from the
// journal instead of being re-appended.
func (m *Manager) AttachJournal(j *Journal) { m.journal = j }

// Len reports the corpus size.
func (m *Manager) Len() int { return len(m.seeds) }

// Seed returns the i-th admitted seed (admission order).
func (m *Manager) Seed(i int) *Seed { return m.seeds[i] }

// Seeds returns the live seed slice (admission order); callers must not
// mutate it.
func (m *Manager) Seeds() []*Seed { return m.seeds }

// Admit adds a coverage-novel input to the corpus. newFeatures is the
// coverage novelty that justified admission (drives the power schedule),
// signature is the oracle signature when the input was also a finding, and
// trace is the bounded flight-recorder snapshot at admission time.
//
// With a journal attached, admissions inside the replay prefix are
// validated against the journaled record — a mismatch means the campaign
// did not replay deterministically and is an error, not a silent fork —
// and admissions beyond the prefix are appended crash-safely.
func (m *Manager) Admit(payload []byte, newFeatures int, signature string, trace []telemetry.FrameRecord) (*Seed, error) {
	s := &Seed{
		ID:          len(m.seeds),
		Payload:     append([]byte{}, payload...),
		NewFeatures: newFeatures,
		Energy:      energyFor(newFeatures),
		Signature:   signature,
		Trace:       trace,
	}

	if m.journal != nil && m.nextReplay < len(m.journal.replay) {
		// Replay prefix: the journal already holds this admission.
		rec := m.journal.replay[m.nextReplay]
		admitted := rec.Payload
		if rec.Minimized {
			admitted = rec.Original
		}
		if rec.ID != s.ID || !bytes.Equal(admitted, s.Payload) || rec.Signature != s.Signature {
			return nil, fmt.Errorf(
				"corpus: replay divergence at seed %d: journal admitted %x (sig %q), campaign produced %x (sig %q) — the journal belongs to a different campaign state",
				s.ID, admitted, rec.Signature, s.Payload, s.Signature)
		}
		m.nextReplay++
		m.seeds = append(m.seeds, rec)
		mReplayed.Inc()
		return rec, nil
	}

	if m.minimizer != nil && s.Signature != "" {
		// A finding seed: reduce it to its minimal trigger. Failure to
		// reproduce on a fresh device (stateful bugs) keeps the original.
		if res, err := m.minimizer.Minimize(s.Payload, s.Signature); err == nil && len(res.Minimal) < len(s.Payload) {
			s.Original = s.Payload
			s.Payload = append([]byte{}, res.Minimal...)
			s.Minimized = true
			mMinimized.Inc()
		}
	}

	if m.journal != nil {
		if err := m.journal.append(s); err != nil {
			return nil, err
		}
	}
	m.seeds = append(m.seeds, s)
	mAdmitted.Inc()
	return s, nil
}

// stream lazily resolves the spec-aware mutation stream for a class.
func (m *Manager) stream(id cmdclass.ClassID) *mutate.Stream {
	if st, ok := m.streams[id]; ok {
		return st
	}
	cls, ok := m.classes[id]
	if !ok {
		return nil
	}
	st := m.mut.Stream(cls)
	// The corpus stream continues where the engine's exploration already
	// walked: skip the quick prefix so variants draw from the structural
	// and positional passes instead of repeating the bare commands.
	for n := st.QuickSize(); n > 0; n-- {
		st.Next()
	}
	m.streams[id] = st
	return st
}

// havocPool is the boundary-value pool havoc mutations draw from.
var havocPool = [...]byte{0x00, 0x01, 0x0F, 0x20, 0x7F, 0x80, 0xFE, 0xFF}

// mix is SplitMix64's finaliser: the deterministic scalar mixer behind
// variant derivation.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Variant derives the k-th mutation of a seed. Every fourth draw continues
// the seed class's position-sensitive mutation stream (the mutate reuse:
// spec-aware structural, positional, and correlation operators); the rest
// are havoc edits of the seed payload — byte pools, bit flips, truncation,
// growth — derived purely from (campaignSeed, seed.ID, k).
func (m *Manager) Variant(s *Seed, k int) []byte {
	mVariants.Inc()
	if k%4 == 3 && len(s.Payload) >= 1 {
		if st := m.stream(cmdclass.ClassID(s.Payload[0])); st != nil {
			return st.Next()
		}
	}

	out := append(make([]byte, 0, len(s.Payload)+4), s.Payload...)
	h := mix(uint64(m.campaignSeed)^uint64(s.ID)<<32) ^ mix(uint64(k)*0x9E3779B97F4A7C15+1)
	ops := 1 + int(h%3)
	for op := 0; op < ops; op++ {
		h = mix(h)
		switch h % 5 {
		case 0: // boundary-value byte (parameter positions only)
			if len(out) > 2 {
				h = mix(h)
				pos := 2 + int(h%uint64(len(out)-2))
				h = mix(h)
				out[pos] = havocPool[h%uint64(len(havocPool))]
			} else {
				h = mix(h)
				out = append(out, havocPool[h%uint64(len(havocPool))])
			}
		case 1: // bit flip (parameter positions only)
			if len(out) > 2 {
				h = mix(h)
				pos := 2 + int(h%uint64(len(out)-2))
				h = mix(h)
				out[pos] ^= 1 << (h % 8)
			}
		case 2: // truncate the tail, keeping CMDCL+CMD
			if len(out) > 2 {
				h = mix(h)
				out = out[:2+int(h%uint64(len(out)-2))]
			}
		case 3: // grow with a boundary byte
			if len(out) < maxVariantLen {
				h = mix(h)
				out = append(out, havocPool[h%uint64(len(havocPool))])
			}
		case 4: // duplicate a parameter byte to the tail (field overflow)
			if len(out) > 2 && len(out) < maxVariantLen {
				h = mix(h)
				out = append(out, out[2+int(h%uint64(len(out)-2))])
			}
		}
	}
	return out
}
