// Package security implements the Z-Wave transport encapsulations used by
// the emulated testbed: Security 0 (AES-128 with the specification's
// fixed-temp-key inclusion weakness) and Security 2 (X25519 ECDH key
// agreement, AES-128-CMAC key derivation, AES-128-CCM authenticated
// encryption with SPAN nonce synchronisation).
//
// Everything is built on the Go standard library: crypto/aes, crypto/ecdh,
// crypto/subtle. AES-CMAC (RFC 4493) and AES-CCM (RFC 3610) are implemented
// here because the standard library does not ship them.
package security

import (
	"crypto/aes"
	"fmt"
)

const (
	// KeySize is the AES-128 key size used by every Z-Wave security class.
	KeySize = 16
	// BlockSize is the AES block size.
	BlockSize = aes.BlockSize
)

// CMAC computes AES-CMAC (RFC 4493) of msg under a 16-byte key.
func CMAC(key, msg []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("security: CMAC key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}

	k1, k2 := cmacSubkeys(block.Encrypt)

	n := (len(msg) + BlockSize - 1) / BlockSize
	lastComplete := n > 0 && len(msg)%BlockSize == 0
	if n == 0 {
		n = 1
	}

	var last [BlockSize]byte
	if lastComplete {
		copy(last[:], msg[(n-1)*BlockSize:])
		xorBlock(&last, k1)
	} else {
		rem := msg[(n-1)*BlockSize:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		xorBlock(&last, k2)
	}

	var x [BlockSize]byte
	for i := 0; i < n-1; i++ {
		xorBytes(&x, msg[i*BlockSize:(i+1)*BlockSize])
		block.Encrypt(x[:], x[:])
	}
	xorBlock(&x, last)
	block.Encrypt(x[:], x[:])

	out := make([]byte, BlockSize)
	copy(out, x[:])
	return out, nil
}

// mustCMAC is CMAC for keys known to be the right length.
func mustCMAC(key, msg []byte) []byte {
	out, err := CMAC(key, msg)
	if err != nil {
		panic(err)
	}
	return out
}

// cmacSubkeys derives the RFC 4493 subkeys K1 and K2.
func cmacSubkeys(encrypt func(dst, src []byte)) (k1, k2 [BlockSize]byte) {
	var l [BlockSize]byte
	encrypt(l[:], l[:])
	k1 = dbl(l)
	k2 = dbl(k1)
	return k1, k2
}

// dbl is doubling in GF(2^128) with the CMAC reduction constant 0x87.
func dbl(in [BlockSize]byte) (out [BlockSize]byte) {
	carry := byte(0)
	for i := BlockSize - 1; i >= 0; i-- {
		b := in[i]
		out[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		out[BlockSize-1] ^= 0x87
	}
	return out
}

func xorBlock(dst *[BlockSize]byte, src [BlockSize]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

func xorBytes(dst *[BlockSize]byte, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}
