package security

import "sync"

// scratch is the set of block-sized temporaries one encapsulation, MAC, or
// AEAD operation needs. cipher.Block.Encrypt is an interface call, so any
// stack-declared buffer passed to it is assumed by escape analysis to leak
// and would heap-allocate on every call; drawing the whole set from a pool
// instead keeps the per-message crypto paths allocation-free. A scratch is
// owned by exactly one operation at a time and holds no secrets the caller
// does not already have (every field is overwritten before use).
type scratch struct {
	iv    [BlockSize]byte // S0 OFB/CBC-MAC initialisation vector
	ks    [BlockSize]byte // keystream block (OFB, CCM CTR)
	x     [BlockSize]byte // CBC-MAC accumulator (CMAC, S0 MAC, CCM)
	last  [BlockSize]byte // CMAC final block
	b0    [BlockSize]byte // CCM B_0 block
	blk   [BlockSize]byte // CCM first-AAD block
	ctr   [BlockSize]byte // CCM counter block assembly
	tagKS [BlockSize]byte // CCM tag keystream (S_0)
	msg   [96]byte        // S0 MAC message assembly
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }
