package fleet_test

import (
	"runtime"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/obs"
	"zcover/internal/testbed"
)

func TestEffectiveWorkersCapsAtGomaxprocs(t *testing.T) {
	p := runtime.GOMAXPROCS(0)
	cases := []struct {
		cfg  fleet.Config
		jobs int
		want int
	}{
		{fleet.Config{Workers: 1}, 14, 1},
		{fleet.Config{Workers: p + 7}, 14, min(p, 14)},
		{fleet.Config{Workers: p + 7, AllowOversubscription: true}, 14, min(p+7, 14)},
		{fleet.Config{Workers: 8}, 3, min(p, 3)},
		{fleet.Config{}, 14, min(p, 14)},
		{fleet.Config{Workers: 5}, 0, 1},
	}
	for _, c := range cases {
		if got := c.cfg.EffectiveWorkers(c.jobs); got != c.want {
			t.Errorf("EffectiveWorkers(%d) with %+v = %d, want %d", c.jobs, c.cfg, got, c.want)
		}
	}
}

// TestFleetRecordsTimeline runs a real fleet with a timeline attached and
// checks the fleet-level phase attribution: build and persist phases from
// the fleet itself, run for a runner that never reports pipeline phases,
// and per-lane job counts covering all jobs.
func TestFleetRecordsTimeline(t *testing.T) {
	jobs := []fleet.Job{
		zcoverJob("a", "D1", 1),
		zcoverJob("b", "D2", 2),
		zcoverJob("c", "D3", 3),
	}
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (string, error) {
		time.Sleep(time.Millisecond)
		return job.Name, nil
	}
	tl := obs.NewTimeline()
	var persisted int
	f := fleet.New(jobs, runner, fleet.Config{Workers: 1, Timeline: tl}).
		WithResume(
			func(i int, job fleet.Job) (string, bool) { return "", false },
			func(i int, job fleet.Job, res fleet.Result[string]) error { persisted++; return nil })
	if err := fleet.FirstError(f.Run()); err != nil {
		t.Fatal(err)
	}
	if persisted != len(jobs) {
		t.Fatalf("persisted %d jobs, want %d", persisted, len(jobs))
	}
	snap := tl.Snapshot()
	if len(snap.Workers) != 1 {
		t.Fatalf("lanes = %d, want 1", len(snap.Workers))
	}
	if snap.Workers[0].Jobs != len(jobs) {
		t.Errorf("lane saw %d jobs, want %d", snap.Workers[0].Jobs, len(jobs))
	}
	for _, phase := range []string{obs.PhaseBuild, obs.PhaseRun, obs.PhasePersist} {
		if _, ok := snap.PhaseWallSec[phase]; !ok {
			t.Errorf("phase %q missing from attribution: %v", phase, snap.PhaseWallSec)
		}
	}
	if snap.PhaseWallSec[obs.PhaseRun] <= 0 {
		t.Errorf("run phase wall = %v, want > 0", snap.PhaseWallSec[obs.PhaseRun])
	}
}

// TestFleetNilTimeline pins that the default (no timeline) path still works
// with the phase hooks in place.
func TestFleetNilTimeline(t *testing.T) {
	runner := func(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (int, error) {
		obs.Phase("fuzz") // must be a no-op, not a panic
		return 7, nil
	}
	results := fleet.Run([]fleet.Job{zcoverJob("a", "D1", 1)}, runner, fleet.Config{Workers: 1})
	if err := fleet.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if results[0].Value != 7 {
		t.Fatalf("value = %d", results[0].Value)
	}
}
