#!/bin/sh
# coverage_baseline.sh — maintain the per-package statement-coverage
# baseline that verify.sh enforces (a package may not drop more than 2
# points below its recorded figure).
#
#   ./scripts/coverage_baseline.sh                # full regeneration
#   ./scripts/coverage_baseline.sh -add-missing   # record new packages only
#
# -add-missing appends packages that have no baseline entry yet (verify.sh
# warns about them) while leaving every existing figure untouched, so
# landing a new package never loosens or tightens the gate on old ones.
# After a full regeneration or an addition, commit the updated file.
set -eu

cd "$(dirname "$0")/.."

baseline="scripts/coverage_baseline.txt"
mode="regen"
for arg in "$@"; do
    case "$arg" in
    -add-missing) mode="add" ;;
    *)
        echo "coverage_baseline.sh: unknown flag $arg (want -add-missing)" >&2
        exit 2
        ;;
    esac
done

current="$(mktemp)"
trap 'rm -f "$current"' EXIT
go test -short -cover ./... | awk '
$1 == "ok" {
    for (i = 1; i <= NF; i++) if ($i == "coverage:") {
        pct = $(i+1)
        sub(/%/, "", pct)
        if (pct ~ /^[0-9.]+$/) print $2, pct
    }
}' > "$current"

if [ "$mode" = "add" ] && [ -f "$baseline" ]; then
    added=$(awk '
    NR == FNR { base[$1] = 1; next }
    !($1 in base) { print; n++ }
    END { exit n == 0 }
    ' "$baseline" "$current" | tee -a "$baseline") || true
    if [ -n "$added" ]; then
        echo "added to $baseline:"
        echo "$added"
    else
        echo "no unbaselined packages; $baseline unchanged"
    fi
else
    cp "$current" "$baseline"
    echo "wrote $baseline:"
    cat "$baseline"
fi
