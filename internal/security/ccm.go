package security

import (
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
)

// CCM parameters fixed by the Z-Wave S2 specification: 13-byte nonce and
// 8-byte authentication tag, leaving a 2-byte CCM length field.
const (
	// CCMNonceSize is the nonce length in bytes.
	CCMNonceSize = 13
	// CCMTagSize is the authentication tag length in bytes.
	CCMTagSize = 8
)

// ErrCCMAuth is returned when CCM tag verification fails.
var ErrCCMAuth = errors.New("security: CCM authentication failed")

// ccm implements AES-CCM (RFC 3610) as a cipher.AEAD with the S2 parameter
// set (L=2, M=8).
type ccm struct {
	block cipher.Block
}

var _ cipher.AEAD = (*ccm)(nil)

// NewCCM returns an AES-CCM AEAD under a 16-byte key with the S2 parameter
// set (13-byte nonce, 8-byte tag). The AEAD is stateless and shared from
// the key-context cache, so calling NewCCM per message costs one cache
// lookup, not an AES key expansion; it is safe for concurrent use.
func NewCCM(key []byte) (cipher.AEAD, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("security: CCM key must be %d bytes, got %d", KeySize, len(key))
	}
	ctx, err := contextFor(key)
	if err != nil {
		return nil, err
	}
	return ctx.aead, nil
}

// NonceSize implements cipher.AEAD.
func (*ccm) NonceSize() int { return CCMNonceSize }

// Overhead implements cipher.AEAD.
func (*ccm) Overhead() int { return CCMTagSize }

// maxPayload is the largest plaintext CCM with L=2 can frame.
const maxPayload = 1<<16 - 1

// Seal implements cipher.AEAD. It writes ciphertext and tag directly into
// grown dst, so a caller that passes a buffer with spare capacity pays no
// allocation.
func (c *ccm) Seal(dst, nonce, plaintext, aad []byte) []byte {
	if len(nonce) != CCMNonceSize {
		panic("security: bad CCM nonce size")
	}
	if len(plaintext) > maxPayload {
		panic("security: CCM plaintext too large")
	}
	sc := getScratch()
	defer putScratch(sc)
	tag := c.authTag(sc, nonce, plaintext, aad)

	dst, out := extend(dst, len(plaintext)+CCMTagSize)
	c.ctrCrypt(sc, nonce, out[:len(plaintext)], plaintext, 1)

	// Encrypt the tag with counter block 0.
	c.ctrBlock(sc, nonce, 0, &sc.tagKS)
	for i := 0; i < CCMTagSize; i++ {
		out[len(plaintext)+i] = tag[i] ^ sc.tagKS[i]
	}
	return dst
}

// Open implements cipher.AEAD. Like Seal it decrypts into grown dst.
func (c *ccm) Open(dst, nonce, ciphertext, aad []byte) ([]byte, error) {
	if len(nonce) != CCMNonceSize {
		return nil, fmt.Errorf("security: bad CCM nonce size %d", len(nonce))
	}
	if len(ciphertext) < CCMTagSize {
		return nil, fmt.Errorf("security: CCM ciphertext shorter than tag")
	}
	body := ciphertext[:len(ciphertext)-CCMTagSize]
	gotTag := ciphertext[len(ciphertext)-CCMTagSize:]

	sc := getScratch()
	defer putScratch(sc)
	dst, plaintext := extend(dst, len(body))
	c.ctrCrypt(sc, nonce, plaintext, body, 1)

	wantTag := c.authTag(sc, nonce, plaintext, aad)
	c.ctrBlock(sc, nonce, 0, &sc.tagKS)
	var expect [CCMTagSize]byte
	for i := 0; i < CCMTagSize; i++ {
		expect[i] = wantTag[i] ^ sc.tagKS[i]
	}
	if subtle.ConstantTimeCompare(gotTag, expect[:]) != 1 {
		return nil, ErrCCMAuth
	}
	return dst, nil
}

// extend grows dst by n bytes, reallocating only when capacity is short,
// and returns the grown slice plus the n-byte tail to write into.
func extend(dst []byte, n int) (grown, tail []byte) {
	if cap(dst)-len(dst) < n {
		ndst := make([]byte, len(dst), len(dst)+n)
		copy(ndst, dst)
		dst = ndst
	}
	grown = dst[:len(dst)+n]
	return grown, grown[len(dst):]
}

// authTag computes the CBC-MAC portion of CCM (the T value, untruncated
// beyond tag size) using pooled scratch (sc.b0, sc.x, sc.blk).
func (c *ccm) authTag(sc *scratch, nonce, plaintext, aad []byte) [CCMTagSize]byte {
	// B0: flags | nonce | message length.
	sc.b0 = [BlockSize]byte{}
	flags := byte(((CCMTagSize - 2) / 2) << 3) // M' field
	flags |= 1                                 // L' = L-1 = 1
	if len(aad) > 0 {
		flags |= 1 << 6
	}
	sc.b0[0] = flags
	copy(sc.b0[1:1+CCMNonceSize], nonce)
	binary.BigEndian.PutUint16(sc.b0[BlockSize-2:], uint16(len(plaintext)))

	c.block.Encrypt(sc.x[:], sc.b0[:])

	// Associated data blocks, prefixed with its 2-byte length encoding
	// (S2 AAD is always well under the 0xFEFF threshold). The first block
	// is assembled in scratch; S2's AAD (home+src+dst+seq+flags) fits in
	// it, keeping the per-message path allocation-free.
	if len(aad) > 0 {
		sc.blk = [BlockSize]byte{}
		binary.BigEndian.PutUint16(sc.blk[:2], uint16(len(aad)))
		n := copy(sc.blk[2:], aad)
		xorBlock(&sc.x, sc.blk)
		c.block.Encrypt(sc.x[:], sc.x[:])
		rest := aad[n:]
		for i := 0; i < len(rest); i += BlockSize {
			end := i + BlockSize
			if end > len(rest) {
				end = len(rest)
			}
			xorBytes(&sc.x, rest[i:end])
			c.block.Encrypt(sc.x[:], sc.x[:])
		}
	}

	// Payload blocks.
	for i := 0; i < len(plaintext); i += BlockSize {
		end := i + BlockSize
		if end > len(plaintext) {
			end = len(plaintext)
		}
		xorBytes(&sc.x, plaintext[i:end])
		c.block.Encrypt(sc.x[:], sc.x[:])
	}

	var tag [CCMTagSize]byte
	copy(tag[:], sc.x[:CCMTagSize])
	return tag
}

// ctrBlock writes keystream block i for the nonce into out, assembling the
// counter block in sc.ctr (out must be a different scratch field).
func (c *ccm) ctrBlock(sc *scratch, nonce []byte, counter uint16, out *[BlockSize]byte) {
	sc.ctr = [BlockSize]byte{}
	sc.ctr[0] = 1 // L' = 1
	copy(sc.ctr[1:1+CCMNonceSize], nonce)
	binary.BigEndian.PutUint16(sc.ctr[BlockSize-2:], counter)
	c.block.Encrypt(out[:], sc.ctr[:])
}

// ctrCrypt XORs src with the CTR keystream starting at the given counter.
func (c *ccm) ctrCrypt(sc *scratch, nonce []byte, dst, src []byte, startCounter uint16) {
	counter := startCounter
	for i := 0; i < len(src); i += BlockSize {
		c.ctrBlock(sc, nonce, counter, &sc.ks)
		counter++
		end := i + BlockSize
		if end > len(src) {
			end = len(src)
		}
		for j := i; j < end; j++ {
			dst[j] = src[j] ^ sc.ks[j-i]
		}
	}
}
