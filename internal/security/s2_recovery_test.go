package security

import (
	"errors"
	"testing"
)

// SPAN desync recovery: a lost frame leaves the receiver's nonce counter
// behind; with a recovery window the next genuine message resynchronises
// the flow, without one it fails authentication (the pre-existing strict
// behaviour).

func TestS2RecoveryWindowSkipsLostFrames(t *testing.T) {
	a, b := newTestSessions(t)
	b.SetRecoveryWindow(8)
	aad := []byte("hdr")

	// Three messages vanish on the air.
	for i := 0; i < 3; i++ {
		if _, err := a.Encapsulate(FlowAtoB, aad, []byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	encap, err := a.Encapsulate(FlowAtoB, aad, []byte("fourth"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Decapsulate(FlowAtoB, aad, encap)
	if err != nil || string(got) != "fourth" {
		t.Fatalf("recovery decapsulation: %q, %v", got, err)
	}
	// The flow is resynchronised: the next message decapsulates directly.
	encap, err = a.Encapsulate(FlowAtoB, aad, []byte("fifth"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := b.Decapsulate(FlowAtoB, aad, encap); err != nil || string(got) != "fifth" {
		t.Fatalf("post-recovery decapsulation: %q, %v", got, err)
	}
}

func TestS2RecoveryWindowBounded(t *testing.T) {
	a, b := newTestSessions(t)
	b.SetRecoveryWindow(2)
	aad := []byte("hdr")
	for i := 0; i < 5; i++ { // gap of 5 exceeds the window of 2
		if _, err := a.Encapsulate(FlowAtoB, aad, []byte("lost")); err != nil {
			t.Fatal(err)
		}
	}
	encap, _ := a.Encapsulate(FlowAtoB, aad, []byte("late"))
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); !errors.Is(err, ErrS2Auth) {
		t.Fatalf("gap beyond window accepted (err=%v)", err)
	}
}

func TestS2RecoveryWindowStillRejectsForgery(t *testing.T) {
	a, b := newTestSessions(t)
	b.SetRecoveryWindow(8)
	aad := []byte("hdr")
	encap, _ := a.Encapsulate(FlowAtoB, aad, []byte("unlock"))
	encap[len(encap)-1] ^= 0xFF
	if _, err := b.Decapsulate(FlowAtoB, aad, encap); !errors.Is(err, ErrS2Auth) {
		t.Fatalf("forgery accepted under recovery window (err=%v)", err)
	}
	// And replays are still caught by the duplicate-sequence check.
	encap2, _ := a.Encapsulate(FlowAtoB, aad, []byte("unlock"))
	if _, err := b.Decapsulate(FlowAtoB, aad, encap2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Decapsulate(FlowAtoB, aad, encap2); !errors.Is(err, ErrS2Desync) {
		t.Fatalf("replay accepted under recovery window (err=%v)", err)
	}
}
