package controller

import (
	"testing"

	"zcover/internal/oracle"
	"zcover/internal/protocol"
)

// crc16Wrap builds a CRC_16_ENCAP payload around an inner command.
func crc16Wrap(inner []byte) []byte {
	whole := append([]byte{0x56, 0x01}, inner...)
	crc := protocol.CRC16(whole)
	return append(whole, byte(crc>>8), byte(crc))
}

func TestCRC16EncapReachesInnerResponder(t *testing.T) {
	r := newRig(t, "D1")
	r.inject(t, crc16Wrap([]byte{0x86, 0x11})) // VERSION_GET inside CRC16
	if len(r.replies) != 1 || r.replies[0][0] != 0x86 || r.replies[0][1] != 0x12 {
		t.Fatalf("replies = %v", r.replies)
	}
}

func TestCRC16EncapReachesVulnerableParser(t *testing.T) {
	// An encapsulated attack payload must hit the same buggy code path as
	// a bare one — firmware unwraps before dispatch.
	r := newRig(t, "D2")
	r.inject(t, crc16Wrap([]byte{0x01, 0x0D, 0x02}))
	if k, _ := r.lastEventKind(); k != oracle.NodeRemoved {
		t.Fatalf("events = %v", r.events)
	}
}

func TestCRC16EncapBadChecksumDropped(t *testing.T) {
	r := newRig(t, "D1")
	payload := crc16Wrap([]byte{0x86, 0x11})
	payload[len(payload)-1] ^= 0xFF
	r.inject(t, payload)
	if len(r.replies) != 0 || len(r.events) != 0 {
		t.Fatal("corrupted encapsulation was processed")
	}
}

func TestMultiCmdEncapDispatchesAllElements(t *testing.T) {
	r := newRig(t, "D1")
	// Two inner commands: VERSION_GET and MANUFACTURER_SPECIFIC_GET.
	payload := []byte{0x8F, 0x01, 0x02,
		0x02, 0x86, 0x11,
		0x02, 0x72, 0x04,
	}
	r.inject(t, payload)
	if len(r.replies) != 2 {
		t.Fatalf("replies = %d, want 2", len(r.replies))
	}
}

func TestMultiCmdEncapMalformedLengthStops(t *testing.T) {
	r := newRig(t, "D1")
	payload := []byte{0x8F, 0x01, 0x02,
		0x02, 0x86, 0x11,
		0x7F, 0x72, // claims 127 bytes, only 1 present
	}
	r.inject(t, payload)
	if len(r.replies) != 1 {
		t.Fatalf("replies = %d, want 1 (first element only)", len(r.replies))
	}
}

func TestSupervisionEncapConfirmsInnerCommand(t *testing.T) {
	r := newRig(t, "D4")
	payload := []byte{0x6C, 0x01, 0x2A, 0x02, 0x86, 0x11}
	r.inject(t, payload)
	if len(r.replies) != 2 {
		t.Fatalf("replies = %d, want inner response + supervision report", len(r.replies))
	}
	var report []byte
	for _, reply := range r.replies {
		if reply[0] == 0x6C {
			report = reply
		}
	}
	if report == nil || report[1] != 0x02 || report[2] != 0x2A {
		t.Fatalf("supervision report = % X", report)
	}
}

func TestSupervisionWithoutInnerStillAnswered(t *testing.T) {
	// The validation probe shape: SUPERVISION_GET with zero encapsulated
	// length must still elicit the canned report (53-command invariant).
	r := newRig(t, "D1")
	r.inject(t, []byte{0x6C, 0x01, 0x00, 0x00})
	if len(r.replies) != 1 || r.replies[0][0] != 0x6C {
		t.Fatalf("replies = %v", r.replies)
	}
}

func TestEncapDepthBounded(t *testing.T) {
	r := newRig(t, "D1")
	// Nest MULTI_CMD four deep around a node-removal attack; the firmware
	// unwraps at most three levels, so the innermost command is never
	// dispatched.
	inner := []byte{0x01, 0x0D, 0x02}
	for i := 0; i < 4; i++ {
		inner = append([]byte{0x8F, 0x01, 0x01, byte(len(inner))}, inner...)
	}
	r.inject(t, inner)
	if len(r.events) != 0 {
		t.Fatalf("depth-4 encapsulation reached the parser: %v", r.events)
	}
	if _, ok := r.ctrl.Table().Get(0x02); !ok {
		t.Fatal("node removed through over-deep encapsulation")
	}
	// Three levels is within the firmware's bound.
	inner = []byte{0x01, 0x0D, 0x02}
	for i := 0; i < 3; i++ {
		inner = append([]byte{0x8F, 0x01, 0x01, byte(len(inner))}, inner...)
	}
	r.inject(t, inner)
	if k, _ := r.lastEventKind(); k != oracle.NodeRemoved {
		t.Fatalf("depth-3 encapsulation not processed: %v", r.events)
	}
}
