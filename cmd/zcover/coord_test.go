package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCoordinateAndWorkCLI drives the distributed path end to end from
// the CLI: a coordinator on an ephemeral port (discovered through
// -addr-file, exactly as the CI scripts do), two workers draining it,
// and the rendered table + bug log landing on disk.
func TestCoordinateAndWorkCLI(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	tableOut := filepath.Join(dir, "table.txt")
	buglogOut := filepath.Join(dir, "bugs.jsonl")
	coordErr := make(chan error, 1)
	go func() {
		coordErr <- run([]string{"coordinate", "-campaign", "smoke",
			"-addr", "127.0.0.1:0", "-addr-file", addrFile,
			"-checkpoint-dir", filepath.Join(dir, "coord"),
			"-linger", "500ms",
			"-table-out", tableOut, "-buglog-out", buglogOut})
	}()
	var addr string
	for i := 0; i < 500 && addr == ""; i++ {
		if b, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(b))
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatal("coordinator never published its address")
	}
	for i := 0; i < 2; i++ {
		if err := run([]string{"work", "-coordinator", "http://" + addr,
			"-id", fmt.Sprintf("cli-w%d", i),
			"-checkpoint-dir", filepath.Join(dir, "workers")}); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-coordErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	tbl, err := os.ReadFile(tableOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tbl), "Coordinator smoke campaign") {
		t.Fatalf("table out malformed:\n%s", tbl)
	}
	bugs, err := os.ReadFile(buglogOut)
	if err != nil {
		t.Fatal(err)
	}
	if len(bugs) == 0 {
		t.Fatal("bug log empty — the smoke campaign should surface findings")
	}
}

func TestCoordinateAndWorkRejectBadInputs(t *testing.T) {
	if err := run([]string{"coordinate"}); err == nil ||
		!strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("coordinate without -checkpoint-dir: %v", err)
	}
	if err := run([]string{"coordinate", "-campaign", "sideways",
		"-checkpoint-dir", t.TempDir()}); err == nil {
		t.Fatal("accepted unknown campaign")
	}
	if err := run([]string{"work"}); err == nil ||
		!strings.Contains(err.Error(), "-coordinator") {
		t.Fatalf("work without -coordinator: %v", err)
	}
}
