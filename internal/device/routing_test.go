package device

import (
	"testing"

	"zcover/internal/protocol"
	"zcover/internal/radio"
	"zcover/internal/vtime"
)

// meshRig builds a three-node line topology: hub at the origin, a repeater
// switch 35 m away, and a far node at 70 m — with a 40 m radio range, the
// far node can only reach the hub through the repeater.
type meshRig struct {
	medium   *radio.Medium
	hub      *Node
	repeater *BinarySwitch
	far      *Node
	hubGot   [][]byte
	farGot   [][]byte
}

func newMeshRig(t *testing.T) *meshRig {
	t.Helper()
	r := &meshRig{medium: radio.NewMedium(vtime.NewSimClock())}
	r.medium.SetRange(40)

	r.hub = NewNode(Config{Medium: r.medium, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	r.hub.Place(0, 0)
	r.hub.Handler = func(f *protocol.Frame) { r.hubGot = append(r.hubGot, append([]byte{}, f.Payload...)) }

	r.repeater = NewBinarySwitch(Config{Medium: r.medium, Region: radio.RegionUS, Home: testHome, ID: 0x03, Name: "repeater"}, 0x01)
	r.repeater.Node().Place(35, 0)

	r.far = NewNode(Config{Medium: r.medium, Region: radio.RegionUS, Home: testHome, ID: 0x05, Name: "far"})
	r.far.Place(70, 0)
	r.far.Handler = func(f *protocol.Frame) { r.farGot = append(r.farGot, append([]byte{}, f.Payload...)) }
	return r
}

func TestDirectDeliveryFailsOutOfRange(t *testing.T) {
	r := newMeshRig(t)
	if err := r.far.Send(0x01, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 0 {
		t.Fatal("frame crossed 70 m with a 40 m range")
	}
}

func TestRoutedDeliveryThroughRepeater(t *testing.T) {
	r := newMeshRig(t)
	msg := []byte{0x20, 0x01, 0xFF}
	if err := r.far.SendRouted(0x01, []protocol.NodeID{0x03}, msg); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 1 || r.hubGot[0][0] != 0x20 {
		t.Fatalf("hub received %v", r.hubGot)
	}
}

func TestRoutedDeliveryBothDirections(t *testing.T) {
	r := newMeshRig(t)
	if err := r.hub.SendRouted(0x05, []protocol.NodeID{0x03}, []byte{0x25, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(r.farGot) != 1 {
		t.Fatalf("far received %v", r.farGot)
	}
}

func TestRepeaterIgnoresWrongTurn(t *testing.T) {
	r := newMeshRig(t)
	// A route listing the repeater at hop 1 while hop 0 names a ghost:
	// nobody's turn, the frame dies.
	payload, err := protocol.EncodeRoutedPayload(protocol.RouteHeader{
		Repeaters: []protocol.NodeID{0x77, 0x03},
	}, []byte{0x20, 0x01, 0xFF})
	if err != nil {
		t.Fatal(err)
	}
	f := protocol.NewDataFrame(testHome, 0x05, 0x01, payload)
	f.Control.Header = protocol.HeaderRouted
	f.Control.AckRequested = false
	raw := f.MustEncode()
	trx := r.medium.Attach("raw", radio.RegionUS)
	trx.Place(70, 0)
	if err := trx.Transmit(raw); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 0 {
		t.Fatal("frame delivered without its repeater's turn")
	}
}

func TestNonRepeaterDoesNotForward(t *testing.T) {
	r := newMeshRig(t)
	// Route through the far *node* (not a repeater) back to the hub: the
	// node must not forward.
	mid := NewNode(Config{Medium: r.medium, Region: radio.RegionUS, Home: testHome, ID: 0x06, Name: "mid"})
	mid.Place(35, 10)
	if err := r.far.SendRouted(0x01, []protocol.NodeID{0x06}, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 0 {
		t.Fatal("non-repeater forwarded a routed frame")
	}
}

func TestRoutedFourHopChain(t *testing.T) {
	m := radio.NewMedium(vtime.NewSimClock())
	m.SetRange(30)
	hub := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x01, Name: "hub"})
	hub.Place(0, 0)
	var got [][]byte
	hub.Handler = func(f *protocol.Frame) { got = append(got, append([]byte{}, f.Payload...)) }

	var route []protocol.NodeID
	for i := 1; i <= 4; i++ {
		sw := NewBinarySwitch(Config{Medium: m, Region: radio.RegionUS, Home: testHome,
			ID: protocol.NodeID(0x10 + i), Name: "r"}, 0x01)
		sw.Node().Place(float64(i)*25, 0)
		route = append(route, sw.Node().ID())
	}
	far := NewNode(Config{Medium: m, Region: radio.RegionUS, Home: testHome, ID: 0x20, Name: "far"})
	far.Place(125, 0)

	// Route must run far -> r4 -> r3 -> r2 -> r1 -> hub.
	reversed := []protocol.NodeID{route[3], route[2], route[1], route[0]}
	if err := far.SendRouted(0x01, reversed, []byte{0x20, 0x01, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("hub received %v", got)
	}
}

func TestRouteHeaderRoundTrip(t *testing.T) {
	rh := protocol.RouteHeader{Inbound: true, Repeaters: []protocol.NodeID{3, 7}, Hop: 1}
	payload, err := protocol.EncodeRoutedPayload(rh, []byte{0x62, 0x02})
	if err != nil {
		t.Fatal(err)
	}
	got, apl, err := protocol.ParseRoutedPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Inbound || got.Hop != 1 || len(got.Repeaters) != 2 || got.Repeaters[1] != 7 {
		t.Fatalf("header = %+v", got)
	}
	if len(apl) != 2 || apl[0] != 0x62 {
		t.Fatalf("apl = % X", apl)
	}
}

func TestRouteHeaderValidation(t *testing.T) {
	if _, err := protocol.EncodeRoutedPayload(protocol.RouteHeader{}, nil); err == nil {
		t.Fatal("accepted empty route")
	}
	if _, err := protocol.EncodeRoutedPayload(protocol.RouteHeader{
		Repeaters: []protocol.NodeID{1, 2, 3, 4, 5}}, nil); err == nil {
		t.Fatal("accepted five repeaters")
	}
	if _, err := protocol.EncodeRoutedPayload(protocol.RouteHeader{
		Repeaters: []protocol.NodeID{0xFF}}, nil); err == nil {
		t.Fatal("accepted broadcast repeater")
	}
	if _, _, err := protocol.ParseRoutedPayload([]byte{0x00, 0x51, 0x03}); err == nil {
		t.Fatal("accepted truncated repeater list")
	}
	if _, _, err := protocol.ParseRoutedPayload([]byte{0x00}); err == nil {
		t.Fatal("accepted short payload")
	}
}

// The Fig. 2 geometry: the attacker at 70 m is out of direct range but
// the victim's own mains-powered switch repeats the kill packet into the
// controller. The mesh works for the attacker too.
func TestAttackerRoutesAttackThroughVictimRepeater(t *testing.T) {
	r := newMeshRig(t)
	attacker := NewNode(Config{Medium: r.medium, Region: radio.RegionUS, Home: testHome, ID: 0x0F, Name: "attacker"})
	attacker.Place(70, 0)

	// Direct injection fails at this distance...
	if err := attacker.Send(0x01, []byte{0x01, 0x0D, 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 0 {
		t.Fatal("direct injection crossed 70 m")
	}
	// ...but the network's own repeater delivers it.
	if err := attacker.SendRouted(0x01, []protocol.NodeID{0x03}, []byte{0x01, 0x0D, 0x02}); err != nil {
		t.Fatal(err)
	}
	if len(r.hubGot) != 1 || r.hubGot[0][0] != 0x01 {
		t.Fatalf("hub received %v", r.hubGot)
	}
}
