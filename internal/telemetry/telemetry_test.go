package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("Counter lookup did not return the same handle")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestHistogramBucketBoundaries pins the "le" semantics: a value exactly on
// a bound lands in that bound's bucket, one epsilon above spills into the
// next, and values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 5, 10)

	cases := []struct {
		v    float64
		want int // bucket index: bounds [1 5 10] + +Inf at 3
	}{
		{0, 0}, {1, 0}, // exactly on the first bound → first bucket
		{1.0000001, 1},
		{5, 1}, // exactly on a middle bound
		{9.999, 2},
		{10, 2},   // exactly on the last bound
		{10.1, 3}, // above every bound → +Inf
		{1e12, 3},
		{-3, 0}, // below the first bound still lands in the first bucket
	}
	for _, tc := range cases {
		before := h.BucketCounts()
		h.Observe(tc.v)
		after := h.BucketCounts()
		for i := range after {
			wantDelta := int64(0)
			if i == tc.want {
				wantDelta = 1
			}
			if after[i]-before[i] != wantDelta {
				t.Errorf("Observe(%v): bucket %d delta = %d, want %d",
					tc.v, i, after[i]-before[i], wantDelta)
			}
		}
	}
	if h.Count() != int64(len(cases)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(cases))
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 10, 1, 5)
	got := h.Bounds()
	want := []float64{1, 5, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bounds = %v, want %v", got, want)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d, want 8000", h.Count())
	}
	if h.Sum() != 8000*1.5 {
		t.Fatalf("Sum = %g, want %g", h.Sum(), 8000*1.5)
	}
}

func TestWritePrometheusStableAndCumulative(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("q").Set(-4)
	h := r.Histogram("lat_ms", 1, 2)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Errorf("counters not sorted by name:\n%s", out)
	}
	for _, want := range []string{
		"a_total 1", "b_total 2", "q -4",
		`lat_ms_bucket{le="1"} 1`,
		`lat_ms_bucket{le="2"} 2`,
		`lat_ms_bucket{le="+Inf"} 3`,
		"lat_ms_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two exports of the same registry differ")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	simNow := time.Date(2025, 1, 1, 0, 0, 42, 0, time.UTC)
	r.SetNow(func() time.Time { return simNow })
	r.Counter("pkts").Add(7)
	r.Gauge("running").Set(3)
	r.Histogram("h", 1).Observe(2)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		At         time.Time        `json:"at"`
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Counts []int64 `json:"counts"`
			Count  int64   `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if !doc.At.Equal(simNow) {
		t.Errorf("at = %v, want sim time %v", doc.At, simNow)
	}
	if doc.Counters["pkts"] != 7 || doc.Gauges["running"] != 3 {
		t.Errorf("values = %v / %v", doc.Counters, doc.Gauges)
	}
	if h := doc.Histograms["h"]; h.Count != 1 || len(h.Counts) != 2 || h.Counts[1] != 1 {
		t.Errorf("histogram export wrong: %+v", h)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(5)
	h := r.Histogram("h", 1)
	h.Observe(9)
	r.Reset()
	if c.Load() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("Reset left values: c=%d count=%d sum=%g", c.Load(), h.Count(), h.Sum())
	}
}

func TestFlightRecorderRingAndSnapshot(t *testing.T) {
	rec := NewFlightRecorder(3)
	if rec.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", rec.Depth())
	}
	at := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := byte(1); i <= 5; i++ {
		rec.Record(FrameRecord{At: at, Raw: []byte{i}, Security: SecurityNone})
	}
	if rec.Len() != 3 || rec.Recorded() != 5 {
		t.Fatalf("Len=%d Recorded=%d, want 3/5", rec.Len(), rec.Recorded())
	}
	snap := rec.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d frames, want 3", len(snap))
	}
	for i, wantByte := range []byte{3, 4, 5} {
		if snap[i].Raw[0] != wantByte {
			t.Errorf("snapshot[%d].Raw = %v, want [%d]", i, snap[i].Raw, wantByte)
		}
		if snap[i].Seq != uint64(wantByte) {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, snap[i].Seq, wantByte)
		}
	}
	// Snapshot raw bytes are private copies.
	snap[0].Raw[0] = 0xFF
	if rec.Snapshot()[0].Raw[0] == 0xFF {
		t.Error("snapshot aliased the ring buffer")
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Recorded() != 5 {
		t.Errorf("after Reset: Len=%d Recorded=%d, want 0/5", rec.Len(), rec.Recorded())
	}
}

func TestFlightRecorderDefaultDepth(t *testing.T) {
	if got := NewFlightRecorder(0).Depth(); got != DefaultFlightDepth {
		t.Fatalf("Depth = %d, want %d", got, DefaultFlightDepth)
	}
}

func TestTracerRoundTripAndNilSafety(t *testing.T) {
	var nilTracer *Tracer
	sp := nilTracer.Span("x", "phase", nil)
	sp.SetAttr("k", "v")
	if err := sp.End(); err != nil {
		t.Fatalf("nil tracer span End: %v", err)
	}

	var buf bytes.Buffer
	start := time.Date(2025, 1, 1, 0, 0, 0, 0, time.UTC)
	tr := NewTracer(&buf, nil)
	s := tr.SpanAt("scan", "phase", map[string]string{"device": "D1"}, start)
	s.SetAttr("strategy", "zcover-full")
	if err := s.EndAt(start.Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 1 {
		t.Fatalf("Events = %d, want 1", tr.Events())
	}

	evs, err := ReadTrace(strings.NewReader(buf.String() + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("ReadTrace returned %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "scan" || ev.Kind != "phase" || ev.DurSec != 120 ||
		ev.Attrs["device"] != "D1" || ev.Attrs["strategy"] != "zcover-full" {
		t.Errorf("event = %+v", ev)
	}
	if !ev.Start.Equal(start) || !ev.End.Equal(start.Add(2*time.Minute)) {
		t.Errorf("span times = %v..%v", ev.Start, ev.End)
	}
}

func TestReadTraceToleratesUnknownFieldsRejectsGarbage(t *testing.T) {
	in := `{"name":"fuzz","kind":"phase","start":"2025-01-01T00:00:00Z","end":"2025-01-01T00:01:00Z","dur_sec":60,"future_field":123}`
	evs, err := ReadTrace(strings.NewReader(in))
	if err != nil || len(evs) != 1 {
		t.Fatalf("unknown-field line: evs=%d err=%v", len(evs), err)
	}
	if _, err := ReadTrace(strings.NewReader("{not json}")); err == nil {
		t.Fatal("malformed line did not error")
	}
}
