// Package scan implements phase 1 of ZCover: known-properties
// fingerprinting (§III-B of the paper). The passive scanner extracts home
// IDs and node IDs from sniffed traffic; the active scanner interrogates
// the target controller with node-information-frame requests to learn its
// listed command classes.
package scan

import (
	"fmt"
	"sort"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/device"
	"zcover/internal/protocol"
	"zcover/internal/zcover/dongle"
)

// AttackerNodeID is the source ID ZCover spoofs on injected frames. Any
// ID unused by the target network works; 0x0F follows the paper's Fig. 4
// example traffic.
const AttackerNodeID protocol.NodeID = 0x0F

// Network is one Z-Wave network discovered by passive scanning.
type Network struct {
	// Home is the network home ID.
	Home protocol.HomeID
	// Nodes lists every node ID observed communicating, ascending.
	Nodes []protocol.NodeID
	// Controller is the inferred controller node: the unicast destination
	// that receives the most traffic (slaves report to their hub).
	Controller protocol.NodeID
	// Frames counts the captures attributed to this network.
	Frames int
}

// Passive runs the passive scanner for the given window: packet capturing,
// packet dissection, and packet analysis (the three steps of Fig. 4).
// Encrypted (S2) traffic contributes too — S2 encrypts only the
// application payload, so home and node IDs remain readable.
func Passive(d *dongle.Dongle, window time.Duration) []Network {
	captures := d.Observe(window)

	type tally struct {
		nodes    map[protocol.NodeID]bool
		dstCount map[protocol.NodeID]int
		frames   int
	}
	nets := make(map[protocol.HomeID]*tally)
	for _, c := range captures {
		// Packet dissection + analysis: header fields only, no checksum
		// requirement — a damaged capture still reveals the network.
		home, src, dst, ok := protocol.SniffNetworkInfo(c.Raw)
		if !ok {
			continue
		}
		t := nets[home]
		if t == nil {
			t = &tally{nodes: make(map[protocol.NodeID]bool), dstCount: make(map[protocol.NodeID]int)}
			nets[home] = t
		}
		t.frames++
		if src.IsUnicast() {
			t.nodes[src] = true
		}
		if dst.IsUnicast() {
			t.nodes[dst] = true
			t.dstCount[dst]++
		}
	}

	out := make([]Network, 0, len(nets))
	for home, t := range nets {
		n := Network{Home: home, Frames: t.frames}
		for id := range t.nodes {
			n.Nodes = append(n.Nodes, id)
		}
		sort.Slice(n.Nodes, func(i, j int) bool { return n.Nodes[i] < n.Nodes[j] })
		best, bestCount := protocol.NodeID(0), -1
		for id, count := range t.dstCount {
			if count > bestCount || (count == bestCount && id < best) {
				best, bestCount = id, count
			}
		}
		n.Controller = best
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Home < out[j].Home })
	return out
}

// Fingerprint is the complete known-properties profile of one controller:
// the output of phase 1 and the input of phase 2.
type Fingerprint struct {
	// Home and Controller identify the target.
	Home       protocol.HomeID
	Controller protocol.NodeID
	// Nodes lists every node observed on the network (slaves included) —
	// the semantic value pool position-sensitive mutation draws from.
	Nodes []protocol.NodeID
	// Listed is the controller's advertised command-class list.
	Listed []cmdclass.ClassID
	// Identity is the full parsed NIF.
	Identity device.Identity
}

// Active runs the active scanner against a network found passively:
// dynamic device interrogation (a liveness probe), listed-property
// querying (the NIF request), and response analysis (§III-B2).
func Active(d *dongle.Dongle, net Network) (Fingerprint, error) {
	fp := Fingerprint{Home: net.Home, Controller: net.Controller, Nodes: net.Nodes}
	if !net.Controller.IsUnicast() {
		return fp, fmt.Errorf("scan: network %s has no identified controller", net.Home)
	}

	// Step 1: dynamic device interrogation — confirm the target is alive.
	// One probe suffices on a clean channel, and is all that is sent there;
	// an impaired air can eat either direction of the exchange, so the
	// scanner re-probes before concluding the target is down, like the NIF
	// loop below.
	const pingRetries = 4
	alive := false
	for attempt := 0; attempt < pingRetries && !alive; attempt++ {
		alive = d.Ping(net.Home, AttackerNodeID, net.Controller)
	}
	if !alive {
		return fp, fmt.Errorf("scan: controller %s of network %s did not answer liveness probe",
			net.Controller, net.Home)
	}

	// Step 2: listed-property querying via a NIF request. Requests and
	// responses can be lost on a noisy air, so the scanner retries a few
	// times before concluding the controller is silent.
	const nifRetries = 4
	for attempt := 0; attempt < nifRetries; attempt++ {
		ex, err := d.SendAndObserve(net.Home, AttackerNodeID, net.Controller,
			device.NIFRequestPayload(net.Controller), dongle.DefaultResponseWindow)
		if err != nil {
			return fp, fmt.Errorf("scan: NIF request: %w", err)
		}
		// Step 3: response analysis.
		for _, resp := range ex.Responses {
			if id, ok := device.ParseNIF(resp.Payload); ok {
				fp.Identity = id
				fp.Listed = id.Classes
				return fp, nil
			}
		}
	}
	return fp, fmt.Errorf("scan: controller %s sent no NIF after %d requests", net.Controller, nifRetries)
}

// FingerprintTarget is the phase-1 convenience entry point: sniff for the
// window, pick the network with the given home ID (or the busiest network
// when home is zero), and interrogate its controller.
func FingerprintTarget(d *dongle.Dongle, window time.Duration, home protocol.HomeID) (Fingerprint, error) {
	nets := Passive(d, window)
	if len(nets) == 0 {
		return Fingerprint{}, fmt.Errorf("scan: no Z-Wave traffic observed in %s", window)
	}
	var chosen *Network
	for i := range nets {
		n := &nets[i]
		if home != 0 && n.Home != home {
			continue
		}
		if chosen == nil || n.Frames > chosen.Frames {
			chosen = n
		}
	}
	if chosen == nil {
		return Fingerprint{}, fmt.Errorf("scan: network %s not observed", home)
	}
	return Active(d, *chosen)
}
