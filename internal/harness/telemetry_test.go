package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/telemetry"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// fullTelemetryConfig builds a fleet config with every telemetry attachment
// live: a shared registry, a job tracer, and (via the process-wide knob) a
// flight recorder on every campaign testbed.
func fullTelemetryConfig(workers int, traceSink io.Writer) fleet.Config {
	return fleet.Config{
		Workers:   workers,
		Telemetry: telemetry.NewRegistry(),
		Tracer:    telemetry.NewTracer(traceSink, nil),
	}
}

// TestTable5ByteIdenticalWithTelemetryAcrossWorkers asserts the ISSUE's
// determinism hard constraint: enabling the whole observability stack —
// metrics registry, flight recorder, span tracer — must not perturb
// Table V by a single byte, at any worker count.
func TestTable5ByteIdenticalWithTelemetryAcrossWorkers(t *testing.T) {
	baseTbl, _, err := Table5Fleet(fleetTestBudget, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	SetFleetRecorderDepth(telemetry.DefaultFlightDepth)
	defer SetFleetRecorderDepth(0)
	for _, workers := range []int{1, 8} {
		var traces bytes.Buffer
		tbl, _, err := Table5Fleet(fleetTestBudget, fullTelemetryConfig(workers, &traces))
		if err != nil {
			t.Fatal(err)
		}
		if tbl.String() != baseTbl.String() {
			t.Errorf("Table V with telemetry (workers=%d) differs from plain run:\n--- telemetry ---\n%s\n--- plain ---\n%s",
				workers, tbl.String(), baseTbl.String())
		}
		events, err := telemetry.ReadTrace(&traces)
		if err != nil {
			t.Fatalf("workers=%d: reading job trace: %v", workers, err)
		}
		if len(events) != 10 {
			t.Errorf("workers=%d: %d job spans, want 10 (one per Table V campaign)", workers, len(events))
		}
	}
}

func TestTable6ByteIdenticalWithTelemetryAcrossWorkers(t *testing.T) {
	baseTbl, _, err := Table6Fleet(fleetTestBudget, fleet.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	SetFleetRecorderDepth(telemetry.DefaultFlightDepth)
	defer SetFleetRecorderDepth(0)
	for _, workers := range []int{1, 8} {
		var traces bytes.Buffer
		tbl, _, err := Table6Fleet(fleetTestBudget, fullTelemetryConfig(workers, &traces))
		if err != nil {
			t.Fatal(err)
		}
		if tbl.String() != baseTbl.String() {
			t.Errorf("Table VI with telemetry (workers=%d) differs from plain run:\n--- telemetry ---\n%s\n--- plain ---\n%s",
				workers, tbl.String(), baseTbl.String())
		}
	}
}

// TestFlightRecorderAttachesTracesToFindings asserts the other acceptance
// criterion: with a recorder attached, every finding of a campaign carries
// at least one captured frame, the snapshot survives the JSONL round trip,
// and the recorder is detached from the medium when the run ends.
func TestFlightRecorderAttachesTracesToFindings(t *testing.T) {
	tb, err := testbed.New("D1", 41)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunZCoverWith(tb, fuzz.StrategyFull, fleetTestBudget, 41, Options{
		FlightRecorderDepth: telemetry.DefaultFlightDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Fuzz.Findings) == 0 {
		t.Fatal("campaign found nothing; cannot exercise traces")
	}
	for i, f := range c.Fuzz.Findings {
		if len(f.Trace) == 0 {
			t.Errorf("finding %d (%s) has no flight-recorder trace", i, f.Signature)
		}
	}

	var buf bytes.Buffer
	if err := fuzz.WriteLog(&buf, c.Fuzz); err != nil {
		t.Fatal(err)
	}
	entries, err := fuzz.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(c.Fuzz.Findings) {
		t.Fatalf("%d log entries for %d findings", len(entries), len(c.Fuzz.Findings))
	}
	for i, e := range entries {
		if len(e.Trace) != len(c.Fuzz.Findings[i].Trace) {
			t.Errorf("entry %d: %d trace frames in log, %d in finding", i, len(e.Trace), len(c.Fuzz.Findings[i].Trace))
		}
		for _, tf := range e.Trace {
			if _, err := tf.RawFrame(); err != nil {
				t.Errorf("entry %d: %v", i, err)
			}
		}
	}

	// The deferred detach must leave the medium clean for testbed reuse.
	plain, err := RunZCover(tb, fuzz.StrategyFull, time.Minute, 41)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range plain.Fuzz.Findings {
		if len(f.Trace) != 0 {
			t.Error("recorder leaked into a later campaign without one")
			break
		}
	}
}

// TestRecorderAndTracerDoNotPerturbFindings pins the observer-purity
// contract at single-campaign granularity: the same seed yields the same
// findings with and without every attachment enabled.
func TestRecorderAndTracerDoNotPerturbFindings(t *testing.T) {
	run := func(opts Options) *fuzz.Result {
		t.Helper()
		tb, err := testbed.New("D4", 7)
		if err != nil {
			t.Fatal(err)
		}
		c, err := RunZCoverWith(tb, fuzz.StrategyFull, fleetTestBudget, 7, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c.Fuzz
	}

	plain := run(Options{})
	var traces strings.Builder
	traced := run(Options{
		FlightRecorderDepth: 32,
		Tracer:              telemetry.NewTracer(&traces, nil),
	})

	if len(plain.Findings) != len(traced.Findings) {
		t.Fatalf("finding count changed: %d plain, %d instrumented", len(plain.Findings), len(traced.Findings))
	}
	for i := range plain.Findings {
		p, q := plain.Findings[i], traced.Findings[i]
		if p.Signature != q.Signature || p.Packets != q.Packets || p.Elapsed != q.Elapsed {
			t.Errorf("finding %d diverged: %s/%d/%v vs %s/%d/%v",
				i, p.Signature, p.Packets, p.Elapsed, q.Signature, q.Packets, q.Elapsed)
		}
	}
	if plain.PacketsSent != traced.PacketsSent {
		t.Errorf("packet count changed: %d vs %d", plain.PacketsSent, traced.PacketsSent)
	}

	events, err := telemetry.ReadTrace(strings.NewReader(traces.String()))
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, ev := range events {
		if ev.Kind == "phase" {
			phases = append(phases, ev.Name)
		}
	}
	if want := []string{"scan", "discover", "fuzz"}; strings.Join(phases, ",") != strings.Join(want, ",") {
		t.Errorf("phase spans = %v, want %v", phases, want)
	}
	for _, ev := range events {
		if !ev.End.After(ev.Start) {
			t.Errorf("span %q has non-positive duration (%v → %v)", ev.Name, ev.Start, ev.End)
		}
	}
}
