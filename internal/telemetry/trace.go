package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// TraceEvent is one completed span, serialised as a JSON line. The three
// ZCover phases (scan → discover → fuzz) and fleet jobs each emit one.
type TraceEvent struct {
	// Name identifies the span ("scan", "discover", "fuzz", a job label).
	Name string `json:"name"`
	// Kind groups spans: "phase" for pipeline stages, "job" for fleet work.
	Kind string `json:"kind,omitempty"`
	// Start and End bound the span. Pipeline phases run on simulated time;
	// fleet jobs on wall time (the attrs say which).
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// DurSec is End−Start in seconds, precomputed for plotting.
	DurSec float64 `json:"dur_sec"`
	// Attrs carries span labels (device, strategy, outcome, ...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer writes completed spans as JSON lines. Writes are serialised by a
// mutex; spans from concurrent fleet jobs appear in completion order. A
// nil *Tracer is a valid no-op tracer, so call sites need no guards.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
	n   int
}

// NewTracer writes spans to w, stamping them with now (nil = wall clock).
// Point now at a vtime.SimClock's Now for deterministic traces.
func NewTracer(w io.Writer, now func() time.Time) *Tracer {
	if now == nil {
		now = time.Now
	}
	return &Tracer{w: w, now: now}
}

// Events reports how many spans have been written.
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Span starts a span stamped with the tracer's clock. Safe on nil tracers.
func (t *Tracer) Span(name, kind string, attrs map[string]string) *Span {
	if t == nil {
		return nil
	}
	return t.SpanAt(name, kind, attrs, t.now())
}

// SpanAt starts a span at an explicit instant — campaign code uses the
// testbed's simulated clock here so traces are deterministic.
func (t *Tracer) SpanAt(name, kind string, attrs map[string]string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, ev: TraceEvent{Name: name, Kind: kind, Start: start, Attrs: attrs}}
}

// Span is one in-flight span. End (or EndAt) completes and writes it.
type Span struct {
	t  *Tracer
	ev TraceEvent
}

// SetAttr attaches a label to the span. Safe on nil spans.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.ev.Attrs == nil {
		s.ev.Attrs = map[string]string{}
	}
	s.ev.Attrs[k] = v
}

// End completes the span at the tracer's clock and writes it.
func (s *Span) End() error {
	if s == nil {
		return nil
	}
	return s.EndAt(s.t.now())
}

// EndAt completes the span at an explicit instant and writes it.
func (s *Span) EndAt(end time.Time) error {
	if s == nil {
		return nil
	}
	s.ev.End = end
	s.ev.DurSec = end.Sub(s.ev.Start).Seconds()
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	enc := json.NewEncoder(s.t.w)
	if err := enc.Encode(s.ev); err != nil {
		return fmt.Errorf("telemetry: writing trace event: %w", err)
	}
	s.t.n++
	return nil
}

// ReadTrace parses a JSONL trace stream, tolerating blank lines and
// unknown fields (forward compatibility) but failing on malformed JSON.
func ReadTrace(r io.Reader) ([]TraceEvent, error) {
	var out []TraceEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var ev TraceEvent
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace: %w", err)
	}
	return out, nil
}
