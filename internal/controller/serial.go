package controller

import (
	"time"

	"zcover/internal/device"
	"zcover/internal/protocol"
	"zcover/internal/serialapi"
)

// Serial API backend: the chip side of the host interface the PC
// Controller program (serialapi.PCController) drives on the USB-stick
// controllers D1–D5. The handlers read the same node table the CMDCL 0x01
// vulnerability models tamper with, which is what makes the attacks of
// Figs 8–11 visible in the program's UI.

var _ serialapi.Chip = (*Controller)(nil)

// SerialCall implements serialapi.Chip.
func (c *Controller) SerialCall(funcID byte, data []byte) ([]byte, bool) {
	if c.cov != nil {
		c.cov.OnSerial(funcID)
	}
	switch funcID {
	case serialapi.FuncGetVersion:
		v := c.profile.FirmwareVersion
		s := []byte("Z-Wave " + itoa(int(v[0])) + "." + pad2(int(v[1])))
		return append(s, 0x00, 0x01 /* library: static controller */), true

	case serialapi.FuncMemoryGetID:
		h := c.profile.Home
		return []byte{byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h), byte(c.node.ID())}, true

	case serialapi.FuncGetControllerCapabilities:
		// Primary, SUC-capable static controller.
		return []byte{0x1C}, true

	case serialapi.FuncGetInitData:
		const maskLen = 29
		out := make([]byte, 0, 5+maskLen)
		out = append(out, 0x08 /* API version */, 0x00 /* capabilities */, maskLen)
		mask := make([]byte, maskLen)
		for _, id := range c.table.IDs() {
			if id >= 1 && int(id) <= maskLen*8 {
				mask[(id-1)/8] |= 1 << ((id - 1) % 8)
			}
		}
		out = append(out, mask...)
		return append(out, 0x07 /* chip type */, 0x00), true

	case serialapi.FuncGetNodeProtocolInfo:
		if len(data) < 1 {
			return nil, false
		}
		rec, ok := c.table.Get(protocol.NodeID(data[0]))
		if !ok {
			return []byte{0, 0, 0, 0, 0, 0}, true // empty slot, as real chips report
		}
		return []byte{rec.Capability, rec.Security, 0x00, rec.Basic, rec.Generic, rec.Specific}, true

	case serialapi.FuncAddNodeToNetwork:
		// data[0]: 0x01 = add any node, 0x05 = stop.
		if len(data) >= 1 && data[0] == 0x05 {
			c.inclusionUntil = time.Time{}
			c.node.SetLearnMode(false)
		} else {
			c.AddNodeMode(0)
		}
		return []byte{0x01}, true

	case serialapi.FuncRemoveFailedNode:
		// The legitimate removal path: the chip verifies the node is
		// actually unreachable before deleting it — the authorization
		// check the NEW_NODE_REGISTERED path (bug 03) is missing.
		if len(data) < 1 {
			return []byte{0x00}, true
		}
		id := protocol.NodeID(data[0])
		rec, ok := c.table.Get(id)
		if !ok {
			return []byte{0x00}, true // no such node
		}
		if rec.Capability&device.CapListening != 0 {
			// A listening node is reachable; refuse (0x00 = not failed).
			return []byte{0x00}, true
		}
		c.table.Delete(id)
		return []byte{0x01}, true

	case serialapi.FuncSendData:
		if len(data) < 2 {
			return []byte{0x00}, true
		}
		dst := protocol.NodeID(data[0])
		n := int(data[1])
		if n > len(data)-2 {
			return []byte{0x00}, true
		}
		payload := append([]byte{}, data[2:2+n]...)
		if err := c.node.Send(dst, payload); err != nil {
			return []byte{0x00}, true
		}
		return []byte{0x01}, true
	}
	return nil, false
}

// itoa avoids importing strconv for two tiny conversions.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 && i > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
