// Package oracle provides the anomaly-observation channel of the emulated
// testbed. In the paper, crashes and misbehaviour are confirmed by a human
// researcher watching the Z-Wave PC Controller program, the SmartThings
// app, and the devices themselves ("Feedback & crash verification",
// §IV-A). This package replaces that human with a typed event bus: device
// models emit an Event when a vulnerability model fires, and the fuzzing
// engines subscribe to classify and deduplicate their findings.
package oracle

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"zcover/internal/coverage"
	"zcover/internal/telemetry"
)

// Process-wide oracle metrics: every anomaly observation counts, with the
// bounded-outage durations (Table III's finite hangs) histogrammed.
var (
	mEvents        = telemetry.Default().Counter("oracle_events_total")
	mOutageSeconds = telemetry.Default().Histogram("oracle_outage_seconds", 1, 10, 60, 600, 3600)
)

// Kind classifies an observed anomaly. The kinds map one-to-one onto the
// observable effects of the paper's Table III bugs.
type Kind int

// Anomaly kinds. Enum starts at 1.
const (
	// NodeTampered: an existing node's stored properties were altered
	// (bug 01, CVE-2024-50929; Fig 8).
	NodeTampered Kind = iota + 1
	// RogueNodeAdded: a fake node appeared in the controller's memory
	// (bug 02, CVE-2024-50920; Fig 9).
	RogueNodeAdded
	// NodeRemoved: a valid node vanished from the controller's memory
	// (bug 03, CVE-2024-50931; Fig 10).
	NodeRemoved
	// DatabaseOverwritten: the device table was wholesale replaced
	// (bug 04, CVE-2024-50930; Fig 11).
	DatabaseOverwritten
	// AppDoS: the companion smartphone app stopped responding
	// (bug 05, CVE-2024-50921).
	AppDoS
	// HostCrash: the PC controller host program crashed
	// (bug 06, CVE-2023-6640).
	HostCrash
	// HostDoS: the PC controller host program wedged persistently
	// (bug 13).
	HostDoS
	// ServiceHang: the controller stopped servicing traffic for a bounded
	// period (bugs 07–11, 14, 15).
	ServiceHang
	// WakeupCleared: a sleeping device's wake-up interval was erased from
	// controller memory (bug 12, CVE-2024-50928).
	WakeupCleared
	// MACParsingFault: the chipset mis-handled a malformed MAC frame (the
	// legacy one-day class of bugs VFuzz finds; Table V).
	MACParsingFault
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NodeTampered:
		return "node-tampered"
	case RogueNodeAdded:
		return "rogue-node-added"
	case NodeRemoved:
		return "node-removed"
	case DatabaseOverwritten:
		return "database-overwritten"
	case AppDoS:
		return "app-dos"
	case HostCrash:
		return "host-crash"
	case HostDoS:
		return "host-dos"
	case ServiceHang:
		return "service-hang"
	case WakeupCleared:
		return "wakeup-cleared"
	case MACParsingFault:
		return "mac-parsing-fault"
	default:
		return "Kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Confidence grades how certain the oracle is that an anomaly reflects a
// real implementation flaw rather than channel impairment. The zero value
// is Confirmed, so events from unimpaired campaigns are unchanged.
type Confidence int

// Confidence grades.
const (
	// ConfidenceConfirmed: the anomaly was observed on a clean channel (or
	// the observation window contained no injected faults).
	ConfidenceConfirmed Confidence = iota
	// ConfidenceSuspect: injected channel faults overlapped the
	// observation window, so the silence or misbehaviour may be an
	// artefact of impairment rather than a controller bug.
	ConfidenceSuspect
)

// String implements fmt.Stringer.
func (c Confidence) String() string {
	switch c {
	case ConfidenceConfirmed:
		return "confirmed"
	case ConfidenceSuspect:
		return "suspect"
	default:
		return "Confidence(" + strconv.Itoa(int(c)) + ")"
	}
}

// Event is one observed anomaly.
type Event struct {
	// At is the simulated instant the anomaly was observed.
	At time.Time
	// Device is the testbed index of the affected device (e.g. "D4").
	Device string
	// Kind classifies the anomaly.
	Kind Kind
	// Class and Cmd identify the application payload that triggered it
	// (zero for MAC-level faults).
	Class byte
	Cmd   byte
	// Duration bounds the outage for ServiceHang events; zero means the
	// effect is persistent until manual intervention ("Infinite" in
	// Table III).
	Duration time.Duration
	// Detail is a human-readable description.
	Detail string
	// Confidence grades the observation; it is not part of Signature, so
	// a suspect and a confirmed sighting of the same effect deduplicate to
	// one bug.
	Confidence Confidence
}

// Signature returns the deduplication key used to count unique
// vulnerabilities: same observable effect from the same (class, command)
// vector is the same bug.
func (e Event) Signature() string {
	return fmt.Sprintf("%s/0x%02X/0x%02X", e.Kind, e.Class, e.Cmd)
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("[%s] %s %s cmdcl=0x%02X cmd=0x%02X dur=%s: %s",
		e.At.Format("15:04:05.000"), e.Device, e.Kind, e.Class, e.Cmd, e.Duration, e.Detail)
}

// Bus collects anomaly events and fans them out to subscribers. The zero
// value is ready to use. Bus is safe for concurrent use.
type Bus struct {
	mu     sync.Mutex
	events []Event
	subs   []subscriber
	nextID uint64

	// cov, when non-nil, receives one coverage observation per emitted
	// event (SetCoverage). Like subscribers, the hook runs outside the
	// bus lock, synchronously on the emitting goroutine — for campaign
	// testbeds that is the single simulation-driving goroutine, which is
	// what the non-thread-safe Collector requires.
	cov *coverage.Collector
}

// subscriber pairs a callback with its handle identity.
type subscriber struct {
	id uint64
	fn func(Event)
}

// Subscription is the handle returned by Subscribe; Unsubscribe detaches
// the callback. Campaign engines must unsubscribe when their run ends so
// reusing a testbed (sequential trials, fleet retries) cannot leak events
// into a stale observer.
type Subscription struct {
	bus *Bus
	id  uint64
}

// Unsubscribe removes the subscription's callback from the bus. It is
// idempotent and safe on a nil subscription.
func (s *Subscription) Unsubscribe() {
	if s == nil || s.bus == nil {
		return
	}
	b := s.bus
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, sub := range b.subs {
		if sub.id == s.id {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			break
		}
	}
	s.bus = nil
}

// Subscribe registers a callback invoked synchronously for every event
// emitted after the call, and returns the handle that detaches it.
func (b *Bus) Subscribe(fn func(Event)) *Subscription {
	if fn == nil {
		panic("oracle: Subscribe called with nil callback")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextID++
	b.subs = append(b.subs, subscriber{id: b.nextID, fn: fn})
	return &Subscription{bus: b, id: b.nextID}
}

// Subscribers reports how many callbacks are currently attached.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// SetCoverage attaches (or, with nil, detaches) a behavioral-coverage
// collector that observes every emitted event — the oracle-proximity axis
// of the coverage map.
func (b *Bus) SetCoverage(cov *coverage.Collector) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cov = cov
}

// Emit records an event and notifies subscribers.
func (b *Bus) Emit(e Event) {
	mEvents.Inc()
	if e.Duration > 0 {
		mOutageSeconds.Observe(e.Duration.Seconds())
	}
	b.mu.Lock()
	b.events = append(b.events, e)
	cov := b.cov
	subs := make([]subscriber, len(b.subs))
	copy(subs, b.subs)
	b.mu.Unlock()
	if cov != nil {
		cov.OnOracle(int(e.Kind), e.Class, e.Cmd)
	}
	for _, sub := range subs {
		sub.fn(e)
	}
}

// Events returns a copy of all recorded events in emission order.
func (b *Bus) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// UniqueSignatures returns the distinct event signatures observed, in
// first-seen order.
func (b *Bus) UniqueSignatures() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	seen := make(map[string]bool, len(b.events))
	var out []string
	for _, e := range b.events {
		sig := e.Signature()
		if !seen[sig] {
			seen[sig] = true
			out = append(out, sig)
		}
	}
	return out
}

// Reset discards recorded events (subscribers stay).
func (b *Bus) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.events = nil
}
