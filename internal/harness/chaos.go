package harness

import (
	"fmt"
	"strconv"
	"time"

	"zcover/internal/chaos"
	"zcover/internal/fleet"
	"zcover/internal/oracle"
	"zcover/internal/report"
	"zcover/internal/zcover/fuzz"
)

// DefaultChaosProfiles is the impairment sweep the chaos campaign runs when
// the caller does not pick profiles explicitly: a representative burst-loss
// channel, a corrupting one, and a reordering/duplicating one.
var DefaultChaosProfiles = []string{"burst", "noise", "jitter"}

// ChaosRow is one (device, profile) cell of the detection-robustness table.
type ChaosRow struct {
	Index   string
	Profile string
	// CleanVulns is the unique findings of the unimpaired reference run.
	CleanVulns int
	// Confirmed and Suspect split the impaired run's findings by oracle
	// grade: Suspect findings overlapped an injected fault and may be
	// phantom outages rather than controller bugs.
	Confirmed int
	Suspect   int
	// Delta is Confirmed − CleanVulns: how many confirmed detections the
	// impairment cost (negative) or spuriously added (positive).
	Delta int
}

// ChaosTable5 reruns the Table V ZCover campaigns on D1–D5 under each named
// impairment profile and reports the detection-robustness delta against an
// unimpaired reference run of the same seed. All campaigns — clean and
// impaired — are scheduled through one fleet, so the table is reproducible
// for any worker count; chaosSeed drives only the injectors' fault streams.
func ChaosTable5(duration time.Duration, profiles []string, chaosSeed int64, cfg fleet.Config) (*report.Table, []ChaosRow, error) {
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	if len(profiles) == 0 {
		profiles = DefaultChaosProfiles
	}
	// Fail on a bad profile spec before burning campaign time.
	for _, spec := range profiles {
		if _, err := chaos.ParseProfile(spec); err != nil {
			return nil, nil, fmt.Errorf("harness: chaos: %w", err)
		}
	}

	devices := []string{"D1", "D2", "D3", "D4", "D5"}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs, fleet.Job{
			Name: "chaos/" + idx + "/clean", Device: idx,
			Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration,
		})
		for _, spec := range profiles {
			jobs = append(jobs, fleet.Job{
				Name: "chaos/" + idx + "/" + spec, Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration,
				ChaosProfile: spec, ChaosSeed: chaosSeed,
			})
		}
	}
	outs, err := runCampaigns("chaos", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}

	out := &report.Table{
		Title:   "Table V under impairment: ZCover detection robustness per chaos profile",
		Headers: []string{"ID", "Profile", "Clean #Vul", "Confirmed", "Suspect", "Delta"},
		Notes: []string{
			"Suspect findings overlapped an injected fault window; the oracle",
			"grades them separately instead of counting impairment-induced",
			"silence as a controller vulnerability.",
		},
	}
	var rows []ChaosRow
	stride := 1 + len(profiles)
	for i, idx := range devices {
		clean := outs[i*stride].Campaign
		for p, spec := range profiles {
			impaired := outs[i*stride+1+p].Campaign
			row := ChaosRow{
				Index:      idx,
				Profile:    spec,
				CleanVulns: len(clean.Fuzz.Findings),
			}
			for _, f := range impaired.Fuzz.Findings {
				if f.Event.Confidence == oracle.ConfidenceSuspect {
					row.Suspect++
				} else {
					row.Confirmed++
				}
			}
			row.Delta = row.Confirmed - row.CleanVulns
			rows = append(rows, row)
			out.AddRow(idx, spec, strconv.Itoa(row.CleanVulns),
				strconv.Itoa(row.Confirmed), strconv.Itoa(row.Suspect),
				fmt.Sprintf("%+d", row.Delta))
		}
	}
	return out, rows, nil
}
