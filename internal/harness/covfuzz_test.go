package harness

import (
	"encoding/json"
	"testing"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/testbed"
)

// covFuzzTestBudget keeps the comparison meaningful (hundreds of frames
// per engine) while staying cheap enough for every `go test` run.
const covFuzzTestBudget = time.Hour

func TestCovFuzzTableCoverageGuidedMatchesGenerational(t *testing.T) {
	tbl, rows, err := CovFuzzTable(covFuzzTestBudget, fleet.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		// The acceptance bar: at an equal frame budget the coverage-guided
		// engine discovers at least the generational engine's distinct
		// vulnerability classes.
		if r.CovKinds < r.GenKinds {
			t.Errorf("%s: coverage-guided found %d discovery classes, generational %d\n%s",
				r.Index, r.CovKinds, r.GenKinds, tbl)
		}
		if r.CovVulns == 0 {
			t.Errorf("%s: coverage-guided found nothing", r.Index)
		}
		if r.CovCorpus == 0 || r.CovFeatures == 0 {
			t.Errorf("%s: empty corpus (%d) or coverage map (%d)", r.Index, r.CovCorpus, r.CovFeatures)
		}
		if r.GenFirst > 0 && r.CovFirst > 0 && r.CovFirst > r.GenFirst {
			// Both engines share the quick pass, so the first discovery
			// cannot come later for the coverage-guided engine.
			t.Errorf("%s: first discovery at frame %d (coverage) vs %d (generational)",
				r.Index, r.CovFirst, r.GenFirst)
		}
	}
}

func TestCovFuzzTableDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		tbl, _, err := CovFuzzTable(covFuzzTestBudget, fleet.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	if one, eight := render(1), render(8); one != eight {
		t.Fatalf("table differs between 1 and 8 workers:\n%s\n%s", one, eight)
	}
}

func TestCovFuzzTableResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := fleet.Config{Workers: 2, Checkpoint: &fleet.CheckpointSpec{Dir: dir}}
	tbl1, _, err := CovFuzzTable(covFuzzTestBudget, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Re-running against the journal must replay every outcome — including
	// the coverage-guided ones — and render the identical table.
	cfg.Checkpoint.Resume = true
	tbl2, _, err := CovFuzzTable(covFuzzTestBudget, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl1.String() != tbl2.String() {
		t.Fatalf("resumed table differs:\n%s\n%s", tbl1, tbl2)
	}
}

func TestRunCovFuzzCorpusJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	run := func(resume bool) []byte {
		tb, err := testbed.New("D1", 41)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCovFuzzWith(tb, 30*time.Minute, 41, Options{},
			CovFuzzOptions{CorpusDir: dir, Resume: resume})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first := run(false)
	second := run(true) // killed campaign restarted: replays the corpus
	if string(first) != string(second) {
		t.Fatalf("campaign diverged after corpus-journal restart:\n%s\n%s", first, second)
	}

	// Without -resume the journal must be refused, not overwritten.
	tb, err := testbed.New("D1", 41)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCovFuzzWith(tb, 30*time.Minute, 41, Options{},
		CovFuzzOptions{CorpusDir: dir}); err == nil {
		t.Fatal("existing corpus journal silently reused without resume")
	}
}

func TestRunCovFuzzMinimizerIsPureObserver(t *testing.T) {
	// The minimizer probes fresh testbeds, never the campaign's: enabling
	// it must not change what the campaign finds — only (possibly) shrink
	// stored seed payloads. The engine's quick pass happens to produce
	// already-minimal triggers, so reduction itself is exercised by the
	// corpus package's tests; here we pin the purity contract.
	run := func(min bool) ([]byte, int) {
		tb, err := testbed.New("D1", 41)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCovFuzzWith(tb, 30*time.Minute, 41, Options{}, CovFuzzOptions{Minimize: min})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Findings)
		if err != nil {
			t.Fatal(err)
		}
		return b, res.SeedsMinimized
	}
	plain, n0 := run(false)
	minimized, _ := run(true)
	if n0 != 0 {
		t.Fatalf("minimizer disabled but %d seeds reduced", n0)
	}
	if string(plain) != string(minimized) {
		t.Fatalf("minimizer changed campaign findings:\n%s\n%s", plain, minimized)
	}
}
