package scan

import (
	"testing"
	"time"

	"zcover/internal/cmdclass"
	"zcover/internal/testbed"
	"zcover/internal/zcover/dongle"
)

func newScanTestbed(t *testing.T, index string) (*testbed.Testbed, *dongle.Dongle) {
	t.Helper()
	tb, err := testbed.New(index, 7)
	if err != nil {
		t.Fatal(err)
	}
	return tb, dongle.New(tb.Medium, tb.Region)
}

func TestPassiveFindsHomeAndNodes(t *testing.T) {
	tb, d := newScanTestbed(t, "D6")
	tb.ScheduleTraffic(6, 10*time.Second)
	nets := Passive(d, time.Minute+10*time.Second)
	if len(nets) != 1 {
		t.Fatalf("found %d networks, want 1", len(nets))
	}
	n := nets[0]
	if n.Home != tb.Home() {
		t.Errorf("home = %s, want %s (Table IV)", n.Home, tb.Home())
	}
	if n.Controller != testbed.ControllerID {
		t.Errorf("controller = %s, want node 1", n.Controller)
	}
	if len(n.Nodes) != 3 { // controller, lock, switch
		t.Errorf("nodes = %v, want 3", n.Nodes)
	}
}

func TestPassiveSeesThroughS2Encryption(t *testing.T) {
	// Only the lock (S2) talks: the passive scanner must still identify
	// the network because S2 encrypts the application payload only.
	tb, d := newScanTestbed(t, "D6")
	for i := 1; i <= 4; i++ {
		tb.Clock.Schedule(time.Duration(i)*5*time.Second, func() { _ = tb.Lock.ReportStatus() })
	}
	nets := Passive(d, 30*time.Second)
	if len(nets) != 1 || nets[0].Home != tb.Home() {
		t.Fatalf("networks = %+v", nets)
	}
}

func TestPassiveEmptyAir(t *testing.T) {
	_, d := newScanTestbed(t, "D1")
	if nets := Passive(d, 10*time.Second); len(nets) != 0 {
		t.Fatalf("silent air produced networks: %+v", nets)
	}
}

func TestActiveRetrievesListedClasses(t *testing.T) {
	tb, d := newScanTestbed(t, "D4")
	tb.ScheduleTraffic(4, 10*time.Second)
	nets := Passive(d, time.Minute)
	if len(nets) != 1 {
		t.Fatal("no network")
	}
	fp, err := Active(d, nets[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Listed) != 17 {
		t.Fatalf("D4 listed %d classes, want 17 (Table IV)", len(fp.Listed))
	}
	has := func(id cmdclass.ClassID) bool {
		for _, c := range fp.Listed {
			if c == id {
				return true
			}
		}
		return false
	}
	if !has(cmdclass.ClassSecurity2) || !has(cmdclass.ClassVersion) {
		t.Errorf("listed classes missing expected entries: %v", fp.Listed)
	}
	if has(cmdclass.ClassZWaveProtocol) {
		t.Error("hidden class 0x01 must not appear in the NIF")
	}
}

func TestActiveLegacyControllerLists15(t *testing.T) {
	tb, d := newScanTestbed(t, "D5")
	tb.ScheduleTraffic(4, 10*time.Second)
	fp, err := FingerprintTarget(d, time.Minute, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Listed) != 15 {
		t.Fatalf("D5 listed %d classes, want 15 (Table IV)", len(fp.Listed))
	}
	_ = tb
}

func TestActiveFailsWithoutController(t *testing.T) {
	_, d := newScanTestbed(t, "D1")
	if _, err := Active(d, Network{Home: 0x1234}); err == nil {
		t.Fatal("Active accepted a network without a controller")
	}
}

func TestFingerprintTargetSelectsRequestedHome(t *testing.T) {
	tb, d := newScanTestbed(t, "D2")
	tb.ScheduleTraffic(4, 10*time.Second)
	if _, err := FingerprintTarget(d, time.Minute, 0xDEADBEEF); err == nil {
		t.Fatal("unknown home accepted")
	}
	tb.ScheduleTraffic(4, 10*time.Second)
	fp, err := FingerprintTarget(d, time.Minute, tb.Home())
	if err != nil {
		t.Fatal(err)
	}
	if fp.Home != tb.Home() {
		t.Fatalf("fingerprinted %s, want %s", fp.Home, tb.Home())
	}
}

func TestFingerprintTargetNoTraffic(t *testing.T) {
	_, d := newScanTestbed(t, "D1")
	if _, err := FingerprintTarget(d, 5*time.Second, 0); err == nil {
		t.Fatal("fingerprinting succeeded on a silent air")
	}
}
