package coverage

import (
	"testing"
)

func TestFirstSightingIsNovel(t *testing.T) {
	c := NewCollector()
	c.BeginInput()
	c.OnDispatch(0x25, 0x01, 0, false)
	if n := c.EndInput(); n == 0 {
		t.Fatal("first dispatch feature should be novel")
	}
	if c.Features() != 1 {
		t.Fatalf("Features = %d, want 1", c.Features())
	}

	// The identical footprint again: nothing new.
	c.BeginInput()
	c.OnDispatch(0x25, 0x01, 0, false)
	if n := c.EndInput(); n != 0 {
		t.Fatalf("repeat footprint reported %d new features, want 0", n)
	}
}

func TestAxesAreDistinguished(t *testing.T) {
	c := NewCollector()
	base := func() {
		c.BeginInput()
		c.OnDispatch(0x25, 0x01, 0, false)
		c.EndInput()
	}
	base()

	cases := []struct {
		name string
		hit  func()
	}{
		{"deeper encapsulation", func() { c.OnDispatch(0x25, 0x01, 1, false) }},
		{"secure arrival", func() { c.OnDispatch(0x25, 0x01, 0, true) }},
		{"different command", func() { c.OnDispatch(0x25, 0x02, 0, false) }},
		{"different class", func() { c.OnDispatch(0x26, 0x01, 0, false) }},
		{"serial handler", func() { c.OnSerial(0x02) }},
		{"oracle event", func() { c.OnOracle(8, 0x25, 0x01) }},
	}
	for _, tc := range cases {
		c.BeginInput()
		tc.hit()
		if n := c.EndInput(); n == 0 {
			t.Errorf("%s: not novel against plain dispatch, want novel", tc.name)
		}
	}
}

func TestHitCountClassesAreFeatures(t *testing.T) {
	c := NewCollector()
	c.BeginInput()
	c.OnDispatch(0x60, 0x0D, 0, false)
	if c.EndInput() == 0 {
		t.Fatal("single hit should be novel")
	}

	// Same bucket, higher count class: novel again.
	c.BeginInput()
	for i := 0; i < 5; i++ {
		c.OnDispatch(0x60, 0x0D, 0, false)
	}
	if c.EndInput() == 0 {
		t.Fatal("new hit-count class of a known bucket should be novel")
	}
	// Still one distinct bucket.
	if c.Features() != 1 {
		t.Fatalf("Features = %d, want 1 (count classes share the bucket)", c.Features())
	}

	// A count inside an already-seen class: nothing new.
	c.BeginInput()
	for i := 0; i < 5; i++ {
		c.OnDispatch(0x60, 0x0D, 0, false)
	}
	if n := c.EndInput(); n != 0 {
		t.Fatalf("repeated count class reported %d new features", n)
	}
}

func TestDeterministicAcrossCollectors(t *testing.T) {
	run := func() (int, float64, uint64) {
		c := NewCollector()
		for i := 0; i < 300; i++ {
			c.BeginInput()
			c.OnDispatch(byte(i), byte(i*7), i%4, i%2 == 0)
			c.OnSerial(byte(i % 16))
			if i%5 == 0 {
				c.OnOracle(i%10+1, byte(i), byte(i+1))
			}
			c.EndInput()
		}
		return c.Features(), c.Density(), c.NovelInputs()
	}
	f1, d1, n1 := run()
	f2, d2, n2 := run()
	if f1 != f2 || d1 != d2 || n1 != n2 {
		t.Fatalf("two identical runs diverged: (%d,%v,%d) vs (%d,%v,%d)", f1, d1, n1, f2, d2, n2)
	}
	if f1 == 0 {
		t.Fatal("no features recorded")
	}
}

func TestNilCollectorHooksAreSafe(t *testing.T) {
	var c *Collector
	c.OnDispatch(0x25, 0x01, 0, false)
	c.OnSerial(0x02)
	c.OnOracle(1, 0x25, 0x01)
}

func TestRecordingAllocatesNothing(t *testing.T) {
	c := NewCollector()
	// Warm the touched list so append capacity is steady-state.
	c.BeginInput()
	for i := 0; i < 256; i++ {
		c.OnDispatch(byte(i), byte(i), 0, false)
	}
	c.EndInput()

	allocs := testing.AllocsPerRun(100, func() {
		c.BeginInput()
		for i := 0; i < 64; i++ {
			c.OnDispatch(byte(i), byte(i), 0, false)
		}
		c.EndInput()
	})
	if allocs != 0 {
		t.Fatalf("steady-state measurement allocated %v times per input, want 0", allocs)
	}
}

func TestStatsSnapshot(t *testing.T) {
	c := NewCollector()
	c.BeginInput()
	c.OnDispatch(0x25, 0x01, 0, false)
	c.EndInput()
	s := c.Stats()
	if s.Features != 1 || s.Inputs != 1 || s.NovelInputs != 1 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.Density <= 0 || s.Density >= 1 {
		t.Fatalf("Density = %v, want in (0,1)", s.Density)
	}
}

func BenchmarkRecordDispatch(b *testing.B) {
	c := NewCollector()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%64 == 0 {
			c.BeginInput()
		}
		c.OnDispatch(byte(i), byte(i>>8), i%4, false)
		if i%64 == 63 {
			c.EndInput()
		}
	}
}
