package main

import "testing"

func TestRunShortCampaign(t *testing.T) {
	if err := run([]string{"-target", "D1", "-strategy", "full", "-duration", "20m"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBetaAndGamma(t *testing.T) {
	for _, strat := range []string{"beta", "gamma"} {
		if err := run([]string{"-target", "D3", "-strategy", strat, "-duration", "5m"}); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	if err := run([]string{"-strategy", "sideways"}); err == nil {
		t.Fatal("accepted unknown strategy")
	}
	if err := run([]string{"-target", "D9"}); err == nil {
		t.Fatal("accepted unknown target")
	}
}
