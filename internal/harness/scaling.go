package harness

import (
	"fmt"
	"runtime"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/obs"
	"zcover/internal/zcover/fuzz"
)

// ScalingConfig tunes the bench-scaling sweep.
type ScalingConfig struct {
	// Workers is the worker counts to measure, e.g. [1, 2, 4, 8]. Empty
	// means exactly that default.
	Workers []int
	// Budget is each campaign's simulated fuzzing duration. Zero means one
	// hour — the same shape as BenchmarkFleetParallelism, so sim-rates are
	// comparable with BENCH_fleet.json.
	Budget time.Duration
	// GitSHA stamps the report's host info (passed in by scripts; empty is
	// fine).
	GitSHA string
	// Contention enables mutex/block profiling for the duration of the
	// sweep so the report can rank lock sites. The profiling tax applies
	// equally to every point, keeping the points comparable.
	Contention bool
}

// scalingJobs is the measured workload: the 7-device Table V-style sweep
// (VFuzz + ZCover per controller, 14 CPU-bound jobs sharing nothing) —
// identical in shape to BenchmarkFleetParallelism.
func scalingJobs(budget time.Duration) []fleet.Job {
	devices := []string{"D1", "D2", "D3", "D4", "D5", "D6", "D7"}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "bench/" + idx + "/vfuzz", Device: idx,
				Baseline: true, Seed: seed, Budget: budget},
			fleet.Job{Name: "bench/" + idx + "/zcover", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: budget})
	}
	return jobs
}

// scalingPoint runs the workload once at the given worker count with a
// timeline attached and converts the run into one report point.
func scalingPoint(jobs []fleet.Job, workers int, oversubscribe bool) (obs.ScalingPoint, error) {
	tl := obs.NewTimeline()
	cfg := fleet.Config{Workers: workers, AllowOversubscription: oversubscribe, Timeline: tl}

	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	results := fleet.Run(jobs, RunFleetJob, cfg)
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	if err := fleet.FirstError(results); err != nil {
		return obs.ScalingPoint{}, fmt.Errorf("harness: scaling sweep at workers=%d: %w", workers, err)
	}
	var simSec float64
	for _, r := range results {
		if f := r.Value.Fuzz(); f != nil {
			simSec += f.Elapsed.Seconds()
		}
	}
	snap := tl.Snapshot()
	pt := obs.ScalingPoint{
		Workers:          workers,
		EffectiveWorkers: cfg.EffectiveWorkers(len(jobs)),
		Oversubscribed:   oversubscribe,
		WallSec:          wall.Seconds(),
		SimSec:           simSec,
		Phases:           snap.PhaseShares(),
		GCPauseNs:        int64(after.PauseTotalNs - before.PauseTotalNs),
	}
	for _, ws := range snap.Workers {
		pt.IdleSec += ws.IdleSec
	}
	return pt, nil
}

// ScalingSweep measures the fleet's parallel scaling: it runs the
// 14-campaign Table V workload at each requested worker count with a
// worker timeline attached, and — when the largest request exceeds
// GOMAXPROCS — one extra uncapped point at that count, quantifying the
// oversubscription tax the fleet's worker cap removes. The returned
// report has derived efficiencies computed and bottlenecks ranked
// (Finalize already called); cmd/experiments -run scaling renders it.
//
// The campaigns themselves are byte-for-byte the deterministic seeds the
// experiment tables use, so the sweep doubles as a cross-worker-count
// consistency check: any job failure aborts the sweep.
func ScalingSweep(cfg ScalingConfig) (*obs.ScalingReport, error) {
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 8}
	}
	if cfg.Budget <= 0 {
		cfg.Budget = time.Hour
	}
	if cfg.Contention {
		restore := obs.StartProfiling(obs.ProfileConfig{})
		defer restore()
	}

	jobs := scalingJobs(cfg.Budget)
	rep := &obs.ScalingReport{
		Host:     obs.Host(cfg.GitSHA),
		Campaign: fmt.Sprintf("table5 sweep, %d jobs, %s budget", len(jobs), cfg.Budget),
	}
	maxWorkers := 0
	for _, w := range cfg.Workers {
		pt, err := scalingPoint(jobs, w, false)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
		if w > maxWorkers {
			maxWorkers = w
		}
	}
	// One raw (uncapped) point when the sweep asked for more workers than
	// the host can schedule: the delta versus the capped point at the same
	// count is the measured oversubscription overhead.
	if maxWorkers > runtime.GOMAXPROCS(0) {
		pt, err := scalingPoint(jobs, maxWorkers, true)
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, pt)
	}
	if cfg.Contention {
		rep.Locks = obs.TopContendedLocks(10)
	}
	rep.Finalize()
	return rep, nil
}
