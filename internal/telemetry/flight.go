package telemetry

import (
	"sync"
	"time"
)

// SecurityClass labels the transport encapsulation of a recorded frame,
// recovered from the first application-payload byte (S0 = CMDCL 0x98,
// S2 = CMDCL 0x9F; everything else travels in clear text).
type SecurityClass string

// Security classes.
const (
	SecurityNone SecurityClass = "none"
	SecurityS0   SecurityClass = "s0"
	SecurityS2   SecurityClass = "s2"
)

// FrameRecord is one transmission captured by the flight recorder: the raw
// bytes as they went on the air plus the medium's delivery verdict.
type FrameRecord struct {
	// Seq is the recorder-assigned monotonic sequence number.
	Seq uint64
	// At is the simulated instant the frame finished arriving.
	At time.Time
	// From is the transmitting transceiver's diagnostic name.
	From string
	// Raw holds the frame bytes as transmitted. Inside the recorder's ring
	// it aliases recycled ring storage; records handed out by Snapshot
	// carry private copies.
	Raw []byte
	// Airtime is how long the frame occupied the medium.
	Airtime time.Duration
	// Security is the transport encapsulation class of the payload.
	Security SecurityClass
	// Targets is how many in-range transceivers the medium addressed.
	Targets int
	// Lost is how many of those dropped the frame (loss injection).
	Lost int
	// Corrupted is how many received a noise-corrupted copy.
	Corrupted int
}

// FlightRecorder is a bounded ring buffer of the last N frames seen on a
// radio medium. When the oracle confirms a finding, the recorder snapshot
// is attached to the finding's log entry, giving every vulnerability a
// replayable packet-level post-mortem.
//
// The recorder is opt-in per campaign and mutex-guarded: it sits off the
// default hot path, and a single campaign's simulation driver is
// effectively single-threaded, so the lock is uncontended.
type FlightRecorder struct {
	mu   sync.Mutex
	buf  []FrameRecord
	next int
	n    int
	seq  uint64
}

// DefaultFlightDepth is the ring size commands use when a depth is not
// given: enough context to see the exchange leading up to a finding
// without bloating every log entry.
const DefaultFlightDepth = 16

// NewFlightRecorder returns a recorder holding the last depth frames.
// Non-positive depth falls back to DefaultFlightDepth.
func NewFlightRecorder(depth int) *FlightRecorder {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &FlightRecorder{buf: make([]FrameRecord, depth)}
}

// Depth reports the ring capacity.
func (r *FlightRecorder) Depth() int { return len(r.buf) }

// Len reports how many frames are currently held (≤ Depth).
func (r *FlightRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Recorded reports the total number of frames ever recorded.
func (r *FlightRecorder) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Record appends one frame, evicting the oldest when full, and returns the
// assigned sequence number. The recorder copies rec.Raw into ring-owned
// storage (reusing the evicted slot's buffer), so callers may hand in
// transient or pooled buffers freely: once full, a recorder records frames
// without allocating.
func (r *FlightRecorder) Record(rec FrameRecord) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	raw := rec.Raw
	rec.Raw = append(r.buf[r.next].Raw[:0], raw...)
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	return rec.Seq
}

// Snapshot returns the held frames oldest-first. Raw slices are copied, so
// the snapshot stays valid as recording continues.
func (r *FlightRecorder) Snapshot() []FrameRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FrameRecord, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		rec := r.buf[(start+i)%len(r.buf)]
		rec.Raw = append([]byte(nil), rec.Raw...)
		out = append(out, rec)
	}
	return out
}

// Reset discards held frames (the sequence counter keeps counting).
func (r *FlightRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n, r.next = 0, 0
}
