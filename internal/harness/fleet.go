package harness

import (
	"sync/atomic"

	"zcover/internal/fleet"
	"zcover/internal/testbed"
	"zcover/internal/zcover/fuzz"
)

// fleetRecorderDepth is the flight-recorder depth RunFleetJob attaches to
// every campaign testbed (0 = off). Process-wide because the experiment
// drivers own their job lists; set once from command-line flags.
var fleetRecorderDepth atomic.Int32

// SetFleetRecorderDepth makes every subsequent fleet campaign run with a
// packet flight recorder of the given depth attached to its testbed, so
// findings carry frame traces (Finding.Trace). Zero disables. Safe to call
// concurrently, but intended for process start-up; campaigns already in
// flight keep the depth they started with.
func SetFleetRecorderDepth(depth int) {
	if depth < 0 {
		depth = 0
	}
	fleetRecorderDepth.Store(int32(depth))
}

// FleetOutcome is one fleet campaign's result: exactly one of Campaign
// (ZCover jobs), Baseline (VFuzz jobs), or CovFuzz (coverage-guided jobs)
// is set.
type FleetOutcome struct {
	Campaign *Campaign
	Baseline *fuzz.Result
	CovFuzz  *fuzz.CovResult
}

// Fuzz returns the job's fuzzing result regardless of kind.
func (o FleetOutcome) Fuzz() *fuzz.Result {
	if o.Baseline != nil {
		return o.Baseline
	}
	if o.CovFuzz != nil {
		return &o.CovFuzz.Result
	}
	if o.Campaign != nil {
		return o.Campaign.Fuzz
	}
	return nil
}

// RunFleetJob is the canonical fleet.Runner: it executes one job spec
// against the worker's private testbed, streaming live metrics into the
// pool. All experiment drivers schedule through it.
func RunFleetJob(tb *testbed.Testbed, job fleet.Job, obs *fleet.Observer) (FleetOutcome, error) {
	opts := Options{
		OnFinding:           func(fuzz.Finding) { obs.Finding() },
		OnPhase:             obs.Phase,
		FlightRecorderDepth: int(fleetRecorderDepth.Load()),
		FrameBudget:         job.Frames,
	}
	if job.FuzzMode == fleet.ModeCoverage {
		res, err := RunCovFuzzWith(tb, job.Budget, job.Seed, opts, CovFuzzOptions{})
		if err != nil {
			return FleetOutcome{}, err
		}
		obs.Packets(res.PacketsSent)
		obs.SimTime(res.Elapsed)
		return FleetOutcome{CovFuzz: res}, nil
	}
	if job.Baseline {
		res, err := RunVFuzzWith(tb, job.Budget, job.Seed, opts)
		if err != nil {
			return FleetOutcome{}, err
		}
		obs.Packets(res.PacketsSent)
		obs.SimTime(res.Elapsed)
		return FleetOutcome{Baseline: res}, nil
	}
	c, err := RunZCoverWith(tb, job.Strategy, job.Budget, job.Seed, opts)
	if err != nil {
		return FleetOutcome{}, err
	}
	obs.Packets(c.Fuzz.PacketsSent)
	obs.SimTime(c.Fuzz.Elapsed)
	return FleetOutcome{Campaign: c}, nil
}

// runCampaigns executes the jobs through the fleet with all-or-nothing
// semantics: every table needs every row, so the first failed job's error
// (in job order, deterministically) aborts the driver. Successful outcomes
// come back index-aligned with jobs. name identifies the campaign for
// checkpoint journals and must be stable across invocations.
//
// With cfg.Checkpoint set, execution goes through the crash-safe journal
// path in checkpoint.go: completed jobs are replayed instead of re-run,
// sharded invocations stop after their subset with a *ShardDone error,
// and merge mode renders purely from journals.
func runCampaigns(name string, jobs []fleet.Job, cfg fleet.Config) ([]FleetOutcome, error) {
	outs, err := func() ([]FleetOutcome, error) {
		if cfg.Checkpoint != nil && cfg.Checkpoint.Dir != "" {
			return runCheckpointed(name, jobs, cfg)
		}
		results := fleet.Run(jobs, RunFleetJob, cfg)
		if err := fleet.FirstError(results); err != nil {
			return nil, err
		}
		outs := make([]FleetOutcome, len(results))
		for i := range results {
			outs[i] = results[i].Value
		}
		return outs, nil
	}()
	if err != nil {
		return nil, err
	}
	if err := writeBugLog(outs); err != nil {
		return nil, err
	}
	return outs, nil
}
