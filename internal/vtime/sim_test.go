package vtime

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSimClockStartsAtEpoch(t *testing.T) {
	c := NewSimClock()
	if got := c.Now(); !got.Equal(SimEpoch) {
		t.Fatalf("Now() = %v, want %v", got, SimEpoch)
	}
}

func TestSimClockSleepAdvances(t *testing.T) {
	c := NewSimClock()
	c.Sleep(3 * time.Second)
	if got, want := c.Elapsed(SimEpoch), 3*time.Second; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestSimClockSleepNonPositive(t *testing.T) {
	c := NewSimClock()
	c.Sleep(0)
	c.Sleep(-time.Second)
	if got := c.Elapsed(SimEpoch); got != 0 {
		t.Fatalf("Elapsed = %v, want 0", got)
	}
}

func TestSimClockAdvanceToBackwardsIsNoop(t *testing.T) {
	c := NewSimClock()
	c.Sleep(time.Minute)
	c.AdvanceTo(SimEpoch)
	if got, want := c.Elapsed(SimEpoch), time.Minute; got != want {
		t.Fatalf("Elapsed = %v, want %v", got, want)
	}
}

func TestSimClockScheduleFiresInOrder(t *testing.T) {
	c := NewSimClock()
	var order []int
	c.Schedule(2*time.Second, func() { order = append(order, 2) })
	c.Schedule(1*time.Second, func() { order = append(order, 1) })
	c.Schedule(3*time.Second, func() { order = append(order, 3) })
	c.Advance(5 * time.Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestSimClockScheduleSameInstantFIFO(t *testing.T) {
	c := NewSimClock()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { order = append(order, i) })
	}
	c.Advance(time.Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestSimClockEventSeesOwnTimestamp(t *testing.T) {
	c := NewSimClock()
	var at time.Time
	c.Schedule(7*time.Second, func() { at = c.Now() })
	c.Advance(time.Hour)
	if want := SimEpoch.Add(7 * time.Second); !at.Equal(want) {
		t.Fatalf("callback observed Now()=%v, want %v", at, want)
	}
}

func TestSimClockPartialAdvanceLeavesFutureEvents(t *testing.T) {
	c := NewSimClock()
	fired := 0
	c.Schedule(1*time.Second, func() { fired++ })
	c.Schedule(10*time.Second, func() { fired++ })
	c.Advance(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d after partial advance, want 1", fired)
	}
	if got := c.PendingEvents(); got != 1 {
		t.Fatalf("PendingEvents = %d, want 1", got)
	}
}

func TestSimClockRunUntilIdleChainsEvents(t *testing.T) {
	c := NewSimClock()
	depth := 0
	var chain func()
	chain = func() {
		depth++
		if depth < 5 {
			c.Schedule(time.Second, chain)
		}
	}
	c.Schedule(time.Second, chain)
	end := c.RunUntilIdle()
	if depth != 5 {
		t.Fatalf("chained events fired %d times, want 5", depth)
	}
	if want := SimEpoch.Add(5 * time.Second); !end.Equal(want) {
		t.Fatalf("RunUntilIdle ended at %v, want %v", end, want)
	}
}

func TestSimClockScheduleNegativeDelayFiresImmediately(t *testing.T) {
	c := NewSimClock()
	fired := false
	c.Schedule(-time.Second, func() { fired = true })
	c.Advance(0)
	if fired {
		t.Fatal("event fired without any advance")
	}
	c.Advance(time.Nanosecond)
	if !fired {
		t.Fatal("negative-delay event did not fire on first advance")
	}
}

func TestSimClockScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	NewSimClock().Schedule(time.Second, nil)
}

func TestSystemClockNow(t *testing.T) {
	before := time.Now()
	got := SystemClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("SystemClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}

// Property: advancing by a sequence of non-negative durations always yields
// an elapsed time equal to their sum, regardless of interleaved scheduling.
func TestSimClockAdvanceSumProperty(t *testing.T) {
	prop := func(steps []uint16) bool {
		c := NewSimClock()
		var total time.Duration
		for _, s := range steps {
			d := time.Duration(s) * time.Millisecond
			c.Schedule(d/2, func() {})
			c.Advance(d)
			total += d
		}
		return c.Elapsed(SimEpoch) == total
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: events never fire before their scheduled instant.
func TestSimClockNoEarlyFireProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		c := NewSimClock()
		ok := true
		for _, d := range delays {
			delay := time.Duration(d) * time.Millisecond
			due := c.Now().Add(delay)
			c.Schedule(delay, func() {
				if c.Now().Before(due) {
					ok = false
				}
			})
		}
		c.RunUntilIdle()
		return ok
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
