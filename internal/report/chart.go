package report

import (
	"fmt"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	// X is the elapsed time.
	X time.Duration
	// Y is the value (e.g. cumulative packets).
	Y int
	// Mark flags the point (a vulnerability discovery in Fig. 12's
	// red-cross sense); marked points render as 'X'.
	Mark bool
}

// Chart renders a time series as a terminal scatter plot, the ASCII
// analogue of the paper's Figure 12 panels.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height size the plot area in characters. Zero values
	// default to 64×16.
	Width, Height int
	// Points is the series.
	Points []Point
}

// String renders the chart.
func (c *Chart) String() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	if len(c.Points) == 0 {
		return c.Title + "\n(no data)\n"
	}

	var maxX time.Duration
	maxY := 1
	for _, p := range c.Points {
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	if maxX <= 0 {
		maxX = time.Second
	}

	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	plot := func(p Point, glyph byte) {
		col := int(int64(p.X) * int64(w-1) / int64(maxX))
		row := h - 1 - p.Y*(h-1)/maxY
		if col < 0 || col >= w || row < 0 || row >= h {
			return
		}
		if glyph == 'X' || grid[row][col] == ' ' {
			grid[row][col] = glyph
		}
	}
	for _, p := range c.Points {
		if !p.Mark {
			plot(p, '.')
		}
	}
	for _, p := range c.Points {
		if p.Mark {
			plot(p, 'X')
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "%s (max %d)\n", c.YLabel, maxY)
	}
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	fmt.Fprintf(&b, "+%s\n", strings.Repeat("-", w))
	if c.XLabel != "" {
		fmt.Fprintf(&b, " %s: 0 .. %s   ('X' marks a discovery)\n", c.XLabel, maxX.Round(time.Second))
	}
	return b.String()
}
