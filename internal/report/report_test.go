package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "Demo",
		Headers: []string{"ID", "Value"},
		Notes:   []string{"note line"},
	}
	tb.AddRow("D1", "17")
	tb.AddRow("D2-long", "3")
	out := tb.String()
	for _, want := range []string{"Demo", "ID", "Value", "D1", "D2-long", "note line", "--"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 2 rows + note.
	if len(lines) != 6 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: each data line at least as wide as the widest cell.
	if !strings.HasPrefix(lines[3], "D1     ") {
		t.Errorf("column not padded: %q", lines[3])
	}
}

func TestTableWriteTo(t *testing.T) {
	tb := &Table{Headers: []string{"A"}}
	tb.AddRow("x")
	var sb strings.Builder
	n, err := tb.WriteTo(&sb)
	if err != nil || n == 0 || sb.Len() == 0 {
		t.Fatalf("WriteTo = %d, %v", n, err)
	}
}

func TestCSVRendering(t *testing.T) {
	c := &CSV{Headers: []string{"elapsed_s", "packets"}}
	c.AddRow("60", "85")
	c.AddRow("120", "170")
	want := "elapsed_s,packets\n60,85\n120,170\n"
	if got := c.String(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(90 * time.Second); got != "90" {
		t.Fatalf("Seconds = %q", got)
	}
	if got := Seconds(1500 * time.Millisecond); got != "1" {
		t.Fatalf("Seconds = %q, want truncation", got)
	}
}

func TestDurationCell(t *testing.T) {
	cases := map[time.Duration]string{
		0:                "Infinite",
		4 * time.Second:  "4 sec",
		67 * time.Second: "67 sec",
		4 * time.Minute:  "4 min",
	}
	for d, want := range cases {
		if got := DurationCell(d); got != want {
			t.Errorf("DurationCell(%s) = %q, want %q", d, got, want)
		}
	}
}

func TestChartRendersSeriesAndMarks(t *testing.T) {
	ch := &Chart{
		Title: "demo", XLabel: "time", YLabel: "packets",
		Width: 40, Height: 8,
		Points: []Point{
			{X: 0, Y: 0},
			{X: 100 * time.Second, Y: 120},
			{X: 200 * time.Second, Y: 260},
			{X: 150 * time.Second, Y: 180, Mark: true},
		},
	}
	out := ch.String()
	for _, want := range []string{"demo", "packets (max 260)", "X", ".", "time: 0 .. 3m20s"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	// title + ylabel + 8 rows + axis + xlabel + trailing empty
	if len(lines) != 13 {
		t.Fatalf("chart has %d lines:\n%s", len(lines), out)
	}
}

func TestChartEmptyAndDefaults(t *testing.T) {
	ch := &Chart{Title: "empty"}
	if !strings.Contains(ch.String(), "(no data)") {
		t.Fatal("empty chart rendering wrong")
	}
	ch.Points = []Point{{X: time.Second, Y: 5}}
	if out := ch.String(); !strings.Contains(out, "|") {
		t.Fatalf("default-size chart broken:\n%s", out)
	}
}
