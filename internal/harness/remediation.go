package harness

import (
	"strconv"
	"time"

	"zcover/internal/fleet"
	"zcover/internal/report"
	"zcover/internal/zcover/fuzz"
)

// RemediationRow is one device's before/after-patch comparison.
type RemediationRow struct {
	// Index is the testbed device.
	Index string
	// Before and After count unique vulnerabilities found by a full
	// campaign against the stock and patched firmware.
	Before, After int
	// Remaining lists the signatures surviving the patch.
	Remaining []string
}

// Remediation validates the paper's §V-B mitigation path: rerun the full
// ZCover campaign against firmware built on the updated specification
// (the one the Z-Wave Alliance incorporates the paper's findings into)
// and show that only the implementation bugs — which need vendor SDK
// fixes, not spec changes — survive.
func Remediation(devices []string, duration time.Duration) (*report.Table, []RemediationRow, error) {
	return RemediationFleet(devices, duration, fleet.Config{})
}

// RemediationFleet is Remediation with the stock and patched campaigns
// scheduled across a fleet worker pool.
func RemediationFleet(devices []string, duration time.Duration, cfg fleet.Config) (*report.Table, []RemediationRow, error) {
	if len(devices) == 0 {
		devices = []string{"D1", "D6"}
	}
	if duration <= 0 {
		duration = 24 * time.Hour
	}
	out := &report.Table{
		Title:   "Remediation (§V-B): full campaign before vs after the specification update",
		Headers: []string{"ID", "#Vul stock firmware", "#Vul patched firmware", "Surviving (implementation bugs)"},
		Notes: []string{
			"The patch closes every specification-rooted bug; host-program",
			"implementation bugs (06, 13) need vendor SDK fixes and remain.",
		},
	}
	var jobs []fleet.Job
	for _, idx := range devices {
		seed := deviceSeed(idx)
		jobs = append(jobs,
			fleet.Job{Name: "remediation/" + idx + "/stock", Device: idx,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration},
			fleet.Job{Name: "remediation/" + idx + "/patched", Device: idx, Patched: true,
				Strategy: fuzz.StrategyFull, Seed: seed, Budget: duration})
	}
	outs, err := runCampaigns("remediation", jobs, cfg)
	if err != nil {
		return nil, nil, err
	}
	var rows []RemediationRow
	for i, idx := range devices {
		before, after := outs[2*i].Campaign, outs[2*i+1].Campaign
		row := RemediationRow{Index: idx, Before: len(before.Fuzz.Findings), After: len(after.Fuzz.Findings)}
		for _, f := range after.Fuzz.Findings {
			row.Remaining = append(row.Remaining, f.Signature)
		}
		rows = append(rows, row)
		surviving := "-"
		if len(row.Remaining) > 0 {
			surviving = ""
			for i, s := range row.Remaining {
				if i > 0 {
					surviving += ", "
				}
				surviving += s
			}
		}
		out.AddRow(idx, strconv.Itoa(row.Before), strconv.Itoa(row.After), surviving)
	}
	return out, rows, nil
}
