// Package checkpoint implements the crash-safe campaign journal: an
// append-only, fsync'd JSONL file that records a campaign's completed
// jobs so a fleet killed at any point can resume without losing work,
// and so a campaign split across machines (shards) can be merged back
// into one result set.
//
// # Format
//
// A journal is a sequence of newline-terminated JSON envelopes:
//
//	{"v":1,"type":"manifest","seq":0,"body":{...},"crc":"xxxxxxxx"}
//	{"v":1,"type":"job","seq":1,"body":{...},"crc":"xxxxxxxx"}
//	...
//
// The first record is always the Manifest — the campaign's identity
// (name, a hash of the full job list, the shard assignment). Every
// following record is one completed job's serialised outcome. The crc
// field is the CRC-32 (IEEE) of "type:seq:" + the body's exact bytes,
// so any bit flip, splice, or truncation inside a record is detected on
// replay rather than silently replayed into a table.
//
// # Crash safety
//
// Append writes the record and fsyncs the file before returning, so a
// record that Append reported durable survives a process kill or power
// loss. A crash mid-write leaves a partial final line; Recover detects
// it (parse or CRC failure on the last record only), reports it, and
// truncates the file back to the last durable record before reopening
// for append. A damaged record that is *not* the tail is real
// corruption — Load fails loudly instead of resuming from it.
//
// # Determinism contract
//
// The journal stores outcomes byte-for-byte as the caller serialised
// them. Because every campaign job is deterministic in its seed, a
// killed-and-resumed run re-executes only the jobs missing from the
// journal and reproduces the uninterrupted run exactly; N merged shards
// reproduce the 1-shard run exactly. internal/harness pins both
// invariants against the golden tables.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"zcover/internal/telemetry"
)

// Version is the journal format version; bumped on incompatible change.
const Version = 1

// Process-wide checkpoint metrics.
var (
	mRecords   = telemetry.Default().Counter("checkpoint_records_total")
	mBytes     = telemetry.Default().Counter("checkpoint_bytes_total")
	mFsyncs    = telemetry.Default().Counter("checkpoint_fsyncs_total")
	mResumed   = telemetry.Default().Counter("checkpoint_jobs_resumed_total")
	mRecovered = telemetry.Default().Counter("checkpoint_recovered_tails_total")
)

// NoteResumed counts jobs whose outcome was served from a journal
// instead of being re-executed (the checkpoint_jobs_resumed_total
// metric). Callers invoke it once per cache hit.
func NoteResumed() { mResumed.Inc() }

// Manifest identifies the campaign a journal belongs to. Resume and
// merge refuse journals whose manifest does not match the job list
// being executed — a checkpoint must never replay into a different
// campaign.
type Manifest struct {
	// Version is the journal format version (see Version).
	Version int `json:"version"`
	// Campaign names the experiment driver ("table5", "trials/D3", ...).
	Campaign string `json:"campaign"`
	// SpecHash fingerprints the full job list (SpecHash of the specs),
	// budgets and seeds included, so a resumed run provably executes
	// the same campaign the journal was written for.
	SpecHash string `json:"spec_hash"`
	// TotalJobs is the unsharded campaign's job count.
	TotalJobs int `json:"total_jobs"`
	// ShardIndex/ShardCount is the 1-based shard assignment this
	// journal covers (1/1 for unsharded runs).
	ShardIndex int `json:"shard_index"`
	// ShardCount is the total number of shards.
	ShardCount int `json:"shard_count"`
}

// JobRecord is one completed job's durable outcome.
type JobRecord struct {
	// Index is the job's position in the full (unsharded) job list.
	Index int `json:"index"`
	// Label echoes Job.Label for human inspection of journals.
	Label string `json:"label"`
	// Attempts is how many times the job ran before succeeding.
	Attempts int `json:"attempts,omitempty"`
	// Body is the caller-serialised outcome, stored byte-for-byte.
	Body json.RawMessage `json:"body"`
}

// envelope is the on-disk line framing around every record.
type envelope struct {
	V    int             `json:"v"`
	Type string          `json:"type"`
	Seq  int             `json:"seq"`
	Body json.RawMessage `json:"body"`
	CRC  string          `json:"crc"`
}

// recordCRC computes the integrity checksum of one record.
func recordCRC(typ string, seq int, body []byte) string {
	h := crc32.NewIEEE()
	io.WriteString(h, typ)
	io.WriteString(h, ":")
	io.WriteString(h, strconv.Itoa(seq))
	io.WriteString(h, ":")
	h.Write(body)
	return fmt.Sprintf("%08x", h.Sum32())
}

// specTable is the CRC-64/ECMA table SpecHash fingerprints with.
var specTable = crc64.MakeTable(crc64.ECMA)

// SpecHash fingerprints an arbitrary campaign spec by hashing its JSON
// form. encoding/json emits struct fields in declaration order, so the
// same spec always hashes identically across runs and machines. The
// journal needs mismatch *detection*, not cryptographic strength, so a
// 16-hex-digit CRC-64 is enough.
func SpecHash(spec any) (string, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("checkpoint: hashing spec: %w", err)
	}
	return fmt.Sprintf("%016x", crc64.Checksum(raw, specTable)), nil
}

// JournalPath names the journal file for one campaign shard inside a
// checkpoint directory. Campaign names may contain '/' (trials/D3);
// path separators are flattened so every journal lives directly in dir.
func JournalPath(dir, campaign string, shardIndex, shardCount int) string {
	if shardIndex <= 0 || shardCount <= 0 {
		shardIndex, shardCount = 1, 1
	}
	return filepath.Join(dir, fmt.Sprintf("journal-%s-%dof%d.jsonl",
		sanitize(campaign), shardIndex, shardCount))
}

// ListJournals returns every shard journal for a campaign in dir,
// sorted by filename (and therefore by shard index for a fixed count).
func ListJournals(dir, campaign string) ([]string, error) {
	pattern := filepath.Join(dir, "journal-"+sanitize(campaign)+"-*of*.jsonl")
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: listing journals: %w", err)
	}
	sort.Strings(paths)
	return paths, nil
}

// sanitize flattens a campaign name into a filename component.
func sanitize(name string) string {
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '-', c == '.':
			out[i] = c
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// Journal is an open, append-only checkpoint file. Append is safe for
// concurrent use (fleet workers complete jobs in arbitrary order).
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	nextSeq int
}

// Create starts a new journal at path, writing (and fsyncing) the
// manifest record. It fails if the file already exists — an existing
// journal must be resumed with Recover or removed deliberately, never
// silently overwritten.
func Create(path string, m Manifest) (*Journal, error) {
	m.Version = Version
	if m.ShardIndex <= 0 || m.ShardCount <= 0 {
		m.ShardIndex, m.ShardCount = 1, 1
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: creating journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	body, err := json.Marshal(m)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: encoding manifest: %w", err)
	}
	if err := j.append("manifest", body); err != nil {
		f.Close()
		return nil, err
	}
	// Make the new directory entry durable too: an fsync'd file that a
	// crash can unlink is not a checkpoint.
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return j, nil
}

// Append journals one completed job. The record is durable (written and
// fsync'd) when Append returns nil.
func (j *Journal) Append(rec JobRecord) error {
	body, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding job %d: %w", rec.Index, err)
	}
	return j.append("job", body)
}

// append frames, writes, and fsyncs one record.
func (j *Journal) append(typ string, body []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	env := envelope{
		V: Version, Type: typ, Seq: j.nextSeq,
		Body: body, CRC: recordCRC(typ, j.nextSeq, body),
	}
	line, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding record: %w", err)
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("checkpoint: writing journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync: %w", err)
	}
	j.nextSeq++
	mRecords.Inc()
	mBytes.Add(int64(len(line)))
	mFsyncs.Inc()
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file. Records are already durable; Close
// only releases the descriptor.
func (j *Journal) Close() error { return j.f.Close() }

// Replay is the validated content of a journal.
type Replay struct {
	// Manifest is the journal's identity record.
	Manifest Manifest
	// Jobs holds every durable job record in append order.
	Jobs []JobRecord
	// TailTruncated reports that the final line was damaged (a crash
	// mid-write) and was dropped. The journal is otherwise intact.
	TailTruncated bool
	// TailError describes the dropped tail when TailTruncated.
	TailError string

	// validEnd is the byte offset just past the last durable record.
	validEnd int64
	nextSeq  int
}

// ByIndex returns the replayed job outcomes keyed by job index. A job
// appearing twice (a crash between write and in-memory bookkeeping can
// duplicate the tail record) keeps the first occurrence; a duplicate
// with *different* bytes is corruption and errors.
func (r *Replay) ByIndex() (map[int]JobRecord, error) {
	out := make(map[int]JobRecord, len(r.Jobs))
	for _, rec := range r.Jobs {
		if prev, ok := out[rec.Index]; ok {
			if string(prev.Body) != string(rec.Body) {
				return nil, fmt.Errorf("checkpoint: job %d (%s) journaled twice with different outcomes",
					rec.Index, rec.Label)
			}
			continue
		}
		out[rec.Index] = rec
	}
	return out, nil
}

// Load reads and validates a journal. A damaged final record is
// tolerated and reported through Replay.TailTruncated (the crash-tail
// case); a damaged record with durable records after it fails — that
// is corruption, not an interrupted write.
func Load(path string) (*Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()

	rep := &Replay{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var offset int64
	line := 0
	var pendingErr string // damage seen on the most recent line
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		lineLen := int64(len(raw)) + 1 // newline
		if pendingErr != "" {
			// The damaged line was not the tail after all.
			return nil, fmt.Errorf("checkpoint: %s: record %d corrupted mid-journal: %s",
				path, line-1, pendingErr)
		}
		if len(raw) == 0 {
			offset += lineLen
			continue
		}
		var env envelope
		if err := json.Unmarshal(raw, &env); err != nil {
			pendingErr = err.Error()
			offset += lineLen
			continue
		}
		if env.CRC != recordCRC(env.Type, env.Seq, env.Body) {
			pendingErr = fmt.Sprintf("CRC mismatch on %s record seq %d", env.Type, env.Seq)
			offset += lineLen
			continue
		}
		if env.Seq != rep.nextSeq {
			return nil, fmt.Errorf("checkpoint: %s: record %d out of sequence (seq %d, want %d)",
				path, line, env.Seq, rep.nextSeq)
		}
		switch env.Type {
		case "manifest":
			if env.Seq != 0 {
				return nil, fmt.Errorf("checkpoint: %s: manifest not first record", path)
			}
			if err := json.Unmarshal(env.Body, &rep.Manifest); err != nil {
				return nil, fmt.Errorf("checkpoint: %s: manifest: %w", path, err)
			}
			if rep.Manifest.Version != Version {
				return nil, fmt.Errorf("checkpoint: %s: journal version %d, this build reads %d",
					path, rep.Manifest.Version, Version)
			}
		case "job":
			if rep.nextSeq == 0 {
				return nil, fmt.Errorf("checkpoint: %s: job record before manifest", path)
			}
			var rec JobRecord
			if err := json.Unmarshal(env.Body, &rec); err != nil {
				return nil, fmt.Errorf("checkpoint: %s: job record seq %d: %w", path, env.Seq, err)
			}
			rep.Jobs = append(rep.Jobs, rec)
		default:
			return nil, fmt.Errorf("checkpoint: %s: unknown record type %q", path, env.Type)
		}
		rep.nextSeq++
		offset += lineLen
		rep.validEnd = offset
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", path, err)
	}
	if pendingErr != "" {
		rep.TailTruncated = true
		rep.TailError = pendingErr
	}
	if rep.nextSeq == 0 {
		return nil, fmt.Errorf("checkpoint: %s: no durable records (empty or fully damaged journal)", path)
	}
	return rep, nil
}

// Recover loads a journal and reopens it for appending: the
// kill-anywhere resume path. A damaged tail record is truncated away
// first so subsequent appends extend a clean journal.
func Recover(path string) (*Journal, *Replay, error) {
	rep, err := Load(path)
	if err != nil {
		return nil, nil, err
	}
	if rep.TailTruncated {
		if err := os.Truncate(path, rep.validEnd); err != nil {
			return nil, nil, fmt.Errorf("checkpoint: truncating damaged tail: %w", err)
		}
		mRecovered.Inc()
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: reopening journal: %w", err)
	}
	return &Journal{f: f, path: path, nextSeq: rep.nextSeq}, rep, nil
}
