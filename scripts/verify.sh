#!/bin/sh
# verify.sh — the tier-1 gate: formatting, vet, build, and the race-enabled
# short test suite. Run before every commit; `make verify` wraps it.
#
#   ./scripts/verify.sh          # short suite (fast)
#   ./scripts/verify.sh -full    # include the 24h-budget campaign tests
set -eu

cd "$(dirname "$0")/.."

short="-short"
if [ "${1:-}" = "-full" ]; then
    short=""
fi

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not on PATH; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test -race $short =="
go test -race $short ./...

echo "verify: OK"
