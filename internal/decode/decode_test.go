package decode

import (
	"strings"
	"testing"

	"zcover/internal/cmdclass"
)

func reg(t *testing.T) *cmdclass.Registry {
	t.Helper()
	return cmdclass.MustLoad()
}

func TestDecodeBasicSet(t *testing.T) {
	d := Payload(reg(t), []byte{0x20, 0x01, 0xFF})
	if d.Class != "BASIC" || d.Command != "SET" {
		t.Fatalf("decoded = %+v", d)
	}
	if len(d.Params) != 1 || d.Params[0].Name != "Value" || d.Params[0].Value != 0xFF || !d.Params[0].Legal {
		t.Fatalf("params = %+v", d.Params)
	}
}

func TestDecodeHiddenProtocolClass(t *testing.T) {
	d := Payload(reg(t), []byte{0x01, 0x0D, 0x02})
	if d.Class != "ZWAVE_PROTOCOL" || d.Command != "NEW_NODE_REGISTERED" {
		t.Fatalf("decoded = %+v", d)
	}
	if len(d.Params) != 1 || d.Params[0].Name != "NodeID" {
		t.Fatalf("params = %+v", d.Params)
	}
}

func TestDecodeFlagsIllegalValues(t *testing.T) {
	// DOOR_LOCK_OPERATION_SET with a mode outside the enum.
	d := Payload(reg(t), []byte{0x62, 0x01, 0x55})
	if len(d.Params) != 1 || d.Params[0].Legal {
		t.Fatalf("illegal enum not flagged: %+v", d.Params)
	}
	if !strings.Contains(d.String(), "0x55!") {
		t.Fatalf("rendering does not mark illegal value: %s", d.String())
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	d := Payload(reg(t), []byte{0x5A, 0x01, 0xAA, 0xBB})
	if d.Command != "NOTIFICATION" || len(d.Trailing) != 2 {
		t.Fatalf("decoded = %+v", d)
	}
	if !strings.Contains(d.String(), "trailing") {
		t.Fatalf("rendering misses trailing bytes: %s", d.String())
	}
}

func TestDecodeEncryptedPayloads(t *testing.T) {
	s2 := Payload(reg(t), []byte{0x9F, 0x03, 0x01, 0x00, 0xDE, 0xAD})
	if !s2.Encrypted || s2.Class != "SECURITY_2" {
		t.Fatalf("S2 = %+v", s2)
	}
	s0 := Payload(reg(t), []byte{0x98, 0x81, 0x01, 0x02})
	if !s0.Encrypted || s0.Class != "SECURITY" {
		t.Fatalf("S0 = %+v", s0)
	}
	if !strings.Contains(s2.String(), "encrypted") {
		t.Fatal("encrypted rendering missing")
	}
}

func TestDecodeUnknowns(t *testing.T) {
	if d := Payload(reg(t), nil); d.Class != "?" {
		t.Fatalf("empty = %+v", d)
	}
	if d := Payload(reg(t), []byte{0x00}); d.Class != "NO_OPERATION" {
		t.Fatalf("NOP = %+v", d)
	}
	if d := Payload(reg(t), []byte{0x03, 0x01}); d.Class != "?" {
		t.Fatalf("unknown class = %+v", d)
	}
	// Known class, unknown command.
	if d := Payload(reg(t), []byte{0x20, 0x77}); d.Class != "BASIC" || d.Command != "?" {
		t.Fatalf("unknown command = %+v", d)
	}
}

func TestDecodeVariadicStopsConsuming(t *testing.T) {
	// USER_CODE SET: UserIdentifier, UserIDStatus, then a variadic code.
	d := Payload(reg(t), []byte{0x63, 0x01, 0x05, 0x01, 0x31, 0x32, 0x33, 0x34})
	if len(d.Params) != 3 { // identifier, status, first code byte
		t.Fatalf("params = %+v", d.Params)
	}
	if len(d.Trailing) != 0 {
		t.Fatalf("variadic should absorb the tail: %+v", d)
	}
}
