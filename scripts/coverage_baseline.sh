#!/bin/sh
# coverage_baseline.sh — regenerate the per-package statement-coverage
# baseline that verify.sh enforces (a package may not drop more than 2
# points below its recorded figure). Rerun after intentionally adding or
# removing tests, and commit the updated file.
set -eu

cd "$(dirname "$0")/.."

go test -short -cover ./... | awk '
$1 == "ok" {
    for (i = 1; i <= NF; i++) if ($i == "coverage:") {
        pct = $(i+1)
        sub(/%/, "", pct)
        if (pct ~ /^[0-9.]+$/) print $2, pct
    }
}' > scripts/coverage_baseline.txt

echo "wrote scripts/coverage_baseline.txt:"
cat scripts/coverage_baseline.txt
