package vtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// SimClock is a deterministic simulated clock with an event queue.
//
// The zero value is not usable; construct with NewSimClock. SimClock is safe
// for concurrent use, although the simulation in this repository is
// deliberately single-goroutine for determinism.
type SimClock struct {
	mu     sync.Mutex
	now    time.Time
	queue  eventQueue
	nextID uint64
	// free recycles fired event structs. Event scheduling is the simulator's
	// single busiest allocation site (every frame airtime, ack timeout, and
	// retry books an event), so spent events return here instead of to the
	// garbage collector. Guarded by mu; bounded so an event burst cannot pin
	// memory forever.
	free []*event
}

// maxFreeEvents bounds the recycled-event freelist.
const maxFreeEvents = 256

var _ Clock = (*SimClock)(nil)

// SimEpoch is the default origin for simulated time. Its concrete value is
// irrelevant to results; a fixed non-zero origin makes logged timestamps
// readable and catches code that wrongly compares against the zero Time.
var SimEpoch = time.Date(2025, time.January, 1, 0, 0, 0, 0, time.UTC)

// NewSimClock returns a SimClock starting at SimEpoch.
func NewSimClock() *SimClock {
	return &SimClock{now: SimEpoch}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing simulated time, firing any events
// scheduled inside the interval in timestamp order.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.AdvanceTo(c.Now().Add(d))
}

// Advance moves simulated time forward by d, firing due events in order.
func (c *SimClock) Advance(d time.Duration) {
	c.Sleep(d)
}

// AdvanceTo moves simulated time forward to instant t, firing due events in
// order. Moving backwards is a no-op.
func (c *SimClock) AdvanceTo(t time.Time) {
	var spent *event
	for {
		c.mu.Lock()
		c.recycle(spent)
		if len(c.queue) == 0 || c.queue[0].at.After(t) {
			if t.After(c.now) {
				c.now = t
			}
			c.mu.Unlock()
			return
		}
		ev := heap.Pop(&c.queue).(*event)
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn()
		spent = ev
	}
}

// recycle returns a fired event to the freelist, dropping its callback
// reference so pooled events never pin closures. Callers hold c.mu.
func (c *SimClock) recycle(ev *event) {
	if ev == nil || len(c.free) >= maxFreeEvents {
		return
	}
	ev.fn = nil
	c.free = append(c.free, ev)
}

// Elapsed reports how much simulated time has passed since the given origin.
func (c *SimClock) Elapsed(origin time.Time) time.Duration {
	return c.Now().Sub(origin)
}

// Schedule registers fn to run when simulated time reaches now+delay.
// Events scheduled for the same instant fire in scheduling order. The
// callback runs on the goroutine that advances the clock.
func (c *SimClock) Schedule(delay time.Duration, fn func()) {
	if fn == nil {
		panic("vtime: Schedule called with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	ev := c.newEvent()
	ev.at, ev.seq, ev.fn = c.now.Add(delay), c.nextID, fn
	heap.Push(&c.queue, ev)
}

// newEvent takes an event from the freelist, or allocates. Callers hold c.mu.
func (c *SimClock) newEvent() *event {
	if n := len(c.free); n > 0 {
		ev := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return ev
	}
	return new(event)
}

// PendingEvents reports the number of scheduled events not yet fired.
func (c *SimClock) PendingEvents() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// RunUntilIdle fires all scheduled events (including ones scheduled by
// fired events), advancing time as needed, and returns the final instant.
// It guards against runaway self-rescheduling with a generous event budget.
func (c *SimClock) RunUntilIdle() time.Time {
	const budget = 10_000_000
	var spent *event
	for i := 0; ; i++ {
		if i >= budget {
			panic(fmt.Sprintf("vtime: RunUntilIdle exceeded %d events; self-rescheduling loop?", budget))
		}
		c.mu.Lock()
		c.recycle(spent)
		if len(c.queue) == 0 {
			now := c.now
			c.mu.Unlock()
			return now
		}
		ev := heap.Pop(&c.queue).(*event)
		if ev.at.After(c.now) {
			c.now = ev.at
		}
		c.mu.Unlock()
		ev.fn()
		spent = ev
	}
}

// event is a single scheduled callback.
type event struct {
	at  time.Time
	seq uint64 // tiebreak: FIFO among equal timestamps
	fn  func()
}

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
