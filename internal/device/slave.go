package device

import (
	"zcover/internal/cmdclass"
	"zcover/internal/protocol"
)

// Z-Wave device-type bytes used in node information frames.
const (
	// BasicTypeController marks a (portable or static) controller node.
	BasicTypeController byte = 0x01
	// BasicTypeStaticController marks a mains-powered static controller.
	BasicTypeStaticController byte = 0x02
	// BasicTypeSlave marks an ordinary slave node.
	BasicTypeSlave byte = 0x03
	// BasicTypeRoutingSlave marks a routing slave node.
	BasicTypeRoutingSlave byte = 0x04

	// GenericTypeController is the generic controller device class.
	GenericTypeController byte = 0x02
	// GenericTypeSwitchBinary is the binary switch device class.
	GenericTypeSwitchBinary byte = 0x10
	// GenericTypeEntryControl is the door-lock device class.
	GenericTypeEntryControl byte = 0x40

	// Capability flag bits of the NODE_INFO capability byte.
	CapListening byte = 0x80
	CapRouting   byte = 0x40

	// Security flag bits of the NODE_INFO security byte.
	SecS0 byte = 0x01
	SecS2 byte = 0x02
)

// Identity is the information a node advertises in its node information
// frame (NIF).
type Identity struct {
	// Basic, Generic, Specific are the Z-Wave device-type bytes.
	Basic, Generic, Specific byte
	// Capability holds the listening/routing flags.
	Capability byte
	// Security holds the supported security-class flags.
	Security byte
	// Classes lists the command classes the node advertises as supported
	// — the "listed" properties of the paper's fingerprinting phase.
	Classes []cmdclass.ClassID
}

// NIFPayload builds the NODE_INFO application payload the node sends in
// response to a REQUEST_NODE_INFO: the protocol-class frame carrying
// capability, security, type bytes and the advertised class list.
func (id Identity) NIFPayload() []byte {
	out := make([]byte, 0, 8+len(id.Classes))
	out = append(out,
		byte(cmdclass.ClassZWaveProtocol), byte(cmdclass.CmdProtoNodeInfo),
		id.Capability, id.Security, 0x00, id.Basic, id.Generic, id.Specific)
	for _, c := range id.Classes {
		out = append(out, byte(c))
	}
	return out
}

// ParseNIF decodes a NODE_INFO payload back into an Identity. It is the
// inverse of NIFPayload and is what the active scanner uses on responses.
func ParseNIF(payload []byte) (Identity, bool) {
	if len(payload) < 8 ||
		payload[0] != byte(cmdclass.ClassZWaveProtocol) ||
		payload[1] != byte(cmdclass.CmdProtoNodeInfo) {
		return Identity{}, false
	}
	id := Identity{
		Capability: payload[2],
		Security:   payload[3],
		Basic:      payload[5],
		Generic:    payload[6],
		Specific:   payload[7],
	}
	for _, b := range payload[8:] {
		id.Classes = append(id.Classes, cmdclass.ClassID(b))
	}
	return id, true
}

// IsNIFRequest reports whether an application payload is a
// REQUEST_NODE_INFO probe, and if so which node it interrogates
// (0 means "the receiver").
func IsNIFRequest(payload []byte) (protocol.NodeID, bool) {
	if len(payload) < 2 ||
		payload[0] != byte(cmdclass.ClassZWaveProtocol) ||
		payload[1] != byte(cmdclass.CmdProtoRequestNodeInfo) {
		return 0, false
	}
	if len(payload) >= 3 {
		return protocol.NodeID(payload[2]), true
	}
	return 0, true
}

// NIFRequestPayload builds a REQUEST_NODE_INFO probe for the given node.
func NIFRequestPayload(target protocol.NodeID) []byte {
	return []byte{byte(cmdclass.ClassZWaveProtocol), byte(cmdclass.CmdProtoRequestNodeInfo), byte(target)}
}

// NOPPayload is the liveness-probe payload (COMMAND_CLASS_NO_OPERATION).
// A live node MAC-acks it; a hung controller stays silent — exactly the
// liveness check the paper's feedback loop uses.
func NOPPayload() []byte { return []byte{0x00} }
