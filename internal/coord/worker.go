package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"zcover/internal/checkpoint"
	"zcover/internal/fleet"
)

// Runner executes one leased job to completion and returns its
// journal-ready serialised outcome plus the attempt count. The runner
// owns isolation and retries — harness.LeaseRunner wraps each job in a
// single-job fleet (fresh testbed, panic recovery, MaxAttempts) exactly
// like a local campaign would.
type Runner func(job fleet.Job) (json.RawMessage, int, error)

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port").
	Coordinator string
	// ID names this worker in leases and status. Required.
	ID string
	// Runner executes leased jobs. Required.
	Runner Runner
	// Dir, when non-empty, keeps a local checkpoint journal of completed
	// jobs: a worker killed after finishing a job but before its upload
	// landed re-uploads the cached bytes on restart instead of
	// re-executing. The journal carries the coordinator's manifest, so a
	// stale cache from a different campaign is refused.
	Dir string
	// Resume permits continuing an existing local journal.
	Resume bool
	// Heartbeat is the keep-alive interval while a job runs; zero means
	// a third of the lease TTL the coordinator granted.
	Heartbeat time.Duration
	// Backoff is the initial retry delay when the coordinator is
	// unreachable; it doubles per consecutive failure up to MaxBackoff.
	// Zero means 100ms.
	Backoff time.Duration
	// MaxBackoff caps the retry delay; zero means 5s.
	MaxBackoff time.Duration
	// RetryBudget bounds how long one request keeps retrying. A worker
	// that cannot reach the coordinator for this long is orphaned — the
	// coordinator is gone for good, not restarting — and exits with the
	// last error instead of spinning forever. Zero means one minute.
	RetryBudget time.Duration
	// Client is the HTTP client; nil means a 30s-timeout default.
	Client *http.Client
	// Log, when non-nil, receives one line per lease/upload event.
	Log io.Writer
}

// WorkerStats summarises one RunWorker invocation.
type WorkerStats struct {
	// Leased counts jobs granted to this worker.
	Leased int
	// Ran counts jobs actually executed (Leased minus cache hits).
	Ran int
	// Cached counts jobs served from the local checkpoint journal.
	Cached int
	// Uploaded counts results the coordinator accepted fresh.
	Uploaded int
	// Duplicates counts uploads the coordinator already had (another
	// worker finished first, or a resumed re-upload).
	Duplicates int
	// Retries counts coordinator requests that had to be retried.
	Retries int
}

// worker is the per-invocation state of RunWorker.
type worker struct {
	cfg      WorkerConfig
	client   *http.Client
	manifest ManifestReply
	journal  *checkpoint.Journal
	cache    map[int]checkpoint.JobRecord
	stats    WorkerStats
}

// RunWorker drains leases from the coordinator until the campaign
// completes: lease → execute (heartbeating) → upload, with exponential
// backoff whenever the coordinator is unreachable. It returns when the
// coordinator reports done, the campaign fails, or ctx ends. A ctx
// cancellation mid-job abandons the job without reporting failure —
// that is the "killed worker" case the lease deadline exists for.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	if cfg.Coordinator == "" || cfg.ID == "" || cfg.Runner == nil {
		return WorkerStats{}, fmt.Errorf("coord: worker needs a coordinator URL, an ID, and a runner")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = time.Minute
	}
	w := &worker{cfg: cfg, client: cfg.Client}
	if w.client == nil {
		w.client = &http.Client{Timeout: 30 * time.Second}
	}
	if err := w.post(ctx, "/manifest", LeaseRequest{Worker: cfg.ID}, &w.manifest); err != nil {
		return w.stats, err
	}
	if cfg.Dir != "" {
		if err := w.openCache(); err != nil {
			return w.stats, err
		}
		defer w.journal.Close()
	}
	for {
		var lease LeaseReply
		if err := w.post(ctx, "/lease", LeaseRequest{Worker: cfg.ID}, &lease); err != nil {
			return w.stats, err
		}
		switch {
		case lease.Done:
			return w.stats, nil
		case lease.RetryAfter > 0:
			if err := sleep(ctx, lease.RetryAfter); err != nil {
				return w.stats, err
			}
		default:
			if err := w.execute(ctx, lease); err != nil {
				return w.stats, err
			}
		}
	}
}

// openCache creates or recovers the worker's local checkpoint journal,
// stamped with the coordinator's manifest. The filename carries the
// worker ID so several workers can share one directory.
func (w *worker) openCache() error {
	manifest := checkpoint.Manifest{
		Campaign: w.manifest.Campaign, SpecHash: w.manifest.SpecHash,
		TotalJobs: w.manifest.TotalJobs, ShardIndex: 1, ShardCount: 1,
	}
	if err := os.MkdirAll(w.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("coord: %w", err)
	}
	path := checkpoint.JournalPath(w.cfg.Dir, w.manifest.Campaign+"-worker-"+w.cfg.ID, 1, 1)
	journal, replay, err := openJournal(path, manifest, w.cfg.Resume)
	if err != nil {
		return err
	}
	w.journal = journal
	w.cache = make(map[int]checkpoint.JobRecord)
	if replay != nil {
		recs, err := replay.ByIndex()
		if err != nil {
			journal.Close()
			return err
		}
		w.cache = recs
	}
	return nil
}

// execute runs one leased job (or serves it from the local cache) and
// uploads the outcome.
func (w *worker) execute(ctx context.Context, lease LeaseReply) error {
	w.stats.Leased++
	mWorkerLeases.Inc()
	if rec, ok := w.cache[lease.JobIndex]; ok {
		w.logf("job %d (%s): cached locally, re-uploading", lease.JobIndex, lease.Job.Label())
		w.stats.Cached++
		mWorkerCached.Inc()
		return w.upload(ctx, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, JobIndex: lease.JobIndex,
			SpecHash: lease.SpecHash, Attempts: rec.Attempts, Body: rec.Body,
		})
	}

	// Keep the lease alive while the job runs. Stale heartbeats (the
	// coordinator restarted, or the lease expired under a long pause)
	// are ignored: the result is idempotent either way.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := w.cfg.Heartbeat
		if interval <= 0 {
			interval = lease.TTL / 3
		}
		if interval <= 0 {
			interval = DefaultLeaseTTL / 3
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				_ = w.postOnce("/heartbeat", HeartbeatRequest{Worker: w.cfg.ID, LeaseID: lease.LeaseID}, nil)
			}
		}
	}()
	w.logf("job %d (%s): leased %s, running", lease.JobIndex, lease.Job.Label(), lease.LeaseID)
	body, attempts, err := w.cfg.Runner(*lease.Job)
	stopHB()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil {
			// Killed mid-job: vanish silently and let the lease expire;
			// the job will be re-issued and reproduced byte-identically.
			return ctx.Err()
		}
		// A terminal job failure (the runner already retried) must reach
		// the coordinator, or the campaign would re-issue it forever.
		_ = w.upload(ctx, ResultRequest{
			Worker: w.cfg.ID, LeaseID: lease.LeaseID, JobIndex: lease.JobIndex,
			SpecHash: lease.SpecHash, Error: err.Error(),
		})
		return fmt.Errorf("coord: job %s: %w", lease.Job.Label(), err)
	}
	w.stats.Ran++
	rec := checkpoint.JobRecord{
		Index: lease.JobIndex, Label: lease.Job.Label(), Attempts: attempts, Body: body,
	}
	if w.journal != nil {
		// Local durability before upload, mirroring the fleet's persist
		// rule: work whose journal append failed is not durable and must
		// not be acknowledged anywhere.
		if err := w.journal.Append(rec); err != nil {
			return err
		}
		w.cache[lease.JobIndex] = rec
	}
	return w.upload(ctx, ResultRequest{
		Worker: w.cfg.ID, LeaseID: lease.LeaseID, JobIndex: lease.JobIndex,
		SpecHash: lease.SpecHash, Attempts: attempts, Body: body,
	})
}

// upload posts one result, retrying transient failures.
func (w *worker) upload(ctx context.Context, req ResultRequest) error {
	var reply ResultReply
	if err := w.post(ctx, "/result", req, &reply); err != nil {
		return err
	}
	if req.Error == "" {
		w.stats.Uploaded++
		mWorkerUploads.Inc()
		if reply.Status == "duplicate" {
			w.stats.Duplicates++
		}
		w.logf("job %d: upload %s", req.JobIndex, reply.Status)
	}
	return nil
}

// httpError is a non-2xx coordinator answer. Server-side trouble (5xx)
// is retryable; client errors (4xx — spec mismatch, conflicting bytes)
// are terminal.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string {
	return fmt.Sprintf("coord: coordinator answered %d: %s", e.status, e.msg)
}

// retryable reports whether an error is worth another attempt.
func retryable(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status >= 500 || he.status == http.StatusTooManyRequests
	}
	return true // transport-level failure: coordinator down or restarting
}

// post sends one JSON request with retry/backoff on transient failures,
// bounded by the retry budget.
func (w *worker) post(ctx context.Context, path string, req, reply any) error {
	backoff := w.cfg.Backoff
	var waited time.Duration
	for {
		err := w.postOnce(path, req, reply)
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if waited+backoff > w.cfg.RetryBudget {
			return fmt.Errorf("coord: coordinator unreachable for %s on %s, giving up: %w", waited, path, err)
		}
		w.stats.Retries++
		mWorkerRetries.Inc()
		w.logf("%s: %v (retrying in %s)", path, err, backoff)
		if serr := sleep(ctx, backoff); serr != nil {
			return fmt.Errorf("coord: giving up on %s: %w (last error: %v)", path, serr, err)
		}
		waited += backoff
		if backoff *= 2; backoff > w.cfg.MaxBackoff {
			backoff = w.cfg.MaxBackoff
		}
	}
}

// postOnce sends one JSON request without retries. GET-shaped endpoints
// (/manifest) accept POST bodies too, which keeps the client uniform.
func (w *worker) postOnce(path string, req, reply any) error {
	raw, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("coord: encoding %s request: %w", path, err)
	}
	resp, err := w.client.Post(w.cfg.Coordinator+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return fmt.Errorf("coord: %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("coord: reading %s reply: %w", path, err)
	}
	if resp.StatusCode/100 != 2 {
		return &httpError{status: resp.StatusCode, msg: string(bytes.TrimSpace(body))}
	}
	if reply == nil {
		return nil
	}
	if err := json.Unmarshal(body, reply); err != nil {
		return fmt.Errorf("coord: decoding %s reply: %w", path, err)
	}
	return nil
}

// sleep waits d or until ctx ends.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// logf writes one worker log line when logging is configured.
func (w *worker) logf(format string, args ...any) {
	if w.cfg.Log == nil {
		return
	}
	fmt.Fprintf(w.cfg.Log, "worker %s: "+format+"\n", append([]any{w.cfg.ID}, args...)...)
}
